// MicroBatcher: batch formation under concurrency, the bounded-wait
// flush (a lone request is dispatched immediately), shutdown draining,
// and result integrity when many callers share the queue.

#include "serve/micro_batcher.h"

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace ganc {
namespace {

// A batch function that "scores" by echoing user * 10 + n and records
// the block sizes it saw.
struct EchoBatchFn {
  std::vector<size_t>* batch_sizes = nullptr;
  std::mutex* mu = nullptr;

  void operator()(std::span<BatchRequest* const> batch,
                  ScoringContext& /*ctx*/) const {
    if (batch_sizes != nullptr) {
      std::lock_guard<std::mutex> lock(*mu);
      batch_sizes->push_back(batch.size());
    }
    for (BatchRequest* r : batch) {
      r->out->assign(1, static_cast<ItemId>(r->user * 10 + r->n));
    }
  }
};

TEST(MicroBatcherTest, SingleRequestRoundTrip) {
  MicroBatcher batcher(EchoBatchFn{}, {});
  BatchRequest req;
  req.user = 7;
  req.n = 3;
  std::vector<ItemId> out;
  req.out = &out;
  ASSERT_TRUE(batcher.Submit(req).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 73);
  EXPECT_EQ(batcher.counters().requests, 1u);
  EXPECT_EQ(batcher.counters().batches, 1u);
}

TEST(MicroBatcherTest, LoneRequestIsNotStalledByTheFlushTimer) {
  MicroBatcherConfig config;
  config.batch_size = 8;
  // A pathological timer: if a lone request waited for the flush
  // deadline the test would take half a second per request.
  config.max_batch_wait = std::chrono::microseconds(500000);
  MicroBatcher batcher(EchoBatchFn{}, config);
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < 10; ++i) {
    BatchRequest req;
    req.user = i;
    req.n = 1;
    std::vector<ItemId> out;
    req.out = &out;
    ASSERT_TRUE(batcher.Submit(req).ok());
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            500);
  EXPECT_EQ(batcher.counters().waited_flushes, 0u);
}

TEST(MicroBatcherTest, ConcurrentCallersFormBatchesAndGetOwnResults) {
  std::vector<size_t> batch_sizes;
  std::mutex mu;
  MicroBatcherConfig config;
  config.num_workers = 2;
  config.batch_size = 8;
  MicroBatcher batcher(EchoBatchFn{&batch_sizes, &mu}, config);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 200;
  std::vector<std::thread> threads;
  std::atomic<int> mismatches{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&batcher, &mismatches, t] {
      for (int i = 0; i < kPerThread; ++i) {
        BatchRequest req;
        req.user = t * 1000 + i;
        req.n = 4;
        std::vector<ItemId> out;
        req.out = &out;
        if (!batcher.Submit(req).ok() || out.size() != 1 ||
            out[0] != req.user * 10 + 4) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
  const MicroBatcher::Counters c = batcher.counters();
  EXPECT_EQ(c.requests, static_cast<uint64_t>(kThreads * kPerThread));
  // Batching must actually happen: fewer dispatches than requests.
  EXPECT_LT(c.batches, c.requests);
  size_t max_fill = 0;
  {
    std::lock_guard<std::mutex> lock(mu);
    for (const size_t s : batch_sizes) max_fill = std::max(max_fill, s);
  }
  EXPECT_GT(max_fill, 1u);
  EXPECT_LE(max_fill, 8u);
}

TEST(MicroBatcherTest, NeverExceedsBatchSizeOne) {
  std::vector<size_t> batch_sizes;
  std::mutex mu;
  MicroBatcherConfig config;
  config.batch_size = 1;
  MicroBatcher batcher(EchoBatchFn{&batch_sizes, &mu}, config);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&batcher] {
      for (int i = 0; i < 50; ++i) {
        BatchRequest req;
        req.user = i;
        req.n = 1;
        std::vector<ItemId> out;
        req.out = &out;
        ASSERT_TRUE(batcher.Submit(req).ok());
      }
    });
  }
  for (std::thread& t : threads) t.join();
  std::lock_guard<std::mutex> lock(mu);
  for (const size_t s : batch_sizes) EXPECT_EQ(s, 1u);
}

TEST(MicroBatcherTest, SubmitAfterShutdownIsRejected) {
  MicroBatcher batcher(EchoBatchFn{}, {});
  batcher.Shutdown();
  BatchRequest req;
  req.user = 1;
  req.n = 1;
  std::vector<ItemId> out;
  req.out = &out;
  const Status s = batcher.Submit(req);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
}

TEST(MicroBatcherTest, BatchFnStatusPropagatesToTheCaller) {
  MicroBatcher batcher(
      [](std::span<BatchRequest* const> batch, ScoringContext&) {
        for (BatchRequest* r : batch) {
          r->status = Status::InvalidArgument("boom");
        }
      },
      {});
  BatchRequest req;
  req.user = 1;
  req.n = 1;
  std::vector<ItemId> out;
  req.out = &out;
  const Status s = batcher.Submit(req);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.message(), "boom");
}

}  // namespace
}  // namespace ganc
