#include "util/binary_io.h"

#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

namespace ganc {
namespace {

class BinaryIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() / "ganc_binio_test";
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  /// Flips one byte at `offset` in the file (corruption injection).
  void CorruptByte(const std::string& path, std::streamoff offset) {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(offset);
    char c = 0;
    f.read(&c, 1);
    c ^= 0x5A;
    f.seekp(offset);
    f.write(&c, 1);
  }

  /// Truncates the file to `size` bytes.
  void Truncate(const std::string& path, uintmax_t size) {
    std::filesystem::resize_file(path, size);
  }

  std::filesystem::path dir_;
};

TEST_F(BinaryIoTest, Fnv1aKnownValues) {
  // FNV-1a 64 reference: hash of empty input is the offset basis.
  EXPECT_EQ(Fnv1aHash("", 0), 0xCBF29CE484222325ULL);
  // "a" -> well-known value.
  EXPECT_EQ(Fnv1aHash("a", 1), 0xAF63DC4C8601EC8CULL);
}

TEST_F(BinaryIoTest, DoubleVectorRoundTrip) {
  const std::vector<double> v{0.0, 1.5, -2.25, 1e300, -1e-300};
  ASSERT_TRUE(WriteDoubleVector(Path("v.bin"), v).ok());
  auto back = ReadDoubleVector(Path("v.bin"));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, v);
}

TEST_F(BinaryIoTest, EmptyVectorRoundTrip) {
  ASSERT_TRUE(WriteDoubleVector(Path("e.bin"), {}).ok());
  auto back = ReadDoubleVector(Path("e.bin"));
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->empty());
}

TEST_F(BinaryIoTest, TopNCollectionRoundTrip) {
  const std::vector<std::vector<int32_t>> topn{{1, 2, 3}, {}, {7}};
  ASSERT_TRUE(WriteTopNCollection(Path("t.bin"), topn).ok());
  auto back = ReadTopNCollection(Path("t.bin"));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, topn);
}

TEST_F(BinaryIoTest, MissingFileIsIOError) {
  EXPECT_EQ(ReadDoubleVector(Path("absent.bin")).status().code(),
            StatusCode::kIOError);
}

TEST_F(BinaryIoTest, CorruptPayloadDetected) {
  ASSERT_TRUE(WriteDoubleVector(Path("c.bin"), {1.0, 2.0, 3.0}).ok());
  // Header is 20 bytes (magic 8 + version 4 + size 8); corrupt payload.
  CorruptByte(Path("c.bin"), 25);
  auto back = ReadDoubleVector(Path("c.bin"));
  ASSERT_FALSE(back.ok());
  EXPECT_EQ(back.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(BinaryIoTest, CorruptMagicDetected) {
  ASSERT_TRUE(WriteDoubleVector(Path("m.bin"), {1.0}).ok());
  CorruptByte(Path("m.bin"), 0);
  auto back = ReadDoubleVector(Path("m.bin"));
  ASSERT_FALSE(back.ok());
  EXPECT_NE(back.status().message().find("magic"), std::string::npos);
}

TEST_F(BinaryIoTest, TruncationDetected) {
  ASSERT_TRUE(WriteDoubleVector(Path("tr.bin"), {1.0, 2.0, 3.0}).ok());
  const auto full = std::filesystem::file_size(Path("tr.bin"));
  Truncate(Path("tr.bin"), full - 4);
  EXPECT_FALSE(ReadDoubleVector(Path("tr.bin")).ok());
}

TEST_F(BinaryIoTest, WrongTypeRejected) {
  // A vector file read as a top-N collection must fail on magic.
  ASSERT_TRUE(WriteDoubleVector(Path("x.bin"), {1.0}).ok());
  EXPECT_FALSE(ReadTopNCollection(Path("x.bin")).ok());
  ASSERT_TRUE(WriteTopNCollection(Path("y.bin"), {{1}}).ok());
  EXPECT_FALSE(ReadDoubleVector(Path("y.bin")).ok());
}

TEST_F(BinaryIoTest, LargeVectorRoundTrip) {
  std::vector<double> v(100000);
  for (size_t i = 0; i < v.size(); ++i) v[i] = static_cast<double>(i) * 0.5;
  ASSERT_TRUE(WriteDoubleVector(Path("big.bin"), v).ok());
  auto back = ReadDoubleVector(Path("big.bin"));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, v);
}

}  // namespace
}  // namespace ganc
