// movie_platform: the paper's motivating scenario — a dense movie-rating
// platform (ML-1M-like) that wants to stop recommending only blockbusters.
//
//   build/examples/movie_platform [sample_size]
//
// Compares the raw rating predictor (RSVD), two published re-rankers
// (RBT, PRA), and GANC variants, and then inspects *who* received the
// long-tail items: the Spearman correlation between each user's learned
// theta^G and the average popularity of their recommendations should be
// strongly negative — long-tail items go to the users who want them.

#include <cstdio>
#include <cstdlib>

#include "core/ganc.h"
#include "core/preference.h"
#include "data/split.h"
#include "data/synthetic.h"
#include "eval/runner.h"
#include "recommender/recommender.h"
#include "recommender/rsvd.h"
#include "rerank/pra.h"
#include "rerank/rbt.h"
#include "util/stats.h"

using namespace ganc;

int main(int argc, char** argv) {
  const int sample_size = argc > 1 ? std::atoi(argv[1]) : 500;

  // A scaled ML-1M-like corpus keeps this example under a minute.
  SyntheticSpec spec = MovieLens1MSpec();
  spec.num_users = 2000;
  spec.num_items = 1800;
  auto dataset = GenerateSynthetic(spec);
  if (!dataset.ok()) return 1;
  auto split = PerUserRatioSplit(*dataset, {.train_ratio = 0.5, .seed = 7});
  if (!split.ok()) return 1;
  const RatingDataset& train = split->train;
  const RatingDataset& test = split->test;

  RsvdRecommender rsvd({.num_factors = 40,
                        .learning_rate = 0.02,
                        .regularization = 0.05,
                        .num_epochs = 25,
                        .use_biases = true});
  if (!rsvd.Fit(train).ok()) return 1;

  auto theta_g = ComputePreference(PreferenceModel::kGeneralized, train);
  auto theta_t = ComputePreference(PreferenceModel::kTfidf, train);
  if (!theta_g.ok() || !theta_t.ok()) return 1;

  NormalizedAccuracyScorer accuracy(&rsvd);
  Ganc ganc_g(&accuracy, *theta_g, CoverageKind::kDyn);
  Ganc ganc_t(&accuracy, *theta_t, CoverageKind::kDyn);
  RbtReranker rbt_pop(&rsvd, &train, {});
  PraReranker pra(&rsvd, &train, {});

  GancConfig config;
  config.top_n = 5;
  config.sample_size = sample_size;

  std::printf("== Top-5 re-ranking comparison (RSVD base) ==\n");
  const std::vector<AlgorithmEntry> entries = {
      {"RSVD", [&] { return RecommendAllUsers(rsvd, train, 5); }},
      {"RBT(RSVD, Pop)", [&] { return rbt_pop.RecommendAll(train, 5).value(); }},
      {"PRA(RSVD, 10)", [&] { return pra.RecommendAll(train, 5).value(); }},
      {"GANC(RSVD, thetaT, Dyn)",
       [&] { return ganc_t.RecommendAll(train, config).value(); }},
      {"GANC(RSVD, thetaG, Dyn)",
       [&] { return ganc_g.RecommendAll(train, config).value(); }},
  };
  const auto results =
      RunComparison(entries, train, test, MetricsConfig{.top_n = 5});
  ComparisonTable(results, 5).Print();

  // Personalization check: does long-tail go to the right users?
  auto topn = ganc_g.RecommendAll(train, config);
  if (!topn.ok()) return 1;
  std::vector<double> rec_pop(static_cast<size_t>(train.num_users()), 0.0);
  for (UserId u = 0; u < train.num_users(); ++u) {
    double acc = 0.0;
    for (ItemId i : (*topn)[static_cast<size_t>(u)]) {
      acc += static_cast<double>(train.Popularity(i));
    }
    rec_pop[static_cast<size_t>(u)] =
        acc / static_cast<double>((*topn)[static_cast<size_t>(u)].size());
  }
  std::printf(
      "\nSpearman(theta_G, avg popularity of recommendations) = %.3f\n"
      "(negative: users with high long-tail preference receive the\n"
      " long-tail items; the popularity bias is corrected *per user*)\n",
      SpearmanCorrelation(*theta_g, rec_pop));
  return 0;
}
