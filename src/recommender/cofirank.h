// CofiR: a collaborative-ranking matrix factorization with regression
// (squared) loss, approximating the CofiRank variant the paper reports.
//
// CoFiRank (Weimer et al. 2007) is maximum-margin MF optimized for ranking
// measures; its closed-source reference implementation is not available
// offline. The paper only reports the regression-loss variant CofiR100
// (it "performed consistently better than CofiN100" for the authors), and
// that variant minimizes a squared loss on ratings after per-user
// normalization — which this class implements directly: ratings are
// min-max normalized within each user profile so the model learns each
// user's relative preference ordering, then factors are trained by SGD
// with the paper's configuration (100 dims, lambda = 10 interpreted as a
// per-rating L2 weight on the ranking scale).

#ifndef GANC_RECOMMENDER_COFIRANK_H_
#define GANC_RECOMMENDER_COFIRANK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "recommender/factor_scoring_engine.h"
#include "recommender/factor_store.h"
#include "recommender/recommender.h"

namespace ganc {

/// Hyper-parameters for CofiRecommender.
struct CofiConfig {
  int32_t num_factors = 100;
  double learning_rate = 0.02;
  double regularization = 0.01;  ///< effective per-rating L2 strength
  int32_t num_epochs = 30;
  double lr_decay = 0.95;
  uint64_t seed = 29;
  /// Blocked-SGD user-block size (0 = kTrainUserBlock); part of the
  /// algorithm definition, not serialized. See train_sweep.h.
  int32_t user_block = 0;
};

/// Regression-loss collaborative ranking (CofiR).
class CofiRecommender : public Recommender {
 public:
  explicit CofiRecommender(CofiConfig config = {});

  Status Fit(const RatingDataset& train) override;
  Status Fit(const RatingDataset& train, ThreadPool* pool) override;
  void SetEpochCallback(EpochCallback callback) override {
    epoch_callback_ = std::move(callback);
  }
  int32_t num_items() const override { return num_items_; }
  void ScoreInto(UserId u, std::span<double> out) const override;
  void ScoreBatchInto(std::span<const UserId> users,
                      std::span<double> out) const override;
  std::string name() const override {
    return "CofiR" + std::to_string(config_.num_factors);
  }
  Status Save(std::ostream& os) const override;
  using Recommender::Load;
  Status Load(ArtifactReader& r, const RatingDataset* train) override;
  Status SetFactorPrecision(FactorPrecision p) override {
    return factors_.SetPrecision(p);
  }
  FactorPrecision factor_precision() const override {
    return factors_.precision();
  }

 private:
  FactorView View() const;

  CofiConfig config_;
  EpochCallback epoch_callback_;  // observability only; never saved
  int32_t num_users_ = 0;
  int32_t num_items_ = 0;
  uint64_t train_fingerprint_ = 0;  // content hash of the fitted train set
  FactorStore factors_;
};

}  // namespace ganc

#endif  // GANC_RECOMMENDER_COFIRANK_H_
