#include "recommender/rsvd.h"

#include <cmath>

#include <gtest/gtest.h>

#include "data/split.h"
#include "data/synthetic.h"

namespace ganc {
namespace {

RsvdConfig FastConfig() {
  RsvdConfig c;
  c.num_factors = 8;
  c.num_epochs = 40;
  c.learning_rate = 0.02;
  c.regularization = 0.02;
  return c;
}

TEST(RsvdTest, FitsAndPredictsOnScale) {
  auto ds = GenerateSynthetic(TinySpec());
  ASSERT_TRUE(ds.ok());
  RsvdRecommender rsvd(FastConfig());
  ASSERT_TRUE(rsvd.Fit(*ds).ok());
  // Predictions for observed pairs should be in a sane band around the
  // rating scale.
  for (int k = 0; k < 50; ++k) {
    const Rating& r = ds->ratings()[static_cast<size_t>(k)];
    const double pred = rsvd.Predict(r.user, r.item);
    EXPECT_GT(pred, -1.0);
    EXPECT_LT(pred, 7.5);
  }
}

TEST(RsvdTest, TrainRmseBeatsGlobalMeanBaseline) {
  auto ds = GenerateSynthetic(TinySpec());
  ASSERT_TRUE(ds.ok());
  RsvdRecommender rsvd(FastConfig());
  ASSERT_TRUE(rsvd.Fit(*ds).ok());
  const double model_rmse = rsvd.Rmse(*ds);
  // Global-mean predictor RMSE = population stddev of ratings.
  double mean = ds->GlobalMeanRating(), acc = 0.0;
  for (const Rating& r : ds->ratings()) {
    acc += (r.value - mean) * (r.value - mean);
  }
  const double baseline = std::sqrt(acc / static_cast<double>(ds->num_ratings()));
  EXPECT_LT(model_rmse, baseline);
}

TEST(RsvdTest, GeneralizesToHeldOut) {
  auto spec = TinySpec();
  spec.num_users = 200;
  spec.num_items = 200;
  spec.mean_activity = 40.0;
  auto ds = GenerateSynthetic(spec);
  ASSERT_TRUE(ds.ok());
  auto split = PerUserRatioSplit(*ds, {.train_ratio = 0.8, .seed = 1});
  ASSERT_TRUE(split.ok());
  RsvdRecommender rsvd(FastConfig());
  ASSERT_TRUE(rsvd.Fit(split->train).ok());
  // Test RMSE should beat the constant-3 predictor comfortably.
  double acc = 0.0;
  for (const Rating& r : split->test.ratings()) {
    acc += (r.value - 3.0) * (r.value - 3.0);
  }
  const double const_rmse =
      std::sqrt(acc / static_cast<double>(split->test.num_ratings()));
  EXPECT_LT(rsvd.Rmse(split->test), const_rmse);
}

TEST(RsvdTest, DeterministicPerSeed) {
  auto ds = GenerateSynthetic(TinySpec());
  ASSERT_TRUE(ds.ok());
  RsvdRecommender a(FastConfig()), b(FastConfig());
  ASSERT_TRUE(a.Fit(*ds).ok());
  ASSERT_TRUE(b.Fit(*ds).ok());
  EXPECT_DOUBLE_EQ(a.Predict(0, 0), b.Predict(0, 0));
  EXPECT_DOUBLE_EQ(a.Predict(3, 7), b.Predict(3, 7));
}

TEST(RsvdTest, NonNegativeVariantKeepsFactorsNonNegative) {
  auto ds = GenerateSynthetic(TinySpec());
  ASSERT_TRUE(ds.ok());
  RsvdConfig c = FastConfig();
  c.non_negative = true;
  RsvdRecommender rsvdn(c);
  ASSERT_TRUE(rsvdn.Fit(*ds).ok());
  EXPECT_EQ(rsvdn.name(), "RSVDN");
  // All predictions are dot products of non-negative vectors.
  for (UserId u = 0; u < 10; ++u) {
    for (ItemId i = 0; i < 10; ++i) {
      EXPECT_GE(rsvdn.Predict(u, i), 0.0);
    }
  }
}

TEST(RsvdTest, BiasVariantCentersOnGlobalMean) {
  auto ds = GenerateSynthetic(TinySpec());
  ASSERT_TRUE(ds.ok());
  RsvdConfig c = FastConfig();
  c.use_biases = true;
  RsvdRecommender rsvd(c);
  ASSERT_TRUE(rsvd.Fit(*ds).ok());
  EXPECT_LT(rsvd.Rmse(*ds), 1.2);
}

TEST(RsvdTest, ScoreAllMatchesPredict) {
  auto ds = GenerateSynthetic(TinySpec());
  ASSERT_TRUE(ds.ok());
  RsvdRecommender rsvd(FastConfig());
  ASSERT_TRUE(rsvd.Fit(*ds).ok());
  const auto scores = rsvd.ScoreAll(3);
  for (ItemId i = 0; i < ds->num_items(); ++i) {
    EXPECT_DOUBLE_EQ(scores[static_cast<size_t>(i)], rsvd.Predict(3, i));
  }
}

TEST(RsvdTest, InvalidConfigRejected) {
  auto ds = GenerateSynthetic(TinySpec());
  ASSERT_TRUE(ds.ok());
  RsvdConfig c = FastConfig();
  c.num_factors = 0;
  EXPECT_FALSE(RsvdRecommender(c).Fit(*ds).ok());
  c = FastConfig();
  c.learning_rate = 0.0;
  EXPECT_FALSE(RsvdRecommender(c).Fit(*ds).ok());
}

TEST(RsvdTest, RmseOnEmptyTestIsZero) {
  auto ds = GenerateSynthetic(TinySpec());
  ASSERT_TRUE(ds.ok());
  RsvdRecommender rsvd(FastConfig());
  ASSERT_TRUE(rsvd.Fit(*ds).ok());
  RatingDatasetBuilder b(ds->num_users(), ds->num_items());
  auto empty = std::move(b).Build();
  ASSERT_TRUE(empty.ok());
  EXPECT_DOUBLE_EQ(rsvd.Rmse(*empty), 0.0);
}

}  // namespace
}  // namespace ganc
