// Coverage recommenders for GANC (Section III-B).
//
//   Rand  c(u, i) ~ U(0, 1)            maximal-coverage control
//   Stat  c(i) = 1 / sqrt(f_i^R + 1)   static long-tail promotion
//   Dyn   c(i) = 1 / sqrt(f_i^A + 1)   diminishing-returns promotion based
//                                      on the recommendations made so far
//
// Dyn is the submodularity-inducing component: every time an item is
// recommended its future coverage gain shrinks, so OSLG steers later
// (higher-theta) users toward still-uncovered items.

#ifndef GANC_CORE_COVERAGE_H_
#define GANC_CORE_COVERAGE_H_

#include <cmath>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "data/dataset.h"

namespace ganc {

/// Coverage score provider c(u, i) in [0, 1].
class CoverageModel {
 public:
  virtual ~CoverageModel() = default;

  /// Coverage score of item i for user u.
  virtual double Score(UserId u, ItemId i) const = 0;

  /// Notifies the model that `i` was just recommended (no-op unless Dyn).
  virtual void Observe(ItemId /*i*/) {}

  /// True when Observe changes future scores (couples users' optima).
  virtual bool IsDynamic() const { return false; }

  virtual std::string name() const = 0;
};

/// Rand: uniform per (seed, user, item), deterministic and thread-safe.
class RandCoverage : public CoverageModel {
 public:
  RandCoverage(int32_t num_items, uint64_t seed)
      : num_items_(num_items), seed_(seed) {}

  double Score(UserId u, ItemId i) const override;
  std::string name() const override { return "Rand"; }

 private:
  int32_t num_items_;
  uint64_t seed_;
};

/// Stat: monotone decreasing in train popularity; constant gain.
class StatCoverage : public CoverageModel {
 public:
  explicit StatCoverage(const RatingDataset& train);

  double Score(UserId u, ItemId i) const override;
  std::string name() const override { return "Stat"; }

 private:
  std::vector<double> score_;  // 1 / sqrt(f_i^R + 1)
};

/// Dyn: decreasing in the running recommendation frequency f_i^A.
class DynCoverage : public CoverageModel {
 public:
  explicit DynCoverage(int32_t num_items)
      : counts_(static_cast<size_t>(num_items), 0) {}

  double Score(UserId u, ItemId i) const override;
  void Observe(ItemId i) override {
    ++counts_[static_cast<size_t>(i)];
  }
  bool IsDynamic() const override { return true; }
  std::string name() const override { return "Dyn"; }

  /// Running recommendation frequencies f^A (the OSLG snapshot payload).
  const std::vector<uint32_t>& counts() const { return counts_; }
  void SetCounts(std::vector<uint32_t> counts) { counts_ = std::move(counts); }

 private:
  std::vector<uint32_t> counts_;
};

/// Read-only Dyn scoring over borrowed counts. OSLG's parallel phase
/// scores every out-of-sample user against the snapshot of their
/// nearest-theta sampled user; this view does it without copying the
/// count vector per user (the snapshot is never mutated there).
class DynSnapshotView : public CoverageModel {
 public:
  explicit DynSnapshotView(std::span<const uint32_t> counts)
      : counts_(counts) {}

  double Score(UserId /*u*/, ItemId i) const override {
    return 1.0 /
           std::sqrt(static_cast<double>(counts_[static_cast<size_t>(i)]) +
                     1.0);
  }
  std::string name() const override { return "Dyn"; }

 private:
  std::span<const uint32_t> counts_;
};

/// Which coverage recommender a GANC variant uses.
enum class CoverageKind { kRand, kStat, kDyn };

/// Human-readable name ("Rand"/"Stat"/"Dyn").
std::string CoverageKindName(CoverageKind kind);

/// Factory for the chosen kind.
std::unique_ptr<CoverageModel> MakeCoverage(CoverageKind kind,
                                            const RatingDataset& train,
                                            uint64_t seed);

}  // namespace ganc

#endif  // GANC_CORE_COVERAGE_H_
