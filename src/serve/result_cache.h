// Sharded LRU cache over served top-N lists.
//
// The online layer answers many repeated requests for the same (user, n)
// pair — head users dominate real traffic — so RecommendationService
// fronts live scoring with this cache. The key is the full request
// identity: user, list length, a fingerprint of the (canonicalized)
// exclusion set, and the service's snapshot version. Because the version
// is part of the key, a snapshot swap invalidates every cached entry
// implicitly: lookups under the new version miss, and the stale entries
// age out through normal LRU eviction (Clear() drops them eagerly).
//
// Sharding: entries are distributed over independently locked shards by
// key hash, so concurrent request threads rarely contend on one mutex.
// Each shard runs its own LRU (intrusive list + hash map), giving
// approximate-global-LRU behavior at a fraction of the synchronization
// cost — the standard server-cache trade.

#ifndef GANC_SERVE_RESULT_CACHE_H_
#define GANC_SERVE_RESULT_CACHE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <list>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "data/dataset.h"

namespace ganc {

/// FNV-1a over a canonical (sorted ascending, deduplicated) exclusion
/// set; the empty set hashes to the FNV offset basis. Two requests with
/// the same exclusion *set* always produce the same fingerprint, so they
/// share one cache entry regardless of the order the ids arrived in.
uint64_t ExclusionFingerprint(std::span<const ItemId> sorted_exclusions);

/// Thread-safe sharded LRU mapping request identity -> served item list.
class ServeResultCache {
 public:
  /// Full identity of a served list.
  struct Key {
    UserId user = 0;
    int32_t n = 0;
    uint64_t exclusion_fp = 0;
    uint64_t snapshot_version = 0;

    bool operator==(const Key&) const = default;
  };

  /// Running hit/miss/eviction counts (monotonic, approximate ordering
  /// under concurrency).
  struct Counters {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t insertions = 0;
    uint64_t evictions = 0;
  };

  /// `capacity` is the total entry budget across all shards (each shard
  /// gets an equal slice, at least one entry). `num_shards` is clamped
  /// to [1, capacity].
  explicit ServeResultCache(size_t capacity, size_t num_shards = 8);

  ServeResultCache(const ServeResultCache&) = delete;
  ServeResultCache& operator=(const ServeResultCache&) = delete;

  /// Copies the cached list for `key` into `*out` and promotes the entry
  /// to most-recently-used. Returns false (out untouched) on miss.
  bool Lookup(const Key& key, std::vector<ItemId>* out);

  /// Inserts (or refreshes) the entry, evicting the shard's LRU tail
  /// when over budget.
  void Insert(const Key& key, std::span<const ItemId> items);

  /// Drops every entry (eager invalidation on snapshot swap).
  void Clear();

  /// Current entry count across shards.
  size_t size() const;

  size_t capacity() const { return capacity_; }
  size_t num_shards() const { return shards_.size(); }

  Counters counters() const;

 private:
  struct Entry {
    Key key;
    std::vector<ItemId> items;
  };

  struct KeyHash {
    size_t operator()(const Key& k) const;
  };

  /// One independently locked LRU: `lru` front is most-recent, the map
  /// indexes into it.
  struct Shard {
    mutable std::mutex mu;
    std::list<Entry> lru;
    std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> index;
  };

  Shard& ShardFor(const Key& key);

  size_t capacity_ = 0;
  size_t per_shard_capacity_ = 0;
  std::vector<Shard> shards_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> insertions_{0};
  std::atomic<uint64_t> evictions_{0};
};

}  // namespace ganc

#endif  // GANC_SERVE_RESULT_CACHE_H_
