#include "rerank/pra.h"

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "util/stats.h"

#include "data/split.h"
#include "data/synthetic.h"
#include "eval/metrics.h"
#include "recommender/recommender.h"
#include "recommender/rsvd.h"

namespace ganc {
namespace {

struct Fixture {
  RatingDataset train;
  RatingDataset test;
  RsvdRecommender rsvd{{.num_factors = 8,
                        .learning_rate = 0.02,
                        .regularization = 0.02,
                        .num_epochs = 30,
                        .use_biases = true}};

  Fixture() {
    auto spec = TinySpec();
    spec.num_users = 150;
    spec.num_items = 200;
    spec.mean_activity = 25.0;
    auto ds = GenerateSynthetic(spec);
    EXPECT_TRUE(ds.ok());
    auto split = PerUserRatioSplit(*ds, {.train_ratio = 0.5, .seed = 12});
    EXPECT_TRUE(split.ok());
    train = std::move(split->train);
    test = std::move(split->test);
    EXPECT_TRUE(rsvd.Fit(train).ok());
  }
};

TEST(PraTest, NameTemplate) {
  Fixture f;
  PraConfig cfg;
  cfg.exchangeable_size = 20;
  EXPECT_EQ(PraReranker(&f.rsvd, &f.train, cfg).name(), "PRA(RSVD, 20)");
}

TEST(PraTest, TendenciesInUnitInterval) {
  Fixture f;
  PraReranker pra(&f.rsvd, &f.train, {});
  for (double t : pra.tendency()) {
    EXPECT_GE(t, 0.0);
    EXPECT_LE(t, 1.0);
  }
}

TEST(PraTest, TendencyTracksRatedPopularity) {
  // A user who rated only the most popular items must have a higher
  // popularity tendency than one who rated only obscure ones.
  RatingDatasetBuilder b(22, 6);
  // Items 0-1 popular (rated by many), items 4-5 obscure.
  for (UserId u = 2; u < 20; ++u) {
    ASSERT_TRUE(b.Add(u, 0, 4.0f).ok());
    ASSERT_TRUE(b.Add(u, 1, 4.0f).ok());
  }
  ASSERT_TRUE(b.Add(0, 0, 4.0f).ok());  // user 0: popular profile
  ASSERT_TRUE(b.Add(0, 1, 4.0f).ok());
  ASSERT_TRUE(b.Add(1, 4, 4.0f).ok());  // user 1: obscure profile
  ASSERT_TRUE(b.Add(1, 5, 4.0f).ok());
  ASSERT_TRUE(b.Add(20, 2, 4.0f).ok());
  ASSERT_TRUE(b.Add(21, 3, 4.0f).ok());
  auto ds = std::move(b).Build();
  ASSERT_TRUE(ds.ok());
  RsvdRecommender rsvd({.num_factors = 4, .num_epochs = 5});
  ASSERT_TRUE(rsvd.Fit(*ds).ok());
  PraReranker pra(&rsvd, &ds.value(), {});
  EXPECT_GT(pra.tendency()[0], pra.tendency()[1]);
}

TEST(PraTest, ListsComeFromHeadAndExchangeable) {
  Fixture f;
  PraConfig cfg;
  cfg.exchangeable_size = 10;
  PraReranker pra(&f.rsvd, &f.train, cfg);
  auto topn = pra.RecommendAll(f.train, 5);
  ASSERT_TRUE(topn.ok());
  for (UserId u = 0; u < f.train.num_users(); ++u) {
    const auto head = f.rsvd.RecommendTopN(u, f.train.UnratedItems(u), 15);
    const std::set<ItemId> pool(head.begin(), head.end());
    ASSERT_EQ((*topn)[static_cast<size_t>(u)].size(), 5u);
    for (ItemId i : (*topn)[static_cast<size_t>(u)]) {
      EXPECT_TRUE(pool.count(i) > 0);
    }
  }
}

TEST(PraTest, SwapsMoveListTowardTarget) {
  Fixture f;
  PraReranker pra(&f.rsvd, &f.train, {});
  auto pra_topn = pra.RecommendAll(f.train, 5);
  ASSERT_TRUE(pra_topn.ok());
  const auto base = RecommendAllUsers(f.rsvd, f.train, 5);
  // For each user, PRA's list popularity must be at least as close to the
  // target tendency as the base list's.
  std::vector<double> pop = f.train.PopularityVector();
  MinMaxNormalize(&pop);
  auto mean_pop = [&](const std::vector<ItemId>& l) {
    double acc = 0.0;
    for (ItemId i : l) acc += pop[static_cast<size_t>(i)];
    return acc / static_cast<double>(l.size());
  };
  int improved_or_equal = 0;
  for (UserId u = 0; u < f.train.num_users(); ++u) {
    const double target = pra.tendency()[static_cast<size_t>(u)];
    const double d_pra =
        std::abs(mean_pop((*pra_topn)[static_cast<size_t>(u)]) - target);
    const double d_base =
        std::abs(mean_pop(base[static_cast<size_t>(u)]) - target);
    if (d_pra <= d_base + 1e-9) ++improved_or_equal;
  }
  EXPECT_EQ(improved_or_equal, f.train.num_users());
}

TEST(PraTest, AccuracyStaysNearBase) {
  // PRA only shuffles within the head, so F-measure should stay within a
  // modest factor of the base model (paper Table IV shape).
  Fixture f;
  PraReranker pra(&f.rsvd, &f.train, {});
  auto topn = pra.RecommendAll(f.train, 5);
  ASSERT_TRUE(topn.ok());
  const MetricsConfig mcfg{.top_n = 5};
  const auto pra_m = EvaluateTopN(f.train, f.test, *topn, mcfg);
  const auto base_m = EvaluateTopN(f.train, f.test,
                                   RecommendAllUsers(f.rsvd, f.train, 5), mcfg);
  EXPECT_GT(pra_m.f_measure, 0.3 * base_m.f_measure);
}

TEST(PraTest, InvalidTopNRejected) {
  Fixture f;
  PraReranker pra(&f.rsvd, &f.train, {});
  EXPECT_FALSE(pra.RecommendAll(f.train, 0).ok());
}

}  // namespace
}  // namespace ganc
