#include "core/coverage.h"

#include <cmath>

#include "util/rng.h"

namespace ganc {

double RandCoverage::Score(UserId u, ItemId i) const {
  // Stateless hash -> uniform: SplitMix64 finalizer over (seed, u, i).
  uint64_t z = seed_ ^ (static_cast<uint64_t>(u) * 0x9E3779B97F4A7C15ULL) ^
               (static_cast<uint64_t>(i) + 0xBF58476D1CE4E5B9ULL);
  z ^= z >> 30;
  z *= 0xBF58476D1CE4E5B9ULL;
  z ^= z >> 27;
  z *= 0x94D049BB133111EBULL;
  z ^= z >> 31;
  return static_cast<double>(z >> 11) * 0x1.0p-53;
}

StatCoverage::StatCoverage(const RatingDataset& train) {
  score_.resize(static_cast<size_t>(train.num_items()));
  for (ItemId i = 0; i < train.num_items(); ++i) {
    score_[static_cast<size_t>(i)] =
        1.0 / std::sqrt(static_cast<double>(train.Popularity(i)) + 1.0);
  }
}

double StatCoverage::Score(UserId /*u*/, ItemId i) const {
  return score_[static_cast<size_t>(i)];
}

double DynCoverage::Score(UserId /*u*/, ItemId i) const {
  return 1.0 /
         std::sqrt(static_cast<double>(counts_[static_cast<size_t>(i)]) + 1.0);
}

std::string CoverageKindName(CoverageKind kind) {
  switch (kind) {
    case CoverageKind::kRand:
      return "Rand";
    case CoverageKind::kStat:
      return "Stat";
    case CoverageKind::kDyn:
      return "Dyn";
  }
  return "?";
}

std::unique_ptr<CoverageModel> MakeCoverage(CoverageKind kind,
                                            const RatingDataset& train,
                                            uint64_t seed) {
  switch (kind) {
    case CoverageKind::kRand:
      return std::make_unique<RandCoverage>(train.num_items(), seed);
    case CoverageKind::kStat:
      return std::make_unique<StatCoverage>(train);
    case CoverageKind::kDyn:
      return std::make_unique<DynCoverage>(train.num_items());
  }
  return nullptr;
}

}  // namespace ganc
