// Accuracy recommenders for GANC (Section III-A).
//
// GANC's value function needs a(i) in [0, 1] on the same scale as the
// coverage score. Score-producing models (RSVD, PSVD, CofiR, ...) are
// min-max normalized per user; the non-personalized Pop model, which does
// not emit scores, contributes the indicator a(i) = 1[i in Pop's top-N
// unseen items for u] exactly as the paper defines.
//
// Like Recommender, the scoring primitives are ScoreInto and the
// batch-major ScoreBatchInto (both adapters forward the batch to the
// base model's blocked kernel); ScoreAll is the allocating wrapper.

#ifndef GANC_CORE_ACCURACY_SCORER_H_
#define GANC_CORE_ACCURACY_SCORER_H_

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "recommender/recommender.h"

namespace ganc {

/// Produces normalized accuracy scores a(i) in [0, 1] for all items.
class AccuracyScorer {
 public:
  virtual ~AccuracyScorer() = default;

  /// Catalog size the scorer produces scores over.
  virtual int32_t num_items() const = 0;

  /// Writes a(i) for every item in the catalog for user u into `out`
  /// (exactly num_items() entries), each in [0, 1]. Thread-safe.
  virtual void ScoreInto(UserId u, std::span<double> out) const = 0;

  /// Batch-major variant over a user batch (same layout and contract as
  /// Recommender::ScoreBatchInto); must match per-user ScoreInto calls.
  /// The default loops over ScoreInto; the adapters forward to the base
  /// model's blocked kernel. Thread-safe.
  virtual void ScoreBatchInto(std::span<const UserId> users,
                              std::span<double> out) const;

  /// Allocating convenience wrapper over ScoreInto.
  std::vector<double> ScoreAll(UserId u) const;

  virtual std::string name() const = 0;
};

/// Per-user min-max normalization of an underlying Recommender's scores.
class NormalizedAccuracyScorer : public AccuracyScorer {
 public:
  /// `base` must be fitted and outlive this scorer.
  explicit NormalizedAccuracyScorer(const Recommender* base) : base_(base) {}

  int32_t num_items() const override { return base_->num_items(); }
  void ScoreInto(UserId u, std::span<double> out) const override;
  void ScoreBatchInto(std::span<const UserId> users,
                      std::span<double> out) const override;
  std::string name() const override { return base_->name(); }

 private:
  const Recommender* base_;
};

/// Indicator accuracy for non-scoring models: a(i) = 1 iff i is in the
/// base model's top-N unseen items for the user (paper's Pop adapter).
class TopNIndicatorScorer : public AccuracyScorer {
 public:
  /// `base` and `train` must be fitted/valid and outlive this scorer.
  TopNIndicatorScorer(const Recommender* base, const RatingDataset* train,
                      int top_n)
      : base_(base), train_(train), top_n_(top_n) {}

  int32_t num_items() const override { return train_->num_items(); }
  void ScoreInto(UserId u, std::span<double> out) const override;
  void ScoreBatchInto(std::span<const UserId> users,
                      std::span<double> out) const override;
  std::string name() const override { return base_->name(); }

 private:
  const Recommender* base_;
  const RatingDataset* train_;
  int top_n_;
};

}  // namespace ganc

#endif  // GANC_CORE_ACCURACY_SCORER_H_
