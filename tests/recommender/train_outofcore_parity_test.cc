// Out-of-core training parity: for every recommender, fitting against a
// mapped dataset under a tiny residency budget must produce the same
// artifact bytes and top-N lists as fitting the fully resident dataset —
// and the mapped fit must never materialize the full rating matrix.
// Likewise the blocked trainers must be thread-count invariant: 1, 2,
// and 8 worker threads yield byte-identical artifacts, because work is
// partitioned into fixed user blocks and merged in block order.

#include <cstdio>
#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "data/dataset.h"
#include "data/synthetic.h"
#include "recommender/bpr.h"
#include "recommender/cofirank.h"
#include "recommender/item_knn.h"
#include "recommender/pop.h"
#include "recommender/psvd.h"
#include "recommender/random_rec.h"
#include "recommender/random_walk.h"
#include "recommender/rsvd.h"
#include "recommender/user_knn.h"
#include "util/thread_pool.h"

namespace ganc {
namespace {

std::string TestPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

RatingDataset MakeData() {
  SyntheticSpec spec = TinySpec();
  spec.num_users = 300;
  spec.num_items = 120;
  spec.mean_activity = 12.0;
  auto ds = GenerateSynthetic(spec);
  EXPECT_TRUE(ds.ok());
  return std::move(ds).value();
}

// Fresh unfitted models, one factory call per fit so runs stay
// independent. user_block = 32 forces multi-block merges on the
// 300-user fixture; it is part of the algorithm definition, so every
// fit below shares it.
std::vector<std::unique_ptr<Recommender>> MakeModels() {
  std::vector<std::unique_ptr<Recommender>> models;
  models.push_back(std::make_unique<PopRecommender>());
  models.push_back(std::make_unique<RandomRecommender>(123));
  models.push_back(
      std::make_unique<RandomWalkRecommender>(RandomWalkConfig{.beta = 0.6}));
  models.push_back(
      std::make_unique<ItemKnnRecommender>(ItemKnnConfig{.num_neighbors = 10}));
  models.push_back(
      std::make_unique<UserKnnRecommender>(UserKnnConfig{.num_neighbors = 10}));
  models.push_back(std::make_unique<PsvdRecommender>(
      PsvdConfig{.num_factors = 8, .user_block = 32}));
  models.push_back(std::make_unique<RsvdRecommender>(RsvdConfig{
      .num_factors = 6, .num_epochs = 3, .use_biases = true,
      .user_block = 32}));
  models.push_back(std::make_unique<BprRecommender>(
      BprConfig{.num_factors = 5, .num_epochs = 3, .user_block = 32}));
  models.push_back(std::make_unique<CofiRecommender>(
      CofiConfig{.num_factors = 5, .num_epochs = 3, .user_block = 32}));
  return models;
}

std::string FitAndSerialize(Recommender& model, const RatingDataset& train,
                            ThreadPool* pool) {
  const Status fitted = model.Fit(train, pool);
  EXPECT_TRUE(fitted.ok()) << model.name() << ": " << fitted.ToString();
  std::ostringstream os(std::ios::binary);
  const Status saved = model.Save(os);
  EXPECT_TRUE(saved.ok()) << model.name() << ": " << saved.ToString();
  return os.str();
}

TEST(TrainOutOfCoreParityTest, MappedBudgetedFitMatchesResidentFit) {
  const RatingDataset eager = MakeData();
  const std::string path = TestPath("train_outofcore_parity.gdc");
  ASSERT_TRUE(eager.SaveBinaryFile(path).ok());
  auto mapped = RatingDataset::LoadMappedFile(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  // ~4KiB of resident rows per window: many windows per epoch.
  mapped->set_train_budget_bytes(4096);

  auto resident_models = MakeModels();
  auto mapped_models = MakeModels();
  for (size_t m = 0; m < resident_models.size(); ++m) {
    const std::string want =
        FitAndSerialize(*resident_models[m], eager, nullptr);
    const std::string got = FitAndSerialize(*mapped_models[m], *mapped,
                                            nullptr);
    EXPECT_EQ(want, got)
        << resident_models[m]->name() << ": out-of-core fit diverged";
  }
  // Satellite check: no trainer materialized the full matrix — the CSC
  // index and ratings() order were never built on the mapped dataset.
  EXPECT_TRUE(mapped->IsMapped());
  EXPECT_FALSE(mapped->ResidencyMaterialized());

  // Top-N parity on the mapped dataset (scoring reads rows only).
  for (size_t m = 0; m < resident_models.size(); ++m) {
    EXPECT_EQ(RecommendAllUsers(*resident_models[m], eager, 10),
              RecommendAllUsers(*mapped_models[m], *mapped, 10))
        << resident_models[m]->name();
  }
  EXPECT_FALSE(mapped->ResidencyMaterialized());
  std::remove(path.c_str());
}

TEST(TrainOutOfCoreParityTest, FitIsBudgetInvariant) {
  const RatingDataset eager = MakeData();
  const std::string path = TestPath("train_budget_invariance.gdc");
  ASSERT_TRUE(eager.SaveBinaryFile(path).ok());

  // Reference: unbounded budget (one window).
  auto reference_models = MakeModels();
  std::vector<std::string> reference;
  for (auto& model : reference_models) {
    reference.push_back(FitAndSerialize(*model, eager, nullptr));
  }
  for (const int64_t budget : {int64_t{512}, int64_t{1} << 14}) {
    auto mapped = RatingDataset::LoadMappedFile(path);
    ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
    mapped->set_train_budget_bytes(budget);
    auto models = MakeModels();
    for (size_t m = 0; m < models.size(); ++m) {
      EXPECT_EQ(reference[m], FitAndSerialize(*models[m], *mapped, nullptr))
          << models[m]->name() << ": budget " << budget << " diverged";
    }
  }
  std::remove(path.c_str());
}

TEST(TrainOutOfCoreParityTest, FitIsThreadCountInvariant) {
  const RatingDataset train = MakeData();

  auto serial_models = MakeModels();
  std::vector<std::string> serial;
  for (auto& model : serial_models) {
    serial.push_back(FitAndSerialize(*model, train, nullptr));
  }
  for (const size_t threads : {size_t{2}, size_t{8}}) {
    ThreadPool pool(threads);
    auto models = MakeModels();
    for (size_t m = 0; m < models.size(); ++m) {
      EXPECT_EQ(serial[m], FitAndSerialize(*models[m], train, &pool))
          << models[m]->name() << ": " << threads << " threads diverged";
    }
  }
}

}  // namespace
}  // namespace ganc
