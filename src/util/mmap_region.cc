#include "util/mmap_region.h"

#include <cstdint>

#if defined(__unix__) || defined(__APPLE__)
#define GANC_HAS_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define GANC_HAS_MMAP 0
#endif

namespace ganc {

bool MmapRegion::Supported() { return GANC_HAS_MMAP != 0; }

MmapRegion& MmapRegion::operator=(MmapRegion&& other) noexcept {
  if (this != &other) {
    Reset();
    addr_ = other.addr_;
    size_ = other.size_;
    other.addr_ = nullptr;
    other.size_ = 0;
  }
  return *this;
}

#if GANC_HAS_MMAP

Result<MmapRegion> MmapRegion::Map(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Status::IOError("cannot open " + path);
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IOError("cannot stat " + path);
  }
  if (!S_ISREG(st.st_mode)) {
    ::close(fd);
    return Status::IOError(path + " is not a regular file");
  }
  MmapRegion region;
  region.size_ = static_cast<size_t>(st.st_size);
  if (region.size_ == 0) {
    // mmap rejects zero-length maps; an empty file maps to an empty
    // region and fails later parsing with a proper truncation error.
    ::close(fd);
    region.addr_ = nullptr;
    return region;
  }
  void* addr = ::mmap(nullptr, region.size_, PROT_READ, MAP_PRIVATE, fd, 0);
  // The mapping keeps its own reference to the file; the descriptor is
  // not needed past this point either way.
  ::close(fd);
  if (addr == MAP_FAILED) {
    return Status::IOError("mmap failed for " + path);
  }
  region.addr_ = addr;
  return region;
}

void MmapRegion::Reset() {
  if (addr_ != nullptr) {
    ::munmap(addr_, size_);
    addr_ = nullptr;
    size_ = 0;
  }
}

void ReleaseMappedPages(const void* p, size_t len) {
  if (p == nullptr || len == 0) return;
  const size_t page = static_cast<size_t>(::sysconf(_SC_PAGESIZE));
  const uintptr_t lo = reinterpret_cast<uintptr_t>(p);
  const uintptr_t hi = lo + len;
  // Shrink inward to whole pages so neighbouring data sharing an edge
  // page is never dropped out from under a concurrent reader.
  const uintptr_t first = (lo + page - 1) / page * page;
  const uintptr_t last = hi / page * page;
  if (first >= last) return;
  ::madvise(reinterpret_cast<void*>(first), last - first, MADV_DONTNEED);
}

#else  // !GANC_HAS_MMAP

Result<MmapRegion> MmapRegion::Map(const std::string& path) {
  (void)path;
  return Status::NotImplemented("mmap is not available on this platform");
}

void MmapRegion::Reset() {}

void ReleaseMappedPages(const void* p, size_t len) {
  (void)p;
  (void)len;
}

#endif  // GANC_HAS_MMAP

}  // namespace ganc
