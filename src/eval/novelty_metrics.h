// Additional beyond-accuracy metrics from the novelty/diversity survey
// literature the paper builds on (Castells/Vargas; Kaminskas & Bridge):
// expected popularity complement, recommendation-distribution entropy,
// and mean intra-list popularity. They complement Table III's
// LTAccuracy / Coverage / Gini in the ablation benches.

#ifndef GANC_EVAL_NOVELTY_METRICS_H_
#define GANC_EVAL_NOVELTY_METRICS_H_

#include <vector>

#include "data/dataset.h"

namespace ganc {

/// Expected Popularity Complement @N: mean over all recommended slots of
/// (1 - normalized popularity). 1 = pure long-tail, 0 = pure blockbusters.
double ExpectedPopularityComplement(
    const RatingDataset& train,
    const std::vector<std::vector<ItemId>>& topn, int top_n);

/// Shannon entropy of the recommendation frequency distribution,
/// normalized by log(|I|) into [0, 1]. Higher = recommendations spread
/// more evenly over the catalog (complements Gini).
double RecommendationEntropy(const RatingDataset& train,
                             const std::vector<std::vector<ItemId>>& topn,
                             int top_n);

/// Mean train popularity of recommended items (the raw quantity behind
/// Figure 1-style audits of a recommender's output).
double MeanRecommendedPopularity(
    const RatingDataset& train,
    const std::vector<std::vector<ItemId>>& topn, int top_n);

}  // namespace ganc

#endif  // GANC_EVAL_NOVELTY_METRICS_H_
