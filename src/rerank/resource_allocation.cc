#include "rerank/resource_allocation.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/stats.h"

namespace ganc {

FiveDReranker::FiveDReranker(const Recommender* base,
                             const RatingDataset* train, FiveDConfig config)
    : base_(base), train_(train), config_(config) {
  tail_ = ComputeLongTail(*train);

  // Phase 1: rating-proportional resource allocation from users to items.
  item_resource_.assign(static_cast<size_t>(train->num_items()), 0.0);
  for (UserId u = 0; u < train->num_users(); ++u) {
    const auto& row = train->ItemsOf(u);
    double total = 0.0;
    for (const ItemRating& ir : row) total += ir.value;
    if (total <= 0.0) continue;
    for (const ItemRating& ir : row) {
      item_resource_[static_cast<size_t>(ir.item)] +=
          static_cast<double>(ir.value) / total;
    }
  }

  inv_popularity_.assign(static_cast<size_t>(train->num_items()), 0.0);
  item_avg_rating_.assign(static_cast<size_t>(train->num_items()), 0.0);
  for (ItemId i = 0; i < train->num_items(); ++i) {
    inv_popularity_[static_cast<size_t>(i)] =
        1.0 / std::sqrt(static_cast<double>(train->Popularity(i)) + 1.0);
    const auto& col = train->UsersOf(i);
    if (col.empty()) continue;
    double acc = 0.0;
    for (const UserRating& ur : col) acc += ur.value;
    item_avg_rating_[static_cast<size_t>(i)] =
        acc / static_cast<double>(col.size());
  }
}

std::string FiveDReranker::name() const {
  std::string n = "5D(" + base_->name();
  if (config_.accuracy_filter) n += ", A";
  if (config_.rank_by_rankings) n += ", RR";
  return n + ")";
}

namespace {

/// Per-user ascending ranks (0 = smallest value) for rank-by-rankings.
std::vector<double> RanksOf(const std::vector<double>& values) {
  std::vector<size_t> order(values.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return values[a] < values[b]; });
  std::vector<double> ranks(values.size());
  for (size_t r = 0; r < order.size(); ++r) {
    ranks[order[r]] = static_cast<double>(r);
  }
  return ranks;
}

}  // namespace

Result<RerankedCollection> FiveDReranker::RecommendAll(
    const RatingDataset& train, int top_n) const {
  if (top_n <= 0) return Status::InvalidArgument("top_n must be positive");

  // Phase 2 denominator: sum over users of r_hat(s, i)^q per item.
  std::vector<double> denom(static_cast<size_t>(train.num_items()), 0.0);
  for (UserId u = 0; u < train.num_users(); ++u) {
    const std::vector<double> scores = base_->ScoreAll(u);
    for (ItemId i = 0; i < train.num_items(); ++i) {
      denom[static_cast<size_t>(i)] += std::pow(
          std::max(scores[static_cast<size_t>(i)], 0.0), config_.q);
    }
  }

  RerankedCollection result(static_cast<size_t>(train.num_users()));
  for (UserId u = 0; u < train.num_users(); ++u) {
    const std::vector<double> scores = base_->ScoreAll(u);
    std::vector<ItemId> candidates = train.UnratedItems(u);

    if (config_.accuracy_filter) {
      // "A": keep the user's top-k predicted items only.
      const size_t k = static_cast<size_t>(config_.accuracy_filter_multiple) *
                       static_cast<size_t>(top_n);
      if (candidates.size() > k) {
        std::nth_element(candidates.begin(),
                         candidates.begin() + static_cast<long>(k) - 1,
                         candidates.end(), [&](ItemId a, ItemId b) {
                           const double sa = scores[static_cast<size_t>(a)];
                           const double sb = scores[static_cast<size_t>(b)];
                           if (sa != sb) return sa > sb;
                           return a < b;
                         });
        candidates.resize(k);
      }
    }

    // The five dimensions over the candidate pool.
    const size_t m = candidates.size();
    std::vector<double> accuracy(m), balance(m), coverage(m), quality(m),
        quantity(m);
    for (size_t c = 0; c < m; ++c) {
      const ItemId i = candidates[c];
      const size_t si = static_cast<size_t>(i);
      accuracy[c] = scores[si];
      const double rel =
          denom[si] > 0.0
              ? std::pow(std::max(scores[si], 0.0), config_.q) / denom[si]
              : 0.0;
      balance[c] = item_resource_[si] * rel;
      coverage[c] = inv_popularity_[si];
      quality[c] = item_avg_rating_[si];
      quantity[c] = tail_.Contains(i) ? 1.0 : 0.0;
    }

    std::vector<double> score(m, 0.0);
    if (config_.rank_by_rankings) {
      // "RR": scale-free Borda aggregation of the per-dimension ranks.
      const std::vector<double> ra = RanksOf(accuracy);
      const std::vector<double> rb = RanksOf(balance);
      const std::vector<double> rc = RanksOf(coverage);
      const std::vector<double> rq = RanksOf(quality);
      const std::vector<double> rt = RanksOf(quantity);
      for (size_t c = 0; c < m; ++c) {
        score[c] = ra[c] + rb[c] + rc[c] + rq[c] + rt[c];
      }
    } else {
      MinMaxNormalize(&accuracy);
      MinMaxNormalize(&balance);
      MinMaxNormalize(&coverage);
      MinMaxNormalize(&quality);
      for (size_t c = 0; c < m; ++c) {
        score[c] = accuracy[c] + balance[c] + coverage[c] + quality[c] +
                   quantity[c];
      }
    }

    std::vector<ScoredItem> scored;
    scored.reserve(m);
    for (size_t c = 0; c < m; ++c) scored.push_back({candidates[c], score[c]});
    const std::vector<ScoredItem> top =
        SelectTopK(scored, static_cast<size_t>(top_n));
    auto& out = result[static_cast<size_t>(u)];
    out.reserve(top.size());
    for (const ScoredItem& s : top) out.push_back(s.item);
  }
  return result;
}

}  // namespace ganc
