// Bayesian Personalized Ranking matrix factorization (Rendle et al.
// 2009) on implicit feedback derived from the rating data.
//
// The paper's introduction motivates CF from "historical purchase logs";
// BPR is the canonical model for that implicit regime, so the library
// ships it as an additional accuracy recommender. Ratings are binarized
// (any observation is positive), and factors are trained by SGD on
// sampled (user, positive item, negative item) triples with the
// pairwise logistic loss ln sigma(x_ui - x_uj).

#ifndef GANC_RECOMMENDER_BPR_H_
#define GANC_RECOMMENDER_BPR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "recommender/factor_scoring_engine.h"
#include "recommender/factor_store.h"
#include "recommender/recommender.h"

namespace ganc {

/// Hyper-parameters for BprRecommender.
struct BprConfig {
  int32_t num_factors = 32;
  double learning_rate = 0.05;
  double regularization = 0.01;
  /// Number of sampled triples per epoch as a multiple of |D|.
  double samples_per_rating = 1.0;
  int32_t num_epochs = 30;
  uint64_t seed = 41;
  /// Blocked-SGD user-block size (0 = kTrainUserBlock); part of the
  /// algorithm definition, not serialized. See train_sweep.h.
  int32_t user_block = 0;
};

/// BPR-MF implicit-feedback ranker.
class BprRecommender : public Recommender {
 public:
  explicit BprRecommender(BprConfig config = {});

  Status Fit(const RatingDataset& train) override;
  Status Fit(const RatingDataset& train, ThreadPool* pool) override;
  void SetEpochCallback(EpochCallback callback) override {
    epoch_callback_ = std::move(callback);
  }
  int32_t num_items() const override { return num_items_; }
  void ScoreInto(UserId u, std::span<double> out) const override;
  void ScoreBatchInto(std::span<const UserId> users,
                      std::span<double> out) const override;
  std::string name() const override { return "BPR"; }
  Status Save(std::ostream& os) const override;
  using Recommender::Load;
  Status Load(ArtifactReader& r, const RatingDataset* train) override;
  Status SetFactorPrecision(FactorPrecision p) override {
    return factors_.SetPrecision(p);
  }
  FactorPrecision factor_precision() const override {
    return factors_.precision();
  }

  /// Mean pairwise ranking accuracy (AUC-style) over sampled triples from
  /// a held-out set: fraction of (u, test-positive, unseen) pairs ranked
  /// correctly. Diagnostic for tests and examples.
  double PairwiseAccuracy(const RatingDataset& train,
                          const RatingDataset& test, int32_t samples,
                          uint64_t seed) const;

 private:
  double Score(UserId u, ItemId i) const;
  FactorView View() const;

  BprConfig config_;
  EpochCallback epoch_callback_;  // observability only; never saved
  int32_t num_users_ = 0;
  int32_t num_items_ = 0;
  uint64_t train_fingerprint_ = 0;  // content hash of the fitted train set
  FactorStore factors_;
  std::vector<double> item_bias_;
};

}  // namespace ganc

#endif  // GANC_RECOMMENDER_BPR_H_
