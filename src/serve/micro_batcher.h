// Request micro-batching scheduler for the online serving path.
//
// The offline engine earns its throughput from ScoreBatchInto: the
// FactorScoringEngine kernel streams each item-factor row through 8
// independent per-user accumulator chains, roughly halving per-user cost
// versus one-user scoring. A serving frontend answers one request at a
// time, which would waste that kernel — so concurrent callers enqueue
// here and worker threads drain the queue in blocks of up to
// `batch_size` (default: the engine's 8-user register block), scoring a
// whole block through one ScoreBatchInto call.
//
// Flush policy (the "bounded-wait flush"): a worker that finds fewer
// than `batch_size` queued requests waits at most `max_batch_wait` for
// the block to fill — and only when more submitters are already on
// their way (observable as callers between Submit entry and enqueue).
// A lone request in an idle system is therefore dispatched immediately,
// never stalled behind a timer; under load the wait is bounded by
// `max_batch_wait`.
//
// Determinism: ScoreBatchInto is bit-identical to per-user ScoreInto for
// every batch composition (pinned by the scoring parity suite), and the
// batch function runs per-request selection independently, so the
// response to a request does not depend on which requests it happened
// to share a block with — the parity guarantee the serving tests pin.
//
// Each worker owns one ScoringContext for its whole lifetime
// (one-context-per-worker; see scoring_context.h — debug builds abort on
// cross-thread reuse).

#ifndef GANC_SERVE_MICRO_BATCHER_H_
#define GANC_SERVE_MICRO_BATCHER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <semaphore>
#include <span>
#include <thread>
#include <vector>

#include "data/dataset.h"
#include "recommender/scoring_context.h"
#include "util/status.h"

namespace ganc {

struct RequestTrace;
struct ServeInstruments;

/// One in-flight request. The caller owns the storage (stack-allocated
/// in Submit's caller), the batch function fills `*out` / `status`, and
/// `done` hands the result back; `exclusions` is borrowed and must stay
/// valid until Submit returns.
struct BatchRequest {
  UserId user = 0;
  int n = 0;
  std::span<const ItemId> exclusions;
  std::vector<ItemId>* out = nullptr;
  /// Sampled trace to stamp scoring stages on (null = unsampled).
  /// Borrowed; valid until `done` is released.
  RequestTrace* trace = nullptr;
  Status status;
  std::binary_semaphore done{0};
};

/// Scheduler knobs.
struct MicroBatcherConfig {
  /// Scoring worker threads draining the queue.
  size_t num_workers = 1;
  /// Requests per block; clamped to >= 1. The serving default is the
  /// FactorScoringEngine register block (kScoreBatch).
  size_t batch_size = 8;
  /// Upper bound on how long a worker holds a partial block open for
  /// more requests (only when more are provably on their way).
  std::chrono::microseconds max_batch_wait{200};
  /// Pre-resolved scheduling instruments to mirror the counters into
  /// (borrowed, may be null; must outlive the batcher).
  const ServeInstruments* metrics = nullptr;
};

/// Bounded-wait request micro-batcher. The batch function receives up to
/// `batch_size` requests plus the worker's own ScoringContext and must
/// fill every request's `out`/`status` before returning.
class MicroBatcher {
 public:
  using BatchFn =
      std::function<void(std::span<BatchRequest* const>, ScoringContext&)>;

  /// Monotonic scheduling counters.
  struct Counters {
    uint64_t batches = 0;          ///< blocks dispatched
    uint64_t requests = 0;         ///< requests processed
    uint64_t full_batches = 0;     ///< blocks dispatched at batch_size
    uint64_t waited_flushes = 0;   ///< partial blocks flushed by the timer
  };

  MicroBatcher(BatchFn fn, MicroBatcherConfig config);
  ~MicroBatcher();

  MicroBatcher(const MicroBatcher&) = delete;
  MicroBatcher& operator=(const MicroBatcher&) = delete;

  /// Enqueues `request` and blocks until a worker has processed it.
  /// Returns the request's status (FailedPrecondition after Shutdown).
  Status Submit(BatchRequest& request);

  /// Drains the queue and joins the workers. Idempotent; called by the
  /// destructor.
  void Shutdown();

  Counters counters() const;
  size_t num_workers() const { return workers_.size(); }
  size_t batch_size() const { return config_.batch_size; }

 private:
  void WorkerLoop();

  BatchFn fn_;
  MicroBatcherConfig config_;

  std::mutex mu_;
  std::condition_variable queue_cv_;
  std::deque<BatchRequest*> queue_;
  bool shutdown_ = false;
  /// Callers between Submit entry and enqueue — the "more requests are
  /// on their way" signal the bounded wait keys on.
  std::atomic<size_t> arriving_{0};

  std::atomic<uint64_t> batches_{0};
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> full_batches_{0};
  std::atomic<uint64_t> waited_flushes_{0};

  std::vector<std::thread> workers_;
};

}  // namespace ganc

#endif  // GANC_SERVE_MICRO_BATCHER_H_
