#include "util/logging.h"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace ganc {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_ = GetLogLevel(); }
  void TearDown() override { SetLogLevel(saved_); }
  LogLevel saved_;
};

TEST_F(LoggingTest, LevelRoundTrips) {
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(LogLevel::kSilent);
  EXPECT_EQ(GetLogLevel(), LogLevel::kSilent);
}

TEST_F(LoggingTest, DisabledLevelsDoNotCrashAndAreCheap) {
  SetLogLevel(LogLevel::kSilent);
  for (int i = 0; i < 1000; ++i) {
    GANC_LOG(Debug) << "suppressed " << i;
    GANC_LOG(Error) << "suppressed too " << i;
  }
  SUCCEED();
}

TEST_F(LoggingTest, StreamAcceptsMixedTypes) {
  SetLogLevel(LogLevel::kSilent);
  GANC_LOG(Info) << "int " << 42 << " double " << 3.14 << " str "
                 << std::string("x") << " bool " << true;
  SUCCEED();
}

TEST_F(LoggingTest, ConcurrentLoggingIsSafe) {
  SetLogLevel(LogLevel::kSilent);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < 200; ++i) {
        GANC_LOG(Warn) << "thread " << t << " msg " << i;
      }
    });
  }
  for (auto& th : threads) th.join();
  SUCCEED();
}

}  // namespace
}  // namespace ganc
