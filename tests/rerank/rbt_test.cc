#include "rerank/rbt.h"

#include <gtest/gtest.h>

#include "data/split.h"
#include "data/synthetic.h"
#include "eval/metrics.h"
#include "recommender/recommender.h"
#include "recommender/rsvd.h"

namespace ganc {
namespace {

struct Fixture {
  RatingDataset train;
  RatingDataset test;
  RsvdRecommender rsvd{{.num_factors = 8,
                        .learning_rate = 0.02,
                        .regularization = 0.02,
                        .num_epochs = 30,
                        .use_biases = true}};

  Fixture() {
    auto spec = TinySpec();
    spec.num_users = 150;
    spec.num_items = 200;
    spec.mean_activity = 25.0;
    auto ds = GenerateSynthetic(spec);
    EXPECT_TRUE(ds.ok());
    auto split = PerUserRatioSplit(*ds, {.train_ratio = 0.5, .seed = 10});
    EXPECT_TRUE(split.ok());
    train = std::move(split->train);
    test = std::move(split->test);
    EXPECT_TRUE(rsvd.Fit(train).ok());
  }
};

TEST(RbtTest, NameTemplates) {
  Fixture f;
  EXPECT_EQ(RbtReranker(&f.rsvd, &f.train, {}).name(), "RBT(RSVD, Pop)");
  RbtConfig avg;
  avg.criterion = RbtCriterion::kAvg;
  EXPECT_EQ(RbtReranker(&f.rsvd, &f.train, avg).name(), "RBT(RSVD, Avg)");
}

TEST(RbtTest, ProducesValidLists) {
  Fixture f;
  RbtConfig cfg;
  cfg.rerank_threshold = 4.0;
  RbtReranker rbt(&f.rsvd, &f.train, cfg);
  auto topn = rbt.RecommendAll(f.train, 5);
  ASSERT_TRUE(topn.ok());
  ASSERT_EQ(topn->size(), static_cast<size_t>(f.train.num_users()));
  for (UserId u = 0; u < f.train.num_users(); ++u) {
    for (ItemId i : (*topn)[static_cast<size_t>(u)]) {
      EXPECT_FALSE(f.train.HasRating(u, i));
    }
  }
}

TEST(RbtTest, PopCriterionPrefersUnpopularConfidentItems) {
  Fixture f;
  RbtConfig cfg;
  cfg.rerank_threshold = 3.8;  // wide head so re-ranking bites
  RbtReranker rbt(&f.rsvd, &f.train, cfg);
  auto rbt_topn = rbt.RecommendAll(f.train, 5);
  ASSERT_TRUE(rbt_topn.ok());
  const auto base_topn = RecommendAllUsers(f.rsvd, f.train, 5);
  // Mean popularity of RBT(Pop) recommendations should not exceed the
  // base model's.
  auto mean_pop = [&](const std::vector<std::vector<ItemId>>& topn) {
    double acc = 0.0;
    int count = 0;
    for (const auto& pu : topn) {
      for (ItemId i : pu) {
        acc += static_cast<double>(f.train.Popularity(i));
        ++count;
      }
    }
    return acc / count;
  };
  EXPECT_LE(mean_pop(*rbt_topn), mean_pop(base_topn) + 1e-9);
}

TEST(RbtTest, CoverageImprovesOverBase) {
  Fixture f;
  RbtConfig cfg;
  cfg.rerank_threshold = 3.8;
  RbtReranker rbt(&f.rsvd, &f.train, cfg);
  auto rbt_topn = rbt.RecommendAll(f.train, 5);
  ASSERT_TRUE(rbt_topn.ok());
  const MetricsConfig mcfg{.top_n = 5};
  const auto rbt_m = EvaluateTopN(f.train, f.test, *rbt_topn, mcfg);
  const auto base_m = EvaluateTopN(f.train, f.test,
                                   RecommendAllUsers(f.rsvd, f.train, 5), mcfg);
  EXPECT_GE(rbt_m.coverage, base_m.coverage);
}

TEST(RbtTest, ThresholdAboveAllScoresFallsBackToStandardRanking) {
  Fixture f;
  RbtConfig cfg;
  cfg.rerank_threshold = 100.0;  // empty head
  cfg.min_threshold = -100.0;
  RbtReranker rbt(&f.rsvd, &f.train, cfg);
  auto topn = rbt.RecommendAll(f.train, 5);
  ASSERT_TRUE(topn.ok());
  const auto base = RecommendAllUsers(f.rsvd, f.train, 5);
  EXPECT_EQ(*topn, base);
}

TEST(RbtTest, MinThresholdFiltersLowPredictions) {
  Fixture f;
  RbtConfig cfg;
  cfg.min_threshold = 100.0;  // everything filtered
  RbtReranker rbt(&f.rsvd, &f.train, cfg);
  auto topn = rbt.RecommendAll(f.train, 5);
  ASSERT_TRUE(topn.ok());
  for (const auto& pu : *topn) EXPECT_TRUE(pu.empty());
}

TEST(RbtTest, AvgCriterionRanksHeadByItemAverage) {
  Fixture f;
  RbtConfig cfg;
  cfg.criterion = RbtCriterion::kAvg;
  cfg.rerank_threshold = 3.8;
  RbtReranker rbt(&f.rsvd, &f.train, cfg);
  auto topn = rbt.RecommendAll(f.train, 5);
  ASSERT_TRUE(topn.ok());
  for (const auto& pu : *topn) EXPECT_LE(pu.size(), 5u);
}

TEST(RbtTest, InvalidTopNRejected) {
  Fixture f;
  RbtReranker rbt(&f.rsvd, &f.train, {});
  EXPECT_FALSE(rbt.RecommendAll(f.train, 0).ok());
}

}  // namespace
}  // namespace ganc
