#include "core/preference.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/rng.h"
#include "util/stats.h"

namespace ganc {

std::vector<double> ActivityPreference(const RatingDataset& train) {
  std::vector<double> theta(static_cast<size_t>(train.num_users()));
  for (UserId u = 0; u < train.num_users(); ++u) {
    theta[static_cast<size_t>(u)] = static_cast<double>(train.Activity(u));
  }
  MinMaxNormalize(&theta);
  return theta;
}

std::vector<double> NormalizedLongtailPreference(const RatingDataset& train,
                                                 const LongTailInfo& tail) {
  std::vector<double> theta(static_cast<size_t>(train.num_users()), 0.0);
  for (UserId u = 0; u < train.num_users(); ++u) {
    const auto& row = train.ItemsOf(u);
    if (row.empty()) continue;
    int32_t in_tail = 0;
    for (const ItemRating& ir : row) {
      if (tail.Contains(ir.item)) ++in_tail;
    }
    theta[static_cast<size_t>(u)] =
        static_cast<double>(in_tail) / static_cast<double>(row.size());
  }
  return theta;
}

std::vector<std::vector<double>> PerUserItemPreference(
    const RatingDataset& train) {
  const double num_users = static_cast<double>(train.num_users());
  std::vector<std::vector<double>> theta_ui(
      static_cast<size_t>(train.num_users()));
  double lo = 0.0, hi = 0.0;
  bool first = true;
  for (UserId u = 0; u < train.num_users(); ++u) {
    const auto& row = train.ItemsOf(u);
    auto& out = theta_ui[static_cast<size_t>(u)];
    out.reserve(row.size());
    for (const ItemRating& ir : row) {
      const double pop = static_cast<double>(train.Popularity(ir.item));
      const double v =
          static_cast<double>(ir.value) * std::log(num_users / pop);
      out.push_back(v);
      if (first) {
        lo = hi = v;
        first = false;
      } else {
        lo = std::min(lo, v);
        hi = std::max(hi, v);
      }
    }
  }
  // Global projection onto [0, 1] (Section II-C requires |theta_ui -
  // theta_u| <= 1, guaranteed once both live in the unit interval).
  const double range = hi - lo;
  for (auto& row : theta_ui) {
    for (double& v : row) v = range > 0.0 ? (v - lo) / range : 0.0;
  }
  return theta_ui;
}

std::vector<double> TfidfPreference(const RatingDataset& train) {
  const std::vector<std::vector<double>> theta_ui =
      PerUserItemPreference(train);
  std::vector<double> theta(static_cast<size_t>(train.num_users()), 0.0);
  for (UserId u = 0; u < train.num_users(); ++u) {
    theta[static_cast<size_t>(u)] = Mean(theta_ui[static_cast<size_t>(u)]);
  }
  MinMaxNormalize(&theta);
  return theta;
}

Result<GeneralizedPreferenceResult> GeneralizedPreference(
    const RatingDataset& train, const GeneralizedPreferenceOptions& options) {
  if (options.lambda1 <= 0.0) {
    return Status::InvalidArgument("lambda1 must be positive");
  }
  if (options.max_iterations <= 0) {
    return Status::InvalidArgument("max_iterations must be positive");
  }
  const int32_t n_users = train.num_users();
  const int32_t n_items = train.num_items();
  const std::vector<std::vector<double>> theta_ui =
      PerUserItemPreference(train);

  GeneralizedPreferenceResult result;
  // Initial point: equal item weights, i.e. theta^G == theta^T (the paper
  // notes Eq. II.6 reduces to theta^T when w_i = 1).
  result.theta.assign(static_cast<size_t>(n_users), 0.0);
  for (UserId u = 0; u < n_users; ++u) {
    result.theta[static_cast<size_t>(u)] =
        Mean(theta_ui[static_cast<size_t>(u)]);
  }
  result.item_weight.assign(static_cast<size_t>(n_items), 1.0);

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    // w-step (Eq. II.5): w_i = lambda1 / eps_i with the mediocrity
    // coefficient eps_i = sum_{u in U_i} [1 - (theta_ui - theta_u)^2].
    // Each summand is in [0, 1], so eps_i >= 0; items whose raters all sit
    // at maximal disagreement get a tiny floor to keep w finite.
    for (ItemId i = 0; i < n_items; ++i) {
      const auto& col = train.UsersOf(i);
      if (col.empty()) {
        result.item_weight[static_cast<size_t>(i)] = 0.0;
        continue;
      }
      double eps = 0.0;
      for (const UserRating& ur : col) {
        // Locate theta_ui for this (u, i): rows are sorted by item id.
        const auto& row = train.ItemsOf(ur.user);
        const auto it = std::lower_bound(
            row.begin(), row.end(), i,
            [](const ItemRating& a, ItemId b) { return a.item < b; });
        const size_t pos = static_cast<size_t>(it - row.begin());
        const double d = theta_ui[static_cast<size_t>(ur.user)][pos] -
                         result.theta[static_cast<size_t>(ur.user)];
        eps += 1.0 - d * d;
      }
      result.item_weight[static_cast<size_t>(i)] =
          options.lambda1 / std::max(eps, 1e-9);
    }

    // theta-step (Eq. II.6): weighted average of theta_ui.
    double max_delta = 0.0;
    for (UserId u = 0; u < n_users; ++u) {
      const auto& row = train.ItemsOf(u);
      if (row.empty()) continue;
      double num = 0.0, den = 0.0;
      for (size_t k = 0; k < row.size(); ++k) {
        const double w =
            result.item_weight[static_cast<size_t>(row[k].item)];
        num += w * theta_ui[static_cast<size_t>(u)][k];
        den += w;
      }
      const double next = den > 0.0 ? num / den : 0.0;
      max_delta =
          std::max(max_delta,
                   std::abs(next - result.theta[static_cast<size_t>(u)]));
      result.theta[static_cast<size_t>(u)] = next;
    }
    result.iterations = iter + 1;
    if (max_delta < options.tolerance) {
      result.converged = true;
      break;
    }
  }

  // Total weighted mediocrity O(w, theta) for diagnostics.
  double objective = 0.0;
  for (UserId u = 0; u < n_users; ++u) {
    const auto& row = train.ItemsOf(u);
    for (size_t k = 0; k < row.size(); ++k) {
      const double d = theta_ui[static_cast<size_t>(u)][k] -
                       result.theta[static_cast<size_t>(u)];
      objective +=
          result.item_weight[static_cast<size_t>(row[k].item)] * (1.0 - d * d);
    }
  }
  result.final_objective = objective;

  if (options.normalize_output) MinMaxNormalize(&result.theta);
  GANC_LOG(Info) << "thetaG: " << result.iterations << " iterations, "
                 << (result.converged ? "converged" : "max-iters");
  return result;
}

std::vector<double> RandomPreference(int32_t num_users, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> theta(static_cast<size_t>(num_users));
  for (double& t : theta) t = rng.Uniform();
  return theta;
}

std::vector<double> ConstantPreference(int32_t num_users, double c) {
  return std::vector<double>(static_cast<size_t>(num_users), c);
}

std::string PreferenceModelName(PreferenceModel model) {
  switch (model) {
    case PreferenceModel::kActivity:
      return "thetaA";
    case PreferenceModel::kNormalized:
      return "thetaN";
    case PreferenceModel::kTfidf:
      return "thetaT";
    case PreferenceModel::kGeneralized:
      return "thetaG";
    case PreferenceModel::kRandom:
      return "thetaR";
    case PreferenceModel::kConstant:
      return "thetaC";
  }
  return "theta?";
}

Result<std::vector<double>> ComputePreference(PreferenceModel model,
                                              const RatingDataset& train,
                                              uint64_t seed, double constant) {
  switch (model) {
    case PreferenceModel::kActivity:
      return ActivityPreference(train);
    case PreferenceModel::kNormalized:
      return NormalizedLongtailPreference(train, ComputeLongTail(train));
    case PreferenceModel::kTfidf:
      return TfidfPreference(train);
    case PreferenceModel::kGeneralized: {
      Result<GeneralizedPreferenceResult> r = GeneralizedPreference(train);
      if (!r.ok()) return r.status();
      return std::move(r).value().theta;
    }
    case PreferenceModel::kRandom:
      return RandomPreference(train.num_users(), seed);
    case PreferenceModel::kConstant:
      return ConstantPreference(train.num_users(), constant);
  }
  return Status::InvalidArgument("unknown preference model");
}

}  // namespace ganc
