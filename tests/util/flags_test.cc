#include "util/flags.h"

#include <gtest/gtest.h>

namespace ganc {
namespace {

Result<Flags> ParseArgs(std::vector<const char*> argv,
                        std::vector<std::string> known) {
  argv.insert(argv.begin(), "prog");
  return Flags::Parse(static_cast<int>(argv.size()), argv.data(), known);
}

TEST(FlagsTest, EqualsForm) {
  auto f = ParseArgs({"--name=value"}, {"name"});
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(f->GetString("name", ""), "value");
}

TEST(FlagsTest, SpaceForm) {
  auto f = ParseArgs({"--name", "value"}, {"name"});
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(f->GetString("name", ""), "value");
}

TEST(FlagsTest, BareSwitch) {
  auto f = ParseArgs({"--verbose"}, {"verbose"});
  ASSERT_TRUE(f.ok());
  EXPECT_TRUE(f->GetBool("verbose", false));
}

TEST(FlagsTest, BoolFalseValues) {
  auto f = ParseArgs({"--a=false", "--b=0", "--c=no"}, {"a", "b", "c"});
  ASSERT_TRUE(f.ok());
  EXPECT_FALSE(f->GetBool("a", true));
  EXPECT_FALSE(f->GetBool("b", true));
  EXPECT_FALSE(f->GetBool("c", true));
}

TEST(FlagsTest, UnknownFlagRejected) {
  auto f = ParseArgs({"--oops=1"}, {"name"});
  ASSERT_FALSE(f.ok());
  EXPECT_NE(f.status().message().find("oops"), std::string::npos);
}

TEST(FlagsTest, IntParsing) {
  auto f = ParseArgs({"--n=42", "--bad=xyz"}, {"n", "bad"});
  ASSERT_TRUE(f.ok());
  auto n = f->GetInt("n", 0);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 42);
  EXPECT_FALSE(f->GetInt("bad", 0).ok());
  auto missing = f->GetInt("absent", 7);
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(*missing, 7);
}

TEST(FlagsTest, DoubleParsing) {
  auto f = ParseArgs({"--x=0.5"}, {"x"});
  ASSERT_TRUE(f.ok());
  auto x = f->GetDouble("x", 0.0);
  ASSERT_TRUE(x.ok());
  EXPECT_DOUBLE_EQ(*x, 0.5);
}

TEST(FlagsTest, NegativeNumbers) {
  auto f = ParseArgs({"--n=-3", "--x=-0.25"}, {"n", "x"});
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(*f->GetInt("n", 0), -3);
  EXPECT_DOUBLE_EQ(*f->GetDouble("x", 0.0), -0.25);
}

TEST(FlagsTest, PositionalArguments) {
  auto f = ParseArgs({"input.csv", "--n=1", "other.txt"}, {"n"});
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(f->positional(),
            (std::vector<std::string>{"input.csv", "other.txt"}));
}

TEST(FlagsTest, SwitchFollowedByFlagDoesNotConsumeIt) {
  auto f = ParseArgs({"--verbose", "--n=2"}, {"verbose", "n"});
  ASSERT_TRUE(f.ok());
  EXPECT_TRUE(f->GetBool("verbose", false));
  EXPECT_EQ(*f->GetInt("n", 0), 2);
}

TEST(FlagsTest, HasDetectsPresence) {
  auto f = ParseArgs({"--a=1"}, {"a", "b"});
  ASSERT_TRUE(f.ok());
  EXPECT_TRUE(f->Has("a"));
  EXPECT_FALSE(f->Has("b"));
}

}  // namespace
}  // namespace ganc
