#include "serve/result_cache.h"

#include <algorithm>

#include "util/binary_io.h"

namespace ganc {

uint64_t ExclusionFingerprint(std::span<const ItemId> sorted_exclusions) {
  return Fnv1aHash(sorted_exclusions.data(),
                   sorted_exclusions.size() * sizeof(ItemId));
}

size_t ServeResultCache::KeyHash::operator()(const Key& k) const {
  // Pack the key fields into one canonical byte stream; FNV-1a mixes the
  // low bits well enough for shard selection and bucket placement.
  const uint64_t words[3] = {
      (static_cast<uint64_t>(static_cast<uint32_t>(k.user)) << 32) |
          static_cast<uint32_t>(k.n),
      k.exclusion_fp, k.snapshot_version};
  return static_cast<size_t>(Fnv1aHash(words, sizeof(words)));
}

ServeResultCache::ServeResultCache(size_t capacity, size_t num_shards)
    : capacity_(std::max<size_t>(capacity, 1)),
      shards_(std::clamp<size_t>(num_shards, 1, std::max<size_t>(capacity, 1))) {
  per_shard_capacity_ = std::max<size_t>(capacity_ / shards_.size(), 1);
}

ServeResultCache::Shard& ServeResultCache::ShardFor(const Key& key) {
  return shards_[KeyHash{}(key) % shards_.size()];
}

bool ServeResultCache::Lookup(const Key& key, std::vector<ItemId>* out) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  out->assign(it->second->items.begin(), it->second->items.end());
  hits_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void ServeResultCache::Insert(const Key& key, std::span<const ItemId> items) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    it->second->items.assign(items.begin(), items.end());
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  shard.lru.push_front(
      Entry{key, std::vector<ItemId>(items.begin(), items.end())});
  shard.index.emplace(key, shard.lru.begin());
  insertions_.fetch_add(1, std::memory_order_relaxed);
  while (shard.lru.size() > per_shard_capacity_) {
    shard.index.erase(shard.lru.back().key);
    shard.lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

void ServeResultCache::Clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.lru.clear();
    shard.index.clear();
  }
}

size_t ServeResultCache::size() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.lru.size();
  }
  return total;
}

ServeResultCache::Counters ServeResultCache::counters() const {
  return Counters{hits_.load(std::memory_order_relaxed),
                  misses_.load(std::memory_order_relaxed),
                  insertions_.load(std::memory_order_relaxed),
                  evictions_.load(std::memory_order_relaxed)};
}

}  // namespace ganc
