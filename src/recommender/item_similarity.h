// Item-item cosine similarity with truncated neighbour lists — the
// shared kernel behind the item-KNN recommender and the MMR/topic-
// diversification re-ranker.
//
// Similarities are computed by user-wise co-occurrence accumulation over
// rating vectors; profiles longer than `max_profile` are subsampled to
// bound the quadratic per-user cost on power users.

#ifndef GANC_RECOMMENDER_ITEM_SIMILARITY_H_
#define GANC_RECOMMENDER_ITEM_SIMILARITY_H_

#include <cstdint>
#include <vector>

#include "data/dataset.h"

namespace ganc {

/// One (neighbour item, cosine similarity) entry.
struct ItemNeighbor {
  ItemId item = 0;
  float sim = 0.0f;
};

/// Truncated neighbour lists: per item, the up-to-k most cosine-similar
/// items with positive similarity, sorted by decreasing similarity (ties
/// by item id).
class ItemSimilarityIndex {
 public:
  ItemSimilarityIndex() = default;

  /// Builds the index over the train set.
  ItemSimilarityIndex(const RatingDataset& train, int32_t num_neighbors,
                      int32_t max_profile, uint64_t seed);

  /// Reconstructs an index from persisted neighbour lists (the ItemKNN
  /// artifact Load path); `lists[i]` becomes NeighborsOf(i) verbatim.
  static ItemSimilarityIndex FromLists(
      std::vector<std::vector<ItemNeighbor>> lists);

  /// Neighbours of item i (possibly empty).
  const std::vector<ItemNeighbor>& NeighborsOf(ItemId i) const {
    return neighbors_[static_cast<size_t>(i)];
  }

  /// Similarity of (i, j): the stored value when j is among i's
  /// neighbours, else 0. Symmetric up to truncation.
  float Similarity(ItemId i, ItemId j) const;

  int32_t num_items() const { return static_cast<int32_t>(neighbors_.size()); }

 private:
  std::vector<std::vector<ItemNeighbor>> neighbors_;
};

}  // namespace ganc

#endif  // GANC_RECOMMENDER_ITEM_SIMILARITY_H_
