// Sparse user-item rating data model (Section II-A of the paper).
//
// A RatingDataset stores a bag of (user, item, rating) observations plus
// the per-user and per-item inverted indexes the algorithms need:
//   I_u^R : items rated by user u          -> ItemsOf(u)
//   U_i^R : users who rated item i         -> UsersOf(i)
//   f_i^R : popularity of item i in train  -> Popularity(i)
// Users and items are dense 0-based ids; loaders remap external ids.
//
// Storage is flat CSR (row offsets + one contiguous (item, value)
// array), exposed through spans. The spans either view owned vectors
// (builder / stream loads: everything materialized and fully validated
// up front) or borrow straight out of a memory-mapped v3 dataset cache
// (LoadMappedFile): cold-start then touches O(users) bytes — dims,
// offsets, fingerprint — and user rows page in on demand. The CSC item
// index and the insertion-order ratings() vector are derived data; in
// mapped mode they are materialized lazily by EnsureResident(), which
// also performs the O(nnz) row validation that the eager loaders do at
// load time.
//
// Most consumers never need residency: every Fit, the row-oriented
// accessors (ItemsOf/Activity/HasRating/GetRating/UnratedItems*),
// GlobalMeanRating, PopularityVector, Fingerprint, and the chunked
// SweepRowWindows iterator all work straight off the mapped rows. Only
// the APIs documented "Requires residency" below — ratings(), UsersOf,
// Popularity, and the ratio splitters built on them — go through
// EnsureResident() first; the store-backed serving path never does.
//
// Out-of-core training sweeps rows in budgeted windows: PlanRowWindows
// partitions the user range so each window's row payload fits a byte
// budget, and SweepRowWindows validates + visits each window and then
// drops its mapped pages, so a full epoch over a dataset larger than
// memory peaks at roughly the budget. set_train_budget_bytes records
// the caller's budget on the dataset for trainers to pick up.

#ifndef GANC_DATA_DATASET_H_
#define GANC_DATA_DATASET_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <istream>
#include <memory>
#include <mutex>
#include <ostream>
#include <span>
#include <string>
#include <vector>

#include "util/binary_io.h"
#include "util/status.h"

namespace ganc {

class MappedArtifact;

using UserId = int32_t;
using ItemId = int32_t;

/// One observed interaction: user u gave item i the value `rating`.
struct Rating {
  UserId user = 0;
  ItemId item = 0;
  float value = 0.0f;
};

/// An (item, rating) pair inside one user's profile. The in-memory
/// layout doubles as the v3 wire layout of the dataset-cache rows
/// section on little-endian hosts (see docs/FORMATS.md).
struct ItemRating {
  ItemId item = 0;
  float value = 0.0f;
};
static_assert(sizeof(ItemRating) == 8);

/// A (user, rating) pair inside one item's audience.
struct UserRating {
  UserId user = 0;
  float value = 0.0f;
};

/// One window of consecutive CSR user rows, planned by PlanRowWindows.
struct RowWindow {
  UserId begin = 0;  ///< first user in the window
  UserId end = 0;    ///< one past the last user
  int64_t nnz = 0;   ///< ratings in [begin, end)
};

/// Immutable sparse rating matrix with CSR-style per-user and CSC-style
/// per-item views. Construct through RatingDatasetBuilder or the binary
/// cache loaders. Move-only: the CSR spans alias either owned heap
/// buffers (which transfer on move) or a shared file mapping.
class RatingDataset {
 public:
  RatingDataset();
  ~RatingDataset();
  RatingDataset(RatingDataset&&) noexcept;
  RatingDataset& operator=(RatingDataset&&) noexcept;
  RatingDataset(const RatingDataset&) = delete;
  RatingDataset& operator=(const RatingDataset&) = delete;

  int32_t num_users() const { return num_users_; }
  int32_t num_items() const { return num_items_; }
  int64_t num_ratings() const { return nnz_; }

  /// Fraction of the full matrix that is observed, in [0,1].
  double Density() const;

  /// All observations in insertion order. Requires residency (mapped
  /// datasets: EnsureResident() first).
  const std::vector<Rating>& ratings() const { return ratings_; }

  /// Items rated by `u`, ascending by item id.
  std::span<const ItemRating> ItemsOf(UserId u) const {
    const size_t uu = static_cast<size_t>(u);
    const size_t begin = static_cast<size_t>(user_offsets_view_[uu]);
    const size_t end = static_cast<size_t>(user_offsets_view_[uu + 1]);
    return rows_view_.subspan(begin, end - begin);
  }

  /// Users who rated `i`, ascending by user id. Requires residency.
  std::span<const UserRating> UsersOf(ItemId i) const {
    const size_t ii = static_cast<size_t>(i);
    const size_t begin = static_cast<size_t>(item_offsets_[ii]);
    const size_t end = static_cast<size_t>(item_offsets_[ii + 1]);
    return {item_cols_.data() + begin, end - begin};
  }

  /// Number of train observations of item i (f_i^R = |U_i^R|).
  /// Requires residency.
  int32_t Popularity(ItemId i) const {
    const size_t ii = static_cast<size_t>(i);
    return static_cast<int32_t>(item_offsets_[ii + 1] - item_offsets_[ii]);
  }

  /// Popularity of every item as a dense vector indexed by item id.
  /// Computed by a budgeted row sweep: works on mapped datasets without
  /// residency, and counts are exact integers either way.
  std::vector<double> PopularityVector() const;

  /// CSR offset of user u's row, for u in [0, num_users]:
  /// RowStart(u + 1) - RowStart(u) == Activity(u). Lets trainers map a
  /// global row position back to its user with a binary search (the
  /// blocked BPR sampler) without materializing anything.
  uint64_t RowStart(UserId u) const {
    return user_offsets_view_[static_cast<size_t>(u)];
  }

  /// Number of items user u rated (|I_u^R|, "user activity").
  int32_t Activity(UserId u) const {
    const size_t uu = static_cast<size_t>(u);
    return static_cast<int32_t>(user_offsets_view_[uu + 1] -
                                user_offsets_view_[uu]);
  }

  /// True when user u has rated item i (binary search in the user's row).
  bool HasRating(UserId u, ItemId i) const;

  /// Rating of u on i, or error when unobserved.
  Result<float> GetRating(UserId u, ItemId i) const;

  /// Mean of all rating values; 0 for an empty dataset. Computed by a
  /// budgeted row sweep in CSR (user-major) order, so mapped datasets
  /// need no residency and the result is independent of the budget.
  double GlobalMeanRating() const;

  /// All item ids NOT rated by u, ascending: the "all unseen train items"
  /// candidate set from which every top-N set is drawn.
  std::vector<ItemId> UnratedItems(UserId u) const;

  /// Allocation-free variant: overwrites `*out` with the unrated items of
  /// `u`, reusing its capacity (the batched scoring path's candidate
  /// generation).
  void UnratedItemsInto(UserId u, std::vector<ItemId>* out) const;

  /// For a mapped dataset: validates every row (strictly item-ascending,
  /// ids in range — the checks the eager loaders run up front) and
  /// materializes the CSC item index and ratings() order, exactly once.
  /// Returns the cached validation error on corrupt row data. No-op
  /// (always OK) for eagerly loaded datasets. Thread-safe.
  Status EnsureResident() const;

  /// True when the CSR rows are borrowed from a file mapping.
  bool IsMapped() const { return mapped_ != nullptr; }

  /// True when the derived in-core structures (ratings(), the CSC item
  /// index) exist: always for eagerly loaded datasets, and only after
  /// EnsureResident() for mapped ones. Regression tests use this to
  /// assert that out-of-core paths never materialize the full matrix.
  bool ResidencyMaterialized() const {
    return mapped_ == nullptr || !item_offsets_.empty();
  }

  /// Advisory residency budget (bytes of row payload) for trainers that
  /// sweep this dataset; 0 (default) means unbounded — a single window.
  /// The budget shapes paging only, never results: fits are bit-equal
  /// for every budget.
  void set_train_budget_bytes(int64_t bytes) { train_budget_bytes_ = bytes; }
  int64_t train_budget_bytes() const { return train_budget_bytes_; }

  /// Partitions users into consecutive windows whose row payload
  /// (nnz * sizeof(ItemRating)) fits `budget_bytes`. Windows are unions
  /// of whole `align_users`-sized user blocks so trainers can keep a
  /// budget-independent block decomposition; every window holds at
  /// least one block even when that block alone exceeds the budget.
  /// budget_bytes <= 0 yields one window spanning all users.
  std::vector<RowWindow> PlanRowWindows(int64_t budget_bytes,
                                        int32_t align_users = 1) const;

  /// Runs `fn` over each planned window in ascending user order. For a
  /// mapped dataset this validates the window's rows on first touch
  /// (the same strictly-ascending/in-range checks EnsureResident runs)
  /// and releases the window's mapped pages after `fn` returns, so the
  /// sweep's resident footprint stays near the budget. Stops at the
  /// first non-OK status. Eagerly loaded datasets just iterate.
  Status SweepRowWindows(
      int64_t budget_bytes, int32_t align_users,
      const std::function<Status(const RowWindow&)>& fn) const;

  /// Serializes the dataset as a binary CSR cache (see docs/FORMATS.md):
  /// per-user row offsets, one contiguous (item id, value) rows array,
  /// the original observation order, and the content fingerprint,
  /// checksummed per section. Written once after the text loader;
  /// LoadBinary then skips parsing, id remapping, sorting, and
  /// validation on every subsequent run.
  Status SaveBinary(std::ostream& os) const;

  /// SaveBinary to a file path (overwrites).
  Status SaveBinaryFile(const std::string& path) const;

  /// Restores a dataset written by SaveBinary (v3) or by an older v2
  /// writer. The result is exactly the saved dataset: same dimensions,
  /// same ratings() order, same per-user and per-item indexes — so
  /// anything downstream (splits, SGD epoch order, scoring) is
  /// bit-identical to running from the text source. Fails on bad magic,
  /// version or checksum mismatch, truncation, or inconsistent CSR
  /// structure.
  static Result<RatingDataset> LoadBinary(std::istream& is);

  /// LoadBinary from a file path.
  static Result<RatingDataset> LoadBinaryFile(const std::string& path);

  /// Opens a v3 dataset cache as a zero-copy view over a file mapping:
  /// O(users) validation and resident memory, rows paged in on use.
  /// Returns kFailedPrecondition for pre-v3 caches and kNotImplemented
  /// without platform mmap (both mean "use LoadBinaryFile").
  static Result<RatingDataset> LoadMappedFile(const std::string& path);

  /// LoadMappedFile when possible, transparent fallback to the stream
  /// loader otherwise (or always, when `prefer_mmap` is false).
  static Result<RatingDataset> LoadFileAuto(const std::string& path,
                                            bool prefer_mmap);

  /// Stable 64-bit content fingerprint: FNV-1a over the dimensions and
  /// the canonical per-user (item, value) stream. Artifacts that borrow
  /// the train dataset at load time (KNN/RP3b models, pipeline state)
  /// store it and refuse rebinding to different data — e.g. the same
  /// corpus split with a different seed. Insensitive to observation
  /// order (two datasets with equal indexes fingerprint equally). For
  /// datasets loaded from a v3 cache this returns the stored
  /// fingerprint without touching the rows.
  uint64_t Fingerprint() const;

 private:
  friend class RatingDatasetBuilder;

  struct MappedState;

  /// Points the views at the owned vectors (eager modes).
  void BindOwnedViews();
  /// Shared O(nnz) structural checks + CSC/ratings build.
  Status ValidateRowsAndIndex() const;
  Status Materialize() const;
  /// Row checks (in range, strictly item-ascending) for users in
  /// [begin, end) — the per-window slice of ValidateRowsAndIndex's
  /// validation pass.
  Status ValidateRowRange(UserId begin, UserId end) const;

  int32_t num_users_ = 0;
  int32_t num_items_ = 0;
  int64_t nnz_ = 0;
  /// Advisory trainer residency budget; not part of the dataset value
  /// (ignored by Save/Fingerprint/comparisons).
  int64_t train_budget_bytes_ = 0;
  /// Stored fingerprint from a v3 cache; 0 = compute on demand.
  uint64_t fingerprint_ = 0;

  // Owned CSR storage (empty when the views borrow from a mapping).
  std::vector<uint64_t> user_offsets_;
  std::vector<ItemRating> user_rows_;
  // Derived data: owned, lazily materialized in mapped mode (mutable is
  // confined to the EnsureResident() critical section).
  mutable std::vector<Rating> ratings_;
  mutable std::vector<uint64_t> item_offsets_;
  mutable std::vector<UserRating> item_cols_;

  // CSR views: into the owned vectors or into the mapping.
  std::span<const uint64_t> user_offsets_view_;
  std::span<const ItemRating> rows_view_;
  // Mapped only: CSR-position -> ratings() index (empty = identity).
  std::span<const uint64_t> order_view_;

  std::unique_ptr<MappedState> mapped_;
};

/// Streams a v3 dataset cache to disk one user row at a time, without
/// ever materializing a RatingDataset — the O(users)-memory path the
/// 1M-user synthetic scale generator writes through. Usage:
///
///   auto w = DatasetCacheStreamWriter::Create(os, users, items, counts);
///   for (UserId u = 0; u < users; ++u) w->AppendRow(row_of(u));
///   w->Finish();
///
/// `row_counts` fixes every row length up front (it becomes the offsets
/// section, which precedes the rows in the file). Rows must arrive in
/// user order, strictly item-ascending, with exactly the declared
/// length. Appended rows are hashed incrementally, so the stored
/// fingerprint section matches RatingDataset::Fingerprint() of the
/// loaded cache; rows arrive in CSR order, so the observation-order
/// section is the identity (stored empty). The resulting file is
/// byte-identical to SaveBinaryFile of the equivalent in-memory dataset.
class DatasetCacheStreamWriter {
 public:
  /// Validates dimensions/counts and writes everything up to the first
  /// rows byte. `os` must outlive the writer.
  static Result<std::unique_ptr<DatasetCacheStreamWriter>> Create(
      std::ostream& os, int32_t num_users, int32_t num_items,
      std::span<const uint64_t> row_counts);

  ~DatasetCacheStreamWriter();

  /// Appends the next user's row (validated against the declared count).
  Status AppendRow(std::span<const ItemRating> row);

  /// Closes the rows section and writes order, fingerprint, and the end
  /// marker. Required: without it the artifact is truncated.
  Status Finish();

  int64_t nnz() const { return nnz_; }

 private:
  DatasetCacheStreamWriter(std::ostream& os, int32_t num_users,
                           int32_t num_items,
                           std::vector<uint64_t> row_counts);

  class ArtifactWriterHolder;

  int32_t num_users_;
  int32_t num_items_;
  int64_t nnz_ = 0;
  UserId next_user_ = 0;
  std::vector<uint64_t> row_counts_;
  Fnv1aHasher fingerprint_;
  std::unique_ptr<ArtifactWriterHolder> writer_;
};

/// Accumulates observations, then finalizes the indexes.
class RatingDatasetBuilder {
 public:
  /// Fixes the universe sizes |U| and |I| up front. Ids outside the range
  /// are rejected at Add time.
  RatingDatasetBuilder(int32_t num_users, int32_t num_items);

  /// Adds one observation. Duplicate (u, i) pairs are rejected at Build.
  Status Add(UserId user, ItemId item, float value);

  /// Number of observations added so far.
  int64_t size() const { return static_cast<int64_t>(ratings_.size()); }

  /// Validates (no duplicate pairs) and builds the dataset.
  Result<RatingDataset> Build() &&;

 private:
  int32_t num_users_;
  int32_t num_items_;
  std::vector<Rating> ratings_;
};

}  // namespace ganc

#endif  // GANC_DATA_DATASET_H_
