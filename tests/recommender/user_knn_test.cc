#include "recommender/user_knn.h"

#include <cmath>

#include <gtest/gtest.h>

#include "data/split.h"
#include "data/synthetic.h"
#include "eval/metrics.h"
#include "recommender/random_rec.h"
#include "recommender/recommender.h"

namespace ganc {
namespace {

TEST(UserKnnTest, SimilarUserDrivesScores) {
  // Users 0 and 1 agree on items 0/1 (same deviations); user 1 also rated
  // item 2 above their mean -> user 0 should see item 2 positively.
  RatingDatasetBuilder b(3, 4);
  ASSERT_TRUE(b.Add(0, 0, 5.0f).ok());
  ASSERT_TRUE(b.Add(0, 1, 1.0f).ok());
  ASSERT_TRUE(b.Add(1, 0, 5.0f).ok());
  ASSERT_TRUE(b.Add(1, 1, 1.0f).ok());
  ASSERT_TRUE(b.Add(1, 2, 5.0f).ok());
  ASSERT_TRUE(b.Add(1, 3, 1.0f).ok());
  ASSERT_TRUE(b.Add(2, 3, 3.0f).ok());
  auto ds = std::move(b).Build();
  ASSERT_TRUE(ds.ok());
  UserKnnRecommender knn({.num_neighbors = 5});
  ASSERT_TRUE(knn.Fit(*ds).ok());
  const auto s = knn.ScoreAll(0);
  EXPECT_GT(s[2], 0.0);   // neighbour liked it (above mean)
  EXPECT_LT(s[3], 0.0);   // neighbour disliked it (below mean)
}

TEST(UserKnnTest, NoOverlapMeansZeroScores) {
  RatingDatasetBuilder b(2, 4);
  ASSERT_TRUE(b.Add(0, 0, 4.0f).ok());
  ASSERT_TRUE(b.Add(0, 1, 2.0f).ok());
  ASSERT_TRUE(b.Add(1, 2, 4.0f).ok());
  ASSERT_TRUE(b.Add(1, 3, 2.0f).ok());
  auto ds = std::move(b).Build();
  ASSERT_TRUE(ds.ok());
  UserKnnRecommender knn({.num_neighbors = 5});
  ASSERT_TRUE(knn.Fit(*ds).ok());
  for (double v : knn.ScoreAll(0)) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(UserKnnTest, BeatsRandomOnHeldOut) {
  auto spec = TinySpec();
  spec.num_users = 250;
  spec.num_items = 250;
  spec.mean_activity = 35.0;
  auto ds = GenerateSynthetic(spec);
  ASSERT_TRUE(ds.ok());
  auto split = PerUserRatioSplit(*ds, {.train_ratio = 0.5, .seed = 5});
  ASSERT_TRUE(split.ok());
  UserKnnRecommender knn({.num_neighbors = 40});
  ASSERT_TRUE(knn.Fit(split->train).ok());
  RandomRecommender rnd(13);
  ASSERT_TRUE(rnd.Fit(split->train).ok());
  const MetricsConfig cfg{.top_n = 5};
  const auto knn_m = EvaluateTopN(
      split->train, split->test, RecommendAllUsers(knn, split->train, 5), cfg);
  const auto rnd_m = EvaluateTopN(
      split->train, split->test, RecommendAllUsers(rnd, split->train, 5), cfg);
  EXPECT_GT(knn_m.recall, 1.5 * rnd_m.recall);
}

TEST(UserKnnTest, DeterministicPerSeed) {
  auto ds = GenerateSynthetic(TinySpec());
  ASSERT_TRUE(ds.ok());
  UserKnnRecommender a({.num_neighbors = 10});
  UserKnnRecommender b({.num_neighbors = 10});
  ASSERT_TRUE(a.Fit(*ds).ok());
  ASSERT_TRUE(b.Fit(*ds).ok());
  EXPECT_EQ(a.ScoreAll(3), b.ScoreAll(3));
}

TEST(UserKnnTest, AudienceSubsamplingStillWorks) {
  auto ds = GenerateSynthetic(TinySpec());
  ASSERT_TRUE(ds.ok());
  UserKnnRecommender knn({.num_neighbors = 10, .max_audience = 4});
  ASSERT_TRUE(knn.Fit(*ds).ok());
  const auto s = knn.ScoreAll(0);
  for (double v : s) EXPECT_TRUE(std::isfinite(v));
}

TEST(UserKnnTest, InvalidConfigRejected) {
  auto ds = GenerateSynthetic(TinySpec());
  ASSERT_TRUE(ds.ok());
  EXPECT_FALSE(UserKnnRecommender({.num_neighbors = 0}).Fit(*ds).ok());
}

}  // namespace
}  // namespace ganc
