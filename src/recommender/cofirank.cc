#include "recommender/cofirank.h"

#include <algorithm>
#include <numeric>

#include "util/rng.h"

namespace ganc {

CofiRecommender::CofiRecommender(CofiConfig config) : config_(config) {}

Status CofiRecommender::Fit(const RatingDataset& train) {
  if (config_.num_factors <= 0) {
    return Status::InvalidArgument("num_factors must be positive");
  }
  num_users_ = train.num_users();
  num_items_ = train.num_items();
  const size_t g = static_cast<size_t>(config_.num_factors);

  // Per-user min-max normalization: the regression target is the user's
  // relative preference, not the absolute rating value.
  std::vector<float> lo(static_cast<size_t>(num_users_), 0.0f);
  std::vector<float> range(static_cast<size_t>(num_users_), 1.0f);
  for (UserId u = 0; u < num_users_; ++u) {
    const auto& row = train.ItemsOf(u);
    if (row.empty()) continue;
    float mn = row[0].value, mx = row[0].value;
    for (const ItemRating& ir : row) {
      mn = std::min(mn, ir.value);
      mx = std::max(mx, ir.value);
    }
    lo[static_cast<size_t>(u)] = mn;
    range[static_cast<size_t>(u)] = std::max(mx - mn, 1e-6f);
  }

  Rng rng(config_.seed);
  user_factors_.resize(static_cast<size_t>(num_users_) * g);
  item_factors_.resize(static_cast<size_t>(num_items_) * g);
  for (double& v : user_factors_) v = rng.Uniform() * 0.1;
  for (double& v : item_factors_) v = rng.Uniform() * 0.1;

  std::vector<size_t> order(train.ratings().size());
  std::iota(order.begin(), order.end(), 0);
  double lr = config_.learning_rate;
  const double lam = config_.regularization;
  for (int32_t epoch = 0; epoch < config_.num_epochs; ++epoch) {
    rng.Shuffle(&order);
    for (size_t idx : order) {
      const Rating& r = train.ratings()[idx];
      const double target =
          (static_cast<double>(r.value) - lo[static_cast<size_t>(r.user)]) /
          range[static_cast<size_t>(r.user)];
      double* pu = &user_factors_[static_cast<size_t>(r.user) * g];
      double* qi = &item_factors_[static_cast<size_t>(r.item) * g];
      double pred = 0.0;
      for (size_t f = 0; f < g; ++f) pred += pu[f] * qi[f];
      const double err = target - pred;
      for (size_t f = 0; f < g; ++f) {
        const double puf = pu[f];
        pu[f] += lr * (err * qi[f] - lam * puf);
        qi[f] += lr * (err * puf - lam * qi[f]);
      }
    }
    lr *= config_.lr_decay;
  }
  return Status::OK();
}

FactorView CofiRecommender::View() const {
  return {.user_factors = user_factors_.data(),
          .item_factors = item_factors_.data(),
          .num_items = num_items_,
          .num_factors = static_cast<size_t>(config_.num_factors)};
}

void CofiRecommender::ScoreInto(UserId u, std::span<double> out) const {
  FactorScoringEngine(View()).ScoreInto(u, out);
}

void CofiRecommender::ScoreBatchInto(std::span<const UserId> users,
                                     std::span<double> out) const {
  FactorScoringEngine(View()).ScoreBatchInto(users, out);
}

}  // namespace ganc
