#include "recommender/linalg.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

#include "recommender/train_sweep.h"

namespace ganc {

void FillGaussian(DenseMatrix* m, Rng* rng) {
  for (double& v : m->data) v = rng->Normal();
}

void SparseTimesDense(const RatingDataset& train, const DenseMatrix& x,
                      DenseMatrix* y, ThreadPool* pool, int32_t user_block) {
  assert(x.rows == static_cast<size_t>(train.num_items()));
  const size_t l = x.cols;
  *y = DenseMatrix(static_cast<size_t>(train.num_users()), l);
  const int32_t ublock = user_block > 0 ? user_block : kTrainUserBlock;
  // Each block writes only its own users' output rows, so no merge step.
  // Row-validation errors surface from the callers' own sweeps (Fit
  // validates the dataset before factorizing).
  const Status swept = SweepUserBlocks(
      train, ublock, pool,
      [&](const UserBlock& b) -> Status {
        for (UserId u = b.begin; u < b.end; ++u) {
          double* yrow = y->Row(static_cast<size_t>(u));
          for (const ItemRating& ir : train.ItemsOf(u)) {
            const double* xrow = x.Row(static_cast<size_t>(ir.item));
            const double r = static_cast<double>(ir.value);
            for (size_t c = 0; c < l; ++c) yrow[c] += r * xrow[c];
          }
        }
        return Status::OK();
      },
      nullptr);
  (void)swept;
}

void SparseTransposeTimesDense(const RatingDataset& train,
                               const DenseMatrix& x, DenseMatrix* y,
                               ThreadPool* pool, int32_t user_block) {
  assert(x.rows == static_cast<size_t>(train.num_users()));
  const size_t l = x.cols;
  *y = DenseMatrix(static_cast<size_t>(train.num_items()), l);
  const int32_t ublock = user_block > 0 ? user_block : kTrainUserBlock;
  const int64_t num_blocks =
      train.num_users() == 0
          ? 0
          : (static_cast<int64_t>(train.num_users()) + ublock - 1) / ublock;
  // Output rows are shared across blocks: accumulate block-local partial
  // rows over the block's (sorted, distinct) touched items, then add them
  // into y in ascending block order. The fixed block size defines the
  // summation order, so the result is thread- and budget-invariant.
  struct BlockScratch {
    std::vector<ItemId> touched;
    std::vector<double> partial;  // touched.size() x l
  };
  std::vector<BlockScratch> scratch(static_cast<size_t>(num_blocks));
  const Status swept = SweepUserBlocks(
      train, ublock, pool,
      [&](const UserBlock& b) -> Status {
        BlockScratch& s = scratch[static_cast<size_t>(b.index)];
        s.touched.clear();
        for (UserId u = b.begin; u < b.end; ++u) {
          for (const ItemRating& ir : train.ItemsOf(u)) {
            s.touched.push_back(ir.item);
          }
        }
        std::sort(s.touched.begin(), s.touched.end());
        s.touched.erase(std::unique(s.touched.begin(), s.touched.end()),
                        s.touched.end());
        s.partial.assign(s.touched.size() * l, 0.0);
        for (UserId u = b.begin; u < b.end; ++u) {
          const double* xrow = x.Row(static_cast<size_t>(u));
          for (const ItemRating& ir : train.ItemsOf(u)) {
            const size_t t = static_cast<size_t>(
                std::lower_bound(s.touched.begin(), s.touched.end(),
                                 ir.item) -
                s.touched.begin());
            double* prow = &s.partial[t * l];
            const double r = static_cast<double>(ir.value);
            for (size_t c = 0; c < l; ++c) prow[c] += r * xrow[c];
          }
        }
        return Status::OK();
      },
      [&](const UserBlock& b) -> Status {
        BlockScratch& s = scratch[static_cast<size_t>(b.index)];
        for (size_t t = 0; t < s.touched.size(); ++t) {
          double* yrow = y->Row(static_cast<size_t>(s.touched[t]));
          const double* prow = &s.partial[t * l];
          for (size_t c = 0; c < l; ++c) yrow[c] += prow[c];
        }
        s = BlockScratch{};
        return Status::OK();
      });
  (void)swept;
}

void OrthonormalizeColumns(DenseMatrix* m) {
  const size_t n = m->rows;
  const size_t l = m->cols;
  for (size_t j = 0; j < l; ++j) {
    // Subtract projections onto previous columns (two passes for stability).
    for (int pass = 0; pass < 2; ++pass) {
      for (size_t k = 0; k < j; ++k) {
        double dot = 0.0;
        for (size_t r = 0; r < n; ++r) dot += m->At(r, k) * m->At(r, j);
        if (dot == 0.0) continue;
        for (size_t r = 0; r < n; ++r) m->At(r, j) -= dot * m->At(r, k);
      }
    }
    double norm = 0.0;
    for (size_t r = 0; r < n; ++r) norm += m->At(r, j) * m->At(r, j);
    norm = std::sqrt(norm);
    if (norm < 1e-12) {
      for (size_t r = 0; r < n; ++r) m->At(r, j) = 0.0;
      continue;
    }
    for (size_t r = 0; r < n; ++r) m->At(r, j) /= norm;
  }
}

DenseMatrix TransposeTimes(const DenseMatrix& a, const DenseMatrix& b) {
  assert(a.rows == b.rows);
  DenseMatrix c(a.cols, b.cols);
  for (size_t r = 0; r < a.rows; ++r) {
    const double* arow = a.Row(r);
    const double* brow = b.Row(r);
    for (size_t i = 0; i < a.cols; ++i) {
      const double av = arow[i];
      if (av == 0.0) continue;
      double* crow = c.Row(i);
      for (size_t j = 0; j < b.cols; ++j) crow[j] += av * brow[j];
    }
  }
  return c;
}

DenseMatrix Times(const DenseMatrix& a, const DenseMatrix& b) {
  assert(a.cols == b.rows);
  DenseMatrix c(a.rows, b.cols);
  for (size_t i = 0; i < a.rows; ++i) {
    const double* arow = a.Row(i);
    double* crow = c.Row(i);
    for (size_t k = 0; k < a.cols; ++k) {
      const double av = arow[k];
      if (av == 0.0) continue;
      const double* brow = b.Row(k);
      for (size_t j = 0; j < b.cols; ++j) crow[j] += av * brow[j];
    }
  }
  return c;
}

SymmetricEigen JacobiEigen(DenseMatrix a, int max_sweeps, double tol) {
  assert(a.rows == a.cols);
  const size_t n = a.rows;
  DenseMatrix v(n, n);
  for (size_t i = 0; i < n; ++i) v.At(i, i) = 1.0;

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (size_t p = 0; p < n; ++p) {
      for (size_t q = p + 1; q < n; ++q) off += a.At(p, q) * a.At(p, q);
    }
    if (off < tol) break;
    for (size_t p = 0; p < n; ++p) {
      for (size_t q = p + 1; q < n; ++q) {
        const double apq = a.At(p, q);
        if (std::abs(apq) < 1e-300) continue;
        const double app = a.At(p, p);
        const double aqq = a.At(q, q);
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        // Apply the rotation to A on both sides.
        for (size_t k = 0; k < n; ++k) {
          const double akp = a.At(k, p);
          const double akq = a.At(k, q);
          a.At(k, p) = c * akp - s * akq;
          a.At(k, q) = s * akp + c * akq;
        }
        for (size_t k = 0; k < n; ++k) {
          const double apk = a.At(p, k);
          const double aqk = a.At(q, k);
          a.At(p, k) = c * apk - s * aqk;
          a.At(q, k) = s * apk + c * aqk;
        }
        // Accumulate eigenvectors.
        for (size_t k = 0; k < n; ++k) {
          const double vkp = v.At(k, p);
          const double vkq = v.At(k, q);
          v.At(k, p) = c * vkp - s * vkq;
          v.At(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  SymmetricEigen out;
  out.eigenvalues.resize(n);
  for (size_t i = 0; i < n; ++i) out.eigenvalues[i] = a.At(i, i);
  // Sort by decreasing eigenvalue, permuting eigenvector columns.
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t x, size_t y) {
    return out.eigenvalues[x] > out.eigenvalues[y];
  });
  SymmetricEigen sorted;
  sorted.eigenvalues.resize(n);
  sorted.eigenvectors = DenseMatrix(n, n);
  for (size_t j = 0; j < n; ++j) {
    sorted.eigenvalues[j] = out.eigenvalues[order[j]];
    for (size_t i = 0; i < n; ++i) {
      sorted.eigenvectors.At(i, j) = v.At(i, order[j]);
    }
  }
  return sorted;
}

TruncatedSvd RandomizedSvd(const RatingDataset& train, int rank,
                           int oversample, int power_iterations,
                           uint64_t seed, ThreadPool* pool,
                           int32_t user_block) {
  const size_t n_items = static_cast<size_t>(train.num_items());
  const size_t l = std::min(n_items, static_cast<size_t>(rank + oversample));
  Rng rng(seed);

  // Range finder: Y = (A A^T)^q A Omega, orthonormalized between steps.
  DenseMatrix omega(n_items, l);
  FillGaussian(&omega, &rng);
  DenseMatrix y;
  SparseTimesDense(train, omega, &y, pool, user_block);
  OrthonormalizeColumns(&y);
  for (int it = 0; it < power_iterations; ++it) {
    DenseMatrix z;
    SparseTransposeTimesDense(train, y, &z, pool, user_block);
    OrthonormalizeColumns(&z);
    SparseTimesDense(train, z, &y, pool, user_block);
    OrthonormalizeColumns(&y);
  }

  // Project: B = Q^T A  (l x |I|), stored transposed as Bt = A^T Q.
  DenseMatrix bt;  // |I| x l
  SparseTransposeTimesDense(train, y, &bt, pool, user_block);

  // SVD of B via the l x l Gram matrix B B^T = Bt^T Bt.
  DenseMatrix gram = TransposeTimes(bt, bt);
  SymmetricEigen eig = JacobiEigen(std::move(gram));

  const size_t g = std::min(static_cast<size_t>(rank), l);
  TruncatedSvd out;
  out.singular_values.resize(g);
  out.u = DenseMatrix(static_cast<size_t>(train.num_users()), g);
  out.v = DenseMatrix(n_items, g);

  // Small factors: B = Us S Vt with Us = eigvec(BB^T), S = sqrt(eig).
  for (size_t j = 0; j < g; ++j) {
    const double sigma = std::sqrt(std::max(eig.eigenvalues[j], 0.0));
    out.singular_values[j] = sigma;
  }
  // U = Q * Us (|U| x g).
  DenseMatrix us(l, g);
  for (size_t i = 0; i < l; ++i) {
    for (size_t j = 0; j < g; ++j) us.At(i, j) = eig.eigenvectors.At(i, j);
  }
  out.u = Times(y, us);
  // V columns: v_j = B^T us_j / sigma_j = Bt * us_j / sigma_j.
  DenseMatrix btus = Times(bt, us);  // |I| x g
  for (size_t i = 0; i < n_items; ++i) {
    for (size_t j = 0; j < g; ++j) {
      const double sigma = out.singular_values[j];
      out.v.At(i, j) = sigma > 1e-12 ? btus.At(i, j) / sigma : 0.0;
    }
  }
  return out;
}

}  // namespace ganc
