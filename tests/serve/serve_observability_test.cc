// Serving observability suite. Pins the acceptance identities of the
// metrics layer: request counters are exact (requests == cache + store
// + live) in the single-service, in-process-router, and per-shard-
// registry topologies, across a mid-run PUBLISH; per-shard registry
// merges are associative; and the live novelty/coverage accounting
// matches an offline recomputation from the same served lists (exact
// for coverage counts, <= 1e-9 relative for novelty sums).

#include <cmath>
#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "data/split.h"
#include "data/synthetic.h"
#include "recommender/model_io.h"
#include "recommender/psvd.h"
#include "serve/recommendation_service.h"
#include "serve/serve_metrics.h"
#include "serve/service_shard.h"
#include "serve/shard_router.h"
#include "serve/topn_store.h"
#include "util/metrics.h"

namespace ganc {
namespace {

RatingDataset MakeTrain() {
  SyntheticSpec spec = TinySpec();
  spec.num_users = 50;
  spec.num_items = 90;
  spec.mean_activity = 16.0;
  auto ds = GenerateSynthetic(spec);
  EXPECT_TRUE(ds.ok());
  return std::move(ds).value();
}

std::string SaveModel(const RatingDataset& train, const std::string& name,
                      int factors) {
  PsvdRecommender model(PsvdConfig{.num_factors = factors});
  EXPECT_TRUE(model.Fit(train).ok());
  const std::string path = testing::TempDir() + "/" + name;
  EXPECT_TRUE(SaveModelFile(model, path).ok());
  return path;
}

// Every test passes an explicit registry, so the process-global
// registry never accumulates serve_* series in this binary and counter
// assertions stay exact regardless of test order.
ServiceConfig ConfigWith(std::shared_ptr<MetricsRegistry> registry) {
  ServiceConfig config;
  config.metrics = std::move(registry);
  config.micro_batching = false;
  config.cache_capacity = 1024;
  return config;
}

uint64_t HitSum(const MetricsSnapshot& snap) {
  return snap.CounterValue("serve_cache_hits_total") +
         snap.CounterValue("serve_store_hits_total") +
         snap.CounterValue("serve_live_scored_total");
}

TEST(ServeObservabilityTest, SingleServiceCountersAreExact) {
  const RatingDataset train = MakeTrain();
  const std::string path = SaveModel(train, "obs_single.gam", 8);
  auto registry = std::make_shared<MetricsRegistry>();
  Result<std::unique_ptr<RecommendationService>> service =
      RecommendationService::LoadModelService(path, train,
                                              ConfigWith(registry));
  ASSERT_TRUE(service.ok()) << service.status().ToString();

  std::vector<ItemId> out;
  uint64_t expected = 0;
  for (UserId u = 0; u < train.num_users(); ++u) {
    ASSERT_TRUE((*service)->TopNInto(u, 5, {}, &out).ok());
    ++expected;
  }
  // Repeats hit the version-keyed result cache; still requests.
  for (UserId u = 0; u < 10; ++u) {
    ASSERT_TRUE((*service)->TopNInto(u, 5, {}, &out).ok());
    ++expected;
  }
  // Rejected requests count as errors only, never as requests.
  EXPECT_FALSE((*service)->TopNInto(train.num_users() + 7, 5, {}, &out).ok());
  EXPECT_FALSE((*service)->TopNInto(-1, 5, {}, &out).ok());

  const MetricsSnapshot snap = registry->Snapshot();
  EXPECT_EQ(snap.CounterValue("serve_requests_total"), expected);
  EXPECT_EQ(HitSum(snap), expected);
  EXPECT_EQ(snap.CounterValue("serve_cache_hits_total"), 10u);
  EXPECT_EQ(snap.CounterValue("serve_request_errors_total"), 2u);
  EXPECT_EQ(snap.CounterValue("serve_request_ns"), expected);
  // The legacy stats counters and the metrics layer agree exactly.
  EXPECT_EQ((*service)->stats().requests, expected);
}

TEST(ServeObservabilityTest, StoreHitsJoinTheIdentity) {
  const RatingDataset train = MakeTrain();
  const std::string path = SaveModel(train, "obs_store.gam", 8);
  auto registry = std::make_shared<MetricsRegistry>();
  Result<std::unique_ptr<RecommendationService>> service =
      RecommendationService::LoadModelService(path, train,
                                              ConfigWith(registry));
  ASSERT_TRUE(service.ok());
  const std::vector<UserId> all = HeadUsersByActivity(train, 0);
  Result<TopNStore> store = (*service)->BuildStore(all, 5);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  ASSERT_TRUE(
      (*service)
          ->AttachStore(std::make_shared<const TopNStore>(
              std::move(store).value()))
          .ok());
  std::vector<ItemId> out;
  for (UserId u = 0; u < train.num_users(); ++u) {
    ASSERT_TRUE((*service)->TopNInto(u, 5, {}, &out).ok());
  }
  const MetricsSnapshot snap = registry->Snapshot();
  const uint64_t users = static_cast<uint64_t>(train.num_users());
  EXPECT_EQ(snap.CounterValue("serve_requests_total"), users);
  EXPECT_EQ(HitSum(snap), users);
  EXPECT_GT(snap.CounterValue("serve_store_hits_total"), 0u);
}

TEST(ServeObservabilityTest, RouterCountersAreExactAcrossAPublish) {
  const RatingDataset train = MakeTrain();
  const std::string path_a = SaveModel(train, "obs_router_a.gam", 8);
  const std::string path_b = SaveModel(train, "obs_router_b.gam", 12);
  auto registry = std::make_shared<MetricsRegistry>();
  Result<std::unique_ptr<ShardRouter>> router = ShardRouter::Load(
      SnapshotKind::kModel, path_a, train, 3, ConfigWith(registry));
  ASSERT_TRUE(router.ok()) << router.status().ToString();

  std::vector<ItemId> out;
  const uint64_t users = static_cast<uint64_t>(train.num_users());
  for (UserId u = 0; u < train.num_users(); ++u) {
    ASSERT_TRUE((*router)->TopNInto(u, 5, {}, &out, nullptr).ok());
  }
  ASSERT_TRUE((*router)->Publish(path_b, nullptr).ok());
  for (UserId u = 0; u < train.num_users(); ++u) {
    ASSERT_TRUE((*router)->TopNInto(u, 5, {}, &out, nullptr).ok());
  }

  const MetricsSnapshot snap = (*router)->SnapshotMetrics();
  EXPECT_EQ(snap.CounterValue("serve_requests_total"), 2 * users);
  EXPECT_EQ(HitSum(snap), 2 * users);
  // The swap itself is accounted, per shard.
  EXPECT_EQ(snap.CounterValue("serve_publishes_total"), 3u);
  // Domain accounting is generation-scoped: one full pass per snapshot.
  EXPECT_EQ(snap.CounterValue("serve_domain_lists_total{gen=\"0\"}"), users);
  EXPECT_EQ(snap.CounterValue("serve_domain_lists_total{gen=\"1\"}"), users);
}

TEST(ServeObservabilityTest, PerShardRegistriesMergeExactly) {
  const RatingDataset train = MakeTrain();
  const std::string path = SaveModel(train, "obs_merge.gam", 8);
  // Three shards, three private registries — the multi-process shape,
  // in-process.
  std::vector<std::shared_ptr<MetricsRegistry>> registries;
  std::vector<std::unique_ptr<ServiceShard>> shards;
  for (size_t k = 0; k < 3; ++k) {
    registries.push_back(std::make_shared<MetricsRegistry>());
    auto shard = ServiceShard::Load(SnapshotKind::kModel, path, train,
                                    ShardSpec{k, 3},
                                    ConfigWith(registries.back()));
    ASSERT_TRUE(shard.ok()) << shard.status().ToString();
    shards.push_back(std::move(shard).value());
  }
  Result<std::unique_ptr<ShardRouter>> router =
      ShardRouter::FromShards(std::move(shards));
  ASSERT_TRUE(router.ok());

  std::vector<ItemId> out;
  const uint64_t users = static_cast<uint64_t>(train.num_users());
  for (UserId u = 0; u < train.num_users(); ++u) {
    ASSERT_TRUE((*router)->TopNInto(u, 5, {}, &out, nullptr).ok());
  }

  // The router's merged view equals the hand-merged per-shard view —
  // in any merge order (associativity + commutativity).
  const MetricsSnapshot merged = (*router)->SnapshotMetrics();
  EXPECT_EQ(merged.CounterValue("serve_requests_total"), users);
  EXPECT_EQ(HitSum(merged), users);
  MetricsSnapshot forward = registries[0]->Snapshot();
  forward.MergeFrom(registries[1]->Snapshot());
  forward.MergeFrom(registries[2]->Snapshot());
  MetricsSnapshot backward = registries[2]->Snapshot();
  MetricsSnapshot tail = registries[1]->Snapshot();
  tail.MergeFrom(registries[0]->Snapshot());
  backward.MergeFrom(tail);
  EXPECT_EQ(forward.CounterValue("serve_requests_total"), users);
  for (const auto& [name, value] : forward.series) {
    const MetricValue* other = backward.Find(name);
    ASSERT_NE(other, nullptr) << name;
    EXPECT_EQ(value.u64, other->u64) << name;
    EXPECT_EQ(value.buckets, other->buckets) << name;
  }
  // Per-shard totals really did come from different shards.
  uint64_t sum = 0;
  for (const auto& r : registries) {
    const uint64_t part = r->Snapshot().CounterValue("serve_requests_total");
    EXPECT_GT(part, 0u);
    sum += part;
  }
  EXPECT_EQ(sum, users);
}

TEST(ServeObservabilityTest, WireRoundTripPreservesTheIdentity) {
  // The multi-process router gathers children over METRICSNAP: a
  // serialize/parse/merge chain must leave the counters exact.
  const RatingDataset train = MakeTrain();
  const std::string path = SaveModel(train, "obs_wire.gam", 8);
  auto registry = std::make_shared<MetricsRegistry>();
  Result<std::unique_ptr<RecommendationService>> service =
      RecommendationService::LoadModelService(path, train,
                                              ConfigWith(registry));
  ASSERT_TRUE(service.ok());
  std::vector<ItemId> out;
  for (UserId u = 0; u < 20; ++u) {
    ASSERT_TRUE((*service)->TopNInto(u, 5, {}, &out).ok());
  }
  Result<MetricsSnapshot> parsed =
      MetricsSnapshot::Parse(registry->Snapshot().Serialize());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  MetricsSnapshot merged = *parsed;
  merged.MergeFrom(*parsed);  // two identical "children"
  EXPECT_EQ(parsed->CounterValue("serve_requests_total"), 20u);
  EXPECT_EQ(merged.CounterValue("serve_requests_total"), 40u);
  EXPECT_EQ(HitSum(merged), 40u);
  // Distinct coverage merges as a union: doubling the shard does not
  // double the covered catalog.
  EXPECT_EQ(merged.CounterValue("serve_domain_items_distinct{gen=\"0\"}"),
            parsed->CounterValue("serve_domain_items_distinct{gen=\"0\"}"));
}

TEST(ServeObservabilityTest, LiveDomainMetricsMatchOfflineRecomputation) {
  const RatingDataset train = MakeTrain();
  const std::string path = SaveModel(train, "obs_domain.gam", 8);
  auto registry = std::make_shared<MetricsRegistry>();
  Result<std::unique_ptr<RecommendationService>> service =
      RecommendationService::LoadModelService(path, train,
                                              ConfigWith(registry));
  ASSERT_TRUE(service.ok());
  const DomainAccountant* acct = (*service)->domain_accountant();
  ASSERT_NE(acct, nullptr);

  // Serve and keep every list (repeats included: cache hits are served
  // lists too and must be accounted).
  std::vector<std::vector<ItemId>> lists;
  std::vector<ItemId> out;
  for (UserId u = 0; u < train.num_users(); ++u) {
    ASSERT_TRUE((*service)->TopNInto(u, 5, {}, &out).ok());
    lists.push_back(out);
  }
  for (UserId u = 0; u < 15; ++u) {
    ASSERT_TRUE((*service)->TopNInto(u, 5, {}, &out).ok());
    lists.push_back(out);
  }

  // Offline recomputation from the same served lists, through the same
  // novelty table and long-tail partition the accountant exposes.
  uint64_t slots = 0, tail_slots = 0;
  double novelty_sum = 0.0;
  std::set<ItemId> distinct, distinct_tail;
  for (const std::vector<ItemId>& list : lists) {
    for (const ItemId i : list) {
      ++slots;
      novelty_sum += acct->NoveltyBits(i);
      distinct.insert(i);
      if (acct->IsLongTail(i)) {
        ++tail_slots;
        distinct_tail.insert(i);
      }
    }
  }

  const MetricsSnapshot snap = registry->Snapshot();
  const std::string gen = "{gen=\"0\"}";
  EXPECT_EQ(snap.CounterValue("serve_domain_lists_total" + gen),
            lists.size());
  EXPECT_EQ(snap.CounterValue("serve_domain_slots_total" + gen), slots);
  EXPECT_EQ(snap.CounterValue("serve_domain_tail_slots_total" + gen),
            tail_slots);
  EXPECT_EQ(snap.CounterValue("serve_domain_items_distinct" + gen),
            distinct.size());
  EXPECT_EQ(snap.CounterValue("serve_domain_tail_items_distinct" + gen),
            distinct_tail.size());
  const double live_sum =
      snap.DoubleValue("serve_domain_novelty_bits_sum" + gen);
  EXPECT_LE(std::abs(live_sum - novelty_sum),
            1e-9 * std::max(1.0, std::abs(novelty_sum)));
  // The novelty table itself is sane: Laplace smoothing keeps every
  // item finite and non-negative.
  for (ItemId i = 0; i < train.num_items(); ++i) {
    EXPECT_TRUE(std::isfinite(acct->NoveltyBits(i))) << i;
    EXPECT_GE(acct->NoveltyBits(i), 0.0) << i;
  }
}

TEST(ServeObservabilityTest, DomainMetricsCanBeDisabled) {
  const RatingDataset train = MakeTrain();
  const std::string path = SaveModel(train, "obs_nodomain.gam", 8);
  auto registry = std::make_shared<MetricsRegistry>();
  ServiceConfig config = ConfigWith(registry);
  config.domain_metrics = false;
  Result<std::unique_ptr<RecommendationService>> service =
      RecommendationService::LoadModelService(path, train, config);
  ASSERT_TRUE(service.ok());
  EXPECT_EQ((*service)->domain_accountant(), nullptr);
  std::vector<ItemId> out;
  ASSERT_TRUE((*service)->TopNInto(0, 5, {}, &out).ok());
  const MetricsSnapshot snap = registry->Snapshot();
  EXPECT_EQ(snap.CounterValue("serve_requests_total"), 1u);
  EXPECT_EQ(snap.Find("serve_domain_lists_total{gen=\"0\"}"), nullptr);
}

}  // namespace
}  // namespace ganc
