// ArtifactWatcher unit suite, driven through CheckNow() so every poll
// step is deterministic: baseline suppression, the two-poll stability
// gate against torn writes, failure memory (one rejection per bad
// artifact, not one per poll), and background-thread publication.

#include "serve/snapshot_swap.h"

#include <chrono>
#include <fstream>
#include <string>
#include <thread>

#include <gtest/gtest.h>

namespace ganc {
namespace {

void WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::trunc | std::ios::binary);
  out << content;
  ASSERT_TRUE(out.good());
}

struct PublishLog {
  int calls = 0;
  Status next = Status::OK();

  ArtifactWatcher::PublishFn Fn() {
    return [this](const std::string&) {
      ++calls;
      return next;
    };
  }
};

TEST(ArtifactWatcherTest, BaselineArtifactIsNotRepublished) {
  const std::string path = testing::TempDir() + "/watch_baseline.gam";
  WriteFile(path, "artifact-v1");
  PublishLog log;
  ArtifactWatcher watcher(path, log.Fn(), 1000);
  for (int i = 0; i < 5; ++i) {
    EXPECT_FALSE(watcher.CheckNow());
  }
  EXPECT_EQ(log.calls, 0);
  EXPECT_EQ(watcher.counters().polls, 5u);
  EXPECT_EQ(watcher.counters().publishes, 0u);
}

TEST(ArtifactWatcherTest, StableChangePublishesExactlyOnce) {
  const std::string path = testing::TempDir() + "/watch_stable.gam";
  WriteFile(path, "artifact-v1");
  PublishLog log;
  ArtifactWatcher watcher(path, log.Fn(), 1000);
  WriteFile(path, "artifact-v2-different-size");
  // First observation of the new signature only arms the stability
  // gate.
  EXPECT_FALSE(watcher.CheckNow());
  EXPECT_EQ(log.calls, 0);
  // Second observation of the identical signature publishes.
  EXPECT_TRUE(watcher.CheckNow());
  EXPECT_EQ(log.calls, 1);
  // Published state is the new baseline: no re-publish churn.
  EXPECT_FALSE(watcher.CheckNow());
  EXPECT_EQ(log.calls, 1);
  EXPECT_EQ(watcher.counters().publishes, 1u);
  EXPECT_EQ(watcher.counters().failures, 0u);
}

TEST(ArtifactWatcherTest, TornWritesNeverPublishMidCopy) {
  const std::string path = testing::TempDir() + "/watch_torn.gam";
  WriteFile(path, "artifact-v1");
  PublishLog log;
  ArtifactWatcher watcher(path, log.Fn(), 1000);
  // A writer copying in chunks: the signature moves on every poll, so
  // the stability gate never opens.
  std::string grow = "v2";
  for (int i = 0; i < 6; ++i) {
    grow += "-chunk";
    WriteFile(path, grow);
    EXPECT_FALSE(watcher.CheckNow());
  }
  EXPECT_EQ(log.calls, 0);
  // Writer finishes; two quiet polls later the final state publishes.
  EXPECT_TRUE(watcher.CheckNow());
  EXPECT_EQ(log.calls, 1);
}

TEST(ArtifactWatcherTest, FailedPublishIsNotRetriedUntilTheFileChanges) {
  const std::string path = testing::TempDir() + "/watch_failed.gam";
  WriteFile(path, "artifact-v1");
  PublishLog log;
  ArtifactWatcher watcher(path, log.Fn(), 1000);
  WriteFile(path, "artifact-bad-fingerprint");
  log.next = Status::InvalidArgument("fingerprint mismatch");
  EXPECT_FALSE(watcher.CheckNow());  // settle
  EXPECT_FALSE(watcher.CheckNow());  // publish attempt -> rejected
  EXPECT_EQ(log.calls, 1);
  // The bad signature is remembered: no retry storm.
  for (int i = 0; i < 4; ++i) {
    EXPECT_FALSE(watcher.CheckNow());
  }
  EXPECT_EQ(log.calls, 1);
  EXPECT_EQ(watcher.counters().failures, 1u);
  // A genuinely new artifact at the same path is tried again.
  WriteFile(path, "artifact-v3-fixed-and-longer");
  log.next = Status::OK();
  EXPECT_FALSE(watcher.CheckNow());  // settle
  EXPECT_TRUE(watcher.CheckNow());
  EXPECT_EQ(log.calls, 2);
  EXPECT_EQ(watcher.counters().publishes, 1u);
}

TEST(ArtifactWatcherTest, MissingFileIsQuietUntilItAppears) {
  const std::string path = testing::TempDir() + "/watch_missing.gam";
  (void)remove(path.c_str());
  PublishLog log;
  ArtifactWatcher watcher(path, log.Fn(), 1000);
  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE(watcher.CheckNow());
  }
  EXPECT_EQ(log.calls, 0);
  WriteFile(path, "artifact-appears");
  EXPECT_FALSE(watcher.CheckNow());  // settle
  EXPECT_TRUE(watcher.CheckNow());
  EXPECT_EQ(log.calls, 1);
}

TEST(ArtifactWatcherTest, BackgroundThreadPublishesAndStopsCleanly) {
  const std::string path = testing::TempDir() + "/watch_thread.gam";
  WriteFile(path, "artifact-v1");
  PublishLog log;
  ArtifactWatcher watcher(path, log.Fn(), 5);
  watcher.Start();
  watcher.Start();  // idempotent
  WriteFile(path, "artifact-v2-for-the-thread");
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (watcher.counters().publishes == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(watcher.counters().publishes, 1u);
  watcher.Stop();
  const uint64_t polls_at_stop = watcher.counters().polls;
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_EQ(watcher.counters().polls, polls_at_stop);
  watcher.Stop();  // idempotent
}

}  // namespace
}  // namespace ganc
