// Common interface for base recommenders.
//
// Every model fits on a train RatingDataset and can score the whole
// catalog for a user. The scoring primitives are ScoreInto (one user into
// a caller-owned buffer) and ScoreBatchInto (a user batch into one
// batch-major buffer); the latent-factor models override the batch path
// with the cache-blocked FactorScoringEngine kernel, the sparse models
// (ItemKNN, UserKNN, RP3b) with flat-CSR scatter loops, and the rest
// inherit the per-user loop. ScoreAll is the allocating convenience
// wrapper. Top-N generation always uses the shared SelectTopK kernels so
// tie-breaking is deterministic across models and across the
// sequential/parallel paths.

#ifndef GANC_RECOMMENDER_RECOMMENDER_H_
#define GANC_RECOMMENDER_RECOMMENDER_H_

#include <algorithm>
#include <cstddef>
#include <istream>
#include <memory>
#include <ostream>
#include <span>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "recommender/factor_scoring_engine.h"
#include "recommender/scoring_context.h"
#include "util/serialize.h"
#include "util/status.h"
#include "util/thread_pool.h"
#include "util/top_k.h"

namespace ganc {

/// Abstract base recommender.
class Recommender {
 public:
  virtual ~Recommender() = default;

  /// Trains on `train`. Must be called before scoring. Idempotent: fitting
  /// again retrains from scratch. Models that keep a borrowed pointer to
  /// `train` (ItemKNN, UserKNN, RP3b) require it to outlive all scoring
  /// calls; the matrix-free models copy everything they need.
  virtual Status Fit(const RatingDataset& train) = 0;

  /// Pool-aware training overload. Models with parallelizable fits
  /// (ItemKNN and UserKNN shard their similarity sweeps over the pool's
  /// workers with a deterministic merge) override this; everything else
  /// inherits the default, which ignores the pool and runs the serial
  /// fit.
  ///
  /// Contract: the fitted state — and therefore every score and every
  /// saved artifact byte — is identical for any pool, including none
  /// (pinned by the sparse parity suite). A null pool always means
  /// serial.
  virtual Status Fit(const RatingDataset& train, ThreadPool* pool);

  /// Per-epoch progress hook for the iterative trainers (RSVD, BPR,
  /// CofiR): invoked after each completed epoch with (epoch,
  /// num_epochs), from the thread driving Fit. Observability only — it
  /// must not influence training, is never serialized, and the default
  /// (and every non-epoch model) ignores it.
  using EpochCallback = std::function<void(int32_t, int32_t)>;
  virtual void SetEpochCallback(EpochCallback callback) { (void)callback; }

  /// Catalog size the fitted model scores over (0 before Fit/Load).
  virtual int32_t num_items() const = 0;

  /// Writes a dense score for every item in the catalog for user `u` into
  /// `out`; higher is better.
  ///
  /// Contract:
  ///  - `out` is caller-owned and must span exactly num_items() entries;
  ///    the model overwrites every entry and never keeps a reference past
  ///    the call (use ScoringContext::Scores to reuse one buffer across
  ///    calls without per-user allocation).
  ///  - Thread-safe on a fitted (or loaded) model: concurrent ScoreInto /
  ///    ScoreBatchInto calls on distinct output buffers are safe. Fit and
  ///    Load are NOT thread-safe against concurrent scoring. The scratch
  ///    behind the buffers is a different matter: a ScoringContext is
  ///    owned by exactly one thread for its whole life (create one per
  ///    worker — never hand a context between threads, even with
  ///    external synchronization; debug builds abort on violation, see
  ///    scoring_context.h).
  ///  - Deterministic: the same fitted state yields bit-identical scores
  ///    on every call (Rand derives scores from (seed, u, item), not from
  ///    mutable generator state).
  ///  - Scales differ between models; normalize before mixing (see
  ///    core/accuracy_scorer.h).
  virtual void ScoreInto(UserId u, std::span<double> out) const = 0;

  /// Writes dense catalog scores for every user in `users` into the
  /// batch-major `out` (users.size() * num_items() entries; row b holds
  /// the scores of users[b]).
  ///
  /// Contract: same buffer-ownership and thread-safety rules as
  /// ScoreInto, and the scores must be bit-identical to users.size()
  /// per-user ScoreInto calls (pinned by the scoring parity suite). The
  /// default loops over ScoreInto; the latent-factor models (PSVD, RSVD,
  /// BPR, CofiR) override it with the blocked FactorScoringEngine kernel,
  /// and the sparse models (ItemKNN, UserKNN, RP3b) with flat-CSR batch
  /// scatter loops (one bulk zero-fill per block).
  virtual void ScoreBatchInto(std::span<const UserId> users,
                              std::span<double> out) const;

  /// Serializes the fitted model as a versioned, checksummed binary
  /// artifact (see docs/FORMATS.md) so a trained model can be served by
  /// a different process via Load.
  ///
  /// Contract:
  ///  - Requires a fitted model; saving an unfitted model is a
  ///    FailedPrecondition error.
  ///  - The artifact captures every input to scoring: a Load of the
  ///    written bytes produces bit-identical ScoreInto / ScoreBatchInto
  ///    output (and therefore identical top-N lists) on all models.
  ///  - `os` must be a binary stream; the artifact is self-contained and
  ///    self-describing (magic, format version, model type tag).
  ///  - Const and thread-safe against concurrent scoring.
  ///
  /// The default implementation returns NotImplemented; every shipped
  /// model overrides it. Use SaveModelFile / LoadModelFile
  /// (recommender/model_io.h) for path-based round trips and
  /// type-dispatching loads.
  virtual Status Save(std::ostream& os) const;

  /// Restores the state written by Save of the same concrete class,
  /// replacing any previously fitted state.
  ///
  /// Contract:
  ///  - Fails (without clobbering `*this`'s usable state guarantees) on
  ///    bad magic, unsupported format version, wrong model type,
  ///    truncation, or checksum mismatch.
  ///  - `train` rebinds the dataset-backed models (ItemKNN, UserKNN,
  ///    RP3b score against user profiles, so their artifacts store the
  ///    learned structures but borrow the dataset): those models require
  ///    `train` non-null with matching |U| x |I| dimensions AND a
  ///    matching content fingerprint (RatingDataset::Fingerprint), and
  ///    it must outlive scoring, exactly as after Fit. The
  ///    self-contained models accept nullptr; when `train` is provided
  ///    they validate their dimensions and stored train fingerprint
  ///    against it, so a model is never silently served against a
  ///    split it was not trained on.
  ///  - Hyper-parameters stored in the artifact overwrite the instance's
  ///    config, so name() and scoring behavior match the saved model.
  ///  - Not thread-safe against concurrent scoring (like Fit).
  ///
  /// The stream overload is a convenience wrapper that builds an
  /// ArtifactReader over `is` and dispatches to the reader overload —
  /// the virtual hook every model implements. The reader form is
  /// backend-agnostic: over a mapped artifact (ArtifactReader's mmap
  /// backend) the factor-table models borrow their tables zero-copy
  /// from the mapping instead of materializing them.
  Status Load(std::istream& is, const RatingDataset* train);
  virtual Status Load(ArtifactReader& r, const RatingDataset* train);

  /// Converts the model's factor tables to `p` in place (see
  /// factor_view.h for the precision semantics). The latent-factor
  /// models (PSVD, RSVD, BPR, CofiR) override this to materialize the
  /// compact tables and drop the fp64 originals; converting a compacted
  /// model again is an error there (narrowing is one-way). Every other
  /// model accepts only kFp64 (a no-op) and rejects the compact
  /// precisions — it has no factor tables to compact.
  virtual Status SetFactorPrecision(FactorPrecision p);

  /// Active factor-table precision; kFp64 for models without factor
  /// tables. Surfaces in the serve snapshot (see serve layer).
  virtual FactorPrecision factor_precision() const {
    return FactorPrecision::kFp64;
  }

  /// Allocating convenience wrapper over ScoreInto.
  std::vector<double> ScoreAll(UserId u) const;

  /// Model name for reports, e.g. "RSVD" or "PSVD100".
  virtual std::string name() const = 0;

  /// Top-N item ids among `candidates` in best-first order.
  std::vector<ItemId> RecommendTopN(UserId u,
                                    const std::vector<ItemId>& candidates,
                                    int n) const;

  /// Allocation-free top-N: scores through ctx's score buffer, selects
  /// through ctx's top-k heap, and overwrites `out` (capacity reused).
  /// Output is identical to RecommendTopN. Uses ctx.Scores and ctx.TopK;
  /// `candidates` may alias ctx.Candidates().
  void RecommendTopNInto(UserId u, std::span<const ItemId> candidates, int n,
                         ScoringContext& ctx, std::vector<ItemId>& out) const;
};

/// Users per ScoreBatchInto call in the framework's full-catalog loops:
/// one FactorScoringEngine register block, small enough that a batch
/// score buffer stays cache-resident at any catalog size. Defined from
/// the engine constant so retuning the kernel block retunes every loop.
inline constexpr size_t kScoreBatch = FactorScoringEngine::kUserBlock;

/// Runs fn(u, scores_row) for every user in `users`, scoring in blocks of
/// kScoreBatch through ctx's batch buffer. `scorer` is anything with
/// num_items() and ScoreBatchInto(users, out) — a Recommender or an
/// AccuracyScorer. fn may use every ctx buffer except BatchScores, which
/// holds the in-flight block (the contiguous variant additionally owns
/// ctx.BatchUsers()).
template <typename Scorer, typename Fn>
void ForEachScoredUser(const Scorer& scorer, std::span<const UserId> users,
                       ScoringContext& ctx, Fn&& fn) {
  const size_t ni = static_cast<size_t>(scorer.num_items());
  for (size_t b0 = 0; b0 < users.size(); b0 += kScoreBatch) {
    const size_t bn = std::min(kScoreBatch, users.size() - b0);
    const std::span<double> batch = ctx.BatchScores(bn * ni);
    scorer.ScoreBatchInto(users.subspan(b0, bn), batch);
    for (size_t b = 0; b < bn; ++b) {
      fn(users[b0 + b], std::span<const double>(batch.subspan(b * ni, ni)));
    }
  }
}

/// Contiguous-range variant: scores users [lo, hi) through
/// ctx.BatchUsers() — the chunk shape every ParallelForChunks consumer
/// gets.
template <typename Scorer, typename Fn>
void ForEachScoredUser(const Scorer& scorer, size_t lo, size_t hi,
                       ScoringContext& ctx, Fn&& fn) {
  std::vector<UserId>& users = ctx.BatchUsers();
  users.clear();
  for (size_t uu = lo; uu < hi; ++uu) users.push_back(static_cast<UserId>(uu));
  ForEachScoredUser(scorer, std::span<const UserId>(users), ctx,
                    std::forward<Fn>(fn));
}

/// Top-k over a dense score row restricted to the items `u` has NOT
/// rated in `train` — the "all unrated items" candidate protocol without
/// materializing a candidate list. Marks the user's rated items (plus
/// any `exclusions`, the serving layer's session deltas — ids must be
/// in range) in ctx.Flags() (kept zeroed between calls), selects through
/// the dense scan kernel into ctx.TopK(), unmarks, and returns
/// ctx.TopK(). Output is identical to SelectTopKFromScoresInto over the
/// ascending unrated, non-excluded item ids.
std::vector<ScoredItem>& SelectTopKUnrated(std::span<const double> scores,
                                           const RatingDataset& train,
                                           UserId u, size_t k,
                                           ScoringContext& ctx,
                                           std::span<const ItemId> exclusions = {});

/// Builds per-user top-N sets for all users over their unrated train items
/// ("all unrated items" candidate generation). Returns one vector of item
/// ids per user in best-first order. With a pool, users are scored in
/// kScoreBatch blocks through the models' ScoreBatchInto kernel and fanned
/// out in parallel chunks (one ScoringContext per chunk); because per-user
/// scoring is deterministic and each user writes only its own slot, the
/// output is byte-identical to the sequential path.
std::vector<std::vector<ItemId>> RecommendAllUsers(const Recommender& model,
                                                   const RatingDataset& train,
                                                   int n,
                                                   ThreadPool* pool = nullptr);

}  // namespace ganc

#endif  // GANC_RECOMMENDER_RECOMMENDER_H_
