// ArtifactWatcher: file-driven zero-downtime snapshot publication.
//
// The PUBLISH verb covers operator-driven swaps; the watcher covers the
// deployment loop where a trainer just drops a new artifact at a known
// path. A background thread polls the path's stat signature
// (inode, size, mtime) and calls the publish callback — typically
// ShardRouter::Publish — when the file changes.
//
// Two rules make this safe against the obvious races:
//   * A changed signature is only published after it has been observed
//     identical on two consecutive polls — a writer mid-copy moves
//     size/mtime between polls, so torn files are never loaded. (The
//     artifact container's checksum is the backstop if a writer lands
//     exactly between polls; a failed load is rejected, not served.)
//   * A signature whose publish failed is remembered and not retried
//     until the file changes again — a bad artifact produces one
//     rejection, not a rejection per poll.
//
// The signature present at construction is the baseline: it is assumed
// to be the artifact already serving and is not re-published.

#ifndef GANC_SERVE_SNAPSHOT_SWAP_H_
#define GANC_SERVE_SNAPSHOT_SWAP_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

#include "util/status.h"

namespace ganc {

class ArtifactWatcher {
 public:
  /// Called with the watched path when a stable new signature appears.
  using PublishFn = std::function<Status(const std::string&)>;

  /// Monotonic counters, snapshot via counters().
  struct Counters {
    uint64_t polls = 0;      ///< CheckNow invocations
    uint64_t publishes = 0;  ///< successful publishes
    uint64_t failures = 0;   ///< rejected publishes
  };

  /// Watches `path`, calling `publish` on stable changes. Captures the
  /// current signature as the already-serving baseline. Start() begins
  /// polling every `poll_interval_ms`; without it the watcher is a
  /// passive CheckNow-driven object (how the unit tests drive it).
  ArtifactWatcher(std::string path, PublishFn publish, int poll_interval_ms);

  /// Stops the poll thread (idempotent).
  ~ArtifactWatcher();

  ArtifactWatcher(const ArtifactWatcher&) = delete;
  ArtifactWatcher& operator=(const ArtifactWatcher&) = delete;

  void Start();
  void Stop();

  /// One poll step: stat, compare, maybe publish. Returns true when a
  /// publish succeeded this step. Thread-safe (the poll thread and
  /// tests share it).
  bool CheckNow();

  Counters counters() const;
  const std::string& path() const { return path_; }

 private:
  /// Identity of the file's current on-disk state; `exists == false`
  /// compares unequal to every real signature.
  struct Signature {
    bool exists = false;
    uint64_t inode = 0;
    uint64_t size = 0;
    int64_t mtime_ns = 0;

    bool operator==(const Signature&) const = default;
  };

  static Signature Stat(const std::string& path);

  const std::string path_;
  const PublishFn publish_;
  const int poll_interval_ms_;

  mutable std::mutex mu_;
  Signature published_;  ///< signature of the artifact serving now
  Signature last_seen_;  ///< previous poll's signature (stability gate)
  Signature failed_;     ///< last signature whose publish was rejected
  Counters counters_;

  std::mutex stop_mu_;
  std::condition_variable stop_cv_;
  bool stopping_ = false;
  std::thread thread_;
};

}  // namespace ganc

#endif  // GANC_SERVE_SNAPSHOT_SWAP_H_
