#include "util/rng.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

#include <gtest/gtest.h>

namespace ganc {
namespace {

TEST(RngTest, DeterministicPerSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformMeanNearHalf) {
  Rng rng(11);
  double acc = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) acc += rng.Uniform();
  EXPECT_NEAR(acc / n, 0.5, 0.01);
}

TEST(RngTest, UniformRange) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.Uniform(-3.0, 5.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(RngTest, UniformIntBounds) {
  Rng rng(17);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = rng.UniformInt(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);  // all buckets hit
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng(19);
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(static_cast<int64_t>(-5), 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, NormalMomentsMatch) {
  Rng rng(23);
  const int n = 200000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Normal();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(RngTest, NormalScaled) {
  Rng rng(29);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.Normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(31);
  int heads = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.3)) ++heads;
  }
  EXPECT_NEAR(static_cast<double>(heads) / n, 0.3, 0.01);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(37);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  EXPECT_NE(v, orig);  // astronomically unlikely to be identity
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, ShuffleEmptyAndSingleton) {
  Rng rng(41);
  std::vector<int> empty;
  rng.Shuffle(&empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one{5};
  rng.Shuffle(&one);
  EXPECT_EQ(one, std::vector<int>{5});
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(43);
  Rng child = a.Fork();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == child.Next()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(AliasSamplerTest, MatchesWeights) {
  std::vector<double> weights{1.0, 2.0, 7.0};
  AliasSampler sampler(weights);
  Rng rng(47);
  std::vector<int> counts(3, 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) ++counts[sampler.Sample(&rng)];
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.2, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.7, 0.01);
}

TEST(AliasSamplerTest, ZeroWeightNeverDrawn) {
  std::vector<double> weights{0.0, 1.0, 0.0, 1.0};
  AliasSampler sampler(weights);
  Rng rng(53);
  for (int i = 0; i < 10000; ++i) {
    const size_t s = sampler.Sample(&rng);
    EXPECT_TRUE(s == 1 || s == 3);
  }
}

TEST(AliasSamplerTest, SingleBucket) {
  AliasSampler sampler({5.0});
  Rng rng(59);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(sampler.Sample(&rng), 0u);
}

TEST(SampleWithoutReplacementTest, DistinctAndInRange) {
  Rng rng(61);
  const auto s = SampleWithoutReplacement(100, 30, &rng);
  EXPECT_EQ(s.size(), 30u);
  std::set<size_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 30u);
  for (size_t v : s) EXPECT_LT(v, 100u);
}

TEST(SampleWithoutReplacementTest, FullPopulation) {
  Rng rng(67);
  const auto s = SampleWithoutReplacement(10, 10, &rng);
  std::set<size_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 10u);
}

TEST(SampleWithoutReplacementTest, ZeroK) {
  Rng rng(71);
  EXPECT_TRUE(SampleWithoutReplacement(10, 0, &rng).empty());
}

TEST(WeightedSampleWithoutReplacementTest, RespectsZeroWeights) {
  std::vector<double> weights{0.0, 1.0, 1.0, 0.0, 1.0};
  Rng rng(73);
  const auto s = WeightedSampleWithoutReplacement(weights, 3, &rng);
  std::set<size_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq, (std::set<size_t>{1, 2, 4}));
}

TEST(WeightedSampleWithoutReplacementTest, HeavyWeightSampledFirstMoreOften) {
  std::vector<double> weights{10.0, 1.0, 1.0, 1.0};
  int first_is_heavy = 0;
  for (uint64_t seed = 0; seed < 200; ++seed) {
    Rng rng(seed);
    const auto s = WeightedSampleWithoutReplacement(weights, 2, &rng);
    if (s[0] == 0) ++first_is_heavy;
  }
  EXPECT_GT(first_is_heavy, 120);  // ~10/13 expected
}

TEST(ZipfWeightsTest, DecreasingAndNormalizable) {
  const auto w = ZipfWeights(10, 1.0);
  ASSERT_EQ(w.size(), 10u);
  EXPECT_DOUBLE_EQ(w[0], 1.0);
  for (size_t i = 1; i < w.size(); ++i) EXPECT_LT(w[i], w[i - 1]);
  EXPECT_NEAR(w[1], 0.5, 1e-12);
}

TEST(ZipfWeightsTest, ExponentZeroIsUniform) {
  const auto w = ZipfWeights(5, 0.0);
  for (double v : w) EXPECT_DOUBLE_EQ(v, 1.0);
}

}  // namespace
}  // namespace ganc
