#include "core/ganc.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

#include "util/kde.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/top_k.h"

namespace ganc {

Ganc::Ganc(const AccuracyScorer* accuracy, std::vector<double> theta,
           CoverageKind coverage)
    : accuracy_(accuracy), theta_(std::move(theta)), coverage_(coverage) {}

std::string Ganc::Name(const std::string& theta_name) const {
  return "GANC(" + accuracy_->name() + ", " + theta_name + ", " +
         CoverageKindName(coverage_) + ")";
}

std::vector<ItemId> GreedyTopNForUser(const std::vector<double>& accuracy,
                                      double theta_u,
                                      const CoverageModel& coverage, UserId u,
                                      const std::vector<ItemId>& candidates,
                                      int top_n) {
  ScoringContext ctx;
  std::vector<ItemId> out;
  GreedyTopNForUserInto(accuracy, theta_u, coverage, u, candidates, top_n,
                        ctx, out);
  return out;
}

void GreedyTopNForUserInto(std::span<const double> accuracy, double theta_u,
                           const CoverageModel& coverage, UserId u,
                           std::span<const ItemId> candidates, int top_n,
                           ScoringContext& ctx, std::vector<ItemId>& out) {
  std::vector<ScoredItem>& top = ctx.TopK();
  SelectTopKByInto(
      candidates, static_cast<size_t>(top_n),
      [&](ItemId i) {
        return (1.0 - theta_u) * accuracy[static_cast<size_t>(i)] +
               theta_u * coverage.Score(u, i);
      },
      &top);
  out.clear();
  out.reserve(top.size());
  for (const ScoredItem& s : top) out.push_back(s.item);
}

Result<TopNCollection> Ganc::RecommendAll(const RatingDataset& train,
                                          const GancConfig& config) const {
  if (theta_.size() != static_cast<size_t>(train.num_users())) {
    return Status::InvalidArgument(
        "theta size does not match the number of users");
  }
  for (double t : theta_) {
    if (t < 0.0 || t > 1.0 || !std::isfinite(t)) {
      return Status::InvalidArgument("theta entries must lie in [0, 1]");
    }
  }
  if (config.top_n <= 0) {
    return Status::InvalidArgument("top_n must be positive");
  }
  if (coverage_ == CoverageKind::kDyn) return RunOslg(train, config);
  return RunModular(train, config);
}

TopNCollection Ganc::RunModular(const RatingDataset& train,
                                const GancConfig& config) const {
  // Rand/Stat coverage is independent across users: the aggregate optimum
  // is each user's own mixed-score top-N, embarrassingly parallel.
  const std::unique_ptr<CoverageModel> coverage =
      MakeCoverage(coverage_, train, config.seed);
  TopNCollection result(static_cast<size_t>(train.num_users()));
  ParallelForChunks(
      config.pool, 0, static_cast<size_t>(train.num_users()),
      [&](size_t lo, size_t hi) {
        ScoringContext ctx;
        ForEachScoredUser(
            *accuracy_, lo, hi, ctx,
            [&](UserId u, std::span<const double> acc) {
              const size_t uu = static_cast<size_t>(u);
              train.UnratedItemsInto(u, &ctx.Candidates());
              GreedyTopNForUserInto(acc, theta_[uu], *coverage, u,
                                    ctx.Candidates(), config.top_n, ctx,
                                    result[uu]);
            });
      });
  return result;
}

Result<TopNCollection> Ganc::RunOslg(const RatingDataset& train,
                                     const GancConfig& config) const {
  const size_t n_users = static_cast<size_t>(train.num_users());
  Rng rng(config.seed);

  // --- Line 2: choose the sequential sample S.
  std::vector<size_t> sample;
  const bool full =
      config.sample_size <= 0 ||
      static_cast<size_t>(config.sample_size) >= n_users;
  if (full) {
    sample.resize(n_users);
    std::iota(sample.begin(), sample.end(), 0);
  } else if (config.kde_sampling) {
    Result<std::vector<size_t>> drawn = KdeProportionalSample(
        theta_, static_cast<size_t>(config.sample_size), &rng);
    if (!drawn.ok()) return drawn.status();
    sample = std::move(drawn).value();
  } else {
    sample = SampleWithoutReplacement(
        n_users, static_cast<size_t>(config.sample_size), &rng);
  }

  // --- Line 3: order the sample by increasing theta (or shuffle for the
  // arbitrary-order ablation).
  if (config.order_by_theta) {
    std::sort(sample.begin(), sample.end(), [&](size_t a, size_t b) {
      if (theta_[a] != theta_[b]) return theta_[a] < theta_[b];
      return a < b;
    });
  } else {
    rng.Shuffle(&sample);
  }

  TopNCollection result(n_users);
  std::vector<bool> in_sample(n_users, false);

  // --- Lines 4-10: sequential locally greedy over the sample, snapshotting
  // the Dyn state F(theta_u) after each user. Accuracy scores do not
  // depend on the evolving Dyn state, so they batch through the blocked
  // kernel even though the greedy itself stays sequential.
  DynCoverage dyn(train.num_items());
  std::vector<std::vector<uint32_t>> snapshots;
  std::vector<double> snapshot_theta;
  snapshots.reserve(sample.size());
  snapshot_theta.reserve(sample.size());
  {
    ScoringContext ctx;
    std::vector<ItemId> topn;
    std::vector<UserId> sample_users(sample.begin(), sample.end());
    ForEachScoredUser(
        *accuracy_, std::span<const UserId>(sample_users), ctx,
        [&](UserId u, std::span<const double> acc) {
          const size_t uu = static_cast<size_t>(u);
          in_sample[uu] = true;
          train.UnratedItemsInto(u, &ctx.Candidates());
          GreedyTopNForUserInto(acc, theta_[uu], dyn, u, ctx.Candidates(),
                                config.top_n, ctx, topn);
          for (ItemId i : topn) dyn.Observe(i);
          snapshot_theta.push_back(theta_[uu]);
          snapshots.push_back(dyn.counts());
          result[uu] = topn;
        });
  }

  if (full) return result;

  // --- Lines 11-15: every remaining user gets the coverage state of the
  // nearest-theta sampled user; value functions are independent, so this
  // phase is parallel.
  //
  // snapshot_theta is non-decreasing when order_by_theta is set; for the
  // ablation path we search linearly.
  auto nearest_snapshot = [&](double t) -> size_t {
    if (config.order_by_theta) {
      const auto it = std::lower_bound(snapshot_theta.begin(),
                                       snapshot_theta.end(), t);
      size_t idx = static_cast<size_t>(it - snapshot_theta.begin());
      if (idx == snapshot_theta.size()) return idx - 1;
      if (idx > 0 &&
          t - snapshot_theta[idx - 1] <= snapshot_theta[idx] - t) {
        return idx - 1;
      }
      return idx;
    }
    size_t best = 0;
    double best_d = std::abs(snapshot_theta[0] - t);
    for (size_t k = 1; k < snapshot_theta.size(); ++k) {
      const double d = std::abs(snapshot_theta[k] - t);
      if (d < best_d) {
        best_d = d;
        best = k;
      }
    }
    return best;
  };

  ParallelForChunks(config.pool, 0, n_users, [&](size_t lo, size_t hi) {
    ScoringContext ctx;
    std::vector<UserId>& users = ctx.BatchUsers();
    users.clear();
    for (size_t uu = lo; uu < hi; ++uu) {
      if (!in_sample[uu]) users.push_back(static_cast<UserId>(uu));
    }
    ForEachScoredUser(
        *accuracy_, std::span<const UserId>(users), ctx,
        [&](UserId u, std::span<const double> acc) {
          const size_t uu = static_cast<size_t>(u);
          // The snapshot is never mutated in this phase, so a borrowing
          // view replaces the per-user count-vector copy of the old code.
          const DynSnapshotView local(
              snapshots[nearest_snapshot(theta_[uu])]);
          train.UnratedItemsInto(u, &ctx.Candidates());
          GreedyTopNForUserInto(acc, theta_[uu], local, u, ctx.Candidates(),
                                config.top_n, ctx, result[uu]);
        });
  });
  return result;
}

double CollectionValue(const AccuracyScorer& accuracy,
                       const std::vector<double>& theta, CoverageKind kind,
                       const RatingDataset& train, const TopNCollection& topn,
                       uint64_t seed) {
  assert(topn.size() == static_cast<size_t>(train.num_users()));
  // Appendix B: with Dyn, c over the final collection counts each item's
  // total recommendation frequency.
  std::vector<uint32_t> counts(static_cast<size_t>(train.num_items()), 0);
  for (const auto& pu : topn) {
    for (ItemId i : pu) ++counts[static_cast<size_t>(i)];
  }
  const std::unique_ptr<CoverageModel> static_cov =
      kind == CoverageKind::kDyn ? nullptr : MakeCoverage(kind, train, seed);

  double value = 0.0;
  ScoringContext ctx;
  ForEachScoredUser(
      accuracy, 0, static_cast<size_t>(train.num_users()), ctx,
      [&](UserId u, std::span<const double> a) {
        const double t = theta[static_cast<size_t>(u)];
        double acc_sum = 0.0, cov_sum = 0.0;
        for (ItemId i : topn[static_cast<size_t>(u)]) {
          acc_sum += a[static_cast<size_t>(i)];
          cov_sum +=
              kind == CoverageKind::kDyn
                  ? 1.0 / std::sqrt(1.0 + static_cast<double>(
                                              counts[static_cast<size_t>(i)]))
                  : static_cov->Score(u, i);
        }
        value += (1.0 - t) * acc_sum + t * cov_sum;
      });
  return value;
}

}  // namespace ganc
