// Serving-tier instrument bundles and live domain accounting.
//
// ServeInstruments resolves the serving request-path series out of a
// MetricsRegistry once per service, so the hot path touches pre-resolved
// atomic pointers only. The registry travels in ServiceConfig: a shard
// that publishes a replacement snapshot hands the same registry to the
// replacement service, which is what keeps counters monotonic across
// snapshot swaps.
//
// DomainAccountant is the paper-facing half: per served list it
// accumulates novelty (mean −log₂ popularity, Laplace-smoothed) and
// cumulative distinct-item / long-tail coverage, live, labeled by the
// shard's publish generation (`{gen="G"}`). Its popularity table and
// long-tail partition come from one budgeted row-window sweep of the
// train set, so building it neither materializes a mapped dataset nor
// inflates the mapped server's resident footprint.

#ifndef GANC_SERVE_SERVE_METRICS_H_
#define GANC_SERVE_SERVE_METRICS_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "data/dataset.h"
#include "util/metrics.h"
#include "util/status.h"

namespace ganc {

/// Pre-resolved request-path instruments (one bundle per service; the
/// micro-batcher borrows a pointer to the same bundle).
struct ServeInstruments {
  // Request accounting. The identity the acceptance gate pins:
  // requests == cache_hits + store_hits + live_scored, exactly, in
  // every topology. Rejected requests count in errors only.
  Counter* requests = nullptr;
  Counter* errors = nullptr;
  Counter* cache_hits = nullptr;
  Counter* cache_misses = nullptr;
  Counter* store_hits = nullptr;
  Counter* live_scored = nullptr;

  // Stage latencies, nanoseconds.
  LatencyHistogram* request_ns = nullptr;
  LatencyHistogram* cache_probe_ns = nullptr;
  LatencyHistogram* store_probe_ns = nullptr;
  LatencyHistogram* score_ns = nullptr;   ///< live path: enqueue -> result ready
  LatencyHistogram* kernel_ns = nullptr;  ///< per block: ScoreBatchInto only
  LatencyHistogram* select_ns = nullptr;  ///< per request: top-k selection

  // Micro-batcher scheduling.
  Counter* batches = nullptr;
  Counter* batched_requests = nullptr;
  Counter* full_batches = nullptr;
  Counter* waited_flushes = nullptr;
  LatencyHistogram* batch_fill = nullptr;  ///< requests per dispatched block

  /// Registers (or re-resolves) the serving series in `registry`.
  static ServeInstruments Resolve(MetricsRegistry& registry);
};

/// Live per-snapshot novelty/coverage accounting. Thread-safe: Record
/// only touches relaxed atomics and an immutable table.
class DomainAccountant {
 public:
  /// Builds the popularity/novelty table and long-tail partition for
  /// `train` with one bounded row-window sweep (`sweep_budget_bytes` of
  /// row payload resident at a time; <= 0 uses a fixed modest default),
  /// then resolves the gen-labeled series in `registry`.
  static Result<std::unique_ptr<DomainAccountant>> Create(
      const RatingDataset& train, MetricsRegistry& registry,
      uint64_t generation, int64_t sweep_budget_bytes = 0);

  DomainAccountant(const DomainAccountant&) = delete;
  DomainAccountant& operator=(const DomainAccountant&) = delete;

  /// Accounts one served list.
  void Record(std::span<const ItemId> list) {
    lists_->Increment();
    slots_->Increment(list.size());
    double bits = 0.0;
    uint64_t tail = 0;
    for (const ItemId i : list) {
      const size_t ii = static_cast<size_t>(i);
      bits += novelty_bits_[ii];
      if (is_tail_[ii]) {
        ++tail;
        tail_items_->Mark(ii);
      }
      items_->Mark(ii);
    }
    novelty_bits_sum_->Add(bits);
    if (tail > 0) tail_slots_->Increment(tail);
  }

  /// −log₂ popularity of one item under the same Laplace smoothing the
  /// live counters use: log₂(total_ratings + num_items) − log₂(f_i + 1).
  /// Exposed so parity tests recompute offline from the same table.
  double NoveltyBits(ItemId i) const {
    return novelty_bits_[static_cast<size_t>(i)];
  }
  bool IsLongTail(ItemId i) const { return is_tail_[static_cast<size_t>(i)]; }
  uint64_t generation() const { return generation_; }

 private:
  DomainAccountant() = default;

  uint64_t generation_ = 0;
  std::vector<double> novelty_bits_;  ///< per item, Laplace-smoothed
  std::vector<bool> is_tail_;

  Counter* lists_ = nullptr;
  Counter* slots_ = nullptr;
  DCounter* novelty_bits_sum_ = nullptr;
  Counter* tail_slots_ = nullptr;
  Distinct* items_ = nullptr;
  Distinct* tail_items_ = nullptr;
};

}  // namespace ganc

#endif  // GANC_SERVE_SERVE_METRICS_H_
