#include "util/status.h"

#include <gtest/gtest.h>

namespace ganc {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad theta");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad theta");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad theta");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::NotImplemented("x").code(), StatusCode::kNotImplemented);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusCodeNameTest, CoversAllCodes) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInvalidArgument),
               "InvalidArgument");
  EXPECT_STREQ(StatusCodeName(StatusCode::kIOError), "IOError");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  ASSERT_TRUE(r.ok());
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r(std::string("abc"));
  EXPECT_EQ(r->size(), 3u);
}

TEST(ReturnNotOkMacroTest, PropagatesError) {
  auto fails = [] { return Status::Internal("boom"); };
  auto wrapper = [&]() -> Status {
    GANC_RETURN_NOT_OK(fails());
    return Status::OK();
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kInternal);
}

TEST(ReturnNotOkMacroTest, PassesThroughOk) {
  auto succeeds = [] { return Status::OK(); };
  auto wrapper = [&]() -> Status {
    GANC_RETURN_NOT_OK(succeeds());
    return Status::NotFound("reached end");
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace ganc
