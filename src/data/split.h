// Train/test splitting (Section IV-A of the paper).
//
// The paper splits each dataset by keeping a fixed ratio kappa of every
// user's ratings in the train set and moving the rest to test, so that an
// infrequent user with 5 ratings at kappa = 0.8 keeps 4 in train and 1 in
// test. Users below a minimum-activity threshold tau are filtered first.

#ifndef GANC_DATA_SPLIT_H_
#define GANC_DATA_SPLIT_H_

#include <cstdint>

#include "data/dataset.h"
#include "util/rng.h"
#include "util/status.h"

namespace ganc {

/// A train/test pair over the same user/item universe.
struct TrainTestSplit {
  RatingDataset train;
  RatingDataset test;
};

/// Options for PerUserRatioSplit.
struct SplitOptions {
  /// Fraction of each user's ratings kept in train (paper's kappa).
  double train_ratio = 0.8;
  /// Every user keeps at least this many ratings in train (never produces
  /// a user with an empty train profile unless they had zero ratings).
  int32_t min_train_per_user = 1;
  /// Seed for the per-user shuffles.
  uint64_t seed = 42;
};

/// Splits `dataset` per user: each user's ratings are shuffled and
/// round(kappa * n_u) of them (at least min_train_per_user) stay in train.
/// User/item id spaces are preserved in both halves.
Result<TrainTestSplit> PerUserRatioSplit(const RatingDataset& dataset,
                                         const SplitOptions& options);

/// Removes users with fewer than `min_ratings` observations (paper's tau
/// filter, tau = 5 for MT-200K) and items left with no observations.
/// Remaining users/items are re-indexed densely.
Result<RatingDataset> FilterInfrequentUsers(const RatingDataset& dataset,
                                            int32_t min_ratings);

/// Netflix-probe-style split: a caller-provided predicate marks test
/// observations; train keeps the rest. Users or items that end up absent
/// from train have their test ratings dropped, mirroring the paper's
/// "remove users in the probe set who do not appear in train" rule.
Result<TrainTestSplit> HoldoutSplit(const RatingDataset& dataset,
                                    const std::vector<bool>& is_test);

}  // namespace ganc

#endif  // GANC_DATA_SPLIT_H_
