#include "recommender/user_knn.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "util/rng.h"

namespace ganc {

UserKnnRecommender::UserKnnRecommender(UserKnnConfig config)
    : config_(config) {}

Status UserKnnRecommender::Fit(const RatingDataset& train) {
  if (config_.num_neighbors <= 0) {
    return Status::InvalidArgument("num_neighbors must be positive");
  }
  num_items_ = train.num_items();
  train_ = &train;
  const int32_t num_users = train.num_users();

  // Per-user means and centered norms.
  user_mean_.assign(static_cast<size_t>(num_users), 0.0);
  std::vector<double> norms(static_cast<size_t>(num_users), 0.0);
  for (UserId u = 0; u < num_users; ++u) {
    const auto& row = train.ItemsOf(u);
    if (row.empty()) continue;
    double acc = 0.0;
    for (const ItemRating& ir : row) acc += ir.value;
    user_mean_[static_cast<size_t>(u)] =
        acc / static_cast<double>(row.size());
    for (const ItemRating& ir : row) {
      const double c = ir.value - user_mean_[static_cast<size_t>(u)];
      norms[static_cast<size_t>(u)] += c * c;
    }
    norms[static_cast<size_t>(u)] = std::sqrt(norms[static_cast<size_t>(u)]);
  }

  // Item-wise accumulation of centered co-ratings between user pairs.
  Rng rng(config_.seed);
  std::vector<std::unordered_map<UserId, double>> dots(
      static_cast<size_t>(num_users));
  for (ItemId i = 0; i < num_items_; ++i) {
    std::vector<UserRating> col = train.UsersOf(i);
    if (static_cast<int32_t>(col.size()) > config_.max_audience) {
      rng.Shuffle(&col);
      col.resize(static_cast<size_t>(config_.max_audience));
    }
    for (size_t a = 0; a < col.size(); ++a) {
      const double ca =
          col[a].value - user_mean_[static_cast<size_t>(col[a].user)];
      for (size_t b = a + 1; b < col.size(); ++b) {
        const double cb =
            col[b].value - user_mean_[static_cast<size_t>(col[b].user)];
        const UserId lo = std::min(col[a].user, col[b].user);
        const UserId hi = std::max(col[a].user, col[b].user);
        dots[static_cast<size_t>(lo)][hi] += ca * cb;
      }
    }
  }

  std::vector<std::vector<Neighbor>> all(static_cast<size_t>(num_users));
  for (UserId lo = 0; lo < num_users; ++lo) {
    for (const auto& [hi, dot] : dots[static_cast<size_t>(lo)]) {
      const double denom =
          norms[static_cast<size_t>(lo)] * norms[static_cast<size_t>(hi)];
      if (denom <= 0.0) continue;
      const float sim = static_cast<float>(dot / denom);
      if (sim <= 0.0f) continue;  // keep positively correlated users only
      all[static_cast<size_t>(lo)].push_back({hi, sim});
      all[static_cast<size_t>(hi)].push_back({lo, sim});
    }
  }
  neighbors_.assign(static_cast<size_t>(num_users), {});
  const size_t k = static_cast<size_t>(config_.num_neighbors);
  for (UserId u = 0; u < num_users; ++u) {
    auto& cand = all[static_cast<size_t>(u)];
    std::sort(cand.begin(), cand.end(),
              [](const Neighbor& a, const Neighbor& b) {
                if (a.sim != b.sim) return a.sim > b.sim;
                return a.user < b.user;
              });
    if (cand.size() > k) cand.resize(k);
    neighbors_[static_cast<size_t>(u)] = std::move(cand);
  }
  return Status::OK();
}

void UserKnnRecommender::ScoreInto(UserId u, std::span<double> out) const {
  std::fill(out.begin(), out.end(), 0.0);
  for (const Neighbor& nb : neighbors_[static_cast<size_t>(u)]) {
    const double mean = user_mean_[static_cast<size_t>(nb.user)];
    for (const ItemRating& ir : train_->ItemsOf(nb.user)) {
      out[static_cast<size_t>(ir.item)] +=
          static_cast<double>(nb.sim) * (static_cast<double>(ir.value) - mean);
    }
  }
}

}  // namespace ganc
