#include "serve/protocol.h"

#include <algorithm>
#include <charconv>
#include <limits>

namespace ganc {

namespace {

// Whitespace-splits `line` into tokens (multiple separators collapse).
std::vector<std::string_view> Tokenize(std::string_view line) {
  std::vector<std::string_view> tokens;
  size_t pos = 0;
  while (pos < line.size()) {
    while (pos < line.size() && (line[pos] == ' ' || line[pos] == '\t' ||
                                 line[pos] == '\r')) {
      ++pos;
    }
    size_t end = pos;
    while (end < line.size() && line[end] != ' ' && line[end] != '\t' &&
           line[end] != '\r') {
      ++end;
    }
    if (end > pos) tokens.push_back(line.substr(pos, end - pos));
    pos = end;
  }
  return tokens;
}

// Parses a decimal integer that must fit in int32 — wire ids and list
// lengths are 32-bit, and silent narrowing would alias one user's
// request onto another's id.
Result<int32_t> ParseInt(std::string_view key, std::string_view value) {
  int64_t out = 0;
  const auto [ptr, ec] =
      std::from_chars(value.data(), value.data() + value.size(), out);
  if (ec != std::errc{} || ptr != value.data() + value.size()) {
    return Status::InvalidArgument("bad integer for '" + std::string(key) +
                                   "': '" + std::string(value) + "'");
  }
  if (out < std::numeric_limits<int32_t>::min() ||
      out > std::numeric_limits<int32_t>::max()) {
    return Status::InvalidArgument("integer out of range for '" +
                                   std::string(key) + "': '" +
                                   std::string(value) + "'");
  }
  return static_cast<int32_t>(out);
}

Result<std::vector<ItemId>> ParseIdList(std::string_view key,
                                        std::string_view csv) {
  // The grammar is <id> *("," <id>): no empty list, no trailing comma
  // (empty mid-list segments fail in ParseInt below).
  if (csv.empty() || csv.back() == ',') {
    return Status::InvalidArgument("bad id list for '" + std::string(key) +
                                   "': '" + std::string(csv) + "'");
  }
  std::vector<ItemId> ids;
  size_t pos = 0;
  while (pos < csv.size()) {
    size_t comma = csv.find(',', pos);
    if (comma == std::string_view::npos) comma = csv.size();
    const Result<int32_t> id = ParseInt(key, csv.substr(pos, comma - pos));
    if (!id.ok()) return id.status();
    ids.push_back(*id);
    pos = comma + 1;
  }
  return ids;
}

}  // namespace

Result<ServeRequest> ParseServeRequest(std::string_view line) {
  const std::vector<std::string_view> tokens = Tokenize(line);
  if (tokens.empty()) {
    return Status::InvalidArgument("empty request line");
  }
  ServeRequest req;
  const std::string_view verb = tokens[0];
  if (verb == "TOPN") {
    req.command = ServeCommand::kTopN;
  } else if (verb == "TOPNV") {
    req.command = ServeCommand::kTopNV;
  } else if (verb == "CONSUME") {
    req.command = ServeCommand::kConsume;
  } else if (verb == "PUBLISH") {
    req.command = ServeCommand::kPublish;
  } else if (verb == "VERSION") {
    req.command = ServeCommand::kVersion;
  } else if (verb == "SHARDS") {
    req.command = ServeCommand::kShards;
  } else if (verb == "STATS") {
    req.command = ServeCommand::kStats;
  } else if (verb == "METRICS") {
    req.command = ServeCommand::kMetrics;
  } else if (verb == "METRICSNAP") {
    req.command = ServeCommand::kMetricSnap;
  } else if (verb == "TRACE") {
    req.command = ServeCommand::kTrace;
  } else if (verb == "PING") {
    req.command = ServeCommand::kPing;
  } else if (verb == "QUIT") {
    req.command = ServeCommand::kQuit;
  } else {
    return Status::InvalidArgument("unknown command '" + std::string(verb) +
                                   "'");
  }

  const bool is_topn =
      req.command == ServeCommand::kTopN || req.command == ServeCommand::kTopNV;
  bool has_user = false, has_items = false, has_path = false;
  for (size_t t = 1; t < tokens.size(); ++t) {
    const std::string_view token = tokens[t];
    const size_t eq = token.find('=');
    if (eq == std::string_view::npos) {
      return Status::InvalidArgument("expected key=value, got '" +
                                     std::string(token) + "'");
    }
    const std::string_view key = token.substr(0, eq);
    const std::string_view value = token.substr(eq + 1);
    if (key == "user") {
      const Result<int32_t> v = ParseInt(key, value);
      if (!v.ok()) return v.status();
      req.user = *v;
      has_user = true;
    } else if (key == "n") {
      const Result<int32_t> v = ParseInt(key, value);
      if (!v.ok()) return v.status();
      req.n = *v;
    } else if (key == "session") {
      if (value.empty()) {
        return Status::InvalidArgument("session token must be non-empty");
      }
      req.session = std::string(value);
    } else if (key == "path" && req.command == ServeCommand::kPublish) {
      if (value.empty()) {
        return Status::InvalidArgument("publish path must be non-empty");
      }
      req.path = std::string(value);
      has_path = true;
    } else if ((key == "exclude" && is_topn) ||
               (key == "items" && req.command == ServeCommand::kConsume)) {
      Result<std::vector<ItemId>> ids = ParseIdList(key, value);
      if (!ids.ok()) return ids.status();
      req.items = std::move(ids).value();
      has_items = true;
    } else {
      return Status::InvalidArgument("unknown key '" + std::string(key) + "'");
    }
  }

  switch (req.command) {
    case ServeCommand::kTopN:
    case ServeCommand::kTopNV:
      if (!has_user) {
        return Status::InvalidArgument(std::string(verb) +
                                       " requires user=<id>");
      }
      break;
    case ServeCommand::kConsume:
      if (!has_user || req.session.empty() || !has_items) {
        return Status::InvalidArgument(
            "CONSUME requires session=<token> user=<id> items=<list>");
      }
      break;
    case ServeCommand::kPublish:
      if (!has_path) {
        return Status::InvalidArgument("PUBLISH requires path=<artifact>");
      }
      break;
    case ServeCommand::kTrace:
      // TRACE takes one optional n=<count>; anything else is a typo'd
      // request, not a silently-ignored key.
      if (has_user || has_items || has_path || !req.session.empty()) {
        return Status::InvalidArgument("TRACE takes only n=<count>");
      }
      if (req.n < 0) {
        return Status::InvalidArgument("TRACE n must be non-negative");
      }
      break;
    case ServeCommand::kVersion:
    case ServeCommand::kShards:
    case ServeCommand::kStats:
    case ServeCommand::kMetrics:
    case ServeCommand::kMetricSnap:
    case ServeCommand::kPing:
    case ServeCommand::kQuit:
      if (tokens.size() > 1) {
        return Status::InvalidArgument("command takes no arguments");
      }
      break;
  }
  return req;
}

std::string FormatTopNResponse(UserId user, int n,
                               std::span<const ItemId> items) {
  std::string out = "OK user=" + std::to_string(user) +
                    " n=" + std::to_string(n) + " items=";
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out.push_back(',');
    out += std::to_string(items[i]);
  }
  return out;
}

std::string FormatVersionedTopNResponse(UserId user, int n, uint64_t version,
                                        std::span<const ItemId> items) {
  std::string out = "OK user=" + std::to_string(user) +
                    " n=" + std::to_string(n) +
                    " version=" + std::to_string(version) + " items=";
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out.push_back(',');
    out += std::to_string(items[i]);
  }
  return out;
}

std::string FormatOk(std::string_view body) {
  std::string out = "OK";
  if (!body.empty()) {
    out.push_back(' ');
    out += std::string(body);
  }
  return out;
}

std::string FormatFramedHeader(std::string_view what, size_t lines) {
  std::string out = "OK ";
  out += std::string(what);
  out += " lines=" + std::to_string(lines);
  return out;
}

std::string FormatError(std::string_view message) {
  std::string out = "ERR ";
  out += std::string(message);
  std::replace(out.begin(), out.end(), '\n', ' ');
  return out;
}

}  // namespace ganc
