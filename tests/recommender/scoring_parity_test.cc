// Parity suite for the batched zero-allocation scoring path: for every
// recommender the ScoreInto / RecommendTopNInto / parallel
// RecommendAllUsers results must be bit-identical to the legacy
// allocating, sequential path — including tie-breaking, which the shared
// SelectTopK kernels pin to (higher score, then lower item id).

#include "recommender/recommender.h"

#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/accuracy_scorer.h"
#include "core/ganc.h"
#include "core/pipeline.h"
#include "data/synthetic.h"
#include "recommender/bpr.h"
#include "recommender/cofirank.h"
#include "recommender/item_knn.h"
#include "recommender/pop.h"
#include "recommender/psvd.h"
#include "recommender/random_rec.h"
#include "recommender/random_walk.h"
#include "recommender/rsvd.h"
#include "recommender/scoring_context.h"
#include "recommender/user_knn.h"
#include "util/thread_pool.h"

namespace ganc {
namespace {

RatingDataset MakeData() {
  SyntheticSpec spec = TinySpec();
  spec.num_users = 120;
  spec.num_items = 220;
  spec.mean_activity = 22.0;
  auto ds = GenerateSynthetic(spec);
  EXPECT_TRUE(ds.ok());
  return std::move(ds).value();
}

/// All eleven ScoreInto overrides ride on these nine fitted base models
/// (the two AccuracyScorer adapters are exercised separately below).
std::vector<std::unique_ptr<Recommender>> AllModels() {
  std::vector<std::unique_ptr<Recommender>> models;
  models.push_back(std::make_unique<PopRecommender>());
  models.push_back(std::make_unique<RandomRecommender>(7));
  models.push_back(std::make_unique<ItemKnnRecommender>(
      ItemKnnConfig{.num_neighbors = 10}));
  models.push_back(std::make_unique<UserKnnRecommender>(
      UserKnnConfig{.num_neighbors = 10}));
  models.push_back(
      std::make_unique<PsvdRecommender>(PsvdConfig{.num_factors = 8}));
  models.push_back(std::make_unique<RsvdRecommender>(
      RsvdConfig{.num_factors = 8, .num_epochs = 4}));
  models.push_back(std::make_unique<BprRecommender>(
      BprConfig{.num_factors = 8, .num_epochs = 4}));
  models.push_back(std::make_unique<CofiRecommender>(
      CofiConfig{.num_factors = 8, .num_epochs = 4}));
  models.push_back(std::make_unique<RandomWalkRecommender>());
  return models;
}

/// Scores all items identically: pure tie-break stress for top-N.
class ConstantRecommender : public Recommender {
 public:
  Status Fit(const RatingDataset& train) override {
    num_items_ = train.num_items();
    return Status::OK();
  }
  int32_t num_items() const override { return num_items_; }
  void ScoreInto(UserId /*u*/, std::span<double> out) const override {
    std::fill(out.begin(), out.end(), 1.0);
  }
  std::string name() const override { return "Const"; }

 private:
  int32_t num_items_ = 0;
};

TEST(ScoringParityTest, ScoreIntoMatchesScoreAllBitwise) {
  const RatingDataset train = MakeData();
  for (auto& model : AllModels()) {
    ASSERT_TRUE(model->Fit(train).ok()) << model->name();
    ASSERT_EQ(model->num_items(), train.num_items()) << model->name();
    ScoringContext ctx;
    for (UserId u : {0, 1, 57, train.num_users() - 1}) {
      const std::vector<double> legacy = model->ScoreAll(u);
      const std::span<double> batched =
          ctx.Scores(static_cast<size_t>(model->num_items()));
      model->ScoreInto(u, batched);
      ASSERT_EQ(legacy.size(), batched.size()) << model->name();
      for (size_t i = 0; i < legacy.size(); ++i) {
        ASSERT_EQ(legacy[i], batched[i])
            << model->name() << " user " << u << " item " << i;
      }
    }
  }
}

/// Batch-vs-single parity: ScoreBatchInto must reproduce per-user
/// ScoreInto for every model (the factor models go through the blocked
/// engine kernel, everything else through the default loop), across batch
/// sizes that exercise full blocks, sub-block batches, and ragged final
/// blocks. Blocked summation may legally reorder adds, so scores get a
/// 1e-9 tolerance; top-N lists (including ties) must be identical.
TEST(ScoringParityTest, ScoreBatchIntoMatchesSingleUserScoring) {
  const RatingDataset train = MakeData();
  const size_t ni = static_cast<size_t>(train.num_items());
  for (auto& model : AllModels()) {
    ASSERT_TRUE(model->Fit(train).ok()) << model->name();
    ScoringContext ctx;
    std::vector<double> single(ni);
    std::vector<ItemId> top_single, top_batch;
    for (const size_t batch_size : {1u, 7u, 8u, 64u}) {
      // Starting at user 97 of 120 makes the 64-user batch wrap into a
      // ragged final engine block no matter the block size.
      for (const UserId first : {0, 97}) {
        std::vector<UserId> users;
        for (size_t b = 0; b < batch_size; ++b) {
          users.push_back(
              static_cast<UserId>((static_cast<size_t>(first) + b) %
                                  static_cast<size_t>(train.num_users())));
        }
        const std::span<double> batch = ctx.BatchScores(batch_size * ni);
        model->ScoreBatchInto(users, batch);
        for (size_t b = 0; b < batch_size; ++b) {
          const UserId u = users[b];
          model->ScoreInto(u, single);
          const std::span<const double> row = batch.subspan(b * ni, ni);
          for (size_t i = 0; i < ni; ++i) {
            ASSERT_NEAR(single[i], row[i], 1e-9)
                << model->name() << " batch " << batch_size << " user " << u
                << " item " << i;
          }
          const std::vector<ItemId> candidates = train.UnratedItems(u);
          std::vector<ScoredItem>& top = ctx.TopK();
          SelectTopKFromScoresInto(single, candidates, 10, &top);
          top_single.clear();
          for (const ScoredItem& s : top) top_single.push_back(s.item);
          SelectTopKFromScoresInto(row, candidates, 10, &top);
          top_batch.clear();
          for (const ScoredItem& s : top) top_batch.push_back(s.item);
          ASSERT_EQ(top_single, top_batch)
              << model->name() << " batch " << batch_size << " user " << u;
        }
      }
    }
  }
}

/// The adapters' batch path must match their single-user path, including
/// the indicator scorer's dense top-N selection.
TEST(ScoringParityTest, AccuracyScorerBatchMatchesSingle) {
  const RatingDataset train = MakeData();
  const size_t ni = static_cast<size_t>(train.num_items());
  PsvdRecommender psvd({.num_factors = 8});
  ASSERT_TRUE(psvd.Fit(train).ok());
  const NormalizedAccuracyScorer normalized(&psvd);
  const TopNIndicatorScorer indicator(&psvd, &train, 5);
  ScoringContext ctx;
  std::vector<double> single(ni);
  for (const AccuracyScorer* scorer :
       {static_cast<const AccuracyScorer*>(&normalized),
        static_cast<const AccuracyScorer*>(&indicator)}) {
    for (const size_t batch_size : {1u, 7u, 8u, 64u}) {
      std::vector<UserId> users;
      for (size_t b = 0; b < batch_size; ++b) {
        users.push_back(static_cast<UserId>(
            (97 + b) % static_cast<size_t>(train.num_users())));
      }
      const std::span<double> batch = ctx.BatchScores(batch_size * ni);
      scorer->ScoreBatchInto(users, batch);
      for (size_t b = 0; b < batch_size; ++b) {
        scorer->ScoreInto(users[b], single);
        for (size_t i = 0; i < ni; ++i) {
          ASSERT_NEAR(single[i], batch[b * ni + i], 1e-9)
              << scorer->name() << " batch " << batch_size << " user "
              << users[b] << " item " << i;
        }
      }
    }
  }
}

/// Tie-breaking through the new partial-selection top-k kernel: the
/// dense-row path (mask-skipped scan) and the candidate-list path must
/// both prefer lower item ids on equal scores, in every regime.
TEST(ScoringParityTest, TopKKernelTieBreakingAcrossRegimes) {
  // 13 distinct scores over 300 items: heavy ties everywhere.
  const size_t n = 300;
  std::vector<double> scores(n);
  for (size_t i = 0; i < n; ++i) {
    scores[i] = static_cast<double>((i * 31) % 13);
  }
  std::vector<ItemId> candidates;  // skip every 7th item
  std::vector<uint8_t> skipped(n, 0);
  for (size_t i = 0; i < n; ++i) {
    if (i % 7 == 0) {
      skipped[i] = 1;
    } else {
      candidates.push_back(static_cast<ItemId>(i));
    }
  }
  std::vector<ScoredItem> from_candidates, from_dense;
  // k spans the scan regime (small k) and the nth_element regime (k
  // dense in n), plus k > candidate count.
  for (const size_t k : {1u, 5u, 10u, 120u, 250u, 400u}) {
    SelectTopKFromScoresInto(scores, candidates, k, &from_candidates);
    SelectTopKDenseInto(
        scores, k, [&](int32_t item) { return skipped[item] != 0; },
        &from_dense);
    ASSERT_EQ(from_candidates.size(), from_dense.size()) << "k=" << k;
    for (size_t i = 0; i < from_candidates.size(); ++i) {
      ASSERT_EQ(from_candidates[i].item, from_dense[i].item)
          << "k=" << k << " rank " << i;
      ASSERT_EQ(from_candidates[i].score, from_dense[i].score)
          << "k=" << k << " rank " << i;
    }
    // Within every tied score group the kept ids must be the smallest
    // candidates, in ascending order.
    for (size_t i = 0; i + 1 < from_dense.size(); ++i) {
      ASSERT_TRUE(ScoredBetter(from_dense[i], from_dense[i + 1]))
          << "k=" << k << " rank " << i;
    }
  }
}

TEST(ScoringParityTest, RecommendTopNIntoMatchesAllocating) {
  const RatingDataset train = MakeData();
  for (auto& model : AllModels()) {
    ASSERT_TRUE(model->Fit(train).ok()) << model->name();
    ScoringContext ctx;
    std::vector<ItemId> batched;
    for (UserId u : {0, 33, train.num_users() - 1}) {
      const std::vector<ItemId> candidates = train.UnratedItems(u);
      const std::vector<ItemId> legacy =
          model->RecommendTopN(u, candidates, 10);
      model->RecommendTopNInto(u, candidates, 10, ctx, batched);
      EXPECT_EQ(legacy, batched) << model->name() << " user " << u;
    }
  }
}

TEST(ScoringParityTest, ParallelRecommendAllUsersIsByteIdentical) {
  const RatingDataset train = MakeData();
  ThreadPool pool(4);
  for (auto& model : AllModels()) {
    ASSERT_TRUE(model->Fit(train).ok()) << model->name();
    const auto sequential = RecommendAllUsers(*model, train, 7);
    const auto parallel = RecommendAllUsers(*model, train, 7, &pool);
    EXPECT_EQ(sequential, parallel) << model->name();
  }
}

TEST(ScoringParityTest, TieBreakingPrefersLowerItemIdInBothPaths) {
  const RatingDataset train = MakeData();
  ConstantRecommender constant;
  ASSERT_TRUE(constant.Fit(train).ok());
  ThreadPool pool(4);
  const auto sequential = RecommendAllUsers(constant, train, 5);
  const auto parallel = RecommendAllUsers(constant, train, 5, &pool);
  EXPECT_EQ(sequential, parallel);
  // With all scores tied the top-N must be the user's 5 smallest unrated
  // item ids, in ascending order.
  for (UserId u = 0; u < train.num_users(); ++u) {
    const std::vector<ItemId> unrated = train.UnratedItems(u);
    const std::vector<ItemId> expected(unrated.begin(), unrated.begin() + 5);
    EXPECT_EQ(sequential[static_cast<size_t>(u)], expected) << "user " << u;
  }
}

TEST(ScoringParityTest, AccuracyScorerAdaptersMatchLegacyPath) {
  const RatingDataset train = MakeData();
  PsvdRecommender psvd({.num_factors = 8});
  ASSERT_TRUE(psvd.Fit(train).ok());
  const NormalizedAccuracyScorer normalized(&psvd);
  const TopNIndicatorScorer indicator(&psvd, &train, 5);
  ScoringContext ctx;
  for (const AccuracyScorer* scorer :
       {static_cast<const AccuracyScorer*>(&normalized),
        static_cast<const AccuracyScorer*>(&indicator)}) {
    ASSERT_EQ(scorer->num_items(), train.num_items());
    for (UserId u : {0, 19, train.num_users() - 1}) {
      const std::vector<double> legacy = scorer->ScoreAll(u);
      const std::span<double> batched =
          ctx.Scores(static_cast<size_t>(scorer->num_items()));
      scorer->ScoreInto(u, batched);
      for (size_t i = 0; i < legacy.size(); ++i) {
        ASSERT_EQ(legacy[i], batched[i])
            << scorer->name() << " user " << u << " item " << i;
      }
    }
  }
}

TEST(ScoringParityTest, GancParallelMatchesSequentialForAllCoverages) {
  const RatingDataset train = MakeData();
  PsvdRecommender psvd({.num_factors = 8});
  ASSERT_TRUE(psvd.Fit(train).ok());
  const NormalizedAccuracyScorer scorer(&psvd);
  std::vector<double> theta(static_cast<size_t>(train.num_users()));
  for (size_t i = 0; i < theta.size(); ++i) {
    theta[i] = static_cast<double>(i % 10) / 10.0;
  }
  ThreadPool pool(4);
  for (CoverageKind kind :
       {CoverageKind::kRand, CoverageKind::kStat, CoverageKind::kDyn}) {
    const Ganc ganc(&scorer, theta, kind);
    GancConfig serial_cfg;
    serial_cfg.top_n = 5;
    serial_cfg.sample_size = 30;  // exercises OSLG's parallel phase for Dyn
    GancConfig pool_cfg = serial_cfg;
    pool_cfg.pool = &pool;
    const auto serial = ganc.RecommendAll(train, serial_cfg);
    const auto parallel = ganc.RecommendAll(train, pool_cfg);
    ASSERT_TRUE(serial.ok() && parallel.ok());
    EXPECT_EQ(*serial, *parallel) << CoverageKindName(kind);
  }
}

TEST(ScoringParityTest, PipelineOwnedPoolMatchesSerial) {
  const RatingDataset train = MakeData();
  PipelineConfig serial_cfg;
  serial_cfg.top_n = 5;
  serial_cfg.sample_size = 25;
  auto serial = GancPipeline::Create(
      std::make_unique<PsvdRecommender>(PsvdConfig{.num_factors = 8}), train,
      serial_cfg);
  PipelineConfig pooled_cfg = serial_cfg;
  pooled_cfg.num_threads = 4;
  auto pooled = GancPipeline::Create(
      std::make_unique<PsvdRecommender>(PsvdConfig{.num_factors = 8}), train,
      pooled_cfg);
  ASSERT_TRUE(serial.ok() && pooled.ok());
  const auto a = (*serial)->RecommendAll();
  const auto b = (*pooled)->RecommendAll();
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(*a, *b);
}

TEST(ScoringContextTest, BuffersAreSlotIndependentAndCapacityStable) {
  ScoringContext ctx;
  const std::span<double> a = ctx.Buffer(0, 64);
  const std::span<double> b = ctx.Buffer(1, 64);
  ASSERT_NE(a.data(), b.data());
  a[0] = 1.0;
  b[0] = 2.0;
  EXPECT_EQ(ctx.Buffer(0, 64)[0], 1.0);
  EXPECT_EQ(ctx.Buffer(1, 64)[0], 2.0);
  // Shrinking then regrowing within capacity must not move the storage.
  const double* data = ctx.Buffer(0, 64).data();
  ctx.Buffer(0, 8);
  EXPECT_EQ(ctx.Buffer(0, 64).data(), data);
  EXPECT_EQ(ctx.Buffer(2, 5).size(), 5u);
}

}  // namespace
}  // namespace ganc
