#include "recommender/pop.h"

#include <algorithm>

#include "util/stats.h"

namespace ganc {

Status PopRecommender::Fit(const RatingDataset& train) {
  popularity_ = train.PopularityVector();
  MinMaxNormalize(&popularity_);
  return Status::OK();
}

void PopRecommender::ScoreInto(UserId /*u*/, std::span<double> out) const {
  std::copy(popularity_.begin(), popularity_.end(), out.begin());
}

}  // namespace ganc
