// Ablation A2 (DESIGN.md): coverage-recommender gain schedules. Dyn's
// diminishing-returns gain vs Stat's constant inverse-popularity gain vs
// Rand's uniform gain, with everything else held fixed — the mechanism
// behind the paper's Figure 6 observation that Stat lifts LTAccuracy but
// not Coverage.

#include <cstdio>
#include <set>

#include "bench/common.h"
#include "data/longtail.h"
#include "eval/metrics.h"
#include "util/csv.h"
#include "util/table.h"

using namespace ganc;
using namespace ganc::bench;

int main() {
  Banner("Ablation A2", "coverage gain schedules: Dyn vs Stat vs Rand");

  const BenchData data = MakeData(Corpus::kMl1m);
  const RatingDataset& train = data.train;
  const PsvdRecommender psvd = FitPsvd(train, FullScale() ? 100 : 60);
  const NormalizedAccuracyScorer scorer(&psvd);
  const auto theta = ThetaG(train);
  const MetricsConfig mcfg{.top_n = 5};

  TablePrinter table({"CRec", "F@5", "S@5", "L@5", "C@5", "G@5",
                      "distinct items in tail recs"});
  for (CoverageKind kind :
       {CoverageKind::kDyn, CoverageKind::kStat, CoverageKind::kRand}) {
    GancConfig cfg;
    cfg.top_n = 5;
    cfg.sample_size = 500;
    const auto topn = RunGanc(scorer, theta, kind, train, cfg);
    const auto m = EvaluateTopN(train, data.test, topn, mcfg);
    // How concentrated are the promoted long-tail items? Stat keeps
    // hammering the same few unpopular items; Dyn spreads out.
    const LongTailInfo tail = ComputeLongTail(train);
    std::set<ItemId> tail_distinct;
    for (const auto& pu : topn) {
      for (ItemId i : pu) {
        if (tail.Contains(i)) tail_distinct.insert(i);
      }
    }
    std::vector<std::string> row = {CoverageKindName(kind)};
    for (const auto& cell : MetricsRow(m)) row.push_back(cell);
    row.push_back(std::to_string(tail_distinct.size()));
    table.AddRow(std::move(row));
  }
  table.Print();
  std::printf(
      "\nexpected: Dyn and Rand achieve far higher Coverage@5 than Stat;\n"
      "Stat's constant gain recommends a small set of unpopular items to\n"
      "everyone (high LTAccuracy, few distinct tail items), while Dyn's\n"
      "diminishing returns force breadth.\n");
  return 0;
}
