#include "data/dataset.h"

#include <algorithm>
#include <bit>
#include <cassert>

#include "util/binary_io.h"
#include "util/metrics.h"
#include "util/mmap_region.h"
#include "util/serialize.h"

namespace ganc {

namespace {

// Dataset cache section ids (kind kDatasetCache; see docs/FORMATS.md).
// v2 wrote dims/offsets/items/values/order; v3 replaces the split
// items+values arrays with one contiguous rows section (borrowable as
// ItemRating spans) and adds the stored fingerprint.
constexpr uint32_t kCacheDimsSection = 1;
constexpr uint32_t kCacheOffsetsSection = 2;
constexpr uint32_t kCacheItemsSection = 3;    // v2 only
constexpr uint32_t kCacheValuesSection = 4;   // v2 only
constexpr uint32_t kCacheOrderSection = 5;
constexpr uint32_t kCacheRowsSection = 6;     // v3
constexpr uint32_t kCacheFingerprintSection = 7;  // v3

// Reads a [count u64][ItemRating...] vector from a section payload,
// copying into owned storage (the stream-load path).
Status ReadRowsVec(PayloadReader* pr, std::vector<ItemRating>* out) {
  if constexpr (kGancHostIsLittleEndian) {
    std::span<const ItemRating> rows;
    GANC_RETURN_NOT_OK(pr->BorrowVec(&rows));
    out->assign(rows.begin(), rows.end());
    return Status::OK();
  }
  uint64_t count = 0;
  GANC_RETURN_NOT_OK(pr->ReadU64(&count));
  if (count > pr->remaining() / sizeof(ItemRating)) {
    return Status::InvalidArgument("vector length exceeds section payload");
  }
  out->resize(count);
  for (uint64_t k = 0; k < count; ++k) {
    GANC_RETURN_NOT_OK(pr->ReadI32(&(*out)[k].item));
    GANC_RETURN_NOT_OK(pr->ReadF32(&(*out)[k].value));
  }
  return Status::OK();
}

Status ValidateOffsets(std::span<const uint64_t> offsets, int32_t num_users,
                       int32_t num_items, uint64_t nnz) {
  if (offsets.size() != static_cast<size_t>(num_users) + 1) {
    return Status::InvalidArgument("dataset cache section sizes disagree");
  }
  if (offsets.front() != 0 || offsets.back() != nnz) {
    return Status::InvalidArgument("dataset cache row offsets malformed");
  }
  for (size_t u = 0; u + 1 < offsets.size(); ++u) {
    if (offsets[u] > offsets[u + 1]) {
      return Status::InvalidArgument("dataset cache row offsets not sorted");
    }
    if (offsets[u + 1] - offsets[u] > static_cast<uint64_t>(num_items)) {
      return Status::InvalidArgument(
          "dataset cache row longer than the item universe");
    }
  }
  return Status::OK();
}

}  // namespace

struct RatingDataset::MappedState {
  std::shared_ptr<const MappedArtifact> artifact;
  std::once_flag once;
  Status status;
  /// Rows of users < this watermark passed ValidateRowRange. Sweeps
  /// advance it in user order so one full pass validates everything;
  /// later sweeps skip re-validation.
  std::atomic<UserId> rows_validated_until{0};
};

RatingDataset::RatingDataset() = default;
RatingDataset::~RatingDataset() = default;
RatingDataset::RatingDataset(RatingDataset&&) noexcept = default;
RatingDataset& RatingDataset::operator=(RatingDataset&&) noexcept = default;

void RatingDataset::BindOwnedViews() {
  user_offsets_view_ = user_offsets_;
  rows_view_ = user_rows_;
  order_view_ = {};
}

double RatingDataset::Density() const {
  if (num_users_ == 0 || num_items_ == 0) return 0.0;
  return static_cast<double>(nnz_) /
         (static_cast<double>(num_users_) * static_cast<double>(num_items_));
}

std::vector<double> RatingDataset::PopularityVector() const {
  // Counting sweep over the CSR rows: exact integer counts, identical
  // to the CSC column lengths, and mapped-safe under the train budget.
  std::vector<double> pop(static_cast<size_t>(num_items_), 0.0);
  const Status swept =
      SweepRowWindows(train_budget_bytes_, 1, [&](const RowWindow& w) {
        for (UserId u = w.begin; u < w.end; ++u) {
          for (const ItemRating& ir : ItemsOf(u)) {
            pop[static_cast<size_t>(ir.item)] += 1.0;
          }
        }
        return Status::OK();
      });
  (void)swept;  // row validation errors surface via EnsureResident/Fit
  return pop;
}

bool RatingDataset::HasRating(UserId u, ItemId i) const {
  const auto row = ItemsOf(u);
  auto it = std::lower_bound(
      row.begin(), row.end(), i,
      [](const ItemRating& ir, ItemId target) { return ir.item < target; });
  return it != row.end() && it->item == i;
}

Result<float> RatingDataset::GetRating(UserId u, ItemId i) const {
  const auto row = ItemsOf(u);
  auto it = std::lower_bound(
      row.begin(), row.end(), i,
      [](const ItemRating& ir, ItemId target) { return ir.item < target; });
  if (it == row.end() || it->item != i) {
    return Status::NotFound("rating (" + std::to_string(u) + ", " +
                            std::to_string(i) + ") not observed");
  }
  return it->value;
}

double RatingDataset::GlobalMeanRating() const {
  // Budgeted row sweep in CSR order. One running accumulator crosses
  // window boundaries, so the summation order — and therefore the fp64
  // result — is the same for every budget and for eager datasets with a
  // user-major observation order (the cache writers' canonical order).
  if (nnz_ == 0) return 0.0;
  double acc = 0.0;
  const Status swept =
      SweepRowWindows(train_budget_bytes_, 1, [&](const RowWindow& w) {
        for (UserId u = w.begin; u < w.end; ++u) {
          for (const ItemRating& ir : ItemsOf(u)) {
            acc += ir.value;
          }
        }
        return Status::OK();
      });
  (void)swept;
  return acc / static_cast<double>(nnz_);
}

std::vector<ItemId> RatingDataset::UnratedItems(UserId u) const {
  std::vector<ItemId> out;
  UnratedItemsInto(u, &out);
  return out;
}

void RatingDataset::UnratedItemsInto(UserId u,
                                     std::vector<ItemId>* out) const {
  // The user row is sorted by item id, so the unrated set is the gaps
  // between consecutive rated items: fill each run of ids directly
  // instead of testing every catalog item against the row cursor.
  const auto row = ItemsOf(u);
  out->resize(static_cast<size_t>(num_items_) - row.size());
  ItemId* dst = out->data();
  ItemId next = 0;
  for (const ItemRating& ir : row) {
    for (ItemId i = next; i < ir.item; ++i) *dst++ = i;
    next = ir.item + 1;
  }
  for (ItemId i = next; i < num_items_; ++i) *dst++ = i;
}

uint64_t RatingDataset::Fingerprint() const {
  if (fingerprint_ != 0) return fingerprint_;
  Fnv1aHasher hasher;
  const auto hash_u32 = [&](uint32_t v) {
    uint8_t b[4];
    for (int i = 0; i < 4; ++i) b[i] = static_cast<uint8_t>(v >> (8 * i));
    hasher.Update(b, sizeof(b));
  };
  hash_u32(static_cast<uint32_t>(num_users_));
  hash_u32(static_cast<uint32_t>(num_items_));
  for (UserId u = 0; u < num_users_; ++u) {
    const auto row = ItemsOf(u);
    hash_u32(static_cast<uint32_t>(row.size()));
    for (const ItemRating& ir : row) {
      hash_u32(static_cast<uint32_t>(ir.item));
      hash_u32(std::bit_cast<uint32_t>(ir.value));
    }
  }
  return hasher.digest();
}

Status RatingDataset::ValidateRowRange(UserId begin, UserId end) const {
  for (UserId u = begin; u < end; ++u) {
    const auto row = ItemsOf(u);
    for (size_t k = 0; k < row.size(); ++k) {
      if (row[k].item < 0 || row[k].item >= num_items_) {
        return Status::InvalidArgument("item id out of range in dataset cache");
      }
      if (k > 0 && row[k].item <= row[k - 1].item) {
        return Status::InvalidArgument(
            "dataset cache rows must be strictly item-ascending");
      }
    }
  }
  return Status::OK();
}

std::vector<RowWindow> RatingDataset::PlanRowWindows(
    int64_t budget_bytes, int32_t align_users) const {
  std::vector<RowWindow> windows;
  if (num_users_ == 0) return windows;
  const int32_t block = std::max<int32_t>(align_users, 1);
  const int64_t capacity_rows =
      budget_bytes > 0 ? std::max<int64_t>(
                             budget_bytes / static_cast<int64_t>(
                                                sizeof(ItemRating)),
                             1)
                       : nnz_;
  const auto row_count = [this](UserId lo, UserId hi) {
    return static_cast<int64_t>(user_offsets_view_[static_cast<size_t>(hi)] -
                                user_offsets_view_[static_cast<size_t>(lo)]);
  };
  RowWindow current{0, 0, 0};
  for (UserId u = 0; u < num_users_; u += block) {
    const UserId next = std::min<UserId>(u + block, num_users_);
    const int64_t block_nnz = row_count(u, next);
    if (current.end > current.begin &&
        current.nnz + block_nnz > capacity_rows) {
      windows.push_back(current);
      current = {u, u, 0};
    }
    current.end = next;
    current.nnz += block_nnz;
  }
  windows.push_back(current);
  return windows;
}

Status RatingDataset::SweepRowWindows(
    int64_t budget_bytes, int32_t align_users,
    const std::function<Status(const RowWindow&)>& fn) const {
  // Sweep accounting: one resolve per process, relaxed increments per
  // window — negligible against the O(rows) work each window does.
  static Counter* const sweep_windows = MetricsRegistry::Global().GetCounter(
      "data_sweep_windows_total",
      "Budgeted row windows visited by dataset sweeps.");
  static Counter* const sweep_rows = MetricsRegistry::Global().GetCounter(
      "data_sweep_rows_total", "Ratings visited by dataset row sweeps.");
  const bool mapped = mapped_ != nullptr;
  for (const RowWindow& w : PlanRowWindows(budget_bytes, align_users)) {
    sweep_windows->Increment();
    sweep_rows->Increment(static_cast<uint64_t>(w.nnz));
    if (mapped) {
      // First full pass doubles as the deferred row validation; the
      // watermark only ever advances front-to-back, so a later sweep
      // (or EnsureResident) never re-checks.
      const UserId seen = mapped_->rows_validated_until.load();
      if (seen < w.end) {
        GANC_RETURN_NOT_OK(ValidateRowRange(std::max(seen, w.begin), w.end));
        if (w.begin <= seen) mapped_->rows_validated_until.store(w.end);
      }
    }
    const Status st = fn(w);
    if (mapped && w.nnz > 0) {
      const size_t first =
          static_cast<size_t>(user_offsets_view_[static_cast<size_t>(w.begin)]);
      ReleaseMappedPages(rows_view_.data() + first,
                         static_cast<size_t>(w.nnz) * sizeof(ItemRating));
    }
    GANC_RETURN_NOT_OK(st);
  }
  return Status::OK();
}

Status RatingDataset::ValidateRowsAndIndex() const {
  // O(nnz) structural checks the eager loaders run at load time and a
  // mapped dataset defers to first resident use: rows strictly
  // item-ascending and in range, observation order a permutation.
  GANC_RETURN_NOT_OK(ValidateRowRange(0, num_users_));
  if (mapped_ != nullptr) mapped_->rows_validated_until.store(num_users_);
  const size_t nnz = static_cast<size_t>(nnz_);
  if (!order_view_.empty()) {
    std::vector<bool> seen(nnz, false);
    for (uint64_t idx : order_view_) {
      if (idx >= nnz || seen[idx]) {
        return Status::InvalidArgument(
            "dataset cache observation order is not a permutation");
      }
      seen[idx] = true;
    }
  }

  // CSC item index: walking users ascending yields user-ascending
  // audiences without a sort.
  item_offsets_.assign(static_cast<size_t>(num_items_) + 1, 0);
  for (const ItemRating& ir : rows_view_) {
    ++item_offsets_[static_cast<size_t>(ir.item) + 1];
  }
  for (size_t i = 1; i < item_offsets_.size(); ++i) {
    item_offsets_[i] += item_offsets_[i - 1];
  }
  item_cols_.resize(nnz);
  std::vector<uint64_t> cursor(item_offsets_.begin(), item_offsets_.end() - 1);
  ratings_.resize(nnz);
  for (UserId u = 0; u < num_users_; ++u) {
    const size_t begin = static_cast<size_t>(user_offsets_view_[u]);
    const auto row = ItemsOf(u);
    for (size_t k = 0; k < row.size(); ++k) {
      const ItemRating& ir = row[k];
      item_cols_[cursor[static_cast<size_t>(ir.item)]++] = {u, ir.value};
      const size_t p = begin + k;
      const size_t idx = order_view_.empty() ? p : order_view_[p];
      ratings_[idx] = {u, ir.item, ir.value};
    }
  }
  return Status::OK();
}

Status RatingDataset::Materialize() const { return ValidateRowsAndIndex(); }

Status RatingDataset::EnsureResident() const {
  if (mapped_ == nullptr) return Status::OK();
  std::call_once(mapped_->once, [this] { mapped_->status = Materialize(); });
  return mapped_->status;
}

Status RatingDataset::SaveBinary(std::ostream& os) const {
  // The observation-order section needs ratings(); a mapped dataset
  // must materialize (and thereby fully validate) before re-saving.
  GANC_RETURN_NOT_OK(EnsureResident());
  ArtifactWriter w(os);
  GANC_RETURN_NOT_OK(w.WriteHeader(ArtifactKind::kDatasetCache, 0));

  PayloadWriter dims;
  dims.WriteI32(num_users_);
  dims.WriteI32(num_items_);
  dims.WriteI64(nnz_);
  GANC_RETURN_NOT_OK(w.WriteSection(kCacheDimsSection, dims));

  const size_t nnz = static_cast<size_t>(nnz_);
  PayloadWriter offsets_payload;
  {
    std::vector<uint64_t> offsets(user_offsets_view_.begin(),
                                  user_offsets_view_.end());
    offsets_payload.WriteVecU64(offsets);
  }
  GANC_RETURN_NOT_OK(w.WriteSection(kCacheOffsetsSection, offsets_payload));

  PayloadWriter rows_payload;
  rows_payload.WriteVecRaw(rows_view_.data(), rows_view_.size());
  GANC_RETURN_NOT_OK(w.WriteSection(kCacheRowsSection, rows_payload));

  // Observation-order section: maps each CSR position to its index in
  // ratings_ so the loaded dataset reproduces the original insertion
  // order exactly (seeded splits and SGD epochs depend on it). An
  // identity permutation (user-major sources like the synthetic
  // streamer) is stored as an empty vector.
  std::vector<uint64_t> order(nnz);
  for (size_t idx = 0; idx < nnz; ++idx) {
    const Rating& r = ratings_[idx];
    const auto row = ItemsOf(r.user);
    const auto it = std::lower_bound(
        row.begin(), row.end(), r.item,
        [](const ItemRating& ir, ItemId target) { return ir.item < target; });
    const size_t rank = static_cast<size_t>(it - row.begin());
    order[static_cast<size_t>(user_offsets_view_[r.user]) + rank] = idx;
  }
  bool identity = true;
  for (size_t p = 0; p < nnz && identity; ++p) identity = order[p] == p;
  if (identity) order.clear();
  PayloadWriter order_payload;
  order_payload.WriteVecU64(order);
  GANC_RETURN_NOT_OK(w.WriteSection(kCacheOrderSection, order_payload));

  PayloadWriter fingerprint_payload;
  fingerprint_payload.WriteU64(Fingerprint());
  GANC_RETURN_NOT_OK(
      w.WriteSection(kCacheFingerprintSection, fingerprint_payload));
  return w.Finish();
}

Status RatingDataset::SaveBinaryFile(const std::string& path) const {
  return WriteArtifactFile(
      path, [&](std::ostream& os) { return SaveBinary(os); });
}

// Owns the ArtifactWriter so dataset.h need not include serialize.h.
class DatasetCacheStreamWriter::ArtifactWriterHolder {
 public:
  explicit ArtifactWriterHolder(std::ostream& os) : writer(os) {}
  ArtifactWriter writer;
};

DatasetCacheStreamWriter::~DatasetCacheStreamWriter() = default;

DatasetCacheStreamWriter::DatasetCacheStreamWriter(
    std::ostream& os, int32_t num_users, int32_t num_items,
    std::vector<uint64_t> row_counts)
    : num_users_(num_users),
      num_items_(num_items),
      row_counts_(std::move(row_counts)),
      writer_(std::make_unique<ArtifactWriterHolder>(os)) {}

Result<std::unique_ptr<DatasetCacheStreamWriter>>
DatasetCacheStreamWriter::Create(std::ostream& os, int32_t num_users,
                                 int32_t num_items,
                                 std::span<const uint64_t> row_counts) {
  if (num_users < 0 || num_items < 0) {
    return Status::InvalidArgument("dataset dimensions must be non-negative");
  }
  if (row_counts.size() != static_cast<size_t>(num_users)) {
    return Status::InvalidArgument(
        "row_counts must have one entry per user");
  }
  uint64_t nnz = 0;
  for (uint64_t c : row_counts) {
    if (c > static_cast<uint64_t>(num_items)) {
      return Status::InvalidArgument(
          "declared row longer than the item universe");
    }
    nnz += c;
  }
  auto w = std::unique_ptr<DatasetCacheStreamWriter>(
      new DatasetCacheStreamWriter(
          os, num_users, num_items,
          std::vector<uint64_t>(row_counts.begin(), row_counts.end())));
  w->nnz_ = static_cast<int64_t>(nnz);
  ArtifactWriter& aw = w->writer_->writer;
  GANC_RETURN_NOT_OK(aw.WriteHeader(ArtifactKind::kDatasetCache, 0));

  PayloadWriter dims;
  dims.WriteI32(num_users);
  dims.WriteI32(num_items);
  dims.WriteI64(w->nnz_);
  GANC_RETURN_NOT_OK(aw.WriteSection(kCacheDimsSection, dims));

  PayloadWriter offsets_payload;
  {
    std::vector<uint64_t> offsets(static_cast<size_t>(num_users) + 1, 0);
    for (size_t u = 0; u < row_counts.size(); ++u) {
      offsets[u + 1] = offsets[u] + row_counts[u];
    }
    offsets_payload.WriteVecU64(offsets);
  }
  GANC_RETURN_NOT_OK(aw.WriteSection(kCacheOffsetsSection, offsets_payload));

  // The fingerprint hashes dims first, then each appended row — the
  // same u32-chunk stream as RatingDataset::Fingerprint().
  const auto hash_u32 = [&w](uint32_t v) {
    uint8_t b[4];
    for (int i = 0; i < 4; ++i) b[i] = static_cast<uint8_t>(v >> (8 * i));
    w->fingerprint_.Update(b, sizeof(b));
  };
  hash_u32(static_cast<uint32_t>(num_users));
  hash_u32(static_cast<uint32_t>(num_items));

  // Rows section, streamed: [count u64] then nnz raw ItemRating pairs.
  GANC_RETURN_NOT_OK(aw.BeginSection(
      kCacheRowsSection, 8 + nnz * sizeof(ItemRating)));
  uint8_t count_le[8];
  for (int i = 0; i < 8; ++i) {
    count_le[i] = static_cast<uint8_t>(nnz >> (8 * i));
  }
  GANC_RETURN_NOT_OK(aw.AppendSectionBytes(count_le, sizeof(count_le)));
  return w;
}

Status DatasetCacheStreamWriter::AppendRow(std::span<const ItemRating> row) {
  if (next_user_ >= num_users_) {
    return Status::InvalidArgument("AppendRow called after the last user");
  }
  if (row.size() != row_counts_[static_cast<size_t>(next_user_)]) {
    return Status::InvalidArgument(
        "row length does not match the declared count for user " +
        std::to_string(next_user_));
  }
  for (size_t k = 0; k < row.size(); ++k) {
    if (row[k].item < 0 || row[k].item >= num_items_) {
      return Status::InvalidArgument("item id out of range in appended row");
    }
    if (k > 0 && row[k].item <= row[k - 1].item) {
      return Status::InvalidArgument(
          "appended rows must be strictly item-ascending");
    }
  }
  const auto hash_u32 = [this](uint32_t v) {
    uint8_t b[4];
    for (int i = 0; i < 4; ++i) b[i] = static_cast<uint8_t>(v >> (8 * i));
    fingerprint_.Update(b, sizeof(b));
  };
  hash_u32(static_cast<uint32_t>(row.size()));
  for (const ItemRating& ir : row) {
    hash_u32(static_cast<uint32_t>(ir.item));
    hash_u32(std::bit_cast<uint32_t>(ir.value));
  }
  ArtifactWriter& aw = writer_->writer;
  if constexpr (kGancHostIsLittleEndian) {
    GANC_RETURN_NOT_OK(
        aw.AppendSectionBytes(row.data(), row.size() * sizeof(ItemRating)));
  } else {
    for (const ItemRating& ir : row) {
      uint8_t b[8];
      const uint32_t item = static_cast<uint32_t>(ir.item);
      const uint32_t bits = std::bit_cast<uint32_t>(ir.value);
      for (int i = 0; i < 4; ++i) b[i] = static_cast<uint8_t>(item >> (8 * i));
      for (int i = 0; i < 4; ++i) {
        b[4 + i] = static_cast<uint8_t>(bits >> (8 * i));
      }
      GANC_RETURN_NOT_OK(aw.AppendSectionBytes(b, sizeof(b)));
    }
  }
  ++next_user_;
  return Status::OK();
}

Status DatasetCacheStreamWriter::Finish() {
  if (next_user_ != num_users_) {
    return Status::InvalidArgument(
        "Finish called before every declared row was appended");
  }
  ArtifactWriter& aw = writer_->writer;
  GANC_RETURN_NOT_OK(aw.EndSection());

  // Rows arrived in CSR order == insertion order: identity permutation,
  // stored as the empty vector (matches SaveBinary's encoding).
  PayloadWriter order_payload;
  order_payload.WriteVecU64({});
  GANC_RETURN_NOT_OK(aw.WriteSection(kCacheOrderSection, order_payload));

  PayloadWriter fingerprint_payload;
  fingerprint_payload.WriteU64(fingerprint_.digest());
  GANC_RETURN_NOT_OK(
      aw.WriteSection(kCacheFingerprintSection, fingerprint_payload));
  return aw.Finish();
}

Result<RatingDataset> RatingDataset::LoadBinary(std::istream& is) {
  ArtifactReader r(is);
  Result<ArtifactHeader> header = r.ReadHeader();
  if (!header.ok()) return header.status();
  GANC_RETURN_NOT_OK(ExpectArtifact(*header, ArtifactKind::kDatasetCache, 0));

  Result<ArtifactReader::Section> dims = r.ReadSectionExpect(
      kCacheDimsSection);
  if (!dims.ok()) return dims.status();
  PayloadReader dr(dims->payload());
  int32_t num_users = 0;
  int32_t num_items = 0;
  int64_t num_ratings = 0;
  GANC_RETURN_NOT_OK(dr.ReadI32(&num_users));
  GANC_RETURN_NOT_OK(dr.ReadI32(&num_items));
  GANC_RETURN_NOT_OK(dr.ReadI64(&num_ratings));
  GANC_RETURN_NOT_OK(dr.ExpectEnd());
  if (num_users < 0 || num_items < 0 || num_ratings < 0) {
    return Status::InvalidArgument("negative dimensions in dataset cache");
  }
  const size_t nnz = static_cast<size_t>(num_ratings);

  RatingDataset ds;
  ds.num_users_ = num_users;
  ds.num_items_ = num_items;
  ds.nnz_ = num_ratings;
  std::vector<uint64_t> order;
  {
    Result<ArtifactReader::Section> s = r.ReadSectionExpect(
        kCacheOffsetsSection);
    if (!s.ok()) return s.status();
    PayloadReader pr(s->payload());
    GANC_RETURN_NOT_OK(pr.ReadVecU64(&ds.user_offsets_));
    GANC_RETURN_NOT_OK(pr.ExpectEnd());
  }
  if (header->version >= 3) {
    {
      Result<ArtifactReader::Section> s = r.ReadSectionExpect(
          kCacheRowsSection);
      if (!s.ok()) return s.status();
      PayloadReader pr(s->payload());
      GANC_RETURN_NOT_OK(ReadRowsVec(&pr, &ds.user_rows_));
      GANC_RETURN_NOT_OK(pr.ExpectEnd());
    }
    {
      Result<ArtifactReader::Section> s = r.ReadSectionExpect(
          kCacheOrderSection);
      if (!s.ok()) return s.status();
      PayloadReader pr(s->payload());
      GANC_RETURN_NOT_OK(pr.ReadVecU64(&order));
      GANC_RETURN_NOT_OK(pr.ExpectEnd());
    }
    {
      Result<ArtifactReader::Section> s = r.ReadSectionExpect(
          kCacheFingerprintSection);
      if (!s.ok()) return s.status();
      PayloadReader pr(s->payload());
      GANC_RETURN_NOT_OK(pr.ReadU64(&ds.fingerprint_));
      GANC_RETURN_NOT_OK(pr.ExpectEnd());
    }
  } else {
    // v2 layout: split item-id and value arrays, mandatory order.
    std::vector<int32_t> items;
    std::vector<float> values;
    {
      Result<ArtifactReader::Section> s = r.ReadSectionExpect(
          kCacheItemsSection);
      if (!s.ok()) return s.status();
      PayloadReader pr(s->payload());
      GANC_RETURN_NOT_OK(pr.ReadVecI32(&items));
      GANC_RETURN_NOT_OK(pr.ExpectEnd());
    }
    {
      Result<ArtifactReader::Section> s = r.ReadSectionExpect(
          kCacheValuesSection);
      if (!s.ok()) return s.status();
      PayloadReader pr(s->payload());
      GANC_RETURN_NOT_OK(pr.ReadVecF32(&values));
      GANC_RETURN_NOT_OK(pr.ExpectEnd());
    }
    {
      Result<ArtifactReader::Section> s = r.ReadSectionExpect(
          kCacheOrderSection);
      if (!s.ok()) return s.status();
      PayloadReader pr(s->payload());
      GANC_RETURN_NOT_OK(pr.ReadVecU64(&order));
      GANC_RETURN_NOT_OK(pr.ExpectEnd());
    }
    if (items.size() != values.size()) {
      return Status::InvalidArgument("dataset cache section sizes disagree");
    }
    ds.user_rows_.resize(items.size());
    for (size_t p = 0; p < items.size(); ++p) {
      ds.user_rows_[p] = {items[p], values[p]};
    }
    if (order.size() != nnz) {
      return Status::InvalidArgument("dataset cache section sizes disagree");
    }
  }
  GANC_RETURN_NOT_OK(ExpectEndOfArtifact(r));

  // Structural validation before touching any index.
  if (ds.user_rows_.size() != nnz ||
      (!order.empty() && order.size() != nnz)) {
    return Status::InvalidArgument("dataset cache section sizes disagree");
  }
  GANC_RETURN_NOT_OK(
      ValidateOffsets(ds.user_offsets_, num_users, num_items, nnz));
  ds.BindOwnedViews();
  ds.order_view_ = order;  // local: consumed by the eager build below
  Status built = ds.ValidateRowsAndIndex();
  ds.order_view_ = {};
  GANC_RETURN_NOT_OK(built);
  return ds;
}

Result<RatingDataset> RatingDataset::LoadBinaryFile(const std::string& path) {
  return ReadArtifactFile(
      path, [](std::istream& is) { return LoadBinary(is); });
}

Result<RatingDataset> RatingDataset::LoadMappedFile(const std::string& path) {
  Result<std::shared_ptr<const MappedArtifact>> mapped =
      OpenMappedArtifact(path);
  if (!mapped.ok()) return mapped.status();
  ArtifactReader r(*mapped);
  Result<ArtifactHeader> header = r.ReadHeader();
  if (!header.ok()) return header.status();
  GANC_RETURN_NOT_OK(ExpectArtifact(*header, ArtifactKind::kDatasetCache, 0));

  RatingDataset ds;
  {
    Result<ArtifactReader::Section> s = r.ReadSectionExpect(
        kCacheDimsSection);
    if (!s.ok()) return s.status();
    PayloadReader pr(s->payload());
    int64_t num_ratings = 0;
    GANC_RETURN_NOT_OK(pr.ReadI32(&ds.num_users_));
    GANC_RETURN_NOT_OK(pr.ReadI32(&ds.num_items_));
    GANC_RETURN_NOT_OK(pr.ReadI64(&num_ratings));
    GANC_RETURN_NOT_OK(pr.ExpectEnd());
    if (ds.num_users_ < 0 || ds.num_items_ < 0 || num_ratings < 0) {
      return Status::InvalidArgument("negative dimensions in dataset cache");
    }
    ds.nnz_ = num_ratings;
  }
  {
    Result<ArtifactReader::Section> s = r.ReadSectionExpect(
        kCacheOffsetsSection);
    if (!s.ok()) return s.status();
    PayloadReader pr(s->payload());
    GANC_RETURN_NOT_OK(pr.BorrowVec(&ds.user_offsets_view_));
    GANC_RETURN_NOT_OK(pr.ExpectEnd());
  }
  {
    Result<ArtifactReader::Section> s = r.ReadSectionExpect(
        kCacheRowsSection);
    if (!s.ok()) return s.status();
    PayloadReader pr(s->payload());
    GANC_RETURN_NOT_OK(pr.BorrowVec(&ds.rows_view_));
    GANC_RETURN_NOT_OK(pr.ExpectEnd());
  }
  {
    Result<ArtifactReader::Section> s = r.ReadSectionExpect(
        kCacheOrderSection);
    if (!s.ok()) return s.status();
    PayloadReader pr(s->payload());
    GANC_RETURN_NOT_OK(pr.BorrowVec(&ds.order_view_));
    GANC_RETURN_NOT_OK(pr.ExpectEnd());
  }
  {
    Result<ArtifactReader::Section> s = r.ReadSectionExpect(
        kCacheFingerprintSection);
    if (!s.ok()) return s.status();
    PayloadReader pr(s->payload());
    GANC_RETURN_NOT_OK(pr.ReadU64(&ds.fingerprint_));
    GANC_RETURN_NOT_OK(pr.ExpectEnd());
  }
  GANC_RETURN_NOT_OK(ExpectEndOfArtifact(r));

  // Cold-load validation is O(users): section sizes and the offset
  // table. Row contents are validated by EnsureResident() before any
  // consumer indexes by item id; until then rows are only read as
  // bounded spans.
  const uint64_t nnz = static_cast<uint64_t>(ds.nnz_);
  if (ds.rows_view_.size() != nnz ||
      (!ds.order_view_.empty() && ds.order_view_.size() != nnz)) {
    return Status::InvalidArgument("dataset cache section sizes disagree");
  }
  GANC_RETURN_NOT_OK(ValidateOffsets(ds.user_offsets_view_, ds.num_users_,
                                     ds.num_items_, nnz));
  ds.mapped_ = std::make_unique<MappedState>();
  ds.mapped_->artifact = std::move(*mapped);
  return ds;
}

Result<RatingDataset> RatingDataset::LoadFileAuto(const std::string& path,
                                                  bool prefer_mmap) {
  if (prefer_mmap) {
    Result<RatingDataset> mapped = LoadMappedFile(path);
    if (mapped.ok() || !IsMmapFallback(mapped.status())) return mapped;
  }
  return LoadBinaryFile(path);
}

RatingDatasetBuilder::RatingDatasetBuilder(int32_t num_users,
                                           int32_t num_items)
    : num_users_(num_users), num_items_(num_items) {
  assert(num_users >= 0 && num_items >= 0);
}

Status RatingDatasetBuilder::Add(UserId user, ItemId item, float value) {
  if (user < 0 || user >= num_users_) {
    return Status::OutOfRange("user id " + std::to_string(user) +
                              " outside [0, " + std::to_string(num_users_) +
                              ")");
  }
  if (item < 0 || item >= num_items_) {
    return Status::OutOfRange("item id " + std::to_string(item) +
                              " outside [0, " + std::to_string(num_items_) +
                              ")");
  }
  ratings_.push_back({user, item, value});
  return Status::OK();
}

Result<RatingDataset> RatingDatasetBuilder::Build() && {
  RatingDataset ds;
  ds.num_users_ = num_users_;
  ds.num_items_ = num_items_;
  ds.ratings_ = std::move(ratings_);
  ds.nnz_ = static_cast<int64_t>(ds.ratings_.size());
  const size_t nnz = ds.ratings_.size();

  // CSR: counting sort by user (insertion order preserved per row),
  // then sort each row by item and reject duplicates.
  ds.user_offsets_.assign(static_cast<size_t>(num_users_) + 1, 0);
  for (const Rating& r : ds.ratings_) {
    ++ds.user_offsets_[static_cast<size_t>(r.user) + 1];
  }
  for (size_t u = 1; u < ds.user_offsets_.size(); ++u) {
    ds.user_offsets_[u] += ds.user_offsets_[u - 1];
  }
  ds.user_rows_.resize(nnz);
  {
    std::vector<uint64_t> cursor(ds.user_offsets_.begin(),
                                 ds.user_offsets_.end() - 1);
    for (const Rating& r : ds.ratings_) {
      ds.user_rows_[cursor[static_cast<size_t>(r.user)]++] = {r.item, r.value};
    }
  }
  for (int32_t u = 0; u < num_users_; ++u) {
    const auto begin = ds.user_rows_.begin() +
                       static_cast<ptrdiff_t>(ds.user_offsets_[u]);
    const auto end = ds.user_rows_.begin() +
                     static_cast<ptrdiff_t>(ds.user_offsets_[u + 1]);
    std::sort(begin, end, [](const ItemRating& a, const ItemRating& b) {
      return a.item < b.item;
    });
    for (auto it = begin; it != end; ++it) {
      if (it != begin && it->item == (it - 1)->item) {
        return Status::InvalidArgument("duplicate (user, item) observation");
      }
    }
  }

  // CSC: walking users ascending yields user-ascending audiences.
  ds.item_offsets_.assign(static_cast<size_t>(num_items_) + 1, 0);
  for (const ItemRating& ir : ds.user_rows_) {
    ++ds.item_offsets_[static_cast<size_t>(ir.item) + 1];
  }
  for (size_t i = 1; i < ds.item_offsets_.size(); ++i) {
    ds.item_offsets_[i] += ds.item_offsets_[i - 1];
  }
  ds.item_cols_.resize(nnz);
  {
    std::vector<uint64_t> cursor(ds.item_offsets_.begin(),
                                 ds.item_offsets_.end() - 1);
    for (int32_t u = 0; u < num_users_; ++u) {
      for (size_t p = ds.user_offsets_[u]; p < ds.user_offsets_[u + 1]; ++p) {
        const ItemRating& ir = ds.user_rows_[p];
        ds.item_cols_[cursor[static_cast<size_t>(ir.item)]++] = {u, ir.value};
      }
    }
  }
  ds.BindOwnedViews();
  return ds;
}

}  // namespace ganc
