// SessionOverlay / SessionRegistry: consumed-item bookkeeping and the
// exclusion lists handed to the serving layer.

#include "serve/session_overlay.h"

#include <algorithm>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace ganc {
namespace {

std::vector<ItemId> List(std::initializer_list<ItemId> items) {
  return std::vector<ItemId>(items);
}

TEST(SessionOverlayTest, StartsEmpty) {
  SessionOverlay overlay;
  EXPECT_TRUE(overlay.ConsumedOf(3).empty());
  EXPECT_EQ(overlay.num_users(), 0u);
  EXPECT_EQ(overlay.total_consumed(), 0u);
}

TEST(SessionOverlayTest, MergesSortedUnique) {
  SessionOverlay overlay;
  overlay.MarkConsumed(3, List({9, 2, 9}));
  overlay.MarkConsumed(3, List({5, 2}));
  const std::span<const ItemId> consumed = overlay.ConsumedOf(3);
  EXPECT_EQ(std::vector<ItemId>(consumed.begin(), consumed.end()),
            List({2, 5, 9}));
  EXPECT_EQ(overlay.num_users(), 1u);
  EXPECT_EQ(overlay.total_consumed(), 3u);
}

TEST(SessionOverlayTest, UsersAreIndependent) {
  SessionOverlay overlay;
  overlay.MarkConsumed(1, List({7}));
  overlay.MarkConsumed(2, List({8}));
  EXPECT_EQ(overlay.ConsumedOf(1).size(), 1u);
  EXPECT_EQ(overlay.ConsumedOf(1)[0], 7);
  EXPECT_EQ(overlay.ConsumedOf(2)[0], 8);
}

TEST(SessionRegistryTest, CollectMergesOverlayAndExtraSorted) {
  SessionRegistry registry;
  registry.MarkConsumed("s1", 4, List({10, 3}));
  std::vector<ItemId> out;
  registry.CollectExclusions("s1", 4, List({7, 3, 99}), &out);
  EXPECT_EQ(out, List({3, 7, 10, 99}));
}

TEST(SessionRegistryTest, UnknownSessionYieldsJustExtras) {
  SessionRegistry registry;
  std::vector<ItemId> out;
  registry.CollectExclusions("nope", 1, List({5, 5, 2}), &out);
  EXPECT_EQ(out, List({2, 5}));
  // Collect never creates a session.
  EXPECT_EQ(registry.num_sessions(), 0u);
}

TEST(SessionRegistryTest, SessionsAreIsolated) {
  SessionRegistry registry;
  registry.MarkConsumed("a", 1, List({1}));
  registry.MarkConsumed("b", 1, List({2}));
  std::vector<ItemId> out;
  registry.CollectExclusions("a", 1, {}, &out);
  EXPECT_EQ(out, List({1}));
  registry.CollectExclusions("b", 1, {}, &out);
  EXPECT_EQ(out, List({2}));
  EXPECT_EQ(registry.num_sessions(), 2u);
}

TEST(SessionRegistryTest, ConcurrentMarkAndCollect) {
  SessionRegistry registry;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&registry, t] {
      std::vector<ItemId> out;
      for (int i = 0; i < 500; ++i) {
        const ItemId item = static_cast<ItemId>(t * 1000 + i);
        registry.MarkConsumed("shared", 0, List({item}));
        registry.CollectExclusions("shared", 0, {}, &out);
        // Own writes are always visible.
        ASSERT_TRUE(std::binary_search(out.begin(), out.end(), item));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  std::vector<ItemId> out;
  registry.CollectExclusions("shared", 0, {}, &out);
  EXPECT_EQ(out.size(), 4u * 500u);
}

}  // namespace
}  // namespace ganc
