// Scalar reference kernels: the PR 2 register-blocked 8-user fp64
// kernel (moved here verbatim from factor_scoring_engine.cc), plus its
// fp32 and int8 counterparts. Every SIMD variant is defined as
// bit-identical to this TU; it is compiled with -ffp-contract=off so
// the reference itself never fuses a mul+add (see CMakeLists.txt).

#include <algorithm>
#include <cstdint>
#include <span>

#include "recommender/factor_kernels_impl.h"

namespace ganc {
namespace internal {
namespace {

// The fp64 batch micro-kernel, specialized at compile time on which
// optional terms exist: with the flags folded, the no-bias
// instantiation keeps a branch- and load-free inner loop (measured
// ~20% faster than one generic kernel testing the pointers per item).
template <bool kHasItemBias, bool kHasUserBase>
void ScalarBatchF64(const FactorView& v, std::span<const UserId> users,
                    std::span<double> out) {
  const size_t g = v.num_factors;
  const size_t ni = static_cast<size_t>(v.num_items);
  const size_t batch = users.size();

  for (size_t b0 = 0; b0 < batch; b0 += kU) {
    const size_t bn = std::min(kU, batch - b0);
    // A ragged final block keeps the inner loops fixed-width by pointing
    // the dead lanes at the block's first user; only live lanes store.
    const double* pu[kU];
    double* o[kU];
    double base[kU];
    for (size_t b = 0; b < kU; ++b) {
      const size_t lane = b < bn ? b : 0;
      const size_t ub = static_cast<size_t>(users[b0 + lane]);
      pu[b] = v.user_factors + ub * g;
      o[b] = out.data() + (b0 + lane) * ni;
      base[b] = kHasUserBase ? v.user_base[ub] : 0.0;
    }
    for (size_t i = 0; i < ni; ++i) {
      const double* qi = v.item_factors + i * g;
      // Bias terms enter each accumulator before the factor sum and every
      // (u, i) pair keeps one accumulator walked in factor order — the
      // same evaluation order as the scalar single-user path, so batch
      // scores are bit-identical to ScoreInto. The kU independent chains
      // are what buys the speedup: they hide FMA latency and let the
      // compiler vectorize across users, while q_i is loaded once per
      // block instead of once per user.
      double acc[kU];
      if constexpr (kHasItemBias && kHasUserBase) {
        const double bi = v.item_bias[i];
        for (size_t b = 0; b < kU; ++b) acc[b] = base[b] + bi;
      } else if constexpr (kHasItemBias) {
        const double bi = v.item_bias[i];
        for (size_t b = 0; b < kU; ++b) acc[b] = bi;
      } else if constexpr (kHasUserBase) {
        for (size_t b = 0; b < kU; ++b) acc[b] = base[b];
      } else {
        for (size_t b = 0; b < kU; ++b) acc[b] = 0.0;
      }
      for (size_t f = 0; f < g; ++f) {
        const double qf = qi[f];
        for (size_t b = 0; b < kU; ++b) acc[b] += pu[b][f] * qf;
      }
      for (size_t b = 0; b < bn; ++b) o[b][i] = acc[b];
    }
  }
}

// fp32: identical block structure with float accumulators; bias terms
// narrow to float before entering the accumulator, the final value
// widens back to double for the output row.
template <bool kHasItemBias, bool kHasUserBase>
void ScalarBatchF32(const FactorView& v, std::span<const UserId> users,
                    std::span<double> out) {
  const size_t g = v.num_factors;
  const size_t ni = static_cast<size_t>(v.num_items);
  const size_t batch = users.size();

  for (size_t b0 = 0; b0 < batch; b0 += kU) {
    const size_t bn = std::min(kU, batch - b0);
    const float* pu[kU];
    double* o[kU];
    float base[kU];
    for (size_t b = 0; b < kU; ++b) {
      const size_t lane = b < bn ? b : 0;
      const size_t ub = static_cast<size_t>(users[b0 + lane]);
      pu[b] = v.user_factors_f32 + ub * g;
      o[b] = out.data() + (b0 + lane) * ni;
      base[b] = kHasUserBase ? static_cast<float>(v.user_base[ub]) : 0.0f;
    }
    for (size_t i = 0; i < ni; ++i) {
      const float* qi = v.item_factors_f32 + i * g;
      const float bi =
          kHasItemBias ? static_cast<float>(v.item_bias[i]) : 0.0f;
      float acc[kU];
      for (size_t b = 0; b < kU; ++b) {
        acc[b] = BiasTermF32<kHasItemBias, kHasUserBase>(base[b], bi);
      }
      for (size_t f = 0; f < g; ++f) {
        const float qf = qi[f];
        for (size_t b = 0; b < kU; ++b) acc[b] += pu[b][f] * qf;
      }
      for (size_t b = 0; b < bn; ++b) {
        o[b][i] = static_cast<double>(acc[b]);
      }
    }
  }
}

// int8: per-lane exact integer dot, then the shared DequantDot combine.
template <bool kHasItemBias, bool kHasUserBase>
void ScalarBatchI8(const FactorView& v, std::span<const UserId> users,
                   std::span<double> out) {
  const size_t g = v.num_factors;
  const size_t ni = static_cast<size_t>(v.num_items);
  const size_t batch = users.size();

  for (size_t b0 = 0; b0 < batch; b0 += kU) {
    const size_t bn = std::min(kU, batch - b0);
    const int8_t* pq[kU];
    double* o[kU];
    double base[kU];
    float su[kU];
    float cu[kU];
    int32_t sp[kU];
    for (size_t b = 0; b < kU; ++b) {
      const size_t lane = b < bn ? b : 0;
      const size_t ub = static_cast<size_t>(users[b0 + lane]);
      pq[b] = v.user_q8 + ub * g;
      o[b] = out.data() + (b0 + lane) * ni;
      base[b] = kHasUserBase ? v.user_base[ub] : 0.0;
      su[b] = v.user_scale[ub];
      cu[b] = v.user_center[ub];
      sp[b] = v.user_qsum[ub];
    }
    for (size_t i = 0; i < ni; ++i) {
      const int8_t* qq = v.item_q8 + i * g;
      const double bi = kHasItemBias ? v.item_bias[i] : 0.0;
      const float si = v.item_scale[i];
      const float ci = v.item_center[i];
      const int32_t sq = v.item_qsum[i];
      int32_t d[kU];
      for (size_t b = 0; b < kU; ++b) d[b] = 0;
      for (size_t f = 0; f < g; ++f) {
        const int32_t qf = qq[f];
        for (size_t b = 0; b < kU; ++b) {
          d[b] += static_cast<int32_t>(pq[b][f]) * qf;
        }
      }
      for (size_t b = 0; b < bn; ++b) {
        o[b][i] = BiasTermF64<kHasItemBias, kHasUserBase>(base[b], bi) +
                  DequantDot(g, su[b], cu[b], sp[b], si, ci, sq, d[b]);
      }
    }
  }
}

void ScalarF64(const FactorView& v, std::span<const UserId> users,
               std::span<double> out) {
  if (v.item_bias) {
    if (v.user_base) return ScalarBatchF64<true, true>(v, users, out);
    return ScalarBatchF64<true, false>(v, users, out);
  }
  if (v.user_base) return ScalarBatchF64<false, true>(v, users, out);
  return ScalarBatchF64<false, false>(v, users, out);
}

void ScalarF32(const FactorView& v, std::span<const UserId> users,
               std::span<double> out) {
  if (v.item_bias) {
    if (v.user_base) return ScalarBatchF32<true, true>(v, users, out);
    return ScalarBatchF32<true, false>(v, users, out);
  }
  if (v.user_base) return ScalarBatchF32<false, true>(v, users, out);
  return ScalarBatchF32<false, false>(v, users, out);
}

void ScalarI8(const FactorView& v, std::span<const UserId> users,
              std::span<double> out) {
  if (v.item_bias) {
    if (v.user_base) return ScalarBatchI8<true, true>(v, users, out);
    return ScalarBatchI8<true, false>(v, users, out);
  }
  if (v.user_base) return ScalarBatchI8<false, true>(v, users, out);
  return ScalarBatchI8<false, false>(v, users, out);
}

}  // namespace

const KernelOps& ScalarKernelOps() {
  static const KernelOps ops{&ScalarF64, &ScalarF32, &ScalarI8};
  return ops;
}

}  // namespace internal
}  // namespace ganc
