// longtail_audit: use the library as an *analysis* toolkit rather than a
// recommender — audit a catalog's popularity bias and profile the users'
// long-tail novelty preferences (the paper's Sections II and IV-B).
//
//   build/examples/longtail_audit
//
// Prints: the Pareto head/tail split of the catalog, Figure-1-style binned
// popularity-vs-activity rows, and Figure-2-style histograms of the four
// preference estimators side by side.

#include <cstdio>

#include "core/preference.h"
#include "data/longtail.h"
#include "data/split.h"
#include "data/synthetic.h"
#include "util/csv.h"
#include "util/stats.h"
#include "util/table.h"

using namespace ganc;

int main() {
  SyntheticSpec spec = MovieLens100KSpec();
  auto dataset = GenerateSynthetic(spec);
  if (!dataset.ok()) return 1;
  auto split = PerUserRatioSplit(*dataset, {.train_ratio = spec.kappa,
                                            .seed = 3});
  if (!split.ok()) return 1;
  const RatingDataset& train = split->train;

  // --- Catalog audit.
  const LongTailInfo tail = ComputeLongTail(train);
  std::printf("catalog: %d items, %d rated in train, long-tail %.1f%% "
              "(Pareto 80/20 cut)\n\n",
              train.num_items(), tail.num_rated_items, tail.tail_percent);

  // --- Figure 1: avg popularity of rated items vs user activity.
  std::vector<double> activity, avg_pop;
  for (UserId u = 0; u < train.num_users(); ++u) {
    const auto& row = train.ItemsOf(u);
    if (row.empty()) continue;
    double acc = 0.0;
    for (const ItemRating& ir : row) {
      acc += static_cast<double>(train.Popularity(ir.item));
    }
    activity.push_back(static_cast<double>(row.size()));
    avg_pop.push_back(acc / static_cast<double>(row.size()));
  }
  std::printf("Figure-1 audit: mean popularity of rated items by activity "
              "bin (should decrease)\n");
  TablePrinter fig1({"activity bin center", "avg popularity", "users"});
  for (const auto& row : BinnedMeans(activity, avg_pop, 10)) {
    fig1.AddRow({FormatDouble(row.bin_center, 1),
                 FormatDouble(row.mean_y, 1), std::to_string(row.count)});
  }
  fig1.Print();

  // --- Figure 2: preference model histograms.
  const auto theta_a = ActivityPreference(train);
  const auto theta_n = NormalizedLongtailPreference(train, tail);
  const auto theta_t = TfidfPreference(train);
  auto g = GeneralizedPreference(train);
  if (!g.ok()) return 1;

  std::printf("\nFigure-2 audit: preference histograms (10 bins on [0,1])\n");
  TablePrinter fig2({"bin", "thetaA", "thetaN", "thetaT", "thetaG"});
  const auto ha = MakeHistogram(theta_a, 0.0, 1.0, 10);
  const auto hn = MakeHistogram(theta_n, 0.0, 1.0, 10);
  const auto ht = MakeHistogram(theta_t, 0.0, 1.0, 10);
  const auto hg = MakeHistogram(g->theta, 0.0, 1.0, 10);
  for (size_t b = 0; b < 10; ++b) {
    fig2.AddRow({FormatDouble(ha.BinCenter(b), 2),
                 std::to_string(ha.counts[b]), std::to_string(hn.counts[b]),
                 std::to_string(ht.counts[b]), std::to_string(hg.counts[b])});
  }
  fig2.Print();

  std::printf(
      "\nmeans: thetaA %.3f  thetaN %.3f  thetaT %.3f  thetaG %.3f\n"
      "(paper Figure 2: thetaA/thetaN skew right toward 0; thetaG is\n"
      " more symmetric with a larger mean and variance)\n",
      Mean(theta_a), Mean(theta_n), Mean(theta_t), Mean(g->theta));
  return 0;
}
