// Elapsed-time helpers for benchmarks and progress reporting.
//
// Repo-wide clock rule (docs/OBSERVABILITY.md): every duration is
// measured on std::chrono::steady_clock — here, in MonotonicNowNs
// (util/metrics.h), and in the serve latency accounting. system_clock
// is for timestamps humans read, never for durations; it can jump
// backwards under NTP adjustment and would corrupt latency histograms.

#ifndef GANC_UTIL_TIMER_H_
#define GANC_UTIL_TIMER_H_

#include <chrono>

namespace ganc {

/// Simple monotonic stopwatch (steady_clock).
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or last Reset().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace ganc

#endif  // GANC_UTIL_TIMER_H_
