#include "util/serialize.h"

#include <algorithm>

#include "util/binary_io.h"

namespace ganc {

namespace {

template <typename T, typename WriteOne>
void WriteVecGeneric(PayloadWriter* w, const std::vector<T>& v,
                     WriteOne&& write_one) {
  w->WriteU64(static_cast<uint64_t>(v.size()));
  if constexpr (kGancHostIsLittleEndian) {
    w->WriteBytes(v.data(), v.size() * sizeof(T));
  } else {
    for (const T& x : v) write_one(x);
  }
}

uint64_t PaddingFor(uint64_t offset) {
  return (kSectionAlignment - offset % kSectionAlignment) % kSectionAlignment;
}

}  // namespace

void PayloadWriter::WriteU32(uint32_t v) {
  char b[4];
  for (int i = 0; i < 4; ++i) b[i] = static_cast<char>(v >> (8 * i));
  buf_.append(b, sizeof(b));
}

void PayloadWriter::WriteU64(uint64_t v) {
  char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<char>(v >> (8 * i));
  buf_.append(b, sizeof(b));
}

void PayloadWriter::WriteF32(float v) { WriteU32(std::bit_cast<uint32_t>(v)); }

void PayloadWriter::WriteF64(double v) { WriteU64(std::bit_cast<uint64_t>(v)); }

void PayloadWriter::WriteBytes(const void* data, size_t size) {
  buf_.append(static_cast<const char*>(data), size);
}

void PayloadWriter::WriteString(std::string_view s) {
  WriteU64(static_cast<uint64_t>(s.size()));
  buf_.append(s.data(), s.size());
}

void PayloadWriter::AlignTo(size_t alignment) {
  buf_.append((alignment - buf_.size() % alignment) % alignment, '\0');
}

void PayloadWriter::WriteVecF64(const std::vector<double>& v) {
  WriteVecGeneric(this, v, [this](double x) { WriteF64(x); });
}

void PayloadWriter::WriteVecF32(const std::vector<float>& v) {
  WriteVecGeneric(this, v, [this](float x) { WriteF32(x); });
}

void PayloadWriter::WriteVecI32(const std::vector<int32_t>& v) {
  WriteVecGeneric(this, v, [this](int32_t x) { WriteI32(x); });
}

void PayloadWriter::WriteVecU64(const std::vector<uint64_t>& v) {
  WriteVecGeneric(this, v, [this](uint64_t x) { WriteU64(x); });
}

void PayloadWriter::WriteVecI8(const std::vector<int8_t>& v) {
  WriteU64(v.size());
  WriteBytes(v.data(), v.size());  // single bytes: no endianness
}

Status PayloadReader::Require(size_t n) const {
  // Compare against the remaining bytes (never pos_ + n, which can wrap
  // for forged 64-bit lengths).
  if (n > bytes_.size() - pos_) {
    return Status::InvalidArgument("section payload underrun");
  }
  return Status::OK();
}

Status PayloadReader::ReadU8(uint8_t* out) {
  GANC_RETURN_NOT_OK(Require(1));
  *out = static_cast<uint8_t>(bytes_[pos_++]);
  return Status::OK();
}

Status PayloadReader::ReadU32(uint32_t* out) {
  GANC_RETURN_NOT_OK(Require(4));
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(bytes_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 4;
  *out = v;
  return Status::OK();
}

Status PayloadReader::ReadU64(uint64_t* out) {
  GANC_RETURN_NOT_OK(Require(8));
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(bytes_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 8;
  *out = v;
  return Status::OK();
}

Status PayloadReader::ReadI32(int32_t* out) {
  uint32_t v = 0;
  GANC_RETURN_NOT_OK(ReadU32(&v));
  *out = static_cast<int32_t>(v);
  return Status::OK();
}

Status PayloadReader::ReadI64(int64_t* out) {
  uint64_t v = 0;
  GANC_RETURN_NOT_OK(ReadU64(&v));
  *out = static_cast<int64_t>(v);
  return Status::OK();
}

Status PayloadReader::ReadF32(float* out) {
  uint32_t v = 0;
  GANC_RETURN_NOT_OK(ReadU32(&v));
  *out = std::bit_cast<float>(v);
  return Status::OK();
}

Status PayloadReader::ReadF64(double* out) {
  uint64_t v = 0;
  GANC_RETURN_NOT_OK(ReadU64(&v));
  *out = std::bit_cast<double>(v);
  return Status::OK();
}

Status PayloadReader::ReadString(std::string* out) {
  uint64_t len = 0;
  GANC_RETURN_NOT_OK(ReadU64(&len));
  GANC_RETURN_NOT_OK(Require(len));
  out->assign(bytes_.data() + pos_, len);
  pos_ += len;
  return Status::OK();
}

Status PayloadReader::SkipAlign(size_t alignment) {
  const size_t pad = (alignment - pos_ % alignment) % alignment;
  GANC_RETURN_NOT_OK(Require(pad));
  for (size_t i = 0; i < pad; ++i) {
    if (bytes_[pos_ + i] != '\0') {
      return Status::InvalidArgument("nonzero padding in section payload");
    }
  }
  pos_ += pad;
  return Status::OK();
}

Status PayloadReader::ReadVecF64(std::vector<double>* out) {
  uint64_t count = 0;
  GANC_RETURN_NOT_OK(ReadU64(&count));
  if (count > remaining() / sizeof(double)) {  // divide: no u64 wrap
    return Status::InvalidArgument("vector length exceeds section payload");
  }
  out->resize(count);
  if constexpr (kGancHostIsLittleEndian) {
    std::memcpy(out->data(), bytes_.data() + pos_, count * sizeof(double));
    pos_ += count * sizeof(double);
    return Status::OK();
  }
  for (uint64_t i = 0; i < count; ++i) GANC_RETURN_NOT_OK(ReadF64(&(*out)[i]));
  return Status::OK();
}

Status PayloadReader::ReadVecF32(std::vector<float>* out) {
  uint64_t count = 0;
  GANC_RETURN_NOT_OK(ReadU64(&count));
  if (count > remaining() / sizeof(float)) {  // divide: no u64 wrap
    return Status::InvalidArgument("vector length exceeds section payload");
  }
  out->resize(count);
  if constexpr (kGancHostIsLittleEndian) {
    std::memcpy(out->data(), bytes_.data() + pos_, count * sizeof(float));
    pos_ += count * sizeof(float);
    return Status::OK();
  }
  for (uint64_t i = 0; i < count; ++i) GANC_RETURN_NOT_OK(ReadF32(&(*out)[i]));
  return Status::OK();
}

Status PayloadReader::ReadVecI32(std::vector<int32_t>* out) {
  uint64_t count = 0;
  GANC_RETURN_NOT_OK(ReadU64(&count));
  if (count > remaining() / sizeof(int32_t)) {  // divide: no u64 wrap
    return Status::InvalidArgument("vector length exceeds section payload");
  }
  out->resize(count);
  if constexpr (kGancHostIsLittleEndian) {
    std::memcpy(out->data(), bytes_.data() + pos_, count * sizeof(int32_t));
    pos_ += count * sizeof(int32_t);
    return Status::OK();
  }
  for (uint64_t i = 0; i < count; ++i) GANC_RETURN_NOT_OK(ReadI32(&(*out)[i]));
  return Status::OK();
}

Status PayloadReader::ReadVecU64(std::vector<uint64_t>* out) {
  uint64_t count = 0;
  GANC_RETURN_NOT_OK(ReadU64(&count));
  if (count > remaining() / sizeof(uint64_t)) {  // divide: no u64 wrap
    return Status::InvalidArgument("vector length exceeds section payload");
  }
  out->resize(count);
  if constexpr (kGancHostIsLittleEndian) {
    std::memcpy(out->data(), bytes_.data() + pos_, count * sizeof(uint64_t));
    pos_ += count * sizeof(uint64_t);
    return Status::OK();
  }
  for (uint64_t i = 0; i < count; ++i) GANC_RETURN_NOT_OK(ReadU64(&(*out)[i]));
  return Status::OK();
}

Status PayloadReader::ReadVecI8(std::vector<int8_t>* out) {
  uint64_t count = 0;
  GANC_RETURN_NOT_OK(ReadU64(&count));
  if (count > remaining()) {
    return Status::InvalidArgument("vector length exceeds section payload");
  }
  out->resize(count);
  std::memcpy(out->data(), bytes_.data() + pos_, count);
  pos_ += count;
  return Status::OK();
}

Status PayloadReader::ExpectEnd() const {
  if (!AtEnd()) {
    return Status::InvalidArgument("trailing bytes in section payload");
  }
  return Status::OK();
}

namespace {

void PutU32(std::ostream& os, uint32_t v) {
  char b[4];
  for (int i = 0; i < 4; ++i) b[i] = static_cast<char>(v >> (8 * i));
  os.write(b, sizeof(b));
}

void PutU64(std::ostream& os, uint64_t v) {
  char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<char>(v >> (8 * i));
  os.write(b, sizeof(b));
}

uint32_t DecodeU32(const char* b) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(b[i])) << (8 * i);
  }
  return v;
}

uint64_t DecodeU64(const char* b) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(b[i])) << (8 * i);
  }
  return v;
}

constexpr size_t kHeaderBytes = 24;

// Parses and validates the fixed 24-byte header. Accepts every version
// the stream reader supports; mapped-specific restrictions are layered
// on in MappedArtifact::Open.
Result<ArtifactHeader> ParseHeaderBytes(const char* b) {
  if (std::memcmp(b, kGancArtifactMagic, sizeof(kGancArtifactMagic)) != 0) {
    return Status::InvalidArgument("bad artifact magic (not a GANC artifact)");
  }
  ArtifactHeader header;
  header.version = DecodeU32(b + 8);
  if (header.version < kMinSupportedReadVersion ||
      header.version > kGancFormatVersion) {
    return Status::InvalidArgument(
        "unsupported artifact format version " +
        std::to_string(header.version) + " (this build reads versions " +
        std::to_string(kMinSupportedReadVersion) + ".." +
        std::to_string(kGancFormatVersion) + ")");
  }
  header.kind = DecodeU32(b + 12);
  header.type_tag = DecodeU32(b + 16);
  // Reserved-must-be-zero keeps the field usable for future flags (old
  // readers reject artifacts that set bits they do not understand).
  if (DecodeU32(b + 20) != 0) {
    return Status::InvalidArgument("reserved artifact header field not zero");
  }
  return header;
}

}  // namespace

Status ArtifactWriter::WriteHeader(ArtifactKind kind, uint32_t type_tag) {
  os_.write(kGancArtifactMagic, sizeof(kGancArtifactMagic));
  PutU32(os_, kGancFormatVersion);
  PutU32(os_, static_cast<uint32_t>(kind));
  PutU32(os_, type_tag);
  PutU32(os_, 0);  // reserved
  if (!os_) return Status::IOError("artifact header write failed");
  pos_ = kHeaderBytes;
  return Status::OK();
}

Status ArtifactWriter::WriteSectionPrefix(uint32_t id, uint64_t size) {
  PutU32(os_, id);
  PutU64(os_, size);
  pos_ += 12;
  const uint64_t pad = PaddingFor(pos_);
  if (pad > 0) {
    static constexpr char kZeros[kSectionAlignment] = {};
    os_.write(kZeros, static_cast<std::streamsize>(pad));
    pos_ += pad;
  }
  if (!os_) return Status::IOError("artifact section write failed");
  return Status::OK();
}

Status ArtifactWriter::WriteSection(uint32_t id, const PayloadWriter& payload) {
  if (id == kEndSectionId) {
    return Status::InvalidArgument("section id 0 is reserved for the end marker");
  }
  if (in_section_) {
    return Status::FailedPrecondition("streaming section still open");
  }
  const std::string& buf = payload.buffer();
  GANC_RETURN_NOT_OK(WriteSectionPrefix(id, buf.size()));
  os_.write(buf.data(), static_cast<std::streamsize>(buf.size()));
  PutU64(os_, Fnv1aHash(buf.data(), buf.size()));
  pos_ += buf.size() + 8;
  if (!os_) return Status::IOError("artifact section write failed");
  return Status::OK();
}

Status ArtifactWriter::BeginSection(uint32_t id, uint64_t size) {
  if (id == kEndSectionId) {
    return Status::InvalidArgument("section id 0 is reserved for the end marker");
  }
  if (in_section_) {
    return Status::FailedPrecondition("streaming section still open");
  }
  if (size > kMaxSectionBytes) {
    return Status::InvalidArgument("implausible section size");
  }
  GANC_RETURN_NOT_OK(WriteSectionPrefix(id, size));
  in_section_ = true;
  declared_ = size;
  appended_ = 0;
  hasher_ = Fnv1aHasher();
  return Status::OK();
}

Status ArtifactWriter::AppendSectionBytes(const void* data, size_t size) {
  if (!in_section_) {
    return Status::FailedPrecondition("no streaming section open");
  }
  if (appended_ + size > declared_) {
    return Status::InvalidArgument("streaming section overflows declared size");
  }
  os_.write(static_cast<const char*>(data),
            static_cast<std::streamsize>(size));
  if (!os_) return Status::IOError("artifact section write failed");
  hasher_.Update(data, size);
  appended_ += size;
  pos_ += size;
  return Status::OK();
}

Status ArtifactWriter::EndSection() {
  if (!in_section_) {
    return Status::FailedPrecondition("no streaming section open");
  }
  if (appended_ != declared_) {
    return Status::InvalidArgument("streaming section size mismatch");
  }
  PutU64(os_, hasher_.digest());
  pos_ += 8;
  in_section_ = false;
  if (!os_) return Status::IOError("artifact section write failed");
  return Status::OK();
}

Status ArtifactWriter::Finish() {
  if (in_section_) {
    return Status::FailedPrecondition("streaming section still open");
  }
  PutU32(os_, kEndSectionId);
  PutU64(os_, 0);
  PutU64(os_, Fnv1aHash(nullptr, 0));
  pos_ += 20;
  os_.flush();
  if (!os_) return Status::IOError("artifact end marker write failed");
  return Status::OK();
}

Result<MappedArtifact> MappedArtifact::Open(const std::string& path) {
  Result<MmapRegion> region = MmapRegion::Map(path);
  if (!region.ok()) return region.status();
  MappedArtifact artifact;
  artifact.region_ = std::move(region).value();
  artifact.path_ = path;
  if (artifact.region_.size() < kHeaderBytes) {
    return Status::IOError("truncated artifact: magic");
  }
  Result<ArtifactHeader> header = ParseHeaderBytes(artifact.region_.data());
  if (!header.ok()) return header.status();
  if (header->version < 3) {
    // Pre-v3 artifacts carry no alignment guarantee; the caller falls
    // back to the (still fully supported) stream reader.
    return Status::FailedPrecondition(
        "artifact format version " + std::to_string(header->version) +
        " predates the mmap path; use the stream reader");
  }
  artifact.header_ = *header;
  return artifact;
}

Result<std::shared_ptr<const MappedArtifact>> OpenMappedArtifact(
    const std::string& path) {
  Result<MappedArtifact> artifact = MappedArtifact::Open(path);
  if (!artifact.ok()) return artifact.status();
  return std::shared_ptr<const MappedArtifact>(
      std::make_shared<MappedArtifact>(std::move(artifact).value()));
}

bool IsMmapFallback(const Status& status) {
  return status.code() == StatusCode::kNotImplemented ||
         status.code() == StatusCode::kFailedPrecondition;
}

ArtifactReader::ArtifactReader(std::shared_ptr<const MappedArtifact> mapped)
    : mapped_(std::move(mapped)) {}

Status ArtifactReader::GetU32(uint32_t* out, const char* what) {
  if (mapped_ != nullptr) {
    const std::string_view bytes = mapped_->bytes();
    if (4 > bytes.size() - pos_) {
      return Status::IOError(std::string("truncated artifact: ") + what);
    }
    *out = DecodeU32(bytes.data() + pos_);
    pos_ += 4;
    return Status::OK();
  }
  char b[4];
  is_->read(b, sizeof(b));
  if (!*is_) return Status::IOError(std::string("truncated artifact: ") + what);
  *out = DecodeU32(b);
  pos_ += 4;
  return Status::OK();
}

Status ArtifactReader::GetU64(uint64_t* out, const char* what) {
  if (mapped_ != nullptr) {
    const std::string_view bytes = mapped_->bytes();
    if (8 > bytes.size() - pos_) {
      return Status::IOError(std::string("truncated artifact: ") + what);
    }
    *out = DecodeU64(bytes.data() + pos_);
    pos_ += 8;
    return Status::OK();
  }
  char b[8];
  is_->read(b, sizeof(b));
  if (!*is_) return Status::IOError(std::string("truncated artifact: ") + what);
  *out = DecodeU64(b);
  pos_ += 8;
  return Status::OK();
}

Result<ArtifactHeader> ArtifactReader::ReadHeader() {
  if (mapped_ != nullptr) {
    // MappedArtifact::Open already validated the header.
    header_ = mapped_->header();
    header_read_ = true;
    pos_ = kHeaderBytes;
    return header_;
  }
  char b[kHeaderBytes];
  is_->read(b, sizeof(b));
  if (!*is_) return Status::IOError("truncated artifact: magic");
  Result<ArtifactHeader> header = ParseHeaderBytes(b);
  if (!header.ok()) return header.status();
  header_ = *header;
  header_read_ = true;
  pos_ += kHeaderBytes;
  return header_;
}

Result<ArtifactHeader> ArtifactReader::Header() {
  if (header_read_) return header_;
  return ReadHeader();
}

Status ArtifactReader::SkipPadding() {
  if (header_.version < 3) return Status::OK();
  const uint64_t pad = PaddingFor(pos_);
  if (pad == 0) return Status::OK();
  if (mapped_ != nullptr) {
    const std::string_view bytes = mapped_->bytes();
    if (pad > bytes.size() - pos_) {
      return Status::IOError("truncated artifact: section padding");
    }
    for (uint64_t i = 0; i < pad; ++i) {
      if (bytes[pos_ + i] != '\0') {
        return Status::InvalidArgument("nonzero section padding");
      }
    }
    pos_ += pad;
    return Status::OK();
  }
  char b[kSectionAlignment];
  is_->read(b, static_cast<std::streamsize>(pad));
  if (!*is_) return Status::IOError("truncated artifact: section padding");
  for (uint64_t i = 0; i < pad; ++i) {
    if (b[i] != '\0') {
      return Status::InvalidArgument("nonzero section padding");
    }
  }
  pos_ += pad;
  return Status::OK();
}

Result<ArtifactReader::Section> ArtifactReader::ReadSection() {
  if (!header_read_) {
    return Status::FailedPrecondition(
        "artifact header must be read before sections");
  }
  Section section;
  section.is_mapped = mapped_ != nullptr;
  GANC_RETURN_NOT_OK(GetU32(&section.id, "section id"));
  uint64_t size = 0;
  GANC_RETURN_NOT_OK(GetU64(&size, "section size"));
  if (section.id == kEndSectionId && size != 0) {
    return Status::InvalidArgument("end marker with non-zero payload");
  }
  if (size > kMaxSectionBytes) {
    return Status::InvalidArgument("implausible section size");
  }
  // The end marker is never padded (there is no payload to align).
  if (section.id != kEndSectionId) {
    GANC_RETURN_NOT_OK(SkipPadding());
  }
  if (mapped_ != nullptr) {
    const std::string_view bytes = mapped_->bytes();
    if (size > bytes.size() - pos_) {
      return Status::IOError("truncated artifact: section payload");
    }
    section.view_ = bytes.substr(pos_, size);
    pos_ += size;
    uint64_t checksum = 0;
    GANC_RETURN_NOT_OK(GetU64(&checksum, "section checksum"));
    // Out-of-core policy: hashing a huge mapped payload would fault in
    // every page up front, so only small sections (metadata, offsets)
    // are verified here. Bulk sections stay bounds-checked; the stream
    // reader remains the fully validating path.
    if (size <= kMappedChecksumVerifyBytes &&
        checksum != Fnv1aHash(section.view_.data(), section.view_.size())) {
      return Status::InvalidArgument(
          "section " + std::to_string(section.id) + " checksum mismatch");
    }
    return section;
  }
  // Read in bounded chunks so a truncated file with a forged huge size
  // fails after one short read instead of allocating the claimed size
  // up front.
  constexpr uint64_t kReadChunk = 1 << 20;
  section.owned_.reserve(
      static_cast<size_t>(std::min<uint64_t>(size, kReadChunk)));
  std::string chunk;
  for (uint64_t left = size; left > 0;) {
    const size_t n = static_cast<size_t>(std::min(left, kReadChunk));
    chunk.resize(n);
    is_->read(chunk.data(), static_cast<std::streamsize>(n));
    if (!*is_) return Status::IOError("truncated artifact: section payload");
    section.owned_.append(chunk, 0, n);
    left -= n;
  }
  pos_ += size;
  uint64_t checksum = 0;
  GANC_RETURN_NOT_OK(GetU64(&checksum, "section checksum"));
  if (checksum != Fnv1aHash(section.owned_.data(), section.owned_.size())) {
    return Status::InvalidArgument(
        "section " + std::to_string(section.id) + " checksum mismatch");
  }
  return section;
}

Result<ArtifactReader::Section> ArtifactReader::ReadSectionExpect(uint32_t id) {
  Result<Section> section = ReadSection();
  if (!section.ok()) return section.status();
  if (section->id != id) {
    return Status::InvalidArgument("expected artifact section " +
                                   std::to_string(id) + ", found " +
                                   std::to_string(section->id));
  }
  return section;
}

Status WriteArtifactFile(const std::string& path,
                         const std::function<Status(std::ostream&)>& write) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) return Status::IOError("cannot open " + path + " for writing");
  GANC_RETURN_NOT_OK(write(os));
  os.close();
  if (!os) return Status::IOError("write failed for " + path);
  return Status::OK();
}

Status ExpectEndOfArtifact(ArtifactReader& r) {
  Result<ArtifactReader::Section> section = r.ReadSection();
  if (!section.ok()) return section.status();
  if (section->id != kEndSectionId) {
    return Status::InvalidArgument("unexpected extra artifact section " +
                                   std::to_string(section->id));
  }
  return Status::OK();
}

Status ExpectArtifact(const ArtifactHeader& header, ArtifactKind kind,
                      uint32_t type_tag) {
  if (header.kind != static_cast<uint32_t>(kind)) {
    return Status::InvalidArgument(
        "artifact kind mismatch: file holds kind " +
        std::to_string(header.kind) + ", expected " +
        std::to_string(static_cast<uint32_t>(kind)));
  }
  if (header.type_tag != type_tag) {
    return Status::InvalidArgument(
        "artifact type mismatch: file holds type " +
        std::to_string(header.type_tag) + ", expected " +
        std::to_string(type_tag));
  }
  return Status::OK();
}

}  // namespace ganc
