// Internal: shared kernel templates + per-variant accessors for the
// factor kernel TUs (factor_kernels*.cc). Not part of the public API.
//
// The SIMD variants share one template per precision, parameterized on
// a traits struct that maps 8 user lanes onto the ISA's registers. The
// templates are instantiated only inside the variant TUs, which are the
// only TUs compiled with the matching ISA flags (see CMakeLists.txt) —
// this header itself contains no intrinsics.
//
// Bit-identity contract (vs the scalar reference kernel):
//   fp64/fp32  each SIMD lane replays one user's scalar accumulation
//              sequence exactly: same bias init, then one mul+add per
//              factor in factor order. The kernel TUs compile with
//              -ffp-contract=off so no variant fuses what the scalar
//              path rounds twice.
//   int8       the q-by-q dot is integer (exact, order-free); the only
//              float math is the shared DequantDot combine, evaluated
//              by every variant through the same inline expression.

#ifndef GANC_RECOMMENDER_FACTOR_KERNELS_IMPL_H_
#define GANC_RECOMMENDER_FACTOR_KERNELS_IMPL_H_

#include <algorithm>
#include <cstdint>
#include <span>

#include "recommender/factor_kernels.h"
#include "util/aligned.h"

namespace ganc {
namespace internal {

// Per-variant tables, one per TU. The accessors exist on every build;
// when a TU is compiled without its ISA it returns the scalar table and
// reports Compiled() == false (dispatch then never selects it).
const KernelOps& ScalarKernelOps();
const KernelOps& Sse2KernelOps();
const KernelOps& Avx2KernelOps();
const KernelOps& Avx512KernelOps();
bool Sse2KernelCompiled();
bool Avx2KernelCompiled();
bool Avx512KernelCompiled();

inline constexpr size_t kU = kFactorKernelUserBlock;

// Pack scratch, reused across calls per thread; 64-byte aligned so each
// packed row starts on a vector-load boundary (fp64 rows are 64 bytes,
// fp32 and int16-pair rows 32 bytes).
inline AlignedVector<double>& PackScratchF64() {
  thread_local AlignedVector<double> s;
  return s;
}
inline AlignedVector<float>& PackScratchF32() {
  thread_local AlignedVector<float> s;
  return s;
}
inline AlignedVector<int16_t>& PackScratchI16() {
  thread_local AlignedVector<int16_t> s;
  return s;
}

// The bias-term initialization shared by every int8 kernel (and, in its
// float form, every fp32 kernel): compile-time folded like the fp64
// reference so each combo keeps the scalar path's evaluation order.
template <bool kHasItemBias, bool kHasUserBase>
inline double BiasTermF64(double base, double bi) {
  if constexpr (kHasItemBias && kHasUserBase) return base + bi;
  if constexpr (kHasItemBias) return bi;
  if constexpr (kHasUserBase) return base;
  return 0.0;
}

template <bool kHasItemBias, bool kHasUserBase>
inline float BiasTermF32(float base, float bi) {
  if constexpr (kHasItemBias && kHasUserBase) return base + bi;
  if constexpr (kHasItemBias) return bi;
  if constexpr (kHasUserBase) return base;
  return 0.0f;
}

// ---------------------------------------------------------------------------
// fp64: vectorized across the 8 user lanes. The block's user rows are
// packed transposed ([factor][lane], a pure copy) so the inner loop is
// one aligned lane-vector load + broadcast q_i[f] + mul + add — per
// lane, exactly the scalar kernel's acc[b] += pu[b][f] * qf.

template <typename T, bool kHasItemBias, bool kHasUserBase>
void BatchF64(const FactorView& v, std::span<const UserId> users,
              std::span<double> out) {
  const size_t g = v.num_factors;
  const size_t ni = static_cast<size_t>(v.num_items);
  const size_t batch = users.size();
  AlignedVector<double>& pack = PackScratchF64();
  pack.resize(g * kU);
  alignas(64) double lanes[kU];
  alignas(64) double base[kU];

  for (size_t b0 = 0; b0 < batch; b0 += kU) {
    const size_t bn = std::min(kU, batch - b0);
    double* o[kU];
    for (size_t b = 0; b < kU; ++b) {
      const size_t lane = b < bn ? b : 0;
      const size_t ub = static_cast<size_t>(users[b0 + lane]);
      const double* pu = v.user_factors + ub * g;
      for (size_t f = 0; f < g; ++f) pack[f * kU + b] = pu[f];
      o[b] = out.data() + (b0 + lane) * ni;
      base[b] = kHasUserBase ? v.user_base[ub] : 0.0;
    }
    typename T::F64 basev[T::kRegsF64];
    if constexpr (kHasUserBase) {
      for (size_t r = 0; r < T::kRegsF64; ++r) {
        basev[r] = T::LoadF64(base + r * T::kLanesF64);
      }
    }
    for (size_t i = 0; i < ni; ++i) {
      const double* qi = v.item_factors + i * g;
      typename T::F64 acc[T::kRegsF64];
      if constexpr (kHasItemBias && kHasUserBase) {
        const typename T::F64 bi = T::BroadcastF64(v.item_bias[i]);
        for (size_t r = 0; r < T::kRegsF64; ++r) acc[r] = T::AddF64(basev[r], bi);
      } else if constexpr (kHasItemBias) {
        const typename T::F64 bi = T::BroadcastF64(v.item_bias[i]);
        for (size_t r = 0; r < T::kRegsF64; ++r) acc[r] = bi;
      } else if constexpr (kHasUserBase) {
        for (size_t r = 0; r < T::kRegsF64; ++r) acc[r] = basev[r];
      } else {
        for (size_t r = 0; r < T::kRegsF64; ++r) acc[r] = T::ZeroF64();
      }
      for (size_t f = 0; f < g; ++f) {
        const typename T::F64 qf = T::BroadcastF64(qi[f]);
        const double* pf = pack.data() + f * kU;
        for (size_t r = 0; r < T::kRegsF64; ++r) {
          acc[r] = T::MulAddF64(acc[r], T::LoadF64(pf + r * T::kLanesF64), qf);
        }
      }
      for (size_t r = 0; r < T::kRegsF64; ++r) {
        T::StoreF64(lanes + r * T::kLanesF64, acc[r]);
      }
      for (size_t b = 0; b < bn; ++b) o[b][i] = lanes[b];
    }
  }
}

// ---------------------------------------------------------------------------
// fp32: same shape as fp64 with float lanes; biases narrow to float
// once (per block for user bases, per item for item biases) and the
// final lane value widens back to double for the output row.

template <typename T, bool kHasItemBias, bool kHasUserBase>
void BatchF32(const FactorView& v, std::span<const UserId> users,
              std::span<double> out) {
  const size_t g = v.num_factors;
  const size_t ni = static_cast<size_t>(v.num_items);
  const size_t batch = users.size();
  AlignedVector<float>& pack = PackScratchF32();
  pack.resize(g * kU);
  alignas(64) float lanes[kU];
  alignas(64) float base[kU];

  for (size_t b0 = 0; b0 < batch; b0 += kU) {
    const size_t bn = std::min(kU, batch - b0);
    double* o[kU];
    for (size_t b = 0; b < kU; ++b) {
      const size_t lane = b < bn ? b : 0;
      const size_t ub = static_cast<size_t>(users[b0 + lane]);
      const float* pu = v.user_factors_f32 + ub * g;
      for (size_t f = 0; f < g; ++f) pack[f * kU + b] = pu[f];
      o[b] = out.data() + (b0 + lane) * ni;
      base[b] = kHasUserBase ? static_cast<float>(v.user_base[ub]) : 0.0f;
    }
    typename T::F32 basev[T::kRegsF32];
    if constexpr (kHasUserBase) {
      for (size_t r = 0; r < T::kRegsF32; ++r) {
        basev[r] = T::LoadF32(base + r * T::kLanesF32);
      }
    }
    for (size_t i = 0; i < ni; ++i) {
      const float* qi = v.item_factors_f32 + i * g;
      typename T::F32 acc[T::kRegsF32];
      if constexpr (kHasItemBias && kHasUserBase) {
        const typename T::F32 bi =
            T::BroadcastF32(static_cast<float>(v.item_bias[i]));
        for (size_t r = 0; r < T::kRegsF32; ++r) acc[r] = T::AddF32(basev[r], bi);
      } else if constexpr (kHasItemBias) {
        const typename T::F32 bi =
            T::BroadcastF32(static_cast<float>(v.item_bias[i]));
        for (size_t r = 0; r < T::kRegsF32; ++r) acc[r] = bi;
      } else if constexpr (kHasUserBase) {
        for (size_t r = 0; r < T::kRegsF32; ++r) acc[r] = basev[r];
      } else {
        for (size_t r = 0; r < T::kRegsF32; ++r) acc[r] = T::ZeroF32();
      }
      for (size_t f = 0; f < g; ++f) {
        const typename T::F32 qf = T::BroadcastF32(qi[f]);
        const float* pf = pack.data() + f * kU;
        for (size_t r = 0; r < T::kRegsF32; ++r) {
          acc[r] = T::MulAddF32(acc[r], T::LoadF32(pf + r * T::kLanesF32), qf);
        }
      }
      for (size_t r = 0; r < T::kRegsF32; ++r) {
        T::StoreF32(lanes + r * T::kLanesF32, acc[r]);
      }
      for (size_t b = 0; b < bn; ++b) {
        o[b][i] = static_cast<double>(lanes[b]);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// int8: the block's user rows are packed as sign-extended int16 factor
// *pairs* ([pair][lane][2]) so the inner loop is one broadcast of the
// item's (q[2p], q[2p+1]) pair + one multiply-add-adjacent (madd) into
// int32 accumulators. Odd g pads the trailing pair with zero on both
// sides, which contributes exactly 0. The integer dot is exact; the
// double combine is the shared DequantDot expression.

template <typename T, bool kHasItemBias, bool kHasUserBase>
void BatchI8(const FactorView& v, std::span<const UserId> users,
             std::span<double> out) {
  const size_t g = v.num_factors;
  const size_t ni = static_cast<size_t>(v.num_items);
  const size_t batch = users.size();
  const size_t npairs = (g + 1) / 2;
  AlignedVector<int16_t>& pack = PackScratchI16();
  pack.resize(npairs * kU * 2);
  alignas(64) int32_t dlanes[kU];

  for (size_t b0 = 0; b0 < batch; b0 += kU) {
    const size_t bn = std::min(kU, batch - b0);
    double* o[kU];
    double base[kU];
    float su[kU];
    float cu[kU];
    int32_t sp[kU];
    for (size_t b = 0; b < kU; ++b) {
      const size_t lane = b < bn ? b : 0;
      const size_t ub = static_cast<size_t>(users[b0 + lane]);
      const int8_t* pq = v.user_q8 + ub * g;
      for (size_t p = 0; p < npairs; ++p) {
        pack[p * 2 * kU + 2 * b] = pq[2 * p];
        pack[p * 2 * kU + 2 * b + 1] =
            (2 * p + 1 < g) ? static_cast<int16_t>(pq[2 * p + 1]) : int16_t{0};
      }
      o[b] = out.data() + (b0 + lane) * ni;
      base[b] = kHasUserBase ? v.user_base[ub] : 0.0;
      su[b] = v.user_scale[ub];
      cu[b] = v.user_center[ub];
      sp[b] = v.user_qsum[ub];
    }
    for (size_t i = 0; i < ni; ++i) {
      const int8_t* qq = v.item_q8 + i * g;
      typename T::I32 acc[T::kRegsI32];
      for (size_t r = 0; r < T::kRegsI32; ++r) acc[r] = T::ZeroI32();
      for (size_t p = 0; p < npairs; ++p) {
        const int16_t q0 = qq[2 * p];
        const int16_t q1 = (2 * p + 1 < g) ? qq[2 * p + 1] : int16_t{0};
        const int32_t pair = static_cast<int32_t>(
            static_cast<uint32_t>(static_cast<uint16_t>(q0)) |
            (static_cast<uint32_t>(static_cast<uint16_t>(q1)) << 16));
        const typename T::I32 bc = T::BroadcastPair(pair);
        const int16_t* row = pack.data() + p * 2 * kU;
        for (size_t r = 0; r < T::kRegsI32; ++r) {
          acc[r] = T::MaddAcc(acc[r], row + r * T::kI16PerReg, bc);
        }
      }
      for (size_t r = 0; r < T::kRegsI32; ++r) {
        T::StoreI32(dlanes + r * (T::kI16PerReg / 2), acc[r]);
      }
      const double bi = kHasItemBias ? v.item_bias[i] : 0.0;
      const float si = v.item_scale[i];
      const float ci = v.item_center[i];
      const int32_t sq = v.item_qsum[i];
      for (size_t b = 0; b < bn; ++b) {
        o[b][i] = BiasTermF64<kHasItemBias, kHasUserBase>(base[b], bi) +
                  DequantDot(g, su[b], cu[b], sp[b], si, ci, sq, dlanes[b]);
      }
    }
  }
}

// Folds the runtime bias pointers into the compile-time kernel combos,
// mirroring the scalar reference's dispatch.
template <typename T>
void DispatchF64(const FactorView& v, std::span<const UserId> users,
                 std::span<double> out) {
  if (v.item_bias) {
    if (v.user_base) return BatchF64<T, true, true>(v, users, out);
    return BatchF64<T, true, false>(v, users, out);
  }
  if (v.user_base) return BatchF64<T, false, true>(v, users, out);
  return BatchF64<T, false, false>(v, users, out);
}

template <typename T>
void DispatchF32(const FactorView& v, std::span<const UserId> users,
                 std::span<double> out) {
  if (v.item_bias) {
    if (v.user_base) return BatchF32<T, true, true>(v, users, out);
    return BatchF32<T, true, false>(v, users, out);
  }
  if (v.user_base) return BatchF32<T, false, true>(v, users, out);
  return BatchF32<T, false, false>(v, users, out);
}

template <typename T>
void DispatchI8(const FactorView& v, std::span<const UserId> users,
                std::span<double> out) {
  if (v.item_bias) {
    if (v.user_base) return BatchI8<T, true, true>(v, users, out);
    return BatchI8<T, true, false>(v, users, out);
  }
  if (v.user_base) return BatchI8<T, false, true>(v, users, out);
  return BatchI8<T, false, false>(v, users, out);
}

}  // namespace internal
}  // namespace ganc

#endif  // GANC_RECOMMENDER_FACTOR_KERNELS_IMPL_H_
