#include "eval/metrics.h"

#include <cmath>

#include <gtest/gtest.h>

namespace ganc {
namespace {

// Train: item 0 popular (head), items 1-3 tail. Test: user 0 relevantly
// rated items 1 and 2; user 1 relevantly rated item 0.
struct Fixture {
  RatingDataset train;
  RatingDataset test;

  Fixture() {
    RatingDatasetBuilder tb(10, 4);
    for (UserId u = 0; u < 8; ++u) EXPECT_TRUE(tb.Add(u, 0, 4.0f).ok());
    EXPECT_TRUE(tb.Add(8, 1, 4.0f).ok());
    EXPECT_TRUE(tb.Add(9, 2, 4.0f).ok());
    auto t = std::move(tb).Build();
    EXPECT_TRUE(t.ok());
    train = std::move(t).value();

    RatingDatasetBuilder sb(10, 4);
    EXPECT_TRUE(sb.Add(0, 1, 5.0f).ok());
    EXPECT_TRUE(sb.Add(0, 2, 4.0f).ok());
    EXPECT_TRUE(sb.Add(0, 3, 2.0f).ok());  // not relevant (< 4)
    EXPECT_TRUE(sb.Add(1, 0, 5.0f).ok());
    auto s = std::move(sb).Build();
    EXPECT_TRUE(s.ok());
    test = std::move(s).value();
  }
};

std::vector<std::vector<ItemId>> EmptyLists(int users) {
  return std::vector<std::vector<ItemId>>(static_cast<size_t>(users));
}

TEST(MetricsTest, PerfectHitForOneUser) {
  Fixture f;
  auto topn = EmptyLists(10);
  topn[0] = {1, 2};  // both relevant for user 0
  const MetricsConfig cfg{.top_n = 2};
  const auto m = EvaluateTopN(f.train, f.test, topn, cfg);
  // Precision: 2 hits / (2 * 10 users) = 0.1.
  EXPECT_NEAR(m.precision, 0.1, 1e-12);
  // Recall: user 0 got 2/2 = 1.0; averaged over 10 users = 0.1.
  EXPECT_NEAR(m.recall, 0.1, 1e-12);
  // F = P*R/(P+R) = 0.01/0.2 = 0.05.
  EXPECT_NEAR(m.f_measure, 0.05, 1e-12);
}

TEST(MetricsTest, MissesScoreZero) {
  Fixture f;
  auto topn = EmptyLists(10);
  topn[0] = {3};  // rated 2.0 in test -> not relevant
  const MetricsConfig cfg{.top_n = 1};
  const auto m = EvaluateTopN(f.train, f.test, topn, cfg);
  EXPECT_DOUBLE_EQ(m.precision, 0.0);
  EXPECT_DOUBLE_EQ(m.recall, 0.0);
  EXPECT_DOUBLE_EQ(m.f_measure, 0.0);
}

TEST(MetricsTest, LtAccuracyCountsTailItems) {
  Fixture f;
  auto topn = EmptyLists(10);
  topn[0] = {0, 1};  // head + tail
  topn[1] = {2, 3};  // tail + tail
  const MetricsConfig cfg{.top_n = 2};
  const auto m = EvaluateTopN(f.train, f.test, topn, cfg);
  // 3 tail recommendations / (2 * 10).
  EXPECT_NEAR(m.lt_accuracy, 3.0 / 20.0, 1e-12);
}

TEST(MetricsTest, CoverageCountsDistinctItems) {
  Fixture f;
  auto topn = EmptyLists(10);
  topn[0] = {0, 1};
  topn[1] = {0, 2};
  const MetricsConfig cfg{.top_n = 2};
  const auto m = EvaluateTopN(f.train, f.test, topn, cfg);
  EXPECT_NEAR(m.coverage, 3.0 / 4.0, 1e-12);
}

TEST(MetricsTest, GiniZeroWhenUniform) {
  Fixture f;
  auto topn = EmptyLists(10);
  topn[0] = {0, 1};
  topn[1] = {2, 3};
  const MetricsConfig cfg{.top_n = 2};
  const auto m = EvaluateTopN(f.train, f.test, topn, cfg);
  EXPECT_NEAR(m.gini, 0.0, 1e-12);  // every item recommended exactly once
}

TEST(MetricsTest, GiniHighWhenConcentrated) {
  Fixture f;
  auto topn = EmptyLists(10);
  for (int u = 0; u < 10; ++u) topn[static_cast<size_t>(u)] = {0};
  const MetricsConfig cfg{.top_n = 1};
  const auto m = EvaluateTopN(f.train, f.test, topn, cfg);
  EXPECT_NEAR(m.gini, 0.75, 1e-12);  // all mass on 1 of 4 items
}

TEST(MetricsTest, StratRecallWeightsRareHits) {
  Fixture f;
  // User 0's relevant items: 1 (pop 1) and 2 (pop 1). User 1's: 0 (pop 8).
  // Denominator = 2 * 1 + (1/8)^0.5.
  const double denom = 2.0 + std::pow(1.0 / 8.0, 0.5);
  {
    auto topn = EmptyLists(10);
    topn[0] = {1};  // rare hit
    const MetricsConfig cfg{.top_n = 1};
    const auto m = EvaluateTopN(f.train, f.test, topn, cfg);
    EXPECT_NEAR(m.strat_recall, 1.0 / denom, 1e-9);
  }
  {
    auto topn = EmptyLists(10);
    topn[1] = {0};  // popular hit counts far less
    const MetricsConfig cfg{.top_n = 1};
    const auto m = EvaluateTopN(f.train, f.test, topn, cfg);
    EXPECT_NEAR(m.strat_recall, std::pow(1.0 / 8.0, 0.5) / denom, 1e-9);
  }
}

TEST(MetricsTest, NdcgOneForPerfectRanking) {
  Fixture f;
  auto topn = EmptyLists(10);
  topn[0] = {1, 2};
  const MetricsConfig cfg{.top_n = 2};
  const auto m = EvaluateTopN(f.train, f.test, topn, cfg);
  // Users with relevant items: user 0 (ndcg 1) and user 1 (ndcg 0).
  EXPECT_NEAR(m.ndcg, 0.5, 1e-12);
}

TEST(MetricsTest, ListsTruncatedToN) {
  Fixture f;
  auto topn = EmptyLists(10);
  topn[0] = {3, 1, 2};  // only first item counts at N=1
  const MetricsConfig cfg{.top_n = 1};
  const auto m = EvaluateTopN(f.train, f.test, topn, cfg);
  EXPECT_DOUBLE_EQ(m.precision, 0.0);  // item 3 is not relevant
}

TEST(MetricsTest, RelevanceThresholdConfigurable) {
  Fixture f;
  auto topn = EmptyLists(10);
  topn[0] = {3};  // rated 2.0
  MetricsConfig cfg{.top_n = 1};
  cfg.relevance_threshold = 2.0;
  const auto m = EvaluateTopN(f.train, f.test, topn, cfg);
  EXPECT_GT(m.precision, 0.0);
}

TEST(MetricsRowTest, FormatsFiveColumns) {
  MetricsReport r;
  r.f_measure = 0.12345;
  const auto row = MetricsRow(r, 3);
  ASSERT_EQ(row.size(), 5u);
  EXPECT_EQ(row[0], "0.123");
}

TEST(AverageRanksTest, TableIVRanking) {
  MetricsReport a, b;
  a.f_measure = 0.2;   // rank 1
  b.f_measure = 0.1;   // rank 2
  a.strat_recall = 0.1;
  b.strat_recall = 0.1;  // tie -> both rank 1
  a.lt_accuracy = 0.3;
  b.lt_accuracy = 0.5;  // b rank 1
  a.coverage = 0.4;
  b.coverage = 0.6;     // b rank 1
  a.gini = 0.9;
  b.gini = 0.8;         // lower wins -> b rank 1
  const auto ranks = AverageRanks({a, b});
  EXPECT_NEAR(ranks[0], (1 + 1 + 2 + 2 + 2) / 5.0, 1e-12);
  EXPECT_NEAR(ranks[1], (2 + 1 + 1 + 1 + 1) / 5.0, 1e-12);
}

TEST(MetricsTest, EmptyTestSetSafe) {
  Fixture f;
  RatingDatasetBuilder b(10, 4);
  auto empty = std::move(b).Build();
  ASSERT_TRUE(empty.ok());
  auto topn = EmptyLists(10);
  topn[0] = {0};
  const MetricsConfig cfg{.top_n = 1};
  const auto m = EvaluateTopN(f.train, *empty, topn, cfg);
  EXPECT_DOUBLE_EQ(m.precision, 0.0);
  EXPECT_DOUBLE_EQ(m.strat_recall, 0.0);
  EXPECT_DOUBLE_EQ(m.ndcg, 0.0);
  EXPECT_GT(m.coverage, 0.0);
}

}  // namespace
}  // namespace ganc
