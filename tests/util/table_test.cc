#include "util/table.h"

#include <gtest/gtest.h>

namespace ganc {
namespace {

TEST(TablePrinterTest, RendersHeaderAndRows) {
  TablePrinter t({"Alg", "F@5"});
  t.AddRow({"Pop", "0.07"});
  const std::string s = t.ToString();
  EXPECT_NE(s.find("Alg"), std::string::npos);
  EXPECT_NE(s.find("Pop"), std::string::npos);
  EXPECT_NE(s.find("0.07"), std::string::npos);
}

TEST(TablePrinterTest, PadsShortRows) {
  TablePrinter t({"a", "b", "c"});
  t.AddRow({"x"});
  const std::string s = t.ToString();
  // Three lines: header, separator, row; row has all three column slots.
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 3);
}

TEST(TablePrinterTest, ColumnsAligned) {
  TablePrinter t({"name", "v"});
  t.AddRow({"short", "1"});
  t.AddRow({"a-much-longer-name", "2"});
  const std::string s = t.ToString();
  // Every line has the same length when columns are padded.
  size_t prev = std::string::npos;
  size_t start = 0;
  while (start < s.size()) {
    const size_t end = s.find('\n', start);
    const size_t len = end - start;
    if (prev != std::string::npos) EXPECT_EQ(len, prev);
    prev = len;
    start = end + 1;
  }
}

TEST(TablePrinterTest, EmptyTableStillRendersHeader) {
  TablePrinter t({"only"});
  const std::string s = t.ToString();
  EXPECT_NE(s.find("only"), std::string::npos);
}

}  // namespace
}  // namespace ganc
