// ganc_cli: train, persist, and serve the GANC pipeline from the
// command line.
//
// Subcommands (no subcommand = `recommend`, the classic end-to-end run):
//
//   ganc_cli cache-dataset --ratings-file=ratings.csv --out=ratings.gdc
//       Parse a text ratings file (or synthesize a preset) once and
//       write the binary CSR dataset cache; later runs load it with
//       --dataset-cache instead of re-parsing.
//
//   ganc_cli train --dataset-cache=ratings.gdc --arec=psvd100 \
//            --save-model=psvd100.gam [--save-pipeline=pipeline.gap]
//       Fit the accuracy recommender on the train split and save the
//       model artifact; optionally learn theta and save the whole
//       pipeline state.
//
//   ganc_cli recommend --dataset-cache=ratings.gdc \
//            --load-model=psvd100.gam --output=topn.bin
//       Skip training: load the artifact, run GANC, print the Table III
//       metric bundle. With identical data/seed flags the output is
//       byte-identical to a train-and-recommend run (CI pins this).
//
// Classic one-shot runs still work:
//
//   ganc_cli --dataset=ml100k --arec=psvd100 --theta=g --crec=dyn
//            --top-n=5 --sample-size=500 --seed=42

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <numeric>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/ganc.h"
#include "core/pipeline.h"
#include "core/preference.h"
#include "data/loader.h"
#include "data/longtail.h"
#include "data/split.h"
#include "data/synthetic.h"
#include "eval/runner.h"
#include "recommender/bpr.h"
#include "recommender/cofirank.h"
#include "recommender/factor_kernels.h"
#include "recommender/factor_view.h"
#include "recommender/item_knn.h"
#include "recommender/model_io.h"
#include "recommender/pop.h"
#include "recommender/psvd.h"
#include "recommender/random_rec.h"
#include "recommender/random_walk.h"
#include "recommender/rsvd.h"
#include "recommender/user_knn.h"
#include "serve/protocol.h"
#include "serve/recommendation_service.h"
#include "serve/service_shard.h"
#include "serve/session_overlay.h"
#include "serve/shard_router.h"
#include "serve/topn_store.h"
#include "util/binary_io.h"
#include "util/flags.h"
#include "util/metrics.h"
#include "util/serialize.h"
#include "util/stats.h"
#include "util/thread_pool.h"
#include "util/logging.h"
#include "util/timer.h"
#include "util/trace.h"

using namespace ganc;

namespace {

void Usage() {
  std::fprintf(
      stderr,
      "usage: ganc_cli [train|recommend|cache-dataset|synth|kernels] "
      "[flags]\n"
      "\n"
      "data source (all commands):\n"
      "    [--dataset=ml100k|ml1m|ml10m|mt200k|netflix|tiny]\n"
      "    [--ratings-file=PATH --delimiter=, --skip-header]\n"
      "    [--dataset-cache=PATH]   (binary cache from `cache-dataset`)\n"
      "    [--kappa=0.5] [--seed=42] [--mmap=true]\n"
      "    --mmap controls zero-copy file mapping of v3 artifacts\n"
      "    (dataset caches and model loads); --kappa=1 serves the whole\n"
      "    corpus as the train split without a materializing re-split.\n"
      "\n"
      "cache-dataset:  --out=PATH  (writes the binary dataset cache)\n"
      "\n"
      "synth:          --out=PATH --users=N [--items=N]\n"
      "                [--mean-activity=24] [--seed=1] [--threads=1]\n"
      "                Streams a power-law scale corpus into a v3 dataset\n"
      "                cache with O(users) memory; byte-identical output\n"
      "                for any --threads value.\n"
      "\n"
      "train:          [--arec=pop|rand|rp3b|itemknn|userknn|psvd10|\n"
      "                 psvd100|rsvd|bpr|cofi]\n"
      "                [--save-model=PATH] [--save-pipeline=PATH]\n"
      "                [--factor-precision=fp64|fp32|int8]  (compact the\n"
      "                 fitted factor tables before saving/serving)\n"
      "                [--theta=a|n|t|g|r|c] [--crec=rand|stat|dyn]\n"
      "                [--threads=1]   (parallel blocked trainers;\n"
      "                 artifacts are byte-identical to --threads=1)\n"
      "                [--train-memory-budget=MIB]  (out-of-core fit: cap\n"
      "                 on resident rating rows per sweep window; with\n"
      "                 --kappa=1 and a mapped --dataset-cache the full\n"
      "                 rating matrix is never materialized. 0 = one\n"
      "                 window. The fitted model is identical for every\n"
      "                 budget.)\n"
      "\n"
      "recommend (default command):\n"
      "                [--arec=...] | [--load-model=PATH] |\n"
      "                [--load-pipeline=PATH]\n"
      "                [--theta=a|n|t|g|r|c] [--crec=rand|stat|dyn]\n"
      "                [--top-n=5] [--sample-size=500] [--threads=1]\n"
      "                [--factor-precision=fp64|fp32|int8]\n"
      "                [--theta-out=PATH] [--output=PATH] [--verbose]\n"
      "\n"
      "inspect PATH:   dump an artifact's header and section table\n"
      "\n"
      "topn:           --load-model=PATH | --load-pipeline=PATH\n"
      "                [--top-n=10] [--users=N]   (first N users; 0 = all)\n"
      "                [--head-users=N]  (N most active users instead,\n"
      "                 matching a precompute-topn store's coverage)\n"
      "                [--factor-precision=fp64|fp32|int8]\n"
      "                Prints one serve-protocol response line per user,\n"
      "                byte-comparable with a ganc_serve transcript.\n"
      "\n"
      "precompute-topn: --load-model=PATH | --load-pipeline=PATH\n"
      "                --out=PATH [--top-n=10] [--head-users=N]\n"
      "                Builds the precomputed top-N store artifact for\n"
      "                the N most active users (0 = everyone).\n"
      "\n"
      "replay:         --requests=PATH\n"
      "                --load-model=PATH | --load-pipeline=PATH\n"
      "                [--shards=N] [--top-n=10]\n"
      "                Replays a serve-protocol transcript (TOPN/TOPNV/\n"
      "                CONSUME/PUBLISH/VERSION/SHARDS/STATS/METRICS/\n"
      "                TRACE/PING) through an in-process shard router,\n"
      "                one response per request — the process-free twin\n"
      "                of piping the file into ganc_serve. Ends with a\n"
      "                stderr metrics report (request counts, p50/p95/\n"
      "                p99 latency, per-generation novelty/coverage).\n"
      "\n"
      "metrics:        --port=N [--host=127.0.0.1]\n"
      "                One-shot scrape of a listening ganc_serve: sends\n"
      "                METRICS and prints the text exposition to stdout.\n"
      "\n"
      "kernels:        report the scoring kernel dispatch (variants,\n"
      "                probe timings, active choice); --list prints one\n"
      "                host-supported GANC_KERNEL name per line.\n");
}

Result<std::unique_ptr<Recommender>> BuildArec(const std::string& name) {
  std::unique_ptr<Recommender> base;
  if (name == "pop") {
    base = std::make_unique<PopRecommender>();
  } else if (name == "rand") {
    base = std::make_unique<RandomRecommender>();
  } else if (name == "rp3b") {
    base = std::make_unique<RandomWalkRecommender>();
  } else if (name == "itemknn") {
    base = std::make_unique<ItemKnnRecommender>();
  } else if (name == "userknn") {
    base = std::make_unique<UserKnnRecommender>();
  } else if (name == "rsvd") {
    base = std::make_unique<RsvdRecommender>(RsvdConfig{.use_biases = true});
  } else if (name == "psvd10") {
    base = std::make_unique<PsvdRecommender>(PsvdConfig{.num_factors = 10});
  } else if (name == "psvd100") {
    base = std::make_unique<PsvdRecommender>(PsvdConfig{.num_factors = 100});
  } else if (name == "bpr") {
    base = std::make_unique<BprRecommender>();
  } else if (name == "cofi") {
    base = std::make_unique<CofiRecommender>();
  } else {
    return Status::InvalidArgument("unknown --arec '" + name + "'");
  }
  return base;
}

Result<PreferenceModel> ParseTheta(const std::string& s) {
  if (s == "a") return PreferenceModel::kActivity;
  if (s == "n") return PreferenceModel::kNormalized;
  if (s == "t") return PreferenceModel::kTfidf;
  if (s == "g") return PreferenceModel::kGeneralized;
  if (s == "r") return PreferenceModel::kRandom;
  if (s == "c") return PreferenceModel::kConstant;
  return Status::InvalidArgument("unknown theta model '" + s + "'");
}

Result<CoverageKind> ParseCoverage(const std::string& s) {
  if (s == "rand") return CoverageKind::kRand;
  if (s == "stat") return CoverageKind::kStat;
  if (s == "dyn") return CoverageKind::kDyn;
  return Status::InvalidArgument("unknown coverage recommender '" + s + "'");
}

// --factor-precision, shared by every command that holds a fitted model.
// Absent or "fp64" keeps the model's current tables (a loaded artifact
// may already be compact).
Result<FactorPrecision> FactorPrecisionFlag(const Flags& flags) {
  return ParseFactorPrecision(flags.GetString("factor-precision", "fp64"));
}

Status ApplyFactorPrecision(const Flags& flags, Recommender* model) {
  Result<FactorPrecision> p = FactorPrecisionFlag(flags);
  if (!p.ok()) return p.status();
  if (*p == FactorPrecision::kFp64) return Status::OK();
  GANC_RETURN_NOT_OK(model->SetFactorPrecision(*p));
  std::printf("factor tables compacted to %s\n", FactorPrecisionName(*p));
  return Status::OK();
}

// Loaded data + split shared by all commands. The split owns its own
// train/test datasets; the full dataset is kept for summary reporting.
struct Prepared {
  RatingDataset dataset;
  TrainTestSplit split;
};

// Shared epilogue of every recommend run: persist the collection when
// requested and print the Table III comparison of base vs GANC.
int ReportRun(const Recommender& base, const std::string& ganc_name,
              const TopNCollection& topn, const RatingDataset& train,
              const RatingDataset& test, int n, ThreadPool* pool,
              const std::string& output) {
  if (!output.empty()) {
    if (Status s = WriteTopNCollection(output, topn); !s.ok()) {
      std::fprintf(stderr, "output: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("top-N collection written to %s\n", output.c_str());
  }
  const std::vector<AlgorithmEntry> entries = {
      {base.name(), [&] { return RecommendAllUsers(base, train, n, pool); }},
      {ganc_name, [&] { return topn; }},
  };
  const auto results = RunComparison(entries, train, test,
                                     MetricsConfig{.top_n = n});
  ComparisonTable(results, n).Print();
  return 0;
}

Result<Prepared> Prepare(const Flags& flags, bool print_summary,
                         bool ensure_resident = true) {
  Result<RatingDataset> dataset = LoadDatasetFromFlags(flags);
  if (!dataset.ok()) return dataset.status();
  auto kappa = flags.GetDouble("kappa", 0.5);
  auto seed = flags.GetInt("seed", 42);
  if (!kappa.ok() || !seed.ok()) {
    return Status::InvalidArgument("bad numeric flag");
  }
  Prepared prepared;
  const bool whole_corpus = *kappa == 1.0;
  if (whole_corpus) {
    // kappa = 1 ("the whole corpus is the train split", serving runs):
    // move the loaded dataset in directly instead of rebuilding it
    // through PerUserRatioSplit, which would materialize a mapped
    // cache's rows into owned triples.
    RatingDatasetBuilder empty_test(dataset->num_users(),
                                    dataset->num_items());
    Result<RatingDataset> test = std::move(empty_test).Build();
    if (!test.ok()) return test.status();
    prepared.split.train = std::move(dataset).value();
    prepared.split.test = std::move(test).value();
  } else {
    // The splitter and the summary's popularity index walk rows and
    // ratings(); a mapped cache materializes once, up front.
    GANC_RETURN_NOT_OK(dataset->EnsureResident());
    Result<TrainTestSplit> split = PerUserRatioSplit(
        *dataset, {.train_ratio = *kappa,
                   .seed = static_cast<uint64_t>(*seed)});
    if (!split.ok()) return split.status();
    prepared.dataset = std::move(dataset).value();
    prepared.split = std::move(split).value();
  }
  // Most CLI commands score or summarize through the train split's
  // derived indexes, so a mapped kappa=1 train materializes here, once.
  // (ganc_serve's store-backed path stays lazy, and `train` passes
  // ensure_resident=false: the trainers consume the budgeted row-window
  // sweep and never need the full matrix resident.)
  if (ensure_resident) {
    GANC_RETURN_NOT_OK(prepared.split.train.EnsureResident());
  }
  if (print_summary) {
    const RatingDataset& full =
        whole_corpus ? prepared.split.train : prepared.dataset;
    const DatasetSummary summary =
        Summarize("input", full, &prepared.split.train);
    std::printf("data: %lld ratings, %d users, %d items, d=%.3f%%, L=%.1f%%\n",
                static_cast<long long>(summary.num_ratings),
                summary.num_users, summary.num_items, summary.density_percent,
                summary.longtail_percent);
  }
  return prepared;
}

int CacheDataset(const Flags& flags) {
  const std::string out = flags.GetString("out", "");
  if (out.empty()) {
    std::fprintf(stderr, "cache-dataset requires --out=PATH\n");
    return 1;
  }
  Result<RatingDataset> dataset = LoadDatasetFromFlags(flags);
  if (!dataset.ok()) {
    std::fprintf(stderr, "load: %s\n", dataset.status().ToString().c_str());
    return 1;
  }
  WallTimer timer;
  if (Status s = dataset->SaveBinaryFile(out); !s.ok()) {
    std::fprintf(stderr, "cache: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("dataset cache written to %s (%lld ratings, %.1f ms)\n",
              out.c_str(), static_cast<long long>(dataset->num_ratings()),
              timer.ElapsedMillis());
  return 0;
}

int Train(const Flags& flags) {
  if (flags.GetBool("verbose", false)) SetLogLevel(LogLevel::kInfo);
  auto threads = flags.GetInt("threads", 1);
  if (!threads.ok() || *threads < 0) {
    std::fprintf(stderr, "bad --threads flag\n");
    return 1;
  }
  // Pool-aware fits merge deterministically, so the pool only changes
  // wall time — the saved artifacts are byte-identical to --threads=1.
  std::unique_ptr<ThreadPool> pool;
  if (*threads != 1) {
    pool = std::make_unique<ThreadPool>(static_cast<size_t>(*threads));
  }
  const std::string model_out = flags.GetString("save-model", "");
  const std::string pipeline_out = flags.GetString("save-pipeline", "");
  if (model_out.empty() && pipeline_out.empty()) {
    std::fprintf(stderr,
                 "train requires --save-model=PATH or --save-pipeline=PATH\n");
    return 1;
  }
  auto budget_mb = flags.GetInt("train-memory-budget", 0);
  if (!budget_mb.ok() || *budget_mb < 0) {
    std::fprintf(stderr, "bad --train-memory-budget flag\n");
    return 1;
  }
  // Trainers stream the split through budgeted row-window sweeps, so the
  // mapped kappa=1 path never needs the full matrix resident.
  Result<Prepared> prepared =
      Prepare(flags, /*print_summary=*/true, /*ensure_resident=*/false);
  if (!prepared.ok()) {
    std::fprintf(stderr, "load: %s\n", prepared.status().ToString().c_str());
    return 1;
  }
  prepared->split.train.set_train_budget_bytes(*budget_mb *
                                               int64_t{1024 * 1024});
  const RatingDataset& train = prepared->split.train;

  const std::string arec_name = flags.GetString("arec", "psvd100");
  Result<std::unique_ptr<Recommender>> base = BuildArec(arec_name);
  if (!base.ok()) {
    std::fprintf(stderr, "%s\n", base.status().ToString().c_str());
    return 1;
  }
  MetricsRegistry& registry = MetricsRegistry::Global();
  Counter* const epochs_total = registry.GetCounter(
      "train_epochs_total", "Training epochs completed.");
  LatencyHistogram* const epoch_ns = registry.GetHistogram(
      "train_epoch_ns", "Per-epoch training wall time, nanoseconds.");
  Gauge* const peak_rss = registry.GetGauge(
      "train_peak_rss_mb", "Peak resident set size during training, MiB.");
  WallTimer epoch_timer;
  uint64_t epoch_start_ns = MonotonicNowNs();
  (*base)->SetEpochCallback([&](int32_t epoch, int32_t total) {
    const uint64_t now_ns = MonotonicNowNs();
    epochs_total->Increment();
    epoch_ns->Observe(now_ns - epoch_start_ns);
    peak_rss->Set(PeakRssMb());
    epoch_start_ns = now_ns;
    std::printf("epoch %d/%d  %.1f ms  peak RSS %.1f MB\n", epoch, total,
                epoch_timer.ElapsedMillis(), PeakRssMb());
    epoch_timer.Reset();
  });
  WallTimer fit_timer;
  if (Status s = (*base)->Fit(train, pool.get()); !s.ok()) {
    std::fprintf(stderr, "fit: %s\n", s.ToString().c_str());
    return 1;
  }
  peak_rss->Set(PeakRssMb());
  std::printf("trained %s in %.1f ms (peak RSS %.1f MB)\n",
              (*base)->name().c_str(), fit_timer.ElapsedMillis(), PeakRssMb());
  {
    // One-line sweep summary off the same counters METRICS would serve:
    // epochs, budgeted row windows/rows visited, peak RSS.
    const MetricsSnapshot snap = registry.Snapshot();
    std::fprintf(stderr,
                 "train metrics: epochs=%llu sweep_windows=%llu "
                 "sweep_rows=%llu peak_rss_mb=%.1f\n",
                 static_cast<unsigned long long>(
                     snap.CounterValue("train_epochs_total")),
                 static_cast<unsigned long long>(
                     snap.CounterValue("data_sweep_windows_total")),
                 static_cast<unsigned long long>(
                     snap.CounterValue("data_sweep_rows_total")),
                 snap.DoubleValue("train_peak_rss_mb"));
  }
  if (Status s = ApplyFactorPrecision(flags, base->get()); !s.ok()) {
    std::fprintf(stderr, "factor-precision: %s\n", s.ToString().c_str());
    return 1;
  }

  if (!model_out.empty()) {
    WallTimer save_timer;
    if (Status s = SaveModelFile(**base, model_out); !s.ok()) {
      std::fprintf(stderr, "save-model: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("model artifact written to %s (%.1f ms)\n", model_out.c_str(),
                save_timer.ElapsedMillis());
  }

  const std::string theta_out = flags.GetString("theta-out", "");
  if (!theta_out.empty()) {
    Result<PreferenceModel> model = ParseTheta(flags.GetString("theta", "g"));
    auto seed = flags.GetInt("seed", 42);
    if (!model.ok() || !seed.ok()) {
      std::fprintf(stderr, "bad theta flag\n");
      return 1;
    }
    Result<std::vector<double>> theta = ComputePreference(
        *model, train, static_cast<uint64_t>(*seed));
    if (!theta.ok()) {
      std::fprintf(stderr, "theta: %s\n", theta.status().ToString().c_str());
      return 1;
    }
    if (Status s = WriteDoubleVector(theta_out, *theta); !s.ok()) {
      std::fprintf(stderr, "theta-out: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("theta written to %s\n", theta_out.c_str());
  }

  if (!pipeline_out.empty()) {
    Result<PreferenceModel> model = ParseTheta(flags.GetString("theta", "g"));
    Result<CoverageKind> crec = ParseCoverage(flags.GetString("crec", "dyn"));
    auto top_n = flags.GetInt("top-n", 5);
    auto sample = flags.GetInt("sample-size", 500);
    auto seed = flags.GetInt("seed", 42);
    if (!model.ok() || !crec.ok() || !top_n.ok() || !sample.ok() ||
        !seed.ok()) {
      std::fprintf(stderr, "bad pipeline flag\n");
      return 1;
    }
    PipelineConfig config;
    config.theta_model = *model;
    config.coverage = *crec;
    config.top_n = static_cast<int>(*top_n);
    config.sample_size = static_cast<int>(*sample);
    config.seed = static_cast<uint64_t>(*seed);
    config.indicator_accuracy = arec_name == "pop";
    config.fit_base = false;  // fitted above
    Result<std::unique_ptr<GancPipeline>> pipeline = GancPipeline::Create(
        std::move(base).value(), train, config);
    if (!pipeline.ok()) {
      std::fprintf(stderr, "pipeline: %s\n",
                   pipeline.status().ToString().c_str());
      return 1;
    }
    WallTimer save_timer;
    if (Status s = (*pipeline)->SaveFile(pipeline_out); !s.ok()) {
      std::fprintf(stderr, "save-pipeline: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("pipeline artifact written to %s (%.1f ms)\n",
                pipeline_out.c_str(), save_timer.ElapsedMillis());
  }
  return 0;
}

int Recommend(const Flags& flags) {
  if (flags.GetBool("verbose", false)) SetLogLevel(LogLevel::kInfo);

  Result<Prepared> prepared = Prepare(flags, /*print_summary=*/true);
  if (!prepared.ok()) {
    std::fprintf(stderr, "load: %s\n", prepared.status().ToString().c_str());
    return 1;
  }
  const RatingDataset& train = prepared->split.train;
  const RatingDataset& test = prepared->split.test;

  auto seed = flags.GetInt("seed", 42);
  auto top_n = flags.GetInt("top-n", 5);
  auto sample = flags.GetInt("sample-size", 500);
  auto threads = flags.GetInt("threads", 1);
  if (!seed.ok() || !top_n.ok() || !sample.ok() || !threads.ok() ||
      *threads < 0) {
    std::fprintf(stderr, "bad numeric flag\n");
    return 1;
  }
  // Batched scoring is deterministic, so the pool only changes wall time.
  std::unique_ptr<ThreadPool> pool;
  if (*threads != 1) {
    pool = std::make_unique<ThreadPool>(static_cast<size_t>(*threads));
  }
  const std::string output = flags.GetString("output", "");

  // Pipeline-artifact serving path: everything offline comes from the
  // artifact; only the dataset is rebound.
  const std::string pipeline_in = flags.GetString("load-pipeline", "");
  if (!pipeline_in.empty()) {
    // These knobs are baked into the artifact — refuse silently
    // different behavior.
    for (const char* baked : {"arec", "theta", "crec", "top-n",
                              "sample-size", "theta-out", "load-model"}) {
      if (flags.Has(baked)) {
        std::fprintf(stderr,
                     "--%s conflicts with --load-pipeline (it is stored in "
                     "the pipeline artifact)\n",
                     baked);
        return 1;
      }
    }
    WallTimer load_timer;
    Result<std::unique_ptr<GancPipeline>> pipeline = GancPipeline::LoadFile(
        pipeline_in, train, static_cast<int>(*threads));
    if (!pipeline.ok()) {
      std::fprintf(stderr, "load-pipeline: %s\n",
                   pipeline.status().ToString().c_str());
      return 1;
    }
    std::printf("pipeline loaded from %s (%.1f ms)\n", pipeline_in.c_str(),
                load_timer.ElapsedMillis());
    Result<FactorPrecision> p = FactorPrecisionFlag(flags);
    Status precision_status =
        p.ok() ? (*p == FactorPrecision::kFp64
                      ? Status::OK()
                      : (*pipeline)->SetFactorPrecision(*p))
               : p.status();
    if (!precision_status.ok()) {
      std::fprintf(stderr, "factor-precision: %s\n",
                   precision_status.ToString().c_str());
      return 1;
    }
    Result<TopNCollection> topn = (*pipeline)->RecommendAll();
    if (!topn.ok()) {
      std::fprintf(stderr, "ganc: %s\n", topn.status().ToString().c_str());
      return 1;
    }
    return ReportRun((*pipeline)->base(), (*pipeline)->name(), *topn, train,
                     test, (*pipeline)->top_n(), pool.get(), output);
  }

  // Base recommender: from a model artifact or trained in-process.
  const std::string model_in = flags.GetString("load-model", "");
  std::unique_ptr<Recommender> base;
  if (!model_in.empty()) {
    if (flags.Has("arec")) {
      std::fprintf(stderr,
                   "--arec conflicts with --load-model (the artifact is "
                   "self-describing)\n");
      return 1;
    }
    WallTimer load_timer;
    Result<std::unique_ptr<Recommender>> loaded = LoadModelFileAuto(
        model_in, flags.GetBool("mmap", true), &train);
    if (!loaded.ok()) {
      std::fprintf(stderr, "load-model: %s\n",
                   loaded.status().ToString().c_str());
      return 1;
    }
    base = std::move(loaded).value();
    // Load was handed `train`, so dimensions and (where stored) the
    // dataset fingerprint are already validated.
    std::printf("model %s loaded from %s (%.1f ms)\n", base->name().c_str(),
                model_in.c_str(), load_timer.ElapsedMillis());
  } else {
    Result<std::unique_ptr<Recommender>> built = BuildArec(
        flags.GetString("arec", "psvd100"));
    if (!built.ok()) {
      std::fprintf(stderr, "%s\n", built.status().ToString().c_str());
      return 1;
    }
    base = std::move(built).value();
    if (Status s = base->Fit(train, pool.get()); !s.ok()) {
      std::fprintf(stderr, "fit: %s\n", s.ToString().c_str());
      return 1;
    }
  }
  if (Status s = ApplyFactorPrecision(flags, base.get()); !s.ok()) {
    std::fprintf(stderr, "factor-precision: %s\n", s.ToString().c_str());
    return 1;
  }

  // Preference model.
  Result<PreferenceModel> model = ParseTheta(flags.GetString("theta", "g"));
  if (!model.ok()) {
    std::fprintf(stderr, "%s\n", model.status().ToString().c_str());
    return 1;
  }
  Result<std::vector<double>> theta = ComputePreference(
      *model, train, static_cast<uint64_t>(*seed));
  if (!theta.ok()) {
    std::fprintf(stderr, "theta: %s\n", theta.status().ToString().c_str());
    return 1;
  }
  const std::string theta_out = flags.GetString("theta-out", "");
  if (!theta_out.empty()) {
    if (Status s = WriteDoubleVector(theta_out, *theta); !s.ok()) {
      std::fprintf(stderr, "theta-out: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("theta written to %s\n", theta_out.c_str());
  }

  // Coverage recommender + GANC.
  Result<CoverageKind> crec = ParseCoverage(flags.GetString("crec", "dyn"));
  if (!crec.ok()) {
    std::fprintf(stderr, "%s\n", crec.status().ToString().c_str());
    return 1;
  }
  const bool indicator = base->name() == "Pop";
  NormalizedAccuracyScorer norm_scorer(base.get());
  TopNIndicatorScorer ind_scorer(base.get(), &train,
                                 static_cast<int>(*top_n));
  const AccuracyScorer& scorer =
      indicator ? static_cast<const AccuracyScorer&>(ind_scorer)
                : static_cast<const AccuracyScorer&>(norm_scorer);
  Ganc ganc(&scorer, *theta, *crec);
  GancConfig config;
  config.top_n = static_cast<int>(*top_n);
  config.sample_size = static_cast<int>(*sample);
  config.seed = static_cast<uint64_t>(*seed);
  config.pool = pool.get();

  Result<TopNCollection> topn = ganc.RecommendAll(train, config);
  if (!topn.ok()) {
    std::fprintf(stderr, "ganc: %s\n", topn.status().ToString().c_str());
    return 1;
  }
  return ReportRun(*base, ganc.Name(PreferenceModelName(*model)), *topn,
                   train, test, static_cast<int>(*top_n), pool.get(), output);
}

// Shared by `topn` and `precompute-topn`: bind the train split and build
// an unbatched serving snapshot from --load-model / --load-pipeline.
// `prepared` keeps the split alive for the service's lifetime.
Result<std::unique_ptr<RecommendationService>> BuildService(
    const Flags& flags, const Prepared& prepared, int default_n) {
  const std::string model_in = flags.GetString("load-model", "");
  const std::string pipeline_in = flags.GetString("load-pipeline", "");
  if (model_in.empty() == pipeline_in.empty()) {
    return Status::InvalidArgument(
        "exactly one of --load-model / --load-pipeline is required");
  }
  ServiceConfig config;
  config.micro_batching = false;  // offline dumps: no scheduler threads
  config.cache_capacity = 0;
  config.default_n = default_n;
  config.mmap_artifacts = flags.GetBool("mmap", true);
  Result<FactorPrecision> precision = FactorPrecisionFlag(flags);
  if (!precision.ok()) return precision.status();
  config.factor_precision = *precision;
  return model_in.empty()
             ? RecommendationService::LoadPipelineService(
                   pipeline_in, prepared.split.train, config)
             : RecommendationService::LoadModelService(
                   model_in, prepared.split.train, config);
}

// `topn`: print the offline top-N of the first --users users (or, with
// --head-users, the most active users in store-coverage order) in the
// serve-protocol response format, so `diff` against a ganc_serve
// transcript needs no parsing (the serve smoke CI jobs do exactly
// that).
int TopNDump(const Flags& flags) {
  auto top_n = flags.GetInt("top-n", 10);
  auto user_count = flags.GetInt("users", 0);
  auto head = flags.GetInt("head-users", 0);
  if (!top_n.ok() || !user_count.ok() || !head.ok() || *top_n <= 0 ||
      *user_count < 0 || *head < 0) {
    std::fprintf(stderr, "bad numeric flag\n");
    return 1;
  }
  if (*user_count > 0 && *head > 0) {
    std::fprintf(stderr, "--users and --head-users are exclusive\n");
    return 1;
  }
  Result<Prepared> prepared = Prepare(flags, /*print_summary=*/false);
  if (!prepared.ok()) {
    std::fprintf(stderr, "load: %s\n", prepared.status().ToString().c_str());
    return 1;
  }
  Result<std::unique_ptr<RecommendationService>> service =
      BuildService(flags, *prepared, static_cast<int>(*top_n));
  if (!service.ok()) {
    std::fprintf(stderr, "snapshot: %s\n",
                 service.status().ToString().c_str());
    return 1;
  }
  std::vector<UserId> targets;
  if (*head > 0) {
    targets = HeadUsersByActivity(prepared->split.train,
                                  static_cast<size_t>(*head));
  } else {
    int32_t users = (*service)->num_users();
    if (*user_count > 0 && *user_count < users) {
      users = static_cast<int32_t>(*user_count);
    }
    targets.resize(static_cast<size_t>(users));
    std::iota(targets.begin(), targets.end(), UserId{0});
  }
  std::vector<ItemId> items;
  for (UserId u : targets) {
    if (Status s = (*service)->TopNInto(u, static_cast<int>(*top_n), {},
                                        &items);
        !s.ok()) {
      std::fprintf(stderr, "topn: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("%s\n",
                FormatTopNResponse(u, static_cast<int>(*top_n), items)
                    .c_str());
  }
  return 0;
}

// End-of-replay observability report. Written to stderr: replay stdout
// is a byte-parity CI contract (one response line per request, diffable
// against a live ganc_serve transcript), so nothing new may land there.
void ReportReplayMetrics(const MetricsSnapshot& snap) {
  const uint64_t requests = snap.CounterValue("serve_requests_total");
  std::fprintf(stderr,
               "--- replay metrics ---\n"
               "requests: %llu (cache %llu, store %llu, live %llu, "
               "errors %llu)\n",
               static_cast<unsigned long long>(requests),
               static_cast<unsigned long long>(
                   snap.CounterValue("serve_cache_hits_total")),
               static_cast<unsigned long long>(
                   snap.CounterValue("serve_store_hits_total")),
               static_cast<unsigned long long>(
                   snap.CounterValue("serve_live_scored_total")),
               static_cast<unsigned long long>(
                   snap.CounterValue("serve_request_errors_total")));
  if (const MetricValue* lat = snap.Find("serve_request_ns");
      lat != nullptr && lat->u64 > 0) {
    std::fprintf(stderr,
                 "latency:  p50 %.1f us, p95 %.1f us, p99 %.1f us "
                 "(mean %.1f us; power-of-two bucket estimate)\n",
                 HistogramQuantile(*lat, 0.5) / 1000.0,
                 HistogramQuantile(*lat, 0.95) / 1000.0,
                 HistogramQuantile(*lat, 0.99) / 1000.0,
                 static_cast<double>(lat->sum) /
                     static_cast<double>(lat->u64) / 1000.0);
  }
  // One domain line per publish generation served during the replay.
  static constexpr std::string_view kLists = "serve_domain_lists_total{gen=\"";
  for (const auto& [name, value] : snap.series) {
    if (name.rfind(kLists, 0) != 0) continue;
    const size_t quote = name.find('"', kLists.size());
    if (quote == std::string::npos) continue;
    const std::string gen = name.substr(kLists.size(), quote - kLists.size());
    const std::string label = "{gen=\"" + gen + "\"}";
    const uint64_t slots =
        snap.CounterValue("serve_domain_slots_total" + label);
    const double novelty_sum =
        snap.DoubleValue("serve_domain_novelty_bits_sum" + label);
    std::fprintf(
        stderr,
        "domain[gen=%s]: %llu lists, %llu slots, novelty %.6f bits/slot, "
        "coverage %llu distinct items (%llu long-tail), %llu tail slots\n",
        gen.c_str(), static_cast<unsigned long long>(value.u64),
        static_cast<unsigned long long>(slots),
        slots == 0 ? 0.0 : novelty_sum / static_cast<double>(slots),
        static_cast<unsigned long long>(
            snap.CounterValue("serve_domain_items_distinct" + label)),
        static_cast<unsigned long long>(
            snap.CounterValue("serve_domain_tail_items_distinct" + label)),
        static_cast<unsigned long long>(
            snap.CounterValue("serve_domain_tail_slots_total" + label)));
  }
}

// `replay`: drive a serve-protocol transcript through an in-process
// ShardRouter and print one response line per request. Unbatched and
// single-threaded, so the output is deterministic line-for-line — the
// reference the multi-process router harness diffs against, and a way
// to script snapshot swaps (PUBLISH lines) without managing processes.
int Replay(const Flags& flags) {
  const std::string requests_path = flags.GetString("requests", "");
  if (requests_path.empty()) {
    std::fprintf(stderr, "replay requires --requests=PATH\n");
    return 1;
  }
  const std::string model_in = flags.GetString("load-model", "");
  const std::string pipeline_in = flags.GetString("load-pipeline", "");
  if (model_in.empty() == pipeline_in.empty()) {
    std::fprintf(stderr,
                 "exactly one of --load-model / --load-pipeline is "
                 "required\n");
    return 1;
  }
  auto top_n = flags.GetInt("top-n", 10);
  auto num_shards = flags.GetInt("shards", 1);
  if (!top_n.ok() || !num_shards.ok() || *top_n <= 0 || *num_shards < 1) {
    std::fprintf(stderr, "bad numeric flag\n");
    return 1;
  }
  Result<Prepared> prepared = Prepare(flags, /*print_summary=*/false);
  if (!prepared.ok()) {
    std::fprintf(stderr, "load: %s\n", prepared.status().ToString().c_str());
    return 1;
  }
  ServiceConfig config;
  config.micro_batching = false;  // deterministic offline replay
  config.cache_capacity = 0;
  config.default_n = static_cast<int>(*top_n);
  config.mmap_artifacts = flags.GetBool("mmap", true);
  Result<FactorPrecision> precision = FactorPrecisionFlag(flags);
  if (!precision.ok()) {
    std::fprintf(stderr, "%s\n", precision.status().ToString().c_str());
    return 1;
  }
  config.factor_precision = *precision;
  Result<std::unique_ptr<ShardRouter>> router = ShardRouter::Load(
      model_in.empty() ? SnapshotKind::kPipeline : SnapshotKind::kModel,
      model_in.empty() ? pipeline_in : model_in, prepared->split.train,
      static_cast<size_t>(*num_shards), config);
  if (!router.ok()) {
    std::fprintf(stderr, "snapshot: %s\n",
                 router.status().ToString().c_str());
    return 1;
  }
  std::ifstream in(requests_path);
  if (!in.is_open()) {
    std::fprintf(stderr, "replay: cannot open %s\n", requests_path.c_str());
    return 1;
  }
  SessionRegistry sessions;
  TraceRing& ring = TraceRing::Global();
  uint64_t seq = 0;
  std::string line;
  while (std::getline(in, line)) {
    while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
      line.pop_back();
    }
    if (line.empty()) continue;
    std::unique_ptr<RequestTrace> trace;
    if (ring.ShouldSample(seq)) trace = ring.Begin(seq);
    ++seq;
    Result<ServeRequest> parsed = ParseServeRequest(line);
    if (trace != nullptr) trace->Stamp(TraceStage::kParse, MonotonicNowNs());
    if (!parsed.ok()) {
      std::printf("%s\n", FormatError(parsed.status().message()).c_str());
      continue;
    }
    ServeRequest& req = *parsed;
    std::string response;
    switch (req.command) {
      case ServeCommand::kTopN:
      case ServeCommand::kTopNV: {
        std::vector<ItemId> exclusions;
        std::span<const ItemId> excl = req.items;
        if (!req.session.empty()) {
          sessions.CollectExclusions(req.session, req.user, req.items,
                                     &exclusions);
          excl = exclusions;
        }
        std::vector<ItemId> items;
        uint64_t version = 0;
        if (Status s = (*router)->TopNInto(req.user, req.n, excl, &items,
                                           &version, trace.get());
            !s.ok()) {
          response = FormatError(s.message());
          break;
        }
        const int n = req.n == 0 ? (*router)->default_n() : req.n;
        response = req.command == ServeCommand::kTopNV
                       ? FormatVersionedTopNResponse(req.user, n, version,
                                                     items)
                       : FormatTopNResponse(req.user, n, items);
        break;
      }
      case ServeCommand::kConsume: {
        if (req.user < 0 || req.user >= (*router)->num_users()) {
          response = FormatError("user id out of range");
          break;
        }
        sessions.MarkConsumed(req.session, req.user, req.items);
        response = FormatOk("consumed=" + std::to_string(req.items.size()));
        break;
      }
      case ServeCommand::kPublish: {
        uint64_t max_v = 0;
        if (Status s = (*router)->Publish(req.path, &max_v); !s.ok()) {
          response = FormatError(s.message());
          break;
        }
        response = (*router)->num_shards() > 1
                       ? FormatOk("version=" + std::to_string(max_v) +
                                  " shards=" +
                                  std::to_string((*router)->num_shards()))
                       : FormatOk("version=" + std::to_string(max_v) +
                                  " source=" + (*router)->source());
        break;
      }
      case ServeCommand::kVersion: {
        if ((*router)->num_shards() > 1) {
          std::string versions;
          for (const uint64_t v : (*router)->versions()) {
            if (!versions.empty()) versions.push_back(',');
            versions += std::to_string(v);
          }
          response = FormatOk("versions=" + versions);
        } else {
          response =
              FormatOk("version=" + std::to_string((*router)->max_version()) +
                       " source=" + (*router)->source());
        }
        break;
      }
      case ServeCommand::kShards:
        response =
            FormatOk("shards=" + std::to_string((*router)->num_shards()) +
                     " mode=inprocess users=" +
                     std::to_string((*router)->num_users()));
        break;
      case ServeCommand::kStats: {
        const ServeStats s = (*router)->stats();
        char buf[256];
        std::snprintf(buf, sizeof(buf),
                      "requests=%llu cache_hits=%llu store_hits=%llu "
                      "live=%llu batches=%llu mean_fill=%.2f",
                      static_cast<unsigned long long>(s.requests),
                      static_cast<unsigned long long>(s.cache_hits),
                      static_cast<unsigned long long>(s.store_hits),
                      static_cast<unsigned long long>(s.live_scored),
                      static_cast<unsigned long long>(s.batches),
                      s.MeanBatchFill());
        response = FormatOk(buf);
        break;
      }
      case ServeCommand::kMetrics: {
        const std::string text =
            (*router)->SnapshotMetrics().RenderExposition();
        size_t lines = 0;
        for (const char c : text) lines += c == '\n';
        response = FormatFramedHeader("metrics", lines);
        if (!text.empty()) {
          response.push_back('\n');
          response.append(text.data(), text.size() - 1);
        }
        break;
      }
      case ServeCommand::kMetricSnap:
        response =
            FormatOk("metricsnap " + (*router)->SnapshotMetrics().Serialize());
        break;
      case ServeCommand::kTrace: {
        const std::vector<RequestTrace> traces =
            ring.MostRecent(static_cast<size_t>(req.n == 0 ? 16 : req.n));
        response = FormatFramedHeader("traces", traces.size());
        for (const RequestTrace& t : traces) {
          response.push_back('\n');
          response += FormatTraceLine(t);
        }
        break;
      }
      case ServeCommand::kPing:
        response = FormatOk("pong");
        break;
      case ServeCommand::kQuit:
        response = FormatOk("bye");
        break;
    }
    if (trace != nullptr) {
      trace->Stamp(TraceStage::kRespond, MonotonicNowNs());
      ring.Commit(std::move(trace));
    }
    std::printf("%s\n", response.c_str());
    if (req.command == ServeCommand::kQuit) break;
  }
  ReportReplayMetrics((*router)->SnapshotMetrics());
  return 0;
}

// `metrics`: one-shot scrape of a live ganc_serve listener — connect,
// send METRICS, unwrap the framed response, print the text exposition
// to stdout. The Prometheus-less twin of `curl host:port/metrics`.
int MetricsScrape(const Flags& flags) {
  auto port = flags.GetInt("port", -1);
  if (!port.ok() || *port <= 0 || *port > 65535) {
    std::fprintf(stderr,
                 "metrics requires --port=N (a listening ganc_serve)\n");
    return 1;
  }
  const std::string host = flags.GetString("host", "127.0.0.1");
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    std::fprintf(stderr, "metrics: socket() failed\n");
    return 1;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(*port));
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    std::fprintf(stderr, "metrics: bad --host=%s (want an IPv4 address)\n",
                 host.c_str());
    close(fd);
    return 1;
  }
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    std::fprintf(stderr, "metrics: connect %s:%d failed: %s\n", host.c_str(),
                 static_cast<int>(*port), strerror(errno));
    close(fd);
    return 1;
  }
  const char request[] = "METRICS\n";
  for (size_t off = 0; off < sizeof(request) - 1;) {
    const ssize_t n = write(fd, request + off, sizeof(request) - 1 - off);
    if (n <= 0) {
      std::fprintf(stderr, "metrics: write failed\n");
      close(fd);
      return 1;
    }
    off += static_cast<size_t>(n);
  }
  FILE* in = fdopen(fd, "r");
  if (in == nullptr) {
    close(fd);
    return 1;
  }
  char* line = nullptr;
  size_t cap = 0;
  ssize_t len = getline(&line, &cap, in);
  int rc = 1;
  if (len > 0) {
    while (len > 0 && (line[len - 1] == '\n' || line[len - 1] == '\r')) {
      line[--len] = '\0';
    }
    const std::string header(line, static_cast<size_t>(len));
    uint64_t lines = 0;
    const size_t pos = header.rfind(" lines=");
    if (header.rfind("OK metrics ", 0) == 0 && pos != std::string::npos) {
      lines = strtoull(header.c_str() + pos + 7, nullptr, 10);
      rc = 0;
      for (uint64_t i = 0; i < lines; ++i) {
        if ((len = getline(&line, &cap, in)) < 0) {
          std::fprintf(stderr, "metrics: truncated framed response\n");
          rc = 1;
          break;
        }
        std::fwrite(line, 1, static_cast<size_t>(len), stdout);
      }
    } else {
      std::fprintf(stderr, "metrics: unexpected response: %s\n",
                   header.c_str());
    }
  } else {
    std::fprintf(stderr, "metrics: server closed the connection\n");
  }
  free(line);
  fclose(in);  // closes fd
  return rc;
}

// `precompute-topn`: materialize the serving store artifact for the
// most active users.
int PrecomputeTopN(const Flags& flags) {
  const std::string out = flags.GetString("out", "");
  if (out.empty()) {
    std::fprintf(stderr, "precompute-topn requires --out=PATH\n");
    return 1;
  }
  auto top_n = flags.GetInt("top-n", 10);
  auto head = flags.GetInt("head-users", 0);
  if (!top_n.ok() || !head.ok() || *top_n <= 0 || *head < 0) {
    std::fprintf(stderr, "bad numeric flag\n");
    return 1;
  }
  Result<Prepared> prepared = Prepare(flags, /*print_summary=*/true);
  if (!prepared.ok()) {
    std::fprintf(stderr, "load: %s\n", prepared.status().ToString().c_str());
    return 1;
  }
  Result<std::unique_ptr<RecommendationService>> service =
      BuildService(flags, *prepared, static_cast<int>(*top_n));
  if (!service.ok()) {
    std::fprintf(stderr, "snapshot: %s\n",
                 service.status().ToString().c_str());
    return 1;
  }
  const std::vector<UserId> users = HeadUsersByActivity(
      prepared->split.train, static_cast<size_t>(*head));
  WallTimer timer;
  Result<TopNStore> store =
      (*service)->BuildStore(users, static_cast<int>(*top_n));
  if (!store.ok()) {
    std::fprintf(stderr, "build: %s\n", store.status().ToString().c_str());
    return 1;
  }
  if (Status s = store->SaveFile(out); !s.ok()) {
    std::fprintf(stderr, "save: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf(
      "top-N store written to %s (%zu lists of up to %d items for %s, "
      "%.1f ms)\n",
      out.c_str(), store->num_lists(), store->top_n(),
      store->source().c_str(), timer.ElapsedMillis());
  return 0;
}

// `synth`: stream a power-law scale corpus straight into a v3 dataset
// cache. O(users) memory regardless of the rating count, so the 1M-user
// harness point never holds its ~24M ratings in RAM.
int Synth(const Flags& flags) {
  const std::string out = flags.GetString("out", "");
  if (out.empty()) {
    std::fprintf(stderr, "synth requires --out=PATH\n");
    return 1;
  }
  auto users = flags.GetInt("users", 100000);
  auto items = flags.GetInt("items", 0);
  auto mean_activity = flags.GetDouble("mean-activity", 0.0);
  auto seed = flags.GetInt("seed", 1);
  auto threads = flags.GetInt("threads", 1);
  if (!users.ok() || !items.ok() || !mean_activity.ok() || !seed.ok() ||
      !threads.ok() || *users <= 0 || *items < 0 || *threads < 0) {
    std::fprintf(stderr, "bad numeric flag\n");
    return 1;
  }
  ScaleSyntheticSpec spec = PowerLawScaleSpec(*users);
  if (*items > 0) spec.num_items = static_cast<int32_t>(*items);
  if (*mean_activity > 0.0) spec.mean_activity = *mean_activity;
  spec.seed = static_cast<uint64_t>(*seed);
  // Rows are generated from per-user seeded streams, so the output file
  // is byte-identical for every --threads value.
  std::unique_ptr<ThreadPool> pool;
  if (*threads != 1) {
    pool = std::make_unique<ThreadPool>(static_cast<size_t>(*threads));
  }
  WallTimer timer;
  Result<int64_t> nnz = GenerateSyntheticStream(spec, out, pool.get());
  if (!nnz.ok()) {
    std::fprintf(stderr, "synth: %s\n", nnz.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "scale corpus '%s' written to %s (%lld ratings, %lld users x %d "
      "items, %.1f ms)\n",
      spec.name.c_str(), out.c_str(), static_cast<long long>(*nnz),
      static_cast<long long>(spec.num_users), spec.num_items,
      timer.ElapsedMillis());
  return 0;
}

// `kernels`: report the scoring kernel dispatch state. `--list` prints
// only the host-supported GANC_KERNEL names, one per line — CI loops
// the parity suite over exactly that output.
int Kernels(const Flags& flags) {
  if (flags.GetBool("list", false)) {
    for (KernelVariant v : SupportedKernelVariants()) {
      std::printf("%s\n", KernelVariantName(v));
    }
    return 0;
  }
  const KernelVariant active = ActiveKernelVariant();
  const std::vector<double> probe = KernelProbeNsPerUser();
  std::printf("scoring kernel dispatch (block of %zu users):\n",
              kFactorKernelUserBlock);
  for (size_t i = 0; i < kNumKernelVariants; ++i) {
    const KernelVariant v = static_cast<KernelVariant>(i);
    std::printf("  %-7s %-11s", KernelVariantName(v),
                KernelVariantSupported(v) ? "supported" : "unsupported");
    if (probe[i] > 0.0) {
      std::printf("  probe %8.1f ns/user", probe[i]);
    }
    if (v == active) std::printf("  <-- active");
    std::printf("\n");
  }
  std::printf("active: %s (selected by %s)\n", KernelVariantName(active),
              ActiveKernelSelection());
  return 0;
}

// Prints a min/max/mean summary of one per-row quantization side table.
void PrintRowParamSummary(const char* label, const std::vector<float>& v) {
  if (v.empty()) {
    std::printf("    %s: empty\n", label);
    return;
  }
  float lo = v[0];
  float hi = v[0];
  double sum = 0.0;
  for (float x : v) {
    lo = std::min(lo, x);
    hi = std::max(hi, x);
    sum += static_cast<double>(x);
  }
  std::printf("    %s: min %.6g  max %.6g  mean %.6g\n", label,
              static_cast<double>(lo), static_cast<double>(hi),
              sum / static_cast<double>(v.size()));
}

// Decodes a latent-factor model's factor-table section: the scalar
// header is shared by every precision; int8 adds per-row quantization
// side tables worth summarizing. v3 payloads 8-align each table (the
// zero-copy mmap requirement); v2 payloads are packed.
Status InspectFactorSection(uint32_t version, std::string_view payload) {
  PayloadReader r(payload);
  uint8_t tag = 0;
  uint64_t g = 0;
  uint64_t user_rows = 0;
  uint64_t item_rows = 0;
  GANC_RETURN_NOT_OK(r.ReadU8(&tag));
  GANC_RETURN_NOT_OK(r.ReadU64(&g));
  GANC_RETURN_NOT_OK(r.ReadU64(&user_rows));
  GANC_RETURN_NOT_OK(r.ReadU64(&item_rows));
  if (tag < 1 || tag > 3) {
    return Status::InvalidArgument("unknown factor precision tag " +
                                   std::to_string(static_cast<int>(tag)));
  }
  const auto precision = static_cast<FactorPrecision>(tag);
  std::printf(
      "    factor tables: %s, g=%llu, %llu user rows, %llu item rows%s\n",
      FactorPrecisionName(precision), static_cast<unsigned long long>(g),
      static_cast<unsigned long long>(user_rows),
      static_cast<unsigned long long>(item_rows),
      version >= 3 ? ", 8-aligned" : ", packed (v2)");
  const bool aligned = version >= 3;
  const auto skip = [&]() -> Status {
    return aligned ? r.SkipAlign(8) : Status::OK();
  };
  switch (precision) {
    case FactorPrecision::kFp64: {
      for (const char* side : {"user", "item"}) {
        std::vector<double> table;
        GANC_RETURN_NOT_OK(skip());
        GANC_RETURN_NOT_OK(r.ReadVecF64(&table));
        std::printf("    %s table: %zu doubles (%zu bytes)\n", side,
                    table.size(), table.size() * sizeof(double));
      }
      break;
    }
    case FactorPrecision::kFp32: {
      for (const char* side : {"user", "item"}) {
        std::vector<float> table;
        GANC_RETURN_NOT_OK(skip());
        GANC_RETURN_NOT_OK(r.ReadVecF32(&table));
        std::printf("    %s table: %zu floats (%zu bytes)\n", side,
                    table.size(), table.size() * sizeof(float));
      }
      break;
    }
    case FactorPrecision::kInt8: {
      for (const char* side : {"user", "item"}) {
        std::vector<int8_t> q;
        std::vector<float> scale;
        std::vector<float> center;
        std::vector<int32_t> qsum;
        GANC_RETURN_NOT_OK(skip());
        GANC_RETURN_NOT_OK(r.ReadVecI8(&q));
        GANC_RETURN_NOT_OK(skip());
        GANC_RETURN_NOT_OK(r.ReadVecF32(&scale));
        GANC_RETURN_NOT_OK(skip());
        GANC_RETURN_NOT_OK(r.ReadVecF32(&center));
        GANC_RETURN_NOT_OK(skip());
        GANC_RETURN_NOT_OK(r.ReadVecI32(&qsum));
        std::printf("    %s codes: %zu int8 (%zu rows x %llu)\n", side,
                    q.size(), scale.size(),
                    static_cast<unsigned long long>(g));
        const std::string prefix(side);
        PrintRowParamSummary((prefix + " scale").c_str(), scale);
        PrintRowParamSummary((prefix + " center").c_str(), center);
      }
      break;
    }
  }
  return r.ExpectEnd();
}

// `inspect`: dump an artifact's header and section table using the
// validating reader, so a broken file is diagnosed instead of decoded.
int Inspect(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  ArtifactReader reader(is);
  Result<ArtifactHeader> header = reader.ReadHeader();
  if (!header.ok()) {
    std::fprintf(stderr, "header: %s\n", header.status().ToString().c_str());
    return 1;
  }
  const char* kind_name = "?";
  switch (static_cast<ArtifactKind>(header->kind)) {
    case ArtifactKind::kModel:
      kind_name = "model";
      break;
    case ArtifactKind::kDatasetCache:
      kind_name = "dataset-cache";
      break;
    case ArtifactKind::kPipeline:
      kind_name = "pipeline";
      break;
    case ArtifactKind::kTopNStore:
      kind_name = "topn-store";
      break;
  }
  const char* model_name = nullptr;
  if (static_cast<ArtifactKind>(header->kind) == ArtifactKind::kModel) {
    switch (static_cast<ModelType>(header->type_tag)) {
      case ModelType::kPop: model_name = "Pop"; break;
      case ModelType::kRandom: model_name = "Random"; break;
      case ModelType::kRandomWalk: model_name = "RP3b"; break;
      case ModelType::kItemKnn: model_name = "ItemKNN"; break;
      case ModelType::kUserKnn: model_name = "UserKNN"; break;
      case ModelType::kPsvd: model_name = "PSVD"; break;
      case ModelType::kRsvd: model_name = "RSVD"; break;
      case ModelType::kBpr: model_name = "BPR"; break;
      case ModelType::kCofi: model_name = "CofiRank"; break;
    }
  }
  std::printf("%s: GANC artifact, format version %u%s\n", path.c_str(),
              header->version,
              header->version >= 3
                  ? " (64-byte aligned payloads, mmap-able)"
                  : " (packed payloads, stream-only)");
  std::printf("  kind: %u (%s)\n", header->kind, kind_name);
  if (model_name != nullptr) {
    std::printf("  type tag: %u (%s)\n", header->type_tag, model_name);
  } else {
    std::printf("  type tag: %u\n", header->type_tag);
  }
  size_t total_payload = 0;
  for (int section = 0;; ++section) {
    Result<ArtifactReader::Section> s = reader.ReadSection();
    if (!s.ok()) {
      std::fprintf(stderr, "section %d: %s\n", section,
                   s.status().ToString().c_str());
      return 1;
    }
    if (s->id == kEndSectionId) break;
    // ReadSection already verified the stored checksum matches this.
    const uint64_t checksum = Fnv1aHash(s->payload().data(), s->payload().size());
    std::printf("  section %u: %zu bytes, fnv1a %016llx (verified)\n", s->id,
                s->payload().size(),
                static_cast<unsigned long long>(checksum));
    total_payload += s->payload().size();
    const auto kind = static_cast<ArtifactKind>(header->kind);
    if (kind == ArtifactKind::kModel && s->id == kFactorTableSection) {
      if (Status fs = InspectFactorSection(header->version, s->payload());
          !fs.ok()) {
        std::fprintf(stderr, "  factor table decode: %s\n",
                     fs.ToString().c_str());
        return 1;
      }
    }
    if (kind == ArtifactKind::kDatasetCache && s->id == 1) {
      // Dataset-cache dims section: [users i32][items i32][nnz i64].
      PayloadReader dr(s->payload());
      int32_t nu = 0;
      int32_t ni = 0;
      int64_t nr = 0;
      if (dr.ReadI32(&nu).ok() && dr.ReadI32(&ni).ok() &&
          dr.ReadI64(&nr).ok() && dr.ExpectEnd().ok()) {
        std::printf("    dims: %d users x %d items, %lld ratings\n", nu, ni,
                    static_cast<long long>(nr));
      }
    }
  }
  std::printf("  end marker present; %zu payload bytes total\n",
              total_payload);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<std::string> known = {
      "dataset",       "ratings-file", "delimiter",     "skip-header",
      "dataset-cache", "kappa",        "arec",          "theta",
      "crec",          "top-n",        "sample-size",   "seed",
      "threads",       "theta-out",    "output",        "out",
      "save-model",    "save-pipeline", "load-model",   "load-pipeline",
      "users",         "head-users",   "factor-precision", "list",
      "mmap",          "items",        "mean-activity", "verbose",
      "requests",      "shards",       "train-memory-budget", "port",
      "host",          "help"};
  Result<Flags> flags = Flags::Parse(argc, argv, known);
  if (!flags.ok()) {
    std::fprintf(stderr, "%s\n", flags.status().ToString().c_str());
    Usage();
    return 2;
  }
  if (flags->GetBool("help", false)) {
    Usage();
    return 0;
  }
  std::string command = "recommend";
  if (!flags->positional().empty()) {
    command = flags->positional()[0];
    // `inspect` takes the artifact path as a second positional.
    const size_t max_positional = command == "inspect" ? 2 : 1;
    if (flags->positional().size() > max_positional) {
      std::fprintf(stderr, "too many positional arguments\n");
      Usage();
      return 2;
    }
  }
  if (command == "recommend") return Recommend(*flags);
  if (command == "train") return Train(*flags);
  if (command == "cache-dataset") return CacheDataset(*flags);
  if (command == "topn") return TopNDump(*flags);
  if (command == "precompute-topn") return PrecomputeTopN(*flags);
  if (command == "replay") return Replay(*flags);
  if (command == "metrics") return MetricsScrape(*flags);
  if (command == "kernels") return Kernels(*flags);
  if (command == "synth") return Synth(*flags);
  if (command == "inspect") {
    if (flags->positional().size() != 2) {
      std::fprintf(stderr, "inspect requires an artifact path\n");
      Usage();
      return 2;
    }
    return Inspect(flags->positional()[1]);
  }
  std::fprintf(stderr, "unknown command '%s'\n", command.c_str());
  Usage();
  return 2;
}
