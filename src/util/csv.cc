#include "util/csv.h"

#include <fstream>
#include <sstream>

namespace ganc {

namespace {
std::string Trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}
}  // namespace

std::vector<std::string> SplitLine(const std::string& line, char delim) {
  std::vector<std::string> fields;
  std::string field;
  std::istringstream ss(line);
  while (std::getline(ss, field, delim)) fields.push_back(Trim(field));
  return fields;
}

Result<CsvTable> ReadDelimited(const std::string& path, char delim,
                               bool skip_header) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  CsvTable table;
  std::string line;
  bool first_content_line = true;
  while (std::getline(in, line)) {
    const std::string trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    if (first_content_line) {
      first_content_line = false;
      if (skip_header) continue;
    }
    table.rows.push_back(SplitLine(trimmed, delim));
  }
  return table;
}

Status WriteDelimited(const std::string& path, char delim,
                      const std::vector<std::vector<std::string>>& rows) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  for (const auto& row : rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out << delim;
      out << row[i];
    }
    out << '\n';
  }
  if (!out) return Status::IOError("write failed for " + path);
  return Status::OK();
}

std::string FormatDouble(double v, int precision) {
  std::ostringstream ss;
  ss.setf(std::ios::fixed);
  ss.precision(precision);
  ss << v;
  return ss.str();
}

}  // namespace ganc
