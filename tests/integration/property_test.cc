// Parameterized property tests: framework invariants swept across the
// configuration space with TEST_P / INSTANTIATE_TEST_SUITE_P, per the
// paper's definitions rather than any single fixture's numbers.

#include <algorithm>
#include <cmath>
#include <set>
#include <tuple>

#include <gtest/gtest.h>

#include "core/ganc.h"
#include "core/preference.h"
#include "data/longtail.h"
#include "data/split.h"
#include "data/synthetic.h"
#include "eval/metrics.h"
#include "recommender/pop.h"
#include "recommender/psvd.h"
#include "util/stats.h"

namespace ganc {
namespace {

// Shared fixture data (built once; parameterized tests only read it).
struct World {
  RatingDataset train;
  RatingDataset test;
  PsvdRecommender psvd{{.num_factors = 8}};
  std::unique_ptr<NormalizedAccuracyScorer> scorer;

  World() {
    auto spec = TinySpec();
    spec.num_users = 200;
    spec.num_items = 220;
    spec.mean_activity = 28.0;
    auto ds = GenerateSynthetic(spec);
    EXPECT_TRUE(ds.ok());
    auto split = PerUserRatioSplit(*ds, {.train_ratio = 0.5, .seed = 30});
    EXPECT_TRUE(split.ok());
    train = std::move(split->train);
    test = std::move(split->test);
    EXPECT_TRUE(psvd.Fit(train).ok());
    scorer = std::make_unique<NormalizedAccuracyScorer>(&psvd);
  }
};

const World& GetWorld() {
  static const World* world = new World();
  return *world;
}

// ---------------------------------------------------------------------------
// GANC output invariants across (coverage kind, theta model, N).

using GancParam = std::tuple<CoverageKind, PreferenceModel, int>;

class GancInvariantTest : public ::testing::TestWithParam<GancParam> {};

TEST_P(GancInvariantTest, ListsAreValidAndComplete) {
  const auto& [kind, model, n] = GetParam();
  const World& w = GetWorld();
  auto theta = ComputePreference(model, w.train);
  ASSERT_TRUE(theta.ok());
  Ganc ganc(w.scorer.get(), *theta, kind);
  GancConfig cfg;
  cfg.top_n = n;
  cfg.sample_size = 40;
  auto topn = ganc.RecommendAll(w.train, cfg);
  ASSERT_TRUE(topn.ok());
  ASSERT_EQ(topn->size(), static_cast<size_t>(w.train.num_users()));
  for (UserId u = 0; u < w.train.num_users(); ++u) {
    const auto& pu = (*topn)[static_cast<size_t>(u)];
    // Exactly N items (the catalog always has enough unseen items here).
    EXPECT_EQ(pu.size(), static_cast<size_t>(n));
    // Distinct, in-range, and unseen.
    std::set<ItemId> uniq(pu.begin(), pu.end());
    EXPECT_EQ(uniq.size(), pu.size());
    for (ItemId i : pu) {
      EXPECT_GE(i, 0);
      EXPECT_LT(i, w.train.num_items());
      EXPECT_FALSE(w.train.HasRating(u, i));
    }
  }
}

TEST_P(GancInvariantTest, DeterministicAcrossRuns) {
  const auto& [kind, model, n] = GetParam();
  const World& w = GetWorld();
  auto theta = ComputePreference(model, w.train);
  ASSERT_TRUE(theta.ok());
  Ganc ganc(w.scorer.get(), *theta, kind);
  GancConfig cfg;
  cfg.top_n = n;
  cfg.sample_size = 40;
  cfg.seed = 99;
  auto a = ganc.RecommendAll(w.train, cfg);
  auto b = ganc.RecommendAll(w.train, cfg);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);
}

INSTANTIATE_TEST_SUITE_P(
    AllCoverageThetaN, GancInvariantTest,
    ::testing::Combine(
        ::testing::Values(CoverageKind::kRand, CoverageKind::kStat,
                          CoverageKind::kDyn),
        ::testing::Values(PreferenceModel::kNormalized,
                          PreferenceModel::kTfidf,
                          PreferenceModel::kGeneralized,
                          PreferenceModel::kConstant),
        ::testing::Values(1, 5, 20)),
    [](const ::testing::TestParamInfo<GancParam>& info) {
      return CoverageKindName(std::get<0>(info.param)) +
             PreferenceModelName(std::get<1>(info.param)) + "N" +
             std::to_string(std::get<2>(info.param));
    });

// ---------------------------------------------------------------------------
// Metric invariants across N.

class MetricsInvariantTest : public ::testing::TestWithParam<int> {};

TEST_P(MetricsInvariantTest, AllMetricsInValidRanges) {
  const int n = GetParam();
  const World& w = GetWorld();
  const auto topn = RecommendAllUsers(w.psvd, w.train, n);
  const auto m = EvaluateTopN(w.train, w.test, topn,
                              MetricsConfig{.top_n = n});
  EXPECT_GE(m.precision, 0.0);
  EXPECT_LE(m.precision, 1.0);
  EXPECT_GE(m.recall, 0.0);
  EXPECT_LE(m.recall, 1.0);
  EXPECT_GE(m.f_measure, 0.0);
  EXPECT_LE(m.f_measure, 0.5);  // P*R/(P+R) <= min(P,R)/2... <= 0.5
  EXPECT_GE(m.lt_accuracy, 0.0);
  EXPECT_LE(m.lt_accuracy, 1.0);
  EXPECT_GE(m.strat_recall, 0.0);
  EXPECT_LE(m.strat_recall, 1.0 + 1e-9);
  EXPECT_GE(m.coverage, 0.0);
  EXPECT_LE(m.coverage, 1.0);
  EXPECT_GE(m.gini, 0.0);
  EXPECT_LE(m.gini, 1.0);
  EXPECT_GE(m.ndcg, 0.0);
  EXPECT_LE(m.ndcg, 1.0 + 1e-9);
}

TEST_P(MetricsInvariantTest, RecallMonotoneInN) {
  const int n = GetParam();
  if (n >= 20) return;
  const World& w = GetWorld();
  // Same ranking, evaluated at N and a larger N: recall and coverage can
  // only grow (lists are prefixes of the larger ranking).
  const auto big = RecommendAllUsers(w.psvd, w.train, 25);
  const auto m_small = EvaluateTopN(w.train, w.test, big,
                                    MetricsConfig{.top_n = n});
  const auto m_large = EvaluateTopN(w.train, w.test, big,
                                    MetricsConfig{.top_n = n + 5});
  EXPECT_GE(m_large.recall, m_small.recall - 1e-12);
  EXPECT_GE(m_large.coverage, m_small.coverage - 1e-12);
  EXPECT_GE(m_large.strat_recall, m_small.strat_recall - 1e-12);
}

INSTANTIATE_TEST_SUITE_P(NSweep, MetricsInvariantTest,
                         ::testing::Values(1, 3, 5, 10, 20));

// ---------------------------------------------------------------------------
// Split invariants across kappa.

class SplitInvariantTest : public ::testing::TestWithParam<double> {};

TEST_P(SplitInvariantTest, PartitionAndRatioHold) {
  const double kappa = GetParam();
  const World& w = GetWorld();
  // Re-split the union of train+test (the original dataset's ratings).
  RatingDatasetBuilder b(w.train.num_users(), w.train.num_items());
  for (const Rating& r : w.train.ratings()) {
    ASSERT_TRUE(b.Add(r.user, r.item, r.value).ok());
  }
  for (const Rating& r : w.test.ratings()) {
    ASSERT_TRUE(b.Add(r.user, r.item, r.value).ok());
  }
  auto ds = std::move(b).Build();
  ASSERT_TRUE(ds.ok());
  auto split = PerUserRatioSplit(*ds, {.train_ratio = kappa, .seed = 31});
  ASSERT_TRUE(split.ok());
  EXPECT_EQ(split->train.num_ratings() + split->test.num_ratings(),
            ds->num_ratings());
  for (UserId u = 0; u < ds->num_users(); ++u) {
    const double total = static_cast<double>(ds->Activity(u));
    if (total == 0) continue;
    EXPECT_NEAR(split->train.Activity(u), std::llround(kappa * total), 1.0);
    EXPECT_GE(split->train.Activity(u), 1);
  }
  // Disjointness spot check.
  for (int64_t k = 0; k < std::min<int64_t>(200, split->test.num_ratings());
       ++k) {
    const Rating& r = split->test.ratings()[static_cast<size_t>(k)];
    EXPECT_FALSE(split->train.HasRating(r.user, r.item));
  }
}

INSTANTIATE_TEST_SUITE_P(KappaSweep, SplitInvariantTest,
                         ::testing::Values(0.2, 0.5, 0.8, 1.0));

// ---------------------------------------------------------------------------
// Synthetic generator invariants across spec variations.

struct SpecVariation {
  const char* label;
  double zipf;
  double sigma;
  int32_t min_activity;
  double step;
};

class SyntheticInvariantTest
    : public ::testing::TestWithParam<SpecVariation> {};

TEST_P(SyntheticInvariantTest, StructuralInvariantsHold) {
  const SpecVariation& v = GetParam();
  auto spec = TinySpec();
  spec.num_users = 120;
  spec.num_items = 200;
  spec.mean_activity = 20.0;
  spec.zipf_exponent = v.zipf;
  spec.activity_sigma = v.sigma;
  spec.min_activity = v.min_activity;
  spec.rating_step = v.step;
  auto ds = GenerateSynthetic(spec);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->num_users(), spec.num_users);
  EXPECT_EQ(ds->num_items(), spec.num_items);
  for (UserId u = 0; u < ds->num_users(); ++u) {
    EXPECT_GE(ds->Activity(u), spec.min_activity);
  }
  for (const Rating& r : ds->ratings()) {
    EXPECT_GE(r.value, spec.rating_min);
    EXPECT_LE(r.value, spec.rating_max);
    const double steps = (r.value - spec.rating_min) / spec.rating_step;
    EXPECT_NEAR(steps, std::round(steps), 1e-4);
  }
  // Determinism.
  auto again = GenerateSynthetic(spec);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->num_ratings(), ds->num_ratings());
}

TEST_P(SyntheticInvariantTest, PopularityActivityAnticorrelation) {
  const SpecVariation& v = GetParam();
  if (v.sigma < 0.5) return;  // needs activity spread to measure
  auto spec = TinySpec();
  spec.num_users = 300;
  spec.num_items = 400;
  spec.mean_activity = 25.0;
  spec.zipf_exponent = v.zipf;
  spec.activity_sigma = v.sigma;
  spec.min_activity = v.min_activity;
  spec.rating_step = v.step;
  auto ds = GenerateSynthetic(spec);
  ASSERT_TRUE(ds.ok());
  std::vector<double> activity, avg_pop;
  for (UserId u = 0; u < ds->num_users(); ++u) {
    const auto& row = ds->ItemsOf(u);
    if (row.empty()) continue;
    double acc = 0.0;
    for (const ItemRating& ir : row) {
      acc += static_cast<double>(ds->Popularity(ir.item));
    }
    activity.push_back(static_cast<double>(row.size()));
    avg_pop.push_back(acc / static_cast<double>(row.size()));
  }
  EXPECT_LT(SpearmanCorrelation(activity, avg_pop), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    SpecSweep, SyntheticInvariantTest,
    ::testing::Values(SpecVariation{"mild", 0.8, 0.8, 5, 1.0},
                      SpecVariation{"skewed", 1.6, 1.0, 5, 1.0},
                      SpecVariation{"sparseusers", 1.2, 1.4, 4, 1.0},
                      SpecVariation{"halfstar", 1.2, 1.0, 10, 0.5},
                      SpecVariation{"tenlevels", 1.0, 0.9, 6, 0.4}),
    [](const ::testing::TestParamInfo<SpecVariation>& info) {
      return info.param.label;
    });

// ---------------------------------------------------------------------------
// Preference model invariants across models.

class PreferenceInvariantTest
    : public ::testing::TestWithParam<PreferenceModel> {};

TEST_P(PreferenceInvariantTest, UnitRangeAndSizeAndDeterminism) {
  const PreferenceModel model = GetParam();
  const World& w = GetWorld();
  auto a = ComputePreference(model, w.train, 77, 0.4);
  auto b = ComputePreference(model, w.train, 77, 0.4);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);
  EXPECT_EQ(a->size(), static_cast<size_t>(w.train.num_users()));
  for (double t : *a) {
    EXPECT_GE(t, 0.0);
    EXPECT_LE(t, 1.0);
    EXPECT_TRUE(std::isfinite(t));
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, PreferenceInvariantTest,
    ::testing::Values(PreferenceModel::kActivity, PreferenceModel::kNormalized,
                      PreferenceModel::kTfidf, PreferenceModel::kGeneralized,
                      PreferenceModel::kRandom, PreferenceModel::kConstant),
    [](const ::testing::TestParamInfo<PreferenceModel>& info) {
      return PreferenceModelName(info.param);
    });

// ---------------------------------------------------------------------------
// Gini/coverage coupling: for a fixed collection shape, pushing more mass
// onto fewer items must raise gini and lower coverage.

class ConcentrationTest : public ::testing::TestWithParam<int> {};

TEST_P(ConcentrationTest, ConcentrationRaisesGini) {
  const int distinct = GetParam();
  const World& w = GetWorld();
  // Everyone gets items 0..N-1 from a pool of `distinct` items.
  std::vector<std::vector<ItemId>> topn(
      static_cast<size_t>(w.train.num_users()));
  for (UserId u = 0; u < w.train.num_users(); ++u) {
    for (int k = 0; k < 5; ++k) {
      topn[static_cast<size_t>(u)].push_back(
          static_cast<ItemId>((u + k) % distinct));
    }
  }
  const auto m = EvaluateTopN(w.train, w.test, topn,
                              MetricsConfig{.top_n = 5});
  EXPECT_NEAR(m.coverage,
              static_cast<double>(std::min(distinct, w.train.num_items())) /
                  static_cast<double>(w.train.num_items()),
              1e-9);
}

INSTANTIATE_TEST_SUITE_P(PoolSweep, ConcentrationTest,
                         ::testing::Values(5, 20, 80, 200));

}  // namespace
}  // namespace ganc
