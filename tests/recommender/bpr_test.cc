#include "recommender/bpr.h"

#include <gtest/gtest.h>

#include "data/split.h"
#include "data/synthetic.h"
#include "util/rng.h"

namespace ganc {
namespace {

BprConfig FastConfig() {
  BprConfig c;
  c.num_factors = 16;
  c.num_epochs = 25;
  return c;
}

struct Fixture {
  RatingDataset train;
  RatingDataset test;

  Fixture() {
    auto spec = TinySpec();
    spec.num_users = 250;
    spec.num_items = 250;
    spec.mean_activity = 35.0;
    auto ds = GenerateSynthetic(spec);
    EXPECT_TRUE(ds.ok());
    auto split = PerUserRatioSplit(*ds, {.train_ratio = 0.7, .seed = 6});
    EXPECT_TRUE(split.ok());
    train = std::move(split->train);
    test = std::move(split->test);
  }
};

TEST(BprTest, FitsAndScores) {
  Fixture f;
  BprRecommender bpr(FastConfig());
  ASSERT_TRUE(bpr.Fit(f.train).ok());
  EXPECT_EQ(bpr.ScoreAll(0).size(), static_cast<size_t>(f.train.num_items()));
  EXPECT_EQ(bpr.name(), "BPR");
}

TEST(BprTest, PairwiseAccuracyBeatsChance) {
  // BPR's objective is exactly pairwise ranking: held-out positives must
  // outrank random unseen items clearly more than 50% of the time.
  Fixture f;
  BprRecommender bpr(FastConfig());
  ASSERT_TRUE(bpr.Fit(f.train).ok());
  const double auc = bpr.PairwiseAccuracy(f.train, f.test, 4000, 3);
  EXPECT_GT(auc, 0.62);
}

TEST(BprTest, TrainPositivesOutrankUnseen) {
  Fixture f;
  BprRecommender bpr(FastConfig());
  ASSERT_TRUE(bpr.Fit(f.train).ok());
  int correct = 0, total = 0;
  Rng rng(7);
  for (int t = 0; t < 2000; ++t) {
    const Rating& pos = f.train.ratings()[static_cast<size_t>(
        rng.UniformInt(f.train.ratings().size()))];
    const ItemId j = static_cast<ItemId>(
        rng.UniformInt(static_cast<uint64_t>(f.train.num_items())));
    if (f.train.HasRating(pos.user, j)) continue;
    const auto s = bpr.ScoreAll(pos.user);
    ++total;
    if (s[static_cast<size_t>(pos.item)] > s[static_cast<size_t>(j)]) {
      ++correct;
    }
  }
  ASSERT_GT(total, 100);
  EXPECT_GT(static_cast<double>(correct) / total, 0.75);
}

TEST(BprTest, DeterministicPerSeed) {
  Fixture f;
  BprRecommender a(FastConfig()), b(FastConfig());
  ASSERT_TRUE(a.Fit(f.train).ok());
  ASSERT_TRUE(b.Fit(f.train).ok());
  EXPECT_EQ(a.ScoreAll(5), b.ScoreAll(5));
}

TEST(BprTest, InvalidConfigAndEmptyDataRejected) {
  Fixture f;
  BprConfig c = FastConfig();
  c.num_factors = 0;
  EXPECT_FALSE(BprRecommender(c).Fit(f.train).ok());
  RatingDatasetBuilder b(3, 3);
  auto empty = std::move(b).Build();
  ASSERT_TRUE(empty.ok());
  EXPECT_FALSE(BprRecommender(FastConfig()).Fit(*empty).ok());
}

}  // namespace
}  // namespace ganc
