// Resource-allocation ("5D") re-ranking, after Ho, Chiang & Hsu, "Who
// likes it more? Mining worth-recommending items from long tails by
// modeling relative preference", WSDM 2014, as configured by the paper
// (Section IV-A: variants 5D(ARec) and 5D(ARec, A, RR), k = 3|I|, q = 1).
//
// Phase 1 (allocation): every user distributes one unit of resource over
// their rated items proportionally to the rating values, giving each item
// a rating-weighted resource mass.
// Phase 2 (distribution): each item routes its mass back to users
// proportionally to relative predicted preference r_hat(u,i)^q /
// sum_s r_hat(s,i)^q, yielding a per-user-item "balance" signal.
//
// Each candidate pair then receives a 5D score combining five normalized
// dimensions — accuracy (predicted rating), balance (returned resource),
// coverage (inverse popularity), quality (item average rating), and
// quantity of long-tail (tail-membership indicator) — and the top-N is
// ranked by that score.
//
// Optional switches reproduce the published variants:
//   * A  (accuracy filtering): restrict candidates to the user's top-k
//     items by predicted rating before 5D scoring;
//   * RR (rank by rankings): replace raw dimension values by per-user
//     Borda ranks before summing, making dimensions scale-free.
//
// Note: the reference implementation is not public; this reconstruction
// follows the description above (and the paper's reported behaviour:
// plain 5D maximizes long-tail accuracy at a severe F-measure cost, while
// A + RR recovers part of the accuracy). See DESIGN.md section 4.

#ifndef GANC_RERANK_RESOURCE_ALLOCATION_H_
#define GANC_RERANK_RESOURCE_ALLOCATION_H_

#include <string>
#include <vector>

#include "data/longtail.h"
#include "recommender/recommender.h"
#include "rerank/reranker.h"

namespace ganc {

/// Configuration for the 5D re-ranker.
struct FiveDConfig {
  bool accuracy_filter = false;  ///< the "A" switch
  bool rank_by_rankings = false; ///< the "RR" switch
  /// Candidate pool size for accuracy filtering, as a multiple of N
  /// (top k = accuracy_filter_multiple * N predicted items survive).
  int accuracy_filter_multiple = 20;
  double q = 1.0;  ///< relative-preference exponent (paper: q = 1)
};

/// 5D(ARec[, A, RR]) re-ranker.
class FiveDReranker : public Reranker {
 public:
  /// `base` must be fitted on `train`; both must outlive this object.
  FiveDReranker(const Recommender* base, const RatingDataset* train,
                FiveDConfig config);

  Result<RerankedCollection> RecommendAll(const RatingDataset& train,
                                          int top_n) const override;
  std::string name() const override;

 private:
  const Recommender* base_;
  const RatingDataset* train_;
  FiveDConfig config_;
  LongTailInfo tail_;
  std::vector<double> item_resource_;    // phase-1 mass per item
  std::vector<double> inv_popularity_;   // coverage dimension
  std::vector<double> item_avg_rating_;  // quality dimension
};

}  // namespace ganc

#endif  // GANC_RERANK_RESOURCE_ALLOCATION_H_
