#include "recommender/user_knn.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "recommender/model_io.h"
#include "recommender/sparse_similarity.h"
#include "util/serialize.h"

namespace ganc {

UserKnnRecommender::UserKnnRecommender(UserKnnConfig config)
    : config_(config) {}

Status UserKnnRecommender::Fit(const RatingDataset& train) {
  return Fit(train, nullptr);
}

Status UserKnnRecommender::Fit(const RatingDataset& train, ThreadPool* pool) {
  if (config_.num_neighbors <= 0) {
    return Status::InvalidArgument("num_neighbors must be positive");
  }
  num_items_ = train.num_items();
  train_ = &train;
  const int32_t num_users = train.num_users();

  // Per-user means and centered norms, streamed through the budgeted
  // window sweep (validates mapped rows; later sweeps reuse the
  // watermark).
  user_mean_.assign(static_cast<size_t>(num_users), 0.0);
  std::vector<double> norms(static_cast<size_t>(num_users), 0.0);
  GANC_RETURN_NOT_OK(train.SweepRowWindows(
      train.train_budget_bytes(), 1, [&](const RowWindow& w) {
        for (UserId u = w.begin; u < w.end; ++u) {
          const auto& row = train.ItemsOf(u);
          if (row.empty()) continue;
          double acc = 0.0;
          for (const ItemRating& ir : row) acc += ir.value;
          user_mean_[static_cast<size_t>(u)] =
              acc / static_cast<double>(row.size());
          for (const ItemRating& ir : row) {
            const double c = ir.value - user_mean_[static_cast<size_t>(u)];
            norms[static_cast<size_t>(u)] += c * c;
          }
          norms[static_cast<size_t>(u)] =
              std::sqrt(norms[static_cast<size_t>(u)]);
        }
        return Status::OK();
      }));

  // Inverted-index sweep over the pre-sampled, pre-centered audiences:
  // per user pair the centered co-ratings accumulate in ascending item
  // order, exactly as the legacy item-outer hash-map builder did.
  const SparseMatrix sampled = SampleItemAudiences(
      train, config_.max_audience, config_.seed, user_mean_);
  const SparseMatrix by_user = Transpose(sampled, num_users);
  NeighborLists<Neighbor> lists = SparseCosineTopK<Neighbor>(
      by_user, sampled, norms, config_.num_neighbors, pool);
  neighbor_offsets_ = std::move(lists.offsets);
  neighbors_ = std::move(lists.entries);
  return BuildScoringRows(train);
}

Status UserKnnRecommender::BuildScoringRows(const RatingDataset& train) {
  const int32_t num_users = train.num_users();
  row_offsets_.clear();
  row_offsets_.reserve(static_cast<size_t>(num_users) + 1);
  row_offsets_.push_back(0);
  row_items_.clear();
  row_centered_.clear();
  row_items_.reserve(static_cast<size_t>(train.num_ratings()));
  row_centered_.reserve(static_cast<size_t>(train.num_ratings()));
  return train.SweepRowWindows(
      train.train_budget_bytes(), 1, [&](const RowWindow& w) {
        for (UserId u = w.begin; u < w.end; ++u) {
          const double mean = user_mean_[static_cast<size_t>(u)];
          for (const ItemRating& ir : train.ItemsOf(u)) {
            row_items_.push_back(ir.item);
            row_centered_.push_back(static_cast<double>(ir.value) - mean);
          }
          row_offsets_.push_back(row_items_.size());
        }
        return Status::OK();
      });
}

void UserKnnRecommender::ScoreInto(UserId u, std::span<double> out) const {
  std::fill(out.begin(), out.end(), 0.0);
  for (const Neighbor& nb : NeighborsOf(u)) {
    const double sim = static_cast<double>(nb.sim);
    const size_t begin = row_offsets_[static_cast<size_t>(nb.user)];
    const size_t end = row_offsets_[static_cast<size_t>(nb.user) + 1];
    for (size_t e = begin; e < end; ++e) {
      out[static_cast<size_t>(row_items_[e])] += sim * row_centered_[e];
    }
  }
}

void UserKnnRecommender::ScoreBatchInto(std::span<const UserId> users,
                                        std::span<double> out) const {
  const size_t ni = static_cast<size_t>(num_items_);
  std::fill(out.begin(), out.end(), 0.0);
  for (size_t b = 0; b < users.size(); ++b) {
    const std::span<double> row = out.subspan(b * ni, ni);
    for (const Neighbor& nb : NeighborsOf(users[b])) {
      const double sim = static_cast<double>(nb.sim);
      const size_t begin = row_offsets_[static_cast<size_t>(nb.user)];
      const size_t end = row_offsets_[static_cast<size_t>(nb.user) + 1];
      for (size_t e = begin; e < end; ++e) {
        row[static_cast<size_t>(row_items_[e])] += sim * row_centered_[e];
      }
    }
  }
}

Status UserKnnRecommender::Save(std::ostream& os) const {
  if (num_items() == 0 || train_ == nullptr) {
    return Status::FailedPrecondition("cannot save unfitted UserKNN model");
  }
  ArtifactWriter w(os);
  GANC_RETURN_NOT_OK(w.WriteHeader(ArtifactKind::kModel,
                                   static_cast<uint32_t>(ModelType::kUserKnn)));
  PayloadWriter config;
  config.WriteI32(config_.num_neighbors);
  config.WriteI32(config_.max_audience);
  config.WriteU64(config_.seed);
  GANC_RETURN_NOT_OK(w.WriteSection(kModelConfigSection, config));
  PayloadWriter state;
  state.WriteI32(num_items_);
  state.WriteU64(train_->Fingerprint());
  state.WriteVecF64(user_mean_);
  WriteNeighborLists(state, std::span<const size_t>(neighbor_offsets_),
                     std::span<const Neighbor>(neighbors_));
  GANC_RETURN_NOT_OK(w.WriteSection(kModelStateSection, state));
  return w.Finish();
}

Status UserKnnRecommender::Load(ArtifactReader& r, const RatingDataset* train) {
  if (train == nullptr) {
    return Status::FailedPrecondition(
        "UserKNN artifact requires a train dataset binding");
  }
  GANC_RETURN_NOT_OK(ReadModelHeader(r, ModelType::kUserKnn));
  Result<ArtifactReader::Section> config = r.ReadSectionExpect(
      kModelConfigSection);
  if (!config.ok()) return config.status();
  PayloadReader cr(config->payload());
  UserKnnConfig cfg;
  GANC_RETURN_NOT_OK(cr.ReadI32(&cfg.num_neighbors));
  GANC_RETURN_NOT_OK(cr.ReadI32(&cfg.max_audience));
  GANC_RETURN_NOT_OK(cr.ReadU64(&cfg.seed));
  GANC_RETURN_NOT_OK(cr.ExpectEnd());
  Result<ArtifactReader::Section> state = r.ReadSectionExpect(
      kModelStateSection);
  if (!state.ok()) return state.status();
  PayloadReader sr(state->payload());
  int32_t num_items = 0;
  uint64_t fingerprint = 0;
  std::vector<double> means;
  GANC_RETURN_NOT_OK(sr.ReadI32(&num_items));
  GANC_RETURN_NOT_OK(sr.ReadU64(&fingerprint));
  GANC_RETURN_NOT_OK(sr.ReadVecF64(&means));
  const int32_t num_users = static_cast<int32_t>(means.size());
  if (num_items != train->num_items() || num_users != train->num_users()) {
    return Status::InvalidArgument(
        "UserKNN artifact dimensions do not match the bound train dataset");
  }
  if (fingerprint != train->Fingerprint()) {
    return Status::InvalidArgument(
        "UserKNN artifact was trained on different data than the bound "
        "train dataset (fingerprint mismatch)");
  }
  std::vector<size_t> offsets;
  std::vector<Neighbor> entries;
  GANC_RETURN_NOT_OK(ReadNeighborLists(sr, num_users, num_users, "UserKNN",
                                       &offsets, &entries));
  GANC_RETURN_NOT_OK(sr.ExpectEnd());
  GANC_RETURN_NOT_OK(ExpectEndOfArtifact(r));
  config_ = cfg;
  num_items_ = num_items;
  train_ = train;
  user_mean_ = std::move(means);
  neighbor_offsets_ = std::move(offsets);
  neighbors_ = std::move(entries);
  return BuildScoringRows(*train);
}

}  // namespace ganc
