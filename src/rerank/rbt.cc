#include "rerank/rbt.h"

#include <algorithm>
#include <cmath>
#include <span>

#include "recommender/scoring_context.h"

namespace ganc {

RbtReranker::RbtReranker(const Recommender* base, const RatingDataset* train,
                         RbtConfig config)
    : base_(base), config_(config) {
  popularity_ = train->PopularityVector();
  item_avg_rating_.assign(static_cast<size_t>(train->num_items()), 0.0);
  for (ItemId i = 0; i < train->num_items(); ++i) {
    const auto& col = train->UsersOf(i);
    if (col.empty()) continue;
    double acc = 0.0;
    for (const UserRating& ur : col) acc += ur.value;
    item_avg_rating_[static_cast<size_t>(i)] =
        acc / static_cast<double>(col.size());
  }
}

std::string RbtReranker::name() const {
  return "RBT(" + base_->name() + ", " +
         (config_.criterion == RbtCriterion::kPop ? "Pop" : "Avg") + ")";
}

Result<RerankedCollection> RbtReranker::RecommendAll(
    const RatingDataset& train, int top_n) const {
  if (top_n <= 0) return Status::InvalidArgument("top_n must be positive");
  RerankedCollection result(static_cast<size_t>(train.num_users()));

  ScoringContext ctx;
  ForEachScoredUser(*base_, 0, static_cast<size_t>(train.num_users()), ctx,
                    [&](UserId u, std::span<const double> scores) {
    train.UnratedItemsInto(u, &ctx.Candidates());
    std::vector<ItemId>& head = ctx.Items(1);
    std::vector<ItemId>& tail = ctx.Items(2);
    head.clear();
    tail.clear();
    for (ItemId i : ctx.Candidates()) {
      const double pred =
          std::min(scores[static_cast<size_t>(i)], config_.rating_max);
      if (pred < config_.min_threshold) continue;  // below T_H: dropped
      (pred >= config_.rerank_threshold ? head : tail).push_back(i);
    }
    // Head: alternative criterion. Pop = ascending popularity (push the
    // least-known confident items first); Avg = descending average rating.
    if (config_.criterion == RbtCriterion::kPop) {
      std::sort(head.begin(), head.end(), [&](ItemId a, ItemId b) {
        const double pa = popularity_[static_cast<size_t>(a)];
        const double pb = popularity_[static_cast<size_t>(b)];
        if (pa != pb) return pa < pb;
        return a < b;
      });
    } else {
      std::sort(head.begin(), head.end(), [&](ItemId a, ItemId b) {
        const double ra = item_avg_rating_[static_cast<size_t>(a)];
        const double rb = item_avg_rating_[static_cast<size_t>(b)];
        if (ra != rb) return ra > rb;
        return a < b;
      });
    }
    // Tail: standard predicted-rating order.
    std::sort(tail.begin(), tail.end(), [&](ItemId a, ItemId b) {
      const double sa = scores[static_cast<size_t>(a)];
      const double sb = scores[static_cast<size_t>(b)];
      if (sa != sb) return sa > sb;
      return a < b;
    });

    auto& out = result[static_cast<size_t>(u)];
    out.reserve(static_cast<size_t>(top_n));
    for (ItemId i : head) {
      if (static_cast<int>(out.size()) >= top_n) break;
      out.push_back(i);
    }
    for (ItemId i : tail) {
      if (static_cast<int>(out.size()) >= top_n) break;
      out.push_back(i);
    }
  });
  return result;
}

}  // namespace ganc
