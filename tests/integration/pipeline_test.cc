// End-to-end integration tests: synthetic data -> split -> preference
// learning -> base recommenders -> GANC / baseline re-rankers -> metrics.
// These exercise the same pipeline the paper's Table IV uses, at toy scale.

#include <algorithm>
#include <cmath>
#include <map>

#include <gtest/gtest.h>

#include "core/ganc.h"
#include "core/preference.h"
#include "data/split.h"
#include "data/synthetic.h"
#include "eval/runner.h"
#include "recommender/pop.h"
#include "recommender/psvd.h"
#include "recommender/random_rec.h"
#include "recommender/rsvd.h"
#include "rerank/pra.h"
#include "rerank/rbt.h"
#include "rerank/resource_allocation.h"
#include "util/stats.h"

namespace ganc {
namespace {

class PipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto spec = TinySpec();
    spec.num_users = 400;
    spec.num_items = 350;
    spec.mean_activity = 30.0;
    auto ds = GenerateSynthetic(spec);
    ASSERT_TRUE(ds.ok());
    auto split = PerUserRatioSplit(*ds, {.train_ratio = 0.5, .seed = 21});
    ASSERT_TRUE(split.ok());
    train_ = new RatingDataset(std::move(split->train));
    test_ = new RatingDataset(std::move(split->test));

    rsvd_ = new RsvdRecommender({.num_factors = 8,
                                 .learning_rate = 0.02,
                                 .regularization = 0.02,
                                 .num_epochs = 30,
                                 .use_biases = true});
    ASSERT_TRUE(rsvd_->Fit(*train_).ok());
    psvd_ = new PsvdRecommender({.num_factors = 10});
    ASSERT_TRUE(psvd_->Fit(*train_).ok());

    auto theta = ComputePreference(PreferenceModel::kGeneralized, *train_);
    ASSERT_TRUE(theta.ok());
    theta_ = new std::vector<double>(std::move(theta).value());
  }

  static void TearDownTestSuite() {
    delete theta_;
    delete psvd_;
    delete rsvd_;
    delete test_;
    delete train_;
  }

  static RatingDataset* train_;
  static RatingDataset* test_;
  static RsvdRecommender* rsvd_;
  static PsvdRecommender* psvd_;
  static std::vector<double>* theta_;
};

RatingDataset* PipelineTest::train_ = nullptr;
RatingDataset* PipelineTest::test_ = nullptr;
RsvdRecommender* PipelineTest::rsvd_ = nullptr;
PsvdRecommender* PipelineTest::psvd_ = nullptr;
std::vector<double>* PipelineTest::theta_ = nullptr;

TEST_F(PipelineTest, TableIvStyleComparisonRuns) {
  NormalizedAccuracyScorer scorer(rsvd_);
  Ganc ganc_g(&scorer, *theta_, CoverageKind::kDyn);
  RbtReranker rbt(rsvd_, train_, {});
  FiveDReranker five(rsvd_, train_, {});
  PraReranker pra(rsvd_, train_, {});

  GancConfig gcfg;
  gcfg.top_n = 5;
  gcfg.sample_size = 50;

  const std::vector<AlgorithmEntry> entries = {
      {"RSVD", [&] { return RecommendAllUsers(*rsvd_, *train_, 5); }},
      {"5D(RSVD)", [&] { return five.RecommendAll(*train_, 5).value(); }},
      {"RBT(RSVD, Pop)", [&] { return rbt.RecommendAll(*train_, 5).value(); }},
      {"PRA(RSVD, 10)", [&] { return pra.RecommendAll(*train_, 5).value(); }},
      {"GANC(RSVD, thetaG, Dyn)",
       [&] { return ganc_g.RecommendAll(*train_, gcfg).value(); }},
  };
  const auto results =
      RunComparison(entries, *train_, *test_, MetricsConfig{.top_n = 5});
  ASSERT_EQ(results.size(), 5u);

  // Paper shape: the coverage-oriented re-rankers (5D, RBT, GANC) do not
  // reduce coverage vs raw RSVD, and GANC strictly improves it. PRA only
  // permutes the list head, so its coverage is not constrained here.
  // (Plain 5D concentrates on one global tail set, so its coverage can
  // fall below a toy-scale RSVD's; its invariant is LTAccuracy, below.)
  const double base_cov = results[0].metrics.coverage;
  EXPECT_GE(results[2].metrics.coverage, 0.75 * base_cov);  // RBT
  EXPECT_GT(results[4].metrics.coverage, base_cov);         // GANC
  // Paper shape: 5D maximizes LTAccuracy among these entries.
  double max_lt = 0.0;
  for (const auto& r : results) max_lt = std::max(max_lt, r.metrics.lt_accuracy);
  EXPECT_NEAR(results[1].metrics.lt_accuracy, max_lt, 1e-9);
}

TEST_F(PipelineTest, GancCoverageOrderingRandBeatsDynBeatsStatOrSimilar) {
  // Figure 6 shape: Rand and Dyn coverage recommenders lift coverage far
  // more than Stat.
  NormalizedAccuracyScorer scorer(psvd_);
  GancConfig cfg;
  cfg.top_n = 5;
  cfg.sample_size = 50;
  MetricsConfig mcfg{.top_n = 5};

  std::map<std::string, MetricsReport> metrics;
  for (CoverageKind kind :
       {CoverageKind::kRand, CoverageKind::kStat, CoverageKind::kDyn}) {
    Ganc g(&scorer, *theta_, kind);
    auto topn = g.RecommendAll(*train_, cfg);
    ASSERT_TRUE(topn.ok());
    metrics[CoverageKindName(kind)] = EvaluateTopN(*train_, *test_, *topn, mcfg);
  }
  EXPECT_GT(metrics["Dyn"].coverage, metrics["Stat"].coverage);
  EXPECT_GT(metrics["Rand"].coverage, metrics["Stat"].coverage);
}

TEST_F(PipelineTest, ThetaLevelControlsAccuracyCoverageTradeOff) {
  // The framework's central dial: scaling the learned theta vector up
  // moves every user toward the coverage objective, so F-measure must
  // fall and Coverage must rise monotonically along the scale. (The
  // paper's Figure 5 comparisons *between* theta models are a full-scale
  // effect; the dial itself is the invariant that must hold at any scale.)
  NormalizedAccuracyScorer scorer(psvd_);
  GancConfig cfg;
  cfg.top_n = 5;
  cfg.sample_size = 50;
  MetricsConfig mcfg{.top_n = 5};

  std::vector<MetricsReport> along_scale;
  for (double scale : {0.2, 1.0}) {
    std::vector<double> theta = *theta_;
    for (double& t : theta) t = std::clamp(t * scale, 0.0, 1.0);
    Ganc g(&scorer, theta, CoverageKind::kDyn);
    auto topn = g.RecommendAll(*train_, cfg);
    ASSERT_TRUE(topn.ok());
    along_scale.push_back(EvaluateTopN(*train_, *test_, *topn, mcfg));
  }
  EXPECT_GT(along_scale[0].f_measure, along_scale[1].f_measure);
  EXPECT_LT(along_scale[0].coverage, along_scale[1].coverage);
  EXPECT_LT(along_scale[0].lt_accuracy, along_scale[1].lt_accuracy);
}

TEST_F(PipelineTest, PopIsStrongAccuracyBaselineButPoorCoverage) {
  PopRecommender pop;
  ASSERT_TRUE(pop.Fit(*train_).ok());
  RandomRecommender rnd(3);
  ASSERT_TRUE(rnd.Fit(*train_).ok());
  MetricsConfig mcfg{.top_n = 5};
  const auto pop_m = EvaluateTopN(*train_, *test_,
                                  RecommendAllUsers(pop, *train_, 5), mcfg);
  const auto rnd_m = EvaluateTopN(*train_, *test_,
                                  RecommendAllUsers(rnd, *train_, 5), mcfg);
  EXPECT_GT(pop_m.f_measure, rnd_m.f_measure);
  EXPECT_GT(rnd_m.coverage, pop_m.coverage);
  EXPECT_GT(rnd_m.lt_accuracy, pop_m.lt_accuracy);
}

TEST_F(PipelineTest, TenRunAverageIsStable) {
  // The paper averages sampling-based GANC variants over 10 runs; the
  // variance across seeds should be small relative to the mean.
  NormalizedAccuracyScorer scorer(psvd_);
  Ganc g(&scorer, *theta_, CoverageKind::kDyn);
  MetricsConfig mcfg{.top_n = 5};
  std::vector<MetricsReport> runs;
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    GancConfig cfg;
    cfg.top_n = 5;
    cfg.sample_size = 50;
    cfg.seed = seed;
    auto topn = g.RecommendAll(*train_, cfg);
    ASSERT_TRUE(topn.ok());
    runs.push_back(EvaluateTopN(*train_, *test_, *topn, mcfg));
  }
  const auto mean = MeanReport(runs);
  double var = 0.0;
  for (const auto& r : runs) {
    var += (r.coverage - mean.coverage) * (r.coverage - mean.coverage);
  }
  var /= static_cast<double>(runs.size());
  EXPECT_LT(std::sqrt(var), 0.25 * mean.coverage + 1e-9);
}

}  // namespace
}  // namespace ganc
