#include "recommender/rsvd.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <utility>

#include "recommender/model_io.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/serialize.h"

namespace ganc {

RsvdRecommender::RsvdRecommender(RsvdConfig config)
    : config_(std::move(config)) {}

Status RsvdRecommender::Fit(const RatingDataset& train) {
  if (config_.num_factors <= 0) {
    return Status::InvalidArgument("num_factors must be positive");
  }
  if (config_.learning_rate <= 0.0) {
    return Status::InvalidArgument("learning_rate must be positive");
  }
  num_users_ = train.num_users();
  num_items_ = train.num_items();
  train_fingerprint_ = train.Fingerprint();
  global_mean_ = train.GlobalMeanRating();
  const size_t g = static_cast<size_t>(config_.num_factors);

  Rng rng(config_.seed);
  std::vector<double> user_factors(static_cast<size_t>(num_users_) * g);
  std::vector<double> item_factors(static_cast<size_t>(num_items_) * g);
  // LIBMF-style non-negative uniform init keeps early predictions near the
  // data scale and satisfies the RSVDN constraint from the start.
  for (double& v : user_factors) v = rng.Uniform() * config_.init_scale;
  for (double& v : item_factors) v = rng.Uniform() * config_.init_scale;
  user_bias_.assign(static_cast<size_t>(num_users_), 0.0);
  item_bias_.assign(static_cast<size_t>(num_items_), 0.0);

  std::vector<size_t> order(train.ratings().size());
  std::iota(order.begin(), order.end(), 0);

  // Bias-free MF must absorb the rating scale in the factors themselves;
  // with biases we model residuals around mu.
  const double base = config_.use_biases ? global_mean_ : 0.0;

  double lr = config_.learning_rate;
  const double lam = config_.regularization;
  for (int32_t epoch = 0; epoch < config_.num_epochs; ++epoch) {
    rng.Shuffle(&order);
    double sq_err = 0.0;
    for (size_t idx : order) {
      const Rating& r = train.ratings()[idx];
      double* pu = &user_factors[static_cast<size_t>(r.user) * g];
      double* qi = &item_factors[static_cast<size_t>(r.item) * g];
      double pred = base;
      if (config_.use_biases) {
        pred += user_bias_[static_cast<size_t>(r.user)] +
                item_bias_[static_cast<size_t>(r.item)];
      }
      for (size_t f = 0; f < g; ++f) pred += pu[f] * qi[f];
      const double err = static_cast<double>(r.value) - pred;
      sq_err += err * err;
      if (config_.use_biases) {
        user_bias_[static_cast<size_t>(r.user)] +=
            lr * (err - lam * user_bias_[static_cast<size_t>(r.user)]);
        item_bias_[static_cast<size_t>(r.item)] +=
            lr * (err - lam * item_bias_[static_cast<size_t>(r.item)]);
      }
      for (size_t f = 0; f < g; ++f) {
        const double puf = pu[f];
        pu[f] += lr * (err * qi[f] - lam * puf);
        qi[f] += lr * (err * puf - lam * qi[f]);
        if (config_.non_negative) {
          pu[f] = std::max(pu[f], 0.0);
          qi[f] = std::max(qi[f], 0.0);
        }
      }
    }
    lr *= config_.lr_decay;
    GANC_LOG(Debug) << name() << " epoch " << epoch << " train RMSE "
                    << std::sqrt(sq_err /
                                 static_cast<double>(train.num_ratings()));
  }
  // Per-user scoring base for the factor engine: mu + b_u folds the two
  // user-constant terms of Predict into one engine offset. Computed as
  // (mu + b_u) so engine scores stay bit-identical to Predict's
  // ((mu + b_u) + b_i) evaluation order.
  user_base_.clear();
  if (config_.use_biases) {
    user_base_.resize(static_cast<size_t>(num_users_));
    for (size_t u = 0; u < static_cast<size_t>(num_users_); ++u) {
      user_base_[u] = global_mean_ + user_bias_[u];
    }
  }
  factors_.AdoptFp64(std::move(user_factors), std::move(item_factors),
                     static_cast<size_t>(num_users_),
                     static_cast<size_t>(num_items_), g);
  return Status::OK();
}

FactorView RsvdRecommender::View() const {
  FactorView v;
  factors_.BindView(&v);
  v.item_bias = config_.use_biases ? item_bias_.data() : nullptr;
  v.user_base = config_.use_biases ? user_base_.data() : nullptr;
  v.num_items = num_items_;
  return v;
}

double RsvdRecommender::Predict(UserId u, ItemId i) const {
  // ScoreOne keeps the historical ((mu + b_u) + b_i) + <p, q> evaluation
  // order via the precomputed user_base_ rows, so fp64 predictions are
  // bit-identical to the pre-FactorStore implementation.
  return FactorScoringEngine(View()).ScoreOne(u, i);
}

void RsvdRecommender::ScoreInto(UserId u, std::span<double> out) const {
  FactorScoringEngine(View()).ScoreInto(u, out);
}

void RsvdRecommender::ScoreBatchInto(std::span<const UserId> users,
                                     std::span<double> out) const {
  FactorScoringEngine(View()).ScoreBatchInto(users, out);
}

double RsvdRecommender::Rmse(const RatingDataset& test) const {
  if (test.num_ratings() == 0) return 0.0;
  double acc = 0.0;
  for (const Rating& r : test.ratings()) {
    const double err = static_cast<double>(r.value) - Predict(r.user, r.item);
    acc += err * err;
  }
  return std::sqrt(acc / static_cast<double>(test.num_ratings()));
}

Status RsvdRecommender::Save(std::ostream& os) const {
  if (num_items() == 0) {
    return Status::FailedPrecondition("cannot save unfitted RSVD model");
  }
  ArtifactWriter w(os);
  GANC_RETURN_NOT_OK(w.WriteHeader(ArtifactKind::kModel,
                                   static_cast<uint32_t>(ModelType::kRsvd)));
  PayloadWriter config;
  config.WriteI32(config_.num_factors);
  config.WriteF64(config_.learning_rate);
  config.WriteF64(config_.regularization);
  config.WriteI32(config_.num_epochs);
  config.WriteF64(config_.lr_decay);
  config.WriteU8(config_.use_biases ? 1 : 0);
  config.WriteU8(config_.non_negative ? 1 : 0);
  config.WriteF64(config_.init_scale);
  config.WriteU64(config_.seed);
  GANC_RETURN_NOT_OK(w.WriteSection(kModelConfigSection, config));
  PayloadWriter state;
  state.WriteI32(num_users_);
  state.WriteI32(num_items_);
  state.WriteU64(train_fingerprint_);
  state.WriteF64(global_mean_);
  state.WriteVecF64(user_bias_);
  state.WriteVecF64(item_bias_);
  state.WriteVecF64(user_base_);
  GANC_RETURN_NOT_OK(w.WriteSection(kModelStateSection, state));
  PayloadWriter factors;
  factors_.Save(&factors);
  GANC_RETURN_NOT_OK(w.WriteSection(kFactorTableSection, factors));
  return w.Finish();
}

Status RsvdRecommender::Load(ArtifactReader& r, const RatingDataset* train) {
  GANC_RETURN_NOT_OK(ReadModelHeader(r, ModelType::kRsvd));
  Result<ArtifactReader::Section> config = r.ReadSectionExpect(
      kModelConfigSection);
  if (!config.ok()) return config.status();
  PayloadReader cr(config->payload());
  RsvdConfig cfg;
  uint8_t use_biases = 0;
  uint8_t non_negative = 0;
  GANC_RETURN_NOT_OK(cr.ReadI32(&cfg.num_factors));
  GANC_RETURN_NOT_OK(cr.ReadF64(&cfg.learning_rate));
  GANC_RETURN_NOT_OK(cr.ReadF64(&cfg.regularization));
  GANC_RETURN_NOT_OK(cr.ReadI32(&cfg.num_epochs));
  GANC_RETURN_NOT_OK(cr.ReadF64(&cfg.lr_decay));
  GANC_RETURN_NOT_OK(cr.ReadU8(&use_biases));
  GANC_RETURN_NOT_OK(cr.ReadU8(&non_negative));
  GANC_RETURN_NOT_OK(cr.ReadF64(&cfg.init_scale));
  GANC_RETURN_NOT_OK(cr.ReadU64(&cfg.seed));
  GANC_RETURN_NOT_OK(cr.ExpectEnd());
  cfg.use_biases = use_biases != 0;
  cfg.non_negative = non_negative != 0;
  if (cfg.num_factors <= 0) {
    return Status::InvalidArgument("invalid RSVD factor count in artifact");
  }
  Result<ArtifactReader::Section> state = r.ReadSectionExpect(
      kModelStateSection);
  if (!state.ok()) return state.status();
  PayloadReader sr(state->payload());
  int32_t num_users = 0;
  int32_t num_items = 0;
  uint64_t fingerprint = 0;
  double global_mean = 0.0;
  std::vector<double> bu, bi, base;
  GANC_RETURN_NOT_OK(sr.ReadI32(&num_users));
  GANC_RETURN_NOT_OK(sr.ReadI32(&num_items));
  GANC_RETURN_NOT_OK(sr.ReadU64(&fingerprint));
  GANC_RETURN_NOT_OK(sr.ReadF64(&global_mean));
  GANC_RETURN_NOT_OK(sr.ReadVecF64(&bu));
  GANC_RETURN_NOT_OK(sr.ReadVecF64(&bi));
  GANC_RETURN_NOT_OK(sr.ReadVecF64(&base));
  GANC_RETURN_NOT_OK(sr.ExpectEnd());
  Result<ArtifactReader::Section> factors = r.ReadSectionExpect(
      kFactorTableSection);
  if (!factors.ok()) return factors.status();
  FactorStore store;
  GANC_RETURN_NOT_OK(store.LoadFromSection(r, *factors));
  const size_t g = static_cast<size_t>(cfg.num_factors);
  const size_t nu = static_cast<size_t>(num_users);
  const size_t ni = static_cast<size_t>(num_items);
  const bool biased_sizes_ok =
      !cfg.use_biases ||
      (bu.size() == nu && bi.size() == ni && base.size() == nu);
  if (num_users < 0 || num_items < 0 || store.num_factors() != g ||
      store.user_rows() != nu || store.item_rows() != ni ||
      !biased_sizes_ok) {
    return Status::InvalidArgument("inconsistent RSVD factor dimensions");
  }
  if (train != nullptr) {
    if (num_users != train->num_users() || num_items != train->num_items()) {
      return Status::InvalidArgument(
          "RSVD artifact dimensions do not match the provided dataset");
    }
    if (fingerprint != train->Fingerprint()) {
      return Status::InvalidArgument(
          "RSVD artifact was trained on different data than the provided "
          "dataset (fingerprint mismatch)");
    }
  }
  GANC_RETURN_NOT_OK(ExpectEndOfArtifact(r));
  config_ = cfg;
  num_users_ = num_users;
  num_items_ = num_items;
  train_fingerprint_ = fingerprint;
  global_mean_ = global_mean;
  factors_ = std::move(store);
  user_bias_ = std::move(bu);
  item_bias_ = std::move(bi);
  user_base_ = std::move(base);
  return Status::OK();
}

}  // namespace ganc
