// User long-tail novelty preference models (Sections II-B and II-C).
//
// Each model maps the train set to a vector theta with one entry per user,
// theta_u in [0, 1]; larger values mean stronger willingness to explore
// long-tail items. GANC mixes accuracy and coverage per user with weight
// theta_u, so these estimates are the personalization signal of the whole
// framework.
//
//   theta^A  activity            |I_u^R|, min-max normalized
//   theta^N  normalized long-tail|I_u^R ∩ L| / |I_u^R|
//   theta^T  TFIDF-based         mean_i r_ui * log(|U| / |U_i^R|)
//   theta^G  generalized         fixed point of the minimax objective
//                                (Eq. II.4-II.6), a mediocrity-weighted
//                                average of the same per-item values
//   theta^R  random              U(0,1) control
//   theta^C  constant            all users equal control

#ifndef GANC_CORE_PREFERENCE_H_
#define GANC_CORE_PREFERENCE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "data/longtail.h"
#include "util/status.h"

namespace ganc {

/// theta^A: user activity |I_u^R|, min-max normalized across users.
std::vector<double> ActivityPreference(const RatingDataset& train);

/// theta^N (Eq. II.1): fraction of the user's rated items that are
/// long-tail. Users with empty profiles get 0.
std::vector<double> NormalizedLongtailPreference(const RatingDataset& train,
                                                 const LongTailInfo& tail);

/// Per-user-item value theta_ui = r_ui * log(|U| / |U_i^R|), globally
/// min-max projected onto [0, 1] (the projection required by Section II-C).
/// Returned in the same order as train.ItemsOf(u) per user.
std::vector<std::vector<double>> PerUserItemPreference(
    const RatingDataset& train);

/// theta^T (Eq. II.2): plain average of theta_ui per user, then min-max
/// normalized across users so it is usable as a mixing weight.
std::vector<double> TfidfPreference(const RatingDataset& train);

/// Options for the theta^G fixed-point solver.
struct GeneralizedPreferenceOptions {
  double lambda1 = 1.0;      ///< log-barrier weight (paper sets 1)
  int max_iterations = 100;
  double tolerance = 1e-8;   ///< max |theta change| convergence test
  bool normalize_output = true;  ///< min-max across users at the end
};

/// Diagnostics from the alternating optimization.
struct GeneralizedPreferenceResult {
  std::vector<double> theta;        ///< theta^G per user
  std::vector<double> item_weight;  ///< w_i per item (Eq. II.5)
  int iterations = 0;
  bool converged = false;
  double final_objective = 0.0;     ///< total weighted mediocrity
};

/// theta^G (Section II-C): alternates
///   w_i      = lambda1 / eps_i,  eps_i = sum_{u in U_i} 1 - (theta_ui - theta_u)^2
///   theta_u  = sum_i w_i theta_ui / sum_i w_i
/// from the theta^T initial point until the theta updates stabilize.
Result<GeneralizedPreferenceResult> GeneralizedPreference(
    const RatingDataset& train,
    const GeneralizedPreferenceOptions& options = {});

/// theta^R: independent U(0,1) per user (the paper's randomized control).
std::vector<double> RandomPreference(int32_t num_users, uint64_t seed);

/// theta^C: the same constant for every user (paper reports C = 0.5).
std::vector<double> ConstantPreference(int32_t num_users, double c);

/// Convenience dispatcher used by benches/examples.
enum class PreferenceModel { kActivity, kNormalized, kTfidf, kGeneralized,
                             kRandom, kConstant };

/// Human-readable model name ("thetaG", ...).
std::string PreferenceModelName(PreferenceModel model);

/// Computes the chosen model on `train` (seed/constant used where needed).
Result<std::vector<double>> ComputePreference(PreferenceModel model,
                                              const RatingDataset& train,
                                              uint64_t seed = 11,
                                              double constant = 0.5);

}  // namespace ganc

#endif  // GANC_CORE_PREFERENCE_H_
