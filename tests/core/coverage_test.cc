#include "core/coverage.h"

#include <cmath>

#include <gtest/gtest.h>

#include "data/synthetic.h"

namespace ganc {
namespace {

RatingDataset SyntheticTrain() {
  auto ds = GenerateSynthetic(TinySpec());
  EXPECT_TRUE(ds.ok());
  return std::move(ds).value();
}

TEST(RandCoverageTest, UnitIntervalDeterministic) {
  RandCoverage cov(100, 7);
  for (UserId u = 0; u < 5; ++u) {
    for (ItemId i = 0; i < 100; ++i) {
      const double s = cov.Score(u, i);
      EXPECT_GE(s, 0.0);
      EXPECT_LT(s, 1.0);
      EXPECT_DOUBLE_EQ(s, cov.Score(u, i));  // stable
    }
  }
  EXPECT_FALSE(cov.IsDynamic());
}

TEST(RandCoverageTest, VariesAcrossUsersAndItems) {
  RandCoverage cov(100, 8);
  EXPECT_NE(cov.Score(0, 1), cov.Score(0, 2));
  EXPECT_NE(cov.Score(0, 1), cov.Score(1, 1));
}

TEST(StatCoverageTest, InverseSqrtOfPopularity) {
  const RatingDataset ds = SyntheticTrain();
  StatCoverage cov(ds);
  for (ItemId i = 0; i < ds.num_items(); ++i) {
    EXPECT_NEAR(cov.Score(0, i),
                1.0 / std::sqrt(static_cast<double>(ds.Popularity(i)) + 1.0),
                1e-12);
  }
  EXPECT_FALSE(cov.IsDynamic());
}

TEST(StatCoverageTest, UnratedItemGetsMaxScore) {
  RatingDatasetBuilder b(2, 3);
  ASSERT_TRUE(b.Add(0, 0, 3.0f).ok());
  ASSERT_TRUE(b.Add(1, 0, 3.0f).ok());
  auto ds = std::move(b).Build();
  ASSERT_TRUE(ds.ok());
  StatCoverage cov(*ds);
  EXPECT_DOUBLE_EQ(cov.Score(0, 2), 1.0);
  EXPECT_LT(cov.Score(0, 0), 1.0);
}

TEST(DynCoverageTest, StartsAtOneAndDecays) {
  DynCoverage cov(4);
  EXPECT_DOUBLE_EQ(cov.Score(0, 2), 1.0);
  cov.Observe(2);
  EXPECT_NEAR(cov.Score(0, 2), 1.0 / std::sqrt(2.0), 1e-12);
  cov.Observe(2);
  EXPECT_NEAR(cov.Score(0, 2), 1.0 / std::sqrt(3.0), 1e-12);
  EXPECT_DOUBLE_EQ(cov.Score(0, 1), 1.0);  // untouched item unchanged
  EXPECT_TRUE(cov.IsDynamic());
}

TEST(DynCoverageTest, DiminishingReturnsProperty) {
  // The submodularity driver: the marginal coverage gain of an item is
  // non-increasing in how often it has been recommended (A subset of B =>
  // gain under A >= gain under B).
  DynCoverage a(3), b(3);
  b.Observe(0);
  b.Observe(0);  // B has strictly more observations of item 0
  EXPECT_GE(a.Score(0, 0), b.Score(0, 0));
  // And scores are strictly decreasing in the count.
  double prev = 2.0;
  DynCoverage c(1);
  for (int k = 0; k < 10; ++k) {
    const double s = c.Score(0, 0);
    EXPECT_LT(s, prev);
    prev = s;
    c.Observe(0);
  }
}

TEST(DynCoverageTest, SnapshotRoundTrip) {
  DynCoverage cov(3);
  cov.Observe(1);
  cov.Observe(1);
  cov.Observe(2);
  const std::vector<uint32_t> snap = cov.counts();
  DynCoverage restored(3);
  restored.SetCounts(snap);
  for (ItemId i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(restored.Score(0, i), cov.Score(0, i));
  }
}

TEST(MakeCoverageTest, FactoryProducesCorrectKinds) {
  const RatingDataset ds = SyntheticTrain();
  EXPECT_EQ(MakeCoverage(CoverageKind::kRand, ds, 1)->name(), "Rand");
  EXPECT_EQ(MakeCoverage(CoverageKind::kStat, ds, 1)->name(), "Stat");
  EXPECT_EQ(MakeCoverage(CoverageKind::kDyn, ds, 1)->name(), "Dyn");
  EXPECT_TRUE(MakeCoverage(CoverageKind::kDyn, ds, 1)->IsDynamic());
}

TEST(CoverageKindNameTest, Names) {
  EXPECT_EQ(CoverageKindName(CoverageKind::kRand), "Rand");
  EXPECT_EQ(CoverageKindName(CoverageKind::kStat), "Stat");
  EXPECT_EQ(CoverageKindName(CoverageKind::kDyn), "Dyn");
}

}  // namespace
}  // namespace ganc
