// Shared scaffolding for the figure/table reproduction benches.
//
// Every bench binary regenerates one paper table or figure. The paper's
// five corpora are synthesized by data/synthetic.h presets; because the
// full presets take minutes end-to-end, each bench defaults to a reduced
// "bench scale" and honours GANC_BENCH_SCALE=full for the calibrated
// sizes. EXPERIMENTS.md records which scale produced the committed
// numbers.

#ifndef GANC_BENCH_COMMON_H_
#define GANC_BENCH_COMMON_H_

#include <string>
#include <vector>

#include "core/accuracy_scorer.h"
#include "core/ganc.h"
#include "core/preference.h"
#include "data/split.h"
#include "data/synthetic.h"
#include "recommender/pop.h"
#include "recommender/psvd.h"
#include "recommender/rsvd.h"

namespace ganc {
namespace bench {

/// The paper's five evaluation corpora.
enum class Corpus { kMl100k, kMl1m, kMl10m, kMt200k, kNetflix };

/// All corpora in Table II order.
std::vector<Corpus> AllCorpora();

/// "ML-100K", "ML-1M", ...
std::string CorpusName(Corpus corpus);

/// True when GANC_BENCH_SCALE=full is set: use the calibrated preset
/// sizes instead of the fast reduced ones.
bool FullScale();

/// The synthetic spec for a corpus at the active scale.
SyntheticSpec SpecFor(Corpus corpus);

/// A generated and split corpus.
struct BenchData {
  std::string name;
  SyntheticSpec spec;
  RatingDataset full;
  RatingDataset train;
  RatingDataset test;
};

/// Generates and splits a corpus (kappa from the spec). Exits on error —
/// benches have no meaningful recovery path.
BenchData MakeData(Corpus corpus);

/// The paper's per-dataset RSVD hyper-parameters (Table V), epochs
/// trimmed at bench scale.
RsvdConfig RsvdConfigFor(Corpus corpus);

/// Fits RSVD with the Table V configuration.
RsvdRecommender FitRsvd(Corpus corpus, const RatingDataset& train);

/// Fits PureSVD with the given rank.
PsvdRecommender FitPsvd(const RatingDataset& train, int factors);

/// theta^G with bench-friendly solver limits.
std::vector<double> ThetaG(const RatingDataset& train);

/// Lazily-created process-wide worker pool (hardware concurrency) for the
/// benches' batched scoring loops. Never destroyed; safe to share because
/// every parallel path is deterministic.
ThreadPool* SharedPool();

/// Runs GANC and returns the collection; exits on error. A null
/// config.pool is replaced by SharedPool() — batched parallel scoring is
/// byte-identical to the serial path, so results are unaffected.
TopNCollection RunGanc(const AccuracyScorer& scorer,
                       const std::vector<double>& theta, CoverageKind kind,
                       const RatingDataset& train, const GancConfig& config);

/// Prints the standard bench banner (what figure/table, which scale).
void Banner(const std::string& experiment, const std::string& description);

/// Strips a `--json <path>` or `--json=<path>` argument from argv (so the
/// remaining flags can be handed to another parser) and returns the path,
/// or "" when absent. Used by bench mains that support machine-readable
/// output snapshots (e.g. BENCH_scoring.json).
std::string ExtractJsonFlag(int* argc, char** argv);

}  // namespace bench
}  // namespace ganc

#endif  // GANC_BENCH_COMMON_H_
