#include "recommender/random_walk.h"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "recommender/model_io.h"
#include "util/serialize.h"

namespace ganc {

namespace {

/// Per-thread walk scratch: a dense per-user mass accumulator plus the
/// list of touched users (reset in O(touched), not O(|U|)). thread_local
/// so concurrent ScoreInto calls on the same fitted model never share
/// state and the walk allocates nothing once the buffers are warm.
struct WalkScratch {
  std::vector<double> mass;
  std::vector<std::pair<UserId, double>> coraters;
};

}  // namespace

RandomWalkRecommender::RandomWalkRecommender(RandomWalkConfig config)
    : config_(config) {}

Status RandomWalkRecommender::Fit(const RatingDataset& train) {
  if (config_.beta < 0.0 || config_.beta > 1.0) {
    return Status::InvalidArgument("beta must lie in [0, 1]");
  }
  if (config_.max_coraters <= 0) {
    return Status::InvalidArgument("max_coraters must be positive");
  }
  train_ = &train;
  item_penalty_.resize(static_cast<size_t>(train.num_items()));
  for (ItemId i = 0; i < train.num_items(); ++i) {
    item_penalty_[static_cast<size_t>(i)] = std::pow(
        static_cast<double>(std::max(train.Popularity(i), 1)), config_.beta);
  }
  return Status::OK();
}

void RandomWalkRecommender::ScoreInto(UserId u, std::span<double> out) const {
  const RatingDataset& train = *train_;
  std::fill(out.begin(), out.end(), 0.0);
  const auto& row = train.ItemsOf(u);
  if (row.empty()) return;

  static thread_local WalkScratch scratch;
  scratch.mass.resize(static_cast<size_t>(train.num_users()));
  auto& coraters = scratch.coraters;
  coraters.clear();

  // Hop 1+2: mass over co-raters. Starting uniformly on the user's items,
  // an item forwards its mass equally to its raters. First touch of a
  // co-rater records it, so resetting costs O(touched) afterwards.
  const double start = 1.0 / static_cast<double>(row.size());
  for (const ItemRating& ir : row) {
    const auto& audience = train.UsersOf(ir.item);
    if (audience.empty()) continue;
    const double share = start / static_cast<double>(audience.size());
    for (const UserRating& ur : audience) {
      if (ur.user == u) continue;
      double& m = scratch.mass[static_cast<size_t>(ur.user)];
      if (m == 0.0) coraters.emplace_back(ur.user, 0.0);
      m += share;
    }
  }
  for (auto& [s, mass] : coraters) {
    mass = scratch.mass[static_cast<size_t>(s)];
    scratch.mass[static_cast<size_t>(s)] = 0.0;  // reset for the next call
  }

  // Keep only the heaviest co-raters (bounds blockbuster fan-out); ties
  // broken by user id so the cut is independent of accumulation order.
  const auto heavier = [](const std::pair<UserId, double>& a,
                          const std::pair<UserId, double>& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  };
  if (static_cast<int32_t>(coraters.size()) > config_.max_coraters) {
    std::nth_element(coraters.begin(),
                     coraters.begin() + config_.max_coraters - 1,
                     coraters.end(), heavier);
    coraters.resize(static_cast<size_t>(config_.max_coraters));
  }

  // Hop 3: co-raters distribute mass equally over their items.
  for (const auto& [s, mass] : coraters) {
    const auto& srow = train.ItemsOf(s);
    if (srow.empty()) continue;
    const double share = mass / static_cast<double>(srow.size());
    for (const ItemRating& ir : srow) {
      out[static_cast<size_t>(ir.item)] += share;
    }
  }

  // Popularity discount: divide the visiting probability by pop^beta.
  for (size_t i = 0; i < out.size(); ++i) {
    if (out[i] > 0.0) out[i] /= item_penalty_[i];
  }
}

Status RandomWalkRecommender::Save(std::ostream& os) const {
  if (num_items() == 0 || train_ == nullptr) {
    return Status::FailedPrecondition("cannot save unfitted RP3b model");
  }
  ArtifactWriter w(os);
  GANC_RETURN_NOT_OK(w.WriteHeader(
      ArtifactKind::kModel, static_cast<uint32_t>(ModelType::kRandomWalk)));
  PayloadWriter config;
  config.WriteF64(config_.beta);
  config.WriteI32(config_.max_coraters);
  GANC_RETURN_NOT_OK(w.WriteSection(kModelConfigSection, config));
  PayloadWriter state;
  state.WriteI32(train_->num_users());  // walk graph dims for rebinding
  state.WriteU64(train_->Fingerprint());
  state.WriteVecF64(item_penalty_);
  GANC_RETURN_NOT_OK(w.WriteSection(kModelStateSection, state));
  return w.Finish();
}

Status RandomWalkRecommender::Load(std::istream& is,
                                   const RatingDataset* train) {
  if (train == nullptr) {
    return Status::FailedPrecondition(
        "RP3b artifact requires a train dataset binding");
  }
  ArtifactReader r(is);
  GANC_RETURN_NOT_OK(ReadModelHeader(r, ModelType::kRandomWalk));
  Result<ArtifactReader::Section> config = r.ReadSectionExpect(
      kModelConfigSection);
  if (!config.ok()) return config.status();
  PayloadReader cr(config->payload);
  RandomWalkConfig cfg;
  GANC_RETURN_NOT_OK(cr.ReadF64(&cfg.beta));
  GANC_RETURN_NOT_OK(cr.ReadI32(&cfg.max_coraters));
  GANC_RETURN_NOT_OK(cr.ExpectEnd());
  if (cfg.beta < 0.0 || cfg.beta > 1.0 || cfg.max_coraters <= 0) {
    return Status::InvalidArgument("invalid RP3b config in artifact");
  }
  Result<ArtifactReader::Section> state = r.ReadSectionExpect(
      kModelStateSection);
  if (!state.ok()) return state.status();
  PayloadReader sr(state->payload);
  int32_t num_users = 0;
  uint64_t fingerprint = 0;
  std::vector<double> penalty;
  GANC_RETURN_NOT_OK(sr.ReadI32(&num_users));
  GANC_RETURN_NOT_OK(sr.ReadU64(&fingerprint));
  GANC_RETURN_NOT_OK(sr.ReadVecF64(&penalty));
  GANC_RETURN_NOT_OK(sr.ExpectEnd());
  if (num_users != train->num_users() ||
      static_cast<int32_t>(penalty.size()) != train->num_items()) {
    return Status::InvalidArgument(
        "RP3b artifact dimensions do not match the bound train dataset");
  }
  if (fingerprint != train->Fingerprint()) {
    return Status::InvalidArgument(
        "RP3b artifact was trained on different data than the bound train "
        "dataset (fingerprint mismatch)");
  }
  GANC_RETURN_NOT_OK(ExpectEndOfArtifact(r));
  config_ = cfg;
  train_ = train;
  item_penalty_ = std::move(penalty);
  return Status::OK();
}

}  // namespace ganc
