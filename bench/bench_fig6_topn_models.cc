// Figure 6: accuracy-vs-coverage and accuracy-vs-novelty positions of the
// top-N recommendation models: Rand, Pop, RSVD, CofiR100, PSVD10,
// PSVD100, PRA(ARec, 10), GANC(ARec, thetaG, {Dyn, Stat, Rand}).
// Following the paper, ARec is Pop on MT-200K and PSVD100 elsewhere.
// Printed as a table of (F@5, Coverage@5, LTAccuracy@5) points per model —
// the scatter coordinates of the two Figure 6 rows.

#include <cstdio>

#include "bench/common.h"
#include "eval/runner.h"
#include "recommender/cofirank.h"
#include "recommender/random_rec.h"
#include "recommender/recommender.h"
#include "rerank/pra.h"

using namespace ganc;
using namespace ganc::bench;

int main() {
  Banner("Figure 6", "accuracy vs coverage vs novelty for top-N models");

  for (Corpus corpus : AllCorpora()) {
    const BenchData data = MakeData(corpus);
    const RatingDataset& train = data.train;
    std::printf("=== %s ===\n", data.name.c_str());

    RandomRecommender rnd(55);
    (void)rnd.Fit(train);
    PopRecommender pop;
    (void)pop.Fit(train);
    const RsvdRecommender rsvd = FitRsvd(corpus, train);
    CofiConfig cofi_cfg;
    cofi_cfg.num_factors = FullScale() ? 100 : 40;
    CofiRecommender cofi(cofi_cfg);
    (void)cofi.Fit(train);
    const PsvdRecommender psvd10 = FitPsvd(train, 10);
    const PsvdRecommender psvd100 = FitPsvd(train, FullScale() ? 100 : 60);

    // The pluggable accuracy recommender: Pop on sparse MT-200K, PSVD100
    // elsewhere (Section V-B).
    const bool use_pop = corpus == Corpus::kMt200k;
    const Recommender& arec =
        use_pop ? static_cast<const Recommender&>(pop)
                : static_cast<const Recommender&>(psvd100);
    const NormalizedAccuracyScorer norm_scorer(&arec);
    const TopNIndicatorScorer ind_scorer(&arec, &train, 5);
    const AccuracyScorer& scorer =
        use_pop ? static_cast<const AccuracyScorer&>(ind_scorer)
                : static_cast<const AccuracyScorer&>(norm_scorer);

    const auto theta_g = ThetaG(train);
    const PraReranker pra(&arec, &train, {});

    GancConfig gcfg;
    gcfg.top_n = 5;
    gcfg.sample_size = 500;

    const std::vector<AlgorithmEntry> entries = {
        {"Rand", [&] { return RecommendAllUsers(rnd, train, 5, bench::SharedPool()); }},
        {"Pop", [&] { return RecommendAllUsers(pop, train, 5, bench::SharedPool()); }},
        {"RSVD", [&] { return RecommendAllUsers(rsvd, train, 5, bench::SharedPool()); }},
        {cofi.name(), [&] { return RecommendAllUsers(cofi, train, 5, bench::SharedPool()); }},
        {"PSVD10", [&] { return RecommendAllUsers(psvd10, train, 5, bench::SharedPool()); }},
        {psvd100.name(), [&] { return RecommendAllUsers(psvd100, train, 5, bench::SharedPool()); }},
        {"PRA(" + arec.name() + ", 10)",
         [&] { return pra.RecommendAll(train, 5).value(); }},
        {"GANC(" + arec.name() + ", thetaG, Dyn)",
         [&] {
           return RunGanc(scorer, theta_g, CoverageKind::kDyn, train, gcfg);
         }},
        {"GANC(" + arec.name() + ", thetaG, Stat)",
         [&] {
           return RunGanc(scorer, theta_g, CoverageKind::kStat, train, gcfg);
         }},
        {"GANC(" + arec.name() + ", thetaG, Rand)",
         [&] {
           return RunGanc(scorer, theta_g, CoverageKind::kRand, train, gcfg);
         }},
    };
    const auto results =
        RunComparison(entries, train, data.test, MetricsConfig{.top_n = 5});
    ComparisonTable(results, 5).Print();
    std::printf("\n");
  }
  std::printf(
      "paper shape (Fig. 6): Rand = best coverage/worst F; Pop = strong F,\n"
      "no novelty; the GANC arrow from ARec gains coverage at modest F\n"
      "cost; Stat lifts LTAccuracy but not Coverage; RSVD is dominated in\n"
      "F and coverage by the other personalized models.\n");
  return 0;
}
