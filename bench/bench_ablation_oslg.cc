// Ablation A1 (DESIGN.md): OSLG's two modifications of locally greedy —
// KDE-proportional sampling and increasing-theta visit order — switched
// independently, against the full (unsampled) locally greedy reference.
// Reports objective value, metrics, and wall-clock per variant.

#include <cstdio>

#include "bench/common.h"
#include "eval/metrics.h"
#include "util/csv.h"
#include "util/table.h"
#include "util/timer.h"

using namespace ganc;
using namespace ganc::bench;

int main() {
  Banner("Ablation A1", "OSLG vs locally greedy: sampling and ordering");

  const BenchData data = MakeData(Corpus::kMl100k);
  const RatingDataset& train = data.train;
  const PsvdRecommender psvd = FitPsvd(train, 40);
  const NormalizedAccuracyScorer scorer(&psvd);
  const auto theta = ThetaG(train);
  const MetricsConfig mcfg{.top_n = 5};

  struct Variant {
    std::string name;
    int sample_size;
    bool kde;
    bool ordered;
  };
  const std::vector<Variant> variants = {
      {"full locally greedy (S=|U|, theta order)", 0, true, true},
      {"full locally greedy, arbitrary order", 0, true, false},
      {"OSLG S=500 (KDE + theta order)", 500, true, true},
      {"OSLG S=500, uniform sampling", 500, false, true},
      {"OSLG S=500, arbitrary order", 500, true, false},
      {"OSLG S=100 (KDE + theta order)", 100, true, true},
  };

  TablePrinter table({"variant", "objective v(P)", "F@5", "C@5", "G@5",
                      "seconds"});
  for (const Variant& v : variants) {
    GancConfig cfg;
    cfg.top_n = 5;
    cfg.sample_size = v.sample_size;
    cfg.kde_sampling = v.kde;
    cfg.order_by_theta = v.ordered;
    WallTimer timer;
    const auto topn = RunGanc(scorer, theta, CoverageKind::kDyn, train, cfg);
    const double secs = timer.ElapsedSeconds();
    const auto m = EvaluateTopN(train, data.test, topn, mcfg);
    const double value =
        CollectionValue(scorer, theta, CoverageKind::kDyn, train, topn);
    table.AddRow({v.name, FormatDouble(value, 2), FormatDouble(m.f_measure, 4),
                  FormatDouble(m.coverage, 4), FormatDouble(m.gini, 4),
                  FormatDouble(secs, 2)});
  }
  table.Print();
  std::printf(
      "\nexpected: sampled OSLG reaches objective values close to the full\n"
      "locally greedy at a fraction of the sequential wall-clock; the\n"
      "theta ordering buys coverage at equal objective by steering popular\n"
      "items to low-theta users first.\n");
  return 0;
}
