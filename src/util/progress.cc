#include "util/progress.h"

#include <cstdio>

#include "util/logging.h"

namespace ganc {

ProgressReporter::ProgressReporter(std::string label, size_t total)
    : label_(std::move(label)), total_(total) {}

void ProgressReporter::Update(size_t done) {
  if (GetLogLevel() > LogLevel::kInfo) return;
  const double now = timer_.ElapsedSeconds();
  if (last_emit_seconds_ >= 0.0 && now - last_emit_seconds_ < 2.0) return;
  last_emit_seconds_ = now;
  std::fprintf(stderr, "[progress] %s: %zu/%zu (%.1fs)\n", label_.c_str(),
               done, total_, now);
}

void ProgressReporter::Finish() {
  if (finished_) return;
  finished_ = true;
  if (GetLogLevel() > LogLevel::kInfo) return;
  std::fprintf(stderr, "[progress] %s: done (%.1fs)\n", label_.c_str(),
               timer_.ElapsedSeconds());
}

}  // namespace ganc
