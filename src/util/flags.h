// Minimal command-line flag parsing for the example/CLI binaries.
//
// Supports --name=value and --name value forms plus boolean switches
// (--verbose). Unknown flags are an error so typos fail loudly.

#ifndef GANC_UTIL_FLAGS_H_
#define GANC_UTIL_FLAGS_H_

#include <map>
#include <string>
#include <vector>

#include "util/status.h"

namespace ganc {

/// Parsed flags: name -> raw string value ("" for bare switches), plus
/// positional arguments in order.
class Flags {
 public:
  /// Parses argv. `known` lists the accepted flag names (without "--");
  /// any other --flag is rejected.
  static Result<Flags> Parse(int argc, const char* const* argv,
                             const std::vector<std::string>& known);

  bool Has(const std::string& name) const { return values_.count(name) > 0; }

  /// Raw string value or `fallback`.
  std::string GetString(const std::string& name,
                        const std::string& fallback) const;

  /// Integer value; error when present but unparsable.
  Result<int64_t> GetInt(const std::string& name, int64_t fallback) const;

  /// Double value; error when present but unparsable.
  Result<double> GetDouble(const std::string& name, double fallback) const;

  /// Boolean switch: present (with no/true value) -> true; "false"/"0" ->
  /// false.
  bool GetBool(const std::string& name, bool fallback) const;

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace ganc

#endif  // GANC_UTIL_FLAGS_H_
