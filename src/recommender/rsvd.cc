#include "recommender/rsvd.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "recommender/model_io.h"
#include "recommender/train_sweep.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/serialize.h"

namespace ganc {

RsvdRecommender::RsvdRecommender(RsvdConfig config)
    : config_(std::move(config)) {}

Status RsvdRecommender::Fit(const RatingDataset& train) {
  return Fit(train, nullptr);
}

// Deterministic blocked SGD (see train_sweep.h): every epoch partitions
// users into fixed blocks. Inside a block, user factors/biases update in
// place (blocks own disjoint user rows) while item factors/biases update
// a block-local copy seeded from the epoch-start snapshot; the per-block
// item deltas then merge serially in ascending block order
// (q_next[i] += local[i] - snapshot[i]). Blocks draw their shuffle order
// from MixSeed(seed, epoch, block), so the fitted model is a pure
// function of (data, config) — independent of threads and of the
// residency budget's window boundaries.
Status RsvdRecommender::Fit(const RatingDataset& train, ThreadPool* pool) {
  if (config_.num_factors <= 0) {
    return Status::InvalidArgument("num_factors must be positive");
  }
  if (config_.learning_rate <= 0.0) {
    return Status::InvalidArgument("learning_rate must be positive");
  }
  num_users_ = train.num_users();
  num_items_ = train.num_items();
  train_fingerprint_ = train.Fingerprint();
  global_mean_ = train.GlobalMeanRating();
  const size_t g = static_cast<size_t>(config_.num_factors);

  Rng rng(config_.seed);
  std::vector<double> user_factors(static_cast<size_t>(num_users_) * g);
  std::vector<double> item_factors(static_cast<size_t>(num_items_) * g);
  // LIBMF-style non-negative uniform init keeps early predictions near the
  // data scale and satisfies the RSVDN constraint from the start.
  for (double& v : user_factors) v = rng.Uniform() * config_.init_scale;
  for (double& v : item_factors) v = rng.Uniform() * config_.init_scale;
  user_bias_.assign(static_cast<size_t>(num_users_), 0.0);
  item_bias_.assign(static_cast<size_t>(num_items_), 0.0);

  // Bias-free MF must absorb the rating scale in the factors themselves;
  // with biases we model residuals around mu.
  const double base = config_.use_biases ? global_mean_ : 0.0;

  const int32_t ublock =
      config_.user_block > 0 ? config_.user_block : kTrainUserBlock;
  const int64_t num_blocks =
      num_users_ == 0 ? 0
                      : (static_cast<int64_t>(num_users_) + ublock - 1) /
                            ublock;
  struct BlockScratch {
    std::vector<ItemId> touched;   // distinct items of the block, ascending
    std::vector<double> q_local;   // touched.size() x g item-factor rows
    std::vector<double> b_local;   // touched.size() item biases (biased mode)
    double sq_err = 0.0;
  };
  std::vector<BlockScratch> scratch(static_cast<size_t>(num_blocks));
  std::vector<double> q_next;
  std::vector<double> bias_next;

  double lr = config_.learning_rate;
  const double lam = config_.regularization;
  for (int32_t epoch = 0; epoch < config_.num_epochs; ++epoch) {
    q_next = item_factors;  // epoch-start snapshot stays in item_factors
    if (config_.use_biases) bias_next = item_bias_;
    double sq_err = 0.0;

    const auto block_fn = [&](const UserBlock& b) -> Status {
      BlockScratch& s = scratch[static_cast<size_t>(b.index)];
      s.touched.clear();
      for (UserId u = b.begin; u < b.end; ++u) {
        for (const ItemRating& ir : train.ItemsOf(u)) {
          s.touched.push_back(ir.item);
        }
      }
      std::sort(s.touched.begin(), s.touched.end());
      s.touched.erase(std::unique(s.touched.begin(), s.touched.end()),
                      s.touched.end());
      s.q_local.resize(s.touched.size() * g);
      for (size_t t = 0; t < s.touched.size(); ++t) {
        const double* src =
            &item_factors[static_cast<size_t>(s.touched[t]) * g];
        std::copy(src, src + g, &s.q_local[t * g]);
      }
      if (config_.use_biases) {
        s.b_local.resize(s.touched.size());
        for (size_t t = 0; t < s.touched.size(); ++t) {
          s.b_local[t] = item_bias_[static_cast<size_t>(s.touched[t])];
        }
      }

      std::vector<std::pair<UserId, int32_t>> order;
      for (UserId u = b.begin; u < b.end; ++u) {
        const int32_t n = static_cast<int32_t>(train.ItemsOf(u).size());
        for (int32_t k = 0; k < n; ++k) order.emplace_back(u, k);
      }
      Rng brng(MixSeed(config_.seed, static_cast<uint64_t>(epoch),
                       static_cast<uint64_t>(b.index)));
      brng.Shuffle(&order);

      s.sq_err = 0.0;
      for (const auto& [u, k] : order) {
        const ItemRating& ir = train.ItemsOf(u)[static_cast<size_t>(k)];
        const size_t t = static_cast<size_t>(
            std::lower_bound(s.touched.begin(), s.touched.end(), ir.item) -
            s.touched.begin());
        double* pu = &user_factors[static_cast<size_t>(u) * g];
        double* qi = &s.q_local[t * g];
        double pred = base;
        if (config_.use_biases) {
          pred += user_bias_[static_cast<size_t>(u)] + s.b_local[t];
        }
        for (size_t f = 0; f < g; ++f) pred += pu[f] * qi[f];
        const double err = static_cast<double>(ir.value) - pred;
        s.sq_err += err * err;
        if (config_.use_biases) {
          user_bias_[static_cast<size_t>(u)] +=
              lr * (err - lam * user_bias_[static_cast<size_t>(u)]);
          s.b_local[t] += lr * (err - lam * s.b_local[t]);
        }
        for (size_t f = 0; f < g; ++f) {
          const double puf = pu[f];
          pu[f] += lr * (err * qi[f] - lam * puf);
          qi[f] += lr * (err * puf - lam * qi[f]);
          if (config_.non_negative) {
            pu[f] = std::max(pu[f], 0.0);
            qi[f] = std::max(qi[f], 0.0);
          }
        }
      }
      return Status::OK();
    };

    const auto merge_fn = [&](const UserBlock& b) -> Status {
      BlockScratch& s = scratch[static_cast<size_t>(b.index)];
      for (size_t t = 0; t < s.touched.size(); ++t) {
        const size_t i = static_cast<size_t>(s.touched[t]);
        double* dst = &q_next[i * g];
        const double* loc = &s.q_local[t * g];
        const double* snap = &item_factors[i * g];
        for (size_t f = 0; f < g; ++f) {
          dst[f] += loc[f] - snap[f];
          if (config_.non_negative) dst[f] = std::max(dst[f], 0.0);
        }
        if (config_.use_biases) {
          bias_next[i] += s.b_local[t] - item_bias_[i];
        }
      }
      sq_err += s.sq_err;
      s = BlockScratch{};  // free window-lifetime scratch eagerly
      return Status::OK();
    };

    GANC_RETURN_NOT_OK(
        SweepUserBlocks(train, ublock, pool, block_fn, merge_fn));
    item_factors.swap(q_next);
    if (config_.use_biases) item_bias_.swap(bias_next);
    lr *= config_.lr_decay;
    GANC_LOG(Debug) << name() << " epoch " << epoch << " train RMSE "
                    << std::sqrt(sq_err /
                                 static_cast<double>(train.num_ratings()));
    if (epoch_callback_) epoch_callback_(epoch + 1, config_.num_epochs);
  }
  // Per-user scoring base for the factor engine: mu + b_u folds the two
  // user-constant terms of Predict into one engine offset. Computed as
  // (mu + b_u) so engine scores stay bit-identical to Predict's
  // ((mu + b_u) + b_i) evaluation order.
  user_base_.clear();
  if (config_.use_biases) {
    user_base_.resize(static_cast<size_t>(num_users_));
    for (size_t u = 0; u < static_cast<size_t>(num_users_); ++u) {
      user_base_[u] = global_mean_ + user_bias_[u];
    }
  }
  factors_.AdoptFp64(std::move(user_factors), std::move(item_factors),
                     static_cast<size_t>(num_users_),
                     static_cast<size_t>(num_items_), g);
  return Status::OK();
}

FactorView RsvdRecommender::View() const {
  FactorView v;
  factors_.BindView(&v);
  v.item_bias = config_.use_biases ? item_bias_.data() : nullptr;
  v.user_base = config_.use_biases ? user_base_.data() : nullptr;
  v.num_items = num_items_;
  return v;
}

double RsvdRecommender::Predict(UserId u, ItemId i) const {
  // ScoreOne keeps the historical ((mu + b_u) + b_i) + <p, q> evaluation
  // order via the precomputed user_base_ rows, so fp64 predictions are
  // bit-identical to the pre-FactorStore implementation.
  return FactorScoringEngine(View()).ScoreOne(u, i);
}

void RsvdRecommender::ScoreInto(UserId u, std::span<double> out) const {
  FactorScoringEngine(View()).ScoreInto(u, out);
}

void RsvdRecommender::ScoreBatchInto(std::span<const UserId> users,
                                     std::span<double> out) const {
  FactorScoringEngine(View()).ScoreBatchInto(users, out);
}

double RsvdRecommender::Rmse(const RatingDataset& test) const {
  if (test.num_ratings() == 0) return 0.0;
  double acc = 0.0;
  for (const Rating& r : test.ratings()) {
    const double err = static_cast<double>(r.value) - Predict(r.user, r.item);
    acc += err * err;
  }
  return std::sqrt(acc / static_cast<double>(test.num_ratings()));
}

Status RsvdRecommender::Save(std::ostream& os) const {
  if (num_items() == 0) {
    return Status::FailedPrecondition("cannot save unfitted RSVD model");
  }
  ArtifactWriter w(os);
  GANC_RETURN_NOT_OK(w.WriteHeader(ArtifactKind::kModel,
                                   static_cast<uint32_t>(ModelType::kRsvd)));
  PayloadWriter config;
  config.WriteI32(config_.num_factors);
  config.WriteF64(config_.learning_rate);
  config.WriteF64(config_.regularization);
  config.WriteI32(config_.num_epochs);
  config.WriteF64(config_.lr_decay);
  config.WriteU8(config_.use_biases ? 1 : 0);
  config.WriteU8(config_.non_negative ? 1 : 0);
  config.WriteF64(config_.init_scale);
  config.WriteU64(config_.seed);
  GANC_RETURN_NOT_OK(w.WriteSection(kModelConfigSection, config));
  PayloadWriter state;
  state.WriteI32(num_users_);
  state.WriteI32(num_items_);
  state.WriteU64(train_fingerprint_);
  state.WriteF64(global_mean_);
  state.WriteVecF64(user_bias_);
  state.WriteVecF64(item_bias_);
  state.WriteVecF64(user_base_);
  GANC_RETURN_NOT_OK(w.WriteSection(kModelStateSection, state));
  PayloadWriter factors;
  factors_.Save(&factors);
  GANC_RETURN_NOT_OK(w.WriteSection(kFactorTableSection, factors));
  return w.Finish();
}

Status RsvdRecommender::Load(ArtifactReader& r, const RatingDataset* train) {
  GANC_RETURN_NOT_OK(ReadModelHeader(r, ModelType::kRsvd));
  Result<ArtifactReader::Section> config = r.ReadSectionExpect(
      kModelConfigSection);
  if (!config.ok()) return config.status();
  PayloadReader cr(config->payload());
  RsvdConfig cfg;
  uint8_t use_biases = 0;
  uint8_t non_negative = 0;
  GANC_RETURN_NOT_OK(cr.ReadI32(&cfg.num_factors));
  GANC_RETURN_NOT_OK(cr.ReadF64(&cfg.learning_rate));
  GANC_RETURN_NOT_OK(cr.ReadF64(&cfg.regularization));
  GANC_RETURN_NOT_OK(cr.ReadI32(&cfg.num_epochs));
  GANC_RETURN_NOT_OK(cr.ReadF64(&cfg.lr_decay));
  GANC_RETURN_NOT_OK(cr.ReadU8(&use_biases));
  GANC_RETURN_NOT_OK(cr.ReadU8(&non_negative));
  GANC_RETURN_NOT_OK(cr.ReadF64(&cfg.init_scale));
  GANC_RETURN_NOT_OK(cr.ReadU64(&cfg.seed));
  GANC_RETURN_NOT_OK(cr.ExpectEnd());
  cfg.use_biases = use_biases != 0;
  cfg.non_negative = non_negative != 0;
  if (cfg.num_factors <= 0) {
    return Status::InvalidArgument("invalid RSVD factor count in artifact");
  }
  Result<ArtifactReader::Section> state = r.ReadSectionExpect(
      kModelStateSection);
  if (!state.ok()) return state.status();
  PayloadReader sr(state->payload());
  int32_t num_users = 0;
  int32_t num_items = 0;
  uint64_t fingerprint = 0;
  double global_mean = 0.0;
  std::vector<double> bu, bi, base;
  GANC_RETURN_NOT_OK(sr.ReadI32(&num_users));
  GANC_RETURN_NOT_OK(sr.ReadI32(&num_items));
  GANC_RETURN_NOT_OK(sr.ReadU64(&fingerprint));
  GANC_RETURN_NOT_OK(sr.ReadF64(&global_mean));
  GANC_RETURN_NOT_OK(sr.ReadVecF64(&bu));
  GANC_RETURN_NOT_OK(sr.ReadVecF64(&bi));
  GANC_RETURN_NOT_OK(sr.ReadVecF64(&base));
  GANC_RETURN_NOT_OK(sr.ExpectEnd());
  Result<ArtifactReader::Section> factors = r.ReadSectionExpect(
      kFactorTableSection);
  if (!factors.ok()) return factors.status();
  FactorStore store;
  GANC_RETURN_NOT_OK(store.LoadFromSection(r, *factors));
  const size_t g = static_cast<size_t>(cfg.num_factors);
  const size_t nu = static_cast<size_t>(num_users);
  const size_t ni = static_cast<size_t>(num_items);
  const bool biased_sizes_ok =
      !cfg.use_biases ||
      (bu.size() == nu && bi.size() == ni && base.size() == nu);
  if (num_users < 0 || num_items < 0 || store.num_factors() != g ||
      store.user_rows() != nu || store.item_rows() != ni ||
      !biased_sizes_ok) {
    return Status::InvalidArgument("inconsistent RSVD factor dimensions");
  }
  if (train != nullptr) {
    if (num_users != train->num_users() || num_items != train->num_items()) {
      return Status::InvalidArgument(
          "RSVD artifact dimensions do not match the provided dataset");
    }
    if (fingerprint != train->Fingerprint()) {
      return Status::InvalidArgument(
          "RSVD artifact was trained on different data than the provided "
          "dataset (fingerprint mismatch)");
    }
  }
  GANC_RETURN_NOT_OK(ExpectEndOfArtifact(r));
  config_ = cfg;
  num_users_ = num_users;
  num_items_ = num_items;
  train_fingerprint_ = fingerprint;
  global_mean_ = global_mean;
  factors_ = std::move(store);
  user_bias_ = std::move(bu);
  item_bias_ = std::move(bi);
  user_base_ = std::move(base);
  return Status::OK();
}

}  // namespace ganc
