#include "eval/protocol.h"

namespace ganc {

std::string RankingProtocolName(RankingProtocol protocol) {
  switch (protocol) {
    case RankingProtocol::kAllUnrated:
      return "all-unrated-items";
    case RankingProtocol::kRatedTestItems:
      return "rated-test-items";
  }
  return "?";
}

std::vector<std::vector<ItemId>> BuildTopN(const Recommender& model,
                                           const RatingDataset& train,
                                           const RatingDataset& test,
                                           int top_n,
                                           RankingProtocol protocol,
                                           ThreadPool* pool) {
  std::vector<std::vector<ItemId>> result(
      static_cast<size_t>(train.num_users()));
  ParallelForChunks(
      pool, 0, static_cast<size_t>(train.num_users()),
      [&](size_t lo, size_t hi) {
        ScoringContext ctx;
        for (size_t uu = lo; uu < hi; ++uu) {
          const UserId u = static_cast<UserId>(uu);
          std::vector<ItemId>& candidates = ctx.Candidates();
          if (protocol == RankingProtocol::kAllUnrated) {
            train.UnratedItemsInto(u, &candidates);
          } else {
            candidates.clear();
            candidates.reserve(test.ItemsOf(u).size());
            for (const ItemRating& ir : test.ItemsOf(u)) {
              candidates.push_back(ir.item);
            }
          }
          model.RecommendTopNInto(u, candidates, top_n, ctx, result[uu]);
        }
      });
  return result;
}

}  // namespace ganc
