// ScoringContext one-thread-for-life ownership: the context binds to the
// first thread that borrows a buffer, a second thread touching it is a
// contract violation that debug builds catch with an abort (the serving
// scheduler's one-context-per-worker rule rides on this).

#include "recommender/scoring_context.h"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace ganc {
namespace {

TEST(ScoringContextOwnerTest, SameThreadReuseIsFine) {
  ScoringContext ctx;
  (void)ctx.Scores(16);
  (void)ctx.BatchScores(64);
  (void)ctx.Candidates();
  (void)ctx.TopK();
  (void)ctx.Flags();
  (void)ctx.Indices();
  (void)ctx.BatchUsers();
  (void)ctx.Buffer(3, 8);
  (void)ctx.Items(2);
  SUCCEED();
}

TEST(ScoringContextOwnerTest, BindsToFirstUsingThreadNotConstructor) {
  // Constructing on one thread and using on another is allowed — the
  // chunked parallel loops construct per-chunk contexts wherever the
  // closure object lives and use them on the worker.
  ScoringContext ctx;
  std::thread worker([&ctx] {
    (void)ctx.Scores(8);
    (void)ctx.TopK();
  });
  worker.join();
  SUCCEED();
}

TEST(ScoringContextOwnerTest, SecondThreadAccessDiesInDebugBuilds) {
#ifdef NDEBUG
  GTEST_SKIP() << "ownership is asserted only in debug builds";
#else
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  ScoringContext ctx;
  (void)ctx.Scores(8);  // bind to this thread
  EXPECT_DEATH(
      {
        std::thread other([&ctx] { (void)ctx.Scores(8); });
        other.join();
      },
      "ScoringContext");
#endif
}

TEST(ScoringContextOwnerTest, EachWorkerOwningItsOwnContextIsSafe) {
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([] {
      ScoringContext ctx;
      for (int i = 0; i < 100; ++i) {
        (void)ctx.Scores(32);
        (void)ctx.TopK();
      }
    });
  }
  for (std::thread& w : workers) w.join();
  SUCCEED();
}

}  // namespace
}  // namespace ganc
