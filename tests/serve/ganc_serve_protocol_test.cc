// Serve protocol: parse/format unit coverage, plus an end-to-end round
// trip through a real `ganc_serve` subprocess — stdin/stdout and TCP —
// against an artifact trained by `ganc_cli` in this test. The binaries'
// paths arrive via compile definitions (see CMakeLists.txt); when tools
// are not built the subprocess tests skip themselves.

#include "serve/protocol.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace ganc {
namespace {

TEST(ServeProtocolTest, ParsesTopN) {
  Result<ServeRequest> r =
      ParseServeRequest("TOPN user=3 n=10 session=abc exclude=1,2,9");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->command, ServeCommand::kTopN);
  EXPECT_EQ(r->user, 3);
  EXPECT_EQ(r->n, 10);
  EXPECT_EQ(r->session, "abc");
  EXPECT_EQ(r->items, (std::vector<ItemId>{1, 2, 9}));
}

TEST(ServeProtocolTest, TopNDefaultsAreOptional) {
  Result<ServeRequest> r = ParseServeRequest("TOPN user=7");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->user, 7);
  EXPECT_EQ(r->n, 0);
  EXPECT_TRUE(r->session.empty());
  EXPECT_TRUE(r->items.empty());
}

TEST(ServeProtocolTest, ParsesConsumeStatsPingQuit) {
  Result<ServeRequest> c =
      ParseServeRequest("CONSUME session=s user=1 items=4,5");
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->command, ServeCommand::kConsume);
  EXPECT_EQ(c->items, (std::vector<ItemId>{4, 5}));
  EXPECT_EQ(ParseServeRequest("STATS")->command, ServeCommand::kStats);
  EXPECT_EQ(ParseServeRequest("PING")->command, ServeCommand::kPing);
  EXPECT_EQ(ParseServeRequest("QUIT")->command, ServeCommand::kQuit);
}

TEST(ServeProtocolTest, ToleratesExtraWhitespaceAndCarriageReturn) {
  Result<ServeRequest> r = ParseServeRequest("  TOPN   user=2\tn=3\r");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->user, 2);
  EXPECT_EQ(r->n, 3);
}

TEST(ServeProtocolTest, RejectsMalformedRequests) {
  EXPECT_FALSE(ParseServeRequest("").ok());
  EXPECT_FALSE(ParseServeRequest("NOPE user=1").ok());
  EXPECT_FALSE(ParseServeRequest("TOPN").ok());             // missing user
  EXPECT_FALSE(ParseServeRequest("TOPN user=x").ok());      // bad number
  EXPECT_FALSE(ParseServeRequest("TOPN user=1 bogus").ok());
  EXPECT_FALSE(ParseServeRequest("TOPN user=1 k=5").ok());  // unknown key
  EXPECT_FALSE(ParseServeRequest("TOPN user=1 items=2").ok());
  EXPECT_FALSE(ParseServeRequest("TOPN user=1 exclude=1,,2").ok());
  EXPECT_FALSE(ParseServeRequest("TOPN user=1 exclude=").ok());
  EXPECT_FALSE(ParseServeRequest("TOPN user=1 exclude=1,2,").ok());
  EXPECT_FALSE(ParseServeRequest("CONSUME session=s user=1 items=").ok());
  EXPECT_FALSE(ParseServeRequest("CONSUME user=1 items=2").ok());
  EXPECT_FALSE(ParseServeRequest("CONSUME session=s user=1").ok());
  EXPECT_FALSE(ParseServeRequest("CONSUME session=s user=1 exclude=2").ok());
  EXPECT_FALSE(ParseServeRequest("PING now").ok());
  EXPECT_FALSE(ParseServeRequest("TOPN user=1 session=").ok());
}

TEST(ServeProtocolTest, RejectsIntegersThatOverflow32Bits) {
  // 2^32 + 3 must not silently wrap onto user 3.
  EXPECT_FALSE(ParseServeRequest("TOPN user=4294967299").ok());
  EXPECT_FALSE(ParseServeRequest("TOPN user=1 n=4294967296").ok());
  EXPECT_FALSE(ParseServeRequest("TOPN user=1 exclude=9999999999999").ok());
  EXPECT_FALSE(ParseServeRequest("TOPN user=99999999999999999999").ok());
  Result<ServeRequest> edge =
      ParseServeRequest("TOPN user=2147483647 n=2147483647");
  ASSERT_TRUE(edge.ok());
  EXPECT_EQ(edge->user, 2147483647);
}

TEST(ServeProtocolTest, FormatsResponses) {
  const std::vector<ItemId> items = {5, 1, 9};
  EXPECT_EQ(FormatTopNResponse(3, 5, items), "OK user=3 n=5 items=5,1,9");
  EXPECT_EQ(FormatTopNResponse(0, 2, {}), "OK user=0 n=2 items=");
  EXPECT_EQ(FormatOk("pong"), "OK pong");
  EXPECT_EQ(FormatOk(""), "OK");
  EXPECT_EQ(FormatError("bad\nthing"), "ERR bad thing");
}

TEST(ServeProtocolTest, ParsesPublishVersionShardsAndTopNV) {
  Result<ServeRequest> p = ParseServeRequest("PUBLISH path=/tmp/model.gam");
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  EXPECT_EQ(p->command, ServeCommand::kPublish);
  EXPECT_EQ(p->path, "/tmp/model.gam");
  Result<ServeRequest> tv =
      ParseServeRequest("TOPNV user=4 n=3 exclude=7,8");
  ASSERT_TRUE(tv.ok()) << tv.status().ToString();
  EXPECT_EQ(tv->command, ServeCommand::kTopNV);
  EXPECT_EQ(tv->user, 4);
  EXPECT_EQ(tv->n, 3);
  EXPECT_EQ(tv->items, (std::vector<ItemId>{7, 8}));
  EXPECT_EQ(ParseServeRequest("VERSION")->command, ServeCommand::kVersion);
  EXPECT_EQ(ParseServeRequest("SHARDS")->command, ServeCommand::kShards);
}

TEST(ServeProtocolTest, RejectsMalformedSwapAndShardRequests) {
  EXPECT_FALSE(ParseServeRequest("PUBLISH").ok());       // missing path
  EXPECT_FALSE(ParseServeRequest("PUBLISH path=").ok()); // empty path
  EXPECT_FALSE(ParseServeRequest("PUBLISH user=1").ok());
  EXPECT_FALSE(ParseServeRequest("TOPN user=1 path=/x").ok());
  EXPECT_FALSE(ParseServeRequest("TOPNV").ok());         // missing user
  EXPECT_FALSE(ParseServeRequest("TOPNV path=/x").ok());
  EXPECT_FALSE(ParseServeRequest("VERSION now").ok());
  EXPECT_FALSE(ParseServeRequest("SHARDS all").ok());
}

TEST(ServeProtocolTest, ParsesMetricsMetricSnapAndTrace) {
  EXPECT_EQ(ParseServeRequest("METRICS")->command, ServeCommand::kMetrics);
  EXPECT_EQ(ParseServeRequest("METRICSNAP")->command,
            ServeCommand::kMetricSnap);
  Result<ServeRequest> bare = ParseServeRequest("TRACE");
  ASSERT_TRUE(bare.ok());
  EXPECT_EQ(bare->command, ServeCommand::kTrace);
  EXPECT_EQ(bare->n, 0);  // 0 = server default count
  Result<ServeRequest> five = ParseServeRequest("TRACE n=5");
  ASSERT_TRUE(five.ok());
  EXPECT_EQ(five->command, ServeCommand::kTrace);
  EXPECT_EQ(five->n, 5);
}

TEST(ServeProtocolTest, RejectsMalformedObservabilityRequests) {
  // TRACE takes only n=<count>; METRICS/METRICSNAP take nothing.
  EXPECT_FALSE(ParseServeRequest("TRACE user=1").ok());
  EXPECT_FALSE(ParseServeRequest("TRACE session=s").ok());
  EXPECT_FALSE(ParseServeRequest("TRACE items=1,2").ok());
  EXPECT_FALSE(ParseServeRequest("TRACE path=/x").ok());
  EXPECT_FALSE(ParseServeRequest("TRACE n=-1").ok());
  EXPECT_FALSE(ParseServeRequest("TRACE n=x").ok());
  EXPECT_FALSE(ParseServeRequest("METRICS now").ok());
  EXPECT_FALSE(ParseServeRequest("METRICSNAP all").ok());
}

TEST(ServeProtocolTest, FormatsFramedHeader) {
  EXPECT_EQ(FormatFramedHeader("metrics", 3), "OK metrics lines=3");
  EXPECT_EQ(FormatFramedHeader("traces", 0), "OK traces lines=0");
}

TEST(ServeProtocolTest, FormatsVersionedTopNResponse) {
  const std::vector<ItemId> items = {5, 1, 9};
  EXPECT_EQ(FormatVersionedTopNResponse(3, 5, 17, items),
            "OK user=3 n=5 version=17 items=5,1,9");
  EXPECT_EQ(FormatVersionedTopNResponse(0, 2, 1, {}),
            "OK user=0 n=2 version=1 items=");
}

#if defined(GANC_SERVE_BINARY) && defined(GANC_CLI_BINARY)

// Runs `argv` to completion, inheriting the parent's environment;
// returns the exit code.
int RunToCompletion(const std::vector<std::string>& argv) {
  std::vector<char*> args;
  for (const std::string& a : argv) args.push_back(const_cast<char*>(a.c_str()));
  args.push_back(nullptr);
  const pid_t pid = fork();
  if (pid == 0) {
    execv(args[0], args.data());
    _exit(127);
  }
  int status = 0;
  waitpid(pid, &status, 0);
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

// A ganc_serve child wired to the test through stdin/stdout pipes.
class ServeProcess {
 public:
  explicit ServeProcess(const std::vector<std::string>& extra_flags) {
    int to_child[2], from_child[2];
    EXPECT_EQ(pipe(to_child), 0);
    EXPECT_EQ(pipe(from_child), 0);
    pid_ = fork();
    if (pid_ == 0) {
      dup2(to_child[0], STDIN_FILENO);
      dup2(from_child[1], STDOUT_FILENO);
      close(to_child[0]);
      close(to_child[1]);
      close(from_child[0]);
      close(from_child[1]);
      std::vector<std::string> argv = {GANC_SERVE_BINARY};
      argv.insert(argv.end(), extra_flags.begin(), extra_flags.end());
      std::vector<char*> args;
      for (const std::string& a : argv) {
        args.push_back(const_cast<char*>(a.c_str()));
      }
      args.push_back(nullptr);
      execv(args[0], args.data());
      _exit(127);
    }
    close(to_child[0]);
    close(from_child[1]);
    // Keep these ends out of later-forked siblings: a second
    // ServeProcess must not inherit (and hold open) this child's stdin
    // write end, or EOF-driven shutdown would deadlock.
    fcntl(to_child[1], F_SETFD, FD_CLOEXEC);
    fcntl(from_child[0], F_SETFD, FD_CLOEXEC);
    in_ = fdopen(from_child[0], "r");
    out_fd_ = to_child[1];
  }

  ~ServeProcess() {
    if (out_fd_ >= 0) close(out_fd_);
    if (in_ != nullptr) fclose(in_);
    if (pid_ > 0) waitpid(pid_, nullptr, 0);
  }

  void Send(const std::string& line) {
    const std::string with_newline = line + "\n";
    ASSERT_EQ(write(out_fd_, with_newline.data(), with_newline.size()),
              static_cast<ssize_t>(with_newline.size()));
  }

  std::string ReadLine() {
    char* line = nullptr;
    size_t cap = 0;
    const ssize_t len = getline(&line, &cap, in_);
    std::string out;
    if (len > 0) {
      out.assign(line, static_cast<size_t>(len));
      while (!out.empty() && (out.back() == '\n' || out.back() == '\r')) {
        out.pop_back();
      }
    }
    free(line);
    return out;
  }

  /// Closes stdin (EOF -> clean shutdown) and reaps the child.
  int CloseAndWait() {
    close(out_fd_);
    out_fd_ = -1;
    int status = 0;
    waitpid(pid_, &status, 0);
    pid_ = -1;
    return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  }

  void Signal(int sig) {
    if (pid_ > 0) kill(pid_, sig);
  }

  /// Reaps the child without closing its stdin, polling up to
  /// `timeout_ms`. Returns the exit code, or -1 if the child did not
  /// exit in time (it is then left running for the destructor).
  int WaitExit(int timeout_ms) {
    for (int waited = 0; waited <= timeout_ms; waited += 10) {
      int status = 0;
      const pid_t reaped = waitpid(pid_, &status, WNOHANG);
      if (reaped == pid_) {
        pid_ = -1;
        return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
      }
      usleep(10 * 1000);
    }
    return -1;
  }

 private:
  pid_t pid_ = -1;
  FILE* in_ = nullptr;
  int out_fd_ = -1;
};

// Trains a tiny artifact once for all subprocess tests.
class GancServeSubprocessTest : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    dir_ = new std::string(testing::TempDir() + "/ganc_serve_test");
    (void)RunToCompletion({"/bin/mkdir", "-p", *dir_});
    cache_ = new std::string(*dir_ + "/tiny.gdc");
    model_ = new std::string(*dir_ + "/psvd10.gam");
    model2_ = new std::string(*dir_ + "/psvd100.gam");
    garbage_ = new std::string(*dir_ + "/garbage.gam");
    ASSERT_EQ(RunToCompletion({GANC_CLI_BINARY, "cache-dataset",
                               "--dataset=tiny", "--out=" + *cache_}),
              0);
    ASSERT_EQ(RunToCompletion({GANC_CLI_BINARY, "train",
                               "--dataset-cache=" + *cache_, "--arec=psvd10",
                               "--seed=7", "--save-model=" + *model_}),
              0);
    // A second artifact over the same dataset (swap target) and a file
    // that is not an artifact at all (rejection target).
    ASSERT_EQ(RunToCompletion({GANC_CLI_BINARY, "train",
                               "--dataset-cache=" + *cache_, "--arec=psvd100",
                               "--seed=7", "--save-model=" + *model2_}),
              0);
    FILE* junk = fopen(garbage_->c_str(), "w");
    ASSERT_NE(junk, nullptr);
    fputs("this is not a model artifact\n", junk);
    fclose(junk);
  }

  static std::vector<std::string> ServeFlags() {
    return {"--dataset-cache=" + *cache_, "--seed=7", "--model=" + *model_,
            "--default-n=5"};
  }

  static std::string* dir_;
  static std::string* cache_;
  static std::string* model_;
  static std::string* model2_;
  static std::string* garbage_;
};

std::string* GancServeSubprocessTest::dir_ = nullptr;
std::string* GancServeSubprocessTest::cache_ = nullptr;
std::string* GancServeSubprocessTest::model_ = nullptr;
std::string* GancServeSubprocessTest::model2_ = nullptr;
std::string* GancServeSubprocessTest::garbage_ = nullptr;

TEST_F(GancServeSubprocessTest, StdinRoundTripAndSessionFlow) {
  ServeProcess serve(ServeFlags());
  serve.Send("PING");
  EXPECT_EQ(serve.ReadLine(), "OK pong");
  serve.Send("TOPN user=3 n=5");
  const std::string base = serve.ReadLine();
  ASSERT_EQ(base.rfind("OK user=3 n=5 items=", 0), 0u) << base;
  // Extract the first two served items and consume them in a session.
  const std::string csv = base.substr(std::strlen("OK user=3 n=5 items="));
  const size_t c1 = csv.find(',');
  const size_t c2 = csv.find(',', c1 + 1);
  ASSERT_NE(c2, std::string::npos);
  const std::string first_two = csv.substr(0, c2);
  serve.Send("CONSUME session=s1 user=3 items=" + first_two);
  EXPECT_EQ(serve.ReadLine(), "OK consumed=2");
  serve.Send("TOPN user=3 n=5 session=s1");
  const std::string masked = serve.ReadLine();
  ASSERT_EQ(masked.rfind("OK user=3 n=5 items=", 0), 0u);
  // The consumed items must be gone and the explicit-exclude request
  // must serve the identical list.
  EXPECT_EQ(masked.find(first_two), std::string::npos);
  serve.Send("TOPN user=3 n=5 exclude=" + first_two);
  EXPECT_EQ(serve.ReadLine(), masked);
  // Determinism across repeats (second answer comes from the cache).
  serve.Send("TOPN user=3 n=5");
  EXPECT_EQ(serve.ReadLine(), base);
  serve.Send("NOT-A-COMMAND");
  EXPECT_EQ(serve.ReadLine().rfind("ERR ", 0), 0u);
  serve.Send("QUIT");
  EXPECT_EQ(serve.ReadLine(), "OK bye");
  EXPECT_EQ(serve.CloseAndWait(), 0);
}

TEST_F(GancServeSubprocessTest, TcpRoundTripOnEphemeralPort) {
  std::vector<std::string> flags = ServeFlags();
  flags.push_back("--port=0");
  ServeProcess serve(flags);
  const std::string listening = serve.ReadLine();
  ASSERT_EQ(listening.rfind("LISTENING port=", 0), 0u) << listening;
  const int port = std::stoi(listening.substr(std::strlen("LISTENING port=")));
  ASSERT_GT(port, 0);

  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  ASSERT_EQ(connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  const std::string request = "TOPN user=1 n=5\nPING\n";
  ASSERT_EQ(write(fd, request.data(), request.size()),
            static_cast<ssize_t>(request.size()));
  FILE* stream = fdopen(fd, "r");
  ASSERT_NE(stream, nullptr);
  char* line = nullptr;
  size_t cap = 0;
  ssize_t len = getline(&line, &cap, stream);
  ASSERT_GT(len, 0);
  std::string topn(line, static_cast<size_t>(len));
  EXPECT_EQ(topn.rfind("OK user=1 n=5 items=", 0), 0u) << topn;
  len = getline(&line, &cap, stream);
  ASSERT_GT(len, 0);
  EXPECT_EQ(std::string(line, static_cast<size_t>(len)), "OK pong\n");
  free(line);
  fclose(stream);

  // stdin EOF shuts the server down cleanly with the listener open.
  EXPECT_EQ(serve.CloseAndWait(), 0);
}

// Pulls the number after "version=" out of a response line.
uint64_t VersionIn(const std::string& line) {
  const size_t pos = line.find("version=");
  EXPECT_NE(pos, std::string::npos) << line;
  if (pos == std::string::npos) return 0;
  return strtoull(line.c_str() + pos + std::strlen("version="), nullptr, 10);
}

TEST_F(GancServeSubprocessTest, PublishSwapsSnapshotAndKeepsOldOnFailure) {
  ServeProcess serve(ServeFlags());
  serve.Send("VERSION");
  const std::string v_line = serve.ReadLine();
  ASSERT_EQ(v_line.rfind("OK version=", 0), 0u) << v_line;
  const uint64_t v1 = VersionIn(v_line);
  serve.Send("SHARDS");
  EXPECT_EQ(serve.ReadLine().rfind("OK shards=1 mode=inprocess users=", 0),
            0u);
  serve.Send("TOPNV user=3 n=5");
  const std::string before = serve.ReadLine();
  ASSERT_EQ(before.rfind("OK user=3 n=5 version=", 0), 0u) << before;
  EXPECT_EQ(VersionIn(before), v1);

  // A file that is not an artifact and a path that does not exist are
  // both rejected, and the old snapshot keeps serving bit-identically.
  serve.Send("PUBLISH path=" + *garbage_);
  EXPECT_EQ(serve.ReadLine().rfind("ERR ", 0), 0u);
  serve.Send("PUBLISH path=" + *dir_ + "/does_not_exist.gam");
  EXPECT_EQ(serve.ReadLine().rfind("ERR ", 0), 0u);
  serve.Send("TOPNV user=3 n=5");
  EXPECT_EQ(serve.ReadLine(), before);

  // A real artifact swaps in: monotonically newer version, and the
  // response is attributed to it.
  serve.Send("PUBLISH path=" + *model2_);
  const std::string pub = serve.ReadLine();
  ASSERT_EQ(pub.rfind("OK version=", 0), 0u) << pub;
  const uint64_t v2 = VersionIn(pub);
  EXPECT_GT(v2, v1);
  serve.Send("TOPNV user=3 n=5");
  const std::string after = serve.ReadLine();
  EXPECT_EQ(VersionIn(after), v2);

  // Re-publishing the same path loads a fresh snapshot: a new version
  // serving the identical bits.
  serve.Send("PUBLISH path=" + *model2_);
  const uint64_t v3 = VersionIn(serve.ReadLine());
  EXPECT_GT(v3, v2);
  serve.Send("TOPNV user=3 n=5");
  const std::string again = serve.ReadLine();
  EXPECT_EQ(VersionIn(again), v3);
  const size_t items_pos = after.find(" items=");
  ASSERT_NE(items_pos, std::string::npos);
  EXPECT_EQ(again.substr(again.find(" items=")), after.substr(items_pos));
  serve.Send("QUIT");
  EXPECT_EQ(serve.ReadLine(), "OK bye");
  EXPECT_EQ(serve.CloseAndWait(), 0);
}

TEST_F(GancServeSubprocessTest, InProcessShardsMatchUnshardedByteForByte) {
  ServeProcess single(ServeFlags());
  std::vector<std::string> sharded_flags = ServeFlags();
  sharded_flags.push_back("--shards=3");
  ServeProcess sharded(sharded_flags);

  sharded.Send("SHARDS");
  EXPECT_EQ(sharded.ReadLine().rfind("OK shards=3 mode=inprocess users=", 0),
            0u);
  sharded.Send("VERSION");
  const std::string versions = sharded.ReadLine();
  ASSERT_EQ(versions.rfind("OK versions=", 0), 0u) << versions;
  // Three comma-separated per-shard versions.
  EXPECT_EQ(std::count(versions.begin(), versions.end(), ','), 2);

  for (int user = 0; user < 12; ++user) {
    const std::string req = "TOPN user=" + std::to_string(user) + " n=5";
    single.Send(req);
    sharded.Send(req);
    EXPECT_EQ(sharded.ReadLine(), single.ReadLine()) << req;
  }
  // Error responses must match too (out-of-range routes to the
  // fallback shard and falls through to the canonical service error).
  single.Send("TOPN user=999999 n=5");
  sharded.Send("TOPN user=999999 n=5");
  EXPECT_EQ(sharded.ReadLine(), single.ReadLine());

  // PUBLISH fans out to every shard.
  sharded.Send("PUBLISH path=" + *model2_);
  const std::string pub = sharded.ReadLine();
  EXPECT_EQ(pub.rfind("OK version=", 0), 0u) << pub;
  EXPECT_NE(pub.find(" shards=3"), std::string::npos) << pub;

  EXPECT_EQ(single.CloseAndWait(), 0);
  EXPECT_EQ(sharded.CloseAndWait(), 0);
}

TEST_F(GancServeSubprocessTest, SigtermShutsDownPromptlyWhileBlockedInAccept) {
  // The regression this pins down: a server parked in accept(2) used to
  // ignore SIGTERM until the next connection arrived. With the
  // self-pipe + poll loop it must exit quickly and cleanly.
  std::vector<std::string> flags = ServeFlags();
  flags.push_back("--port=0");
  flags.push_back("--daemon");
  ServeProcess serve(flags);
  const std::string listening = serve.ReadLine();
  ASSERT_EQ(listening.rfind("LISTENING port=", 0), 0u) << listening;

  const auto start = std::chrono::steady_clock::now();
  serve.Signal(SIGTERM);
  const int code = serve.WaitExit(5000);
  const auto elapsed_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_EQ(code, 0) << "clean shutdown expected";
  EXPECT_LT(elapsed_ms, 3000)
      << "SIGTERM must not wait for the next connection";
}

#else

TEST(GancServeSubprocessTest, SkippedWithoutToolBinaries) {
  GTEST_SKIP() << "ganc_serve/ganc_cli binaries not built";
}

#endif  // GANC_SERVE_BINARY && GANC_CLI_BINARY

}  // namespace
}  // namespace ganc
