#include "serve/session_overlay.h"

#include <algorithm>

namespace ganc {

void SessionOverlay::MarkConsumed(UserId u, std::span<const ItemId> items) {
  if (items.empty()) return;
  std::vector<ItemId>& set = consumed_[u];
  const size_t before = set.size();
  set.insert(set.end(), items.begin(), items.end());
  std::sort(set.begin(), set.end());
  set.erase(std::unique(set.begin(), set.end()), set.end());
  total_ += set.size() - before;
}

std::span<const ItemId> SessionOverlay::ConsumedOf(UserId u) const {
  const auto it = consumed_.find(u);
  if (it == consumed_.end()) return {};
  return it->second;
}

void SessionRegistry::MarkConsumed(const std::string& session, UserId u,
                                   std::span<const ItemId> items) {
  std::lock_guard<std::mutex> lock(mu_);
  sessions_[session].MarkConsumed(u, items);
}

void SessionRegistry::CollectExclusions(const std::string& session, UserId u,
                                        std::span<const ItemId> extra,
                                        std::vector<ItemId>* out) const {
  out->assign(extra.begin(), extra.end());
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = sessions_.find(session);
    if (it != sessions_.end()) {
      const std::span<const ItemId> consumed = it->second.ConsumedOf(u);
      out->insert(out->end(), consumed.begin(), consumed.end());
    }
  }
  std::sort(out->begin(), out->end());
  out->erase(std::unique(out->begin(), out->end()), out->end());
}

size_t SessionRegistry::num_sessions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sessions_.size();
}

}  // namespace ganc
