// Binary dataset cache: SaveBinary/LoadBinary must reproduce the saved
// dataset exactly (dimensions, observation order, per-user and per-item
// indexes) and reject corrupt or structurally invalid caches.

#include "data/dataset.h"

#include <filesystem>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "data/split.h"
#include "data/synthetic.h"
#include "recommender/rsvd.h"
#include "util/serialize.h"

namespace ganc {
namespace {

RatingDataset MakeData() {
  SyntheticSpec spec = TinySpec();
  spec.num_users = 70;
  spec.num_items = 110;
  spec.mean_activity = 15.0;
  auto ds = GenerateSynthetic(spec);
  EXPECT_TRUE(ds.ok());
  return std::move(ds).value();
}

std::string Serialize(const RatingDataset& ds) {
  std::ostringstream os(std::ios::binary);
  EXPECT_TRUE(ds.SaveBinary(os).ok());
  return os.str();
}

RatingDataset Deserialize(const std::string& bytes) {
  std::istringstream is(bytes, std::ios::binary);
  auto ds = RatingDataset::LoadBinary(is);
  EXPECT_TRUE(ds.ok()) << ds.status().ToString();
  return std::move(ds).value();
}

void ExpectIdentical(const RatingDataset& a, const RatingDataset& b) {
  ASSERT_EQ(a.num_users(), b.num_users());
  ASSERT_EQ(a.num_items(), b.num_items());
  ASSERT_EQ(a.num_ratings(), b.num_ratings());
  // Observation order is part of the contract: splits and SGD epoch
  // iteration depend on ratings() order.
  for (int64_t i = 0; i < a.num_ratings(); ++i) {
    const Rating& ra = a.ratings()[static_cast<size_t>(i)];
    const Rating& rb = b.ratings()[static_cast<size_t>(i)];
    ASSERT_EQ(ra.user, rb.user) << "rating " << i;
    ASSERT_EQ(ra.item, rb.item) << "rating " << i;
    ASSERT_EQ(ra.value, rb.value) << "rating " << i;
  }
  for (UserId u = 0; u < a.num_users(); ++u) {
    const auto& rowa = a.ItemsOf(u);
    const auto& rowb = b.ItemsOf(u);
    ASSERT_EQ(rowa.size(), rowb.size()) << "user " << u;
    for (size_t k = 0; k < rowa.size(); ++k) {
      ASSERT_EQ(rowa[k].item, rowb[k].item);
      ASSERT_EQ(rowa[k].value, rowb[k].value);
    }
  }
  for (ItemId i = 0; i < a.num_items(); ++i) {
    const auto& cola = a.UsersOf(i);
    const auto& colb = b.UsersOf(i);
    ASSERT_EQ(cola.size(), colb.size()) << "item " << i;
    for (size_t k = 0; k < cola.size(); ++k) {
      ASSERT_EQ(cola[k].user, colb[k].user);
      ASSERT_EQ(cola[k].value, colb[k].value);
    }
  }
}

TEST(DatasetCacheTest, RoundTripIsExact) {
  const RatingDataset ds = MakeData();
  ExpectIdentical(ds, Deserialize(Serialize(ds)));
}

TEST(DatasetCacheTest, EmptyDatasetRoundTrips) {
  auto ds = std::move(RatingDatasetBuilder(0, 0)).Build();
  ASSERT_TRUE(ds.ok());
  ExpectIdentical(*ds, Deserialize(Serialize(*ds)));
}

TEST(DatasetCacheTest, DatasetWithEmptyRowsRoundTrips) {
  RatingDatasetBuilder builder(5, 6);
  // Users 0, 2, 4 and items 1, 5 stay empty; insertion order is shuffled.
  ASSERT_TRUE(builder.Add(3, 4, 2.0f).ok());
  ASSERT_TRUE(builder.Add(1, 0, 5.0f).ok());
  ASSERT_TRUE(builder.Add(3, 2, 1.0f).ok());
  ASSERT_TRUE(builder.Add(1, 3, 4.5f).ok());
  auto ds = std::move(builder).Build();
  ASSERT_TRUE(ds.ok());
  ExpectIdentical(*ds, Deserialize(Serialize(*ds)));
}

TEST(DatasetCacheTest, DownstreamSplitAndTrainingAreBitIdentical) {
  // The production cold-start path: the cache-loaded dataset must drive
  // seeded splits and SGD training to bit-identical results.
  const RatingDataset original = MakeData();
  const RatingDataset cached = Deserialize(Serialize(original));

  auto split_a = PerUserRatioSplit(original, {.train_ratio = 0.5, .seed = 9});
  auto split_b = PerUserRatioSplit(cached, {.train_ratio = 0.5, .seed = 9});
  ASSERT_TRUE(split_a.ok());
  ASSERT_TRUE(split_b.ok());
  ExpectIdentical(split_a->train, split_b->train);
  ExpectIdentical(split_a->test, split_b->test);

  RsvdRecommender model_a(RsvdConfig{.num_factors = 4, .num_epochs = 3});
  RsvdRecommender model_b(RsvdConfig{.num_factors = 4, .num_epochs = 3});
  ASSERT_TRUE(model_a.Fit(split_a->train).ok());
  ASSERT_TRUE(model_b.Fit(split_b->train).ok());
  const auto scores_a = model_a.ScoreAll(0);
  const auto scores_b = model_b.ScoreAll(0);
  EXPECT_EQ(scores_a, scores_b);
}

TEST(DatasetCacheTest, FileRoundTrip) {
  const RatingDataset ds = MakeData();
  const std::string path = ::testing::TempDir() + "/ganc_cache_test.gdc";
  ASSERT_TRUE(ds.SaveBinaryFile(path).ok());
  auto back = RatingDataset::LoadBinaryFile(path);
  ASSERT_TRUE(back.ok());
  ExpectIdentical(ds, *back);
  std::filesystem::remove(path);
}

TEST(DatasetCacheTest, MissingFileIsIOError) {
  EXPECT_EQ(RatingDataset::LoadBinaryFile("/nonexistent/x.gdc").status().code(),
            StatusCode::kIOError);
}

TEST(DatasetCacheTest, CorruptionRejected) {
  const std::string bytes = Serialize(MakeData());
  // Flip one byte in every 7-byte stride (covers header, every section
  // payload, checksums, and the end marker without 16k subtests).
  for (size_t i = 0; i < bytes.size(); i += 7) {
    std::string corrupt = bytes;
    corrupt[i] ^= 0x5A;
    std::istringstream is(corrupt, std::ios::binary);
    EXPECT_FALSE(RatingDataset::LoadBinary(is).ok()) << "byte " << i;
  }
}

TEST(DatasetCacheTest, TruncationRejected) {
  const std::string bytes = Serialize(MakeData());
  for (const size_t keep : {size_t{0}, size_t{10}, size_t{24}, size_t{100},
                            bytes.size() / 2, bytes.size() - 1}) {
    std::istringstream is(bytes.substr(0, keep), std::ios::binary);
    EXPECT_FALSE(RatingDataset::LoadBinary(is).ok()) << "kept " << keep;
  }
}

TEST(DatasetCacheTest, ModelArtifactRejected) {
  // Kind mismatch: a model artifact is not a dataset cache.
  const RatingDataset ds = MakeData();
  std::ostringstream os(std::ios::binary);
  ArtifactWriter w(os);
  ASSERT_TRUE(w.WriteHeader(ArtifactKind::kModel, 1).ok());
  ASSERT_TRUE(w.Finish().ok());
  std::istringstream is(os.str(), std::ios::binary);
  auto back = RatingDataset::LoadBinary(is);
  ASSERT_FALSE(back.ok());
  EXPECT_NE(back.status().message().find("kind"), std::string::npos);
}

}  // namespace
}  // namespace ganc
