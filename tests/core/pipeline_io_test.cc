// GancPipeline artifact round trip: save -> load must reproduce theta,
// long-tail statistics, the embedded base model, and — end to end —
// a bit-identical RecommendAll collection, against the same train set.

#include "core/pipeline.h"

#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "recommender/pop.h"
#include "recommender/psvd.h"

namespace ganc {
namespace {

RatingDataset MakeData(int32_t num_users = 60, int32_t num_items = 100,
                       uint64_t seed = 0) {
  SyntheticSpec spec = TinySpec();
  spec.num_users = num_users;
  spec.num_items = num_items;
  spec.mean_activity = 14.0;
  if (seed != 0) spec.seed = seed;
  auto ds = GenerateSynthetic(spec);
  EXPECT_TRUE(ds.ok());
  return std::move(ds).value();
}

std::unique_ptr<GancPipeline> MakePipeline(const RatingDataset& train) {
  PipelineConfig config;
  config.theta_model = PreferenceModel::kGeneralized;
  config.coverage = CoverageKind::kDyn;
  config.top_n = 5;
  config.sample_size = 30;
  config.seed = 77;
  auto pipeline = GancPipeline::Create(
      std::make_unique<PsvdRecommender>(PsvdConfig{.num_factors = 6}), train,
      config);
  EXPECT_TRUE(pipeline.ok());
  return std::move(pipeline).value();
}

std::string Serialize(const GancPipeline& pipeline) {
  std::ostringstream os(std::ios::binary);
  EXPECT_TRUE(pipeline.Save(os).ok());
  return os.str();
}

TEST(PipelineIoTest, RoundTripReproducesRecommendAllExactly) {
  const RatingDataset train = MakeData();
  const std::unique_ptr<GancPipeline> pipeline = MakePipeline(train);
  std::istringstream is(Serialize(*pipeline), std::ios::binary);
  Result<std::unique_ptr<GancPipeline>> loaded = GancPipeline::Load(is, train);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  EXPECT_EQ((*loaded)->name(), pipeline->name());
  EXPECT_EQ((*loaded)->theta(), pipeline->theta());
  EXPECT_EQ((*loaded)->base().name(), pipeline->base().name());
  EXPECT_EQ((*loaded)->tail().tail_size, pipeline->tail().tail_size);
  EXPECT_EQ((*loaded)->tail().is_long_tail, pipeline->tail().is_long_tail);

  auto topn_a = pipeline->RecommendAll();
  auto topn_b = (*loaded)->RecommendAll();
  ASSERT_TRUE(topn_a.ok());
  ASSERT_TRUE(topn_b.ok());
  EXPECT_EQ(*topn_a, *topn_b);
  for (UserId u = 0; u < 5; ++u) {
    EXPECT_EQ(pipeline->RecommendForUser(u), (*loaded)->RecommendForUser(u));
  }
}

TEST(PipelineIoTest, IndicatorAccuracyConfigSurvives) {
  const RatingDataset train = MakeData();
  PipelineConfig config;
  config.indicator_accuracy = true;
  config.top_n = 5;
  config.sample_size = 20;
  auto pipeline = GancPipeline::Create(std::make_unique<PopRecommender>(),
                                       train, config);
  ASSERT_TRUE(pipeline.ok());
  std::istringstream is(Serialize(**pipeline), std::ios::binary);
  Result<std::unique_ptr<GancPipeline>> loaded = GancPipeline::Load(is, train);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  auto topn_a = (*pipeline)->RecommendAll();
  auto topn_b = (*loaded)->RecommendAll();
  ASSERT_TRUE(topn_a.ok());
  ASSERT_TRUE(topn_b.ok());
  EXPECT_EQ(*topn_a, *topn_b);
}

TEST(PipelineIoTest, FileRoundTrip) {
  const RatingDataset train = MakeData();
  const std::unique_ptr<GancPipeline> pipeline = MakePipeline(train);
  const std::string path = ::testing::TempDir() + "/ganc_pipeline_io.gap";
  ASSERT_TRUE(pipeline->SaveFile(path).ok());
  Result<std::unique_ptr<GancPipeline>> loaded =
      GancPipeline::LoadFile(path, train);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ((*loaded)->theta(), pipeline->theta());
}

TEST(PipelineIoTest, MismatchedTrainRejected) {
  const RatingDataset train = MakeData();
  const RatingDataset other = MakeData(25, 40);
  const std::unique_ptr<GancPipeline> pipeline = MakePipeline(train);
  std::istringstream is(Serialize(*pipeline), std::ios::binary);
  Result<std::unique_ptr<GancPipeline>> loaded = GancPipeline::Load(is, other);
  EXPECT_FALSE(loaded.ok());
}

TEST(PipelineIoTest, SameDimsDifferentSplitRejected) {
  // Theta and the embedded model are functions of the exact train
  // content; a different split with identical dimensions must be
  // refused via the train fingerprint.
  const RatingDataset train = MakeData();
  const RatingDataset same_dims = MakeData(60, 100, 999);
  ASSERT_EQ(same_dims.num_users(), train.num_users());
  ASSERT_EQ(same_dims.num_items(), train.num_items());
  const std::unique_ptr<GancPipeline> pipeline = MakePipeline(train);
  std::istringstream is(Serialize(*pipeline), std::ios::binary);
  Result<std::unique_ptr<GancPipeline>> loaded =
      GancPipeline::Load(is, same_dims);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("fingerprint"), std::string::npos);
}

TEST(PipelineIoTest, CorruptEmbeddedModelRejected) {
  const RatingDataset train = MakeData();
  const std::unique_ptr<GancPipeline> pipeline = MakePipeline(train);
  std::string bytes = Serialize(*pipeline);
  // The embedded model artifact is the last section; corrupt its tail.
  bytes[bytes.size() - 30] ^= 0x5A;
  std::istringstream is(bytes, std::ios::binary);
  EXPECT_FALSE(GancPipeline::Load(is, train).ok());
}

TEST(PipelineIoTest, TruncationRejected) {
  const RatingDataset train = MakeData();
  const std::string bytes = Serialize(*MakePipeline(train));
  for (const size_t keep : {size_t{0}, size_t{16}, size_t{64},
                            bytes.size() / 2, bytes.size() - 1}) {
    std::istringstream is(bytes.substr(0, keep), std::ios::binary);
    EXPECT_FALSE(GancPipeline::Load(is, train).ok()) << "kept " << keep;
  }
}

TEST(PipelineIoTest, ThreadedLoadIsByteIdentical) {
  const RatingDataset train = MakeData();
  const std::unique_ptr<GancPipeline> pipeline = MakePipeline(train);
  const std::string bytes = Serialize(*pipeline);
  std::istringstream is(bytes, std::ios::binary);
  Result<std::unique_ptr<GancPipeline>> loaded =
      GancPipeline::Load(is, train, /*num_threads=*/2);
  ASSERT_TRUE(loaded.ok());
  auto topn_a = pipeline->RecommendAll();
  auto topn_b = (*loaded)->RecommendAll();
  ASSERT_TRUE(topn_a.ok());
  ASSERT_TRUE(topn_b.ok());
  EXPECT_EQ(*topn_a, *topn_b);
}

}  // namespace
}  // namespace ganc
