// Multi-process router parity: a `ganc_serve --shards=3 --multiprocess`
// router (three forked --shard=k/N children driven over pipes) must be
// byte-identical to a single-process server for every user, for error
// responses, and across a live PUBLISH that swaps all three children.
// The binaries arrive via compile definitions; without them the suite
// skips itself.

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace ganc {
namespace {

#if defined(GANC_SERVE_BINARY) && defined(GANC_CLI_BINARY)

int RunToCompletion(const std::vector<std::string>& argv) {
  std::vector<char*> args;
  for (const std::string& a : argv) {
    args.push_back(const_cast<char*>(a.c_str()));
  }
  args.push_back(nullptr);
  const pid_t pid = fork();
  if (pid == 0) {
    execv(args[0], args.data());
    _exit(127);
  }
  int status = 0;
  waitpid(pid, &status, 0);
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

// A ganc_serve child wired to the test through stdin/stdout pipes.
class ServeProcess {
 public:
  explicit ServeProcess(const std::vector<std::string>& extra_flags) {
    int to_child[2], from_child[2];
    EXPECT_EQ(pipe(to_child), 0);
    EXPECT_EQ(pipe(from_child), 0);
    pid_ = fork();
    if (pid_ == 0) {
      dup2(to_child[0], STDIN_FILENO);
      dup2(from_child[1], STDOUT_FILENO);
      close(to_child[0]);
      close(to_child[1]);
      close(from_child[0]);
      close(from_child[1]);
      std::vector<std::string> argv = {GANC_SERVE_BINARY};
      argv.insert(argv.end(), extra_flags.begin(), extra_flags.end());
      std::vector<char*> args;
      for (const std::string& a : argv) {
        args.push_back(const_cast<char*>(a.c_str()));
      }
      args.push_back(nullptr);
      execv(args[0], args.data());
      _exit(127);
    }
    close(to_child[0]);
    close(from_child[1]);
    // Keep these ends out of later-forked siblings: a second
    // ServeProcess must not inherit (and hold open) this child's stdin
    // write end, or EOF-driven shutdown would deadlock.
    fcntl(to_child[1], F_SETFD, FD_CLOEXEC);
    fcntl(from_child[0], F_SETFD, FD_CLOEXEC);
    in_ = fdopen(from_child[0], "r");
    out_fd_ = to_child[1];
  }

  ~ServeProcess() {
    if (out_fd_ >= 0) close(out_fd_);
    if (in_ != nullptr) fclose(in_);
    if (pid_ > 0) waitpid(pid_, nullptr, 0);
  }

  void Send(const std::string& line) {
    const std::string with_newline = line + "\n";
    ASSERT_EQ(write(out_fd_, with_newline.data(), with_newline.size()),
              static_cast<ssize_t>(with_newline.size()));
  }

  std::string ReadLine() {
    char* line = nullptr;
    size_t cap = 0;
    const ssize_t len = getline(&line, &cap, in_);
    std::string out;
    if (len > 0) {
      out.assign(line, static_cast<size_t>(len));
      while (!out.empty() && (out.back() == '\n' || out.back() == '\r')) {
        out.pop_back();
      }
    }
    free(line);
    return out;
  }

  int CloseAndWait() {
    close(out_fd_);
    out_fd_ = -1;
    int status = 0;
    waitpid(pid_, &status, 0);
    pid_ = -1;
    return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  }

 private:
  pid_t pid_ = -1;
  FILE* in_ = nullptr;
  int out_fd_ = -1;
};

class RouterProcessParityTest : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    dir_ = new std::string(testing::TempDir() + "/router_parity_test");
    (void)RunToCompletion({"/bin/mkdir", "-p", *dir_});
    cache_ = new std::string(*dir_ + "/tiny.gdc");
    model_a_ = new std::string(*dir_ + "/psvd10.gam");
    model_b_ = new std::string(*dir_ + "/psvd100.gam");
    ASSERT_EQ(RunToCompletion({GANC_CLI_BINARY, "cache-dataset",
                               "--dataset=tiny", "--out=" + *cache_}),
              0);
    ASSERT_EQ(RunToCompletion({GANC_CLI_BINARY, "train",
                               "--dataset-cache=" + *cache_, "--arec=psvd10",
                               "--seed=7", "--save-model=" + *model_a_}),
              0);
    ASSERT_EQ(RunToCompletion({GANC_CLI_BINARY, "train",
                               "--dataset-cache=" + *cache_, "--arec=psvd100",
                               "--seed=7", "--save-model=" + *model_b_}),
              0);
  }

  static std::vector<std::string> BaseFlags(const std::string& model) {
    return {"--dataset-cache=" + *cache_, "--seed=7", "--model=" + model,
            "--default-n=5"};
  }

  static std::string* dir_;
  static std::string* cache_;
  static std::string* model_a_;
  static std::string* model_b_;
};

std::string* RouterProcessParityTest::dir_ = nullptr;
std::string* RouterProcessParityTest::cache_ = nullptr;
std::string* RouterProcessParityTest::model_a_ = nullptr;
std::string* RouterProcessParityTest::model_b_ = nullptr;

TEST_F(RouterProcessParityTest, ThreeProcessShardsMatchSingleProcess) {
  ServeProcess single(BaseFlags(*model_a_));
  std::vector<std::string> router_flags = BaseFlags(*model_a_);
  router_flags.push_back("--shards=3");
  router_flags.push_back("--multiprocess");
  ServeProcess router(router_flags);

  // Topology introspection: the router exposes the fan-out and the
  // user-space bound.
  router.Send("SHARDS");
  const std::string shards = router.ReadLine();
  ASSERT_EQ(shards.rfind("OK shards=3 mode=multiprocess users=", 0), 0u)
      << shards;
  const int num_users = std::atoi(
      shards.c_str() + std::strlen("OK shards=3 mode=multiprocess users="));
  ASSERT_GT(num_users, 0);

  router.Send("VERSION");
  const std::string versions = router.ReadLine();
  ASSERT_EQ(versions.rfind("OK versions=", 0), 0u) << versions;

  router.Send("PING");
  EXPECT_EQ(router.ReadLine(), "OK pong");

  // Byte-for-byte parity over the entire user space, including the
  // versionless and session paths.
  for (int user = 0; user < num_users; ++user) {
    const std::string req = "TOPN user=" + std::to_string(user) + " n=5";
    single.Send(req);
    router.Send(req);
    const std::string expected = single.ReadLine();
    EXPECT_EQ(router.ReadLine(), expected) << req;
  }
  single.Send("TOPN user=999999 n=5");
  router.Send("TOPN user=999999 n=5");
  EXPECT_EQ(router.ReadLine(), single.ReadLine()) << "error parity";

  // Session state lives in the router, not the children: consume then
  // re-request and diff against the single process doing the same.
  single.Send("CONSUME session=s user=1 items=0,1");
  router.Send("CONSUME session=s user=1 items=0,1");
  EXPECT_EQ(router.ReadLine(), single.ReadLine());
  single.Send("TOPN user=1 n=5 session=s");
  router.Send("TOPN user=1 n=5 session=s");
  EXPECT_EQ(router.ReadLine(), single.ReadLine());

  // STATS aggregates across children without forwarding breakage.
  router.Send("STATS");
  EXPECT_EQ(router.ReadLine().rfind("OK requests=", 0), 0u);

  EXPECT_EQ(single.CloseAndWait(), 0);
  EXPECT_EQ(router.CloseAndWait(), 0);
}

TEST_F(RouterProcessParityTest, LivePublishSwapsAllChildren) {
  std::vector<std::string> router_flags = BaseFlags(*model_a_);
  router_flags.push_back("--shards=3");
  router_flags.push_back("--multiprocess");
  ServeProcess router(router_flags);
  // Reference for the post-swap artifact: a single process that booted
  // from it.
  ServeProcess reference_b(BaseFlags(*model_b_));

  router.Send("SHARDS");
  const std::string shards = router.ReadLine();
  ASSERT_EQ(shards.rfind("OK shards=3", 0), 0u) << shards;
  const size_t users_pos = shards.find("users=");
  ASSERT_NE(users_pos, std::string::npos);
  const int num_users = std::atoi(shards.c_str() + users_pos + 6);
  ASSERT_GT(num_users, 0);

  // Rejection first: a bad path must leave every child serving A.
  router.Send("TOPN user=2 n=5");
  const std::string before = router.ReadLine();
  router.Send("PUBLISH path=" + *dir_ + "/missing.gam");
  EXPECT_EQ(router.ReadLine().rfind("ERR ", 0), 0u);
  router.Send("TOPN user=2 n=5");
  EXPECT_EQ(router.ReadLine(), before);

  // Live swap: all three children must flip to B.
  router.Send("PUBLISH path=" + *model_b_);
  const std::string pub = router.ReadLine();
  ASSERT_EQ(pub.rfind("OK version=", 0), 0u) << pub;
  EXPECT_NE(pub.find(" shards=3"), std::string::npos) << pub;
  for (int user = 0; user < num_users; ++user) {
    const std::string req = "TOPN user=" + std::to_string(user) + " n=5";
    reference_b.Send(req);
    router.Send(req);
    const std::string expected = reference_b.ReadLine();
    EXPECT_EQ(router.ReadLine(), expected) << req << " after publish";
  }

  EXPECT_EQ(reference_b.CloseAndWait(), 0);
  // Clean EOF shutdown reaps every child; a leak would hang this wait.
  EXPECT_EQ(router.CloseAndWait(), 0);
}

#else

TEST(RouterProcessParityTest, SkippedWithoutToolBinaries) {
  GTEST_SKIP() << "ganc_serve/ganc_cli binaries not built";
}

#endif  // GANC_SERVE_BINARY && GANC_CLI_BINARY

}  // namespace
}  // namespace ganc
