// Dispatch suite for the runtime-selected SIMD scoring kernels: every
// host-supported variant (scalar, SSE2, AVX2, AVX-512) must produce
// bit-identical batch scores at every factor precision — fp64/fp32
// because each SIMD lane replays the scalar per-user accumulation
// sequence with contraction disabled, int8 because the integer dot is
// exact and every variant shares the DequantDot combine.

#include "recommender/factor_kernels.h"

#include <cstdint>
#include <cstdlib>
#include <memory>
#include <span>
#include <vector>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "recommender/bpr.h"
#include "recommender/cofirank.h"
#include "recommender/factor_scoring_engine.h"
#include "recommender/factor_store.h"
#include "recommender/psvd.h"
#include "recommender/rsvd.h"
#include "recommender/scoring_context.h"
#include "util/aligned.h"

namespace ganc {
namespace {

static_assert(kScoringAlignment == 64,
              "scoring buffers are contracted to cache-line alignment");
static_assert(FactorScoringEngine::kUserBlock == kFactorKernelUserBlock,
              "engine block size must match the kernel block size");

// Restores probe/env selection after each test that pins a variant.
struct DispatchGuard {
  ~DispatchGuard() { ResetKernelDispatch(); }
};

// Deterministic mixed-sign fill (no std:: RNG so the expected values
// never depend on the library implementation).
double Fill(uint64_t* state) {
  *state = *state * 6364136223846793005ULL + 1442695040888963407ULL;
  return (static_cast<double>((*state >> 16) & 0xFFFF) / 65536.0 - 0.5) * 2.5;
}

struct SyntheticFactors {
  FactorStore store;
  std::vector<double> item_bias;
  std::vector<double> user_base;
  int32_t num_users = 0;
  int32_t num_items = 0;

  FactorView View(bool with_bias, bool with_base) const {
    FactorView v;
    store.BindView(&v);
    v.item_bias = with_bias ? item_bias.data() : nullptr;
    v.user_base = with_base ? user_base.data() : nullptr;
    v.num_items = num_items;
    return v;
  }
};

SyntheticFactors MakeFactors(int32_t nu, int32_t ni, size_t g,
                             FactorPrecision precision) {
  SyntheticFactors f;
  f.num_users = nu;
  f.num_items = ni;
  uint64_t state = 0x9e3779b97f4a7c15ULL + g;
  std::vector<double> p(static_cast<size_t>(nu) * g);
  std::vector<double> q(static_cast<size_t>(ni) * g);
  for (double& v : p) v = Fill(&state);
  for (double& v : q) v = Fill(&state);
  f.store.AdoptFp64(std::move(p), std::move(q), static_cast<size_t>(nu),
                    static_cast<size_t>(ni), g);
  EXPECT_TRUE(f.store.SetPrecision(precision).ok());
  f.item_bias.resize(static_cast<size_t>(ni));
  f.user_base.resize(static_cast<size_t>(nu));
  for (double& v : f.item_bias) v = Fill(&state);
  for (double& v : f.user_base) v = Fill(&state);
  return f;
}

std::vector<UserId> RaggedBatch(int32_t nu, size_t batch_size) {
  std::vector<UserId> users;
  for (size_t b = 0; b < batch_size; ++b) {
    // Start near the end so large batches wrap into ragged blocks.
    users.push_back(static_cast<UserId>((static_cast<size_t>(nu) - 3 + b) %
                                        static_cast<size_t>(nu)));
  }
  return users;
}

std::vector<double> ScoreWith(KernelVariant v, const FactorView& view,
                              std::span<const UserId> users) {
  EXPECT_TRUE(ForceKernelVariant(v).ok()) << KernelVariantName(v);
  std::vector<double> out(users.size() *
                          static_cast<size_t>(view.num_items));
  FactorScoringEngine(view).ScoreBatchInto(users, out);
  return out;
}

TEST(FactorKernelsTest, NamesRoundTripAndParseRejectsUnknown) {
  for (size_t i = 0; i < kNumKernelVariants; ++i) {
    const KernelVariant v = static_cast<KernelVariant>(i);
    const Result<KernelVariant> parsed = ParseKernelVariant(
        KernelVariantName(v));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, v);
  }
  EXPECT_FALSE(ParseKernelVariant("avx1024").ok());
  EXPECT_FALSE(ParseKernelVariant("").ok());
}

TEST(FactorKernelsTest, ScalarIsAlwaysSupportedAndListedFirst) {
  EXPECT_TRUE(KernelVariantSupported(KernelVariant::kScalar));
  const std::vector<KernelVariant> supported = SupportedKernelVariants();
  ASSERT_FALSE(supported.empty());
  EXPECT_EQ(supported.front(), KernelVariant::kScalar);
}

TEST(FactorKernelsTest, ForceRejectsUnsupportedVariantsAndKeepsActive) {
  DispatchGuard guard;
  ASSERT_TRUE(ForceKernelVariant(KernelVariant::kScalar).ok());
  for (size_t i = 0; i < kNumKernelVariants; ++i) {
    const KernelVariant v = static_cast<KernelVariant>(i);
    if (KernelVariantSupported(v)) continue;
    EXPECT_FALSE(ForceKernelVariant(v).ok()) << KernelVariantName(v);
    EXPECT_EQ(ActiveKernelVariant(), KernelVariant::kScalar);
  }
  EXPECT_STREQ(ActiveKernelSelection(), "forced");
}

TEST(FactorKernelsTest, EnvOverridePinsVariantWithoutProbe) {
  if (!KernelVariantSupported(KernelVariant::kSse2)) {
    GTEST_SKIP() << "host cannot run sse2";
  }
  DispatchGuard guard;
  ASSERT_EQ(setenv("GANC_KERNEL", "sse2", /*overwrite=*/1), 0);
  ResetKernelDispatch();
  EXPECT_EQ(ActiveKernelVariant(), KernelVariant::kSse2);
  EXPECT_STREQ(ActiveKernelSelection(), "env");
  ASSERT_EQ(unsetenv("GANC_KERNEL"), 0);
}

TEST(FactorKernelsTest, ProbeSelectionTimesEverySupportedVariant) {
  DispatchGuard guard;
  ASSERT_EQ(unsetenv("GANC_KERNEL"), 0);  // CI exports it for parity runs
  ResetKernelDispatch();
  const KernelVariant active = ActiveKernelVariant();
  EXPECT_TRUE(KernelVariantSupported(active));
  EXPECT_STREQ(ActiveKernelSelection(), "probe");
  const std::vector<double> probe = KernelProbeNsPerUser();
  ASSERT_EQ(probe.size(), kNumKernelVariants);
  for (size_t i = 0; i < kNumKernelVariants; ++i) {
    const KernelVariant v = static_cast<KernelVariant>(i);
    if (KernelVariantSupported(v)) {
      EXPECT_GT(probe[i], 0.0) << KernelVariantName(v);
    } else {
      EXPECT_EQ(probe[i], 0.0) << KernelVariantName(v);
    }
  }
}

// The tentpole contract on synthetic tables: every supported variant,
// every precision, every bias combination, factor counts that exercise
// full registers and remainders, batch sizes that exercise full and
// ragged user blocks — all bit-identical to the scalar reference.
TEST(FactorKernelsTest, AllVariantsBitIdenticalToScalarOnSyntheticViews) {
  DispatchGuard guard;
  const std::vector<KernelVariant> variants = SupportedKernelVariants();
  const int32_t nu = 21;
  const int32_t ni = 57;
  for (const FactorPrecision precision :
       {FactorPrecision::kFp64, FactorPrecision::kFp32,
        FactorPrecision::kInt8}) {
    for (const size_t g : {1u, 7u, 8u, 48u}) {
      const SyntheticFactors f = MakeFactors(nu, ni, g, precision);
      for (const bool with_bias : {false, true}) {
        for (const bool with_base : {false, true}) {
          const FactorView view = f.View(with_bias, with_base);
          for (const size_t batch : {1u, 8u, 13u}) {
            const std::vector<UserId> users = RaggedBatch(nu, batch);
            const std::vector<double> reference =
                ScoreWith(KernelVariant::kScalar, view, users);
            for (const KernelVariant v : variants) {
              if (v == KernelVariant::kScalar) continue;
              const std::vector<double> scores = ScoreWith(v, view, users);
              ASSERT_EQ(reference.size(), scores.size());
              for (size_t i = 0; i < reference.size(); ++i) {
                ASSERT_EQ(reference[i], scores[i])
                    << KernelVariantName(v) << " precision "
                    << FactorPrecisionName(precision) << " g=" << g
                    << " bias=" << with_bias << " base=" << with_base
                    << " batch=" << batch << " index " << i;
              }
            }
          }
        }
      }
    }
  }
}

// Same contract on real fitted models (PSVD/RSVD/BPR/CofiR), which also
// pins the single-user ScoreInto path against the dispatched batch path.
TEST(FactorKernelsTest, FittedModelsBitIdenticalAcrossVariants) {
  DispatchGuard guard;
  SyntheticSpec spec = TinySpec();
  spec.num_users = 60;
  spec.num_items = 110;
  auto data = GenerateSynthetic(spec);
  ASSERT_TRUE(data.ok());
  const RatingDataset& train = *data;
  const size_t ni = static_cast<size_t>(train.num_items());
  const std::vector<KernelVariant> variants = SupportedKernelVariants();

  for (const FactorPrecision precision :
       {FactorPrecision::kFp64, FactorPrecision::kFp32,
        FactorPrecision::kInt8}) {
    std::vector<std::unique_ptr<Recommender>> models;
    models.push_back(
        std::make_unique<PsvdRecommender>(PsvdConfig{.num_factors = 13}));
    models.push_back(std::make_unique<RsvdRecommender>(RsvdConfig{
        .num_factors = 8, .num_epochs = 3, .use_biases = true}));
    models.push_back(std::make_unique<BprRecommender>(
        BprConfig{.num_factors = 8, .num_epochs = 3}));
    models.push_back(std::make_unique<CofiRecommender>(
        CofiConfig{.num_factors = 8, .num_epochs = 3}));
    for (auto& model : models) {
      ASSERT_TRUE(model->Fit(train).ok()) << model->name();
      ASSERT_TRUE(model->SetFactorPrecision(precision).ok()) << model->name();
      const std::vector<UserId> users = RaggedBatch(train.num_users(), 13);
      std::vector<double> reference;
      for (const KernelVariant v : variants) {
        ASSERT_TRUE(ForceKernelVariant(v).ok());
        std::vector<double> batch(users.size() * ni);
        model->ScoreBatchInto(users, batch);
        if (v == KernelVariant::kScalar) {
          reference = batch;
          // The dispatched batch rows must equal the (non-dispatched)
          // single-user path bit-for-bit at every precision.
          std::vector<double> single(ni);
          for (size_t b = 0; b < users.size(); ++b) {
            model->ScoreInto(users[b], single);
            for (size_t i = 0; i < ni; ++i) {
              ASSERT_EQ(single[i], batch[b * ni + i])
                  << model->name() << " precision "
                  << FactorPrecisionName(precision) << " user " << users[b]
                  << " item " << i;
            }
          }
          continue;
        }
        ASSERT_EQ(reference.size(), batch.size());
        for (size_t i = 0; i < reference.size(); ++i) {
          ASSERT_EQ(reference[i], batch[i])
              << model->name() << " precision "
              << FactorPrecisionName(precision) << " variant "
              << KernelVariantName(v) << " index " << i;
        }
      }
    }
  }
}

// Satellite: the kernels may assume ScoringContext hands out 64-byte
// aligned score rows.
TEST(FactorKernelsTest, ScoringContextBuffersAreCacheLineAligned) {
  ScoringContext ctx;
  for (const size_t n : {1u, 8u, 63u, 1024u}) {
    EXPECT_EQ(reinterpret_cast<uintptr_t>(ctx.Scores(n).data()) %
                  kScoringAlignment,
              0u);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(ctx.Buffer(1, n).data()) %
                  kScoringAlignment,
              0u);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(ctx.BatchScores(n * 8).data()) %
                  kScoringAlignment,
              0u);
  }
  AlignedVector<double> v(3);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(v.data()) % kScoringAlignment, 0u);
}

}  // namespace
}  // namespace ganc
