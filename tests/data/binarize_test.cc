#include "data/binarize.h"

#include <gtest/gtest.h>

#include "data/synthetic.h"

namespace ganc {
namespace {

TEST(BinarizeTest, KeepsEverythingAtZeroThreshold) {
  auto ds = GenerateSynthetic(TinySpec());
  ASSERT_TRUE(ds.ok());
  auto bin = Binarize(*ds);
  ASSERT_TRUE(bin.ok());
  EXPECT_EQ(bin->num_ratings(), ds->num_ratings());
  for (const Rating& r : bin->ratings()) EXPECT_FLOAT_EQ(r.value, 1.0f);
}

TEST(BinarizeTest, ThresholdDropsWeakInteractions) {
  RatingDatasetBuilder b(2, 3);
  ASSERT_TRUE(b.Add(0, 0, 5.0f).ok());
  ASSERT_TRUE(b.Add(0, 1, 2.0f).ok());
  ASSERT_TRUE(b.Add(1, 2, 4.0f).ok());
  auto ds = std::move(b).Build();
  ASSERT_TRUE(ds.ok());
  auto bin = Binarize(*ds, {.min_rating = 4.0});
  ASSERT_TRUE(bin.ok());
  EXPECT_EQ(bin->num_ratings(), 2);
  EXPECT_TRUE(bin->HasRating(0, 0));
  EXPECT_FALSE(bin->HasRating(0, 1));
  EXPECT_TRUE(bin->HasRating(1, 2));
}

TEST(BinarizeTest, PreservesUniverseSizes) {
  RatingDatasetBuilder b(5, 7);
  ASSERT_TRUE(b.Add(0, 0, 1.0f).ok());
  auto ds = std::move(b).Build();
  ASSERT_TRUE(ds.ok());
  auto bin = Binarize(*ds, {.min_rating = 3.0});
  ASSERT_TRUE(bin.ok());
  EXPECT_EQ(bin->num_users(), 5);
  EXPECT_EQ(bin->num_items(), 7);
  EXPECT_EQ(bin->num_ratings(), 0);  // the only rating was below threshold
}

TEST(BinarizeTest, CustomPositiveValue) {
  RatingDatasetBuilder b(1, 1);
  ASSERT_TRUE(b.Add(0, 0, 5.0f).ok());
  auto ds = std::move(b).Build();
  ASSERT_TRUE(ds.ok());
  auto bin = Binarize(*ds, {.min_rating = 0.0, .positive_value = 2.5f});
  ASSERT_TRUE(bin.ok());
  EXPECT_FLOAT_EQ(bin->GetRating(0, 0).value(), 2.5f);
}

}  // namespace
}  // namespace ganc
