// GANC: the generic re-ranking framework (Section III) and its OSLG
// optimizer (Section III-C, Algorithm 1).
//
// A GANC variant is the template GANC(ARec, theta, CRec):
//   * ARec  — an AccuracyScorer giving a(i) in [0, 1] per user,
//   * theta — a per-user long-tail preference vector in [0, 1],
//   * CRec  — a CoverageKind (Rand / Stat / Dyn).
// Each user's value function is
//   v_u(P_u) = (1 - theta_u) * a(P_u) + theta_u * c(P_u),
// and the framework maximizes sum_u v_u(P_u) subject to |P_u| = N.
//
// With Rand/Stat the objective is modular across users, so the optimum is
// an independent per-user top-N by mixed score. With Dyn the coverage gain
// of an item diminishes as it is recommended, making the objective
// submodular monotone under a partition matroid; OSLG approximates the
// locally greedy 1/2-approximation scalably by
//   (1) running the sequential greedy on a KDE-proportional sample of S
//       users, visited in increasing theta order, and
//   (2) assigning every remaining user in parallel using the coverage
//       state snapshot of their nearest-theta sampled user.

#ifndef GANC_CORE_GANC_H_
#define GANC_CORE_GANC_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/accuracy_scorer.h"
#include "core/coverage.h"
#include "data/dataset.h"
#include "recommender/scoring_context.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace ganc {

/// One top-N set per user.
using TopNCollection = std::vector<std::vector<ItemId>>;

/// Knobs for Ganc::RecommendAll.
struct GancConfig {
  int top_n = 5;
  /// Sequential-phase sample size S for OSLG with Dyn coverage.
  /// sample_size <= 0 or >= |U| runs the full (unsampled) locally greedy.
  int sample_size = 500;
  uint64_t seed = 5;
  /// Ablation switches for OSLG's two modifications (DESIGN.md A1):
  /// draw the sample proportionally to KDE(theta) instead of uniformly...
  bool kde_sampling = true;
  /// ...and visit sampled users in increasing theta instead of arbitrary
  /// (shuffled) order.
  bool order_by_theta = true;
  /// Optional pool for the parallel phase (and Rand/Stat per-user loop).
  ThreadPool* pool = nullptr;
};

/// The assembled framework. Borrows the scorer; copy of theta is taken.
class Ganc {
 public:
  /// `accuracy` must outlive this object. theta must have one entry in
  /// [0, 1] per user of the train set passed to RecommendAll.
  Ganc(const AccuracyScorer* accuracy, std::vector<double> theta,
       CoverageKind coverage);

  /// Builds the full top-N collection over each user's unrated train items.
  Result<TopNCollection> RecommendAll(const RatingDataset& train,
                                      const GancConfig& config) const;

  /// "GANC(ARec, theta, CRec)" template string for reports.
  std::string Name(const std::string& theta_name) const;

  CoverageKind coverage() const { return coverage_; }
  const std::vector<double>& theta() const { return theta_; }

 private:
  TopNCollection RunModular(const RatingDataset& train,
                            const GancConfig& config) const;
  Result<TopNCollection> RunOslg(const RatingDataset& train,
                                 const GancConfig& config) const;

  const AccuracyScorer* accuracy_;
  std::vector<double> theta_;
  CoverageKind coverage_;
};

/// Greedy top-N for one user under mixed score
/// (1-theta_u) * a(i) + theta_u * c(u, i). Exposed for tests and for the
/// sequential phase of custom optimizers.
std::vector<ItemId> GreedyTopNForUser(const std::vector<double>& accuracy,
                                      double theta_u,
                                      const CoverageModel& coverage, UserId u,
                                      const std::vector<ItemId>& candidates,
                                      int top_n);

/// Allocation-free variant: selects through ctx's top-k heap and
/// overwrites `out` (capacity reused). Identical output. Uses ctx.TopK
/// only, so `accuracy` may live in ctx.Scores and `candidates` in
/// ctx.Candidates.
void GreedyTopNForUserInto(std::span<const double> accuracy, double theta_u,
                           const CoverageModel& coverage, UserId u,
                           std::span<const ItemId> candidates, int top_n,
                           ScoringContext& ctx, std::vector<ItemId>& out);

/// Aggregate objective value of a collection (Appendix B definition):
/// sum_u (1-theta_u) a(P_u) + theta_u sum_{i in P_u} 1/sqrt(1 + f_i^P)
/// for Dyn, with f_i^P the total recommendation count of i in P. For
/// Rand/Stat the coverage term uses the respective static score.
double CollectionValue(const AccuracyScorer& accuracy,
                       const std::vector<double>& theta, CoverageKind kind,
                       const RatingDataset& train, const TopNCollection& topn,
                       uint64_t seed = 5);

}  // namespace ganc

#endif  // GANC_CORE_GANC_H_
