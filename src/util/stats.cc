#include "util/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <numeric>
#include <string>

namespace ganc {

double Mean(const std::vector<double>& x) {
  if (x.empty()) return 0.0;
  return std::accumulate(x.begin(), x.end(), 0.0) /
         static_cast<double>(x.size());
}

double Variance(const std::vector<double>& x) {
  if (x.size() < 2) return 0.0;
  const double m = Mean(x);
  double acc = 0.0;
  for (double v : x) acc += (v - m) * (v - m);
  return acc / static_cast<double>(x.size() - 1);
}

double Stddev(const std::vector<double>& x) { return std::sqrt(Variance(x)); }

double Min(const std::vector<double>& x) {
  assert(!x.empty());
  return *std::min_element(x.begin(), x.end());
}

double Max(const std::vector<double>& x) {
  assert(!x.empty());
  return *std::max_element(x.begin(), x.end());
}

double Quantile(std::vector<double> x, double q) {
  assert(!x.empty());
  assert(q >= 0.0 && q <= 1.0);
  std::sort(x.begin(), x.end());
  if (x.size() == 1) return x[0];
  const double pos = q * static_cast<double>(x.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, x.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return x[lo] * (1.0 - frac) + x[hi] * frac;
}

void MinMaxNormalize(std::vector<double>* x) {
  MinMaxNormalize(std::span<double>(*x));
}

void MinMaxNormalize(std::span<double> x) {
  if (x.empty()) return;
  const auto [lo_it, hi_it] = std::minmax_element(x.begin(), x.end());
  const double lo = *lo_it;
  const double range = *hi_it - lo;
  if (range <= 0.0) {
    std::fill(x.begin(), x.end(), 0.0);
    return;
  }
  for (double& v : x) v = (v - lo) / range;
}

void ClampAll(std::vector<double>* x, double lo, double hi) {
  for (double& v : *x) v = std::clamp(v, lo, hi);
}

double Histogram::BinCenter(size_t b) const {
  const double width = (hi - lo) / static_cast<double>(counts.size());
  return lo + (static_cast<double>(b) + 0.5) * width;
}

Histogram MakeHistogram(const std::vector<double>& x, double lo, double hi,
                        size_t bins) {
  assert(bins > 0);
  assert(hi > lo);
  Histogram h;
  h.lo = lo;
  h.hi = hi;
  h.counts.assign(bins, 0);
  const double width = (hi - lo) / static_cast<double>(bins);
  for (double v : x) {
    long b = static_cast<long>((v - lo) / width);
    b = std::clamp<long>(b, 0, static_cast<long>(bins) - 1);
    ++h.counts[static_cast<size_t>(b)];
  }
  return h;
}

double GiniCoefficient(std::vector<double> f) {
  if (f.empty()) return 0.0;
  std::sort(f.begin(), f.end());  // non-decreasing, as Table III requires
  const double n = static_cast<double>(f.size());
  double total = 0.0;
  double weighted = 0.0;
  for (size_t j = 0; j < f.size(); ++j) {
    assert(f[j] >= 0.0);
    total += f[j];
    // Table III: sum over (|I| + 1 - j) * f[j] with 1-based j.
    weighted += (n + 1.0 - static_cast<double>(j + 1)) * f[j];
  }
  if (total <= 0.0) return 0.0;
  return (n + 1.0 - 2.0 * weighted / total) / n;
}

double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y) {
  assert(x.size() == y.size());
  const size_t n = x.size();
  if (n < 2) return 0.0;
  const double mx = Mean(x);
  const double my = Mean(y);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

namespace {
// Average ranks with ties (1-based), for Spearman.
std::vector<double> AverageRanks(const std::vector<double>& x) {
  const size_t n = x.size();
  std::vector<size_t> idx(n);
  std::iota(idx.begin(), idx.end(), 0);
  std::sort(idx.begin(), idx.end(),
            [&](size_t a, size_t b) { return x[a] < x[b]; });
  std::vector<double> ranks(n, 0.0);
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && x[idx[j + 1]] == x[idx[i]]) ++j;
    const double avg_rank = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (size_t k = i; k <= j; ++k) ranks[idx[k]] = avg_rank;
    i = j + 1;
  }
  return ranks;
}
}  // namespace

double SpearmanCorrelation(const std::vector<double>& x,
                           const std::vector<double>& y) {
  assert(x.size() == y.size());
  if (x.size() < 2) return 0.0;
  return PearsonCorrelation(AverageRanks(x), AverageRanks(y));
}

std::vector<BinnedMeansRow> BinnedMeans(const std::vector<double>& x,
                                        const std::vector<double>& y,
                                        size_t bins) {
  assert(x.size() == y.size());
  assert(bins > 0);
  std::vector<BinnedMeansRow> out;
  if (x.empty()) return out;
  const double lo = Min(x);
  const double hi = Max(x);
  const double range = hi - lo;
  std::vector<double> sums(bins, 0.0);
  std::vector<size_t> counts(bins, 0);
  for (size_t i = 0; i < x.size(); ++i) {
    size_t b = 0;
    if (range > 0.0) {
      b = static_cast<size_t>(std::clamp(
          (x[i] - lo) / range * static_cast<double>(bins), 0.0,
          static_cast<double>(bins) - 1.0));
    }
    sums[b] += y[i];
    ++counts[b];
  }
  const double width = range > 0.0 ? range / static_cast<double>(bins) : 1.0;
  for (size_t b = 0; b < bins; ++b) {
    if (counts[b] == 0) continue;
    out.push_back({lo + (static_cast<double>(b) + 0.5) * width,
                   sums[b] / static_cast<double>(counts[b]), counts[b]});
  }
  return out;
}

double PeakRssMb() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    long kb = 0;
    if (std::sscanf(line.c_str(), "VmHWM: %ld kB", &kb) == 1) {
      return static_cast<double>(kb) / 1024.0;
    }
  }
  return 0.0;
}

}  // namespace ganc
