// AVX2 kernel variant: 8 user lanes as 2 x __m256d (fp64), 1 x __m256
// (fp32), 1 x __m256i madd accumulator (int8). Compiled with -mavx2
// -ffp-contract=off and deliberately WITHOUT -mfma (CMakeLists.txt):
// a fused multiply-add rounds once where the scalar reference rounds
// twice, which would break fp64 bit-identity.

#include "recommender/factor_kernels_impl.h"

#if defined(__AVX2__)

#include <immintrin.h>

namespace ganc {
namespace internal {
namespace {

struct Avx2Traits {
  using F64 = __m256d;
  static constexpr size_t kRegsF64 = 2;
  static constexpr size_t kLanesF64 = 4;
  static F64 LoadF64(const double* p) { return _mm256_load_pd(p); }
  static void StoreF64(double* p, F64 v) { _mm256_store_pd(p, v); }
  static F64 BroadcastF64(double x) { return _mm256_set1_pd(x); }
  static F64 AddF64(F64 a, F64 b) { return _mm256_add_pd(a, b); }
  static F64 MulAddF64(F64 acc, F64 a, F64 b) {
    return _mm256_add_pd(acc, _mm256_mul_pd(a, b));
  }
  static F64 ZeroF64() { return _mm256_setzero_pd(); }

  using F32 = __m256;
  static constexpr size_t kRegsF32 = 1;
  static constexpr size_t kLanesF32 = 8;
  static F32 LoadF32(const float* p) { return _mm256_load_ps(p); }
  static void StoreF32(float* p, F32 v) { _mm256_store_ps(p, v); }
  static F32 BroadcastF32(float x) { return _mm256_set1_ps(x); }
  static F32 AddF32(F32 a, F32 b) { return _mm256_add_ps(a, b); }
  static F32 MulAddF32(F32 acc, F32 a, F32 b) {
    return _mm256_add_ps(acc, _mm256_mul_ps(a, b));
  }
  static F32 ZeroF32() { return _mm256_setzero_ps(); }

  using I32 = __m256i;
  static constexpr size_t kRegsI32 = 1;
  static constexpr size_t kI16PerReg = 16;  // 8 lanes x (pair of int16)
  static I32 ZeroI32() { return _mm256_setzero_si256(); }
  static I32 BroadcastPair(int32_t pair) { return _mm256_set1_epi32(pair); }
  static I32 MaddAcc(I32 acc, const int16_t* pack, I32 pair) {
    return _mm256_add_epi32(
        acc,
        _mm256_madd_epi16(
            _mm256_load_si256(reinterpret_cast<const __m256i*>(pack)), pair));
  }
  static void StoreI32(int32_t* p, I32 v) {
    _mm256_store_si256(reinterpret_cast<__m256i*>(p), v);
  }
};

}  // namespace

const KernelOps& Avx2KernelOps() {
  static const KernelOps ops{&DispatchF64<Avx2Traits>, &DispatchF32<Avx2Traits>,
                             &DispatchI8<Avx2Traits>};
  return ops;
}

bool Avx2KernelCompiled() { return true; }

}  // namespace internal
}  // namespace ganc

#else  // !defined(__AVX2__)

namespace ganc {
namespace internal {

const KernelOps& Avx2KernelOps() { return ScalarKernelOps(); }
bool Avx2KernelCompiled() { return false; }

}  // namespace internal
}  // namespace ganc

#endif
