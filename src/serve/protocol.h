// Newline-delimited request protocol spoken by `ganc_serve` over
// stdin/stdout and TCP. One request per line, one response line per
// request; the normative grammar lives in docs/SERVING.md:
//
//   TOPN user=<id> [n=<len>] [session=<token>] [exclude=<id>,<id>,...]
//   CONSUME session=<token> user=<id> items=<id>,<id>,...
//   STATS
//   PING
//   QUIT
//
// Responses are "OK ..." or "ERR <message>". A served list is
//
//   OK user=<id> n=<len> items=<id>,<id>,...
//
// which is also exactly what `ganc_cli topn` emits offline, so a serve
// transcript can be diffed against offline top-N with no parsing (CI
// does).
//
// This module is pure string <-> struct translation — no sockets, no
// service calls — so the frontend and the protocol tests share one
// implementation.

#ifndef GANC_SERVE_PROTOCOL_H_
#define GANC_SERVE_PROTOCOL_H_

#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "data/dataset.h"
#include "util/status.h"

namespace ganc {

/// Request verbs.
enum class ServeCommand { kTopN, kConsume, kStats, kPing, kQuit };

/// One parsed request line.
struct ServeRequest {
  ServeCommand command = ServeCommand::kPing;
  UserId user = -1;            ///< TOPN / CONSUME
  int n = 0;                   ///< TOPN; 0 = server default
  std::string session;         ///< optional TOPN session / CONSUME target
  std::vector<ItemId> items;   ///< TOPN exclude= / CONSUME items=
};

/// Parses one request line (without the trailing newline). Unknown
/// verbs, unknown keys, malformed numbers, and missing required keys are
/// InvalidArgument errors.
Result<ServeRequest> ParseServeRequest(std::string_view line);

/// "OK user=<u> n=<n> items=<comma list>" (items= present even when
/// empty).
std::string FormatTopNResponse(UserId user, int n,
                               std::span<const ItemId> items);

/// "OK <body>".
std::string FormatOk(std::string_view body);

/// "ERR <message>" (newlines in the message are replaced so the
/// response stays one line).
std::string FormatError(std::string_view message);

}  // namespace ganc

#endif  // GANC_SERVE_PROTOCOL_H_
