#include "core/pipeline.h"

namespace ganc {

Result<std::unique_ptr<GancPipeline>> GancPipeline::Create(
    std::unique_ptr<Recommender> base, const RatingDataset& train,
    PipelineConfig config) {
  if (base == nullptr) {
    return Status::InvalidArgument("pipeline needs a base recommender");
  }
  if (config.top_n <= 0) {
    return Status::InvalidArgument("top_n must be positive");
  }
  if (config.num_threads < 0) {
    return Status::InvalidArgument(
        "num_threads must be >= 0 (1 = serial, 0 = hardware concurrency)");
  }
  if (config.fit_base) {
    GANC_RETURN_NOT_OK(base->Fit(train));
  }
  Result<std::vector<double>> theta = ComputePreference(
      config.theta_model, train, config.seed, config.constant_theta);
  if (!theta.ok()) return theta.status();
  return std::unique_ptr<GancPipeline>(new GancPipeline(
      std::move(base), &train, config, std::move(theta).value()));
}

GancPipeline::GancPipeline(std::unique_ptr<Recommender> base,
                           const RatingDataset* train, PipelineConfig config,
                           std::vector<double> theta)
    : base_(std::move(base)),
      train_(train),
      config_(config),
      theta_(std::move(theta)) {
  if (config_.indicator_accuracy) {
    scorer_ = std::make_unique<TopNIndicatorScorer>(base_.get(), train_,
                                                    config_.top_n);
  } else {
    scorer_ = std::make_unique<NormalizedAccuracyScorer>(base_.get());
  }
  ganc_ = std::make_unique<Ganc>(scorer_.get(), theta_, config_.coverage);
  if (config_.pool == nullptr && config_.num_threads != 1) {
    owned_pool_ = std::make_unique<ThreadPool>(
        config_.num_threads > 1 ? static_cast<size_t>(config_.num_threads)
                                : 0);
  }
}

Result<TopNCollection> GancPipeline::RecommendAll() const {
  GancConfig cfg;
  cfg.top_n = config_.top_n;
  cfg.sample_size = config_.sample_size;
  cfg.seed = config_.seed;
  cfg.pool = config_.pool != nullptr ? config_.pool : owned_pool_.get();
  return ganc_->RecommendAll(*train_, cfg);
}

std::vector<ItemId> GancPipeline::RecommendForUser(UserId u) const {
  const std::unique_ptr<CoverageModel> coverage =
      MakeCoverage(config_.coverage, *train_, config_.seed);
  ScoringContext ctx;
  const std::span<double> acc =
      ctx.Scores(static_cast<size_t>(train_->num_items()));
  scorer_->ScoreInto(u, acc);
  train_->UnratedItemsInto(u, &ctx.Candidates());
  std::vector<ItemId> out;
  GreedyTopNForUserInto(acc, theta_[static_cast<size_t>(u)], *coverage, u,
                        ctx.Candidates(), config_.top_n, ctx, out);
  return out;
}

std::string GancPipeline::name() const {
  return ganc_->Name(PreferenceModelName(config_.theta_model));
}

}  // namespace ganc
