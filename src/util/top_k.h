// Top-k selection over scored items.
//
// Every recommender in this library ultimately reduces to "return the k
// highest-scored candidate items"; this header centralizes that kernel so
// tie-breaking is consistent everywhere (higher score first, then lower
// item id for determinism).

#ifndef GANC_UTIL_TOP_K_H_
#define GANC_UTIL_TOP_K_H_

#include <algorithm>
#include <cstdint>
#include <queue>
#include <vector>

namespace ganc {

/// A scored candidate.
struct ScoredItem {
  int32_t item = 0;
  double score = 0.0;
};

/// Ordering: higher score first; ties broken by smaller item id.
inline bool ScoredBetter(const ScoredItem& a, const ScoredItem& b) {
  if (a.score != b.score) return a.score > b.score;
  return a.item < b.item;
}

/// Returns the k best entries of `candidates` in best-first order.
/// O(n log k) heap selection; stable deterministic tie-breaking.
inline std::vector<ScoredItem> SelectTopK(
    const std::vector<ScoredItem>& candidates, size_t k) {
  if (k == 0) return {};
  auto worse = [](const ScoredItem& a, const ScoredItem& b) {
    return ScoredBetter(a, b);  // min-heap on "better": top() is worst kept
  };
  std::priority_queue<ScoredItem, std::vector<ScoredItem>, decltype(worse)>
      heap(worse);
  for (const ScoredItem& c : candidates) {
    if (heap.size() < k) {
      heap.push(c);
    } else if (ScoredBetter(c, heap.top())) {
      heap.pop();
      heap.push(c);
    }
  }
  std::vector<ScoredItem> out(heap.size());
  for (size_t i = heap.size(); i-- > 0;) {
    out[i] = heap.top();
    heap.pop();
  }
  return out;
}

/// Top-k over a dense score vector restricted to `candidates` item ids.
inline std::vector<ScoredItem> SelectTopKFromScores(
    const std::vector<double>& scores, const std::vector<int32_t>& candidates,
    size_t k) {
  std::vector<ScoredItem> scored;
  scored.reserve(candidates.size());
  for (int32_t item : candidates) {
    scored.push_back({item, scores[static_cast<size_t>(item)]});
  }
  return SelectTopK(scored, k);
}

}  // namespace ganc

#endif  // GANC_UTIL_TOP_K_H_
