// Shared inverted-index training kernel for the sparse neighborhood
// models (ItemKNN's item-item index and UserKNN's user-user lists).
//
// Both models reduce to the same computation: truncated cosine top-k
// over the rows of a sparse entity x feature matrix (items x users for
// ItemKNN, users x items for UserKNN). The legacy builders accumulated
// co-rating dot products into one hash map per row — O(sum |row|^2)
// node allocations and rehashes. This kernel sweeps the matrix in CSR
// form with a dense per-row accumulator and a touched-list reset (the
// same trick as RP3b's WalkScratch), so the hot loop is two array
// indexations and one fused multiply-add, and resetting costs
// O(touched) instead of O(entities).
//
// Bit-compatibility contract: for every entity pair the dot-product
// contributions are added in ascending feature-id order — exactly the
// order the legacy builders used (users 0..U-1 for ItemKNN, items
// 0..I-1 for UserKNN) — and the final selection uses the shared
// tie-aware top-k kernel (higher sim first, then lower id), whose total
// order makes the result independent of accumulation-list order. The
// produced neighbour lists are therefore bit-identical to the hash-map
// builders', including the `max_profile` / `max_audience` RNG
// subsampling, which is hoisted into a pre-sampled CSR view built with
// the same seed and draw sequence (see SampleUserProfiles /
// SampleItemAudiences). Rows are independent, so the sweep parallelizes
// over a ThreadPool with a deterministic per-row merge: threaded and
// serial fits produce identical artifacts.

#ifndef GANC_RECOMMENDER_SPARSE_SIMILARITY_H_
#define GANC_RECOMMENDER_SPARSE_SIMILARITY_H_

#include <algorithm>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "util/serialize.h"
#include "util/status.h"
#include "util/thread_pool.h"
#include "util/top_k.h"

namespace ganc {

/// Minimal CSR matrix: per-row (id, value) entry lists over a dense
/// 0-based id universe. Values are double so accumulation matches the
/// legacy builders' double arithmetic exactly.
struct SparseMatrix {
  std::vector<size_t> offsets;  ///< rows + 1 (offsets[0] == 0)
  std::vector<int32_t> ids;     ///< column id per entry
  std::vector<double> values;   ///< value per entry

  size_t rows() const { return offsets.empty() ? 0 : offsets.size() - 1; }
  std::span<const int32_t> IdsOf(size_t r) const {
    return {ids.data() + offsets[r], offsets[r + 1] - offsets[r]};
  }
  std::span<const double> ValuesOf(size_t r) const {
    return {values.data() + offsets[r], offsets[r + 1] - offsets[r]};
  }
};

/// The pre-sampled user -> (item, value) view ItemKNN trains on:
/// profiles longer than `max_profile` are Fisher-Yates subsampled with
/// an Rng seeded `seed`, consuming draws in exactly the sequence the
/// legacy in-loop sampling used (users ascending, draws only for
/// oversized rows).
SparseMatrix SampleUserProfiles(const RatingDataset& train,
                                int32_t max_profile, uint64_t seed);

/// The pre-sampled item -> (user, value - user_mean) view UserKNN
/// trains on: audiences longer than `max_audience` are subsampled
/// (items ascending, same draw sequence as the legacy builder), and
/// values are mean-centered per user. Audiences are assembled by a
/// budgeted counting-sort transpose of the CSR rows, so a mapped
/// dataset needs neither its CSC index nor full residency.
SparseMatrix SampleItemAudiences(const RatingDataset& train,
                                 int32_t max_audience, uint64_t seed,
                                 std::span<const double> user_mean);

/// CSR transpose over a `num_cols`-wide id universe. Because rows are
/// visited in ascending order, every output row lists its ids in
/// ascending order — the property the sweep's bit-compatibility
/// contract relies on.
SparseMatrix Transpose(const SparseMatrix& m, int32_t num_cols);

/// Per-worker scratch of the similarity sweep: dense dot-product
/// accumulator plus first-touch bookkeeping (reset in O(touched)) and
/// reusable candidate/selection buffers for the top-k kernel.
struct SparseSweepScratch {
  std::vector<double> acc;
  std::vector<uint8_t> seen;
  std::vector<int32_t> touched;
  std::vector<ScoredItem> cands;
  std::vector<ScoredItem> selected;
};

/// Flat truncated neighbour lists: entries of row r live at
/// [offsets[r], offsets[r+1]), best-first (higher sim, then lower id).
template <typename NeighborT>
struct NeighborLists {
  std::vector<size_t> offsets;    ///< rows + 1
  std::vector<NeighborT> entries;

  size_t rows() const { return offsets.empty() ? 0 : offsets.size() - 1; }
  std::span<const NeighborT> Row(size_t r) const {
    return {entries.data() + offsets[r], offsets[r + 1] - offsets[r]};
  }
};

/// The inverted-index sweep. `entity_features` holds each entity's
/// feature list in ascending feature-id order (it is the transpose of
/// the sampled view); `feature_entities` is the sampled view itself
/// (arbitrary within-row order — per-pair accumulation order is fixed
/// by the outer, ascending-feature loop). `norms[e]` is entity e's
/// (full, unsampled) rating-vector norm. Keeps the `num_neighbors`
/// best positive-cosine neighbours per row via the shared tie-aware
/// top-k kernel. `pool` shards rows; output is identical with or
/// without it.
template <typename NeighborT>
NeighborLists<NeighborT> SparseCosineTopK(const SparseMatrix& entity_features,
                                          const SparseMatrix& feature_entities,
                                          std::span<const double> norms,
                                          int32_t num_neighbors,
                                          ThreadPool* pool = nullptr) {
  const size_t rows = entity_features.rows();
  const size_t k = static_cast<size_t>(std::max(num_neighbors, 0));
  // Two harvest regimes with identical output (an entity enters a row's
  // candidate list iff its accumulated dot yields sim > 0, and an
  // untouched accumulator is exactly 0):
  //   dense: the inner loop is a bare gather-FMA-scatter and the harvest
  //     scans/resets the whole accumulator — right when co-rating is
  //     dense enough that most rows touch most entities.
  //   touched-list: first-touch bookkeeping keeps the reset O(touched) —
  //     right for huge, sparsely overlapping universes.
  // The sweep does sum |features(e)|^2 accumulator updates in total
  // (feature f fans out |entities(f)| contributions |entities(f)| times);
  // dense harvesting adds rows^2 scan steps, so it wins when that is at
  // most ~one extra step per update.
  size_t sweep_work = 0;
  for (size_t f = 0; f < feature_entities.rows(); ++f) {
    const size_t n = feature_entities.offsets[f + 1] -
                     feature_entities.offsets[f];
    sweep_work += n * n;
  }
  const bool dense_harvest = rows * rows <= sweep_work;
  // Per-row result slots: each row is written only by the shard that owns
  // it, so the merge below is deterministic for any chunking.
  std::vector<std::vector<NeighborT>> all(rows);
  ParallelForChunks(pool, 0, rows, [&](size_t lo, size_t hi) {
    static thread_local SparseSweepScratch scratch;
    scratch.acc.resize(rows, 0.0);
    if (!dense_harvest) scratch.seen.resize(rows, 0);
    double* const acc = scratch.acc.data();
    for (size_t r = lo; r < hi; ++r) {
      // Sweep: every co-occurring entity accumulates its dot product
      // with r, contributions arriving in ascending feature-id order.
      // Self-pairs (e == r) accumulate too and are skipped at harvest —
      // cheaper than a branch in the innermost loop.
      const std::span<const int32_t> feats = entity_features.IdsOf(r);
      const std::span<const double> fvals = entity_features.ValuesOf(r);
      for (size_t a = 0; a < feats.size(); ++a) {
        const double v_rf = fvals[a];
        const size_t f = static_cast<size_t>(feats[a]);
        const size_t begin = feature_entities.offsets[f];
        const size_t end = feature_entities.offsets[f + 1];
        const int32_t* const ents = feature_entities.ids.data();
        const double* const evals = feature_entities.values.data();
        if (dense_harvest) {
          for (size_t b = begin; b < end; ++b) {
            acc[static_cast<size_t>(ents[b])] += v_rf * evals[b];
          }
        } else {
          for (size_t b = begin; b < end; ++b) {
            const size_t e = static_cast<size_t>(ents[b]);
            if (!scratch.seen[e]) {
              scratch.seen[e] = 1;
              scratch.touched.push_back(static_cast<int32_t>(e));
            }
            acc[e] += v_rf * evals[b];
          }
        }
      }
      // Harvest + reset: cosine from the full-vector norms, positive
      // similarities only (the legacy builders' filter).
      scratch.cands.clear();
      const double norm_r = norms[r];
      const auto harvest = [&](size_t e) {
        const double dot = acc[e];
        acc[e] = 0.0;
        // Only dot > 0 can yield sim > 0 (denominators are positive), so
        // everything else — including untouched zeros — skips the divide.
        if (!(dot > 0.0) || e == r) return;
        const double denom = norm_r * norms[e];
        if (denom <= 0.0) return;
        const float sim = static_cast<float>(dot / denom);
        if (sim <= 0.0f) return;
        scratch.cands.push_back(
            {static_cast<int32_t>(e), static_cast<double>(sim)});
      };
      if (dense_harvest) {
        for (size_t e = 0; e < rows; ++e) harvest(e);
      } else {
        for (const int32_t e : scratch.touched) {
          scratch.seen[static_cast<size_t>(e)] = 0;
          harvest(static_cast<size_t>(e));
        }
        scratch.touched.clear();
      }
      if (k == 0) continue;
      // Shared tie-aware selection (top_k.h regimes) instead of a full
      // sort: the order is total, so the kept set and its order are
      // unique regardless of candidate enumeration order.
      const std::vector<ScoredItem>* best;
      if (UseScanSelect(k, scratch.cands.size())) {
        scratch.selected.clear();
        ScanSelectBestInto(
            scratch.cands.size(), k,
            [&](size_t i) { return scratch.cands[i]; }, &scratch.selected);
        best = &scratch.selected;
      } else {
        PartialSelectBest(&scratch.cands, k);
        best = &scratch.cands;
      }
      std::vector<NeighborT>& row = all[r];
      row.reserve(best->size());
      for (const ScoredItem& s : *best) {
        row.push_back(NeighborT{s.item, static_cast<float>(s.score)});
      }
    }
  });
  // Deterministic merge: flatten in row order.
  NeighborLists<NeighborT> lists;
  lists.offsets.resize(rows + 1, 0);
  size_t total = 0;
  for (size_t r = 0; r < rows; ++r) {
    lists.offsets[r] = total;
    total += all[r].size();
  }
  lists.offsets[rows] = total;
  lists.entries.reserve(total);
  for (size_t r = 0; r < rows; ++r) {
    lists.entries.insert(lists.entries.end(), all[r].begin(), all[r].end());
  }
  return lists;
}

/// Writes flat neighbour lists as the lengths / ids / sims triple both
/// KNN artifacts use (bulk-memcpy read path, exact capacity reserved up
/// front). NeighborT is any {int32 id-like, float sim} aggregate.
template <typename NeighborT>
void WriteNeighborLists(PayloadWriter& w, std::span<const size_t> offsets,
                        std::span<const NeighborT> entries) {
  std::vector<uint64_t> lengths;
  std::vector<int32_t> ids;
  std::vector<float> sims;
  if (!offsets.empty()) lengths.reserve(offsets.size() - 1);
  ids.reserve(entries.size());
  sims.reserve(entries.size());
  for (size_t r = 0; r + 1 < offsets.size(); ++r) {
    lengths.push_back(offsets[r + 1] - offsets[r]);
  }
  for (const NeighborT& nb : entries) {
    const auto& [id, sim] = nb;
    ids.push_back(id);
    sims.push_back(sim);
  }
  w.WriteVecU64(lengths);
  w.WriteVecI32(ids);
  w.WriteVecF32(sims);
}

/// Reads lists written by WriteNeighborLists back into flat form,
/// validating row count, id range [0, max_id), and exact length/entry
/// consistency. `what` names the model in error messages ("ItemKNN").
template <typename NeighborT>
Status ReadNeighborLists(PayloadReader& r, int32_t num_rows, int32_t max_id,
                         const std::string& what,
                         std::vector<size_t>* offsets,
                         std::vector<NeighborT>* entries) {
  std::vector<uint64_t> lengths;
  std::vector<int32_t> ids;
  std::vector<float> sims;
  GANC_RETURN_NOT_OK(r.ReadVecU64(&lengths));
  GANC_RETURN_NOT_OK(r.ReadVecI32(&ids));
  GANC_RETURN_NOT_OK(r.ReadVecF32(&sims));
  if (static_cast<int32_t>(lengths.size()) != num_rows ||
      ids.size() != sims.size()) {
    return Status::InvalidArgument("inconsistent " + what +
                                   " neighbour arrays");
  }
  offsets->assign(static_cast<size_t>(num_rows) + 1, 0);
  size_t pos = 0;
  for (int32_t row = 0; row < num_rows; ++row) {
    const uint64_t len = lengths[static_cast<size_t>(row)];
    if (len > ids.size() - pos) {
      return Status::InvalidArgument("neighbour list overruns " + what +
                                     " state");
    }
    pos += static_cast<size_t>(len);
    (*offsets)[static_cast<size_t>(row) + 1] = pos;
  }
  if (pos != ids.size()) {
    return Status::InvalidArgument("trailing neighbour entries in " + what);
  }
  entries->clear();
  entries->reserve(ids.size());
  for (size_t i = 0; i < ids.size(); ++i) {
    if (ids[i] < 0 || ids[i] >= max_id) {
      return Status::InvalidArgument("neighbour id out of range in " + what);
    }
    entries->push_back(NeighborT{ids[i], sims[i]});
  }
  return Status::OK();
}

}  // namespace ganc

#endif  // GANC_RECOMMENDER_SPARSE_SIMILARITY_H_
