#include "recommender/recommender.h"

namespace ganc {

std::vector<ItemId> Recommender::RecommendTopN(
    UserId u, const std::vector<ItemId>& candidates, int n) const {
  const std::vector<double> scores = ScoreAll(u);
  const std::vector<ScoredItem> top =
      SelectTopKFromScores(scores, candidates, static_cast<size_t>(n));
  std::vector<ItemId> out;
  out.reserve(top.size());
  for (const ScoredItem& s : top) out.push_back(s.item);
  return out;
}

std::vector<std::vector<ItemId>> RecommendAllUsers(const Recommender& model,
                                                   const RatingDataset& train,
                                                   int n) {
  std::vector<std::vector<ItemId>> result(
      static_cast<size_t>(train.num_users()));
  for (UserId u = 0; u < train.num_users(); ++u) {
    result[static_cast<size_t>(u)] =
        model.RecommendTopN(u, train.UnratedItems(u), n);
  }
  return result;
}

}  // namespace ganc
