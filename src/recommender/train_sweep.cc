#include "recommender/train_sweep.h"

#include <algorithm>
#include <vector>

namespace ganc {

namespace {
uint64_t SplitMix64Finalize(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}
}  // namespace

uint64_t MixSeed(uint64_t seed, uint64_t epoch, uint64_t block) {
  return SplitMix64Finalize(SplitMix64Finalize(seed ^ (epoch * 0xA24BAED4963EE407ULL)) + block);
}

Status SweepUserBlocks(
    const RatingDataset& train, int32_t user_block, ThreadPool* pool,
    const std::function<Status(const UserBlock&)>& block_fn,
    const std::function<Status(const UserBlock&)>& merge_fn) {
  const int32_t block = std::max<int32_t>(user_block, 1);
  return train.SweepRowWindows(
      train.train_budget_bytes(), block, [&](const RowWindow& w) -> Status {
        // Window bounds are block-aligned by construction, so global
        // block indexes are recoverable from the user range alone.
        const int64_t b0 = static_cast<int64_t>(w.begin) / block;
        const int64_t b1 =
            (static_cast<int64_t>(w.end) + block - 1) / block;
        const auto block_at = [&](int64_t b) {
          UserBlock ub;
          ub.index = b;
          ub.begin = static_cast<UserId>(b * block);
          ub.end = static_cast<UserId>(
              std::min<int64_t>((b + 1) * static_cast<int64_t>(block),
                                static_cast<int64_t>(w.end)));
          return ub;
        };
        std::vector<Status> statuses(static_cast<size_t>(b1 - b0));
        ParallelFor(pool, 0, statuses.size(), [&](size_t j) {
          statuses[j] = block_fn(block_at(b0 + static_cast<int64_t>(j)));
        });
        for (const Status& s : statuses) {
          GANC_RETURN_NOT_OK(s);
        }
        if (merge_fn) {
          for (int64_t b = b0; b < b1; ++b) {
            GANC_RETURN_NOT_OK(merge_fn(block_at(b)));
          }
        }
        return Status::OK();
      });
}

}  // namespace ganc
