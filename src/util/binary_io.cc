#include "util/binary_io.h"

#include <cstring>
#include <fstream>

namespace ganc {

namespace {

constexpr uint64_t kVectorMagic = 0x47414E4356454331ULL;  // "GANCVEC1"
constexpr uint64_t kTopNMagic = 0x47414E43544F5031ULL;    // "GANCTOP1"
constexpr uint32_t kVersion = 1;

Status WriteBlob(const std::string& path, uint64_t magic,
                 const std::vector<uint8_t>& payload) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  const uint64_t checksum =
      Fnv1aHash(payload.data(), payload.size());
  const uint64_t size = payload.size();
  out.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
  out.write(reinterpret_cast<const char*>(&kVersion), sizeof(kVersion));
  out.write(reinterpret_cast<const char*>(&size), sizeof(size));
  out.write(reinterpret_cast<const char*>(payload.data()),
            static_cast<std::streamsize>(payload.size()));
  out.write(reinterpret_cast<const char*>(&checksum), sizeof(checksum));
  if (!out) return Status::IOError("write failed for " + path);
  return Status::OK();
}

Result<std::vector<uint8_t>> ReadBlob(const std::string& path,
                                      uint64_t expected_magic) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  uint64_t magic = 0;
  uint32_t version = 0;
  uint64_t size = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  in.read(reinterpret_cast<char*>(&version), sizeof(version));
  in.read(reinterpret_cast<char*>(&size), sizeof(size));
  if (!in) return Status::IOError("truncated header in " + path);
  if (magic != expected_magic) {
    return Status::InvalidArgument("bad magic in " + path);
  }
  if (version != kVersion) {
    return Status::InvalidArgument("unsupported version in " + path);
  }
  // Sanity bound before allocation: refuse blobs beyond 16 GiB.
  if (size > (1ULL << 34)) {
    return Status::InvalidArgument("implausible payload size in " + path);
  }
  std::vector<uint8_t> payload(size);
  in.read(reinterpret_cast<char*>(payload.data()),
          static_cast<std::streamsize>(size));
  uint64_t checksum = 0;
  in.read(reinterpret_cast<char*>(&checksum), sizeof(checksum));
  if (!in) return Status::IOError("truncated payload in " + path);
  if (checksum != Fnv1aHash(payload.data(), payload.size())) {
    return Status::InvalidArgument("checksum mismatch in " + path);
  }
  return payload;
}

template <typename T>
void Append(std::vector<uint8_t>* buf, const T& value) {
  const auto* bytes = reinterpret_cast<const uint8_t*>(&value);
  buf->insert(buf->end(), bytes, bytes + sizeof(T));
}

template <typename T>
Status Extract(const std::vector<uint8_t>& buf, size_t* offset, T* out) {
  if (*offset + sizeof(T) > buf.size()) {
    return Status::InvalidArgument("payload underrun");
  }
  std::memcpy(out, buf.data() + *offset, sizeof(T));
  *offset += sizeof(T);
  return Status::OK();
}

}  // namespace

uint64_t Fnv1aHash(const void* data, size_t size) {
  return Fnv1aHasher().Update(data, size).digest();
}

Fnv1aHasher& Fnv1aHasher::Update(const void* data, size_t size) {
  const auto* bytes = static_cast<const uint8_t*>(data);
  for (size_t i = 0; i < size; ++i) {
    hash_ ^= bytes[i];
    hash_ *= 0x100000001B3ULL;
  }
  return *this;
}

Status WriteDoubleVector(const std::string& path,
                         const std::vector<double>& values) {
  std::vector<uint8_t> payload;
  payload.reserve(sizeof(uint64_t) + values.size() * sizeof(double));
  Append(&payload, static_cast<uint64_t>(values.size()));
  for (double v : values) Append(&payload, v);
  return WriteBlob(path, kVectorMagic, payload);
}

Result<std::vector<double>> ReadDoubleVector(const std::string& path) {
  Result<std::vector<uint8_t>> blob = ReadBlob(path, kVectorMagic);
  if (!blob.ok()) return blob.status();
  size_t offset = 0;
  uint64_t count = 0;
  GANC_RETURN_NOT_OK(Extract(*blob, &offset, &count));
  if (offset + count * sizeof(double) != blob->size()) {
    return Status::InvalidArgument("vector payload size mismatch in " + path);
  }
  std::vector<double> values(count);
  for (uint64_t i = 0; i < count; ++i) {
    GANC_RETURN_NOT_OK(Extract(*blob, &offset, &values[i]));
  }
  return values;
}

Status WriteTopNCollection(const std::string& path,
                           const std::vector<std::vector<int32_t>>& topn) {
  std::vector<uint8_t> payload;
  Append(&payload, static_cast<uint64_t>(topn.size()));
  for (const auto& list : topn) {
    Append(&payload, static_cast<uint32_t>(list.size()));
    for (int32_t item : list) Append(&payload, item);
  }
  return WriteBlob(path, kTopNMagic, payload);
}

Result<std::vector<std::vector<int32_t>>> ReadTopNCollection(
    const std::string& path) {
  Result<std::vector<uint8_t>> blob = ReadBlob(path, kTopNMagic);
  if (!blob.ok()) return blob.status();
  size_t offset = 0;
  uint64_t users = 0;
  GANC_RETURN_NOT_OK(Extract(*blob, &offset, &users));
  if (users > (1ULL << 32)) {
    return Status::InvalidArgument("implausible user count in " + path);
  }
  std::vector<std::vector<int32_t>> topn(users);
  for (uint64_t u = 0; u < users; ++u) {
    uint32_t len = 0;
    GANC_RETURN_NOT_OK(Extract(*blob, &offset, &len));
    topn[u].resize(len);
    for (uint32_t k = 0; k < len; ++k) {
      GANC_RETURN_NOT_OK(Extract(*blob, &offset, &topn[u][k]));
    }
  }
  if (offset != blob->size()) {
    return Status::InvalidArgument("trailing bytes in " + path);
  }
  return topn;
}

}  // namespace ganc
