// ganc_serve: the online serving frontend.
//
// Loads a trained artifact into the sharded serving tier
// (src/serve/shard_router.h) and answers requests over the
// newline-delimited protocol (src/serve/protocol.h, grammar in
// docs/SERVING.md) on stdin/stdout and, with --port, on a POSIX TCP
// socket (one thread per connection; all connections share the router,
// its per-shard micro-batchers, result caches, and the session
// registry). Dependency free: nothing beyond the C++ standard library
// and POSIX.
//
//   ganc_cli cache-dataset --dataset=tiny --out=tiny.gdc
//   ganc_cli train --dataset-cache=tiny.gdc --arec=psvd10 --seed=7 \
//            --save-model=psvd10.gam
//   ganc_serve --dataset-cache=tiny.gdc --seed=7 --model=psvd10.gam \
//              --default-n=5 [--port=0] [--store=head.gts] [--shards=3]
//
// Topologies:
//   * default            one in-process shard (the PR 5 shape).
//   * --shards=N         N in-process ServiceShards behind a ShardRouter;
//                        users are partitioned by the stable shard hash.
//   * --shards=N --multiprocess
//                        forks N `ganc_serve --shard=k/N` children of
//                        this same binary and multiplexes stdin/TCP
//                        traffic to them over pipes speaking this very
//                        protocol (each child prints READY on stdout
//                        before the router starts serving).
//   * --shard=k/N        child mode: serve only partition k (requests
//                        for users owned by other shards are rejected).
//
// Zero-downtime swap: the PUBLISH verb (and --watch, which polls the
// artifact path for stable changes) loads a replacement artifact in the
// background, validates its dataset fingerprint, and atomically flips
// the per-shard snapshot — in-flight requests finish on the old
// snapshot, the version-keyed result cache invalidates implicitly, no
// request is dropped.
//
// The process serves stdin until EOF or a QUIT line, then dumps the
// request/hit-rate/latency counters to stderr. `--port=0` binds an
// ephemeral port; the assigned port is announced on stdout as
// "LISTENING port=<p>" before request processing starts (the subprocess
// tests key on this). `--daemon` detaches the lifetime from stdin for
// TCP-only deployments (systemd/containers close stdin at launch):
// the listener serves until SIGINT/SIGTERM, which also shut down
// cleanly with the stats dump. Stop signals are delivered through a
// self-pipe so a thread blocked in accept(2) exits promptly.

#include <arpa/inet.h>
#include <csignal>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "data/dataset.h"
#include "data/loader.h"
#include "data/split.h"
#include "serve/protocol.h"
#include "serve/recommendation_service.h"
#include "serve/service_shard.h"
#include "serve/session_overlay.h"
#include "serve/shard_router.h"
#include "serve/snapshot_swap.h"
#include "serve/topn_store.h"
#include "util/flags.h"
#include "util/metrics.h"
#include "util/timer.h"
#include "util/trace.h"

using namespace ganc;

namespace {

void Usage() {
  std::fprintf(
      stderr,
      "usage: ganc_serve --model=PATH|--pipeline=PATH [flags]\n"
      "\n"
      "snapshot (same data flags as ganc_cli, split must match training):\n"
      "    --dataset-cache=PATH | --ratings-file=PATH | --dataset=NAME\n"
      "    [--kappa=0.5] [--seed=42]\n"
      "    --model=PATH | --pipeline=PATH   (artifact to serve)\n"
      "    [--store=PATH]     (precomputed top-N store artifact; sharded\n"
      "                        servers attach each shard's segment)\n"
      "    [--factor-precision=fp64|fp32|int8]  (compact the snapshot's\n"
      "                        factor tables after load; fp64 = keep the\n"
      "                        artifact's own precision)\n"
      "    [--mmap=true]      (open v3 dataset-cache/model/store\n"
      "                        artifacts as zero-copy file mappings;\n"
      "                        --mmap=false forces eager stream loads.\n"
      "                        Mapped serving wants --kappa=1, which\n"
      "                        skips the materializing split rebuild)\n"
      "\n"
      "serving:\n"
      "    [--default-n=10]   (list length when a request omits n=)\n"
      "    [--workers=1] [--batch-wait-us=200] [--cache-capacity=4096]\n"
      "    [--unbatched]      (one-request-at-a-time baseline path)\n"
      "    [--port=N]         (also serve TCP; 0 = ephemeral, the chosen\n"
      "                        port is announced as LISTENING port=N)\n"
      "    [--daemon]         (with --port: stdin EOF does not stop the\n"
      "                        server; run until SIGINT/SIGTERM)\n"
      "\n"
      "sharding / snapshot swap:\n"
      "    [--shards=N]       (partition users across N in-process shards)\n"
      "    [--multiprocess]   (with --shards: fork N --shard=k/N children\n"
      "                        and route to them over pipes)\n"
      "    [--shard=k/N]      (child mode: serve partition k of N only)\n"
      "    [--watch]          (poll the artifact path and PUBLISH stable\n"
      "                        changes automatically)\n"
      "    [--watch-interval-ms=1000]\n"
      "\n"
      "protocol (one request per line; see docs/SERVING.md):\n"
      "    TOPN user=3 [n=10] [session=abc] [exclude=1,2]\n"
      "    TOPNV user=3 ...   (response carries the snapshot version)\n"
      "    CONSUME session=abc user=3 items=4,5\n"
      "    PUBLISH path=new.gam | VERSION | SHARDS\n"
      "    STATS | METRICS | METRICSNAP | TRACE [n=16] | PING | QUIT\n");
}

// SIGINT/SIGTERM request a clean shutdown (stats still dumped) — the
// stop path for TCP-only deployments whose stdin is closed at launch.
// The handler also writes to a self-pipe so poll()-based waits (the
// accept loop, the daemon wait) wake immediately instead of riding out
// a blocking syscall; the pipe is written once and never drained, so
// every poller sees it readable forever after.
volatile std::sig_atomic_t g_stop_requested = 0;
int g_stop_pipe[2] = {-1, -1};

void HandleStopSignal(int /*sig*/) {
  g_stop_requested = 1;
  if (g_stop_pipe[1] >= 0) {
    const char byte = 1;
    [[maybe_unused]] const ssize_t n = write(g_stop_pipe[1], &byte, 1);
  }
}

// Installs the stop handler *without* SA_RESTART: a getline() blocked
// on stdin must return EINTR on SIGTERM rather than resume, or a
// daemonless server could only be stopped by closing its stdin.
void InstallStopHandlers() {
  if (pipe(g_stop_pipe) != 0) {
    g_stop_pipe[0] = g_stop_pipe[1] = -1;
  }
  struct sigaction sa{};
  sa.sa_handler = HandleStopSignal;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // deliberately no SA_RESTART
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);
  std::signal(SIGPIPE, SIG_IGN);  // a dead shard child must not kill us
}

// Writes the whole buffer, riding out short writes.
bool WriteAll(int fd, const char* data, size_t size) {
  while (size > 0) {
    const ssize_t n = write(fd, data, size);
    if (n <= 0) return false;
    data += n;
    size -= static_cast<size_t>(n);
  }
  return true;
}

// ---------------------------------------------------------------------------
// Frontend observability: per-line protocol instruments and the sampled
// request-trace ring. One seq number per incoming line, shared by every
// input (stdin and all TCP connections), drives deterministic sampling.

struct FrontendInstruments {
  Counter* lines;
  Counter* parse_errors;
  LatencyHistogram* parse_ns;
  LatencyHistogram* line_ns;
};

const FrontendInstruments& Frontend() {
  static const FrontendInstruments fi = [] {
    MetricsRegistry& r = MetricsRegistry::Global();
    FrontendInstruments f;
    f.lines = r.GetCounter("serve_lines_total",
                           "Request lines received by the frontend.");
    f.parse_errors = r.GetCounter("serve_parse_errors_total",
                                  "Request lines rejected by the parser.");
    f.parse_ns = r.GetHistogram("serve_parse_ns",
                                "Protocol parse latency, nanoseconds.");
    f.line_ns = r.GetHistogram(
        "serve_line_ns",
        "Full line handling latency (parse through response formatting), "
        "nanoseconds.");
    return f;
  }();
  return fi;
}

std::atomic<uint64_t> g_request_seq{0};

// Joins newline-terminated `payload` under a "OK <what> lines=<N>"
// framing header. The returned response carries embedded newlines but
// no trailing one — both output paths append exactly one '\n'.
std::string FramedResponse(std::string_view what, const std::string& payload) {
  size_t lines = 0;
  for (const char c : payload) lines += c == '\n';
  std::string out = FormatFramedHeader(what, lines);
  if (!payload.empty()) {
    out.push_back('\n');
    out.append(payload.data(), payload.size() - 1);  // drop trailing '\n'
  }
  return out;
}

// Extracts N from a framed "OK <what> lines=<N>" header.
bool ParseFramedLineCount(const std::string& header, uint64_t* out) {
  const size_t pos = header.rfind(" lines=");
  if (pos == std::string::npos) return false;
  const size_t start = pos + 7;
  size_t end = start;
  uint64_t value = 0;
  while (end < header.size() && header[end] >= '0' && header[end] <= '9') {
    value = value * 10 + static_cast<uint64_t>(header[end] - '0');
    ++end;
  }
  if (end == start || end != header.size()) return false;
  *out = value;
  return true;
}

// ---------------------------------------------------------------------------
// Multi-process router: N forked `ganc_serve --shard=k/N` children of
// this binary, each driven over its stdin/stdout pipe with the same
// newline protocol external clients speak. A per-child mutex serializes
// the request/response round-trip; different shards proceed in
// parallel.

struct ChildProc {
  pid_t pid = -1;
  int in_fd = -1;       ///< child stdin (we write request lines)
  FILE* out = nullptr;  ///< child stdout (we read response lines)
  std::mutex mu;
};

class ProcessRouter {
 public:
  ~ProcessRouter() { Stop(); }

  /// Forks `num_shards` children running `base_args` plus
  /// `--shard=k/N`, and blocks until every child has printed its READY
  /// line. `num_users` bounds in-range routing (out-of-range ids fall
  /// back to shard 0, like the in-process router).
  static Result<std::unique_ptr<ProcessRouter>> Spawn(
      const std::vector<std::string>& base_args, size_t num_shards,
      int32_t num_users) {
    auto router = std::unique_ptr<ProcessRouter>(new ProcessRouter());
    router->num_users_ = num_users;
    for (size_t k = 0; k < num_shards; ++k) {
      // O_CLOEXEC on every parent-side end: a later child must not
      // inherit (and hold open) an earlier child's pipes, or EOF-based
      // shutdown would deadlock.
      int req[2], resp[2];
      if (pipe2(req, O_CLOEXEC) != 0 || pipe2(resp, O_CLOEXEC) != 0) {
        return Status::IOError("pipe2() failed");
      }
      const std::string shard_flag = "--shard=" + std::to_string(k) + "/" +
                                     std::to_string(num_shards);
      const pid_t pid = fork();
      if (pid < 0) return Status::IOError("fork() failed");
      if (pid == 0) {
        // Child: pipes become stdio (dup2 clears CLOEXEC), stderr is
        // inherited so shard logs land in the router's stderr stream.
        dup2(req[0], STDIN_FILENO);
        dup2(resp[1], STDOUT_FILENO);
        std::vector<char*> argv;
        std::string argv0 = "/proc/self/exe";
        argv.push_back(argv0.data());
        std::vector<std::string> args = base_args;
        args.push_back(shard_flag);
        for (std::string& a : args) argv.push_back(a.data());
        argv.push_back(nullptr);
        execv("/proc/self/exe", argv.data());
        std::fprintf(stderr, "execv failed: %s\n", strerror(errno));
        _exit(127);
      }
      close(req[0]);
      close(resp[1]);
      auto child = std::make_unique<ChildProc>();
      child->pid = pid;
      child->in_fd = req[1];
      child->out = fdopen(resp[0], "r");
      if (child->out == nullptr) {
        close(resp[0]);
        return Status::IOError("fdopen() failed");
      }
      router->children_.push_back(std::move(child));
      // Block until the shard announces READY — the router must never
      // accept traffic a child cannot serve yet.
      Result<std::string> ready = router->ReadLine(k);
      if (!ready.ok() || ready->rfind("READY ", 0) != 0) {
        return Status::IOError(
            "shard " + std::to_string(k) + "/" + std::to_string(num_shards) +
            " failed to start" +
            (ready.ok() ? " (got '" + *ready + "')" : ""));
      }
      router->ready_.push_back(std::move(ready).value());
    }
    return router;
  }

  size_t num_shards() const { return children_.size(); }
  int32_t num_users() const { return num_users_; }
  const std::string& ready_info(size_t k) const { return ready_[k]; }

  size_t IndexFor(UserId user) const {
    if (user < 0 || user >= num_users_) return 0;
    return ShardForUser(user, children_.size());
  }

  /// One request/response round-trip with shard `k`.
  Result<std::string> Forward(size_t k, const std::string& line) {
    ChildProc& child = *children_[k];
    std::lock_guard<std::mutex> lock(child.mu);
    std::string msg = line;
    msg.push_back('\n');
    if (!WriteAll(child.in_fd, msg.data(), msg.size())) {
      return Status::IOError("shard " + std::to_string(k) + " write failed");
    }
    return ReadLineLocked(child, k);
  }

  /// One round-trip for a framed verb (METRICS/TRACE): reads the
  /// "OK <what> lines=<N>" header plus its N payload lines. A non-OK
  /// header comes back as a single-element vector.
  Result<std::vector<std::string>> ForwardMulti(size_t k,
                                                const std::string& line) {
    ChildProc& child = *children_[k];
    std::lock_guard<std::mutex> lock(child.mu);
    std::string msg = line;
    msg.push_back('\n');
    if (!WriteAll(child.in_fd, msg.data(), msg.size())) {
      return Status::IOError("shard " + std::to_string(k) + " write failed");
    }
    Result<std::string> header = ReadLineLocked(child, k);
    if (!header.ok()) return header.status();
    std::vector<std::string> out;
    out.push_back(*header);
    uint64_t lines = 0;
    if (header->rfind("OK ", 0) != 0) return out;
    if (!ParseFramedLineCount(*header, &lines)) {
      return Status::Internal("shard " + std::to_string(k) +
                              " returned malformed framed header: " + *header);
    }
    for (uint64_t i = 0; i < lines; ++i) {
      Result<std::string> payload = ReadLineLocked(child, k);
      if (!payload.ok()) return payload.status();
      out.push_back(std::move(payload).value());
    }
    return out;
  }

  /// Stops every child: stdin EOF first (clean drain + stats dump),
  /// escalating to SIGTERM/SIGKILL only if a child fails to exit.
  void Stop() {
    if (stopped_) return;
    stopped_ = true;
    for (auto& child : children_) {
      std::lock_guard<std::mutex> lock(child->mu);
      if (child->in_fd >= 0) close(child->in_fd);
      child->in_fd = -1;
      if (child->out != nullptr) fclose(child->out);
      child->out = nullptr;
    }
    for (auto& child : children_) {
      if (child->pid < 0) continue;
      if (!WaitFor(child->pid, 5000)) {
        kill(child->pid, SIGTERM);
        if (!WaitFor(child->pid, 2000)) {
          kill(child->pid, SIGKILL);
          waitpid(child->pid, nullptr, 0);
        }
      }
      child->pid = -1;
    }
  }

 private:
  ProcessRouter() = default;

  Result<std::string> ReadLine(size_t k) {
    ChildProc& child = *children_[k];
    std::lock_guard<std::mutex> lock(child.mu);
    return ReadLineLocked(child, k);
  }

  static Result<std::string> ReadLineLocked(ChildProc& child, size_t k) {
    char* buf = nullptr;
    size_t cap = 0;
    ssize_t len = getline(&buf, &cap, child.out);
    if (len < 0) {
      free(buf);
      return Status::IOError("shard " + std::to_string(k) + " exited");
    }
    while (len > 0 && (buf[len - 1] == '\n' || buf[len - 1] == '\r')) {
      buf[--len] = '\0';
    }
    std::string line(buf, static_cast<size_t>(len));
    free(buf);
    return line;
  }

  static bool WaitFor(pid_t pid, int timeout_ms) {
    const timespec tick{0, 10 * 1000 * 1000};  // 10 ms
    for (int waited = 0; waited <= timeout_ms; waited += 10) {
      if (waitpid(pid, nullptr, WNOHANG) == pid) return true;
      nanosleep(&tick, nullptr);
    }
    return false;
  }

  std::vector<std::unique_ptr<ChildProc>> children_;
  std::vector<std::string> ready_;
  int32_t num_users_ = 0;
  bool stopped_ = false;
};

// ---------------------------------------------------------------------------
// Shared per-process serving state. Exactly one topology member is set:
// `router` (in-process shards, the default), `child` (a --shard=k/N
// partition server), or `procs` (the multi-process fan-out).

struct Server {
  std::unique_ptr<ShardRouter> router;
  std::unique_ptr<ServiceShard> child;
  std::unique_ptr<ProcessRouter> procs;
  SessionRegistry sessions;
  std::unique_ptr<ArtifactWatcher> watcher;

  bool local() const { return procs == nullptr; }
  int32_t num_users() const {
    return child ? child->num_users() : router->num_users();
  }
  int32_t num_items() const {
    return child ? child->num_items() : router->num_items();
  }
  int default_n() const {
    return child ? child->default_n() : router->default_n();
  }
  uint64_t version() const {
    return child ? child->version() : router->max_version();
  }
  std::string source() const {
    return child ? child->source() : router->source();
  }
  ServeStats stats() const {
    return child ? child->stats() : router->stats();
  }
  Status TopNInto(UserId user, int n, std::span<const ItemId> exclusions,
                  std::vector<ItemId>* out, uint64_t* served_version,
                  RequestTrace* trace = nullptr) {
    return child
               ? child->TopNInto(user, n, exclusions, out, served_version,
                                 trace)
               : router->TopNInto(user, n, exclusions, out, served_version,
                                  trace);
  }
};

// Merged metrics snapshot for the *local* part of `server`: the
// process-global registry (frontend, watcher, data sweeps, and — for
// topologies configured with a null ServiceConfig registry — the serve
// instruments too) plus any distinct per-shard registries.
MetricsSnapshot LocalMetricsSnapshot(const Server& server) {
  if (server.router) return server.router->SnapshotMetrics();
  MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
  if (server.child != nullptr &&
      server.child->metrics_registry() != &MetricsRegistry::Global()) {
    snap.MergeFrom(server.child->metrics_registry()->Snapshot());
  }
  return snap;
}

// Full-topology metrics snapshot: the local snapshot, plus — in the
// multi-process topology — every child scraped over the METRICSNAP verb
// and merged in (the merge is exact, so the router's exposition equals
// one process having served everything).
Result<MetricsSnapshot> GatherMetrics(Server& server) {
  MetricsSnapshot snap = LocalMetricsSnapshot(server);
  if (server.procs == nullptr) return snap;
  static constexpr std::string_view kPrefix = "OK metricsnap ";
  for (size_t k = 0; k < server.procs->num_shards(); ++k) {
    Result<std::string> response = server.procs->Forward(k, "METRICSNAP");
    if (!response.ok()) return response.status();
    if (response->rfind(kPrefix, 0) != 0) {
      return Status::Internal("shard " + std::to_string(k) +
                              " returned malformed metricsnap: " + *response);
    }
    Result<MetricsSnapshot> child =
        MetricsSnapshot::Parse(std::string_view(*response).substr(kPrefix.size()));
    if (!child.ok()) return child.status();
    snap.MergeFrom(*child);
  }
  return snap;
}

// Extracts the decimal value of `key=` from a response line; false when
// the key is absent or malformed.
bool ParseResponseU64(const std::string& response, const std::string& key,
                      uint64_t* out) {
  const std::string needle = key + "=";
  size_t pos = 0;
  while ((pos = response.find(needle, pos)) != std::string::npos) {
    if (pos == 0 || response[pos - 1] == ' ') {
      const size_t start = pos + needle.size();
      size_t end = start;
      uint64_t value = 0;
      while (end < response.size() && response[end] >= '0' &&
             response[end] <= '9') {
        value = value * 10 + static_cast<uint64_t>(response[end] - '0');
        ++end;
      }
      if (end == start) return false;
      *out = value;
      return true;
    }
    pos += needle.size();
  }
  return false;
}

// Publishes `path` to every shard regardless of topology. On success
// `max_version` receives the highest resulting snapshot version.
Status PublishPath(Server& server, const std::string& path,
                   uint64_t* max_version) {
  if (server.child) {
    GANC_RETURN_NOT_OK(server.child->Publish(path));
    if (max_version != nullptr) *max_version = server.child->version();
    return Status::OK();
  }
  if (server.router) {
    return server.router->Publish(path, max_version);
  }
  uint64_t max_v = 0;
  for (size_t k = 0; k < server.procs->num_shards(); ++k) {
    Result<std::string> response =
        server.procs->Forward(k, "PUBLISH path=" + path);
    if (!response.ok()) return response.status();
    if (response->rfind("ERR ", 0) == 0) {
      return Status::Internal("publish failed on shard " + std::to_string(k) +
                              "/" + std::to_string(server.procs->num_shards()) +
                              ": " + response->substr(4));
    }
    uint64_t v = 0;
    if (ParseResponseU64(*response, "version", &v) && v > max_v) max_v = v;
  }
  if (max_version != nullptr) *max_version = max_v;
  return Status::OK();
}

// Handles one request line in the multi-process topology: TOPN(V) and
// CONSUME forward verbatim to the owning shard (so responses — errors
// included — are byte-identical to that shard answering directly);
// control verbs fan out or answer locally.
std::string HandleLineMulti(Server& server, const ServeRequest& req,
                            const std::string& line, bool* quit) {
  ProcessRouter& procs = *server.procs;
  switch (req.command) {
    case ServeCommand::kTopN:
    case ServeCommand::kTopNV:
    case ServeCommand::kConsume: {
      Result<std::string> response =
          procs.Forward(procs.IndexFor(req.user), line);
      if (!response.ok()) return FormatError(response.status().message());
      return *response;
    }
    case ServeCommand::kPublish: {
      uint64_t max_v = 0;
      if (Status s = PublishPath(server, req.path, &max_v); !s.ok()) {
        return FormatError(s.message());
      }
      return FormatOk("version=" + std::to_string(max_v) +
                      " shards=" + std::to_string(procs.num_shards()));
    }
    case ServeCommand::kVersion: {
      std::string versions;
      for (size_t k = 0; k < procs.num_shards(); ++k) {
        Result<std::string> response = procs.Forward(k, "VERSION");
        if (!response.ok()) return FormatError(response.status().message());
        if (procs.num_shards() == 1) return *response;
        uint64_t v = 0;
        if (!ParseResponseU64(*response, "version", &v)) {
          return FormatError("shard " + std::to_string(k) +
                             " returned malformed version: " + *response);
        }
        if (!versions.empty()) versions.push_back(',');
        versions += std::to_string(v);
      }
      return FormatOk("versions=" + versions);
    }
    case ServeCommand::kShards:
      return FormatOk("shards=" + std::to_string(procs.num_shards()) +
                      " mode=multiprocess users=" +
                      std::to_string(procs.num_users()));
    case ServeCommand::kStats: {
      // Sum per-shard counters; mean_fill recombines exactly because
      // mean_fill_k * batches_k is shard k's batched-request count.
      uint64_t requests = 0, cache_hits = 0, store_hits = 0, live = 0,
               batches = 0;
      double batched = 0.0;
      for (size_t k = 0; k < procs.num_shards(); ++k) {
        Result<std::string> response = procs.Forward(k, "STATS");
        if (!response.ok()) return FormatError(response.status().message());
        uint64_t v = 0;
        if (ParseResponseU64(*response, "requests", &v)) requests += v;
        if (ParseResponseU64(*response, "cache_hits", &v)) cache_hits += v;
        if (ParseResponseU64(*response, "store_hits", &v)) store_hits += v;
        if (ParseResponseU64(*response, "live", &v)) live += v;
        if (ParseResponseU64(*response, "batches", &v)) {
          batches += v;
          const size_t pos = response->find("mean_fill=");
          if (pos != std::string::npos) {
            batched += strtod(response->c_str() + pos + 10, nullptr) *
                       static_cast<double>(v);
          }
        }
      }
      char buf[256];
      std::snprintf(buf, sizeof(buf),
                    "requests=%llu cache_hits=%llu store_hits=%llu "
                    "live=%llu batches=%llu mean_fill=%.2f",
                    static_cast<unsigned long long>(requests),
                    static_cast<unsigned long long>(cache_hits),
                    static_cast<unsigned long long>(store_hits),
                    static_cast<unsigned long long>(live),
                    static_cast<unsigned long long>(batches),
                    batches == 0 ? 0.0 : batched / static_cast<double>(batches));
      return FormatOk(buf);
    }
    case ServeCommand::kMetrics: {
      Result<MetricsSnapshot> snap = GatherMetrics(server);
      if (!snap.ok()) return FormatError(snap.status().message());
      return FramedResponse("metrics", snap->RenderExposition());
    }
    case ServeCommand::kMetricSnap: {
      Result<MetricsSnapshot> snap = GatherMetrics(server);
      if (!snap.ok()) return FormatError(snap.status().message());
      return FormatOk("metricsnap " + snap->Serialize());
    }
    case ServeCommand::kTrace: {
      // The router's own ring holds frontend timelines (parse/respond
      // only — the work happens in the children); each child appends
      // its shard-attributed timelines after it.
      const int count = req.n == 0 ? 16 : req.n;
      std::string payload;
      for (const RequestTrace& t :
           TraceRing::Global().MostRecent(static_cast<size_t>(count))) {
        payload += FormatTraceLine(t);
        payload.push_back('\n');
      }
      for (size_t k = 0; k < procs.num_shards(); ++k) {
        Result<std::vector<std::string>> lines =
            procs.ForwardMulti(k, "TRACE n=" + std::to_string(count));
        if (!lines.ok()) return FormatError(lines.status().message());
        if (lines->empty() || (*lines)[0].rfind("OK ", 0) != 0) {
          return FormatError("shard " + std::to_string(k) +
                             " trace dump failed");
        }
        for (size_t i = 1; i < lines->size(); ++i) {
          payload += (*lines)[i];
          payload.push_back('\n');
        }
      }
      return FramedResponse("traces", payload);
    }
    case ServeCommand::kPing:
      return FormatOk("pong");
    case ServeCommand::kQuit:
      *quit = true;
      return FormatOk("bye");
  }
  return FormatError("unreachable");
}

// Handles one request line; returns the response (no trailing newline;
// framed responses carry embedded newlines). Sets *quit for QUIT. A
// sampled request's `trace` (may be null) is stamped through parse and
// the service layers; the caller owns commit.
std::string HandleLine(Server& server, const std::string& line, bool* quit,
                       RequestTrace* trace = nullptr) {
  const FrontendInstruments& fi = Frontend();
  fi.lines->Increment();
  const uint64_t parse_start = MonotonicNowNs();
  Result<ServeRequest> parsed = ParseServeRequest(line);
  const uint64_t parse_end = MonotonicNowNs();
  fi.parse_ns->Observe(parse_end - parse_start);
  if (trace != nullptr) trace->Stamp(TraceStage::kParse, parse_end);
  if (!parsed.ok()) {
    fi.parse_errors->Increment();
    return FormatError(parsed.status().message());
  }
  ServeRequest& req = *parsed;
  if (!server.local()) return HandleLineMulti(server, req, line, quit);
  switch (req.command) {
    case ServeCommand::kTopN:
    case ServeCommand::kTopNV: {
      std::vector<ItemId> exclusions;
      std::span<const ItemId> excl = req.items;
      if (!req.session.empty()) {
        server.sessions.CollectExclusions(req.session, req.user, req.items,
                                          &exclusions);
        excl = exclusions;
      }
      std::vector<ItemId> items;
      uint64_t version = 0;
      if (Status s = server.TopNInto(req.user, req.n, excl, &items, &version,
                                     trace);
          !s.ok()) {
        return FormatError(s.message());
      }
      const int n = req.n == 0 ? server.default_n() : req.n;
      return req.command == ServeCommand::kTopNV
                 ? FormatVersionedTopNResponse(req.user, n, version, items)
                 : FormatTopNResponse(req.user, n, items);
    }
    case ServeCommand::kConsume: {
      for (const ItemId i : req.items) {
        if (i < 0 || i >= server.num_items()) {
          return FormatError("consumed item id out of range");
        }
      }
      if (req.user < 0 || req.user >= server.num_users()) {
        return FormatError("user id out of range");
      }
      server.sessions.MarkConsumed(req.session, req.user, req.items);
      return FormatOk("consumed=" + std::to_string(req.items.size()));
    }
    case ServeCommand::kPublish: {
      uint64_t max_v = 0;
      if (Status s = PublishPath(server, req.path, &max_v); !s.ok()) {
        return FormatError(s.message());
      }
      if (server.router && server.router->num_shards() > 1) {
        return FormatOk(
            "version=" + std::to_string(max_v) +
            " shards=" + std::to_string(server.router->num_shards()));
      }
      return FormatOk("version=" + std::to_string(max_v) +
                      " source=" + server.source());
    }
    case ServeCommand::kVersion: {
      if (server.router && server.router->num_shards() > 1) {
        std::string versions;
        for (const uint64_t v : server.router->versions()) {
          if (!versions.empty()) versions.push_back(',');
          versions += std::to_string(v);
        }
        return FormatOk("versions=" + versions);
      }
      return FormatOk("version=" + std::to_string(server.version()) +
                      " source=" + server.source());
    }
    case ServeCommand::kShards: {
      if (server.child) {
        const ShardSpec spec = server.child->spec();
        return FormatOk("shard=" + std::to_string(spec.index) + "/" +
                        std::to_string(spec.num_shards) +
                        " users=" + std::to_string(server.num_users()) +
                        " version=" + std::to_string(server.version()));
      }
      return FormatOk("shards=" + std::to_string(server.router->num_shards()) +
                      " mode=inprocess users=" +
                      std::to_string(server.num_users()));
    }
    case ServeCommand::kStats: {
      const ServeStats s = server.stats();
      char buf[256];
      std::snprintf(buf, sizeof(buf),
                    "requests=%llu cache_hits=%llu store_hits=%llu "
                    "live=%llu batches=%llu mean_fill=%.2f",
                    static_cast<unsigned long long>(s.requests),
                    static_cast<unsigned long long>(s.cache_hits),
                    static_cast<unsigned long long>(s.store_hits),
                    static_cast<unsigned long long>(s.live_scored),
                    static_cast<unsigned long long>(s.batches),
                    s.MeanBatchFill());
      return FormatOk(buf);
    }
    case ServeCommand::kMetrics:
      return FramedResponse("metrics",
                            LocalMetricsSnapshot(server).RenderExposition());
    case ServeCommand::kMetricSnap:
      return FormatOk("metricsnap " + LocalMetricsSnapshot(server).Serialize());
    case ServeCommand::kTrace: {
      const int count = req.n == 0 ? 16 : req.n;
      std::string payload;
      for (const RequestTrace& t :
           TraceRing::Global().MostRecent(static_cast<size_t>(count))) {
        payload += FormatTraceLine(t);
        payload.push_back('\n');
      }
      return FramedResponse("traces", payload);
    }
    case ServeCommand::kPing:
      return FormatOk("pong");
    case ServeCommand::kQuit:
      *quit = true;
      return FormatOk("bye");
  }
  return FormatError("unreachable");
}

// Wraps HandleLine with the sampled trace ring and the per-line
// instruments: every input path (stdin and each TCP connection) funnels
// through here, drawing seq numbers from one process-wide counter so
// sampling is deterministic in the request arrival order.
std::string HandleRequest(Server& server, const std::string& line,
                          bool* quit) {
  TraceRing& ring = TraceRing::Global();
  const uint64_t seq =
      g_request_seq.fetch_add(1, std::memory_order_relaxed);
  std::unique_ptr<RequestTrace> trace;
  if (ring.ShouldSample(seq)) trace = ring.Begin(seq);
  const uint64_t start_ns = MonotonicNowNs();
  std::string response = HandleLine(server, line, quit, trace.get());
  const uint64_t end_ns = MonotonicNowNs();
  Frontend().line_ns->Observe(end_ns - start_ns);
  if (trace != nullptr) {
    trace->Stamp(TraceStage::kRespond, end_ns);
    ring.Commit(std::move(trace));
  }
  return response;
}

// One live TCP connection. `mu` serializes the socket's close against
// the shutdown path: the serving thread fcloses under it, StopListener
// shutdown()s under it, so a shutdown can never hit a recycled fd and
// an idle client can never block server exit.
struct Connection {
  std::mutex mu;
  int fd = -1;
  bool closed = false;
  std::thread thread;
};

// Serves one TCP connection until EOF/QUIT. Reads are buffered through
// a FILE*, responses go out with raw write() — one stdio stream must
// not interleave reads and writes on a socket.
void ServeConnection(Server& server, Connection& conn) {
  FILE* in = fdopen(conn.fd, "r");
  if (in == nullptr) {
    std::lock_guard<std::mutex> lock(conn.mu);
    close(conn.fd);
    conn.closed = true;
    return;
  }
  char* line = nullptr;
  size_t cap = 0;
  ssize_t len;
  bool quit = false;
  while (!quit && (len = getline(&line, &cap, in)) != -1) {
    while (len > 0 && (line[len - 1] == '\n' || line[len - 1] == '\r')) {
      line[--len] = '\0';
    }
    std::string response = HandleRequest(
        server, std::string(line, static_cast<size_t>(len)), &quit);
    response.push_back('\n');
    if (!WriteAll(conn.fd, response.data(), response.size())) break;
  }
  free(line);
  std::lock_guard<std::mutex> lock(conn.mu);
  fclose(in);  // closes conn.fd
  conn.closed = true;
}

// TCP listener state shared with the accept thread.
struct Listener {
  int fd = -1;
  std::thread accept_thread;
  std::mutex mu;
  std::vector<std::unique_ptr<Connection>> connections;
  std::atomic<bool> stopping{false};
};

// Binds 127.0.0.1:port (0 = ephemeral); returns the bound port or an
// error.
Result<int> StartListener(Listener& listener, Server& server, int port) {
  listener.fd = socket(AF_INET, SOCK_STREAM, 0);
  if (listener.fd < 0) return Status::IOError("socket() failed");
  const int one = 1;
  setsockopt(listener.fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (bind(listener.fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    return Status::IOError("bind() failed: " + std::string(strerror(errno)));
  }
  if (listen(listener.fd, 16) < 0) {
    return Status::IOError("listen() failed");
  }
  socklen_t addr_len = sizeof(addr);
  if (getsockname(listener.fd, reinterpret_cast<sockaddr*>(&addr),
                  &addr_len) < 0) {
    return Status::IOError("getsockname() failed");
  }
  const int bound = ntohs(addr.sin_port);
  listener.accept_thread = std::thread([&listener, &server] {
    for (;;) {
      // poll() on {listener, stop pipe} instead of blocking straight
      // into accept(2): a SIGTERM wakes this thread immediately even
      // when no client ever connects again (the old accept-blocked
      // loop could only be unblocked by the listener close racing the
      // signal handler's context).
      pollfd fds[2] = {{listener.fd, POLLIN, 0}, {g_stop_pipe[0], POLLIN, 0}};
      const nfds_t nfds = g_stop_pipe[0] >= 0 ? 2 : 1;
      const int rc = poll(fds, nfds, -1);
      if (rc < 0) {
        if (errno == EINTR && g_stop_requested == 0 &&
            !listener.stopping.load()) {
          continue;
        }
        return;
      }
      if (nfds == 2 && (fds[1].revents & (POLLIN | POLLERR | POLLHUP))) {
        return;  // stop requested
      }
      if (listener.stopping.load()) return;
      if ((fds[0].revents & POLLIN) == 0) return;  // listener closed
      const int fd = accept(listener.fd, nullptr, nullptr);
      if (fd < 0) {
        if (errno == EINTR) continue;
        return;  // listener closed during shutdown
      }
      if (listener.stopping.load() || g_stop_requested != 0) {
        close(fd);
        return;
      }
      std::lock_guard<std::mutex> lock(listener.mu);
      // Reap finished connections so a long-running server holds
      // resources proportional to *concurrent* clients, not total ones.
      std::erase_if(listener.connections,
                    [](const std::unique_ptr<Connection>& c) {
                      std::lock_guard<std::mutex> conn_lock(c->mu);
                      if (!c->closed) return false;
                      c->thread.join();
                      return true;
                    });
      auto conn = std::make_unique<Connection>();
      conn->fd = fd;
      Connection& ref = *conn;
      ref.thread =
          std::thread([&server, &ref] { ServeConnection(server, ref); });
      listener.connections.push_back(std::move(conn));
    }
  });
  return bound;
}

void StopListener(Listener& listener) {
  if (listener.fd < 0) return;
  listener.stopping.store(true);
  shutdown(listener.fd, SHUT_RDWR);
  close(listener.fd);
  if (listener.accept_thread.joinable()) listener.accept_thread.join();
  std::lock_guard<std::mutex> lock(listener.mu);
  for (const std::unique_ptr<Connection>& conn : listener.connections) {
    // Unblock serving threads stuck in getline() on idle clients; the
    // per-connection mutex guarantees the fd has not been recycled.
    std::lock_guard<std::mutex> conn_lock(conn->mu);
    if (!conn->closed) shutdown(conn->fd, SHUT_RDWR);
  }
  for (const std::unique_ptr<Connection>& conn : listener.connections) {
    if (conn->thread.joinable()) conn->thread.join();
  }
}

// Shutdown report: one topology/uptime header, then the same metrics
// text exposition the METRICS verb serves — one renderer, one format,
// whether scraped live or read off a dead server's stderr. Must run
// while children are still alive (it scrapes them over METRICSNAP).
void DumpStats(Server& server, double uptime_ms) {
  std::string topology;
  if (server.procs) {
    topology = std::to_string(server.procs->num_shards()) +
               " shards, multiprocess";
  } else if (server.child) {
    const ShardSpec spec = server.child->spec();
    topology = "shard " + std::to_string(spec.index) + "/" +
               std::to_string(spec.num_shards);
  } else {
    topology = std::to_string(server.router->num_shards()) +
               " in-process shard(s)";
  }
  std::fprintf(stderr, "--- ganc_serve shutdown (%s, %.1f ms up, %zu "
               "sessions) ---\n",
               topology.c_str(), uptime_ms, server.sessions.num_sessions());
  Result<MetricsSnapshot> snap = GatherMetrics(server);
  if (!snap.ok()) {
    std::fprintf(stderr, "metrics: %s\n", snap.status().ToString().c_str());
    return;
  }
  std::fputs(snap->RenderExposition().c_str(), stderr);
}

// Parses --shard=k/N. Returns false on malformed input.
bool ParseShardSpec(const std::string& text, ShardSpec* spec) {
  const size_t slash = text.find('/');
  if (slash == std::string::npos || slash == 0 || slash + 1 >= text.size()) {
    return false;
  }
  char* end = nullptr;
  const unsigned long index = strtoul(text.c_str(), &end, 10);
  if (end != text.c_str() + slash) return false;
  const unsigned long total = strtoul(text.c_str() + slash + 1, &end, 10);
  if (*end != '\0' || total == 0 || index >= total) return false;
  spec->index = index;
  spec->num_shards = total;
  return true;
}

// Rebuilds the flag list a --shard=k/N child needs: the snapshot/data/
// service flags pass through verbatim; topology, port, and watcher
// flags are the router's own business.
std::vector<std::string> ChildArgs(const Flags& flags) {
  static const char* kForward[] = {
      "dataset",       "ratings-file",  "delimiter",
      "skip-header",   "dataset-cache", "kappa",
      "seed",          "model",         "pipeline",
      "store",         "workers",       "batch-wait-us",
      "cache-capacity", "default-n",    "unbatched",
      "factor-precision", "mmap"};
  std::vector<std::string> args;
  for (const char* name : kForward) {
    if (!flags.Has(name)) continue;
    const std::string value = flags.GetString(name, "");
    args.push_back(value.empty() ? "--" + std::string(name)
                                 : "--" + std::string(name) + "=" + value);
  }
  return args;
}

int Run(const Flags& flags) {
  const std::string model_path = flags.GetString("model", "");
  const std::string pipeline_path = flags.GetString("pipeline", "");
  if ((model_path.empty() == pipeline_path.empty())) {
    std::fprintf(stderr,
                 "exactly one of --model / --pipeline is required\n");
    Usage();
    return 2;
  }
  auto kappa = flags.GetDouble("kappa", 0.5);
  auto seed = flags.GetInt("seed", 42);
  auto port_flag = flags.GetInt("port", -1);
  auto workers = flags.GetInt("workers", 1);
  auto batch_wait = flags.GetInt("batch-wait-us", 200);
  auto cache_capacity = flags.GetInt("cache-capacity", 4096);
  auto default_n = flags.GetInt("default-n", 10);
  auto num_shards = flags.GetInt("shards", 1);
  auto watch_interval = flags.GetInt("watch-interval-ms", 1000);
  if (!kappa.ok() || !seed.ok() || !port_flag.ok() || !workers.ok() ||
      !batch_wait.ok() || !cache_capacity.ok() || !default_n.ok() ||
      !num_shards.ok() || !watch_interval.ok() || *cache_capacity < 0 ||
      *port_flag > 65535 || *num_shards < 1 || *watch_interval < 1) {
    std::fprintf(stderr, "bad numeric flag\n");
    return 2;
  }
  const bool multiprocess = flags.GetBool("multiprocess", false);
  const std::string shard_flag = flags.GetString("shard", "");
  ShardSpec child_spec;
  if (!shard_flag.empty() && !ParseShardSpec(shard_flag, &child_spec)) {
    std::fprintf(stderr, "bad --shard=%s (want k/N with k < N)\n",
                 shard_flag.c_str());
    return 2;
  }
  if (!shard_flag.empty() && (*num_shards != 1 || multiprocess)) {
    std::fprintf(stderr, "--shard is a child mode; it excludes --shards/"
                         "--multiprocess\n");
    return 2;
  }
  if (multiprocess && *num_shards < 2) {
    std::fprintf(stderr, "--multiprocess requires --shards >= 2\n");
    return 2;
  }

  // The shared resolver guarantees the serving process binds the same
  // data the training run did for the same flags.
  Result<RatingDataset> dataset = LoadDatasetFromFlags(flags);
  if (!dataset.ok()) {
    std::fprintf(stderr, "load: %s\n", dataset.status().ToString().c_str());
    return 1;
  }
  // kappa = 1 means "train on everything": serve the loaded dataset
  // directly instead of rebuilding it through the splitter. Besides
  // skipping an O(nnz) copy, this is the path that keeps a mapped
  // --dataset-cache zero-copy — a split rebuild would materialize the
  // whole thing eagerly.
  RatingDataset train;
  if (*kappa == 1.0) {
    train = std::move(*dataset);
  } else {
    Result<TrainTestSplit> split = PerUserRatioSplit(
        *dataset,
        {.train_ratio = *kappa, .seed = static_cast<uint64_t>(*seed)});
    if (!split.ok()) {
      std::fprintf(stderr, "split: %s\n", split.status().ToString().c_str());
      return 1;
    }
    train = std::move(split->train);
  }

  ServiceConfig config;
  config.num_workers = static_cast<int>(*workers);
  config.max_batch_wait_us = static_cast<int>(*batch_wait);
  config.cache_capacity = static_cast<size_t>(*cache_capacity);
  config.micro_batching = !flags.GetBool("unbatched", false);
  config.default_n = static_cast<int>(*default_n);
  Result<FactorPrecision> precision = ParseFactorPrecision(
      flags.GetString("factor-precision", "fp64"));
  if (!precision.ok()) {
    std::fprintf(stderr, "%s\n", precision.status().ToString().c_str());
    return 2;
  }
  config.factor_precision = *precision;
  config.mmap_artifacts = flags.GetBool("mmap", true);

  const SnapshotKind kind =
      model_path.empty() ? SnapshotKind::kPipeline : SnapshotKind::kModel;
  const std::string& artifact_path =
      model_path.empty() ? pipeline_path : model_path;

  InstallStopHandlers();

  WallTimer up_timer;
  Server server;
  if (multiprocess) {
    Result<std::unique_ptr<ProcessRouter>> procs = ProcessRouter::Spawn(
        ChildArgs(flags), static_cast<size_t>(*num_shards),
        train.num_users());
    if (!procs.ok()) {
      std::fprintf(stderr, "spawn: %s\n", procs.status().ToString().c_str());
      return 1;
    }
    server.procs = std::move(procs).value();
    for (size_t k = 0; k < server.procs->num_shards(); ++k) {
      std::fprintf(stderr, "router: %s\n",
                   server.procs->ready_info(k).c_str());
    }
  } else if (!shard_flag.empty()) {
    Result<std::unique_ptr<ServiceShard>> shard =
        ServiceShard::Load(kind, artifact_path, train, child_spec, config);
    if (!shard.ok()) {
      std::fprintf(stderr, "snapshot: %s\n",
                   shard.status().ToString().c_str());
      return 1;
    }
    server.child = std::move(shard).value();
  } else {
    Result<std::unique_ptr<ShardRouter>> router =
        ShardRouter::Load(kind, artifact_path, train,
                          static_cast<size_t>(*num_shards), config);
    if (!router.ok()) {
      std::fprintf(stderr, "snapshot: %s\n",
                   router.status().ToString().c_str());
      return 1;
    }
    server.router = std::move(router).value();
  }

  const std::string store_path = flags.GetString("store", "");
  if (!store_path.empty() && server.local()) {
    Result<TopNStore> store =
        TopNStore::LoadFileAuto(store_path, config.mmap_artifacts);
    if (!store.ok()) {
      std::fprintf(stderr, "store: %s\n", store.status().ToString().c_str());
      return 1;
    }
    auto shared = std::make_shared<const TopNStore>(std::move(store).value());
    const Status attached = server.child ? server.child->AttachStore(shared)
                                         : server.router->AttachStore(shared);
    if (!attached.ok()) {
      std::fprintf(stderr, "store: %s\n", attached.ToString().c_str());
      return 1;
    }
  }

  if (server.local()) {
    std::fprintf(
        stderr,
        "serving %s (%s, snapshot v%llu) in %.1f ms; %d users, %d items\n",
        server.source().c_str(),
        server.child
            ? ("shard " + std::to_string(server.child->spec().index) + "/" +
               std::to_string(server.child->spec().num_shards))
                  .c_str()
            : (std::to_string(server.router->num_shards()) + " shard(s)")
                  .c_str(),
        static_cast<unsigned long long>(server.version()),
        up_timer.ElapsedMillis(), server.num_users(), server.num_items());
  } else {
    std::fprintf(stderr, "routing %d users across %zu shard processes\n",
                 server.procs->num_users(), server.procs->num_shards());
  }

  if (flags.GetBool("watch", false)) {
    server.watcher = std::make_unique<ArtifactWatcher>(
        artifact_path,
        [&server](const std::string& path) {
          uint64_t max_v = 0;
          const Status s = PublishPath(server, path, &max_v);
          if (s.ok()) {
            std::fprintf(stderr, "watch: published %s (version %llu)\n",
                         path.c_str(),
                         static_cast<unsigned long long>(max_v));
          } else {
            std::fprintf(stderr, "watch: rejected %s: %s\n", path.c_str(),
                         s.ToString().c_str());
          }
          return s;
        },
        static_cast<int>(*watch_interval));
    server.watcher->Start();
  }

  const bool daemon = flags.GetBool("daemon", false);
  if (daemon && *port_flag < 0) {
    std::fprintf(stderr, "--daemon requires --port\n");
    return 2;
  }
  Listener listener;
  if (*port_flag >= 0) {
    Result<int> bound = StartListener(listener, server,
                                      static_cast<int>(*port_flag));
    if (!bound.ok()) {
      std::fprintf(stderr, "listen: %s\n", bound.status().ToString().c_str());
      return 1;
    }
    std::printf("LISTENING port=%d\n", *bound);
    std::fflush(stdout);
  }

  // Child shards announce readiness on stdout — the parent router (and
  // the subprocess tests) block on this line before sending traffic.
  if (server.child) {
    const ShardSpec spec = server.child->spec();
    std::printf("READY shard=%zu/%zu version=%llu source=%s\n", spec.index,
                spec.num_shards,
                static_cast<unsigned long long>(server.version()),
                server.source().c_str());
    std::fflush(stdout);
  }

  // stdin loop on the main thread.
  char* line = nullptr;
  size_t cap = 0;
  ssize_t len;
  bool quit = false;
  while (!quit && g_stop_requested == 0 &&
         (len = getline(&line, &cap, stdin)) != -1) {
    while (len > 0 && (line[len - 1] == '\n' || line[len - 1] == '\r')) {
      line[--len] = '\0';
    }
    const std::string response = HandleRequest(
        server, std::string(line, static_cast<size_t>(len)), &quit);
    std::printf("%s\n", response.c_str());
    std::fflush(stdout);
  }
  free(line);

  // Daemon mode (--daemon): stdin EOF does not stop the TCP listener —
  // the launch environment may close stdin outright (systemd,
  // containers) — serving continues until SIGINT/SIGTERM. A stdin QUIT
  // still shuts down immediately, and without --daemon EOF keeps its
  // pipe-friendly meaning: drain requests, shut down.
  if (!quit && daemon && listener.fd >= 0) {
    while (g_stop_requested == 0) {
      if (g_stop_pipe[0] >= 0) {
        pollfd pfd{g_stop_pipe[0], POLLIN, 0};
        poll(&pfd, 1, 500);
      } else {
        const timespec tick{0, 100 * 1000 * 1000};  // 100 ms
        nanosleep(&tick, nullptr);
      }
    }
  }

  if (server.watcher) server.watcher->Stop();
  StopListener(listener);
  // Metrics first: the shutdown report scrapes child processes, so they
  // must still be running here.
  DumpStats(server, up_timer.ElapsedMillis());
  if (server.procs) server.procs->Stop();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<std::string> known = {
      "dataset",        "ratings-file", "delimiter",   "skip-header",
      "dataset-cache",  "kappa",        "seed",        "model",
      "pipeline",       "store",        "port",        "workers",
      "batch-wait-us",  "cache-capacity", "default-n", "unbatched",
      "factor-precision", "daemon",     "mmap",        "shards",
      "multiprocess",   "shard",        "watch",       "watch-interval-ms",
      "help"};
  Result<Flags> flags = Flags::Parse(argc, argv, known);
  if (!flags.ok()) {
    std::fprintf(stderr, "%s\n", flags.status().ToString().c_str());
    Usage();
    return 2;
  }
  if (flags->GetBool("help", false)) {
    Usage();
    return 0;
  }
  if (!flags->positional().empty()) {
    std::fprintf(stderr, "ganc_serve takes no positional arguments\n");
    Usage();
    return 2;
  }
  return Run(*flags);
}
