// Sampled ("1 + k negatives") ranking evaluation — the leave-one-out
// protocol common in the implicit-feedback literature, provided as a
// third protocol besides all-unrated and rated-test-items. For each test
// positive, the model ranks it against `num_negatives` sampled unseen
// items; hit rate and NDCG at N are averaged over test positives.
//
// Like the rated-test protocol, this is a *biased* but cheap estimate;
// the all-unrated protocol remains the paper-faithful default.

#ifndef GANC_EVAL_SAMPLED_RANKING_H_
#define GANC_EVAL_SAMPLED_RANKING_H_

#include <cstdint>

#include "data/dataset.h"
#include "recommender/recommender.h"
#include "util/status.h"

namespace ganc {

/// Options for EvaluateSampledRanking.
struct SampledRankingOptions {
  int top_n = 10;
  int num_negatives = 99;
  /// Cap on evaluated test positives (0 = all), for large test sets.
  int64_t max_positives = 0;
  uint64_t seed = 61;
};

/// HR@N / NDCG@N over sampled candidate sets.
struct SampledRankingReport {
  double hit_rate = 0.0;
  double ndcg = 0.0;
  int64_t evaluated_positives = 0;
};

/// For every (capped) test observation, ranks the positive among
/// num_negatives items unseen in BOTH train and test for that user.
/// Requires a fitted model; scores come from Recommender::ScoreInto
/// through a reused per-user buffer.
Result<SampledRankingReport> EvaluateSampledRanking(
    const Recommender& model, const RatingDataset& train,
    const RatingDataset& test, const SampledRankingOptions& options);

}  // namespace ganc

#endif  // GANC_EVAL_SAMPLED_RANKING_H_
