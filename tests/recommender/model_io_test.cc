// Round-trip fidelity suite for the model artifact layer: for every
// recommender, save -> load must reproduce bit-identical ScoreBatchInto
// output and top-N lists, and corrupt / truncated / wrong-version /
// wrong-type artifacts must be rejected with an error, never loaded.

#include "recommender/model_io.h"

#include <bit>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "recommender/bpr.h"
#include "recommender/cofirank.h"
#include "recommender/item_knn.h"
#include "recommender/pop.h"
#include "recommender/psvd.h"
#include "recommender/random_rec.h"
#include "recommender/random_walk.h"
#include "recommender/rsvd.h"
#include "recommender/scoring_context.h"
#include "recommender/user_knn.h"

namespace ganc {
namespace {

RatingDataset MakeData(int32_t num_users = 80, int32_t num_items = 150,
                       uint64_t seed = 0) {
  SyntheticSpec spec = TinySpec();
  spec.num_users = num_users;
  spec.num_items = num_items;
  spec.mean_activity = 18.0;
  if (seed != 0) spec.seed = seed;
  auto ds = GenerateSynthetic(spec);
  EXPECT_TRUE(ds.ok());
  return std::move(ds).value();
}

struct ModelPair {
  std::unique_ptr<Recommender> fitted;  // Fit() on the train set
  std::unique_ptr<Recommender> fresh;   // default-constructed Load target
};

std::vector<ModelPair> AllModelPairs() {
  std::vector<ModelPair> pairs;
  pairs.push_back({std::make_unique<PopRecommender>(),
                   std::make_unique<PopRecommender>()});
  pairs.push_back({std::make_unique<RandomRecommender>(123),
                   std::make_unique<RandomRecommender>()});
  pairs.push_back({std::make_unique<RandomWalkRecommender>(
                       RandomWalkConfig{.beta = 0.6}),
                   std::make_unique<RandomWalkRecommender>()});
  pairs.push_back({std::make_unique<ItemKnnRecommender>(
                       ItemKnnConfig{.num_neighbors = 12}),
                   std::make_unique<ItemKnnRecommender>()});
  pairs.push_back({std::make_unique<UserKnnRecommender>(
                       UserKnnConfig{.num_neighbors = 12}),
                   std::make_unique<UserKnnRecommender>()});
  pairs.push_back({std::make_unique<PsvdRecommender>(
                       PsvdConfig{.num_factors = 9}),
                   std::make_unique<PsvdRecommender>()});
  pairs.push_back({std::make_unique<RsvdRecommender>(RsvdConfig{
                       .num_factors = 7, .num_epochs = 4, .use_biases = true}),
                   std::make_unique<RsvdRecommender>()});
  pairs.push_back({std::make_unique<BprRecommender>(
                       BprConfig{.num_factors = 6, .num_epochs = 4}),
                   std::make_unique<BprRecommender>()});
  pairs.push_back({std::make_unique<CofiRecommender>(
                       CofiConfig{.num_factors = 6, .num_epochs = 4}),
                   std::make_unique<CofiRecommender>()});
  return pairs;
}

std::string Serialize(const Recommender& model) {
  std::ostringstream os(std::ios::binary);
  EXPECT_TRUE(model.Save(os).ok());
  return os.str();
}

std::vector<double> BatchScores(const Recommender& model,
                                const RatingDataset& train) {
  std::vector<UserId> users(static_cast<size_t>(train.num_users()));
  for (size_t u = 0; u < users.size(); ++u) {
    users[u] = static_cast<UserId>(u);
  }
  std::vector<double> out(users.size() *
                          static_cast<size_t>(model.num_items()));
  model.ScoreBatchInto(users, out);
  return out;
}

void ExpectBitIdentical(const std::vector<double>& a,
                        const std::vector<double>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(std::bit_cast<uint64_t>(a[i]), std::bit_cast<uint64_t>(b[i]))
        << "score " << i << " differs";
  }
}

TEST(ModelIoTest, AllModelsRoundTripBitIdentically) {
  const RatingDataset train = MakeData();
  for (ModelPair& pair : AllModelPairs()) {
    ASSERT_TRUE(pair.fitted->Fit(train).ok()) << pair.fitted->name();
    const std::string artifact = Serialize(*pair.fitted);
    std::istringstream is(artifact, std::ios::binary);
    ASSERT_TRUE(pair.fresh->Load(is, &train).ok()) << pair.fitted->name();

    EXPECT_EQ(pair.fresh->name(), pair.fitted->name());
    EXPECT_EQ(pair.fresh->num_items(), pair.fitted->num_items());
    ExpectBitIdentical(BatchScores(*pair.fitted, train),
                       BatchScores(*pair.fresh, train));
    // Identical scores + shared deterministic selection kernels =>
    // identical top-N lists; assert anyway as the end-to-end contract.
    EXPECT_EQ(RecommendAllUsers(*pair.fitted, train, 10),
              RecommendAllUsers(*pair.fresh, train, 10))
        << pair.fitted->name();
  }
}

TEST(ModelIoTest, FactoryDispatchesEveryModelType) {
  const RatingDataset train = MakeData();
  for (ModelPair& pair : AllModelPairs()) {
    ASSERT_TRUE(pair.fitted->Fit(train).ok());
    std::istringstream is(Serialize(*pair.fitted), std::ios::binary);
    Result<std::unique_ptr<Recommender>> loaded = LoadModel(is, &train);
    ASSERT_TRUE(loaded.ok()) << pair.fitted->name() << ": "
                             << loaded.status().ToString();
    EXPECT_EQ((*loaded)->name(), pair.fitted->name());
    ExpectBitIdentical(BatchScores(*pair.fitted, train),
                       BatchScores(**loaded, train));
  }
}

TEST(ModelIoTest, FileRoundTrip) {
  const RatingDataset train = MakeData();
  PsvdRecommender model(PsvdConfig{.num_factors = 9});
  ASSERT_TRUE(model.Fit(train).ok());
  const std::string path = ::testing::TempDir() + "/ganc_model_io.gam";
  ASSERT_TRUE(SaveModelFile(model, path).ok());
  Result<std::unique_ptr<Recommender>> loaded = LoadModelFile(path, nullptr);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ((*loaded)->name(), "PSVD9");
  ExpectBitIdentical(BatchScores(model, train), BatchScores(**loaded, train));
}

TEST(ModelIoTest, ConfigTravelsWithArtifact) {
  // A loaded model must score and report like the saved one even when
  // the load target was constructed with different hyper-parameters.
  const RatingDataset train = MakeData();
  RsvdRecommender fitted(RsvdConfig{.num_factors = 5, .num_epochs = 3,
                                    .non_negative = true});
  ASSERT_TRUE(fitted.Fit(train).ok());
  RsvdRecommender fresh(RsvdConfig{.num_factors = 50});
  std::istringstream is(Serialize(fitted), std::ios::binary);
  ASSERT_TRUE(fresh.Load(is, nullptr).ok());
  EXPECT_EQ(fresh.name(), "RSVDN");
  EXPECT_EQ(fresh.config().num_factors, 5);
  ExpectBitIdentical(BatchScores(fitted, train), BatchScores(fresh, train));
}

TEST(ModelIoTest, UnfittedModelRefusesToSave) {
  std::ostringstream os(std::ios::binary);
  PopRecommender pop;
  EXPECT_EQ(pop.Save(os).code(), StatusCode::kFailedPrecondition);
  PsvdRecommender psvd;
  EXPECT_EQ(psvd.Save(os).code(), StatusCode::kFailedPrecondition);
}

TEST(ModelIoTest, EveryByteCorruptionIsDetectedOrHarmless) {
  // Flip each byte of a small artifact in turn: the load must either
  // fail cleanly or (for bytes the checksums cover) never pass silently.
  const RatingDataset train = MakeData(20, 30);
  PsvdRecommender model(PsvdConfig{.num_factors = 3});
  ASSERT_TRUE(model.Fit(train).ok());
  const std::string artifact = Serialize(model);
  int failures = 0;
  for (size_t i = 0; i < artifact.size(); ++i) {
    std::string corrupt = artifact;
    corrupt[i] ^= 0x5A;
    std::istringstream is(corrupt, std::ios::binary);
    PsvdRecommender target;
    if (!target.Load(is, nullptr).ok()) ++failures;
  }
  // Every header/payload/checksum byte is load-bearing in this format:
  // all single-byte corruptions must be caught.
  EXPECT_EQ(failures, static_cast<int>(artifact.size()));
}

TEST(ModelIoTest, TruncatedArtifactRejected) {
  const RatingDataset train = MakeData(20, 30);
  BprRecommender model(BprConfig{.num_factors = 3, .num_epochs = 2});
  ASSERT_TRUE(model.Fit(train).ok());
  const std::string artifact = Serialize(model);
  for (const size_t keep : {size_t{0}, size_t{4}, size_t{20}, size_t{40},
                            artifact.size() / 2, artifact.size() - 1}) {
    std::istringstream is(artifact.substr(0, keep), std::ios::binary);
    BprRecommender target;
    EXPECT_FALSE(target.Load(is, nullptr).ok()) << "kept " << keep;
  }
}

TEST(ModelIoTest, WrongVersionRejected) {
  const RatingDataset train = MakeData(20, 30);
  PopRecommender model;
  ASSERT_TRUE(model.Fit(train).ok());
  std::string artifact = Serialize(model);
  artifact[8] = static_cast<char>(kGancFormatVersion + 9);
  std::istringstream is(artifact, std::ios::binary);
  PopRecommender target;
  Status s = target.Load(is, nullptr);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("version"), std::string::npos);
}

TEST(ModelIoTest, WrongModelTypeRejected) {
  const RatingDataset train = MakeData(20, 30);
  PsvdRecommender psvd(PsvdConfig{.num_factors = 3});
  ASSERT_TRUE(psvd.Fit(train).ok());
  std::istringstream is(Serialize(psvd), std::ios::binary);
  RsvdRecommender target;
  Status s = target.Load(is, nullptr);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("type"), std::string::npos);
}

TEST(ModelIoTest, DatasetBackedModelsRequireBinding) {
  const RatingDataset train = MakeData();
  for (auto* name : {"rp3b", "itemknn", "userknn"}) {
    std::unique_ptr<Recommender> fitted;
    std::unique_ptr<Recommender> fresh;
    if (std::string(name) == "rp3b") {
      fitted = std::make_unique<RandomWalkRecommender>();
      fresh = std::make_unique<RandomWalkRecommender>();
    } else if (std::string(name) == "itemknn") {
      fitted = std::make_unique<ItemKnnRecommender>();
      fresh = std::make_unique<ItemKnnRecommender>();
    } else {
      fitted = std::make_unique<UserKnnRecommender>();
      fresh = std::make_unique<UserKnnRecommender>();
    }
    ASSERT_TRUE(fitted->Fit(train).ok());
    const std::string artifact = Serialize(*fitted);
    {
      std::istringstream is(artifact, std::ios::binary);
      EXPECT_EQ(fresh->Load(is, nullptr).code(),
                StatusCode::kFailedPrecondition)
          << name;
    }
    // Binding a dataset with different dimensions must be rejected.
    const RatingDataset other = MakeData(33, 44);
    {
      std::istringstream is(artifact, std::ios::binary);
      EXPECT_FALSE(fresh->Load(is, &other).ok()) << name;
    }
    // Same dimensions but different content (another split of the same
    // corpus shape) must be rejected too — the fingerprint catches it.
    const RatingDataset same_dims = MakeData(80, 150, 555);
    ASSERT_EQ(same_dims.num_users(), train.num_users());
    ASSERT_EQ(same_dims.num_items(), train.num_items());
    {
      std::istringstream is(artifact, std::ios::binary);
      Status s = fresh->Load(is, &same_dims);
      ASSERT_FALSE(s.ok()) << name;
      EXPECT_NE(s.message().find("fingerprint"), std::string::npos) << name;
    }
  }
}

TEST(ModelIoTest, SelfContainedModelsValidateDimsWhenDatasetProvided) {
  // A factor model does not need the dataset to score, but binding one
  // with different dimensions at load time would make downstream loops
  // index factors out of range — Load must refuse it up front.
  const RatingDataset train = MakeData();
  PsvdRecommender psvd(PsvdConfig{.num_factors = 4});
  ASSERT_TRUE(psvd.Fit(train).ok());
  const std::string artifact = Serialize(psvd);
  const RatingDataset more_users = MakeData(120, 150);
  std::istringstream is(artifact, std::ios::binary);
  PsvdRecommender target;
  EXPECT_FALSE(target.Load(is, &more_users).ok());
  // Same shape, different content: caught by the stored fingerprint.
  const RatingDataset same_dims = MakeData(80, 150, 321);
  std::istringstream is3(artifact, std::ios::binary);
  Status s = target.Load(is3, &same_dims);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("fingerprint"), std::string::npos);
  // Matching dataset still loads, as does a datasetless load.
  std::istringstream is2(artifact, std::ios::binary);
  EXPECT_TRUE(target.Load(is2, &train).ok());
  std::istringstream is4(artifact, std::ios::binary);
  EXPECT_TRUE(target.Load(is4, nullptr).ok());
}

TEST(ModelIoTest, MissingFileIsIOError) {
  EXPECT_EQ(LoadModelFile("/nonexistent/model.gam", nullptr).status().code(),
            StatusCode::kIOError);
}

TEST(ModelIoTest, NonModelArtifactRejectedByFactory) {
  const RatingDataset train = MakeData(20, 30);
  std::ostringstream os(std::ios::binary);
  ASSERT_TRUE(train.SaveBinary(os).ok());
  std::istringstream is(os.str(), std::ios::binary);
  Result<std::unique_ptr<Recommender>> loaded = LoadModel(is, &train);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("model"), std::string::npos);
}

}  // namespace
}  // namespace ganc
