#include "util/trace.h"

#include <algorithm>
#include <cstdio>

#include "util/metrics.h"

namespace ganc {

namespace {

// Same mixer the shard router uses for user->shard placement; here it
// decorrelates sequence numbers from the sampling decision so bursts
// don't alias against the period.
uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

const char* TraceStageName(TraceStage stage) {
  switch (stage) {
    case TraceStage::kParse:
      return "parse";
    case TraceStage::kRoute:
      return "route";
    case TraceStage::kCacheProbe:
      return "cache_probe";
    case TraceStage::kStoreProbe:
      return "store_probe";
    case TraceStage::kEnqueue:
      return "enqueue";
    case TraceStage::kScore:
      return "score";
    case TraceStage::kRespond:
      return "respond";
  }
  return "unknown";
}

std::string FormatTraceLine(const RequestTrace& trace) {
  std::string out = "seq=" + std::to_string(trace.seq);
  if (trace.user >= 0) out += " user=" + std::to_string(trace.user);
  if (trace.shard >= 0) out += " shard=" + std::to_string(trace.shard);
  if (trace.version > 0) out += " version=" + std::to_string(trace.version);
  out.push_back(' ');
  out += "outcome=";
  out.push_back(trace.outcome);
  int64_t total = -1;
  for (int i = 0; i < kNumTraceStages; ++i) {
    total = std::max(total, trace.stage_ns[i]);
  }
  if (total >= 0) out += " total_ns=" + std::to_string(total);
  for (int i = 0; i < kNumTraceStages; ++i) {
    if (trace.stage_ns[i] < 0) continue;
    out += " ";
    out += TraceStageName(static_cast<TraceStage>(i));
    out += "=" + std::to_string(trace.stage_ns[i]);
  }
  return out;
}

TraceRing::TraceRing(size_t capacity, uint64_t sample_period, uint64_t seed)
    : capacity_(capacity == 0 ? 1 : capacity),
      sample_period_(sample_period),
      seed_(seed) {
  ring_.resize(capacity_);
}

TraceRing& TraceRing::Global() {
  static TraceRing* ring = new TraceRing(256, 16, 0x6a4c431d2f10ull);
  return *ring;
}

bool TraceRing::ShouldSample(uint64_t seq) const {
  if (sample_period_ == 0) return false;
  if (sample_period_ == 1) return true;
  return SplitMix64(seed_ ^ seq) % sample_period_ == 0;
}

std::unique_ptr<RequestTrace> TraceRing::Begin(uint64_t seq) {
  if (!ShouldSample(seq)) return nullptr;
  auto trace = std::make_unique<RequestTrace>();
  trace->seq = seq;
  trace->start_ns = MonotonicNowNs();
  return trace;
}

void TraceRing::Commit(std::unique_ptr<RequestTrace> trace) {
  if (trace == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  ring_[next_] = *trace;
  next_ = (next_ + 1) % capacity_;
  ++committed_;
}

std::vector<RequestTrace> TraceRing::MostRecent(size_t n) const {
  std::lock_guard<std::mutex> lock(mu_);
  const size_t stored = committed_ < capacity_
                            ? static_cast<size_t>(committed_)
                            : capacity_;
  const size_t count = std::min(n, stored);
  std::vector<RequestTrace> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    // next_ points at the oldest slot once the ring has wrapped; walk
    // backwards from the most recently written slot.
    const size_t slot = (next_ + capacity_ - 1 - i) % capacity_;
    out.push_back(ring_[slot]);
  }
  return out;
}

}  // namespace ganc
