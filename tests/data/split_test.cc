#include "data/split.h"

#include <cmath>

#include <gtest/gtest.h>

#include "data/synthetic.h"

namespace ganc {
namespace {

RatingDataset MakeUniform(int32_t users, int32_t items_per_user,
                          int32_t items) {
  RatingDatasetBuilder b(users, items);
  for (UserId u = 0; u < users; ++u) {
    for (int32_t k = 0; k < items_per_user; ++k) {
      EXPECT_TRUE(b.Add(u, (u + k * 7) % items, 4.0f).ok());
    }
  }
  auto ds = std::move(b).Build();
  EXPECT_TRUE(ds.ok());
  return std::move(ds).value();
}

TEST(PerUserRatioSplitTest, KeepsRatioPerUser) {
  const RatingDataset ds = MakeUniform(20, 10, 101);
  auto split = PerUserRatioSplit(ds, {.train_ratio = 0.8, .seed = 1});
  ASSERT_TRUE(split.ok());
  for (UserId u = 0; u < 20; ++u) {
    EXPECT_EQ(split->train.Activity(u), 8);
    EXPECT_EQ(split->test.Activity(u), 2);
  }
}

TEST(PerUserRatioSplitTest, InfrequentUserKeepsMostInTrain) {
  // Paper: a 5-rating user at kappa = 0.8 keeps 4 train / 1 test.
  RatingDatasetBuilder b(1, 10);
  for (ItemId i = 0; i < 5; ++i) ASSERT_TRUE(b.Add(0, i, 3.0f).ok());
  auto ds = std::move(b).Build();
  ASSERT_TRUE(ds.ok());
  auto split = PerUserRatioSplit(*ds, {.train_ratio = 0.8, .seed = 2});
  ASSERT_TRUE(split.ok());
  EXPECT_EQ(split->train.Activity(0), 4);
  EXPECT_EQ(split->test.Activity(0), 1);
}

TEST(PerUserRatioSplitTest, DisjointAndComplete) {
  const RatingDataset ds = MakeUniform(10, 8, 53);
  auto split = PerUserRatioSplit(ds, {.train_ratio = 0.5, .seed = 3});
  ASSERT_TRUE(split.ok());
  EXPECT_EQ(split->train.num_ratings() + split->test.num_ratings(),
            ds.num_ratings());
  for (const Rating& r : split->test.ratings()) {
    EXPECT_FALSE(split->train.HasRating(r.user, r.item));
    EXPECT_TRUE(ds.HasRating(r.user, r.item));
  }
}

TEST(PerUserRatioSplitTest, MinTrainPerUserRespected) {
  RatingDatasetBuilder b(1, 10);
  ASSERT_TRUE(b.Add(0, 0, 3.0f).ok());
  ASSERT_TRUE(b.Add(0, 1, 3.0f).ok());
  auto ds = std::move(b).Build();
  ASSERT_TRUE(ds.ok());
  auto split = PerUserRatioSplit(
      *ds, {.train_ratio = 0.1, .min_train_per_user = 1, .seed = 4});
  ASSERT_TRUE(split.ok());
  EXPECT_GE(split->train.Activity(0), 1);
}

TEST(PerUserRatioSplitTest, DeterministicPerSeed) {
  const RatingDataset ds = MakeUniform(15, 10, 71);
  auto a = PerUserRatioSplit(ds, {.train_ratio = 0.5, .seed = 5});
  auto b = PerUserRatioSplit(ds, {.train_ratio = 0.5, .seed = 5});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (UserId u = 0; u < 15; ++u) {
    EXPECT_EQ(a->train.ItemsOf(u).size(), b->train.ItemsOf(u).size());
    for (size_t k = 0; k < a->train.ItemsOf(u).size(); ++k) {
      EXPECT_EQ(a->train.ItemsOf(u)[k].item, b->train.ItemsOf(u)[k].item);
    }
  }
}

TEST(PerUserRatioSplitTest, InvalidRatioRejected) {
  const RatingDataset ds = MakeUniform(2, 3, 11);
  EXPECT_FALSE(PerUserRatioSplit(ds, {.train_ratio = 0.0}).ok());
  EXPECT_FALSE(PerUserRatioSplit(ds, {.train_ratio = 1.5}).ok());
}

TEST(FilterInfrequentUsersTest, DropsBelowThreshold) {
  RatingDatasetBuilder b(3, 5);
  for (ItemId i = 0; i < 5; ++i) ASSERT_TRUE(b.Add(0, i, 3.0f).ok());
  ASSERT_TRUE(b.Add(1, 0, 3.0f).ok());
  for (ItemId i = 0; i < 4; ++i) ASSERT_TRUE(b.Add(2, i, 3.0f).ok());
  auto ds = std::move(b).Build();
  ASSERT_TRUE(ds.ok());
  auto filtered = FilterInfrequentUsers(*ds, 4);
  ASSERT_TRUE(filtered.ok());
  EXPECT_EQ(filtered->num_users(), 2);  // user 1 dropped
  EXPECT_EQ(filtered->num_ratings(), 9);
}

TEST(FilterInfrequentUsersTest, ReindexesItems) {
  RatingDatasetBuilder b(2, 10);
  ASSERT_TRUE(b.Add(0, 9, 3.0f).ok());
  ASSERT_TRUE(b.Add(0, 5, 3.0f).ok());
  ASSERT_TRUE(b.Add(1, 0, 3.0f).ok());  // will be filtered (activity 1 < 2)
  auto ds = std::move(b).Build();
  ASSERT_TRUE(ds.ok());
  auto filtered = FilterInfrequentUsers(*ds, 2);
  ASSERT_TRUE(filtered.ok());
  EXPECT_EQ(filtered->num_users(), 1);
  EXPECT_EQ(filtered->num_items(), 2);  // items 5 and 9 remapped densely
}

TEST(FilterInfrequentUsersTest, ZeroThresholdKeepsAll) {
  const RatingDataset ds = MakeUniform(5, 3, 17);
  auto filtered = FilterInfrequentUsers(ds, 0);
  ASSERT_TRUE(filtered.ok());
  EXPECT_EQ(filtered->num_users(), 5);
  EXPECT_EQ(filtered->num_ratings(), ds.num_ratings());
}

TEST(HoldoutSplitTest, MaskControlsMembership) {
  const RatingDataset ds = MakeUniform(4, 5, 23);
  std::vector<bool> mask(static_cast<size_t>(ds.num_ratings()), false);
  mask[0] = mask[1] = true;
  auto split = HoldoutSplit(ds, mask);
  ASSERT_TRUE(split.ok());
  EXPECT_EQ(split->test.num_ratings() + split->train.num_ratings(),
            ds.num_ratings());
  EXPECT_LE(split->test.num_ratings(), 2);
}

TEST(HoldoutSplitTest, DropsProbeOfUnseenUser) {
  // User 1's only rating goes to test -> user 1 absent from train -> the
  // probe rating must be dropped (paper's Netflix probe rule).
  RatingDatasetBuilder b(2, 3);
  ASSERT_TRUE(b.Add(0, 0, 3.0f).ok());
  ASSERT_TRUE(b.Add(0, 1, 3.0f).ok());
  ASSERT_TRUE(b.Add(1, 2, 3.0f).ok());
  auto ds = std::move(b).Build();
  ASSERT_TRUE(ds.ok());
  std::vector<bool> mask{false, false, true};
  auto split = HoldoutSplit(*ds, mask);
  ASSERT_TRUE(split.ok());
  EXPECT_EQ(split->test.num_ratings(), 0);
}

TEST(HoldoutSplitTest, WrongMaskSizeRejected) {
  const RatingDataset ds = MakeUniform(2, 2, 11);
  EXPECT_FALSE(HoldoutSplit(ds, std::vector<bool>(3, false)).ok());
}

TEST(SplitOnSyntheticTest, PaperKappaBehaviour) {
  auto ds = GenerateSynthetic(TinySpec());
  ASSERT_TRUE(ds.ok());
  auto split = PerUserRatioSplit(*ds, {.train_ratio = 0.5, .seed = 6});
  ASSERT_TRUE(split.ok());
  for (UserId u = 0; u < ds->num_users(); ++u) {
    const double n = static_cast<double>(ds->Activity(u));
    EXPECT_NEAR(split->train.Activity(u), std::llround(0.5 * n), 1.0);
  }
}

}  // namespace
}  // namespace ganc
