#include "rerank/mmr.h"

#include <algorithm>
#include <span>

#include "recommender/scoring_context.h"
#include "util/csv.h"
#include "util/stats.h"
#include "util/top_k.h"

namespace ganc {

MmrReranker::MmrReranker(const Recommender* base, const RatingDataset* train,
                         MmrConfig config)
    : base_(base),
      config_(config),
      index_(*train, config.num_neighbors, config.max_profile, config.seed) {}

std::string MmrReranker::name() const {
  return "MMR(" + base_->name() + ", " + FormatDouble(config_.lambda, 1) + ")";
}

Result<RerankedCollection> MmrReranker::RecommendAll(
    const RatingDataset& train, int top_n) const {
  if (top_n <= 0) return Status::InvalidArgument("top_n must be positive");
  if (config_.lambda < 0.0 || config_.lambda > 1.0) {
    return Status::InvalidArgument("lambda must lie in [0, 1]");
  }
  RerankedCollection result(static_cast<size_t>(train.num_users()));

  // One scoring context amortizes every per-user buffer across the loop:
  // batched base scores, candidate ids, the top-k pool, relevance,
  // taken-flags.
  ScoringContext ctx;
  ForEachScoredUser(*base_, 0, static_cast<size_t>(train.num_users()), ctx,
                    [&](UserId u, std::span<const double> scores) {
    // Candidate pool: head of the base ranking, with normalized relevance.
    // Selecting from the dense score row keeps the base scores on hand
    // for the relevance term (the legacy path scored the user twice).
    train.UnratedItemsInto(u, &ctx.Candidates());
    std::vector<ScoredItem>& pool = ctx.TopK();
    SelectTopKFromScoresInto(
        scores, ctx.Candidates(),
        static_cast<size_t>(top_n) * static_cast<size_t>(config_.pool_multiple),
        &pool);
    const std::span<double> rel = ctx.Buffer(1, pool.size());
    for (size_t c = 0; c < pool.size(); ++c) rel[c] = pool[c].score;
    MinMaxNormalize(rel);

    std::vector<uint8_t>& taken = ctx.Flags();
    taken.assign(pool.size(), 0);
    auto& out = result[static_cast<size_t>(u)];
    out.reserve(static_cast<size_t>(top_n));
    while (static_cast<int>(out.size()) < top_n && out.size() < pool.size()) {
      double best = -1e300;
      size_t best_idx = 0;
      bool found = false;
      for (size_t c = 0; c < pool.size(); ++c) {
        if (taken[c]) continue;
        double max_sim = 0.0;
        for (ItemId chosen : out) {
          max_sim = std::max(
              max_sim,
              static_cast<double>(index_.Similarity(pool[c].item, chosen)));
        }
        const double mmr =
            config_.lambda * rel[c] - (1.0 - config_.lambda) * max_sim;
        if (!found || mmr > best ||
            (mmr == best && pool[c].item < pool[best_idx].item)) {
          best = mmr;
          best_idx = c;
          found = true;
        }
      }
      if (!found) break;
      taken[best_idx] = 1;
      out.push_back(pool[best_idx].item);
    }
  });
  return result;
}

double MmrReranker::IntraListSimilarity(const RerankedCollection& topn) const {
  double acc = 0.0;
  int64_t lists = 0;
  for (const auto& list : topn) {
    if (list.size() < 2) continue;
    double pair_acc = 0.0;
    int64_t pairs = 0;
    for (size_t a = 0; a < list.size(); ++a) {
      for (size_t b = a + 1; b < list.size(); ++b) {
        pair_acc += static_cast<double>(index_.Similarity(list[a], list[b]));
        ++pairs;
      }
    }
    acc += pair_acc / static_cast<double>(pairs);
    ++lists;
  }
  return lists > 0 ? acc / static_cast<double>(lists) : 0.0;
}

}  // namespace ganc
