// Serving demo: the full online-layer lifecycle in one process.
//
//   build/example_serving_demo
//
// Trains a PSVD model, persists it, brings it back as a serving
// snapshot through RecommendationService::LoadModelService, and then
// exercises every request path:
//   1. parity — concurrent micro-batched requests against the offline
//      RecommendAllUsers reference (exits non-zero on any mismatch, so
//      CI can run this binary as a check),
//   2. a precomputed top-N store for the most active users,
//   3. a session overlay masking freshly consumed items, and
//   4. the serving counters.

#include <cstdio>
#include <thread>
#include <vector>

#include "data/split.h"
#include "data/synthetic.h"
#include "recommender/model_io.h"
#include "recommender/psvd.h"
#include "recommender/recommender.h"
#include "serve/recommendation_service.h"
#include "serve/session_overlay.h"
#include "serve/topn_store.h"

using namespace ganc;

int main() {
  // 1. Offline: data, split, fit, persist — the part a training job runs.
  SyntheticSpec spec = TinySpec();
  spec.num_users = 120;
  spec.num_items = 300;
  spec.mean_activity = 25.0;
  auto dataset = GenerateSynthetic(spec);
  if (!dataset.ok()) {
    std::fprintf(stderr, "generate: %s\n",
                 dataset.status().ToString().c_str());
    return 1;
  }
  auto split = PerUserRatioSplit(*dataset, {.train_ratio = 0.5, .seed = 42});
  if (!split.ok()) {
    std::fprintf(stderr, "split: %s\n", split.status().ToString().c_str());
    return 1;
  }
  const RatingDataset& train = split->train;
  PsvdRecommender model(PsvdConfig{.num_factors = 16});
  if (Status s = model.Fit(train); !s.ok()) {
    std::fprintf(stderr, "fit: %s\n", s.ToString().c_str());
    return 1;
  }
  // CWD-relative so concurrent runs (parallel CI jobs, shared hosts)
  // don't collide on one /tmp path.
  const std::string artifact = "serving_demo_psvd16.gam";
  if (Status s = SaveModelFile(model, artifact); !s.ok()) {
    std::fprintf(stderr, "save: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("offline: trained %s on %d users x %d items, saved to %s\n",
              model.name().c_str(), train.num_users(), train.num_items(),
              artifact.c_str());

  // 2. Online: load the artifact as an immutable serving snapshot.
  ServiceConfig config;
  config.num_workers = 2;
  config.cache_capacity = 1024;
  config.default_n = 10;
  auto service =
      RecommendationService::LoadModelService(artifact, train, config);
  if (!service.ok()) {
    std::fprintf(stderr, "snapshot: %s\n",
                 service.status().ToString().c_str());
    return 1;
  }
  std::printf("online: serving %s, snapshot v%llu, micro-batched\n",
              (*service)->source().c_str(),
              static_cast<unsigned long long>(
                  (*service)->snapshot_version()));

  // 3. Parity under concurrency: every served list must equal the
  //    offline reference bit-for-bit, no matter how requests interleave.
  constexpr int kN = 10;
  const std::vector<std::vector<ItemId>> offline =
      RecommendAllUsers(model, train, kN);
  std::vector<std::thread> clients;
  std::vector<int> mismatches(4, 0);
  for (int t = 0; t < 4; ++t) {
    clients.emplace_back([&, t] {
      std::vector<ItemId> out;
      for (int32_t step = 0; step < train.num_users(); ++step) {
        const UserId u =
            static_cast<UserId>((step * (t + 2) + t * 17) %
                                train.num_users());
        if (!(*service)->TopNInto(u, kN, {}, &out).ok() ||
            out != offline[static_cast<size_t>(u)]) {
          ++mismatches[static_cast<size_t>(t)];
        }
      }
    });
  }
  for (std::thread& c : clients) c.join();
  int total_mismatches = 0;
  for (const int m : mismatches) total_mismatches += m;
  if (total_mismatches != 0) {
    std::fprintf(stderr, "parity FAILED: %d served lists differ\n",
                 total_mismatches);
    return 1;
  }
  std::printf("parity: 4 concurrent clients x %d users, all lists "
              "bit-identical to offline RecommendAllUsers\n",
              train.num_users());

  // 4. Precompute the head users' lists and attach the store.
  const std::vector<UserId> head = HeadUsersByActivity(train, 30);
  auto store = (*service)->BuildStore(head, kN);
  if (!store.ok()) {
    std::fprintf(stderr, "store: %s\n", store.status().ToString().c_str());
    return 1;
  }
  if (Status s = (*service)->AttachStore(std::make_shared<const TopNStore>(
          std::move(store).value()));
      !s.ok()) {
    std::fprintf(stderr, "attach: %s\n", s.ToString().c_str());
    return 1;
  }
  const UserId hot = head[0];
  // Ask for a prefix length no earlier request used: the result cache
  // misses, so this request is really answered by the store (a stored
  // list is best-first, so its prefix is exact).
  constexpr int kPrefixN = kN - 2;
  auto from_store = (*service)->TopN(hot, kPrefixN);
  const std::vector<ItemId> want_prefix(
      offline[static_cast<size_t>(hot)].begin(),
      offline[static_cast<size_t>(hot)].begin() + kPrefixN);
  if (!from_store.ok() || *from_store != want_prefix ||
      (*service)->stats().store_hits == 0) {
    std::fprintf(stderr, "store parity FAILED for user %d\n", hot);
    return 1;
  }
  std::printf("store: %zu head-user lists precomputed; user %d's top-%d now "
              "served from the flat store, still bit-identical\n",
              head.size(), hot, kPrefixN);

  // 5. Session overlay: consuming the top two items masks them from the
  //    next request without touching the snapshot.
  SessionOverlay session;
  session.MarkConsumed(hot, std::span<const ItemId>(from_store->data(), 2));
  auto masked = (*service)->TopN(hot, kN, session.ConsumedOf(hot));
  if (!masked.ok()) {
    std::fprintf(stderr, "overlay: %s\n",
                 masked.status().ToString().c_str());
    return 1;
  }
  for (const ItemId consumed : session.ConsumedOf(hot)) {
    for (const ItemId i : *masked) {
      if (i == consumed) {
        std::fprintf(stderr, "overlay FAILED: consumed item %d served\n",
                     consumed);
        return 1;
      }
    }
  }
  std::printf("session: consumed {%d, %d} -> next list starts at item %d "
              "(deltas applied at request time, no retraining)\n",
              (*from_store)[0], (*from_store)[1], (*masked)[0]);

  // 6. Counters.
  const ServeStats stats = (*service)->stats();
  std::printf("stats: %llu requests | %llu cache hits | %llu store hits | "
              "%llu live in %llu batches (mean fill %.2f) | "
              "mean latency %.1f us\n",
              static_cast<unsigned long long>(stats.requests),
              static_cast<unsigned long long>(stats.cache_hits),
              static_cast<unsigned long long>(stats.store_hits),
              static_cast<unsigned long long>(stats.live_scored),
              static_cast<unsigned long long>(stats.batches),
              stats.MeanBatchFill(), stats.MeanLatencyUs());
  std::printf("serving demo finished OK\n");
  return 0;
}
