// AVX-512 kernel variant: the full 8-user lane block as a single
// __m512d accumulator (fp64); fp32 and int8 reuse the 256-bit shapes
// (8 float lanes / 8 int32 madd lanes already fill one ymm — going to
// zmm there would halve the block's register chains, not widen them).
// Compiled with -mavx512f -mavx512bw -mavx512vl -ffp-contract=off and
// no -mfma (CMakeLists.txt) to preserve fp64 bit-identity.

#include "recommender/factor_kernels_impl.h"

#if defined(__AVX512F__) && defined(__AVX512BW__) && defined(__AVX512VL__)

#include <immintrin.h>

namespace ganc {
namespace internal {
namespace {

struct Avx512Traits {
  using F64 = __m512d;
  static constexpr size_t kRegsF64 = 1;
  static constexpr size_t kLanesF64 = 8;
  static F64 LoadF64(const double* p) { return _mm512_load_pd(p); }
  static void StoreF64(double* p, F64 v) { _mm512_store_pd(p, v); }
  static F64 BroadcastF64(double x) { return _mm512_set1_pd(x); }
  static F64 AddF64(F64 a, F64 b) { return _mm512_add_pd(a, b); }
  static F64 MulAddF64(F64 acc, F64 a, F64 b) {
    return _mm512_add_pd(acc, _mm512_mul_pd(a, b));
  }
  static F64 ZeroF64() { return _mm512_setzero_pd(); }

  using F32 = __m256;
  static constexpr size_t kRegsF32 = 1;
  static constexpr size_t kLanesF32 = 8;
  static F32 LoadF32(const float* p) { return _mm256_load_ps(p); }
  static void StoreF32(float* p, F32 v) { _mm256_store_ps(p, v); }
  static F32 BroadcastF32(float x) { return _mm256_set1_ps(x); }
  static F32 AddF32(F32 a, F32 b) { return _mm256_add_ps(a, b); }
  static F32 MulAddF32(F32 acc, F32 a, F32 b) {
    return _mm256_add_ps(acc, _mm256_mul_ps(a, b));
  }
  static F32 ZeroF32() { return _mm256_setzero_ps(); }

  using I32 = __m256i;
  static constexpr size_t kRegsI32 = 1;
  static constexpr size_t kI16PerReg = 16;
  static I32 ZeroI32() { return _mm256_setzero_si256(); }
  static I32 BroadcastPair(int32_t pair) { return _mm256_set1_epi32(pair); }
  static I32 MaddAcc(I32 acc, const int16_t* pack, I32 pair) {
    return _mm256_add_epi32(
        acc,
        _mm256_madd_epi16(
            _mm256_load_si256(reinterpret_cast<const __m256i*>(pack)), pair));
  }
  static void StoreI32(int32_t* p, I32 v) {
    _mm256_store_si256(reinterpret_cast<__m256i*>(p), v);
  }
};

}  // namespace

const KernelOps& Avx512KernelOps() {
  static const KernelOps ops{&DispatchF64<Avx512Traits>,
                             &DispatchF32<Avx512Traits>,
                             &DispatchI8<Avx512Traits>};
  return ops;
}

bool Avx512KernelCompiled() { return true; }

}  // namespace internal
}  // namespace ganc

#else  // no AVX-512 at compile time

namespace ganc {
namespace internal {

const KernelOps& Avx512KernelOps() { return ScalarKernelOps(); }
bool Avx512KernelCompiled() { return false; }

}  // namespace internal
}  // namespace ganc

#endif
