// Read-only memory mapping of a whole file, the substrate of the
// out-of-core artifact path: mapped artifacts are paged in on demand by
// the kernel, so cold-start cost is proportional to the bytes actually
// touched instead of the file size, and clean pages can be evicted
// under memory pressure without any bookkeeping here.
//
// On platforms without mmap (or when the build opts out) Map() returns
// kNotImplemented and callers fall back to the validating stream
// reader, which stays the portable path.

#ifndef GANC_UTIL_MMAP_REGION_H_
#define GANC_UTIL_MMAP_REGION_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>

#include "util/status.h"

namespace ganc {

/// RAII read-only mapping of an entire file. Move-only; the mapping is
/// released in the destructor. The mapped bytes are immutable for the
/// lifetime of the region (PROT_READ); writers that replace an artifact
/// must write a new file, never mutate one in place.
class MmapRegion {
 public:
  /// Maps `path` read-only. Returns kNotImplemented when the platform
  /// has no mmap support (the caller's cue to fall back to streams),
  /// kIOError when the file cannot be opened/mapped.
  static Result<MmapRegion> Map(const std::string& path);

  /// True when this build can memory-map files at all.
  static bool Supported();

  MmapRegion() = default;
  MmapRegion(MmapRegion&& other) noexcept { *this = std::move(other); }
  MmapRegion& operator=(MmapRegion&& other) noexcept;
  MmapRegion(const MmapRegion&) = delete;
  MmapRegion& operator=(const MmapRegion&) = delete;
  ~MmapRegion() { Reset(); }

  const char* data() const { return static_cast<const char*>(addr_); }
  size_t size() const { return size_; }
  std::string_view bytes() const { return {data(), size_}; }
  bool valid() const { return addr_ != nullptr; }

 private:
  void Reset();

  void* addr_ = nullptr;
  size_t size_ = 0;
};

/// Drops the resident pages of `[p, p + len)` back to the kernel. The
/// range MUST lie inside a read-only file mapping (MmapRegion): for a
/// private file mapping MADV_DONTNEED simply discards the clean pages,
/// which refault from the page cache on the next touch — this is how
/// chunked sweeps keep a bounded RSS over datasets larger than memory.
/// Never pass heap memory (there DONTNEED would zero live data). The
/// range is shrunk inward to whole pages; a sub-page range is a no-op,
/// as is any call on a platform without mmap. Advisory: failures are
/// ignored.
void ReleaseMappedPages(const void* p, size_t len);

}  // namespace ganc

#endif  // GANC_UTIL_MMAP_REGION_H_
