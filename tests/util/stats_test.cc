#include "util/stats.h"

#include <cmath>

#include <gtest/gtest.h>

namespace ganc {
namespace {

TEST(MeanTest, Basic) {
  EXPECT_DOUBLE_EQ(Mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Mean({5.0}), 5.0);
}

TEST(VarianceTest, UnbiasedSample) {
  EXPECT_DOUBLE_EQ(Variance({1.0, 2.0, 3.0}), 1.0);
  EXPECT_DOUBLE_EQ(Variance({4.0}), 0.0);
  EXPECT_DOUBLE_EQ(Variance({}), 0.0);
}

TEST(StddevTest, Basic) {
  EXPECT_DOUBLE_EQ(Stddev({1.0, 2.0, 3.0}), 1.0);
}

TEST(MinMaxTest, Basic) {
  EXPECT_DOUBLE_EQ(Min({3.0, -1.0, 2.0}), -1.0);
  EXPECT_DOUBLE_EQ(Max({3.0, -1.0, 2.0}), 3.0);
}

TEST(QuantileTest, MedianAndExtremes) {
  std::vector<double> x{5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(Quantile(x, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(Quantile(x, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(x, 1.0), 5.0);
}

TEST(QuantileTest, Interpolates) {
  std::vector<double> x{0.0, 10.0};
  EXPECT_DOUBLE_EQ(Quantile(x, 0.25), 2.5);
}

TEST(MinMaxNormalizeTest, MapsToUnitInterval) {
  std::vector<double> x{2.0, 4.0, 6.0};
  MinMaxNormalize(&x);
  EXPECT_DOUBLE_EQ(x[0], 0.0);
  EXPECT_DOUBLE_EQ(x[1], 0.5);
  EXPECT_DOUBLE_EQ(x[2], 1.0);
}

TEST(MinMaxNormalizeTest, ConstantVectorBecomesZeros) {
  std::vector<double> x{3.0, 3.0, 3.0};
  MinMaxNormalize(&x);
  for (double v : x) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(MinMaxNormalizeTest, EmptyIsNoop) {
  std::vector<double> x;
  MinMaxNormalize(&x);
  EXPECT_TRUE(x.empty());
}

TEST(ClampAllTest, Basic) {
  std::vector<double> x{-1.0, 0.5, 2.0};
  ClampAll(&x, 0.0, 1.0);
  EXPECT_DOUBLE_EQ(x[0], 0.0);
  EXPECT_DOUBLE_EQ(x[1], 0.5);
  EXPECT_DOUBLE_EQ(x[2], 1.0);
}

TEST(HistogramTest, CountsAndClamping) {
  Histogram h = MakeHistogram({0.05, 0.15, 0.95, 1.5, -0.5}, 0.0, 1.0, 10);
  ASSERT_EQ(h.counts.size(), 10u);
  EXPECT_EQ(h.counts[0], 2u);  // 0.05 and clamped -0.5
  EXPECT_EQ(h.counts[1], 1u);
  EXPECT_EQ(h.counts[9], 2u);  // 0.95 and clamped 1.5
  size_t total = 0;
  for (size_t c : h.counts) total += c;
  EXPECT_EQ(total, 5u);
}

TEST(HistogramTest, BinCenter) {
  Histogram h = MakeHistogram({0.5}, 0.0, 1.0, 10);
  EXPECT_NEAR(h.BinCenter(0), 0.05, 1e-12);
  EXPECT_NEAR(h.BinCenter(9), 0.95, 1e-12);
}

TEST(GiniTest, PerfectEqualityIsZero) {
  EXPECT_NEAR(GiniCoefficient({5.0, 5.0, 5.0, 5.0}), 0.0, 1e-12);
}

TEST(GiniTest, MaximalConcentration) {
  // All mass on one of n items: gini -> (n-1)/n.
  const double g = GiniCoefficient({0.0, 0.0, 0.0, 100.0});
  EXPECT_NEAR(g, 0.75, 1e-12);
}

TEST(GiniTest, KnownValue) {
  // f = [1, 2, 3, 4]: G = (n+1 - 2*sum((n+1-j)f_j)/sum f)/n
  //   sum f = 10; weighted = 4*1+3*2+2*3+1*4 = 20; G = (5 - 4)/4 = 0.25.
  EXPECT_NEAR(GiniCoefficient({1.0, 2.0, 3.0, 4.0}), 0.25, 1e-12);
}

TEST(GiniTest, OrderInvariant) {
  EXPECT_DOUBLE_EQ(GiniCoefficient({4.0, 1.0, 3.0, 2.0}),
                   GiniCoefficient({1.0, 2.0, 3.0, 4.0}));
}

TEST(GiniTest, ZeroTotalIsZero) {
  EXPECT_DOUBLE_EQ(GiniCoefficient({0.0, 0.0}), 0.0);
  EXPECT_DOUBLE_EQ(GiniCoefficient({}), 0.0);
}

TEST(GiniTest, MoreConcentratedIsLarger) {
  EXPECT_GT(GiniCoefficient({0.0, 0.0, 1.0, 9.0}),
            GiniCoefficient({2.0, 2.0, 3.0, 3.0}));
}

TEST(PearsonTest, PerfectPositiveAndNegative) {
  EXPECT_NEAR(PearsonCorrelation({1, 2, 3}, {2, 4, 6}), 1.0, 1e-12);
  EXPECT_NEAR(PearsonCorrelation({1, 2, 3}, {3, 2, 1}), -1.0, 1e-12);
}

TEST(PearsonTest, DegenerateIsZero) {
  EXPECT_DOUBLE_EQ(PearsonCorrelation({1, 1, 1}, {1, 2, 3}), 0.0);
  EXPECT_DOUBLE_EQ(PearsonCorrelation({1}, {2}), 0.0);
}

TEST(SpearmanTest, MonotoneNonlinearIsOne) {
  EXPECT_NEAR(SpearmanCorrelation({1, 2, 3, 4}, {1, 8, 27, 64}), 1.0, 1e-12);
}

TEST(SpearmanTest, HandlesTies) {
  const double r = SpearmanCorrelation({1, 2, 2, 3}, {1, 2, 2, 3});
  EXPECT_NEAR(r, 1.0, 1e-12);
}

TEST(BinnedMeansTest, PartitionsAndAverages) {
  // x in [0, 1], two clusters.
  std::vector<double> x{0.1, 0.15, 0.9, 0.95};
  std::vector<double> y{10.0, 20.0, 100.0, 200.0};
  const auto rows = BinnedMeans(x, y, 2);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_DOUBLE_EQ(rows[0].mean_y, 15.0);
  EXPECT_EQ(rows[0].count, 2u);
  EXPECT_DOUBLE_EQ(rows[1].mean_y, 150.0);
}

TEST(BinnedMeansTest, SkipsEmptyBins) {
  std::vector<double> x{0.0, 1.0};
  std::vector<double> y{1.0, 2.0};
  const auto rows = BinnedMeans(x, y, 10);
  EXPECT_EQ(rows.size(), 2u);
}

TEST(BinnedMeansTest, ConstantXSingleBin) {
  std::vector<double> x{0.5, 0.5, 0.5};
  std::vector<double> y{1.0, 2.0, 3.0};
  const auto rows = BinnedMeans(x, y, 5);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_DOUBLE_EQ(rows[0].mean_y, 2.0);
}

}  // namespace
}  // namespace ganc
