// Sparse user-item rating data model (Section II-A of the paper).
//
// A RatingDataset stores a bag of (user, item, rating) observations plus
// the per-user and per-item inverted indexes the algorithms need:
//   I_u^R : items rated by user u          -> ItemsOf(u)
//   U_i^R : users who rated item i         -> UsersOf(i)
//   f_i^R : popularity of item i in train  -> Popularity(i)
// Users and items are dense 0-based ids; loaders remap external ids.

#ifndef GANC_DATA_DATASET_H_
#define GANC_DATA_DATASET_H_

#include <cstdint>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "util/status.h"

namespace ganc {

using UserId = int32_t;
using ItemId = int32_t;

/// One observed interaction: user u gave item i the value `rating`.
struct Rating {
  UserId user = 0;
  ItemId item = 0;
  float value = 0.0f;
};

/// An (item, rating) pair inside one user's profile.
struct ItemRating {
  ItemId item = 0;
  float value = 0.0f;
};

/// A (user, rating) pair inside one item's audience.
struct UserRating {
  UserId user = 0;
  float value = 0.0f;
};

/// Immutable sparse rating matrix with CSR-style per-user and CSC-style
/// per-item views. Construct through RatingDatasetBuilder.
class RatingDataset {
 public:
  RatingDataset() = default;

  int32_t num_users() const { return num_users_; }
  int32_t num_items() const { return num_items_; }
  int64_t num_ratings() const { return static_cast<int64_t>(ratings_.size()); }

  /// Fraction of the full matrix that is observed, in [0,1].
  double Density() const;

  /// All observations in insertion order.
  const std::vector<Rating>& ratings() const { return ratings_; }

  /// Items rated by `u`, ascending by item id.
  const std::vector<ItemRating>& ItemsOf(UserId u) const {
    return by_user_[static_cast<size_t>(u)];
  }

  /// Users who rated `i`, ascending by user id.
  const std::vector<UserRating>& UsersOf(ItemId i) const {
    return by_item_[static_cast<size_t>(i)];
  }

  /// Number of train observations of item i (f_i^R = |U_i^R|).
  int32_t Popularity(ItemId i) const {
    return static_cast<int32_t>(by_item_[static_cast<size_t>(i)].size());
  }

  /// Popularity of every item as a dense vector indexed by item id.
  std::vector<double> PopularityVector() const;

  /// Number of items user u rated (|I_u^R|, "user activity").
  int32_t Activity(UserId u) const {
    return static_cast<int32_t>(by_user_[static_cast<size_t>(u)].size());
  }

  /// True when user u has rated item i (binary search in the user's row).
  bool HasRating(UserId u, ItemId i) const;

  /// Rating of u on i, or error when unobserved.
  Result<float> GetRating(UserId u, ItemId i) const;

  /// Mean of all rating values; 0 for an empty dataset.
  double GlobalMeanRating() const;

  /// All item ids NOT rated by u, ascending: the "all unseen train items"
  /// candidate set from which every top-N set is drawn.
  std::vector<ItemId> UnratedItems(UserId u) const;

  /// Allocation-free variant: overwrites `*out` with the unrated items of
  /// `u`, reusing its capacity (the batched scoring path's candidate
  /// generation).
  void UnratedItemsInto(UserId u, std::vector<ItemId>* out) const;

  /// Serializes the dataset as a binary CSR cache (see docs/FORMATS.md):
  /// per-user row offsets + item ids + float values, plus the original
  /// observation order, checksummed per section. Written once after the
  /// text loader; LoadBinary then skips parsing, id remapping, sorting,
  /// and validation on every subsequent run.
  Status SaveBinary(std::ostream& os) const;

  /// SaveBinary to a file path (overwrites).
  Status SaveBinaryFile(const std::string& path) const;

  /// Restores a dataset written by SaveBinary. The result is exactly the
  /// saved dataset: same dimensions, same ratings() order, same per-user
  /// and per-item indexes — so anything downstream (splits, SGD epoch
  /// order, scoring) is bit-identical to running from the text source.
  /// Fails on bad magic, version or checksum mismatch, truncation, or
  /// inconsistent CSR structure.
  static Result<RatingDataset> LoadBinary(std::istream& is);

  /// LoadBinary from a file path.
  static Result<RatingDataset> LoadBinaryFile(const std::string& path);

  /// Stable 64-bit content fingerprint: FNV-1a over the dimensions and
  /// the canonical per-user (item, value) stream. Artifacts that borrow
  /// the train dataset at load time (KNN/RP3b models, pipeline state)
  /// store it and refuse rebinding to different data — e.g. the same
  /// corpus split with a different seed. Insensitive to observation
  /// order (two datasets with equal indexes fingerprint equally).
  uint64_t Fingerprint() const;

 private:
  friend class RatingDatasetBuilder;

  int32_t num_users_ = 0;
  int32_t num_items_ = 0;
  std::vector<Rating> ratings_;
  std::vector<std::vector<ItemRating>> by_user_;
  std::vector<std::vector<UserRating>> by_item_;
};

/// Accumulates observations, then finalizes the indexes.
class RatingDatasetBuilder {
 public:
  /// Fixes the universe sizes |U| and |I| up front. Ids outside the range
  /// are rejected at Add time.
  RatingDatasetBuilder(int32_t num_users, int32_t num_items);

  /// Adds one observation. Duplicate (u, i) pairs are rejected at Build.
  Status Add(UserId user, ItemId item, float value);

  /// Number of observations added so far.
  int64_t size() const { return static_cast<int64_t>(ratings_.size()); }

  /// Validates (no duplicate pairs) and builds the dataset.
  Result<RatingDataset> Build() &&;

 private:
  int32_t num_users_;
  int32_t num_items_;
  std::vector<Rating> ratings_;
};

}  // namespace ganc

#endif  // GANC_DATA_DATASET_H_
