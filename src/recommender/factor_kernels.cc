// Kernel dispatch: cpuid eligibility, startup micro-probe, GANC_KERNEL
// override. See factor_kernels.h for the selection contract.

#include "recommender/factor_kernels.h"

#include <array>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "recommender/factor_kernels_impl.h"
#include "util/aligned.h"

namespace ganc {

namespace {

// Synthetic probe workload: two full user blocks against a catalog big
// enough that q_i streaming dominates, small enough that the whole
// probe (4 variants x 4 runs) costs single-digit milliseconds.
constexpr size_t kProbeUsers = 2 * kFactorKernelUserBlock;
constexpr size_t kProbeItems = 512;
constexpr size_t kProbeFactors = 48;
constexpr int kProbeRuns = 3;  // timed runs per variant; best-of wins

struct DispatchState {
  std::mutex mu;
  bool selected = false;
  KernelVariant active = KernelVariant::kScalar;
  const char* source = "probe";
  std::array<double, kNumKernelVariants> probe_ns{};
  // Fast path: ScoreBatchInto reads this without the lock once selected.
  std::atomic<const KernelOps*> active_ops{nullptr};
};

DispatchState& State() {
  static DispatchState s;
  return s;
}

bool VariantCompiled(KernelVariant v) {
  switch (v) {
    case KernelVariant::kScalar: return true;
    case KernelVariant::kSse2: return internal::Sse2KernelCompiled();
    case KernelVariant::kAvx2: return internal::Avx2KernelCompiled();
    case KernelVariant::kAvx512: return internal::Avx512KernelCompiled();
  }
  return false;
}

bool CpuRuns(KernelVariant v) {
#if defined(__x86_64__) || defined(__i386__)
  switch (v) {
    case KernelVariant::kScalar:
      return true;
    case KernelVariant::kSse2:
      return __builtin_cpu_supports("sse2");
    case KernelVariant::kAvx2:
      return __builtin_cpu_supports("avx2");
    case KernelVariant::kAvx512:
      return __builtin_cpu_supports("avx512f") &&
             __builtin_cpu_supports("avx512bw") &&
             __builtin_cpu_supports("avx512vl");
  }
  return false;
#else
  return v == KernelVariant::kScalar;
#endif
}

// Deterministic fill so every probe (and every variant within one
// probe) scores the same block.
double ProbeValue(uint64_t& lcg) {
  lcg = lcg * 6364136223846793005ULL + 1442695040888963407ULL;
  return static_cast<double>((lcg >> 11) & 0xFFFFF) / 1048576.0 - 0.5;
}

// Times each supported variant's fp64 kernel (the dominant serving
// path) and records ns per scored user in state.probe_ns.
KernelVariant RunProbe(DispatchState& s) {
  AlignedVector<double> user(kProbeUsers * kProbeFactors);
  AlignedVector<double> item(kProbeItems * kProbeFactors);
  AlignedVector<double> bias(kProbeItems);
  AlignedVector<double> base(kProbeUsers);
  uint64_t lcg = 0x9E3779B97F4A7C15ULL;
  for (double& x : user) x = ProbeValue(lcg);
  for (double& x : item) x = ProbeValue(lcg);
  for (double& x : bias) x = ProbeValue(lcg);
  for (double& x : base) x = ProbeValue(lcg);

  FactorView v;
  v.user_factors = user.data();
  v.item_factors = item.data();
  v.item_bias = bias.data();
  v.user_base = base.data();
  v.num_items = static_cast<int32_t>(kProbeItems);
  v.num_factors = kProbeFactors;

  std::array<UserId, kProbeUsers> users;
  for (size_t u = 0; u < kProbeUsers; ++u) users[u] = static_cast<UserId>(u);
  AlignedVector<double> out(kProbeUsers * kProbeItems);

  KernelVariant best = KernelVariant::kScalar;
  double best_ns = 0.0;
  for (size_t idx = 0; idx < kNumKernelVariants; ++idx) {
    const KernelVariant cand = static_cast<KernelVariant>(idx);
    if (!KernelVariantSupported(cand)) continue;
    const KernelOps& ops = KernelOpsFor(cand);
    ops.batch_f64(v, users, out);  // warm up caches + first-touch scratch
    double ns = 0.0;
    for (int run = 0; run < kProbeRuns; ++run) {
      const auto t0 = std::chrono::steady_clock::now();
      ops.batch_f64(v, users, out);
      const auto t1 = std::chrono::steady_clock::now();
      const double run_ns =
          std::chrono::duration<double, std::nano>(t1 - t0).count() /
          static_cast<double>(kProbeUsers);
      if (run == 0 || run_ns < ns) ns = run_ns;
    }
    s.probe_ns[idx] = ns;
    if (best_ns == 0.0 || ns < best_ns) {
      best_ns = ns;
      best = cand;
    }
  }
  return best;
}

// Selection under s.mu: env override first, else probe.
void SelectLocked(DispatchState& s) {
  s.probe_ns.fill(0.0);
  const char* env = std::getenv("GANC_KERNEL");
  if (env != nullptr && env[0] != '\0') {
    Result<KernelVariant> parsed = ParseKernelVariant(env);
    if (!parsed.ok()) {
      std::fprintf(stderr,
                   "ganc: ignoring GANC_KERNEL=%s (%s); probing instead\n", env,
                   parsed.status().message().c_str());
    } else if (!KernelVariantSupported(*parsed)) {
      std::fprintf(
          stderr,
          "ganc: GANC_KERNEL=%s is not runnable on this host; probing "
          "instead\n",
          env);
    } else {
      s.active = *parsed;
      s.source = "env";
      s.selected = true;
      s.active_ops.store(&KernelOpsFor(s.active), std::memory_order_release);
      return;
    }
  }
  s.active = RunProbe(s);
  s.source = "probe";
  s.selected = true;
  s.active_ops.store(&KernelOpsFor(s.active), std::memory_order_release);
}

void EnsureSelected(DispatchState& s) {
  std::lock_guard<std::mutex> lock(s.mu);
  if (!s.selected) SelectLocked(s);
}

}  // namespace

const char* KernelVariantName(KernelVariant v) {
  switch (v) {
    case KernelVariant::kScalar: return "scalar";
    case KernelVariant::kSse2: return "sse2";
    case KernelVariant::kAvx2: return "avx2";
    case KernelVariant::kAvx512: return "avx512";
  }
  return "unknown";
}

Result<KernelVariant> ParseKernelVariant(const std::string& s) {
  if (s == "scalar") return KernelVariant::kScalar;
  if (s == "sse2") return KernelVariant::kSse2;
  if (s == "avx2") return KernelVariant::kAvx2;
  if (s == "avx512") return KernelVariant::kAvx512;
  return Status::InvalidArgument(
      "unknown kernel variant '" + s +
      "' (expected scalar, sse2, avx2, or avx512)");
}

const KernelOps& KernelOpsFor(KernelVariant v) {
  switch (v) {
    case KernelVariant::kScalar: return internal::ScalarKernelOps();
    case KernelVariant::kSse2: return internal::Sse2KernelOps();
    case KernelVariant::kAvx2: return internal::Avx2KernelOps();
    case KernelVariant::kAvx512: return internal::Avx512KernelOps();
  }
  return internal::ScalarKernelOps();
}

bool KernelVariantSupported(KernelVariant v) {
  return VariantCompiled(v) && CpuRuns(v);
}

std::vector<KernelVariant> SupportedKernelVariants() {
  std::vector<KernelVariant> out;
  for (size_t idx = 0; idx < kNumKernelVariants; ++idx) {
    const KernelVariant v = static_cast<KernelVariant>(idx);
    if (KernelVariantSupported(v)) out.push_back(v);
  }
  return out;
}

KernelVariant ActiveKernelVariant() {
  DispatchState& s = State();
  EnsureSelected(s);
  std::lock_guard<std::mutex> lock(s.mu);
  return s.active;
}

const KernelOps& ActiveKernelOps() {
  DispatchState& s = State();
  const KernelOps* ops = s.active_ops.load(std::memory_order_acquire);
  if (ops != nullptr) return *ops;
  EnsureSelected(s);
  return *s.active_ops.load(std::memory_order_acquire);
}

const char* ActiveKernelSelection() {
  DispatchState& s = State();
  EnsureSelected(s);
  std::lock_guard<std::mutex> lock(s.mu);
  return s.source;
}

std::vector<double> KernelProbeNsPerUser() {
  DispatchState& s = State();
  EnsureSelected(s);
  std::lock_guard<std::mutex> lock(s.mu);
  return std::vector<double>(s.probe_ns.begin(), s.probe_ns.end());
}

Status ForceKernelVariant(KernelVariant v) {
  if (!KernelVariantSupported(v)) {
    return Status::InvalidArgument(
        std::string("kernel variant '") + KernelVariantName(v) +
        "' is not runnable on this host");
  }
  DispatchState& s = State();
  std::lock_guard<std::mutex> lock(s.mu);
  s.active = v;
  s.source = "forced";
  s.selected = true;
  s.active_ops.store(&KernelOpsFor(v), std::memory_order_release);
  return Status::OK();
}

void ResetKernelDispatch() {
  DispatchState& s = State();
  std::lock_guard<std::mutex> lock(s.mu);
  s.selected = false;
  s.active_ops.store(nullptr, std::memory_order_release);
}

}  // namespace ganc
