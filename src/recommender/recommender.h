// Common interface for base recommenders.
//
// Every model fits on a train RatingDataset and can score the whole
// catalog for a user. The scoring primitive is ScoreInto, which writes
// into a caller-owned buffer so batched loops never allocate per user;
// ScoreAll is the allocating convenience wrapper. Top-N generation always
// uses the shared SelectTopK kernels so tie-breaking is deterministic
// across models and across the sequential/parallel paths.

#ifndef GANC_RECOMMENDER_RECOMMENDER_H_
#define GANC_RECOMMENDER_RECOMMENDER_H_

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "recommender/scoring_context.h"
#include "util/status.h"
#include "util/thread_pool.h"
#include "util/top_k.h"

namespace ganc {

/// Abstract base recommender.
class Recommender {
 public:
  virtual ~Recommender() = default;

  /// Trains on `train`. Must be called before scoring. Idempotent: fitting
  /// again retrains from scratch.
  virtual Status Fit(const RatingDataset& train) = 0;

  /// Catalog size the fitted model scores over (0 before Fit).
  virtual int32_t num_items() const = 0;

  /// Writes a dense score for every item in the catalog for user `u` into
  /// `out` (which must have exactly num_items() entries); higher is
  /// better. Thread-safe on a fitted model. Scales differ between models;
  /// normalize before mixing (see core/accuracy_scorer.h).
  virtual void ScoreInto(UserId u, std::span<double> out) const = 0;

  /// Allocating convenience wrapper over ScoreInto.
  std::vector<double> ScoreAll(UserId u) const;

  /// Model name for reports, e.g. "RSVD" or "PSVD100".
  virtual std::string name() const = 0;

  /// Top-N item ids among `candidates` in best-first order.
  std::vector<ItemId> RecommendTopN(UserId u,
                                    const std::vector<ItemId>& candidates,
                                    int n) const;

  /// Allocation-free top-N: scores through ctx's score buffer, selects
  /// through ctx's top-k heap, and overwrites `out` (capacity reused).
  /// Output is identical to RecommendTopN. Uses ctx.Scores and ctx.TopK;
  /// `candidates` may alias ctx.Candidates().
  void RecommendTopNInto(UserId u, std::span<const ItemId> candidates, int n,
                         ScoringContext& ctx, std::vector<ItemId>& out) const;
};

/// Builds per-user top-N sets for all users over their unrated train items
/// ("all unrated items" candidate generation). Returns one vector of item
/// ids per user in best-first order. With a pool, users are scored in
/// parallel chunks (one ScoringContext per chunk); because per-user
/// scoring is deterministic and each user writes only its own slot, the
/// output is byte-identical to the sequential path.
std::vector<std::vector<ItemId>> RecommendAllUsers(const Recommender& model,
                                                   const RatingDataset& train,
                                                   int n,
                                                   ThreadPool* pool = nullptr);

}  // namespace ganc

#endif  // GANC_RECOMMENDER_RECOMMENDER_H_
