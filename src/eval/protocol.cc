#include "eval/protocol.h"

namespace ganc {

std::string RankingProtocolName(RankingProtocol protocol) {
  switch (protocol) {
    case RankingProtocol::kAllUnrated:
      return "all-unrated-items";
    case RankingProtocol::kRatedTestItems:
      return "rated-test-items";
  }
  return "?";
}

std::vector<std::vector<ItemId>> BuildTopN(const Recommender& model,
                                           const RatingDataset& train,
                                           const RatingDataset& test,
                                           int top_n,
                                           RankingProtocol protocol,
                                           ThreadPool* pool) {
  std::vector<std::vector<ItemId>> result(
      static_cast<size_t>(train.num_users()));
  ParallelForChunks(
      pool, 0, static_cast<size_t>(train.num_users()),
      [&](size_t lo, size_t hi) {
        ScoringContext ctx;
        ForEachScoredUser(
            model, lo, hi, ctx,
            [&](UserId u, std::span<const double> scores) {
              std::vector<ScoredItem>& top = ctx.TopK();
              if (protocol == RankingProtocol::kAllUnrated) {
                // Fills ctx.TopK(), i.e. `top`.
                SelectTopKUnrated(scores, train, u,
                                  static_cast<size_t>(top_n), ctx);
              } else {
                std::vector<ItemId>& candidates = ctx.Candidates();
                candidates.clear();
                candidates.reserve(test.ItemsOf(u).size());
                for (const ItemRating& ir : test.ItemsOf(u)) {
                  candidates.push_back(ir.item);
                }
                SelectTopKFromScoresInto(scores, candidates,
                                         static_cast<size_t>(top_n), &top);
              }
              std::vector<ItemId>& out = result[static_cast<size_t>(u)];
              out.clear();
              out.reserve(top.size());
              for (const ScoredItem& s : top) out.push_back(s.item);
            });
      });
  return result;
}

}  // namespace ganc
