#include "serve/service_shard.h"

#include <utility>

namespace ganc {

namespace {

Result<std::unique_ptr<RecommendationService>> LoadSnapshot(
    SnapshotKind kind, const std::string& path, const RatingDataset& train,
    const ServiceConfig& config) {
  switch (kind) {
    case SnapshotKind::kModel:
      return RecommendationService::LoadModelService(path, train, config);
    case SnapshotKind::kPipeline:
      return RecommendationService::LoadPipelineService(path, train, config);
  }
  return Status::InvalidArgument("unknown snapshot kind");
}

Status ValidateSpec(const ShardSpec& spec) {
  if (spec.num_shards == 0) {
    return Status::InvalidArgument("shard count must be >= 1");
  }
  if (spec.index >= spec.num_shards) {
    return Status::InvalidArgument(
        "shard index " + std::to_string(spec.index) + " out of range for " +
        std::to_string(spec.num_shards) + " shards");
  }
  return Status::OK();
}

}  // namespace

ServiceShard::ServiceShard(std::unique_ptr<RecommendationService> service,
                           SnapshotKind kind, const RatingDataset& train,
                           ShardSpec spec, ServiceConfig config)
    : kind_(kind),
      train_(&train),
      spec_(spec),
      config_(config),
      num_users_(train.num_users()),
      service_(std::shared_ptr<RecommendationService>(std::move(service))) {}

Result<std::unique_ptr<ServiceShard>> ServiceShard::Load(
    SnapshotKind kind, const std::string& path, const RatingDataset& train,
    ShardSpec spec, ServiceConfig config) {
  GANC_RETURN_NOT_OK(ValidateSpec(spec));
  Result<std::unique_ptr<RecommendationService>> service =
      LoadSnapshot(kind, path, train, config);
  if (!service.ok()) return service.status();
  return std::unique_ptr<ServiceShard>(new ServiceShard(
      std::move(service).value(), kind, train, spec, config));
}

Result<std::unique_ptr<ServiceShard>> ServiceShard::Adopt(
    std::unique_ptr<RecommendationService> service, SnapshotKind kind,
    const RatingDataset& train, ShardSpec spec, ServiceConfig config) {
  GANC_RETURN_NOT_OK(ValidateSpec(spec));
  if (service == nullptr) {
    return Status::InvalidArgument("cannot adopt a null service");
  }
  return std::unique_ptr<ServiceShard>(
      new ServiceShard(std::move(service), kind, train, spec, config));
}

Status ServiceShard::TopNInto(UserId user, int n,
                              std::span<const ItemId> exclusions,
                              std::vector<ItemId>* out,
                              uint64_t* served_version, RequestTrace* trace) {
  // Pin once: the whole request — ownership gate, scoring, version
  // attribution — runs against this snapshot even if a Publish swaps
  // the shard pointer mid-flight.
  const std::shared_ptr<RecommendationService> service = Pin();
  if (served_version != nullptr) *served_version = service->snapshot_version();
  if (trace != nullptr) {
    trace->shard = static_cast<int>(spec_.index);
    trace->version = service->snapshot_version();
  }
  // Misrouted in-range users are this shard's error; out-of-range ids
  // fall through so the rejection text matches an unsharded server.
  if (user >= 0 && user < num_users_ && !OwnsUser(user)) {
    return Status::InvalidArgument(
        "user " + std::to_string(user) + " not owned by shard " +
        std::to_string(spec_.index) + "/" + std::to_string(spec_.num_shards));
  }
  return service->TopNInto(user, n, exclusions, out, trace);
}

Status ServiceShard::Publish(const std::string& path) {
  std::lock_guard<std::mutex> lock(publish_mu_);
  MetricsRegistry& registry = config_.metrics != nullptr
                                  ? *config_.metrics
                                  : MetricsRegistry::Global();
  const uint64_t start_ns = MonotonicNowNs();
  // Load outside the request path: requests keep hitting the old
  // snapshot until the exchange below. The artifact loader validates
  // the dataset fingerprint, so a snapshot trained against a different
  // split is rejected here with the old service untouched. The
  // replacement inherits this shard's registry (counters stay
  // monotonic across the swap) under the next publish generation, so
  // its domain series are distinguishable from the old snapshot's.
  ServiceConfig fresh_config = config_;
  fresh_config.metrics_generation = published_ + 1;
  Result<std::unique_ptr<RecommendationService>> fresh =
      LoadSnapshot(kind_, path, *train_, fresh_config);
  if (!fresh.ok()) {
    ++rejected_;
    registry
        .GetCounter("serve_publish_rejects_total",
                    "Failed snapshot publishes (old snapshot kept).")
        ->Increment();
    return fresh.status();
  }
  std::shared_ptr<RecommendationService> replaced = service_.exchange(
      std::shared_ptr<RecommendationService>(std::move(fresh).value()),
      std::memory_order_acq_rel);
  ++published_;
  registry
      .GetCounter("serve_publishes_total",
                  "Successful zero-downtime snapshot swaps.")
      ->Increment();
  registry
      .GetHistogram("serve_publish_ns",
                    "Publish latency (artifact load + swap), nanoseconds.")
      ->Observe(MonotonicNowNs() - start_ns);
  std::lock_guard<std::mutex> retired_lock(retired_mu_);
  retired_.push_back(std::move(replaced));
  PruneRetiredLocked();
  return Status::OK();
}

Status ServiceShard::AttachStore(
    const std::shared_ptr<const TopNStore>& store) {
  if (store == nullptr) {
    return Status::InvalidArgument("cannot attach a null store");
  }
  const std::shared_ptr<RecommendationService> service = Pin();
  if (spec_.num_shards <= 1) {
    return service->AttachStore(store);
  }
  // Filter the full store down to owned users. Keeping the original
  // dimensions/fingerprint/source means the service applies exactly the
  // same validity checks as an unsharded attach.
  std::vector<std::pair<UserId, std::vector<ItemId>>> lists;
  for (int32_t u = 0; u < store->num_users(); ++u) {
    if (!OwnsUser(u)) continue;
    const std::span<const ItemId> list = store->ListFor(u);
    if (list.empty()) continue;
    lists.emplace_back(u, std::vector<ItemId>(list.begin(), list.end()));
  }
  Result<TopNStore> segment = TopNStore::FromLists(
      store->num_users(), store->num_items(), store->top_n(),
      store->train_fingerprint(), store->source(), lists);
  if (!segment.ok()) return segment.status();
  return service->AttachStore(
      std::make_shared<const TopNStore>(std::move(segment).value()));
}

void ServiceShard::PruneRetiredLocked() const {
  for (size_t i = 0; i < retired_.size();) {
    // use_count() == 1 means the retired vector holds the last
    // reference: every request pinned on that snapshot has completed,
    // so its counters are final and can be folded in exactly once.
    if (retired_[i].use_count() == 1) {
      retired_stats_.Accumulate(retired_[i]->stats());
      retired_.erase(retired_.begin() + static_cast<ptrdiff_t>(i));
    } else {
      ++i;
    }
  }
}

ServeStats ServiceShard::stats() const {
  std::lock_guard<std::mutex> lock(retired_mu_);
  PruneRetiredLocked();
  ServeStats total = retired_stats_;
  for (const auto& old : retired_) total.Accumulate(old->stats());
  total.Accumulate(Pin()->stats());
  return total;
}

SwapCounters ServiceShard::swap_counters() const {
  std::lock_guard<std::mutex> lock(publish_mu_);
  return SwapCounters{published_, rejected_};
}

}  // namespace ganc
