// Gaussian kernel density estimation over a 1-D sample, with automatic
// bandwidth selection and sampling from the estimated density.
//
// OSLG (Algorithm 1, line 2) approximates the PDF of the user long-tail
// preference vector theta with KDE and draws the sequential-phase user
// sample from it, so dense regions of the preference distribution are
// proportionally represented.

#ifndef GANC_UTIL_KDE_H_
#define GANC_UTIL_KDE_H_

#include <vector>

#include "util/rng.h"
#include "util/status.h"

namespace ganc {

/// Bandwidth selection rule for KernelDensity.
enum class BandwidthRule {
  /// Silverman's rule of thumb: 0.9 * min(sd, IQR/1.34) * n^(-1/5).
  kSilverman,
  /// Scott's rule: 1.06 * sd * n^(-1/5).
  kScott,
};

/// 1-D Gaussian KDE.
///
/// The estimate is f(x) = (1/nh) * sum_i K((x - x_i)/h) with Gaussian K.
/// Sampling exploits the mixture form of the KDE: pick a data point
/// uniformly, then add Gaussian noise of scale h.
class KernelDensity {
 public:
  /// Fits a KDE to the sample. Requires a non-empty sample. A degenerate
  /// (constant) sample falls back to a small positive bandwidth.
  static Result<KernelDensity> Fit(const std::vector<double>& sample,
                                   BandwidthRule rule = BandwidthRule::kSilverman);

  /// Density estimate at point x.
  double Pdf(double x) const;

  /// Draws one value from the estimated density.
  double Sample(Rng* rng) const;

  /// Draws one value from the estimated density truncated to [lo, hi]
  /// (rejection with clamping fallback).
  double SampleTruncated(double lo, double hi, Rng* rng) const;

  double bandwidth() const { return bandwidth_; }
  size_t sample_size() const { return data_.size(); }

 private:
  KernelDensity(std::vector<double> data, double bandwidth)
      : data_(std::move(data)), bandwidth_(bandwidth) {}

  std::vector<double> data_;
  double bandwidth_;
};

/// Draws `k` distinct indices from `values` (one index per element) such
/// that the probability of picking index u is proportional to the KDE
/// density at values[u]. This is the user-sampling step of OSLG: users in
/// dense regions of the preference distribution are more likely to be
/// chosen for the sequential phase. Requires k <= values.size().
Result<std::vector<size_t>> KdeProportionalSample(
    const std::vector<double>& values, size_t k, Rng* rng);

}  // namespace ganc

#endif  // GANC_UTIL_KDE_H_
