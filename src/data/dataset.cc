#include "data/dataset.h"

#include <algorithm>
#include <bit>
#include <cassert>

#include "util/binary_io.h"
#include "util/serialize.h"

namespace ganc {

namespace {

// Dataset cache section ids (kind kDatasetCache; see docs/FORMATS.md).
constexpr uint32_t kCacheDimsSection = 1;
constexpr uint32_t kCacheOffsetsSection = 2;
constexpr uint32_t kCacheItemsSection = 3;
constexpr uint32_t kCacheValuesSection = 4;
constexpr uint32_t kCacheOrderSection = 5;

}  // namespace

double RatingDataset::Density() const {
  if (num_users_ == 0 || num_items_ == 0) return 0.0;
  return static_cast<double>(ratings_.size()) /
         (static_cast<double>(num_users_) * static_cast<double>(num_items_));
}

std::vector<double> RatingDataset::PopularityVector() const {
  std::vector<double> pop(static_cast<size_t>(num_items_), 0.0);
  for (ItemId i = 0; i < num_items_; ++i) {
    pop[static_cast<size_t>(i)] = static_cast<double>(Popularity(i));
  }
  return pop;
}

bool RatingDataset::HasRating(UserId u, ItemId i) const {
  const auto& row = by_user_[static_cast<size_t>(u)];
  auto it = std::lower_bound(
      row.begin(), row.end(), i,
      [](const ItemRating& ir, ItemId target) { return ir.item < target; });
  return it != row.end() && it->item == i;
}

Result<float> RatingDataset::GetRating(UserId u, ItemId i) const {
  const auto& row = by_user_[static_cast<size_t>(u)];
  auto it = std::lower_bound(
      row.begin(), row.end(), i,
      [](const ItemRating& ir, ItemId target) { return ir.item < target; });
  if (it == row.end() || it->item != i) {
    return Status::NotFound("rating (" + std::to_string(u) + ", " +
                            std::to_string(i) + ") not observed");
  }
  return it->value;
}

double RatingDataset::GlobalMeanRating() const {
  if (ratings_.empty()) return 0.0;
  double acc = 0.0;
  for (const Rating& r : ratings_) acc += r.value;
  return acc / static_cast<double>(ratings_.size());
}

std::vector<ItemId> RatingDataset::UnratedItems(UserId u) const {
  std::vector<ItemId> out;
  UnratedItemsInto(u, &out);
  return out;
}

void RatingDataset::UnratedItemsInto(UserId u,
                                     std::vector<ItemId>* out) const {
  // The user row is sorted by item id, so the unrated set is the gaps
  // between consecutive rated items: fill each run of ids directly
  // instead of testing every catalog item against the row cursor.
  const auto& row = by_user_[static_cast<size_t>(u)];
  out->resize(static_cast<size_t>(num_items_) - row.size());
  ItemId* dst = out->data();
  ItemId next = 0;
  for (const ItemRating& ir : row) {
    for (ItemId i = next; i < ir.item; ++i) *dst++ = i;
    next = ir.item + 1;
  }
  for (ItemId i = next; i < num_items_; ++i) *dst++ = i;
}

uint64_t RatingDataset::Fingerprint() const {
  Fnv1aHasher hasher;
  const auto hash_u32 = [&](uint32_t v) {
    uint8_t b[4];
    for (int i = 0; i < 4; ++i) b[i] = static_cast<uint8_t>(v >> (8 * i));
    hasher.Update(b, sizeof(b));
  };
  hash_u32(static_cast<uint32_t>(num_users_));
  hash_u32(static_cast<uint32_t>(num_items_));
  for (const auto& row : by_user_) {
    hash_u32(static_cast<uint32_t>(row.size()));
    for (const ItemRating& ir : row) {
      hash_u32(static_cast<uint32_t>(ir.item));
      hash_u32(std::bit_cast<uint32_t>(ir.value));
    }
  }
  return hasher.digest();
}

Status RatingDataset::SaveBinary(std::ostream& os) const {
  ArtifactWriter w(os);
  GANC_RETURN_NOT_OK(w.WriteHeader(ArtifactKind::kDatasetCache, 0));

  PayloadWriter dims;
  dims.WriteI32(num_users_);
  dims.WriteI32(num_items_);
  dims.WriteI64(num_ratings());
  GANC_RETURN_NOT_OK(w.WriteSection(kCacheDimsSection, dims));

  // CSR body from the canonical per-user index: row offsets, then item
  // ids and values in user-major, item-ascending order.
  const size_t nnz = ratings_.size();
  std::vector<uint64_t> offsets(static_cast<size_t>(num_users_) + 1, 0);
  std::vector<int32_t> items(nnz);
  std::vector<float> values(nnz);
  size_t p = 0;
  for (UserId u = 0; u < num_users_; ++u) {
    offsets[static_cast<size_t>(u)] = p;
    for (const ItemRating& ir : by_user_[static_cast<size_t>(u)]) {
      items[p] = ir.item;
      values[p] = ir.value;
      ++p;
    }
  }
  offsets[static_cast<size_t>(num_users_)] = p;

  // Observation-order section: maps each CSR position to its index in
  // ratings_ so the loaded dataset reproduces the original insertion
  // order exactly (seeded splits and SGD epochs depend on it).
  std::vector<uint64_t> order(nnz);
  for (size_t idx = 0; idx < nnz; ++idx) {
    const Rating& r = ratings_[idx];
    const auto& row = by_user_[static_cast<size_t>(r.user)];
    const auto it = std::lower_bound(
        row.begin(), row.end(), r.item,
        [](const ItemRating& ir, ItemId target) { return ir.item < target; });
    const size_t rank = static_cast<size_t>(it - row.begin());
    order[offsets[static_cast<size_t>(r.user)] + rank] = idx;
  }

  PayloadWriter offsets_payload;
  offsets_payload.WriteVecU64(offsets);
  GANC_RETURN_NOT_OK(w.WriteSection(kCacheOffsetsSection, offsets_payload));
  PayloadWriter items_payload;
  items_payload.WriteVecI32(items);
  GANC_RETURN_NOT_OK(w.WriteSection(kCacheItemsSection, items_payload));
  PayloadWriter values_payload;
  values_payload.WriteVecF32(values);
  GANC_RETURN_NOT_OK(w.WriteSection(kCacheValuesSection, values_payload));
  PayloadWriter order_payload;
  order_payload.WriteVecU64(order);
  GANC_RETURN_NOT_OK(w.WriteSection(kCacheOrderSection, order_payload));
  return w.Finish();
}

Status RatingDataset::SaveBinaryFile(const std::string& path) const {
  return WriteArtifactFile(
      path, [&](std::ostream& os) { return SaveBinary(os); });
}

Result<RatingDataset> RatingDataset::LoadBinary(std::istream& is) {
  ArtifactReader r(is);
  Result<ArtifactHeader> header = r.ReadHeader();
  if (!header.ok()) return header.status();
  GANC_RETURN_NOT_OK(ExpectArtifact(*header, ArtifactKind::kDatasetCache, 0));

  Result<ArtifactReader::Section> dims = r.ReadSectionExpect(
      kCacheDimsSection);
  if (!dims.ok()) return dims.status();
  PayloadReader dr(dims->payload);
  int32_t num_users = 0;
  int32_t num_items = 0;
  int64_t num_ratings = 0;
  GANC_RETURN_NOT_OK(dr.ReadI32(&num_users));
  GANC_RETURN_NOT_OK(dr.ReadI32(&num_items));
  GANC_RETURN_NOT_OK(dr.ReadI64(&num_ratings));
  GANC_RETURN_NOT_OK(dr.ExpectEnd());
  if (num_users < 0 || num_items < 0 || num_ratings < 0) {
    return Status::InvalidArgument("negative dimensions in dataset cache");
  }
  const size_t nnz = static_cast<size_t>(num_ratings);

  std::vector<uint64_t> offsets;
  std::vector<int32_t> items;
  std::vector<float> values;
  std::vector<uint64_t> order;
  {
    Result<ArtifactReader::Section> s = r.ReadSectionExpect(
        kCacheOffsetsSection);
    if (!s.ok()) return s.status();
    PayloadReader pr(s->payload);
    GANC_RETURN_NOT_OK(pr.ReadVecU64(&offsets));
    GANC_RETURN_NOT_OK(pr.ExpectEnd());
  }
  {
    Result<ArtifactReader::Section> s = r.ReadSectionExpect(
        kCacheItemsSection);
    if (!s.ok()) return s.status();
    PayloadReader pr(s->payload);
    GANC_RETURN_NOT_OK(pr.ReadVecI32(&items));
    GANC_RETURN_NOT_OK(pr.ExpectEnd());
  }
  {
    Result<ArtifactReader::Section> s = r.ReadSectionExpect(
        kCacheValuesSection);
    if (!s.ok()) return s.status();
    PayloadReader pr(s->payload);
    GANC_RETURN_NOT_OK(pr.ReadVecF32(&values));
    GANC_RETURN_NOT_OK(pr.ExpectEnd());
  }
  {
    Result<ArtifactReader::Section> s = r.ReadSectionExpect(
        kCacheOrderSection);
    if (!s.ok()) return s.status();
    PayloadReader pr(s->payload);
    GANC_RETURN_NOT_OK(pr.ReadVecU64(&order));
    GANC_RETURN_NOT_OK(pr.ExpectEnd());
  }
  GANC_RETURN_NOT_OK(ExpectEndOfArtifact(r));

  // Structural validation before touching any index.
  if (offsets.size() != static_cast<size_t>(num_users) + 1 ||
      items.size() != nnz || values.size() != nnz || order.size() != nnz) {
    return Status::InvalidArgument("dataset cache section sizes disagree");
  }
  if (!offsets.empty() && (offsets.front() != 0 || offsets.back() != nnz)) {
    return Status::InvalidArgument("dataset cache row offsets malformed");
  }
  for (size_t u = 0; u + 1 < offsets.size(); ++u) {
    if (offsets[u] > offsets[u + 1]) {
      return Status::InvalidArgument("dataset cache row offsets not sorted");
    }
    for (size_t p = offsets[u]; p < offsets[u + 1]; ++p) {
      if (items[p] < 0 || items[p] >= num_items) {
        return Status::InvalidArgument("item id out of range in dataset cache");
      }
      if (p > offsets[u] && items[p] <= items[p - 1]) {
        return Status::InvalidArgument(
            "dataset cache rows must be strictly item-ascending");
      }
    }
  }
  std::vector<bool> seen(nnz, false);
  for (uint64_t idx : order) {
    if (idx >= nnz || seen[idx]) {
      return Status::InvalidArgument(
          "dataset cache observation order is not a permutation");
    }
    seen[idx] = true;
  }

  RatingDataset ds;
  ds.num_users_ = num_users;
  ds.num_items_ = num_items;
  ds.ratings_.resize(nnz);
  ds.by_user_.assign(static_cast<size_t>(num_users), {});
  ds.by_item_.assign(static_cast<size_t>(num_items), {});
  std::vector<uint32_t> item_counts(static_cast<size_t>(num_items), 0);
  for (int32_t i : items) ++item_counts[static_cast<size_t>(i)];
  for (int32_t i = 0; i < num_items; ++i) {
    ds.by_item_[static_cast<size_t>(i)].reserve(
        item_counts[static_cast<size_t>(i)]);
  }
  for (int32_t u = 0; u < num_users; ++u) {
    auto& row = ds.by_user_[static_cast<size_t>(u)];
    row.reserve(offsets[static_cast<size_t>(u) + 1] -
                offsets[static_cast<size_t>(u)]);
    for (size_t p = offsets[static_cast<size_t>(u)];
         p < offsets[static_cast<size_t>(u) + 1]; ++p) {
      row.push_back({items[p], values[p]});
      // Users are walked ascending, so per-item audiences come out
      // user-ascending without a sort.
      ds.by_item_[static_cast<size_t>(items[p])].push_back({u, values[p]});
      ds.ratings_[order[p]] = {u, items[p], values[p]};
    }
  }
  return ds;
}

Result<RatingDataset> RatingDataset::LoadBinaryFile(const std::string& path) {
  return ReadArtifactFile(
      path, [](std::istream& is) { return LoadBinary(is); });
}

RatingDatasetBuilder::RatingDatasetBuilder(int32_t num_users,
                                           int32_t num_items)
    : num_users_(num_users), num_items_(num_items) {
  assert(num_users >= 0 && num_items >= 0);
}

Status RatingDatasetBuilder::Add(UserId user, ItemId item, float value) {
  if (user < 0 || user >= num_users_) {
    return Status::OutOfRange("user id " + std::to_string(user) +
                              " outside [0, " + std::to_string(num_users_) +
                              ")");
  }
  if (item < 0 || item >= num_items_) {
    return Status::OutOfRange("item id " + std::to_string(item) +
                              " outside [0, " + std::to_string(num_items_) +
                              ")");
  }
  ratings_.push_back({user, item, value});
  return Status::OK();
}

Result<RatingDataset> RatingDatasetBuilder::Build() && {
  RatingDataset ds;
  ds.num_users_ = num_users_;
  ds.num_items_ = num_items_;
  ds.ratings_ = std::move(ratings_);
  ds.by_user_.assign(static_cast<size_t>(num_users_), {});
  ds.by_item_.assign(static_cast<size_t>(num_items_), {});

  // Pre-size rows to avoid repeated reallocation on large datasets.
  std::vector<uint32_t> user_counts(static_cast<size_t>(num_users_), 0);
  std::vector<uint32_t> item_counts(static_cast<size_t>(num_items_), 0);
  for (const Rating& r : ds.ratings_) {
    ++user_counts[static_cast<size_t>(r.user)];
    ++item_counts[static_cast<size_t>(r.item)];
  }
  for (int32_t u = 0; u < num_users_; ++u) {
    ds.by_user_[static_cast<size_t>(u)].reserve(
        user_counts[static_cast<size_t>(u)]);
  }
  for (int32_t i = 0; i < num_items_; ++i) {
    ds.by_item_[static_cast<size_t>(i)].reserve(
        item_counts[static_cast<size_t>(i)]);
  }
  for (const Rating& r : ds.ratings_) {
    ds.by_user_[static_cast<size_t>(r.user)].push_back({r.item, r.value});
    ds.by_item_[static_cast<size_t>(r.item)].push_back({r.user, r.value});
  }
  for (auto& row : ds.by_user_) {
    std::sort(row.begin(), row.end(),
              [](const ItemRating& a, const ItemRating& b) {
                return a.item < b.item;
              });
    for (size_t k = 1; k < row.size(); ++k) {
      if (row[k].item == row[k - 1].item) {
        return Status::InvalidArgument("duplicate (user, item) observation");
      }
    }
  }
  for (auto& col : ds.by_item_) {
    std::sort(col.begin(), col.end(),
              [](const UserRating& a, const UserRating& b) {
                return a.user < b.user;
              });
  }
  return ds;
}

}  // namespace ganc
