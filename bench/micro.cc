// google-benchmark micro-benchmarks for the performance-critical kernels:
// greedy top-N selection, Dyn coverage updates, KDE sampling, one SGD
// epoch, metric evaluation, theta^G iterations, and the blocked
// multi-user scoring engine.
//
// Pass `--json out.json` to additionally write the results as
// google-benchmark JSON (the committed BENCH_scoring.json snapshot is
// produced this way; see README "Performance").

#include <unistd.h>

#include <array>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <memory>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench/common.h"
#include "core/coverage.h"
#include "core/ganc.h"
#include "core/preference.h"
#include "data/loader.h"
#include "data/synthetic.h"
#include "eval/metrics.h"
#include "recommender/bpr.h"
#include "recommender/factor_kernels.h"
#include "recommender/factor_scoring_engine.h"
#include "recommender/factor_store.h"
#include "recommender/item_knn.h"
#include "recommender/item_similarity.h"
#include "recommender/model_io.h"
#include "recommender/random_walk.h"
#include "recommender/recommender.h"
#include "recommender/scoring_context.h"
#include "recommender/user_knn.h"
#include "serve/recommendation_service.h"
#include "serve/service_shard.h"
#include "serve/shard_router.h"
#include "util/kde.h"
#include "util/metrics.h"
#include "util/thread_pool.h"
#include "util/trace.h"
#include "util/stats.h"
#include "util/top_k.h"

namespace ganc {
namespace {

const RatingDataset& BenchTrain() {
  static const RatingDataset* train = [] {
    auto spec = TinySpec();
    spec.num_users = 500;
    spec.num_items = 800;
    spec.mean_activity = 60.0;
    auto ds = GenerateSynthetic(spec);
    return new RatingDataset(std::move(ds).value());
  }();
  return *train;
}

void BM_SelectTopK(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<ScoredItem> items(n);
  Rng rng(1);
  for (size_t i = 0; i < n; ++i) {
    items[i] = {static_cast<int32_t>(i), rng.Uniform()};
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(SelectTopK(items, 10));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_SelectTopK)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_GreedyTopNForUser(benchmark::State& state) {
  const RatingDataset& train = BenchTrain();
  PopRecommender pop;
  (void)pop.Fit(train);
  NormalizedAccuracyScorer scorer(&pop);
  const auto acc = scorer.ScoreAll(0);
  DynCoverage dyn(train.num_items());
  const auto cands = train.UnratedItems(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(GreedyTopNForUser(acc, 0.5, dyn, 0, cands, 5));
  }
}
BENCHMARK(BM_GreedyTopNForUser);

void BM_DynObserve(benchmark::State& state) {
  DynCoverage dyn(10000);
  int32_t i = 0;
  for (auto _ : state) {
    dyn.Observe(i);
    i = (i + 97) % 10000;
  }
}
BENCHMARK(BM_DynObserve);

void BM_KdeFitAndSample(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(2);
  std::vector<double> values(n);
  for (double& v : values) v = rng.Uniform();
  for (auto _ : state) {
    Rng local(3);
    benchmark::DoNotOptimize(KdeProportionalSample(values, n / 10, &local));
  }
}
BENCHMARK(BM_KdeFitAndSample)->Arg(500)->Arg(2000);

void BM_RsvdEpoch(benchmark::State& state) {
  const RatingDataset& train = BenchTrain();
  for (auto _ : state) {
    RsvdRecommender rsvd({.num_factors = 16, .num_epochs = 1});
    (void)rsvd.Fit(train);
    benchmark::DoNotOptimize(rsvd);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          train.num_ratings());
}
BENCHMARK(BM_RsvdEpoch);

void BM_PsvdFit(benchmark::State& state) {
  const RatingDataset& train = BenchTrain();
  for (auto _ : state) {
    PsvdRecommender psvd({.num_factors = static_cast<int32_t>(state.range(0))});
    (void)psvd.Fit(train);
    benchmark::DoNotOptimize(psvd);
  }
}
BENCHMARK(BM_PsvdFit)->Arg(10)->Arg(40);

void BM_ThetaGIteration(benchmark::State& state) {
  const RatingDataset& train = BenchTrain();
  for (auto _ : state) {
    GeneralizedPreferenceOptions opts;
    opts.max_iterations = 5;
    benchmark::DoNotOptimize(GeneralizedPreference(train, opts));
  }
}
BENCHMARK(BM_ThetaGIteration);

// --- Batched scoring path: allocating legacy calls vs the zero-allocation
// ScoreInto / RecommendTopNInto / pooled RecommendAllUsers pipeline.

const PsvdRecommender& BenchPsvd() {
  static const PsvdRecommender* psvd = [] {
    auto* model = new PsvdRecommender({.num_factors = 40});
    (void)model->Fit(BenchTrain());
    return model;
  }();
  return *psvd;
}

void BM_ScoreAll_Alloc(benchmark::State& state) {
  const RatingDataset& train = BenchTrain();
  const PsvdRecommender& psvd = BenchPsvd();
  UserId u = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(psvd.ScoreAll(u));
    u = (u + 1) % train.num_users();
  }
}
BENCHMARK(BM_ScoreAll_Alloc);

void BM_ScoreInto_Reuse(benchmark::State& state) {
  const RatingDataset& train = BenchTrain();
  const PsvdRecommender& psvd = BenchPsvd();
  ScoringContext ctx;
  UserId u = 0;
  for (auto _ : state) {
    const std::span<double> out =
        ctx.Scores(static_cast<size_t>(psvd.num_items()));
    psvd.ScoreInto(u, out);
    benchmark::DoNotOptimize(out.data());
    u = (u + 1) % train.num_users();
  }
}
BENCHMARK(BM_ScoreInto_Reuse);

// The blocked FactorScoringEngine batch kernel vs the per-user scalar
// loop above: same scores (bit-identical), one block of `range(0)` users
// per call. Time is per batch; items_per_second counts user-item scores.
void BM_ScoreBatchInto(benchmark::State& state) {
  const RatingDataset& train = BenchTrain();
  const PsvdRecommender& psvd = BenchPsvd();
  const size_t batch = static_cast<size_t>(state.range(0));
  ScoringContext ctx;
  std::vector<UserId> users(batch);
  UserId u = 0;
  for (auto _ : state) {
    for (size_t b = 0; b < batch; ++b) {
      users[b] = u;
      u = (u + 1) % train.num_users();
    }
    const std::span<double> out = ctx.BatchScores(
        batch * static_cast<size_t>(psvd.num_items()));
    psvd.ScoreBatchInto(users, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(batch) * psvd.num_items());
}
BENCHMARK(BM_ScoreBatchInto)->Arg(8)->Arg(64);

// Full-row top-k with the rated-item mask (the RecommendAllUsers
// selection path) over precomputed score rows.
void BM_SelectTopKDense(benchmark::State& state) {
  const RatingDataset& train = BenchTrain();
  const PsvdRecommender& psvd = BenchPsvd();
  const size_t ni = static_cast<size_t>(psvd.num_items());
  const size_t nu = static_cast<size_t>(train.num_users());
  ScoringContext ctx;
  std::vector<uint8_t> rated(ni, 0);
  // Rows are precomputed so the measurement isolates selection.
  std::vector<double> rows(nu * ni);
  for (size_t uu = 0; uu < nu; ++uu) {
    psvd.ScoreInto(static_cast<UserId>(uu),
                   std::span<double>(rows).subspan(uu * ni, ni));
  }
  UserId u = 0;
  for (auto _ : state) {
    for (const ItemRating& ir : train.ItemsOf(u)) {
      rated[static_cast<size_t>(ir.item)] = 1;
    }
    SelectTopKDenseInto(
        std::span<const double>(rows).subspan(static_cast<size_t>(u) * ni, ni),
        10,
        [&](int32_t item) { return rated[static_cast<size_t>(item)] != 0; },
        &ctx.TopK());
    for (const ItemRating& ir : train.ItemsOf(u)) {
      rated[static_cast<size_t>(ir.item)] = 0;
    }
    benchmark::DoNotOptimize(ctx.TopK().data());
    u = (u + 1) % train.num_users();
  }
}
BENCHMARK(BM_SelectTopKDense);

// Pop's scoring is a plain copy, so this pair isolates the per-user
// allocation cost that ScoreInto eliminates (PSVD above shows the
// compute-bound case where scoring work dominates).
void BM_ScoreAll_Alloc_Pop(benchmark::State& state) {
  const RatingDataset& train = BenchTrain();
  PopRecommender pop;
  (void)pop.Fit(train);
  UserId u = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pop.ScoreAll(u));
    u = (u + 1) % train.num_users();
  }
}
BENCHMARK(BM_ScoreAll_Alloc_Pop);

void BM_ScoreInto_Reuse_Pop(benchmark::State& state) {
  const RatingDataset& train = BenchTrain();
  PopRecommender pop;
  (void)pop.Fit(train);
  ScoringContext ctx;
  UserId u = 0;
  for (auto _ : state) {
    const std::span<double> out =
        ctx.Scores(static_cast<size_t>(pop.num_items()));
    pop.ScoreInto(u, out);
    benchmark::DoNotOptimize(out.data());
    u = (u + 1) % train.num_users();
  }
}
BENCHMARK(BM_ScoreInto_Reuse_Pop);

void BM_RecommendTopN_Alloc(benchmark::State& state) {
  const RatingDataset& train = BenchTrain();
  const PsvdRecommender& psvd = BenchPsvd();
  UserId u = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        psvd.RecommendTopN(u, train.UnratedItems(u), 10));
    u = (u + 1) % train.num_users();
  }
}
BENCHMARK(BM_RecommendTopN_Alloc);

void BM_RecommendTopNInto_Reuse(benchmark::State& state) {
  const RatingDataset& train = BenchTrain();
  const PsvdRecommender& psvd = BenchPsvd();
  ScoringContext ctx;
  std::vector<ItemId> out;
  UserId u = 0;
  for (auto _ : state) {
    train.UnratedItemsInto(u, &ctx.Candidates());
    psvd.RecommendTopNInto(u, ctx.Candidates(), 10, ctx, out);
    benchmark::DoNotOptimize(out.data());
    u = (u + 1) % train.num_users();
  }
}
BENCHMARK(BM_RecommendTopNInto_Reuse);

void BM_RecommendAllUsers(benchmark::State& state) {
  const RatingDataset& train = BenchTrain();
  const PsvdRecommender& psvd = BenchPsvd();
  const int threads = static_cast<int>(state.range(0));
  std::unique_ptr<ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<ThreadPool>(threads);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        RecommendAllUsers(psvd, train, 10, pool.get()));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          train.num_users());
}
BENCHMARK(BM_RecommendAllUsers)->Arg(1)->Arg(2)->Arg(4);

void BM_EvaluateTopN(benchmark::State& state) {
  const RatingDataset& train = BenchTrain();
  PopRecommender pop;
  (void)pop.Fit(train);
  const auto topn = RecommendAllUsers(pop, train, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        EvaluateTopN(train, train, topn, MetricsConfig{.top_n = 5}));
  }
}
BENCHMARK(BM_EvaluateTopN);

void BM_GiniCoefficient(benchmark::State& state) {
  Rng rng(4);
  std::vector<double> freq(static_cast<size_t>(state.range(0)));
  for (double& f : freq) f = std::floor(rng.Uniform() * 100.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(GiniCoefficient(freq));
  }
}
BENCHMARK(BM_GiniCoefficient)->Arg(1000)->Arg(20000);

// --- Persistence: artifact load vs training, and the binary dataset
// cache vs re-parsing text. Cold-serve startup cost is load, not train;
// these pairs quantify the gap (see README "Performance").

template <typename Model>
std::string SerializeModel(const Model& model) {
  std::ostringstream os(std::ios::binary);
  if (!model.Save(os).ok()) std::abort();
  return os.str();
}

void BM_ModelTrain_PSVD40(benchmark::State& state) {
  const RatingDataset& train = BenchTrain();
  for (auto _ : state) {
    PsvdRecommender model({.num_factors = 40});
    (void)model.Fit(train);
    benchmark::DoNotOptimize(model);
  }
}
BENCHMARK(BM_ModelTrain_PSVD40);

void BM_ModelLoad_PSVD40(benchmark::State& state) {
  const std::string artifact = SerializeModel(BenchPsvd());
  for (auto _ : state) {
    std::istringstream is(artifact, std::ios::binary);
    PsvdRecommender model;
    if (!model.Load(is, nullptr).ok()) std::abort();
    benchmark::DoNotOptimize(model);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(artifact.size()));
}
BENCHMARK(BM_ModelLoad_PSVD40);

void BM_ModelTrain_RSVD16(benchmark::State& state) {
  const RatingDataset& train = BenchTrain();
  for (auto _ : state) {
    RsvdRecommender model({.num_factors = 16, .num_epochs = 30});
    (void)model.Fit(train);
    benchmark::DoNotOptimize(model);
  }
}
BENCHMARK(BM_ModelTrain_RSVD16);

void BM_ModelLoad_RSVD16(benchmark::State& state) {
  const RatingDataset& train = BenchTrain();
  RsvdRecommender fitted({.num_factors = 16, .num_epochs = 30});
  (void)fitted.Fit(train);
  const std::string artifact = SerializeModel(fitted);
  for (auto _ : state) {
    std::istringstream is(artifact, std::ios::binary);
    RsvdRecommender model;
    if (!model.Load(is, nullptr).ok()) std::abort();
    benchmark::DoNotOptimize(model);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(artifact.size()));
}
BENCHMARK(BM_ModelLoad_RSVD16);

void BM_ModelTrain_BPR16(benchmark::State& state) {
  const RatingDataset& train = BenchTrain();
  for (auto _ : state) {
    BprRecommender model({.num_factors = 16, .num_epochs = 30});
    (void)model.Fit(train);
    benchmark::DoNotOptimize(model);
  }
}
BENCHMARK(BM_ModelTrain_BPR16);

void BM_ModelLoad_BPR16(benchmark::State& state) {
  const RatingDataset& train = BenchTrain();
  BprRecommender fitted({.num_factors = 16, .num_epochs = 30});
  (void)fitted.Fit(train);
  const std::string artifact = SerializeModel(fitted);
  for (auto _ : state) {
    std::istringstream is(artifact, std::ios::binary);
    BprRecommender model;
    if (!model.Load(is, nullptr).ok()) std::abort();
    benchmark::DoNotOptimize(model);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(artifact.size()));
}
BENCHMARK(BM_ModelLoad_BPR16);

// Per-process temp path so concurrent micro runs never clobber each
// other's bench files mid-iteration.
std::string BenchTempPath(const char* suffix) {
  return "/tmp/ganc_bench_" + std::to_string(::getpid()) + suffix;
}

void BM_DatasetParseText(benchmark::State& state) {
  const std::string path = BenchTempPath(".csv");
  if (!SaveRatingsFile(BenchTrain(), path).ok()) std::abort();
  for (auto _ : state) {
    auto loaded = LoadRatingsFile(path, {});
    if (!loaded.ok()) std::abort();
    benchmark::DoNotOptimize(loaded);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          BenchTrain().num_ratings());
}
BENCHMARK(BM_DatasetParseText);

void BM_DatasetCacheLoad(benchmark::State& state) {
  const std::string path = BenchTempPath(".gdc");
  if (!BenchTrain().SaveBinaryFile(path).ok()) std::abort();
  for (auto _ : state) {
    auto loaded = RatingDataset::LoadBinaryFile(path);
    if (!loaded.ok()) std::abort();
    benchmark::DoNotOptimize(loaded);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          BenchTrain().num_ratings());
}
BENCHMARK(BM_DatasetCacheLoad);

// Mapped cold open: header + O(users) sections only, no row
// materialization — the out-of-core serving start path. Contrast with
// BM_DatasetCacheLoad's full eager parse of the same file.
void BM_DatasetCacheMappedOpen(benchmark::State& state) {
  const std::string path = BenchTempPath("_mmap.gdc");
  if (!BenchTrain().SaveBinaryFile(path).ok()) std::abort();
  for (auto _ : state) {
    auto loaded = RatingDataset::LoadMappedFile(path);
    if (!loaded.ok()) std::abort();
    benchmark::DoNotOptimize(loaded);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          BenchTrain().num_ratings());
}
BENCHMARK(BM_DatasetCacheMappedOpen);

// Mapped open + EnsureResident: the lazy path paying its deferred
// O(nnz) validation and CSC build — total work comparable to the eager
// loader, split so serving never pays it.
void BM_DatasetCacheMappedResident(benchmark::State& state) {
  const std::string path = BenchTempPath("_mmapr.gdc");
  if (!BenchTrain().SaveBinaryFile(path).ok()) std::abort();
  for (auto _ : state) {
    auto loaded = RatingDataset::LoadMappedFile(path);
    if (!loaded.ok() || !loaded->EnsureResident().ok()) std::abort();
    benchmark::DoNotOptimize(loaded);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          BenchTrain().num_ratings());
}
BENCHMARK(BM_DatasetCacheMappedResident);

// Mapped model load: factor tables borrowed from the file mapping
// instead of copied (contrast with BM_ModelLoad_PSVD40).
void BM_ModelLoadMapped_PSVD40(benchmark::State& state) {
  const std::string path = BenchTempPath("_mmap.gam");
  if (!SaveModelFile(BenchPsvd(), path).ok()) std::abort();
  for (auto _ : state) {
    auto loaded = LoadModelFileMapped(path, nullptr);
    if (!loaded.ok()) std::abort();
    benchmark::DoNotOptimize(loaded);
  }
}
BENCHMARK(BM_ModelLoadMapped_PSVD40);

// Streaming power-law corpus generation (the 1M-user scale harness's
// writer) at a bench-friendly size.
void BM_ScaleSynthStream(benchmark::State& state) {
  ScaleSyntheticSpec spec = PowerLawScaleSpec(2000);
  spec.num_items = 1000;
  const std::string path = BenchTempPath("_scale.gdc");
  int64_t nnz = 0;
  for (auto _ : state) {
    auto result = GenerateSyntheticStream(spec, path);
    if (!result.ok()) std::abort();
    nnz = *result;
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * nnz);
}
BENCHMARK(BM_ScaleSynthStream);

// --- Sparse-model fast path: inverted-index KNN training, the id-sorted
// similarity lookup, and the sparse models' batched scoring (see
// BENCH_sparse.json for the PR 3 hash-map-builder baseline).

void BM_KnnTrain_Item(benchmark::State& state) {
  const RatingDataset& train = BenchTrain();
  const int32_t max_profile = static_cast<int32_t>(state.range(0));
  for (auto _ : state) {
    ItemKnnRecommender model({.max_profile = max_profile});
    (void)model.Fit(train);
    benchmark::DoNotOptimize(model);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          train.num_ratings());
}
BENCHMARK(BM_KnnTrain_Item)->Arg(512)->Arg(32);

void BM_KnnTrain_User(benchmark::State& state) {
  const RatingDataset& train = BenchTrain();
  const int32_t max_audience = static_cast<int32_t>(state.range(0));
  for (auto _ : state) {
    UserKnnRecommender model({.max_audience = max_audience});
    (void)model.Fit(train);
    benchmark::DoNotOptimize(model);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          train.num_ratings());
}
BENCHMARK(BM_KnnTrain_User)->Arg(512)->Arg(32);

// One 64-user block per iteration through RP3b's dedicated batch walk;
// items_per_second counts user-item scores.
void BM_Rp3bScoreBatch(benchmark::State& state) {
  const RatingDataset& train = BenchTrain();
  static const RandomWalkRecommender* rp3b = [] {
    auto* model = new RandomWalkRecommender();
    (void)model->Fit(BenchTrain());
    return model;
  }();
  const size_t batch = 64;
  const size_t ni = static_cast<size_t>(rp3b->num_items());
  ScoringContext ctx;
  std::vector<UserId> users(batch);
  UserId u = 0;
  for (auto _ : state) {
    for (size_t b = 0; b < batch; ++b) {
      users[b] = u;
      u = (u + 1) % train.num_users();
    }
    const std::span<double> out = ctx.BatchScores(batch * ni);
    rp3b->ScoreBatchInto(users, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(batch * ni));
}
BENCHMARK(BM_Rp3bScoreBatch);

// The sparse KNN batch scatter loops (the prefetch-tuning targets; see
// docs/ARCHITECTURE.md "Hardware-adaptive scoring kernels" for the
// measured before/after). One 64-user block per iteration.
template <typename Model>
void SparseScoreBatchLoop(benchmark::State& state, const Model& model) {
  const RatingDataset& train = BenchTrain();
  const size_t batch = 64;
  const size_t ni = static_cast<size_t>(model.num_items());
  ScoringContext ctx;
  std::vector<UserId> users(batch);
  UserId u = 0;
  for (auto _ : state) {
    for (size_t b = 0; b < batch; ++b) {
      users[b] = u;
      u = (u + 1) % train.num_users();
    }
    const std::span<double> out = ctx.BatchScores(batch * ni);
    model.ScoreBatchInto(users, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(batch * ni));
}

void BM_ItemKnnScoreBatch(benchmark::State& state) {
  static const ItemKnnRecommender* knn = [] {
    auto* model = new ItemKnnRecommender({.num_neighbors = 50});
    (void)model->Fit(BenchTrain());
    return model;
  }();
  SparseScoreBatchLoop(state, *knn);
}
BENCHMARK(BM_ItemKnnScoreBatch);

void BM_UserKnnScoreBatch(benchmark::State& state) {
  static const UserKnnRecommender* knn = [] {
    auto* model = new UserKnnRecommender({.num_neighbors = 50});
    (void)model->Fit(BenchTrain());
    return model;
  }();
  SparseScoreBatchLoop(state, *knn);
}
BENCHMARK(BM_UserKnnScoreBatch);

// Random-pair Similarity(i, j) lookups (the MMR/RBT re-ranker hot call):
// branchless binary search in the id-sorted view vs the legacy O(k)
// scan of the best-first list. range(0) = num_neighbors k.
void BM_SimilarityLookup(benchmark::State& state) {
  const RatingDataset& train = BenchTrain();
  const ItemSimilarityIndex index(
      train, static_cast<int32_t>(state.range(0)), 512, 31);
  Rng rng(9);
  std::vector<std::pair<ItemId, ItemId>> pairs(4096);
  for (auto& p : pairs) {
    p.first = static_cast<ItemId>(
        rng.UniformInt(static_cast<uint64_t>(train.num_items())));
    p.second = static_cast<ItemId>(
        rng.UniformInt(static_cast<uint64_t>(train.num_items())));
  }
  size_t q = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        index.Similarity(pairs[q].first, pairs[q].second));
    q = (q + 1) % pairs.size();
  }
}
BENCHMARK(BM_SimilarityLookup)->Arg(50)->Arg(200);

// --- Online serving layer (src/serve) ---------------------------------
//
// The throughput pair is the committed BENCH_serving.json story: the
// same PSVD40 snapshot served through the request micro-batcher vs the
// one-request-at-a-time baseline, hammered by 8 client threads. The
// batched path amortizes the blocked 8-user kernel across concurrent
// requests; the unbatched path scores each request alone. Caches are
// off so every request pays live scoring.

// Serving-shaped corpus: a catalog in the thousands (production
// catalogs are 1e4..1e6 items), so a request's cost is dominated by the
// full-catalog scoring pass the batcher amortizes — at toy catalog
// sizes the fixed per-request cost (wakeups, cache key, selection)
// drowns the kernel.
const RatingDataset& ServeBenchTrain() {
  static const RatingDataset* train = [] {
    auto spec = TinySpec();
    spec.num_users = 300;
    spec.num_items = 6000;
    spec.mean_activity = 40.0;
    auto ds = GenerateSynthetic(spec);
    return new RatingDataset(std::move(ds).value());
  }();
  return *train;
}

const PsvdRecommender& ServeModel() {
  static const PsvdRecommender* model = [] {
    auto* m = new PsvdRecommender(PsvdConfig{.num_factors = 40});
    (void)m->Fit(ServeBenchTrain());
    return m;
  }();
  return *model;
}

// Services are created once and leaked (their worker threads must not
// outlive a destroyed condition variable at static-destruction time —
// the SharedPool convention).
RecommendationService* MakeServeService(bool micro_batching,
                                        size_t cache_capacity) {
  ServiceConfig config;
  config.micro_batching = micro_batching;
  config.cache_capacity = cache_capacity;
  config.num_workers = 1;
  config.default_n = 10;
  auto service =
      RecommendationService::Create(ServeModel(), ServeBenchTrain(), config);
  if (!service.ok()) {
    std::fprintf(stderr, "serve bench: %s\n",
                 service.status().ToString().c_str());
    std::exit(1);
  }
  return service->release();
}

void ServeThroughputLoop(benchmark::State& state,
                         RecommendationService* service) {
  const int32_t num_users = service->num_users();
  UserId u = static_cast<UserId>(
      (state.thread_index() * 131) % num_users);
  std::vector<ItemId> out;
  for (auto _ : state) {
    if (!service->TopNInto(u, 10, {}, &out).ok()) {
      state.SkipWithError("TopN failed");
      return;
    }
    benchmark::DoNotOptimize(out.data());
    u = static_cast<UserId>((u + 1) % num_users);
  }
  state.SetItemsProcessed(state.iterations());
  const ServeStats stats = service->stats();
  state.counters["mean_batch_fill"] = benchmark::Counter(
      stats.MeanBatchFill(), benchmark::Counter::kAvgThreads);
}

void BM_ServeThroughput(benchmark::State& state) {
  static RecommendationService* service = MakeServeService(
      /*micro_batching=*/true, /*cache_capacity=*/0);
  ServeThroughputLoop(state, service);
}
BENCHMARK(BM_ServeThroughput)->Threads(8)->UseRealTime();

void BM_ServeThroughputUnbatched(benchmark::State& state) {
  static RecommendationService* service = MakeServeService(
      /*micro_batching=*/false, /*cache_capacity=*/0);
  ServeThroughputLoop(state, service);
}
BENCHMARK(BM_ServeThroughputUnbatched)->Threads(8)->UseRealTime();

// Lone-request latency through the scheduler: no concurrent traffic, so
// the bounded-wait flush must dispatch immediately (this bench is the
// regression guard for that policy — a timer stall would show up as
// ~max_batch_wait per request).
void BM_ServeLatency(benchmark::State& state) {
  static RecommendationService* service = MakeServeService(
      /*micro_batching=*/true, /*cache_capacity=*/0);
  ServeThroughputLoop(state, service);
}
BENCHMARK(BM_ServeLatency);

// Router fan-out cost: the same snapshot served through a ShardRouter
// with 1 vs 3 in-process shards, 8 client threads. One shard measures
// the pure routing overhead over BM_ServeThroughput; three shards show
// what per-shard batcher/cache isolation buys (and costs) when the
// request stream is hash-partitioned — with one worker per shard,
// concurrent requests for different shards no longer contend on a
// single batcher.
ShardRouter* MakeRouter(size_t num_shards) {
  ServiceConfig config;
  config.micro_batching = true;
  config.cache_capacity = 0;
  config.num_workers = 1;
  config.default_n = 10;
  std::vector<std::unique_ptr<ServiceShard>> shards;
  for (size_t k = 0; k < num_shards; ++k) {
    auto service =
        RecommendationService::Create(ServeModel(), ServeBenchTrain(), config);
    if (!service.ok()) {
      std::fprintf(stderr, "router bench: %s\n",
                   service.status().ToString().c_str());
      std::exit(1);
    }
    auto shard = ServiceShard::Adopt(std::move(service).value(),
                                     SnapshotKind::kModel, ServeBenchTrain(),
                                     ShardSpec{k, num_shards}, config);
    if (!shard.ok()) {
      std::fprintf(stderr, "router bench: %s\n",
                   shard.status().ToString().c_str());
      std::exit(1);
    }
    shards.push_back(std::move(shard).value());
  }
  auto router = ShardRouter::FromShards(std::move(shards));
  if (!router.ok()) {
    std::fprintf(stderr, "router bench: %s\n",
                 router.status().ToString().c_str());
    std::exit(1);
  }
  return router->release();
}

void BM_RouterTopN(benchmark::State& state) {
  // Leaked like the serve services (worker-thread static-destruction
  // convention), one router per shard count.
  static ShardRouter* one = MakeRouter(1);
  static ShardRouter* three = MakeRouter(3);
  // The production request path runs with metrics on and 1-in-16 trace
  // sampling, so that is what this bench measures: every iteration pays
  // the sampling decision, sampled ones carry a live RequestTrace
  // through the router and commit it to the ring.
  static TraceRing* ring = new TraceRing(256, 16, 0x6a4c431d2f10ull);
  static std::atomic<uint64_t> seq_counter{0};
  ShardRouter* router = state.range(0) == 1 ? one : three;
  const int32_t num_users = router->num_users();
  UserId u = static_cast<UserId>((state.thread_index() * 131) % num_users);
  std::vector<ItemId> out;
  for (auto _ : state) {
    const uint64_t seq = seq_counter.fetch_add(1, std::memory_order_relaxed);
    std::unique_ptr<RequestTrace> trace =
        ring->ShouldSample(seq) ? ring->Begin(seq) : nullptr;
    if (!router->TopNInto(u, 10, {}, &out, nullptr, trace.get()).ok()) {
      state.SkipWithError("router TopN failed");
      return;
    }
    if (trace != nullptr) {
      trace->Stamp(TraceStage::kRespond, MonotonicNowNs());
      ring->Commit(std::move(trace));
    }
    benchmark::DoNotOptimize(out.data());
    u = static_cast<UserId>((u + 1) % num_users);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RouterTopN)->Arg(1)->Arg(3)->Threads(8)->UseRealTime();

// Repeated identical request: the sharded LRU hit path.
void BM_ServeCacheHit(benchmark::State& state) {
  static RecommendationService* service = MakeServeService(
      /*micro_batching=*/true, /*cache_capacity=*/4096);
  std::vector<ItemId> out;
  for (auto _ : state) {
    if (!service->TopNInto(7, 10, {}, &out).ok()) {
      state.SkipWithError("TopN failed");
      return;
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ServeCacheHit);

// --- Runtime-dispatched factor kernels -------------------------------
//
// ScoreBatchInto per dispatch variant x table precision — the committed
// BENCH_kernel.json story. Registered dynamically (not via BENCHMARK)
// because the variant set is a host property: only variants the CPU can
// actually run are timed. Each benchmark pins its variant with
// ForceKernelVariant and reports the resident factor-table bytes of the
// precision it scores from.

const FactorStore& KernelBenchStore(FactorPrecision precision) {
  // One fp64 table set (500 x 40 users, 800 x 40 items, serve-shaped)
  // narrowed/quantized per precision, so the three stores score the
  // same model.
  static const auto* stores = [] {
    auto* built = new std::array<FactorStore, 3>();
    Rng rng(11);
    const size_t nu = 500, ni = 800, g = 40;
    std::vector<double> user(nu * g);
    std::vector<double> item(ni * g);
    for (double& v : user) v = rng.Uniform() - 0.5;
    for (double& v : item) v = rng.Uniform() - 0.5;
    const FactorPrecision precisions[3] = {FactorPrecision::kFp64,
                                           FactorPrecision::kFp32,
                                           FactorPrecision::kInt8};
    for (size_t p = 0; p < 3; ++p) {
      (*built)[p].AdoptFp64(user, item, nu, ni, g);
      if (!(*built)[p].SetPrecision(precisions[p]).ok()) std::abort();
    }
    return built;
  }();
  switch (precision) {
    case FactorPrecision::kFp64: return (*stores)[0];
    case FactorPrecision::kFp32: return (*stores)[1];
    case FactorPrecision::kInt8: return (*stores)[2];
  }
  std::abort();
}

void FactorScoreLoop(benchmark::State& state, KernelVariant variant,
                     FactorPrecision precision) {
  if (!ForceKernelVariant(variant).ok()) {
    state.SkipWithError("variant unsupported on this host");
    return;
  }
  const FactorStore& store = KernelBenchStore(precision);
  FactorView view;
  store.BindView(&view);
  view.num_items = static_cast<int32_t>(store.item_rows());
  const FactorScoringEngine engine(view);
  const size_t batch = 64;
  const size_t ni = store.item_rows();
  ScoringContext ctx;
  std::vector<UserId> users(batch);
  UserId u = 0;
  for (auto _ : state) {
    for (size_t b = 0; b < batch; ++b) {
      users[b] = u;
      u = (u + 1) % static_cast<UserId>(store.user_rows());
    }
    const std::span<double> out = ctx.BatchScores(batch * ni);
    engine.ScoreBatchInto(users, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(batch * ni));
  state.counters["factor_table_bytes"] = benchmark::Counter(
      static_cast<double>(store.ResidentBytes()));
  ResetKernelDispatch();
}

void RegisterFactorScoreBenchmarks() {
  for (const KernelVariant v : SupportedKernelVariants()) {
    for (const FactorPrecision p :
         {FactorPrecision::kFp64, FactorPrecision::kFp32,
          FactorPrecision::kInt8}) {
      const std::string name = std::string("BM_FactorScore_") +
                               KernelVariantName(v) + "_" +
                               FactorPrecisionName(p);
      benchmark::RegisterBenchmark(
          name.c_str(), [v, p](benchmark::State& state) {
            FactorScoreLoop(state, v, p);
          });
    }
  }
}

void BM_OslgEndToEnd(benchmark::State& state) {
  const RatingDataset& train = BenchTrain();
  PopRecommender pop;
  (void)pop.Fit(train);
  TopNIndicatorScorer scorer(&pop, &train, 5);
  const auto theta = bench::ThetaG(train);
  for (auto _ : state) {
    GancConfig cfg;
    cfg.top_n = 5;
    cfg.sample_size = static_cast<int>(state.range(0));
    benchmark::DoNotOptimize(
        bench::RunGanc(scorer, theta, CoverageKind::kDyn, train, cfg));
  }
}
BENCHMARK(BM_OslgEndToEnd)->Arg(50)->Arg(200);

}  // namespace
}  // namespace ganc

int main(int argc, char** argv) {
  // `--json out.json` is shorthand for google-benchmark's own
  // --benchmark_out/--benchmark_out_format pair, re-injected before
  // Initialize so the library handles the file reporting.
  const std::string json_path = ganc::bench::ExtractJsonFlag(&argc, argv);
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag, format_flag;
  if (!json_path.empty()) {
    out_flag = "--benchmark_out=" + json_path;
    format_flag = "--benchmark_out_format=json";
    args.push_back(out_flag.data());
    args.push_back(format_flag.data());
  }
  ganc::RegisterFactorScoreBenchmarks();
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
