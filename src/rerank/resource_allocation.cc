#include "rerank/resource_allocation.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <span>

#include "recommender/scoring_context.h"
#include "util/stats.h"
#include "util/top_k.h"

namespace ganc {

FiveDReranker::FiveDReranker(const Recommender* base,
                             const RatingDataset* train, FiveDConfig config)
    : base_(base), train_(train), config_(config) {
  tail_ = ComputeLongTail(*train);

  // Phase 1: rating-proportional resource allocation from users to items.
  item_resource_.assign(static_cast<size_t>(train->num_items()), 0.0);
  for (UserId u = 0; u < train->num_users(); ++u) {
    const auto& row = train->ItemsOf(u);
    double total = 0.0;
    for (const ItemRating& ir : row) total += ir.value;
    if (total <= 0.0) continue;
    for (const ItemRating& ir : row) {
      item_resource_[static_cast<size_t>(ir.item)] +=
          static_cast<double>(ir.value) / total;
    }
  }

  inv_popularity_.assign(static_cast<size_t>(train->num_items()), 0.0);
  item_avg_rating_.assign(static_cast<size_t>(train->num_items()), 0.0);
  for (ItemId i = 0; i < train->num_items(); ++i) {
    inv_popularity_[static_cast<size_t>(i)] =
        1.0 / std::sqrt(static_cast<double>(train->Popularity(i)) + 1.0);
    const auto& col = train->UsersOf(i);
    if (col.empty()) continue;
    double acc = 0.0;
    for (const UserRating& ur : col) acc += ur.value;
    item_avg_rating_[static_cast<size_t>(i)] =
        acc / static_cast<double>(col.size());
  }
}

std::string FiveDReranker::name() const {
  std::string n = "5D(" + base_->name();
  if (config_.accuracy_filter) n += ", A";
  if (config_.rank_by_rankings) n += ", RR";
  return n + ")";
}

namespace {

/// Per-user ascending ranks (0 = smallest value) for rank-by-rankings,
/// written into `ranks` with `order` as reusable argsort scratch. Ties
/// break by candidate position so the assigned ranks do not depend on
/// how the caller happened to order equal-valued candidates.
void RanksInto(std::span<const double> values, std::vector<size_t>* order,
               std::span<double> ranks) {
  order->resize(values.size());
  std::iota(order->begin(), order->end(), 0);
  std::sort(order->begin(), order->end(), [&](size_t a, size_t b) {
    if (values[a] != values[b]) return values[a] < values[b];
    return a < b;
  });
  for (size_t r = 0; r < order->size(); ++r) {
    ranks[(*order)[r]] = static_cast<double>(r);
  }
}

}  // namespace

Result<RerankedCollection> FiveDReranker::RecommendAll(
    const RatingDataset& train, int top_n) const {
  if (top_n <= 0) return Status::InvalidArgument("top_n must be positive");

  ScoringContext ctx;
  const size_t num_items = static_cast<size_t>(train.num_items());

  // Phase 2 denominator: sum over users of r_hat(s, i)^q per item.
  std::vector<double> denom(num_items, 0.0);
  ForEachScoredUser(*base_, 0, static_cast<size_t>(train.num_users()), ctx,
                    [&](UserId /*u*/, std::span<const double> scores) {
                      for (size_t i = 0; i < num_items; ++i) {
                        denom[i] += std::pow(std::max(scores[i], 0.0),
                                             config_.q);
                      }
                    });

  RerankedCollection result(static_cast<size_t>(train.num_users()));
  ForEachScoredUser(*base_, 0, static_cast<size_t>(train.num_users()), ctx,
                    [&](UserId u, std::span<const double> scores) {
    std::vector<ItemId>& candidates = ctx.Candidates();
    train.UnratedItemsInto(u, &candidates);

    if (config_.accuracy_filter) {
      // "A": keep the user's top-k predicted items only, through the
      // shared partial-selection kernel. The kept SET matches the old
      // ad-hoc nth_element (same (score, item-id) comparator), but the
      // kept candidates are now in deterministic best-first order where
      // nth_element left an unspecified partition order — downstream
      // rank assignment is made order-independent by RanksInto's index
      // tie-break.
      const size_t k = static_cast<size_t>(config_.accuracy_filter_multiple) *
                       static_cast<size_t>(top_n);
      if (candidates.size() > k) {
        std::vector<ScoredItem>& top = ctx.TopK();
        SelectTopKFromScoresInto(scores, candidates, k, &top);
        candidates.clear();
        for (const ScoredItem& s : top) candidates.push_back(s.item);
      }
    }

    // The five dimensions over the candidate pool, in reusable buffers.
    const size_t m = candidates.size();
    const std::span<double> accuracy = ctx.Buffer(1, m);
    const std::span<double> balance = ctx.Buffer(2, m);
    const std::span<double> coverage = ctx.Buffer(3, m);
    const std::span<double> quality = ctx.Buffer(4, m);
    const std::span<double> quantity = ctx.Buffer(5, m);
    for (size_t c = 0; c < m; ++c) {
      const ItemId i = candidates[c];
      const size_t si = static_cast<size_t>(i);
      accuracy[c] = scores[si];
      const double rel =
          denom[si] > 0.0
              ? std::pow(std::max(scores[si], 0.0), config_.q) / denom[si]
              : 0.0;
      balance[c] = item_resource_[si] * rel;
      coverage[c] = inv_popularity_[si];
      quality[c] = item_avg_rating_[si];
      quantity[c] = tail_.Contains(i) ? 1.0 : 0.0;
    }

    const std::span<double> score = ctx.Buffer(6, m);
    std::fill(score.begin(), score.end(), 0.0);
    if (config_.rank_by_rankings) {
      // "RR": scale-free Borda aggregation of the per-dimension ranks,
      // accumulated through one shared rank buffer.
      const std::span<double> ranks = ctx.Buffer(7, m);
      for (const std::span<double> dim :
           {accuracy, balance, coverage, quality, quantity}) {
        RanksInto(dim, &ctx.Indices(), ranks);
        for (size_t c = 0; c < m; ++c) score[c] += ranks[c];
      }
    } else {
      MinMaxNormalize(accuracy);
      MinMaxNormalize(balance);
      MinMaxNormalize(coverage);
      MinMaxNormalize(quality);
      for (size_t c = 0; c < m; ++c) {
        score[c] = accuracy[c] + balance[c] + coverage[c] + quality[c] +
                   quantity[c];
      }
    }

    // Scatter the combined score into a dense per-item map so the shared
    // top-k kernel keeps the legacy (score, item-id) tie-breaking even
    // after the accuracy filter reordered `candidates`.
    const std::span<double> score_map = ctx.Buffer(8, num_items);
    for (size_t c = 0; c < m; ++c) {
      score_map[static_cast<size_t>(candidates[c])] = score[c];
    }
    std::vector<ScoredItem>& top = ctx.TopK();
    SelectTopKFromScoresInto(score_map, candidates,
                             static_cast<size_t>(top_n), &top);
    auto& out = result[static_cast<size_t>(u)];
    out.reserve(top.size());
    for (const ScoredItem& s : top) out.push_back(s.item);
  });
  return result;
}

}  // namespace ganc
