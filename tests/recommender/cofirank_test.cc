#include "recommender/cofirank.h"

#include <gtest/gtest.h>

#include "data/split.h"
#include "data/synthetic.h"
#include "eval/metrics.h"
#include "recommender/random_rec.h"
#include "recommender/recommender.h"

namespace ganc {
namespace {

CofiConfig FastConfig() {
  CofiConfig c;
  c.num_factors = 8;
  c.num_epochs = 40;
  return c;
}

TEST(CofiTest, FitsAndScores) {
  auto ds = GenerateSynthetic(TinySpec());
  ASSERT_TRUE(ds.ok());
  CofiRecommender cofi(FastConfig());
  ASSERT_TRUE(cofi.Fit(*ds).ok());
  EXPECT_EQ(cofi.ScoreAll(0).size(), static_cast<size_t>(ds->num_items()));
}

TEST(CofiTest, NameIncludesFactors) {
  EXPECT_EQ(CofiRecommender(FastConfig()).name(), "CofiR8");
  EXPECT_EQ(CofiRecommender(CofiConfig{}).name(), "CofiR100");
}

TEST(CofiTest, LearnsRelativePreferences) {
  // The model regresses per-user normalized ratings: a user's top-rated
  // train item should usually outscore their bottom-rated one.
  auto ds = GenerateSynthetic(TinySpec());
  ASSERT_TRUE(ds.ok());
  CofiRecommender cofi(FastConfig());
  ASSERT_TRUE(cofi.Fit(*ds).ok());
  int correct = 0, total = 0;
  for (UserId u = 0; u < ds->num_users(); ++u) {
    const auto& row = ds->ItemsOf(u);
    if (row.size() < 2) continue;
    const ItemRating* best = &row[0];
    const ItemRating* worst = &row[0];
    for (const ItemRating& ir : row) {
      if (ir.value > best->value) best = &ir;
      if (ir.value < worst->value) worst = &ir;
    }
    if (best->value == worst->value) continue;
    const auto s = cofi.ScoreAll(u);
    ++total;
    if (s[static_cast<size_t>(best->item)] >
        s[static_cast<size_t>(worst->item)]) {
      ++correct;
    }
  }
  ASSERT_GT(total, 10);
  EXPECT_GE(static_cast<double>(correct) / total, 0.65);
}

TEST(CofiTest, BeatsRandomOnHeldOutRanking) {
  auto spec = TinySpec();
  spec.num_users = 250;
  spec.num_items = 300;
  spec.mean_activity = 40.0;
  auto ds = GenerateSynthetic(spec);
  ASSERT_TRUE(ds.ok());
  auto split = PerUserRatioSplit(*ds, {.train_ratio = 0.5, .seed = 3});
  ASSERT_TRUE(split.ok());
  CofiRecommender cofi(FastConfig());
  ASSERT_TRUE(cofi.Fit(split->train).ok());
  RandomRecommender rnd(9);
  ASSERT_TRUE(rnd.Fit(split->train).ok());
  const MetricsConfig cfg{.top_n = 5};
  const auto cofi_m = EvaluateTopN(
      split->train, split->test, RecommendAllUsers(cofi, split->train, 5), cfg);
  const auto rnd_m = EvaluateTopN(
      split->train, split->test, RecommendAllUsers(rnd, split->train, 5), cfg);
  EXPECT_GT(cofi_m.recall, 1.5 * rnd_m.recall);
}

TEST(CofiTest, DeterministicPerSeed) {
  auto ds = GenerateSynthetic(TinySpec());
  ASSERT_TRUE(ds.ok());
  CofiRecommender a(FastConfig()), b(FastConfig());
  ASSERT_TRUE(a.Fit(*ds).ok());
  ASSERT_TRUE(b.Fit(*ds).ok());
  EXPECT_EQ(a.ScoreAll(2), b.ScoreAll(2));
}

TEST(CofiTest, InvalidConfigRejected) {
  auto ds = GenerateSynthetic(TinySpec());
  ASSERT_TRUE(ds.ok());
  CofiConfig c;
  c.num_factors = -1;
  EXPECT_FALSE(CofiRecommender(c).Fit(*ds).ok());
}

}  // namespace
}  // namespace ganc
