// Grouped-user analysis: how the trade-off plays out for infrequent vs
// active users (the cohorts the paper highlights for MT-200K/Netflix).
// Compares the base accuracy recommender with GANC per activity band.

#include <cstdio>

#include "bench/common.h"
#include "eval/grouped.h"
#include "recommender/recommender.h"
#include "util/csv.h"
#include "util/table.h"

using namespace ganc;
using namespace ganc::bench;

int main() {
  Banner("Grouped users",
         "accuracy/novelty per activity cohort (base vs GANC)");

  for (Corpus corpus : {Corpus::kMt200k, Corpus::kNetflix}) {
    const BenchData data = MakeData(corpus);
    const RatingDataset& train = data.train;
    std::printf("=== %s ===\n", data.name.c_str());

    PopRecommender pop;
    (void)pop.Fit(train);
    const TopNIndicatorScorer scorer(&pop, &train, 5);
    const auto theta = ThetaG(train);

    GancConfig cfg;
    cfg.top_n = 5;
    cfg.sample_size = 500;
    const auto base_topn = RecommendAllUsers(pop, train, 5, bench::SharedPool());
    const auto ganc_topn =
        RunGanc(scorer, theta, CoverageKind::kDyn, train, cfg);

    const MetricsConfig mcfg{.top_n = 5};
    for (const auto& [label, topn] :
         std::vector<std::pair<std::string,
                               const std::vector<std::vector<ItemId>>*>>{
             {"Pop", &base_topn}, {"GANC(Pop, thetaG, Dyn)", &ganc_topn}}) {
      std::printf("--- %s ---\n", label.c_str());
      TablePrinter table({"cohort", "users", "P@5", "R@5", "L@5", "C@5"});
      for (const GroupReport& g :
           EvaluateByActivity(train, data.test, *topn, mcfg)) {
        table.AddRow({g.name, std::to_string(g.num_users),
                      FormatDouble(g.metrics.precision, 4),
                      FormatDouble(g.metrics.recall, 4),
                      FormatDouble(g.metrics.lt_accuracy, 4),
                      FormatDouble(g.metrics.coverage, 4)});
      }
      table.Print();
    }
    std::printf("\n");
  }
  std::printf(
      "expected: infrequent users carry lower absolute accuracy under\n"
      "every model (less to learn from, fewer test items); GANC's novelty\n"
      "lift (LTAccuracy) applies across cohorts, not just power users.\n");
  return 0;
}
