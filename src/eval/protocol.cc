#include "eval/protocol.h"

namespace ganc {

std::string RankingProtocolName(RankingProtocol protocol) {
  switch (protocol) {
    case RankingProtocol::kAllUnrated:
      return "all-unrated-items";
    case RankingProtocol::kRatedTestItems:
      return "rated-test-items";
  }
  return "?";
}

std::vector<std::vector<ItemId>> BuildTopN(const Recommender& model,
                                           const RatingDataset& train,
                                           const RatingDataset& test,
                                           int top_n,
                                           RankingProtocol protocol,
                                           ThreadPool* pool) {
  std::vector<std::vector<ItemId>> result(
      static_cast<size_t>(train.num_users()));
  ParallelFor(pool, 0, static_cast<size_t>(train.num_users()), [&](size_t uu) {
    const UserId u = static_cast<UserId>(uu);
    std::vector<ItemId> candidates;
    if (protocol == RankingProtocol::kAllUnrated) {
      candidates = train.UnratedItems(u);
    } else {
      candidates.reserve(test.ItemsOf(u).size());
      for (const ItemRating& ir : test.ItemsOf(u)) {
        candidates.push_back(ir.item);
      }
    }
    result[uu] = model.RecommendTopN(u, candidates, top_n);
  });
  return result;
}

}  // namespace ganc
