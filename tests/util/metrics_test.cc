// MetricsRegistry unit suite: power-of-two bucket boundaries, exact
// snapshot merge semantics (associativity included — the property the
// shard router's recombination rides on), bit-exact wire round-trips,
// and a golden text exposition.

#include "util/metrics.h"

#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace ganc {
namespace {

TEST(LatencyHistogramTest, BucketBoundariesArePowersOfTwo) {
  // Bucket i holds 2^(i-1) < v <= 2^i; bucket 0 holds v <= 1.
  EXPECT_EQ(LatencyHistogram::BucketIndex(0), 0);
  EXPECT_EQ(LatencyHistogram::BucketIndex(1), 0);
  EXPECT_EQ(LatencyHistogram::BucketIndex(2), 1);
  EXPECT_EQ(LatencyHistogram::BucketIndex(3), 2);
  EXPECT_EQ(LatencyHistogram::BucketIndex(4), 2);
  EXPECT_EQ(LatencyHistogram::BucketIndex(5), 3);
  EXPECT_EQ(LatencyHistogram::BucketIndex(8), 3);
  EXPECT_EQ(LatencyHistogram::BucketIndex(9), 4);
  EXPECT_EQ(LatencyHistogram::BucketIndex(1024), 10);
  EXPECT_EQ(LatencyHistogram::BucketIndex(1025), 11);
  // Every bucket's inclusive upper bound is 2^i, and values land in the
  // bucket whose bound is the smallest power of two >= value.
  for (int i = 0; i < LatencyHistogram::kNumBuckets - 1; ++i) {
    const uint64_t bound = LatencyHistogram::BucketUpperBound(i);
    EXPECT_EQ(LatencyHistogram::BucketIndex(bound), i) << "bound " << bound;
    EXPECT_EQ(LatencyHistogram::BucketIndex(bound + 1), i + 1);
  }
  // Values beyond the last bound saturate into the last bucket.
  EXPECT_EQ(LatencyHistogram::BucketIndex(~uint64_t{0}),
            LatencyHistogram::kNumBuckets - 1);
}

TEST(LatencyHistogramTest, ObserveCountsAndSums) {
  LatencyHistogram h;
  h.Observe(1);
  h.Observe(2);
  h.Observe(2);
  h.Observe(1000);
  EXPECT_EQ(h.BucketCount(0), 1u);
  EXPECT_EQ(h.BucketCount(1), 2u);
  EXPECT_EQ(h.BucketCount(10), 1u);  // 512 < 1000 <= 1024
  EXPECT_EQ(h.Sum(), 1005u);
}

TEST(DistinctTest, CountsEachIdOnce) {
  Distinct d(130);  // forces a multi-word bitmap with a partial tail word
  EXPECT_EQ(d.num_words(), 3u);
  d.Mark(0);
  d.Mark(0);
  d.Mark(64);
  d.Mark(129);
  d.Mark(129);
  d.Mark(500);  // out of the universe: ignored, not counted
  EXPECT_EQ(d.Count(), 3u);
  EXPECT_EQ(d.word(0), 1u);
  EXPECT_EQ(d.word(1), 1u);
  EXPECT_EQ(d.word(2), uint64_t{1} << 1);
}

TEST(MetricsRegistryTest, GetReturnsStablePointers) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("mtest_stable_total", "help a");
  Counter* b = registry.GetCounter("mtest_stable_total", "different help");
  EXPECT_EQ(a, b);
  a->Increment(3);
  EXPECT_EQ(registry.Snapshot().CounterValue("mtest_stable_total"), 3u);
}

MetricsSnapshot MakeSnapshot(uint64_t c, double g, uint64_t hist_value,
                             std::vector<size_t> distinct_ids) {
  MetricsRegistry registry;
  registry.GetCounter("mtest_c_total", "counter")->Increment(c);
  registry.GetDCounter("mtest_d_sum", "dcounter")->Add(0.25 * c);
  registry.GetGauge("mtest_g", "gauge")->Set(g);
  registry.GetHistogram("mtest_h_ns", "histogram")->Observe(hist_value);
  Distinct* d = registry.GetDistinct("mtest_set", 200, "distinct");
  for (const size_t id : distinct_ids) d->Mark(id);
  return registry.Snapshot();
}

void ExpectSnapshotsEqual(const MetricsSnapshot& a, const MetricsSnapshot& b) {
  ASSERT_EQ(a.series.size(), b.series.size());
  for (const auto& [name, va] : a.series) {
    const MetricValue* vb = b.Find(name);
    ASSERT_NE(vb, nullptr) << name;
    EXPECT_EQ(va.kind, vb->kind) << name;
    EXPECT_EQ(va.u64, vb->u64) << name;
    EXPECT_EQ(va.sum, vb->sum) << name;
    EXPECT_EQ(va.capacity, vb->capacity) << name;
    EXPECT_EQ(va.buckets, vb->buckets) << name;
    // Bit-exact double comparison: the wire format is hexfloat, so not
    // even the last ulp may drift through a round-trip.
    uint64_t bits_a = 0, bits_b = 0;
    std::memcpy(&bits_a, &va.d, sizeof(bits_a));
    std::memcpy(&bits_b, &vb->d, sizeof(bits_b));
    EXPECT_EQ(bits_a, bits_b) << name;
  }
}

TEST(MetricsSnapshotTest, SerializeParseRoundTripsBitExactly) {
  MetricsRegistry registry;
  registry.GetCounter("mtest_rt_total", "c")->Increment(12345678901234ull);
  // Doubles chosen to be awkward in decimal: the round-trip must be
  // bit-exact regardless.
  registry.GetDCounter("mtest_rt_sum", "d")->Add(0.1 + 0.2);
  registry.GetGauge("mtest_rt_g", "g")->Set(-1.0 / 3.0);
  registry.GetGauge("mtest_rt_g2", "g")->Set(1e300);
  LatencyHistogram* h = registry.GetHistogram("mtest_rt_ns", "h");
  h->Observe(1);
  h->Observe(77);
  h->Observe(1u << 20);
  Distinct* d = registry.GetDistinct("mtest_rt_set", 150, "D");
  d->Mark(3);
  d->Mark(64);
  d->Mark(149);
  registry.GetCounter("mtest_rt_labeled_total{gen=\"2\"}", "labeled")
      ->Increment(9);

  const MetricsSnapshot snap = registry.Snapshot();
  const std::string wire = snap.Serialize();
  EXPECT_EQ(wire.rfind("GANCM1 ", 0), 0u);
  EXPECT_EQ(wire.find('\n'), std::string::npos);
  Result<MetricsSnapshot> parsed = MetricsSnapshot::Parse(wire);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ExpectSnapshotsEqual(snap, *parsed);
  // And a second generation of the round-trip is a fixed point.
  Result<MetricsSnapshot> again = MetricsSnapshot::Parse(parsed->Serialize());
  ASSERT_TRUE(again.ok());
  ExpectSnapshotsEqual(snap, *again);
}

TEST(MetricsSnapshotTest, ParseRejectsMalformedPayloads) {
  EXPECT_FALSE(MetricsSnapshot::Parse("").ok());
  EXPECT_FALSE(MetricsSnapshot::Parse("BOGUS1 a|c|1").ok());
  EXPECT_FALSE(MetricsSnapshot::Parse("GANCM1 name-without-kind").ok());
  EXPECT_FALSE(MetricsSnapshot::Parse("GANCM1 a|x|1").ok());
  EXPECT_FALSE(MetricsSnapshot::Parse("GANCM1 a|c|notanumber").ok());
  // The empty snapshot is valid.
  Result<MetricsSnapshot> empty = MetricsSnapshot::Parse("GANCM1");
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->series.empty());
}

TEST(MetricsSnapshotTest, MergeIsExactPerKind) {
  MetricsSnapshot a = MakeSnapshot(10, 5.0, 100, {1, 2, 3});
  const MetricsSnapshot b = MakeSnapshot(32, 2.0, 100000, {3, 4});
  a.MergeFrom(b);
  EXPECT_EQ(a.CounterValue("mtest_c_total"), 42u);       // counters add
  EXPECT_DOUBLE_EQ(a.DoubleValue("mtest_d_sum"), 10.5);  // dcounters add
  EXPECT_DOUBLE_EQ(a.DoubleValue("mtest_g"), 5.0);       // gauges take max
  const MetricValue* h = a.Find("mtest_h_ns");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->u64, 2u);          // histogram counts add
  EXPECT_EQ(h->sum, 100100u);     // and so do sums
  // Distinct merge is the set union: {1,2,3} | {3,4} has 4 elements,
  // where a sum of per-shard counts would wrongly say 5.
  EXPECT_EQ(a.CounterValue("mtest_set"), 4u);
}

TEST(MetricsSnapshotTest, MergeIsAssociativeAndCommutative) {
  const MetricsSnapshot a = MakeSnapshot(1, 9.0, 3, {0, 10});
  const MetricsSnapshot b = MakeSnapshot(2, 7.0, 1u << 30, {10, 20});
  const MetricsSnapshot c = MakeSnapshot(4, 8.0, 17, {20, 30, 199});

  MetricsSnapshot ab_c = a;   // (a + b) + c
  ab_c.MergeFrom(b);
  ab_c.MergeFrom(c);
  MetricsSnapshot bc = b;     // a + (b + c)
  bc.MergeFrom(c);
  MetricsSnapshot a_bc = a;
  a_bc.MergeFrom(bc);
  ExpectSnapshotsEqual(ab_c, a_bc);

  MetricsSnapshot cba = c;    // and in reverse order
  cba.MergeFrom(b);
  cba.MergeFrom(a);
  ExpectSnapshotsEqual(ab_c, cba);

  EXPECT_EQ(ab_c.CounterValue("mtest_c_total"), 7u);
  EXPECT_EQ(ab_c.CounterValue("mtest_set"), 5u);  // union {0,10,20,30,199}
}

TEST(MetricsSnapshotTest, ExpositionGolden) {
  MetricsRegistry registry;
  registry.GetCounter("ztest_requests_total", "Requests served.")
      ->Increment(7);
  registry.GetGauge("ztest_rss_mb", "Peak RSS.")->Set(12.5);
  LatencyHistogram* h =
      registry.GetHistogram("ztest_wait_ns", "Wait time, nanoseconds.");
  h->Observe(1);
  h->Observe(3);
  h->Observe(4);
  registry.GetCounter("ztest_lists_total{gen=\"1\"}", "Lists per generation.")
      ->Increment(2);
  Distinct* d = registry.GetDistinct("ztest_seen", 100, "Distinct ids seen.");
  d->Mark(5);
  d->Mark(6);

  const std::string expected =
      "# HELP ztest_lists_total Lists per generation.\n"
      "# TYPE ztest_lists_total counter\n"
      "ztest_lists_total{gen=\"1\"} 2\n"
      "# HELP ztest_requests_total Requests served.\n"
      "# TYPE ztest_requests_total counter\n"
      "ztest_requests_total 7\n"
      "# HELP ztest_rss_mb Peak RSS.\n"
      "# TYPE ztest_rss_mb gauge\n"
      "ztest_rss_mb 12.5\n"
      "# HELP ztest_seen Distinct ids seen.\n"
      "# TYPE ztest_seen counter\n"
      "ztest_seen 2\n"
      "# HELP ztest_wait_ns Wait time, nanoseconds.\n"
      "# TYPE ztest_wait_ns histogram\n"
      "ztest_wait_ns_bucket{le=\"1\"} 1\n"
      "ztest_wait_ns_bucket{le=\"2\"} 1\n"
      "ztest_wait_ns_bucket{le=\"4\"} 3\n"
      "ztest_wait_ns_bucket{le=\"+Inf\"} 3\n"
      "ztest_wait_ns_sum 8\n"
      "ztest_wait_ns_count 3\n";
  EXPECT_EQ(registry.Snapshot().RenderExposition(), expected);
}

TEST(HistogramQuantileTest, InterpolatesWithinBucketBounds) {
  MetricsRegistry registry;
  LatencyHistogram* h = registry.GetHistogram("mtest_q_ns", "q");
  for (int i = 0; i < 100; ++i) h->Observe(1000);  // all in (512, 1024]
  const MetricsSnapshot snap = registry.Snapshot();
  const MetricValue* v = snap.Find("mtest_q_ns");
  ASSERT_NE(v, nullptr);
  for (const double q : {0.5, 0.95, 0.99}) {
    const double est = HistogramQuantile(*v, q);
    EXPECT_GT(est, 512.0) << q;
    EXPECT_LE(est, 1024.0) << q;
  }
  // Quantiles are monotone in q.
  EXPECT_LE(HistogramQuantile(*v, 0.5), HistogramQuantile(*v, 0.95));
  EXPECT_LE(HistogramQuantile(*v, 0.95), HistogramQuantile(*v, 0.99));
  // Empty histogram: defined, zero.
  registry.GetHistogram("mtest_q_empty_ns", "q");
  const MetricsSnapshot snap2 = registry.Snapshot();
  EXPECT_EQ(HistogramQuantile(*snap2.Find("mtest_q_empty_ns"), 0.99), 0.0);
}

TEST(MetricsTest, MonotonicNowNsIsMonotone) {
  const uint64_t a = MonotonicNowNs();
  const uint64_t b = MonotonicNowNs();
  EXPECT_GE(b, a);
}

}  // namespace
}  // namespace ganc
