// Storage for a latent-factor model's user/item tables at a selectable
// precision (see factor_view.h for the precision semantics).
//
// Lifecycle: Fit produces fp64 tables and hands them over with
// AdoptFp64(); SetPrecision() then optionally narrows them to fp32 or
// quantizes to int8 — and *drops* the fp64 originals, which is the
// point (a compacted model's resident factor bytes shrink 2x / ~8x).
// Because narrowing is lossy, precision conversions only run off fp64
// tables: fp32 -> int8 is an error (re-fit or reload the fp64
// artifact).
//
// Ownership: all table access goes through spans that view either
// owned vectors (fitted or stream-loaded stores) or a memory-mapped
// artifact's factor-table section (LoadFromSection over a mapped
// reader). Mapped tables feed the SIMD scoring kernels in place — the
// v3 format 8-aligns every table inside the section precisely so no
// copy is needed. A keepalive pins the mapping for the store's life.
//
// Persistence: the store serializes as its own artifact section
// (kFactorTableSection, docs/FORMATS.md §factor tables) holding only
// the active precision's tables, so a quantized artifact cold-loads
// without ever materializing the fp64 table.

#ifndef GANC_RECOMMENDER_FACTOR_STORE_H_
#define GANC_RECOMMENDER_FACTOR_STORE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "recommender/factor_view.h"
#include "util/serialize.h"
#include "util/status.h"

namespace ganc {

class FactorStore {
 public:
  /// Takes ownership of fitted fp64 tables (user: rows_u x g, item:
  /// rows_i x g, row-major). Resets precision to fp64.
  void AdoptFp64(std::vector<double> user, std::vector<double> item,
                 size_t user_rows, size_t item_rows, size_t num_factors);

  /// Converts the tables to `p` in place. fp64 -> {fp64, fp32, int8}
  /// and identity conversions succeed; anything else is an error (the
  /// fp64 source is gone once compacted). Compacting a mapped fp64
  /// store materializes owned compact tables and releases the mapping
  /// reference.
  Status SetPrecision(FactorPrecision p);

  FactorPrecision precision() const { return precision_; }
  bool empty() const { return user_rows_ == 0 && item_rows_ == 0; }
  size_t num_factors() const { return num_factors_; }
  size_t user_rows() const { return user_rows_; }
  size_t item_rows() const { return item_rows_; }
  /// True when the active tables are borrowed from a file mapping.
  bool IsMapped() const { return keepalive_ != nullptr; }

  /// Points the view's factor-table fields (precision, typed pointers,
  /// num_factors) at this store. Bias fields and num_items are the
  /// caller's.
  void BindView(FactorView* view) const;

  /// fp64 row access for training-time code paths; requires fp64.
  std::span<const double> user_f64() const { return user_f64_view_; }
  std::span<const double> item_f64() const { return item_f64_view_; }

  /// Bytes in the active factor tables (incl. quantization side
  /// tables) — the number BENCH_kernel.json reports. For a mapped
  /// store these bytes are file-backed page cache, not private RSS.
  size_t ResidentBytes() const;

  /// Serializes the active tables as one section payload, 8-aligning
  /// every table relative to the payload start (v3 sections start
  /// 64-byte aligned in the file, so in-payload alignment is file
  /// alignment — the property mapped loads rely on).
  void Save(PayloadWriter* w) const;

  /// Parses a section payload written by Save() into owned tables.
  /// `aligned` selects the layout: v3 payloads carry alignment padding
  /// before each table, pre-v3 payloads are packed.
  Status Load(PayloadReader* r, bool aligned);

  /// Parses the factor-table section: borrows the tables zero-copy
  /// when `sec` is mapped (keepalive = the reader's mapping), copies
  /// into owned vectors otherwise. Pre-v3 stream payloads have no
  /// alignment padding; the artifact version picks the layout.
  Status LoadFromSection(ArtifactReader& r,
                         const ArtifactReader::Section& sec);

  void Clear();

 private:
  struct QuantizedRows {
    std::vector<int8_t> q;      // rows x g
    std::vector<float> scale;   // rows
    std::vector<float> center;  // rows
    std::vector<int32_t> qsum;  // rows, sum_f q[row][f]
  };
  struct QuantizedRowsView {
    std::span<const int8_t> q;
    std::span<const float> scale;
    std::span<const float> center;
    std::span<const int32_t> qsum;
  };

  static QuantizedRows Quantize(std::span<const double> src, size_t rows,
                                size_t g);
  Status ReadScalarHeader(PayloadReader* r);
  Status LoadOwned(PayloadReader* r, bool aligned);
  Status LoadBorrowed(PayloadReader* r);
  Status LoadQuantizedOwned(PayloadReader* r, bool aligned, QuantizedRows* out,
                            size_t rows, const char* side) const;
  Status LoadQuantizedBorrowed(PayloadReader* r, QuantizedRowsView* out,
                               size_t rows, const char* side) const;
  /// Points the views at the owned vectors (the non-mapped state).
  void RebindViews();

  FactorPrecision precision_ = FactorPrecision::kFp64;
  size_t user_rows_ = 0;
  size_t item_rows_ = 0;
  size_t num_factors_ = 0;

  // Owned storage (empty when the views borrow from a mapping).
  std::vector<double> user_f64_;
  std::vector<double> item_f64_;
  std::vector<float> user_f32_;
  std::vector<float> item_f32_;
  QuantizedRows user_q_;
  QuantizedRows item_q_;

  // The active tables: views over the owned vectors or the mapping.
  std::span<const double> user_f64_view_;
  std::span<const double> item_f64_view_;
  std::span<const float> user_f32_view_;
  std::span<const float> item_f32_view_;
  QuantizedRowsView user_qv_;
  QuantizedRowsView item_qv_;
  std::shared_ptr<const void> keepalive_;
};

}  // namespace ganc

#endif  // GANC_RECOMMENDER_FACTOR_STORE_H_
