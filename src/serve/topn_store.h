// Precomputed top-N store: offline-materialized recommendation lists for
// head users, serialized as artifact kind 4 (see docs/FORMATS.md).
//
// Real request traffic is popularity-skewed over users too: a small head
// of active users generates most requests. Precomputing their default
// top-N offline turns those requests into one O(1) flat-array slice at
// serve time. Storage is flat and offset-indexed — one offsets array of
// num_users + 1 entries over one contiguous item array (the same layout
// ItemSimilarityIndex uses) — so lookup is two loads, users outside the
// store simply own an empty slice, and a request for n smaller than the
// stored list length is answered by the list's prefix (top-N selection
// is best-first, so every prefix of a stored list is itself exact).
//
// A store is only valid against the exact snapshot it was built from:
// it records the train-set fingerprint and the source (model or
// pipeline) name, and RecommendationService::AttachStore refuses a
// mismatch, mirroring the model-artifact rebinding rules.

#ifndef GANC_SERVE_TOPN_STORE_H_
#define GANC_SERVE_TOPN_STORE_H_

#include <cstdint>
#include <istream>
#include <ostream>
#include <span>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "util/serialize.h"
#include "util/status.h"

namespace ganc {

/// Immutable flat store of per-user precomputed top-N lists. The flat
/// arrays are exposed through spans that either view owned vectors
/// (FromLists / stream Load) or borrow from a memory-mapped v3
/// artifact (LoadFileMapped): cold-open then validates offsets in
/// O(users) and pages lists in on first request. Move-only: the spans
/// alias owned heap buffers or the shared mapping.
class TopNStore {
 public:
  TopNStore() = default;
  TopNStore(TopNStore&&) noexcept = default;
  TopNStore& operator=(TopNStore&&) noexcept = default;
  TopNStore(const TopNStore&) = delete;
  TopNStore& operator=(const TopNStore&) = delete;

  /// Assembles a store from (user, list) pairs. `lists` need not cover
  /// every user and may arrive in any order; ids must be unique and in
  /// [0, num_users), every list at most `top_n` long with item ids in
  /// [0, num_items).
  static Result<TopNStore> FromLists(
      int32_t num_users, int32_t num_items, int32_t top_n,
      uint64_t train_fingerprint, std::string source,
      std::span<const std::pair<UserId, std::vector<ItemId>>> lists);

  /// The precomputed list of `u`, best-first; empty when `u` is not in
  /// the store. Borrowed from the store.
  std::span<const ItemId> ListFor(UserId u) const {
    const size_t uu = static_cast<size_t>(u);
    return items_view_.subspan(offsets_view_[uu],
                               offsets_view_[uu + 1] - offsets_view_[uu]);
  }

  int32_t num_users() const { return num_users_; }
  int32_t num_items() const { return num_items_; }
  /// The list length the store was built for (requests with n larger
  /// than this must fall back to live scoring).
  int32_t top_n() const { return top_n_; }
  uint64_t train_fingerprint() const { return train_fingerprint_; }
  /// Name of the model / pipeline the lists were computed with.
  const std::string& source() const { return source_; }
  /// Users with a non-empty precomputed list.
  size_t num_lists() const { return num_lists_; }
  /// Total stored item ids.
  size_t total_items() const { return items_view_.size(); }
  /// True when the flat arrays are borrowed from a file mapping.
  bool IsMapped() const { return mapped_ != nullptr; }

  /// Serializes the store as a kind-4 artifact (docs/FORMATS.md).
  Status Save(std::ostream& os) const;
  Status SaveFile(const std::string& path) const;

  /// Restores a store written by Save; every structural invariant
  /// (monotone offsets, list lengths, id ranges) is validated before any
  /// state is returned.
  static Result<TopNStore> Load(std::istream& is);
  static Result<TopNStore> LoadFile(const std::string& path);

  /// Opens a v3 store artifact as a zero-copy view over a file
  /// mapping: O(users) offset validation up front, item lists paged in
  /// on use (stored ids are only ever emitted, never indexed, so the
  /// per-item range scan of the stream loader is skipped). Returns
  /// kFailedPrecondition for pre-v3 artifacts and kNotImplemented
  /// without platform mmap (both mean "use LoadFile").
  static Result<TopNStore> LoadFileMapped(const std::string& path);

  /// LoadFileMapped when possible, transparent fallback to the stream
  /// loader otherwise (or always, when `prefer_mmap` is false).
  static Result<TopNStore> LoadFileAuto(const std::string& path,
                                        bool prefer_mmap);

 private:
  void BindOwnedViews() {
    offsets_view_ = offsets_;
    items_view_ = items_;
  }

  int32_t num_users_ = 0;
  int32_t num_items_ = 0;
  int32_t top_n_ = 0;
  uint64_t train_fingerprint_ = 0;
  std::string source_;
  size_t num_lists_ = 0;
  // Owned storage (empty when the views borrow from a mapping).
  std::vector<uint64_t> offsets_;
  std::vector<ItemId> items_;
  // num_users_ + 1 offsets over the flattened user-major lists.
  std::span<const uint64_t> offsets_view_;
  std::span<const ItemId> items_view_;
  std::shared_ptr<const MappedArtifact> mapped_;
};

/// The `count` most active users of `train` (ties broken by smaller id),
/// returned ascending by id — the natural head-user set to precompute.
/// count >= num_users (or 0) selects everyone.
std::vector<UserId> HeadUsersByActivity(const RatingDataset& train,
                                        size_t count);

}  // namespace ganc

#endif  // GANC_SERVE_TOPN_STORE_H_
