#include "eval/metrics.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "util/csv.h"
#include "util/stats.h"

namespace ganc {

MetricsReport EvaluateTopN(const RatingDataset& train,
                           const RatingDataset& test,
                           const std::vector<std::vector<ItemId>>& topn,
                           const MetricsConfig& config) {
  MetricsReport report;
  const int32_t n_users = train.num_users();
  const int32_t n_items = train.num_items();
  const size_t n = static_cast<size_t>(config.top_n);
  const LongTailInfo tail = ComputeLongTail(train);

  double hits_total = 0.0;           // sum_u |IT+_u ∩ P_u|
  double recall_sum = 0.0;           // sum_u hits_u / |IT+_u|
  double lt_total = 0.0;             // sum_u |L ∩ P_u|
  double strat_num = 0.0, strat_den = 0.0;
  double ndcg_sum = 0.0;
  int32_t ndcg_users = 0;
  std::vector<double> rec_freq(static_cast<size_t>(n_items), 0.0);

  for (UserId u = 0; u < n_users; ++u) {
    // Relevant test items: rated >= threshold in test.
    std::unordered_set<ItemId> relevant;
    for (const ItemRating& ir : test.ItemsOf(u)) {
      if (ir.value >= config.relevance_threshold) relevant.insert(ir.item);
    }
    // Stratified-recall denominator runs over IT+_u regardless of P_u.
    for (ItemId i : relevant) {
      const double f =
          std::max<double>(1.0, static_cast<double>(train.Popularity(i)));
      strat_den += std::pow(1.0 / f, config.strat_beta);
    }

    const auto& full_list = topn[static_cast<size_t>(u)];
    const size_t len = std::min(full_list.size(), n);
    double hits = 0.0;
    double dcg = 0.0;
    for (size_t k = 0; k < len; ++k) {
      const ItemId i = full_list[k];
      ++rec_freq[static_cast<size_t>(i)];
      if (tail.Contains(i)) lt_total += 1.0;
      if (relevant.count(i) > 0) {
        hits += 1.0;
        dcg += 1.0 / std::log2(static_cast<double>(k) + 2.0);
        const double f =
            std::max<double>(1.0, static_cast<double>(train.Popularity(i)));
        strat_num += std::pow(1.0 / f, config.strat_beta);
      }
    }
    hits_total += hits;
    if (!relevant.empty()) {
      recall_sum += hits / static_cast<double>(relevant.size());
      double idcg = 0.0;
      const size_t ideal = std::min(relevant.size(), n);
      for (size_t k = 0; k < ideal; ++k) {
        idcg += 1.0 / std::log2(static_cast<double>(k) + 2.0);
      }
      ndcg_sum += idcg > 0.0 ? dcg / idcg : 0.0;
      ++ndcg_users;
    }
  }

  const double users = static_cast<double>(n_users);
  report.precision = hits_total / (static_cast<double>(n) * users);
  report.recall = recall_sum / users;
  report.f_measure =
      (report.precision + report.recall) > 0.0
          ? report.precision * report.recall /
                (report.precision + report.recall)
          : 0.0;
  report.lt_accuracy = lt_total / (static_cast<double>(n) * users);
  report.strat_recall = strat_den > 0.0 ? strat_num / strat_den : 0.0;

  int32_t distinct = 0;
  for (double f : rec_freq) {
    if (f > 0.0) ++distinct;
  }
  report.coverage =
      n_items > 0 ? static_cast<double>(distinct) / static_cast<double>(n_items)
                  : 0.0;
  report.gini = GiniCoefficient(rec_freq);
  report.ndcg = ndcg_users > 0
                    ? ndcg_sum / static_cast<double>(ndcg_users)
                    : 0.0;
  return report;
}

std::vector<std::string> MetricsRow(const MetricsReport& report,
                                    int precision_digits) {
  return {FormatDouble(report.f_measure, precision_digits),
          FormatDouble(report.strat_recall, precision_digits),
          FormatDouble(report.lt_accuracy, precision_digits),
          FormatDouble(report.coverage, precision_digits),
          FormatDouble(report.gini, precision_digits)};
}

namespace {
/// 1-based competition ranks: best value gets rank 1; ties share the rank.
std::vector<int> RanksDescending(const std::vector<double>& values,
                                 bool higher_better) {
  const size_t n = values.size();
  std::vector<int> ranks(n, 1);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      const bool j_better = higher_better ? values[j] > values[i] + 1e-12
                                          : values[j] < values[i] - 1e-12;
      if (j_better) ++ranks[i];
    }
  }
  return ranks;
}
}  // namespace

std::vector<double> AverageRanks(const std::vector<MetricsReport>& reports) {
  const size_t n = reports.size();
  std::vector<double> f(n), s(n), l(n), c(n), g(n);
  for (size_t i = 0; i < n; ++i) {
    f[i] = reports[i].f_measure;
    s[i] = reports[i].strat_recall;
    l[i] = reports[i].lt_accuracy;
    c[i] = reports[i].coverage;
    g[i] = reports[i].gini;
  }
  const std::vector<int> rf = RanksDescending(f, true);
  const std::vector<int> rs = RanksDescending(s, true);
  const std::vector<int> rl = RanksDescending(l, true);
  const std::vector<int> rc = RanksDescending(c, true);
  const std::vector<int> rg = RanksDescending(g, false);  // lower gini wins
  std::vector<double> avg(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    avg[i] = (rf[i] + rs[i] + rl[i] + rc[i] + rg[i]) / 5.0;
  }
  return avg;
}

}  // namespace ganc
