#include "core/accuracy_scorer.h"

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "recommender/pop.h"
#include "recommender/rsvd.h"

namespace ganc {
namespace {

TEST(NormalizedAccuracyScorerTest, UnitIntervalAndOrderPreserving) {
  auto ds = GenerateSynthetic(TinySpec());
  ASSERT_TRUE(ds.ok());
  RsvdRecommender rsvd({.num_factors = 6, .num_epochs = 15});
  ASSERT_TRUE(rsvd.Fit(*ds).ok());
  NormalizedAccuracyScorer scorer(&rsvd);
  const auto raw = rsvd.ScoreAll(0);
  const auto norm = scorer.ScoreAll(0);
  ASSERT_EQ(raw.size(), norm.size());
  for (double v : norm) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
  // Ranking preserved.
  for (size_t i = 1; i < raw.size(); ++i) {
    if (raw[i] > raw[i - 1]) {
      EXPECT_GE(norm[i], norm[i - 1]);
    } else if (raw[i] < raw[i - 1]) {
      EXPECT_LE(norm[i], norm[i - 1]);
    }
  }
}

TEST(NormalizedAccuracyScorerTest, NamePassesThrough) {
  PopRecommender pop;
  NormalizedAccuracyScorer scorer(&pop);
  EXPECT_EQ(scorer.name(), "Pop");
}

TEST(TopNIndicatorScorerTest, ExactlyTopNOnes) {
  auto ds = GenerateSynthetic(TinySpec());
  ASSERT_TRUE(ds.ok());
  PopRecommender pop;
  ASSERT_TRUE(pop.Fit(*ds).ok());
  TopNIndicatorScorer scorer(&pop, &ds.value(), 5);
  const auto a = scorer.ScoreAll(0);
  int ones = 0;
  for (double v : a) {
    EXPECT_TRUE(v == 0.0 || v == 1.0);
    if (v == 1.0) ++ones;
  }
  EXPECT_EQ(ones, 5);
}

TEST(TopNIndicatorScorerTest, OnesAreUnseenPopTop) {
  auto ds = GenerateSynthetic(TinySpec());
  ASSERT_TRUE(ds.ok());
  PopRecommender pop;
  ASSERT_TRUE(pop.Fit(*ds).ok());
  TopNIndicatorScorer scorer(&pop, &ds.value(), 5);
  const UserId u = 0;
  const auto a = scorer.ScoreAll(u);
  const auto top = pop.RecommendTopN(u, ds->UnratedItems(u), 5);
  for (ItemId i : top) EXPECT_DOUBLE_EQ(a[static_cast<size_t>(i)], 1.0);
  // Items the user already rated never get accuracy credit.
  for (const ItemRating& ir : ds->ItemsOf(u)) {
    EXPECT_DOUBLE_EQ(a[static_cast<size_t>(ir.item)], 0.0);
  }
}

TEST(TopNIndicatorScorerTest, DiffersAcrossUsersWithDifferentProfiles) {
  auto ds = GenerateSynthetic(TinySpec());
  ASSERT_TRUE(ds.ok());
  PopRecommender pop;
  ASSERT_TRUE(pop.Fit(*ds).ok());
  TopNIndicatorScorer scorer(&pop, &ds.value(), 5);
  // Find two users with different profiles; indicators usually differ
  // because seen items are excluded.
  bool found_difference = false;
  for (UserId u = 1; u < ds->num_users() && !found_difference; ++u) {
    if (scorer.ScoreAll(0) != scorer.ScoreAll(u)) found_difference = true;
  }
  EXPECT_TRUE(found_difference);
}

}  // namespace
}  // namespace ganc
