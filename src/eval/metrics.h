// Performance metrics (Table III of the paper).
//
// Local ranking accuracy: Precision@N, Recall@N, F-measure@N (computed per
// user on highly-rated test items, averaged over all users).
// Long-tail promotion:    LTAccuracy@N, StratRecall@N (beta = 0.5).
// Coverage:               Coverage@N, Gini@N.
// Plus NDCG@N as an auxiliary ranking-quality metric.

#ifndef GANC_EVAL_METRICS_H_
#define GANC_EVAL_METRICS_H_

#include <string>
#include <vector>

#include "data/dataset.h"
#include "data/longtail.h"

namespace ganc {

/// Evaluation knobs.
struct MetricsConfig {
  int top_n = 5;
  /// A test item is relevant when its rating is >= this (paper: 4).
  double relevance_threshold = 4.0;
  /// Stratified-recall popularity exponent (paper: 0.5).
  double strat_beta = 0.5;
};

/// One evaluation's worth of metric values.
struct MetricsReport {
  double precision = 0.0;
  double recall = 0.0;
  double f_measure = 0.0;     ///< P*R/(P+R), the paper's definition
  double lt_accuracy = 0.0;
  double strat_recall = 0.0;
  double coverage = 0.0;
  double gini = 0.0;
  double ndcg = 0.0;
};

/// Evaluates a top-N collection (one list per user, best-first) against
/// the held-out test set. The long-tail set and popularity strata are
/// computed on `train`. Lists longer than config.top_n are truncated.
MetricsReport EvaluateTopN(const RatingDataset& train,
                           const RatingDataset& test,
                           const std::vector<std::vector<ItemId>>& topn,
                           const MetricsConfig& config);

/// Pretty row for tables: fixed-precision values in Table IV column order
/// (F, StratRecall, LTAccuracy, Coverage, Gini).
std::vector<std::string> MetricsRow(const MetricsReport& report,
                                    int precision_digits = 4);

/// Ranks algorithms per metric as in Table IV's parenthesized ranks and
/// "Score" column: rank 1 = best F, StratRecall, LTAccuracy, Coverage and
/// best (lowest) Gini; ties share the better rank. Returns the average
/// rank across the five metrics per algorithm, in input order.
std::vector<double> AverageRanks(const std::vector<MetricsReport>& reports);

}  // namespace ganc

#endif  // GANC_EVAL_METRICS_H_
