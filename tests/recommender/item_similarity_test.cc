#include "recommender/item_similarity.h"

#include <cmath>

#include <gtest/gtest.h>

#include "data/synthetic.h"

namespace ganc {
namespace {

TEST(ItemSimilarityTest, PerfectCoRatingGivesCosineOne) {
  // Items 0 and 1 rated identically by the same three users.
  RatingDatasetBuilder b(3, 3);
  for (UserId u = 0; u < 3; ++u) {
    ASSERT_TRUE(b.Add(u, 0, 4.0f).ok());
    ASSERT_TRUE(b.Add(u, 1, 4.0f).ok());
  }
  auto ds = std::move(b).Build();
  ASSERT_TRUE(ds.ok());
  ItemSimilarityIndex index(*ds, 10, 512, 1);
  EXPECT_NEAR(index.Similarity(0, 1), 1.0f, 1e-6);
  EXPECT_NEAR(index.Similarity(1, 0), 1.0f, 1e-6);
  EXPECT_FLOAT_EQ(index.Similarity(0, 2), 0.0f);
}

TEST(ItemSimilarityTest, PartialOverlapCosine) {
  // Item 0 rated by users {0,1}, item 1 by {1,2}; overlap on user 1 only.
  // With all ratings 1.0: dot = 1, norms = sqrt(2) each -> cos = 0.5.
  RatingDatasetBuilder b(3, 2);
  ASSERT_TRUE(b.Add(0, 0, 1.0f).ok());
  ASSERT_TRUE(b.Add(1, 0, 1.0f).ok());
  ASSERT_TRUE(b.Add(1, 1, 1.0f).ok());
  ASSERT_TRUE(b.Add(2, 1, 1.0f).ok());
  auto ds = std::move(b).Build();
  ASSERT_TRUE(ds.ok());
  ItemSimilarityIndex index(*ds, 10, 512, 1);
  EXPECT_NEAR(index.Similarity(0, 1), 0.5f, 1e-6);
}

TEST(ItemSimilarityTest, NeighborListsSortedAndTruncated) {
  auto ds = GenerateSynthetic(TinySpec());
  ASSERT_TRUE(ds.ok());
  ItemSimilarityIndex index(*ds, 5, 512, 1);
  for (ItemId i = 0; i < ds->num_items(); ++i) {
    const auto& nbs = index.NeighborsOf(i);
    EXPECT_LE(nbs.size(), 5u);
    for (size_t k = 1; k < nbs.size(); ++k) {
      EXPECT_GE(nbs[k - 1].sim, nbs[k].sim);
    }
    for (const auto& nb : nbs) {
      EXPECT_GT(nb.sim, 0.0f);
      EXPECT_NE(nb.item, i);  // no self-similarity entries
    }
  }
}

TEST(ItemSimilarityTest, DeterministicPerSeed) {
  auto ds = GenerateSynthetic(TinySpec());
  ASSERT_TRUE(ds.ok());
  ItemSimilarityIndex a(*ds, 5, 8, 3);
  ItemSimilarityIndex b(*ds, 5, 8, 3);
  for (ItemId i = 0; i < ds->num_items(); ++i) {
    ASSERT_EQ(a.NeighborsOf(i).size(), b.NeighborsOf(i).size());
    for (size_t k = 0; k < a.NeighborsOf(i).size(); ++k) {
      EXPECT_EQ(a.NeighborsOf(i)[k].item, b.NeighborsOf(i)[k].item);
    }
  }
}

TEST(ItemSimilarityTest, LookupFindsEveryStoredNeighborAndNoOthers) {
  // The binary-search lookup must hit every (i, j) the best-first lists
  // hold — including each row's first and last id-sorted entry — and
  // return 0 for absent pairs.
  auto ds = GenerateSynthetic(TinySpec());
  ASSERT_TRUE(ds.ok());
  ItemSimilarityIndex index(*ds, 5, 512, 1);
  for (ItemId i = 0; i < ds->num_items(); ++i) {
    std::vector<bool> present(static_cast<size_t>(ds->num_items()), false);
    for (const auto& nb : index.NeighborsOf(i)) {
      EXPECT_FLOAT_EQ(index.Similarity(i, nb.item), nb.sim);
      present[static_cast<size_t>(nb.item)] = true;
    }
    for (ItemId j = 0; j < ds->num_items(); ++j) {
      if (!present[static_cast<size_t>(j)]) {
        EXPECT_FLOAT_EQ(index.Similarity(i, j), 0.0f) << i << "," << j;
      }
    }
  }
}

TEST(ItemSimilarityTest, EmptyDatasetSafe) {
  RatingDatasetBuilder b(2, 3);
  auto ds = std::move(b).Build();
  ASSERT_TRUE(ds.ok());
  ItemSimilarityIndex index(*ds, 5, 512, 1);
  for (ItemId i = 0; i < 3; ++i) EXPECT_TRUE(index.NeighborsOf(i).empty());
}

}  // namespace
}  // namespace ganc
