// Golden parity suite for the sparse-model fast path: the inverted-index
// similarity builders (recommender/sparse_similarity.h) must reproduce
// the seed hash-map builders bit-for-bit — neighbour ids, float sims,
// and order, across sampled and unsampled configs — and the threaded
// sweep must save byte-identical artifacts to the serial one. The
// reference implementations below are verbatim copies of the seed
// algorithms (PR 3, commit 4f5789d) kept as executable specification.

#include "recommender/sparse_similarity.h"

#include <cmath>
#include <cstdint>
#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "recommender/item_knn.h"
#include "recommender/item_similarity.h"
#include "recommender/random_walk.h"
#include "recommender/scoring_context.h"
#include "recommender/user_knn.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace ganc {
namespace {

RatingDataset MakeData() {
  SyntheticSpec spec = TinySpec();
  spec.num_users = 120;
  spec.num_items = 220;
  spec.mean_activity = 22.0;
  auto ds = GenerateSynthetic(spec);
  EXPECT_TRUE(ds.ok());
  return std::move(ds).value();
}

// --- Seed reference: item-item cosine via per-pair hash maps. ---

std::vector<std::vector<ItemNeighbor>> ReferenceItemLists(
    const RatingDataset& train, int32_t num_neighbors, int32_t max_profile,
    uint64_t seed) {
  const int32_t num_items = train.num_items();
  std::vector<double> norms(static_cast<size_t>(num_items), 0.0);
  for (const Rating& r : train.ratings()) {
    norms[static_cast<size_t>(r.item)] +=
        static_cast<double>(r.value) * static_cast<double>(r.value);
  }
  for (double& n : norms) n = std::sqrt(n);

  Rng rng(seed);
  std::vector<std::unordered_map<ItemId, double>> dots(
      static_cast<size_t>(num_items));
  for (UserId u = 0; u < train.num_users(); ++u) {
    const auto full_row = train.ItemsOf(u);
    std::vector<ItemRating> row(full_row.begin(), full_row.end());
    if (static_cast<int32_t>(row.size()) > max_profile) {
      rng.Shuffle(&row);
      row.resize(static_cast<size_t>(max_profile));
    }
    for (size_t a = 0; a < row.size(); ++a) {
      for (size_t b = a + 1; b < row.size(); ++b) {
        const double contrib = static_cast<double>(row[a].value) *
                               static_cast<double>(row[b].value);
        const ItemId lo = std::min(row[a].item, row[b].item);
        const ItemId hi = std::max(row[a].item, row[b].item);
        dots[static_cast<size_t>(lo)][hi] += contrib;
      }
    }
  }

  std::vector<std::vector<ItemNeighbor>> all(static_cast<size_t>(num_items));
  for (ItemId lo = 0; lo < num_items; ++lo) {
    for (const auto& [hi, dot] : dots[static_cast<size_t>(lo)]) {
      const double denom =
          norms[static_cast<size_t>(lo)] * norms[static_cast<size_t>(hi)];
      if (denom <= 0.0) continue;
      const float sim = static_cast<float>(dot / denom);
      if (sim <= 0.0f) continue;
      all[static_cast<size_t>(lo)].push_back({hi, sim});
      all[static_cast<size_t>(hi)].push_back({lo, sim});
    }
  }
  const size_t k = static_cast<size_t>(std::max(num_neighbors, 0));
  for (ItemId i = 0; i < num_items; ++i) {
    auto& cand = all[static_cast<size_t>(i)];
    std::sort(cand.begin(), cand.end(),
              [](const ItemNeighbor& a, const ItemNeighbor& b) {
                if (a.sim != b.sim) return a.sim > b.sim;
                return a.item < b.item;
              });
    if (cand.size() > k) cand.resize(k);
  }
  return all;
}

// --- Seed reference: user-user KNN fit + scoring. ---

struct ReferenceUserKnn {
  std::vector<double> user_mean;
  std::vector<std::vector<std::pair<UserId, float>>> neighbors;
};

ReferenceUserKnn ReferenceUserFit(const RatingDataset& train,
                                  int32_t num_neighbors, int32_t max_audience,
                                  uint64_t seed) {
  const int32_t num_users = train.num_users();
  ReferenceUserKnn ref;
  ref.user_mean.assign(static_cast<size_t>(num_users), 0.0);
  std::vector<double> norms(static_cast<size_t>(num_users), 0.0);
  for (UserId u = 0; u < num_users; ++u) {
    const auto& row = train.ItemsOf(u);
    if (row.empty()) continue;
    double acc = 0.0;
    for (const ItemRating& ir : row) acc += ir.value;
    ref.user_mean[static_cast<size_t>(u)] =
        acc / static_cast<double>(row.size());
    for (const ItemRating& ir : row) {
      const double c = ir.value - ref.user_mean[static_cast<size_t>(u)];
      norms[static_cast<size_t>(u)] += c * c;
    }
    norms[static_cast<size_t>(u)] = std::sqrt(norms[static_cast<size_t>(u)]);
  }

  Rng rng(seed);
  std::vector<std::unordered_map<UserId, double>> dots(
      static_cast<size_t>(num_users));
  for (ItemId i = 0; i < train.num_items(); ++i) {
    const auto full_col = train.UsersOf(i);
    std::vector<UserRating> col(full_col.begin(), full_col.end());
    if (static_cast<int32_t>(col.size()) > max_audience) {
      rng.Shuffle(&col);
      col.resize(static_cast<size_t>(max_audience));
    }
    for (size_t a = 0; a < col.size(); ++a) {
      const double ca =
          col[a].value - ref.user_mean[static_cast<size_t>(col[a].user)];
      for (size_t b = a + 1; b < col.size(); ++b) {
        const double cb =
            col[b].value - ref.user_mean[static_cast<size_t>(col[b].user)];
        const UserId lo = std::min(col[a].user, col[b].user);
        const UserId hi = std::max(col[a].user, col[b].user);
        dots[static_cast<size_t>(lo)][hi] += ca * cb;
      }
    }
  }

  std::vector<std::vector<std::pair<UserId, float>>> all(
      static_cast<size_t>(num_users));
  for (UserId lo = 0; lo < num_users; ++lo) {
    for (const auto& [hi, dot] : dots[static_cast<size_t>(lo)]) {
      const double denom =
          norms[static_cast<size_t>(lo)] * norms[static_cast<size_t>(hi)];
      if (denom <= 0.0) continue;
      const float sim = static_cast<float>(dot / denom);
      if (sim <= 0.0f) continue;
      all[static_cast<size_t>(lo)].emplace_back(hi, sim);
      all[static_cast<size_t>(hi)].emplace_back(lo, sim);
    }
  }
  ref.neighbors.assign(static_cast<size_t>(num_users), {});
  const size_t k = static_cast<size_t>(num_neighbors);
  for (UserId u = 0; u < num_users; ++u) {
    auto& cand = all[static_cast<size_t>(u)];
    std::sort(cand.begin(), cand.end(),
              [](const std::pair<UserId, float>& a,
                 const std::pair<UserId, float>& b) {
                if (a.second != b.second) return a.second > b.second;
                return a.first < b.first;
              });
    if (cand.size() > k) cand.resize(k);
    ref.neighbors[static_cast<size_t>(u)] = std::move(cand);
  }
  return ref;
}

std::vector<double> ReferenceUserScore(const ReferenceUserKnn& ref,
                                       const RatingDataset& train, UserId u) {
  std::vector<double> out(static_cast<size_t>(train.num_items()), 0.0);
  for (const auto& [s, sim] : ref.neighbors[static_cast<size_t>(u)]) {
    const double mean = ref.user_mean[static_cast<size_t>(s)];
    for (const ItemRating& ir : train.ItemsOf(s)) {
      out[static_cast<size_t>(ir.item)] +=
          static_cast<double>(sim) * (static_cast<double>(ir.value) - mean);
    }
  }
  return out;
}

// --- Seed reference: the RP3b walk over the dataset's row vectors. ---

std::vector<double> ReferenceWalkScore(const RatingDataset& train, double beta,
                                       int32_t max_coraters, UserId u) {
  std::vector<double> out(static_cast<size_t>(train.num_items()), 0.0);
  const auto& row = train.ItemsOf(u);
  if (row.empty()) return out;
  std::vector<double> mass(static_cast<size_t>(train.num_users()), 0.0);
  std::vector<std::pair<UserId, double>> coraters;
  const double start = 1.0 / static_cast<double>(row.size());
  for (const ItemRating& ir : row) {
    const auto& audience = train.UsersOf(ir.item);
    if (audience.empty()) continue;
    const double share = start / static_cast<double>(audience.size());
    for (const UserRating& ur : audience) {
      if (ur.user == u) continue;
      double& m = mass[static_cast<size_t>(ur.user)];
      if (m == 0.0) coraters.emplace_back(ur.user, 0.0);
      m += share;
    }
  }
  for (auto& [s, w] : coraters) w = mass[static_cast<size_t>(s)];
  const auto heavier = [](const std::pair<UserId, double>& a,
                          const std::pair<UserId, double>& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  };
  if (static_cast<int32_t>(coraters.size()) > max_coraters) {
    std::nth_element(coraters.begin(), coraters.begin() + max_coraters - 1,
                     coraters.end(), heavier);
    coraters.resize(static_cast<size_t>(max_coraters));
  }
  for (const auto& [s, w] : coraters) {
    const auto& srow = train.ItemsOf(s);
    if (srow.empty()) continue;
    const double share = w / static_cast<double>(srow.size());
    for (const ItemRating& ir : srow) {
      out[static_cast<size_t>(ir.item)] += share;
    }
  }
  for (size_t i = 0; i < out.size(); ++i) {
    if (out[i] > 0.0) {
      out[i] /= std::pow(
          static_cast<double>(
              std::max(train.Popularity(static_cast<ItemId>(i)), 1)),
          beta);
    }
  }
  return out;
}

std::string SaveToString(const Recommender& model) {
  std::ostringstream os(std::ios::binary);
  EXPECT_TRUE(model.Save(os).ok());
  return os.str();
}

// The inverted-index sweep must reproduce the seed hash-map builder
// bit-for-bit: same neighbour ids, same float similarities, same order.
TEST(SparseParityTest, ItemSimilarityMatchesSeedBuilderBitwise) {
  const RatingDataset train = MakeData();
  struct Config {
    int32_t k;
    int32_t max_profile;
    uint64_t seed;
  };
  // Unsampled, truncation-heavy, and sampled (max_profile far below the
  // mean activity of 22, so the RNG path is exercised on most users).
  for (const Config cfg : {Config{50, 512, 31}, Config{5, 512, 31},
                           Config{10, 8, 3}, Config{10, 15, 99}}) {
    const auto ref =
        ReferenceItemLists(train, cfg.k, cfg.max_profile, cfg.seed);
    const ItemSimilarityIndex index(train, cfg.k, cfg.max_profile, cfg.seed);
    ASSERT_EQ(index.num_items(), train.num_items());
    for (ItemId i = 0; i < train.num_items(); ++i) {
      const auto got = index.NeighborsOf(i);
      const auto& want = ref[static_cast<size_t>(i)];
      ASSERT_EQ(got.size(), want.size())
          << "item " << i << " k=" << cfg.k << " mp=" << cfg.max_profile;
      for (size_t n = 0; n < want.size(); ++n) {
        ASSERT_EQ(got[n].item, want[n].item) << "item " << i << " pos " << n;
        ASSERT_EQ(got[n].sim, want[n].sim) << "item " << i << " pos " << n;
      }
    }
  }
}

// UserKNN's fitted state is pinned through bitwise score equality (the
// scores are a function of the neighbour lists and means) across
// sampled and unsampled configs.
TEST(SparseParityTest, UserKnnScoresMatchSeedImplementationBitwise) {
  const RatingDataset train = MakeData();
  struct Config {
    int32_t k;
    int32_t max_audience;
    uint64_t seed;
  };
  for (const Config cfg : {Config{50, 512, 33}, Config{10, 512, 33},
                           Config{10, 6, 5}, Config{25, 12, 77}}) {
    const ReferenceUserKnn ref =
        ReferenceUserFit(train, cfg.k, cfg.max_audience, cfg.seed);
    UserKnnRecommender knn({.num_neighbors = cfg.k,
                            .max_audience = cfg.max_audience,
                            .seed = cfg.seed});
    ASSERT_TRUE(knn.Fit(train).ok());
    for (UserId u = 0; u < train.num_users(); ++u) {
      const std::vector<double> want = ReferenceUserScore(ref, train, u);
      const std::vector<double> got = knn.ScoreAll(u);
      ASSERT_EQ(got, want) << "user " << u << " k=" << cfg.k << " ma="
                           << cfg.max_audience;
    }
  }
}

// The CSR walk graph must not change a single bit of the RP3b walk.
TEST(SparseParityTest, RandomWalkCsrGraphMatchesSeedWalkBitwise) {
  const RatingDataset train = MakeData();
  RandomWalkRecommender rp3b({.beta = 0.4, .max_coraters = 30});
  ASSERT_TRUE(rp3b.Fit(train).ok());
  for (UserId u = 0; u < train.num_users(); ++u) {
    const std::vector<double> want = ReferenceWalkScore(train, 0.4, 30, u);
    const std::vector<double> got = rp3b.ScoreAll(u);
    ASSERT_EQ(got, want) << "user " << u;
  }
}

// Threaded fits shard the sweep but must merge deterministically: the
// saved artifact has to be byte-identical to the serial fit's.
TEST(SparseParityTest, ThreadedFitSavesByteIdenticalArtifacts) {
  const RatingDataset train = MakeData();
  ThreadPool pool(4);
  {
    ItemKnnRecommender serial({.num_neighbors = 10, .max_profile = 8});
    ItemKnnRecommender threaded({.num_neighbors = 10, .max_profile = 8});
    ASSERT_TRUE(serial.Fit(train).ok());
    ASSERT_TRUE(threaded.Fit(train, &pool).ok());
    EXPECT_EQ(SaveToString(serial), SaveToString(threaded));
  }
  {
    UserKnnRecommender serial({.num_neighbors = 10, .max_audience = 6});
    UserKnnRecommender threaded({.num_neighbors = 10, .max_audience = 6});
    ASSERT_TRUE(serial.Fit(train).ok());
    ASSERT_TRUE(threaded.Fit(train, &pool).ok());
    EXPECT_EQ(SaveToString(serial), SaveToString(threaded));
  }
  // The similarity index itself, with and without a pool.
  const ItemSimilarityIndex a(train, 10, 512, 31, nullptr);
  const ItemSimilarityIndex b(train, 10, 512, 31, &pool);
  ASSERT_EQ(a.num_items(), b.num_items());
  for (ItemId i = 0; i < a.num_items(); ++i) {
    const auto na = a.NeighborsOf(i);
    const auto nb = b.NeighborsOf(i);
    ASSERT_EQ(na.size(), nb.size());
    for (size_t n = 0; n < na.size(); ++n) {
      ASSERT_EQ(na[n].item, nb[n].item);
      ASSERT_EQ(na[n].sim, nb[n].sim);
    }
  }
}

// The default Fit(train, pool) overload ignores the pool: models without
// a parallel fit stay usable through the pool-aware entry point.
TEST(SparseParityTest, DefaultPoolOverloadFallsBackToSerialFit) {
  const RatingDataset train = MakeData();
  ThreadPool pool(2);
  RandomWalkRecommender a;
  RandomWalkRecommender b;
  ASSERT_TRUE(a.Fit(train).ok());
  ASSERT_TRUE(b.Fit(train, &pool).ok());
  EXPECT_EQ(a.ScoreAll(3), b.ScoreAll(3));
}

// Batch-vs-single parity for the three sparse models' dedicated
// ScoreBatchInto overrides, across full, sub-block, and ragged batches.
TEST(SparseParityTest, SparseModelBatchScoringMatchesSingleBitwise) {
  const RatingDataset train = MakeData();
  const size_t ni = static_cast<size_t>(train.num_items());
  std::vector<std::unique_ptr<Recommender>> models;
  models.push_back(std::make_unique<ItemKnnRecommender>(
      ItemKnnConfig{.num_neighbors = 10}));
  models.push_back(std::make_unique<UserKnnRecommender>(
      UserKnnConfig{.num_neighbors = 10}));
  models.push_back(std::make_unique<RandomWalkRecommender>());
  for (auto& model : models) {
    ASSERT_TRUE(model->Fit(train).ok()) << model->name();
    ScoringContext ctx;
    std::vector<double> single(ni);
    for (const size_t batch_size : {1u, 7u, 8u, 64u}) {
      for (const UserId first : {0, 97}) {
        std::vector<UserId> users;
        for (size_t b = 0; b < batch_size; ++b) {
          users.push_back(
              static_cast<UserId>((static_cast<size_t>(first) + b) %
                                  static_cast<size_t>(train.num_users())));
        }
        const std::span<double> batch = ctx.BatchScores(batch_size * ni);
        model->ScoreBatchInto(users, batch);
        for (size_t b = 0; b < batch_size; ++b) {
          model->ScoreInto(users[b], single);
          const std::span<const double> row = batch.subspan(b * ni, ni);
          for (size_t i = 0; i < ni; ++i) {
            ASSERT_EQ(single[i], row[i])
                << model->name() << " batch " << batch_size << " user "
                << users[b] << " item " << i;
          }
        }
      }
    }
  }
}

// The id-sorted lookup view must agree with a linear scan of the
// best-first lists for every pair — present or absent.
TEST(SparseParityTest, SimilarityLookupMatchesLinearScan) {
  const RatingDataset train = MakeData();
  const ItemSimilarityIndex index(train, 10, 512, 31);
  for (ItemId i = 0; i < train.num_items(); ++i) {
    for (ItemId j = 0; j < train.num_items(); ++j) {
      float scanned = 0.0f;
      for (const ItemNeighbor& nb : index.NeighborsOf(i)) {
        if (nb.item == j) {
          scanned = nb.sim;
          break;
        }
      }
      ASSERT_EQ(index.Similarity(i, j), scanned) << i << "," << j;
    }
  }
}

// KNN artifacts survive a save -> load round trip onto flat storage with
// bit-identical scoring (the persistence suite covers every model; this
// pins the flat-CSR rebind paths specifically, threaded fit included).
TEST(SparseParityTest, KnnArtifactsRoundTripFromThreadedFit) {
  const RatingDataset train = MakeData();
  ThreadPool pool(3);
  {
    ItemKnnRecommender fitted({.num_neighbors = 10, .max_profile = 8});
    ASSERT_TRUE(fitted.Fit(train, &pool).ok());
    std::istringstream is(SaveToString(fitted), std::ios::binary);
    ItemKnnRecommender loaded;
    ASSERT_TRUE(loaded.Load(is, &train).ok());
    for (UserId u = 0; u < train.num_users(); u += 7) {
      ASSERT_EQ(fitted.ScoreAll(u), loaded.ScoreAll(u)) << "user " << u;
    }
  }
  {
    UserKnnRecommender fitted({.num_neighbors = 10, .max_audience = 6});
    ASSERT_TRUE(fitted.Fit(train, &pool).ok());
    std::istringstream is(SaveToString(fitted), std::ios::binary);
    UserKnnRecommender loaded;
    ASSERT_TRUE(loaded.Load(is, &train).ok());
    for (UserId u = 0; u < train.num_users(); u += 7) {
      ASSERT_EQ(fitted.ScoreAll(u), loaded.ScoreAll(u)) << "user " << u;
    }
  }
}

}  // namespace
}  // namespace ganc
