// Shared scoring engine for latent-factor models (PSVD, RSVD, BPR,
// CofiR): s(u, i) = base_u + b_i + <p_u, q_i> over row-major factor
// matrices, with optional per-item bias and per-user base offset.
//
// The engine is a borrowed view over the owning model's storage —
// models construct it on the fly inside their Score* overrides, so
// there is no lifetime coupling and refitting can never dangle it.
//
// Three paths share the view (which since PR 6 is precision-typed, see
// factor_view.h):
//   ScoreOne        one (user, item) score — the scalar dot used by
//                   training-time Predict/Score call sites.
//   ScoreInto       one user, the classic scalar dot-product loop.
//   ScoreBatchInto  a user batch, routed through the runtime-dispatched
//                   kernel table (factor_kernels.h): scalar reference or
//                   a SIMD variant picked per process by cpuid gating +
//                   a startup micro-probe (GANC_KERNEL overrides).
//
// Parity contract: at fp64, every dispatch variant is bit-identical to
// ScoreInto (each (u, i) pair keeps one accumulator walked in factor
// order; kernel TUs compile with -ffp-contract=off). fp32 and int8
// scores are likewise bit-identical *across variants*, and track the
// fp64 path within float rounding / quantization error (pinned by the
// tolerance tier in tests/recommender/factor_precision_test.cc).

#ifndef GANC_RECOMMENDER_FACTOR_SCORING_ENGINE_H_
#define GANC_RECOMMENDER_FACTOR_SCORING_ENGINE_H_

#include <cstddef>
#include <cstdint>
#include <span>

#include "data/dataset.h"
#include "recommender/factor_kernels.h"
#include "recommender/factor_view.h"

namespace ganc {

/// Blocked multi-user scoring over a FactorView. Cheap to construct per
/// call; thread-safe (scratch is per-thread).
class FactorScoringEngine {
 public:
  /// Users per register block: the inner kernel runs this many
  /// independent accumulator chains per item factor broadcast. 8 is the
  /// measured sweet spot (4 ties, 16+ spills registers).
  static constexpr size_t kUserBlock = kFactorKernelUserBlock;

  explicit FactorScoringEngine(const FactorView& view) : v_(view) {}

  /// One (u, i) score at the view's precision. Bit-identical to the
  /// corresponding entry of ScoreInto.
  double ScoreOne(UserId u, ItemId i) const;

  /// Scalar path: catalog scores for one user into `out` (num_items).
  void ScoreInto(UserId u, std::span<double> out) const;

  /// Blocked path: catalog scores for every user in `users` into the
  /// batch-major `out` (users.size() * num_items; row b = users[b]).
  /// Bit-identical to calling ScoreInto per user, for every dispatch
  /// variant.
  void ScoreBatchInto(std::span<const UserId> users,
                      std::span<double> out) const;

 private:
  FactorView v_;
};

}  // namespace ganc

#endif  // GANC_RECOMMENDER_FACTOR_SCORING_ENGINE_H_
