#include "core/ganc.h"

#include <numeric>
#include <set>

#include <gtest/gtest.h>

#include "util/rng.h"
#include "util/top_k.h"

#include "core/preference.h"
#include "data/split.h"
#include "data/synthetic.h"
#include "eval/metrics.h"
#include "recommender/pop.h"
#include "recommender/psvd.h"

namespace ganc {
namespace {

struct Fixture {
  RatingDataset train;
  RatingDataset test;
  PsvdRecommender psvd{{.num_factors = 8}};
  std::unique_ptr<NormalizedAccuracyScorer> scorer;
  std::vector<double> theta;

  explicit Fixture(uint64_t seed = 0) {
    auto spec = TinySpec();
    spec.num_users = 150;
    spec.num_items = 200;
    spec.mean_activity = 25.0;
    spec.seed += seed;
    auto ds = GenerateSynthetic(spec);
    EXPECT_TRUE(ds.ok());
    auto split = PerUserRatioSplit(*ds, {.train_ratio = 0.5, .seed = 9});
    EXPECT_TRUE(split.ok());
    train = std::move(split->train);
    test = std::move(split->test);
    EXPECT_TRUE(psvd.Fit(train).ok());
    scorer = std::make_unique<NormalizedAccuracyScorer>(&psvd);
    auto t = ComputePreference(PreferenceModel::kGeneralized, train);
    EXPECT_TRUE(t.ok());
    theta = std::move(t).value();
  }
};

TEST(GreedyTopNForUserTest, PureAccuracyAtThetaZero) {
  Fixture f;
  DynCoverage dyn(f.train.num_items());
  const auto acc = f.scorer->ScoreAll(0);
  const auto cands = f.train.UnratedItems(0);
  const auto mixed = GreedyTopNForUser(acc, 0.0, dyn, 0, cands, 5);
  // theta = 0 ignores coverage entirely: must equal the accuracy top-5.
  const auto pure = SelectTopKFromScores(acc, cands, 5);
  ASSERT_EQ(mixed.size(), 5u);
  for (size_t k = 0; k < 5; ++k) EXPECT_EQ(mixed[k], pure[k].item);
}

TEST(GreedyTopNForUserTest, PureCoverageAtThetaOne) {
  Fixture f;
  StatCoverage stat(f.train);
  const auto acc = f.scorer->ScoreAll(0);
  const auto cands = f.train.UnratedItems(0);
  const auto mixed = GreedyTopNForUser(acc, 1.0, stat, 0, cands, 5);
  // theta = 1: every selected item must be among the least popular.
  std::vector<ScoredItem> cov_scored;
  for (ItemId i : cands) cov_scored.push_back({i, stat.Score(0, i)});
  const auto pure = SelectTopK(cov_scored, 5);
  for (size_t k = 0; k < 5; ++k) EXPECT_EQ(mixed[k], pure[k].item);
}

TEST(GancTest, ValidatesInputs) {
  Fixture f;
  // Wrong theta size.
  Ganc bad(f.scorer.get(), std::vector<double>(3, 0.5), CoverageKind::kDyn);
  EXPECT_FALSE(bad.RecommendAll(f.train, {}).ok());
  // Out-of-range theta.
  std::vector<double> theta(static_cast<size_t>(f.train.num_users()), 0.5);
  theta[0] = 1.5;
  Ganc bad2(f.scorer.get(), theta, CoverageKind::kDyn);
  EXPECT_FALSE(bad2.RecommendAll(f.train, {}).ok());
  // Bad N.
  Ganc ok(f.scorer.get(),
          std::vector<double>(static_cast<size_t>(f.train.num_users()), 0.5),
          CoverageKind::kStat);
  GancConfig cfg;
  cfg.top_n = 0;
  EXPECT_FALSE(ok.RecommendAll(f.train, cfg).ok());
}

TEST(GancTest, ProducesFullCollectionOfSizeN) {
  Fixture f;
  for (CoverageKind kind :
       {CoverageKind::kRand, CoverageKind::kStat, CoverageKind::kDyn}) {
    Ganc ganc(f.scorer.get(), f.theta, kind);
    GancConfig cfg;
    cfg.top_n = 5;
    cfg.sample_size = 40;
    auto topn = ganc.RecommendAll(f.train, cfg);
    ASSERT_TRUE(topn.ok()) << CoverageKindName(kind);
    ASSERT_EQ(topn->size(), static_cast<size_t>(f.train.num_users()));
    for (UserId u = 0; u < f.train.num_users(); ++u) {
      const auto& pu = (*topn)[static_cast<size_t>(u)];
      EXPECT_EQ(pu.size(), 5u);
      std::set<ItemId> uniq(pu.begin(), pu.end());
      EXPECT_EQ(uniq.size(), 5u);  // no duplicates
      for (ItemId i : pu) EXPECT_FALSE(f.train.HasRating(u, i));  // unseen
    }
  }
}

TEST(GancTest, DynImprovesCoverageOverPureAccuracy) {
  Fixture f;
  Ganc ganc(f.scorer.get(), f.theta, CoverageKind::kDyn);
  GancConfig cfg;
  cfg.top_n = 5;
  cfg.sample_size = 50;
  auto ganc_topn = ganc.RecommendAll(f.train, cfg);
  ASSERT_TRUE(ganc_topn.ok());

  // Pure accuracy baseline: theta = 0 everywhere.
  Ganc pure(f.scorer.get(),
            std::vector<double>(static_cast<size_t>(f.train.num_users()), 0.0),
            CoverageKind::kDyn);
  auto pure_topn = pure.RecommendAll(f.train, cfg);
  ASSERT_TRUE(pure_topn.ok());

  const MetricsConfig mcfg{.top_n = 5};
  const auto ganc_m = EvaluateTopN(f.train, f.test, *ganc_topn, mcfg);
  const auto pure_m = EvaluateTopN(f.train, f.test, *pure_topn, mcfg);
  EXPECT_GT(ganc_m.coverage, pure_m.coverage);
  EXPECT_LE(ganc_m.gini, pure_m.gini + 1e-9);
}

TEST(GancTest, FullLocallyGreedyWhenSampleCoversAllUsers) {
  Fixture f;
  Ganc ganc(f.scorer.get(), f.theta, CoverageKind::kDyn);
  GancConfig cfg;
  cfg.top_n = 3;
  cfg.sample_size = 0;  // full sequential
  auto topn = ganc.RecommendAll(f.train, cfg);
  ASSERT_TRUE(topn.ok());
  for (const auto& pu : *topn) EXPECT_EQ(pu.size(), 3u);
}

TEST(GancTest, DeterministicPerSeed) {
  Fixture f;
  Ganc ganc(f.scorer.get(), f.theta, CoverageKind::kDyn);
  GancConfig cfg;
  cfg.top_n = 5;
  cfg.sample_size = 30;
  cfg.seed = 77;
  auto a = ganc.RecommendAll(f.train, cfg);
  auto b = ganc.RecommendAll(f.train, cfg);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);
}

TEST(GancTest, ParallelMatchesSerial) {
  Fixture f;
  Ganc ganc(f.scorer.get(), f.theta, CoverageKind::kDyn);
  GancConfig serial_cfg;
  serial_cfg.top_n = 5;
  serial_cfg.sample_size = 30;
  auto serial = ganc.RecommendAll(f.train, serial_cfg);
  ASSERT_TRUE(serial.ok());
  ThreadPool pool(4);
  GancConfig par_cfg = serial_cfg;
  par_cfg.pool = &pool;
  auto parallel = ganc.RecommendAll(f.train, par_cfg);
  ASSERT_TRUE(parallel.ok());
  EXPECT_EQ(*serial, *parallel);
}

TEST(GancTest, HigherThetaUsersGetLessPopularItems) {
  // The mechanism behind the paper's "right group of users": users with
  // larger theta receive less popular recommendations on average.
  Fixture f;
  Ganc ganc(f.scorer.get(), f.theta, CoverageKind::kDyn);
  GancConfig cfg;
  cfg.top_n = 5;
  cfg.sample_size = 60;
  auto topn = ganc.RecommendAll(f.train, cfg);
  ASSERT_TRUE(topn.ok());
  // Compare mean recommended popularity of the lowest vs highest theta
  // quartile of users.
  std::vector<size_t> order(f.theta.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return f.theta[a] < f.theta[b]; });
  auto mean_pop = [&](size_t from, size_t to) {
    double acc = 0.0;
    int count = 0;
    for (size_t k = from; k < to; ++k) {
      for (ItemId i : (*topn)[order[k]]) {
        acc += static_cast<double>(f.train.Popularity(i));
        ++count;
      }
    }
    return acc / count;
  };
  const size_t q = order.size() / 4;
  EXPECT_GT(mean_pop(0, q), mean_pop(order.size() - q, order.size()));
}

TEST(GancTest, NameTemplate) {
  Fixture f;
  Ganc ganc(f.scorer.get(), f.theta, CoverageKind::kDyn);
  EXPECT_EQ(ganc.Name("thetaG"), "GANC(PSVD8, thetaG, Dyn)");
}

TEST(CollectionValueTest, GreedyBeatsAntigreedy) {
  Fixture f;
  Ganc ganc(f.scorer.get(), f.theta, CoverageKind::kDyn);
  GancConfig cfg;
  cfg.top_n = 5;
  cfg.sample_size = 0;
  auto greedy = ganc.RecommendAll(f.train, cfg);
  ASSERT_TRUE(greedy.ok());
  // Adversarial baseline: recommend each user the *worst* mixed-score
  // items (bottom-5 by accuracy).
  TopNCollection bad(static_cast<size_t>(f.train.num_users()));
  for (UserId u = 0; u < f.train.num_users(); ++u) {
    auto scores = f.scorer->ScoreAll(u);
    auto cands = f.train.UnratedItems(u);
    std::sort(cands.begin(), cands.end(), [&](ItemId a, ItemId b) {
      return scores[static_cast<size_t>(a)] < scores[static_cast<size_t>(b)];
    });
    cands.resize(5);
    bad[static_cast<size_t>(u)] = cands;
  }
  const double v_greedy = CollectionValue(*f.scorer, f.theta,
                                          CoverageKind::kDyn, f.train, *greedy);
  const double v_bad =
      CollectionValue(*f.scorer, f.theta, CoverageKind::kDyn, f.train, bad);
  EXPECT_GT(v_greedy, v_bad);
}

TEST(SubmodularityPropertyTest, MarginalGainsDiminish) {
  // delta(i | A) >= delta(i | B) for A subset of B, where delta is the
  // incremental value of recommending item i once more under Dyn.
  Fixture f;
  DynCoverage state_a(f.train.num_items());
  DynCoverage state_b(f.train.num_items());
  // Build B as a strict superset of A's observations.
  Rng rng(5);
  for (int k = 0; k < 200; ++k) {
    const ItemId i =
        static_cast<ItemId>(rng.UniformInt(static_cast<uint64_t>(
            f.train.num_items())));
    state_b.Observe(i);
    if (k % 2 == 0) state_a.Observe(i);  // A receives a subset
  }
  // Check: A's counts <= B's counts for every item by construction? No —
  // only when A observes a prefix. Re-build properly:
  DynCoverage a2(f.train.num_items()), b2(f.train.num_items());
  for (int k = 0; k < 100; ++k) {
    const ItemId i =
        static_cast<ItemId>(rng.UniformInt(static_cast<uint64_t>(
            f.train.num_items())));
    a2.Observe(i);
    b2.Observe(i);
  }
  for (int k = 0; k < 100; ++k) {
    const ItemId i =
        static_cast<ItemId>(rng.UniformInt(static_cast<uint64_t>(
            f.train.num_items())));
    b2.Observe(i);  // B = A + extra
  }
  for (ItemId i = 0; i < f.train.num_items(); ++i) {
    EXPECT_GE(a2.Score(0, i), b2.Score(0, i) - 1e-12);
  }
}

TEST(OslgAblationTest, SwitchesProduceValidCollections) {
  Fixture f;
  Ganc ganc(f.scorer.get(), f.theta, CoverageKind::kDyn);
  for (bool kde : {true, false}) {
    for (bool ordered : {true, false}) {
      GancConfig cfg;
      cfg.top_n = 5;
      cfg.sample_size = 30;
      cfg.kde_sampling = kde;
      cfg.order_by_theta = ordered;
      auto topn = ganc.RecommendAll(f.train, cfg);
      ASSERT_TRUE(topn.ok());
      for (const auto& pu : *topn) EXPECT_EQ(pu.size(), 5u);
    }
  }
}

}  // namespace
}  // namespace ganc
