// Per-session rated-item deltas applied at request time.
//
// A session accumulates the items a user consumed since the serving
// snapshot was trained (clicked, purchased, just-recommended...) without
// touching the immutable snapshot: at request time the overlay's item
// set is handed to RecommendationService::TopN as extra exclusions, so
// freshly consumed items drop out of the candidate set with zero
// retraining — the same borrowing pattern as DynSnapshotView, which
// layers mutable OSLG state over immutable scores without copying.
//
// SessionOverlay is single-session, unsynchronized state (one protocol
// connection, one test). SessionRegistry is the thread-safe keyed map
// `ganc_serve` uses when many concurrent connections share sessions.

#ifndef GANC_SERVE_SESSION_OVERLAY_H_
#define GANC_SERVE_SESSION_OVERLAY_H_

#include <cstddef>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "data/dataset.h"

namespace ganc {

/// The consumed-item deltas of one session: per user, a sorted unique
/// item-id set that grows monotonically as the session progresses.
class SessionOverlay {
 public:
  /// Records that `u` consumed `items` (duplicates and already-known
  /// ids are absorbed).
  void MarkConsumed(UserId u, std::span<const ItemId> items);

  /// The items `u` has consumed this session, ascending, deduplicated.
  /// Empty span for users with no deltas. Borrowed: valid until the next
  /// MarkConsumed for the same user.
  std::span<const ItemId> ConsumedOf(UserId u) const;

  /// Number of users with at least one consumed item.
  size_t num_users() const { return consumed_.size(); }

  /// Total consumed items across users.
  size_t total_consumed() const { return total_; }

 private:
  std::unordered_map<UserId, std::vector<ItemId>> consumed_;
  size_t total_ = 0;
};

/// Thread-safe session-id -> overlay map for the request frontends.
/// Overlays are created on first touch and live for the registry's
/// lifetime (sessions in this protocol have no explicit close).
class SessionRegistry {
 public:
  /// Records consumed items under `session`.
  void MarkConsumed(const std::string& session, UserId u,
                    std::span<const ItemId> items);

  /// Overwrites `*out` with the union of the session's consumed items
  /// for `u` and `extra`, sorted ascending and deduplicated — the
  /// exclusion list a TopN request hands to the service. Copies under
  /// the registry lock so concurrent MarkConsumed calls from other
  /// connections cannot invalidate the span mid-request.
  void CollectExclusions(const std::string& session, UserId u,
                         std::span<const ItemId> extra,
                         std::vector<ItemId>* out) const;

  size_t num_sessions() const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, SessionOverlay> sessions_;
};

}  // namespace ganc

#endif  // GANC_SERVE_SESSION_OVERLAY_H_
