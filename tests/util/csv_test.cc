#include "util/csv.h"

#include <cstdio>
#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

namespace ganc {
namespace {

class CsvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() / "ganc_csv_test";
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  void WriteFile(const std::string& name, const std::string& content) {
    std::ofstream out(Path(name));
    out << content;
  }

  std::filesystem::path dir_;
};

TEST_F(CsvTest, SplitLineBasic) {
  const auto f = SplitLine("a,b,c", ',');
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[0], "a");
  EXPECT_EQ(f[2], "c");
}

TEST_F(CsvTest, SplitLineTrimsWhitespace) {
  const auto f = SplitLine("  a , b\t, c ", ',');
  EXPECT_EQ(f[0], "a");
  EXPECT_EQ(f[1], "b");
  EXPECT_EQ(f[2], "c");
}

TEST_F(CsvTest, SplitLineTabDelimiter) {
  const auto f = SplitLine("1\t2\t3.5", '\t');
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[2], "3.5");
}

TEST_F(CsvTest, ReadSkipsCommentsAndBlankLines) {
  WriteFile("a.csv", "# comment\n\n1,2,3\n\n4,5,6\n");
  auto table = ReadDelimited(Path("a.csv"), ',', false);
  ASSERT_TRUE(table.ok());
  ASSERT_EQ(table->rows.size(), 2u);
  EXPECT_EQ(table->rows[1][2], "6");
}

TEST_F(CsvTest, ReadSkipHeader) {
  WriteFile("b.csv", "user,item,rating\n1,2,3\n");
  auto table = ReadDelimited(Path("b.csv"), ',', true);
  ASSERT_TRUE(table.ok());
  ASSERT_EQ(table->rows.size(), 1u);
  EXPECT_EQ(table->rows[0][0], "1");
}

TEST_F(CsvTest, ReadMissingFileErrors) {
  auto table = ReadDelimited(Path("nope.csv"), ',', false);
  ASSERT_FALSE(table.ok());
  EXPECT_EQ(table.status().code(), StatusCode::kIOError);
}

TEST_F(CsvTest, WriteThenReadRoundTrips) {
  const std::vector<std::vector<std::string>> rows{{"1", "2", "4.5"},
                                                   {"3", "4", "2.0"}};
  ASSERT_TRUE(WriteDelimited(Path("c.csv"), ',', rows).ok());
  auto table = ReadDelimited(Path("c.csv"), ',', false);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->rows, rows);
}

TEST_F(CsvTest, WriteToInvalidPathErrors) {
  EXPECT_FALSE(
      WriteDelimited("/nonexistent_dir_xyz/file.csv", ',', {}).ok());
}

TEST_F(CsvTest, FormatDoubleFixedPrecision) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(1.0, 4), "1.0000");
  EXPECT_EQ(FormatDouble(-0.5, 1), "-0.5");
}

}  // namespace
}  // namespace ganc
