// Checksummed binary persistence for the library's two cacheable
// artifacts: learned preference vectors (theta) and top-N collections.
//
// Learning theta^G and building a full top-N collection are the two
// expensive steps of the pipeline; production deployments cache both.
// The format is deliberately simple: magic + version + payload +
// FNV-1a checksum, little-endian, with every read validated so corrupt
// or truncated files surface as Status errors instead of garbage.

#ifndef GANC_UTIL_BINARY_IO_H_
#define GANC_UTIL_BINARY_IO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace ganc {

/// FNV-1a 64-bit hash of a byte buffer (stable across platforms).
uint64_t Fnv1aHash(const void* data, size_t size);

/// Incremental FNV-1a 64: Update in any chunking yields the same digest
/// as one Fnv1aHash over the concatenation (used for dataset
/// fingerprints that are streamed rather than buffered).
class Fnv1aHasher {
 public:
  Fnv1aHasher& Update(const void* data, size_t size);
  uint64_t digest() const { return hash_; }

 private:
  uint64_t hash_ = 0xCBF29CE484222325ULL;
};

/// Writes a double vector with header and checksum. Overwrites.
Status WriteDoubleVector(const std::string& path,
                         const std::vector<double>& values);

/// Reads a vector written by WriteDoubleVector; fails on bad magic,
/// version, truncation, or checksum mismatch.
Result<std::vector<double>> ReadDoubleVector(const std::string& path);

/// Writes a top-N collection (vector of int32 lists) with checksum.
Status WriteTopNCollection(const std::string& path,
                           const std::vector<std::vector<int32_t>>& topn);

/// Reads a collection written by WriteTopNCollection.
Result<std::vector<std::vector<int32_t>>> ReadTopNCollection(
    const std::string& path);

}  // namespace ganc

#endif  // GANC_UTIL_BINARY_IO_H_
