// Parity tiers and persistence for the compact factor tables
// (factor_store.h): fp64 is the exact reference, fp32 must track it
// within float rounding, int8 must preserve the top-10 ranking
// (mean overlap@10 >= 0.95), and every precision must survive a
// save -> cold-load round trip bit-for-bit — including rejection of
// corrupted factor-table sections.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <numeric>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "recommender/bpr.h"
#include "recommender/cofirank.h"
#include "recommender/factor_store.h"
#include "recommender/factor_view.h"
#include "recommender/model_io.h"
#include "recommender/pop.h"
#include "recommender/psvd.h"
#include "recommender/recommender.h"
#include "recommender/rsvd.h"
#include "serve/recommendation_service.h"
#include "util/serialize.h"

namespace ganc {
namespace {

RatingDataset MakeData() {
  SyntheticSpec spec = TinySpec();
  spec.num_users = 120;
  spec.num_items = 220;
  spec.mean_activity = 22.0;
  auto ds = GenerateSynthetic(spec);
  EXPECT_TRUE(ds.ok());
  return std::move(ds).value();
}

/// The four latent-factor models, freshly constructed (fits are
/// deterministic, so two instances of the same config score
/// identically — the reference/compacted pairs below rely on that).
std::vector<std::unique_ptr<Recommender>> FactorModels() {
  std::vector<std::unique_ptr<Recommender>> models;
  models.push_back(
      std::make_unique<PsvdRecommender>(PsvdConfig{.num_factors = 8}));
  models.push_back(std::make_unique<RsvdRecommender>(
      RsvdConfig{.num_factors = 8, .num_epochs = 4, .use_biases = true}));
  models.push_back(std::make_unique<BprRecommender>(
      BprConfig{.num_factors = 8, .num_epochs = 4}));
  models.push_back(std::make_unique<CofiRecommender>(
      CofiConfig{.num_factors = 8, .num_epochs = 4}));
  return models;
}

/// Top-k item indices by score, ties broken toward the lower id (any
/// deterministic tie-break works — both sides of an overlap comparison
/// use this one).
std::vector<ItemId> TopKItems(const std::vector<double>& scores, size_t k) {
  std::vector<ItemId> order(scores.size());
  std::iota(order.begin(), order.end(), 0);
  std::partial_sort(order.begin(), order.begin() + k, order.end(),
                    [&](ItemId a, ItemId b) {
                      if (scores[a] != scores[b]) return scores[a] > scores[b];
                      return a < b;
                    });
  order.resize(k);
  return order;
}

double OverlapAtK(const std::vector<ItemId>& a, const std::vector<ItemId>& b) {
  size_t hits = 0;
  for (const ItemId i : a) {
    if (std::find(b.begin(), b.end(), i) != b.end()) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(a.size());
}

// ---------------------------------------------------------------------
// FactorStore unit tier: conversions, resident bytes, payload parsing.
// ---------------------------------------------------------------------

FactorStore MakeStore(size_t user_rows, size_t item_rows, size_t g) {
  std::vector<double> p(user_rows * g);
  std::vector<double> q(item_rows * g);
  uint64_t state = 0x853c49e6748fea9bULL;
  auto next = [&state]() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return (static_cast<double>((state >> 16) & 0xFFFF) / 65536.0 - 0.5) * 3.0;
  };
  for (double& v : p) v = next();
  for (double& v : q) v = next();
  FactorStore store;
  store.AdoptFp64(std::move(p), std::move(q), user_rows, item_rows, g);
  return store;
}

TEST(FactorStoreTest, ConversionsOnlyRunOffFp64) {
  FactorStore store = MakeStore(5, 9, 16);
  ASSERT_TRUE(store.SetPrecision(FactorPrecision::kFp32).ok());
  // Identity conversion stays fine; crossing compacted precisions is the
  // lossy-on-lossy path and must fail.
  EXPECT_TRUE(store.SetPrecision(FactorPrecision::kFp32).ok());
  const Status cross = store.SetPrecision(FactorPrecision::kInt8);
  ASSERT_FALSE(cross.ok());
  EXPECT_NE(cross.message().find("already compacted to fp32"),
            std::string::npos);
  const Status back = store.SetPrecision(FactorPrecision::kFp64);
  ASSERT_FALSE(back.ok());

  FactorStore unfitted;
  const Status empty = unfitted.SetPrecision(FactorPrecision::kInt8);
  ASSERT_FALSE(empty.ok());
  EXPECT_NE(empty.message().find("unfitted"), std::string::npos);
}

TEST(FactorStoreTest, ModelsWithoutFactorTablesRejectCompaction) {
  PopRecommender pop;
  EXPECT_TRUE(pop.SetFactorPrecision(FactorPrecision::kFp64).ok());
  const Status s = pop.SetFactorPrecision(FactorPrecision::kInt8);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("has no latent factor tables"),
            std::string::npos);
  EXPECT_EQ(pop.factor_precision(), FactorPrecision::kFp64);
}

TEST(FactorStoreTest, ResidentBytesShrinkFourFoldAtInt8) {
  const size_t rows_u = 40;
  const size_t rows_i = 70;
  const size_t g = 16;
  FactorStore fp64 = MakeStore(rows_u, rows_i, g);
  FactorStore fp32 = MakeStore(rows_u, rows_i, g);
  FactorStore int8 = MakeStore(rows_u, rows_i, g);
  ASSERT_TRUE(fp32.SetPrecision(FactorPrecision::kFp32).ok());
  ASSERT_TRUE(int8.SetPrecision(FactorPrecision::kInt8).ok());
  EXPECT_EQ(fp64.ResidentBytes(), (rows_u + rows_i) * g * sizeof(double));
  EXPECT_EQ(fp32.ResidentBytes() * 2, fp64.ResidentBytes());
  // The acceptance bar: int8 tables (codes + scale/center/qsum side
  // tables) at least 4x smaller than the fp64 originals at g = 16.
  EXPECT_GE(fp64.ResidentBytes(), 4 * int8.ResidentBytes());
}

TEST(FactorStoreTest, PayloadRoundTripsEveryPrecision) {
  for (const FactorPrecision precision :
       {FactorPrecision::kFp64, FactorPrecision::kFp32,
        FactorPrecision::kInt8}) {
    FactorStore store = MakeStore(7, 11, 5);
    ASSERT_TRUE(store.SetPrecision(precision).ok());
    PayloadWriter w;
    store.Save(&w);
    PayloadReader r(w.buffer());
    FactorStore loaded;
    ASSERT_TRUE(loaded.Load(&r, /*aligned=*/true).ok())
        << FactorPrecisionName(precision);
    ASSERT_TRUE(r.AtEnd());
    EXPECT_EQ(loaded.precision(), precision);
    EXPECT_EQ(loaded.num_factors(), store.num_factors());
    EXPECT_EQ(loaded.user_rows(), store.user_rows());
    EXPECT_EQ(loaded.item_rows(), store.item_rows());
    EXPECT_EQ(loaded.ResidentBytes(), store.ResidentBytes());
  }
}

TEST(FactorStoreTest, LoadRejectsUnknownPrecisionTag) {
  FactorStore store = MakeStore(3, 4, 2);
  PayloadWriter w;
  store.Save(&w);
  std::string corrupted = w.buffer();
  corrupted[0] = static_cast<char>(9);  // no such precision
  PayloadReader r(corrupted);
  FactorStore loaded;
  const Status s = loaded.Load(&r, /*aligned=*/true);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("unknown precision tag 9"), std::string::npos);
}

TEST(FactorStoreTest, LoadRejectsTruncatedQuantizedSection) {
  FactorStore store = MakeStore(6, 8, 4);
  ASSERT_TRUE(store.SetPrecision(FactorPrecision::kInt8).ok());
  PayloadWriter w;
  store.Save(&w);
  const std::string full = w.buffer();
  const std::string truncated = full.substr(0, full.size() / 2);
  PayloadReader r(truncated);
  FactorStore loaded;
  EXPECT_FALSE(loaded.Load(&r, /*aligned=*/true).ok());
}

TEST(FactorStoreTest, LoadRejectsShortQuantizationSideTable) {
  // Hand-crafted int8 payload whose user scale table is one row short:
  // the header says 4 user rows, the scale vector carries 3 entries.
  const size_t g = 3;
  const size_t user_rows = 4;
  const size_t item_rows = 2;
  PayloadWriter w;
  w.WriteU8(static_cast<uint8_t>(FactorPrecision::kInt8));
  w.WriteU64(g);
  w.WriteU64(user_rows);
  w.WriteU64(item_rows);
  w.WriteVecI8(std::vector<int8_t>(user_rows * g, 1));
  w.WriteVecF32(std::vector<float>(user_rows - 1, 0.5f));  // short scale
  w.WriteVecF32(std::vector<float>(user_rows, 0.0f));
  w.WriteVecI32(std::vector<int32_t>(user_rows, 3));
  w.WriteVecI8(std::vector<int8_t>(item_rows * g, 1));
  w.WriteVecF32(std::vector<float>(item_rows, 0.5f));
  w.WriteVecF32(std::vector<float>(item_rows, 0.0f));
  w.WriteVecI32(std::vector<int32_t>(item_rows, 3));
  PayloadReader r(w.buffer());
  FactorStore loaded;
  const Status s = loaded.Load(&r, /*aligned=*/false);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find(
                "user quantization side tables (scale/center/qsum) have "
                "wrong length"),
            std::string::npos);
}

TEST(FactorStoreTest, LoadRejectsWrongCodeTableLength) {
  const size_t g = 3;
  PayloadWriter w;
  w.WriteU8(static_cast<uint8_t>(FactorPrecision::kInt8));
  w.WriteU64(g);
  w.WriteU64(2);  // user rows
  w.WriteU64(2);  // item rows
  w.WriteVecI8(std::vector<int8_t>(2 * g + 1, 1));  // one code too many
  w.WriteVecF32(std::vector<float>(2, 0.5f));
  w.WriteVecF32(std::vector<float>(2, 0.0f));
  w.WriteVecI32(std::vector<int32_t>(2, 3));
  PayloadReader r(w.buffer());
  FactorStore loaded;
  const Status s = loaded.Load(&r, /*aligned=*/false);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("user int8 code table has wrong length"),
            std::string::npos);
}

TEST(FactorStoreTest, LoadRejectsEmptyDimensions) {
  PayloadWriter w;
  w.WriteU8(static_cast<uint8_t>(FactorPrecision::kFp64));
  w.WriteU64(0);  // g = 0
  w.WriteU64(2);
  w.WriteU64(2);
  PayloadReader r(w.buffer());
  FactorStore loaded;
  const Status s = loaded.Load(&r, /*aligned=*/false);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("empty dimensions"), std::string::npos);
}

// ---------------------------------------------------------------------
// Model parity tiers: fp32 epsilon, int8 top-N overlap.
// ---------------------------------------------------------------------

TEST(FactorPrecisionTest, Fp32TracksFp64WithinFloatRounding) {
  const RatingDataset train = MakeData();
  const size_t ni = static_cast<size_t>(train.num_items());
  auto references = FactorModels();
  auto compacted = FactorModels();
  for (size_t m = 0; m < references.size(); ++m) {
    ASSERT_TRUE(references[m]->Fit(train).ok());
    ASSERT_TRUE(compacted[m]->Fit(train).ok());
    ASSERT_TRUE(
        compacted[m]->SetFactorPrecision(FactorPrecision::kFp32).ok());
    EXPECT_EQ(compacted[m]->factor_precision(), FactorPrecision::kFp32);
    std::vector<double> exact(ni);
    std::vector<double> narrow(ni);
    for (UserId u = 0; u < train.num_users(); u += 17) {
      references[m]->ScoreInto(u, exact);
      compacted[m]->ScoreInto(u, narrow);
      for (size_t i = 0; i < ni; ++i) {
        const double tol = 1e-4 * std::max(1.0, std::abs(exact[i]));
        ASSERT_NEAR(exact[i], narrow[i], tol)
            << references[m]->name() << " user " << u << " item " << i;
      }
    }
  }
}

TEST(FactorPrecisionTest, Int8PreservesTopTenOverlap) {
  const RatingDataset train = MakeData();
  const size_t ni = static_cast<size_t>(train.num_items());
  auto references = FactorModels();
  auto compacted = FactorModels();
  for (size_t m = 0; m < references.size(); ++m) {
    ASSERT_TRUE(references[m]->Fit(train).ok());
    ASSERT_TRUE(compacted[m]->Fit(train).ok());
    ASSERT_TRUE(
        compacted[m]->SetFactorPrecision(FactorPrecision::kInt8).ok());
    std::vector<double> exact(ni);
    std::vector<double> quant(ni);
    double overlap_sum = 0.0;
    for (UserId u = 0; u < train.num_users(); ++u) {
      references[m]->ScoreInto(u, exact);
      compacted[m]->ScoreInto(u, quant);
      overlap_sum += OverlapAtK(TopKItems(exact, 10), TopKItems(quant, 10));
    }
    const double mean_overlap =
        overlap_sum / static_cast<double>(train.num_users());
    // The int8 acceptance tier: quantization may reorder near-ties but
    // must keep >= 95% of every user's top-10 on average.
    EXPECT_GE(mean_overlap, 0.95) << references[m]->name();
  }
}

// ---------------------------------------------------------------------
// Artifact round trips: save -> cold-load at every precision.
// ---------------------------------------------------------------------

TEST(FactorPrecisionTest, ArtifactRoundTripsBitIdenticalPerPrecision) {
  const RatingDataset train = MakeData();
  const size_t ni = static_cast<size_t>(train.num_items());
  for (const FactorPrecision precision :
       {FactorPrecision::kFp64, FactorPrecision::kFp32,
        FactorPrecision::kInt8}) {
    auto models = FactorModels();
    for (auto& model : models) {
      ASSERT_TRUE(model->Fit(train).ok());
      ASSERT_TRUE(model->SetFactorPrecision(precision).ok());
      std::stringstream ss;
      ASSERT_TRUE(model->Save(ss).ok()) << model->name();
      auto loaded = LoadModel(ss, &train);
      ASSERT_TRUE(loaded.ok()) << model->name() << ": "
                               << loaded.status().message();
      EXPECT_EQ((*loaded)->factor_precision(), precision) << model->name();
      EXPECT_EQ((*loaded)->name(), model->name());
      std::vector<double> before(ni);
      std::vector<double> after(ni);
      for (UserId u = 0; u < train.num_users(); u += 23) {
        model->ScoreInto(u, before);
        (*loaded)->ScoreInto(u, after);
        for (size_t i = 0; i < ni; ++i) {
          ASSERT_EQ(before[i], after[i])
              << model->name() << " precision "
              << FactorPrecisionName(precision) << " user " << u << " item "
              << i;
        }
      }
    }
  }
}

TEST(FactorPrecisionTest, QuantizedArtifactRejectsCorruptedFactorSection) {
  const RatingDataset train = MakeData();
  PsvdRecommender model(PsvdConfig{.num_factors = 8});
  ASSERT_TRUE(model.Fit(train).ok());
  ASSERT_TRUE(model.SetFactorPrecision(FactorPrecision::kInt8).ok());
  std::stringstream ss;
  ASSERT_TRUE(model.Save(ss).ok());
  // Lop off the tail: the artifact layer must refuse the truncated file
  // before any factor bytes reach the store.
  const std::string full = ss.str();
  std::stringstream truncated(full.substr(0, full.size() - 64));
  EXPECT_FALSE(LoadModel(truncated, &train).ok());
}

// ---------------------------------------------------------------------
// Serving: quantized artifacts cold-load straight into a service.
// ---------------------------------------------------------------------

TEST(FactorPrecisionTest, ServeColdLoadsQuantizedArtifact) {
  const RatingDataset train = MakeData();
  PsvdRecommender model(PsvdConfig{.num_factors = 8});
  ASSERT_TRUE(model.Fit(train).ok());
  ASSERT_TRUE(model.SetFactorPrecision(FactorPrecision::kInt8).ok());

  auto borrowed = RecommendationService::Create(model, train, {});
  ASSERT_TRUE(borrowed.ok());
  EXPECT_EQ((*borrowed)->factor_precision(), FactorPrecision::kInt8);

  const std::string path = ::testing::TempDir() + "/ganc_precision_serve.gam";
  ASSERT_TRUE(SaveModelFile(model, path).ok());
  auto loaded = RecommendationService::LoadModelService(path, train, {});
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  EXPECT_EQ((*loaded)->factor_precision(), FactorPrecision::kInt8);

  for (const UserId u : {0, 7, 63, 119}) {
    const auto a = (*borrowed)->TopN(u, 10);
    const auto b = (*loaded)->TopN(u, 10);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(*a, *b) << "user " << u;
  }
}

TEST(FactorPrecisionTest, ServiceConfigCompactsOwnedSnapshotOnLoad) {
  const RatingDataset train = MakeData();
  // Reference: the same deterministic fit compacted in-process.
  PsvdRecommender reference(PsvdConfig{.num_factors = 8});
  ASSERT_TRUE(reference.Fit(train).ok());
  ASSERT_TRUE(reference.SetFactorPrecision(FactorPrecision::kInt8).ok());
  auto expected = RecommendationService::Create(reference, train, {});
  ASSERT_TRUE(expected.ok());

  // An fp64 artifact loaded with config.factor_precision = int8 must
  // quantize the owned snapshot to the same tables.
  PsvdRecommender fp64_model(PsvdConfig{.num_factors = 8});
  ASSERT_TRUE(fp64_model.Fit(train).ok());
  const std::string path = ::testing::TempDir() + "/ganc_precision_fp64.gam";
  ASSERT_TRUE(SaveModelFile(fp64_model, path).ok());
  ServiceConfig config;
  config.factor_precision = FactorPrecision::kInt8;
  auto service = RecommendationService::LoadModelService(path, train, config);
  ASSERT_TRUE(service.ok()) << service.status().message();
  EXPECT_EQ((*service)->factor_precision(), FactorPrecision::kInt8);

  for (const UserId u : {0, 31, 119}) {
    const auto a = (*expected)->TopN(u, 10);
    const auto b = (*service)->TopN(u, 10);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(*a, *b) << "user " << u;
  }
}

}  // namespace
}  // namespace ganc
