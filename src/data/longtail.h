// Long-tail item determination and dataset summary statistics.
//
// Following the paper (Section II-A, citing the Pareto principle), the
// long-tail set L contains the items that generate the lower 20% of the
// total ratings in the train set, after sorting items by decreasing
// popularity. Experimentally this is ~67-88% of the catalog (Table II L%).

#ifndef GANC_DATA_LONGTAIL_H_
#define GANC_DATA_LONGTAIL_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "data/dataset.h"

namespace ganc {

/// Partition of the catalog into short-head and long-tail.
struct LongTailInfo {
  /// is_long_tail[i] is true when item i is in L.
  std::vector<bool> is_long_tail;
  /// Number of long-tail items |L|.
  int32_t tail_size = 0;
  /// Number of items with at least one train rating |I^R|.
  int32_t num_rated_items = 0;
  /// L% = |L| / |I^R| * 100 (the paper reports the tail share of *rated*
  /// items).
  double tail_percent = 0.0;

  bool Contains(ItemId i) const { return is_long_tail[static_cast<size_t>(i)]; }
};

/// Computes the long-tail set of `train`: sort items by decreasing
/// popularity, walk until `head_mass` (default 0.8) of the total rating
/// mass is covered; everything after that point — plus all unrated items —
/// is long-tail.
LongTailInfo ComputeLongTail(const RatingDataset& train,
                             double head_mass = 0.8);

/// Same partition from an already-computed popularity vector
/// (pop[i] = exact train rating count of item i) and the total rating
/// count. Callers that already swept the dataset for popularity — the
/// serving tier's domain accountant — reuse their counts instead of
/// paying a second sweep; ComputeLongTail delegates here.
LongTailInfo ComputeLongTailFromCounts(std::span<const double> pop,
                                       int64_t total_ratings,
                                       double head_mass = 0.8);

/// One row of the paper's Table II.
struct DatasetSummary {
  std::string name;
  int64_t num_ratings = 0;
  int32_t num_users = 0;
  int32_t num_items = 0;
  double density_percent = 0.0;
  double longtail_percent = 0.0;
  /// Fraction of users with fewer than 10 ratings (paper quotes 47.42%
  /// for MT-200K and 3.37% for Netflix).
  double infrequent_user_percent = 0.0;
  double mean_rating = 0.0;
};

/// Summarizes a dataset for Table II-style reporting. Long-tail share is
/// computed on `train` when provided (else on `dataset` itself).
DatasetSummary Summarize(const std::string& name, const RatingDataset& dataset,
                         const RatingDataset* train = nullptr);

}  // namespace ganc

#endif  // GANC_DATA_LONGTAIL_H_
