// Random (Rand) non-personalized recommender.
//
// Suggests unseen items uniformly at random: the paper's upper bound on
// coverage/novelty and lower bound on accuracy. Scores are deterministic
// per (seed, user, item) so repeated calls agree and threads don't race.

#ifndef GANC_RECOMMENDER_RANDOM_REC_H_
#define GANC_RECOMMENDER_RANDOM_REC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "recommender/recommender.h"

namespace ganc {

/// Uniform random scores, stable per (seed, user, item).
class RandomRecommender : public Recommender {
 public:
  explicit RandomRecommender(uint64_t seed = 99) : seed_(seed) {}

  using Recommender::Fit;
  Status Fit(const RatingDataset& train) override;
  int32_t num_items() const override { return num_items_; }
  void ScoreInto(UserId u, std::span<double> out) const override;
  std::string name() const override { return "Rand"; }
  Status Save(std::ostream& os) const override;
  using Recommender::Load;
  Status Load(ArtifactReader& r, const RatingDataset* train) override;

 private:
  uint64_t seed_;
  int32_t num_items_ = 0;
  uint64_t train_fingerprint_ = 0;  // content hash of the fitted train set
};

}  // namespace ganc

#endif  // GANC_RECOMMENDER_RANDOM_REC_H_
