#include "recommender/pop.h"

#include "util/stats.h"

namespace ganc {

Status PopRecommender::Fit(const RatingDataset& train) {
  popularity_ = train.PopularityVector();
  MinMaxNormalize(&popularity_);
  return Status::OK();
}

std::vector<double> PopRecommender::ScoreAll(UserId /*u*/) const {
  return popularity_;
}

}  // namespace ganc
