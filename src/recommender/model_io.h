// Model artifact type registry and path-based save/load entry points.
//
// Every Recommender serializes itself through Save/Load (see
// recommender.h for the contract and docs/FORMATS.md for the wire
// layout). This header owns the model type tags stored in artifact
// headers plus the factory that reads a tag and constructs the right
// concrete class — the piece a serving process needs to load "whatever
// model training saved" without hardcoding the type.

#ifndef GANC_RECOMMENDER_MODEL_IO_H_
#define GANC_RECOMMENDER_MODEL_IO_H_

#include <cstdint>
#include <istream>
#include <memory>
#include <string>

#include "recommender/recommender.h"
#include "util/serialize.h"
#include "util/status.h"

namespace ganc {

/// Stable type tags stored in model artifact headers. Append-only: a
/// tag, once shipped, is never reused for a different model.
enum class ModelType : uint32_t {
  kPop = 1,
  kRandom = 2,
  kRandomWalk = 3,
  kItemKnn = 4,
  kUserKnn = 5,
  kPsvd = 6,
  kRsvd = 7,
  kBpr = 8,
  kCofi = 9,
};

/// Section ids shared by all model artifacts: hyper-parameters first,
/// learned state second; the latent-factor models (PSVD, RSVD, BPR,
/// CofiR) append their factor tables as a third section at whatever
/// precision is active (FactorStore, docs/FORMATS.md §factor tables).
inline constexpr uint32_t kModelConfigSection = 1;
inline constexpr uint32_t kModelStateSection = 2;
inline constexpr uint32_t kFactorTableSection = 3;

/// Reads the artifact header from `r` and validates kind/type. The
/// shared prologue of every Recommender::Load implementation.
Status ReadModelHeader(ArtifactReader& r, ModelType type);

/// Saves a fitted model to `path` (overwrites).
Status SaveModelFile(const Recommender& model, const std::string& path);

/// Reads the model type tag from the artifact header, constructs the
/// matching recommender (with default hyper-parameters, which Load then
/// overwrites from the artifact), and loads it through the same reader
/// — no rewind, so unseekable streams and mapped artifacts both work.
/// `train` rebinds the dataset-backed models; self-contained models
/// ignore it. The reader is left positioned after the end marker.
Result<std::unique_ptr<Recommender>> LoadModel(ArtifactReader& r,
                                               const RatingDataset* train);

/// LoadModel over a stream positioned at the artifact's first byte.
Result<std::unique_ptr<Recommender>> LoadModel(std::istream& is,
                                               const RatingDataset* train);

/// LoadModel over a file path (stream backend).
Result<std::unique_ptr<Recommender>> LoadModelFile(const std::string& path,
                                                   const RatingDataset* train);

/// LoadModel over a memory-mapped v3 artifact: the latent-factor models
/// borrow their factor tables zero-copy from the mapping. Returns
/// kFailedPrecondition for pre-v3 artifacts and kNotImplemented without
/// platform mmap (both mean "use LoadModelFile").
Result<std::unique_ptr<Recommender>> LoadModelFileMapped(
    const std::string& path, const RatingDataset* train);

/// LoadModelFileMapped when possible, transparent fallback to the
/// stream loader otherwise (or always, when `prefer_mmap` is false).
Result<std::unique_ptr<Recommender>> LoadModelFileAuto(
    const std::string& path, bool prefer_mmap, const RatingDataset* train);

}  // namespace ganc

#endif  // GANC_RECOMMENDER_MODEL_IO_H_
