#include "util/rng.h"

#include <cassert>
#include <cmath>
#include <numeric>

namespace ganc {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
  // Avoid the all-zero state, which xoshiro cannot escape.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

uint64_t Rng::UniformInt(uint64_t n) {
  assert(n > 0);
  // Rejection sampling to remove modulo bias.
  const uint64_t threshold = (0 - n) % n;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  return lo + static_cast<int64_t>(
                  UniformInt(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::Normal() {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = 0.0;
  while (u1 <= 1e-300) u1 = Uniform();
  const double u2 = Uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * M_PI * u2;
  cached_normal_ = radius * std::sin(angle);
  have_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

bool Rng::Bernoulli(double p) { return Uniform() < p; }

Rng Rng::Fork() { return Rng(Next() ^ 0xA3EC647659359ACDULL); }

AliasSampler::AliasSampler(const std::vector<double>& weights) {
  const size_t n = weights.size();
  assert(n > 0);
  prob_.assign(n, 0.0);
  alias_.assign(n, 0);

  double total = 0.0;
  for (double w : weights) {
    assert(w >= 0.0);
    total += w;
  }
  assert(total > 0.0);

  // Scaled probabilities; classify into under/over-full buckets.
  std::vector<double> scaled(n);
  for (size_t i = 0; i < n; ++i) {
    scaled[i] = weights[i] * static_cast<double>(n) / total;
  }
  std::vector<uint32_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    const uint32_t s = small.back();
    small.pop_back();
    const uint32_t l = large.back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    if (scaled[l] < 1.0) {
      large.pop_back();
      small.push_back(l);
    }
  }
  // Numerical leftovers are full buckets.
  for (uint32_t i : large) prob_[i] = 1.0;
  for (uint32_t i : small) prob_[i] = 1.0;
}

size_t AliasSampler::Sample(Rng* rng) const {
  const size_t i = static_cast<size_t>(rng->UniformInt(prob_.size()));
  return rng->Uniform() < prob_[i] ? i : alias_[i];
}

std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k, Rng* rng) {
  assert(k <= n);
  // Floyd's algorithm: k iterations, O(k) expected set operations.
  std::vector<size_t> out;
  out.reserve(k);
  std::vector<bool> taken(n, false);
  for (size_t j = n - k; j < n; ++j) {
    const size_t t = static_cast<size_t>(rng->UniformInt(j + 1));
    if (!taken[t]) {
      taken[t] = true;
      out.push_back(t);
    } else {
      taken[j] = true;
      out.push_back(j);
    }
  }
  return out;
}

std::vector<size_t> WeightedSampleWithoutReplacement(
    const std::vector<double>& weights, size_t k, Rng* rng) {
  size_t positive = 0;
  for (double w : weights) {
    if (w > 0.0) ++positive;
  }
  assert(k <= positive);
  AliasSampler sampler(weights);
  std::vector<bool> taken(weights.size(), false);
  std::vector<size_t> out;
  out.reserve(k);
  while (out.size() < k) {
    const size_t i = sampler.Sample(rng);
    if (!taken[i]) {
      taken[i] = true;
      out.push_back(i);
    }
  }
  return out;
}

std::vector<double> ZipfWeights(size_t n, double exponent) {
  std::vector<double> w(n);
  for (size_t r = 0; r < n; ++r) {
    w[r] = std::pow(static_cast<double>(r + 1), -exponent);
  }
  return w;
}

}  // namespace ganc
