#include "util/flags.h"

#include <algorithm>
#include <cstdlib>

namespace ganc {

Result<Flags> Flags::Parse(int argc, const char* const* argv,
                           const std::vector<std::string>& known) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      flags.positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    std::string name = arg;
    std::string value;
    bool has_value = false;
    const size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
      has_value = true;
    }
    if (std::find(known.begin(), known.end(), name) == known.end()) {
      return Status::InvalidArgument("unknown flag --" + name);
    }
    if (!has_value && i + 1 < argc &&
        std::string(argv[i + 1]).rfind("--", 0) != 0) {
      value = argv[++i];
    }
    flags.values_[name] = value;
  }
  return flags;
}

std::string Flags::GetString(const std::string& name,
                             const std::string& fallback) const {
  const auto it = values_.find(name);
  return it != values_.end() && !it->second.empty() ? it->second : fallback;
}

Result<int64_t> Flags::GetInt(const std::string& name,
                              int64_t fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end() || it->second.empty()) return fallback;
  char* end = nullptr;
  const long long v = std::strtoll(it->second.c_str(), &end, 10);
  if (end == it->second.c_str() || *end != '\0') {
    return Status::InvalidArgument("flag --" + name + " expects an integer, got '" +
                                   it->second + "'");
  }
  return static_cast<int64_t>(v);
}

Result<double> Flags::GetDouble(const std::string& name,
                                double fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end() || it->second.empty()) return fallback;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  if (end == it->second.c_str() || *end != '\0') {
    return Status::InvalidArgument("flag --" + name + " expects a number, got '" +
                                   it->second + "'");
  }
  return v;
}

bool Flags::GetBool(const std::string& name, bool fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  const std::string& v = it->second;
  if (v.empty() || v == "true" || v == "1" || v == "yes") return true;
  if (v == "false" || v == "0" || v == "no") return false;
  return fallback;
}

}  // namespace ganc
