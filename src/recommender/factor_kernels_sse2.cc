// SSE2 kernel variant: 8 user lanes as 4 x __m128d (fp64), 2 x __m128
// (fp32), 2 x __m128i madd accumulators (int8). Compiled with -msse2
// -ffp-contract=off (CMakeLists.txt); on non-x86 targets the TU
// compiles to the scalar fallback below.

#include "recommender/factor_kernels_impl.h"

#if defined(__SSE2__)

#include <emmintrin.h>

namespace ganc {
namespace internal {
namespace {

struct Sse2Traits {
  using F64 = __m128d;
  static constexpr size_t kRegsF64 = 4;
  static constexpr size_t kLanesF64 = 2;
  static F64 LoadF64(const double* p) { return _mm_load_pd(p); }
  static void StoreF64(double* p, F64 v) { _mm_store_pd(p, v); }
  static F64 BroadcastF64(double x) { return _mm_set1_pd(x); }
  static F64 AddF64(F64 a, F64 b) { return _mm_add_pd(a, b); }
  static F64 MulAddF64(F64 acc, F64 a, F64 b) {
    return _mm_add_pd(acc, _mm_mul_pd(a, b));
  }
  static F64 ZeroF64() { return _mm_setzero_pd(); }

  using F32 = __m128;
  static constexpr size_t kRegsF32 = 2;
  static constexpr size_t kLanesF32 = 4;
  static F32 LoadF32(const float* p) { return _mm_load_ps(p); }
  static void StoreF32(float* p, F32 v) { _mm_store_ps(p, v); }
  static F32 BroadcastF32(float x) { return _mm_set1_ps(x); }
  static F32 AddF32(F32 a, F32 b) { return _mm_add_ps(a, b); }
  static F32 MulAddF32(F32 acc, F32 a, F32 b) {
    return _mm_add_ps(acc, _mm_mul_ps(a, b));
  }
  static F32 ZeroF32() { return _mm_setzero_ps(); }

  using I32 = __m128i;
  static constexpr size_t kRegsI32 = 2;
  static constexpr size_t kI16PerReg = 8;  // 4 lanes x (pair of int16)
  static I32 ZeroI32() { return _mm_setzero_si128(); }
  static I32 BroadcastPair(int32_t pair) { return _mm_set1_epi32(pair); }
  static I32 MaddAcc(I32 acc, const int16_t* pack, I32 pair) {
    return _mm_add_epi32(
        acc, _mm_madd_epi16(
                 _mm_load_si128(reinterpret_cast<const __m128i*>(pack)), pair));
  }
  static void StoreI32(int32_t* p, I32 v) {
    _mm_store_si128(reinterpret_cast<__m128i*>(p), v);
  }
};

}  // namespace

const KernelOps& Sse2KernelOps() {
  static const KernelOps ops{&DispatchF64<Sse2Traits>, &DispatchF32<Sse2Traits>,
                             &DispatchI8<Sse2Traits>};
  return ops;
}

bool Sse2KernelCompiled() { return true; }

}  // namespace internal
}  // namespace ganc

#else  // !defined(__SSE2__)

namespace ganc {
namespace internal {

const KernelOps& Sse2KernelOps() { return ScalarKernelOps(); }
bool Sse2KernelCompiled() { return false; }

}  // namespace internal
}  // namespace ganc

#endif
