// ServeResultCache: LRU eviction order, snapshot-version invalidation,
// exclusion-fingerprint keying, and concurrent access.

#include "serve/result_cache.h"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace ganc {
namespace {

ServeResultCache::Key Key(UserId user, int32_t n = 5, uint64_t fp = 0,
                          uint64_t version = 1) {
  return ServeResultCache::Key{user, n, fp, version};
}

std::vector<ItemId> List(std::initializer_list<ItemId> items) {
  return std::vector<ItemId>(items);
}

TEST(ServeResultCacheTest, InsertLookupRoundTrip) {
  ServeResultCache cache(16);
  const std::vector<ItemId> items = List({3, 1, 9});
  cache.Insert(Key(7), items);
  std::vector<ItemId> out;
  ASSERT_TRUE(cache.Lookup(Key(7), &out));
  EXPECT_EQ(out, items);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ServeResultCacheTest, MissOnUnknownKeyLeavesOutputUntouched) {
  ServeResultCache cache(16);
  std::vector<ItemId> out = List({42});
  EXPECT_FALSE(cache.Lookup(Key(1), &out));
  EXPECT_EQ(out, List({42}));
}

TEST(ServeResultCacheTest, EveryKeyFieldDiscriminates) {
  ServeResultCache cache(64);
  cache.Insert(Key(1, 5, 10, 1), List({1}));
  std::vector<ItemId> out;
  EXPECT_TRUE(cache.Lookup(Key(1, 5, 10, 1), &out));
  EXPECT_FALSE(cache.Lookup(Key(2, 5, 10, 1), &out));  // other user
  EXPECT_FALSE(cache.Lookup(Key(1, 6, 10, 1), &out));  // other n
  EXPECT_FALSE(cache.Lookup(Key(1, 5, 11, 1), &out));  // other exclusions
  EXPECT_FALSE(cache.Lookup(Key(1, 5, 10, 2), &out));  // other snapshot
}

TEST(ServeResultCacheTest, SnapshotVersionInvalidatesWholeCache) {
  ServeResultCache cache(64);
  for (UserId u = 0; u < 10; ++u) {
    cache.Insert(Key(u, 5, 0, /*version=*/1), List({u}));
  }
  // A snapshot swap bumps the version: every lookup under v2 misses even
  // though (user, n, fp) coincide.
  std::vector<ItemId> out;
  for (UserId u = 0; u < 10; ++u) {
    EXPECT_FALSE(cache.Lookup(Key(u, 5, 0, /*version=*/2), &out));
  }
  // Clear() is the eager variant.
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.Lookup(Key(3, 5, 0, 1), &out));
}

TEST(ServeResultCacheTest, EvictsLeastRecentlyUsed) {
  // Single shard so the LRU order is global and assertable.
  ServeResultCache cache(/*capacity=*/3, /*num_shards=*/1);
  cache.Insert(Key(1), List({1}));
  cache.Insert(Key(2), List({2}));
  cache.Insert(Key(3), List({3}));
  // Touch 1 so 2 becomes the LRU tail.
  std::vector<ItemId> out;
  ASSERT_TRUE(cache.Lookup(Key(1), &out));
  cache.Insert(Key(4), List({4}));
  EXPECT_TRUE(cache.Lookup(Key(1), &out));
  EXPECT_FALSE(cache.Lookup(Key(2), &out));  // evicted
  EXPECT_TRUE(cache.Lookup(Key(3), &out));
  EXPECT_TRUE(cache.Lookup(Key(4), &out));
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.counters().evictions, 1u);
}

TEST(ServeResultCacheTest, ReinsertRefreshesValueWithoutGrowth) {
  ServeResultCache cache(4, 1);
  cache.Insert(Key(1), List({1, 2}));
  cache.Insert(Key(1), List({9}));
  std::vector<ItemId> out;
  ASSERT_TRUE(cache.Lookup(Key(1), &out));
  EXPECT_EQ(out, List({9}));
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ServeResultCacheTest, ExclusionFingerprintIsOrderInsensitiveBySorting) {
  const std::vector<ItemId> a = {2, 5, 9};
  EXPECT_EQ(ExclusionFingerprint(a), ExclusionFingerprint(a));
  const std::vector<ItemId> b = {2, 5, 8};
  EXPECT_NE(ExclusionFingerprint(a), ExclusionFingerprint(b));
  EXPECT_NE(ExclusionFingerprint(a), ExclusionFingerprint({}));
}

TEST(ServeResultCacheTest, ConcurrentMixedTrafficStaysConsistent) {
  ServeResultCache cache(128, 8);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&cache, t] {
      std::vector<ItemId> out;
      for (int round = 0; round < 2000; ++round) {
        const UserId u = static_cast<UserId>((t * 31 + round) % 64);
        if (cache.Lookup(Key(u), &out)) {
          // A hit must return what some thread inserted for this user.
          ASSERT_EQ(out.size(), 1u);
          ASSERT_EQ(out[0], u);
        } else {
          cache.Insert(Key(u), List({u}));
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_LE(cache.size(), 128u);
  const ServeResultCache::Counters c = cache.counters();
  EXPECT_EQ(c.hits + c.misses, 4u * 2000u);
}

}  // namespace
}  // namespace ganc
