// Ablation A3: individual-list diversification vs aggregate coverage.
//
// The paper's related-work claim (Section VI, citing Ziegler et al. and
// Adomavicius & Kwon): "diversifying individual top-N sets does not
// necessarily increase coverage". We sweep MMR's lambda and contrast it
// with GANC(ARec, thetaG, Dyn): MMR lowers intra-list similarity but
// barely moves catalog coverage; GANC moves coverage dramatically.

#include <cstdio>

#include "bench/common.h"
#include "eval/metrics.h"
#include "eval/novelty_metrics.h"
#include "rerank/mmr.h"
#include "util/csv.h"
#include "util/table.h"

using namespace ganc;
using namespace ganc::bench;

int main() {
  Banner("Ablation A3", "individual diversity (MMR) vs aggregate coverage");

  const BenchData data = MakeData(Corpus::kMl100k);
  const RatingDataset& train = data.train;
  const PsvdRecommender psvd = FitPsvd(train, 40);
  const NormalizedAccuracyScorer scorer(&psvd);
  const auto theta = ThetaG(train);
  const MetricsConfig mcfg{.top_n = 5};

  TablePrinter table({"method", "F@5", "C@5", "G@5", "intra-list sim",
                      "entropy"});
  // Base + MMR sweep.
  MmrConfig probe_cfg;
  probe_cfg.lambda = 1.0;
  const MmrReranker probe(&psvd, &train, probe_cfg);  // index for ILS
  for (double lambda : {1.0, 0.7, 0.4, 0.1}) {
    MmrConfig cfg;
    cfg.lambda = lambda;
    const MmrReranker mmr(&psvd, &train, cfg);
    auto topn = mmr.RecommendAll(train, 5);
    if (!topn.ok()) return 1;
    const auto m = EvaluateTopN(train, data.test, *topn, mcfg);
    table.AddRow({mmr.name(), FormatDouble(m.f_measure, 4),
                  FormatDouble(m.coverage, 4), FormatDouble(m.gini, 4),
                  FormatDouble(probe.IntraListSimilarity(*topn), 4),
                  FormatDouble(RecommendationEntropy(train, *topn, 5), 4)});
  }
  // GANC for contrast.
  {
    GancConfig cfg;
    cfg.top_n = 5;
    cfg.sample_size = 500;
    const auto topn = RunGanc(scorer, theta, CoverageKind::kDyn, train, cfg);
    const auto m = EvaluateTopN(train, data.test, topn, mcfg);
    table.AddRow({"GANC(PSVD40, thetaG, Dyn)", FormatDouble(m.f_measure, 4),
                  FormatDouble(m.coverage, 4), FormatDouble(m.gini, 4),
                  FormatDouble(probe.IntraListSimilarity(topn), 4),
                  FormatDouble(RecommendationEntropy(train, topn, 5), 4)});
  }
  table.Print();
  std::printf(
      "\nexpected: decreasing lambda cuts intra-list similarity (lists get\n"
      "individually diverse) with little aggregate-coverage movement, while\n"
      "GANC multiplies Coverage@5 — individual diversity and aggregate\n"
      "coverage are different objectives (paper Section VI).\n");
  return 0;
}
