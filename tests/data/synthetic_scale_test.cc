// Streaming power-law scale generator: the output file must be a
// function of the spec alone — identical across runs and across thread
// counts — with a stored fingerprint that matches the loaded content,
// activity bounds respected, and the Zipf head/tail shape the scale
// harness relies on.

#include "data/synthetic.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "data/dataset.h"
#include "util/thread_pool.h"

namespace ganc {
namespace {

std::string TestPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string FileBytes(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  EXPECT_TRUE(is.good()) << path;
  return std::string(std::istreambuf_iterator<char>(is),
                     std::istreambuf_iterator<char>());
}

ScaleSyntheticSpec SmallSpec() {
  ScaleSyntheticSpec spec = PowerLawScaleSpec(3000);
  spec.num_items = 800;
  spec.seed = 7;
  return spec;
}

TEST(SyntheticScaleTest, RunsAreByteIdentical) {
  const ScaleSyntheticSpec spec = SmallSpec();
  const std::string a = TestPath("scale_run_a.gdc");
  const std::string b = TestPath("scale_run_b.gdc");
  auto nnz_a = GenerateSyntheticStream(spec, a);
  ASSERT_TRUE(nnz_a.ok()) << nnz_a.status().ToString();
  auto nnz_b = GenerateSyntheticStream(spec, b);
  ASSERT_TRUE(nnz_b.ok());
  EXPECT_EQ(*nnz_a, *nnz_b);
  EXPECT_EQ(FileBytes(a), FileBytes(b));
  EXPECT_GT(*nnz_a, 0);
}

TEST(SyntheticScaleTest, ThreadCountDoesNotChangeTheBytes) {
  const ScaleSyntheticSpec spec = SmallSpec();
  const std::string serial = TestPath("scale_serial.gdc");
  const std::string threaded = TestPath("scale_threaded.gdc");
  auto nnz_serial = GenerateSyntheticStream(spec, serial, nullptr);
  ASSERT_TRUE(nnz_serial.ok()) << nnz_serial.status().ToString();
  ThreadPool pool(3);
  auto nnz_threaded = GenerateSyntheticStream(spec, threaded, &pool);
  ASSERT_TRUE(nnz_threaded.ok()) << nnz_threaded.status().ToString();
  EXPECT_EQ(*nnz_serial, *nnz_threaded);
  EXPECT_EQ(FileBytes(serial), FileBytes(threaded));
}

TEST(SyntheticScaleTest, SeedChangesTheBytes) {
  ScaleSyntheticSpec spec = SmallSpec();
  const std::string a = TestPath("scale_seed_a.gdc");
  ASSERT_TRUE(GenerateSyntheticStream(spec, a).ok());
  spec.seed += 1;
  const std::string b = TestPath("scale_seed_b.gdc");
  ASSERT_TRUE(GenerateSyntheticStream(spec, b).ok());
  EXPECT_NE(FileBytes(a), FileBytes(b));
}

TEST(SyntheticScaleTest, OutputLoadsWithMatchingFingerprintAndBounds) {
  const ScaleSyntheticSpec spec = SmallSpec();
  const std::string path = TestPath("scale_content.gdc");
  auto nnz = GenerateSyntheticStream(spec, path);
  ASSERT_TRUE(nnz.ok());

  // Mapped and eager loads agree; the stored fingerprint matches a
  // from-scratch recomputation over the loaded rows.
  auto mapped = RatingDataset::LoadMappedFile(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  ASSERT_TRUE(mapped->EnsureResident().ok());
  auto eager = RatingDataset::LoadBinaryFile(path);
  ASSERT_TRUE(eager.ok());
  EXPECT_EQ(mapped->num_ratings(), *nnz);
  EXPECT_EQ(eager->num_ratings(), *nnz);
  EXPECT_EQ(mapped->Fingerprint(), eager->Fingerprint());

  RatingDatasetBuilder rebuild(mapped->num_users(), mapped->num_items());
  for (UserId u = 0; u < mapped->num_users(); ++u) {
    for (const ItemRating& ir : mapped->ItemsOf(u)) {
      ASSERT_TRUE(rebuild.Add(u, ir.item, ir.value).ok());
    }
  }
  auto recomputed = std::move(rebuild).Build();
  ASSERT_TRUE(recomputed.ok());
  EXPECT_EQ(recomputed->Fingerprint(), mapped->Fingerprint());

  // Per-user activity respects the floor and the catalog-fraction cap;
  // rating values stay on the configured scale.
  const int32_t cap = static_cast<int32_t>(
      spec.max_activity_frac * static_cast<double>(spec.num_items));
  for (UserId u = 0; u < mapped->num_users(); ++u) {
    const int32_t a = mapped->Activity(u);
    ASSERT_GE(a, spec.min_activity) << "user " << u;
    ASSERT_LE(a, std::max(cap, 1)) << "user " << u;
  }
  for (const Rating& r : mapped->ratings()) {
    ASSERT_GE(r.value, spec.rating_min);
    ASSERT_LE(r.value, spec.rating_max);
  }
}

TEST(SyntheticScaleTest, ZipfHeadDominatesTail) {
  const ScaleSyntheticSpec spec = SmallSpec();
  const std::string path = TestPath("scale_zipf.gdc");
  ASSERT_TRUE(GenerateSyntheticStream(spec, path).ok());
  auto ds = RatingDataset::LoadBinaryFile(path);
  ASSERT_TRUE(ds.ok());

  // Item ids are popularity rank (0 most popular). The head 10% of the
  // catalog must hold well over its uniform share of ratings, and the
  // tail half clearly under half — the long-tail shape the scale
  // harness's popularity-bias measurements depend on.
  const int32_t head_cut = ds->num_items() / 10;
  const int32_t tail_cut = ds->num_items() / 2;
  int64_t head = 0;
  int64_t tail = 0;
  for (ItemId i = 0; i < ds->num_items(); ++i) {
    if (i < head_cut) head += ds->Popularity(i);
    if (i >= tail_cut) tail += ds->Popularity(i);
  }
  const double total = static_cast<double>(ds->num_ratings());
  EXPECT_GT(static_cast<double>(head) / total, 0.30);
  EXPECT_LT(static_cast<double>(tail) / total, 0.30);
  // Monotone-ish: the most popular item beats the median item.
  EXPECT_GT(ds->Popularity(0), ds->Popularity(tail_cut));
}

TEST(SyntheticScaleTest, InvalidSpecsAreRejected) {
  const std::string path = TestPath("scale_invalid.gdc");
  ScaleSyntheticSpec bad = SmallSpec();
  bad.num_users = 0;
  EXPECT_FALSE(GenerateSyntheticStream(bad, path).ok());
  bad = SmallSpec();
  bad.max_activity_frac = 0.9;  // rejection sampling would degenerate
  EXPECT_FALSE(GenerateSyntheticStream(bad, path).ok());
  bad = SmallSpec();
  bad.rating_step = 0.0;
  EXPECT_FALSE(GenerateSyntheticStream(bad, path).ok());
}

}  // namespace
}  // namespace ganc
