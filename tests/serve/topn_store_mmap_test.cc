// Mapped top-N store: LoadFileMapped must serve exactly the lists the
// stream loader reconstructs, validate offsets before handing out any
// view, reject corruption and truncation through the mapped reader, and
// fall back cleanly for pre-mmap callers via LoadFileAuto.

#include "serve/topn_store.h"

#include <cstdio>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

namespace ganc {
namespace {

std::string TestPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string FileBytes(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  EXPECT_TRUE(is.good()) << path;
  return std::string(std::istreambuf_iterator<char>(is),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(os.good());
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// A store over 40 users with varied list lengths (including absent
// users and one empty-but-present shape via a short list).
TopNStore MakeStore() {
  std::vector<std::pair<UserId, std::vector<ItemId>>> lists;
  for (UserId u = 0; u < 40; u += 3) {
    std::vector<ItemId> items;
    for (int32_t k = 0; k < (u % 7) + 1; ++k) {
      items.push_back((u * 13 + k * 5) % 90);
    }
    lists.emplace_back(u, std::move(items));
  }
  auto store = TopNStore::FromLists(40, 90, 8, /*train_fingerprint=*/0xABCD,
                                    "psvd10", lists);
  EXPECT_TRUE(store.ok()) << store.status().ToString();
  return std::move(store).value();
}

void ExpectSameLists(const TopNStore& a, const TopNStore& b) {
  ASSERT_EQ(a.num_users(), b.num_users());
  ASSERT_EQ(a.num_items(), b.num_items());
  ASSERT_EQ(a.top_n(), b.top_n());
  ASSERT_EQ(a.train_fingerprint(), b.train_fingerprint());
  ASSERT_EQ(a.source(), b.source());
  ASSERT_EQ(a.num_lists(), b.num_lists());
  ASSERT_EQ(a.total_items(), b.total_items());
  for (UserId u = 0; u < a.num_users(); ++u) {
    const auto la = a.ListFor(u);
    const auto lb = b.ListFor(u);
    ASSERT_EQ(la.size(), lb.size()) << "user " << u;
    for (size_t k = 0; k < la.size(); ++k) {
      ASSERT_EQ(la[k], lb[k]) << "user " << u << " pos " << k;
    }
  }
}

TEST(TopNStoreMmapTest, MappedServesTheStreamLoadersLists) {
  const TopNStore original = MakeStore();
  const std::string path = TestPath("store_mmap.gts");
  ASSERT_TRUE(original.SaveFile(path).ok());

  auto streamed = TopNStore::LoadFile(path);
  ASSERT_TRUE(streamed.ok()) << streamed.status().ToString();
  auto mapped = TopNStore::LoadFileMapped(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  EXPECT_TRUE(mapped->IsMapped());
  EXPECT_FALSE(streamed->IsMapped());
  ExpectSameLists(*streamed, *mapped);
  ExpectSameLists(original, *mapped);
  // Users not in the store own an empty slice either way.
  EXPECT_TRUE(mapped->ListFor(1).empty());
  std::remove(path.c_str());
}

TEST(TopNStoreMmapTest, AutoLoaderHonorsPreference) {
  const TopNStore original = MakeStore();
  const std::string path = TestPath("store_auto.gts");
  ASSERT_TRUE(original.SaveFile(path).ok());
  auto mapped = TopNStore::LoadFileAuto(path, /*prefer_mmap=*/true);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  EXPECT_TRUE(mapped->IsMapped());
  auto streamed = TopNStore::LoadFileAuto(path, /*prefer_mmap=*/false);
  ASSERT_TRUE(streamed.ok());
  EXPECT_FALSE(streamed->IsMapped());
  ExpectSameLists(*streamed, *mapped);
  std::remove(path.c_str());
}

TEST(TopNStoreMmapTest, TruncationAtEveryCutIsATypedError) {
  const TopNStore original = MakeStore();
  const std::string path = TestPath("store_full.gts");
  ASSERT_TRUE(original.SaveFile(path).ok());
  const std::string bytes = FileBytes(path);
  const std::string cut_path = TestPath("store_cut.gts");
  for (size_t cut = 0; cut < bytes.size(); cut += 5) {
    WriteFileBytes(cut_path, bytes.substr(0, cut));
    auto mapped = TopNStore::LoadFileMapped(cut_path);
    EXPECT_FALSE(mapped.ok()) << "cut " << cut << " slipped through";
  }
  std::remove(path.c_str());
  std::remove(cut_path.c_str());
}

TEST(TopNStoreMmapTest, CorruptOffsetsRejectedBeforeAnyLookup) {
  const TopNStore original = MakeStore();
  const std::string path = TestPath("store_corrupt.gts");
  ASSERT_TRUE(original.SaveFile(path).ok());
  std::string bytes = FileBytes(path);
  // Flip one byte at a time across the whole file: the mapped loader
  // either refuses the artifact or — never — serves different lists.
  int rejections = 0;
  const std::string bad_path = TestPath("store_bad.gts");
  for (size_t i = 0; i < bytes.size(); i += 3) {
    std::string corrupt = bytes;
    corrupt[i] ^= 0x5A;
    WriteFileBytes(bad_path, corrupt);
    auto mapped = TopNStore::LoadFileMapped(bad_path);
    if (!mapped.ok()) {
      ++rejections;
      continue;
    }
    // Survivors must still be structurally sound and fingerprint-gated;
    // a changed fingerprint or source string is the acceptable case.
    for (UserId u = 0; u < mapped->num_users(); ++u) {
      const auto list = mapped->ListFor(u);
      for (ItemId item : list) {
        ASSERT_GE(item, 0) << "byte " << i;
        ASSERT_LT(item, mapped->num_items()) << "byte " << i;
      }
    }
  }
  // The store artifact is small, so every section is checksum-covered:
  // the vast majority of flips must be outright rejections.
  EXPECT_GT(rejections, 0);
  std::remove(path.c_str());
  std::remove(bad_path.c_str());
}

}  // namespace
}  // namespace ganc
