// Swap-under-load determinism: a live PUBLISH while >=1000 concurrent
// requests are in flight must drop nothing, and every response must be
// bit-identical to the offline reference of whichever snapshot version
// it reports having been served from. Also covers the rejection path:
// a fingerprint-mismatched artifact must be refused while the old
// snapshot keeps serving untouched.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "data/split.h"
#include "data/synthetic.h"
#include "recommender/model_io.h"
#include "recommender/psvd.h"
#include "serve/recommendation_service.h"
#include "serve/shard_router.h"
#include "serve/service_shard.h"

namespace ganc {
namespace {

constexpr int kN = 5;
constexpr int kThreads = 8;
constexpr int kMinRequestsPerThread = 150;  // 8 * 150 = 1200 >= 1000

RatingDataset MakeTrain() {
  SyntheticSpec spec = TinySpec();
  spec.num_users = 50;
  spec.num_items = 90;
  spec.mean_activity = 16.0;
  auto ds = GenerateSynthetic(spec);
  EXPECT_TRUE(ds.ok());
  return std::move(ds).value();
}

std::string SaveModel(const RatingDataset& train, const std::string& name,
                      int factors) {
  PsvdRecommender model(PsvdConfig{.num_factors = factors});
  EXPECT_TRUE(model.Fit(train).ok());
  const std::string path = testing::TempDir() + "/" + name;
  EXPECT_TRUE(SaveModelFile(model, path).ok());
  return path;
}

// Per-user reference lists computed by a fresh unsharded service over
// the given artifact.
std::vector<std::vector<ItemId>> Reference(const std::string& path,
                                           const RatingDataset& train) {
  Result<std::unique_ptr<RecommendationService>> service =
      RecommendationService::LoadModelService(path, train, {});
  EXPECT_TRUE(service.ok()) << service.status().ToString();
  std::vector<std::vector<ItemId>> lists(train.num_users());
  for (UserId u = 0; u < train.num_users(); ++u) {
    EXPECT_TRUE((*service)->TopNInto(u, kN, {}, &lists[u]).ok());
  }
  return lists;
}

struct Served {
  UserId user;
  size_t shard;
  uint64_t version;
  std::vector<ItemId> items;
};

TEST(SwapParityTest, LivePublishUnderConcurrentLoadIsDeterministic) {
  const RatingDataset train = MakeTrain();
  const std::string path_a = SaveModel(train, "swap_a.gam", 8);
  const std::string path_b = SaveModel(train, "swap_b.gam", 12);
  const auto ref_a = Reference(path_a, train);
  const auto ref_b = Reference(path_b, train);
  // The two snapshots must actually disagree somewhere, or version
  // attribution would be vacuous.
  ASSERT_NE(ref_a, ref_b);

  auto router_or = ShardRouter::Load(SnapshotKind::kModel, path_a, train,
                                     3, {});
  ASSERT_TRUE(router_or.ok()) << router_or.status().ToString();
  ShardRouter& router = **router_or;

  const std::vector<uint64_t> va = router.versions();
  const std::set<uint64_t> versions_a(va.begin(), va.end());

  std::atomic<bool> start{false};
  std::atomic<bool> published{false};
  std::atomic<uint64_t> total{0};
  std::atomic<int> errors{0};
  std::vector<std::vector<Served>> per_thread(kThreads);

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      while (!start.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      auto& log = per_thread[t];
      int after_publish = 0;
      for (int i = 0; after_publish < kMinRequestsPerThread; ++i) {
        const UserId user =
            static_cast<UserId>((i * (t + 1) * 7 + t * 13) %
                                train.num_users());
        Served s;
        s.user = user;
        s.shard = router.IndexFor(user);
        const Status st = router.TopNInto(user, kN, {}, &s.items, &s.version);
        if (!st.ok()) {
          errors.fetch_add(1, std::memory_order_relaxed);
        } else {
          log.push_back(std::move(s));
        }
        total.fetch_add(1, std::memory_order_relaxed);
        if (published.load(std::memory_order_acquire)) ++after_publish;
      }
    });
  }

  start.store(true, std::memory_order_release);
  // Let a healthy pre-publish backlog accumulate, then swap live.
  while (total.load(std::memory_order_relaxed) < 100) {
    std::this_thread::yield();
  }
  uint64_t max_version = 0;
  const Status pub = router.Publish(path_b, &max_version);
  ASSERT_TRUE(pub.ok()) << pub.ToString();
  published.store(true, std::memory_order_release);
  for (auto& th : threads) th.join();

  const std::vector<uint64_t> vb = router.versions();
  const std::set<uint64_t> versions_b(vb.begin(), vb.end());
  EXPECT_EQ(max_version, *versions_b.rbegin());
  for (const uint64_t v : versions_b) {
    EXPECT_EQ(versions_a.count(v), 0u) << "publish must mint new versions";
  }

  // Zero drops: every issued request either succeeded or (never, here)
  // errored — and nothing errored.
  EXPECT_EQ(errors.load(), 0);
  uint64_t recorded = 0;
  uint64_t served_old = 0;
  uint64_t served_new = 0;
  for (int t = 0; t < kThreads; ++t) {
    // Versions seen by one thread on one shard never move backwards.
    std::map<size_t, uint64_t> last_version;
    for (const Served& s : per_thread[t]) {
      ++recorded;
      auto [it, inserted] = last_version.try_emplace(s.shard, s.version);
      if (!inserted) {
        EXPECT_GE(s.version, it->second)
            << "thread " << t << " shard " << s.shard;
        it->second = s.version;
      }
      // Bit-identity against the reference for the version actually
      // served.
      if (versions_a.count(s.version) > 0) {
        ++served_old;
        EXPECT_EQ(s.items, ref_a[s.user]) << "user " << s.user;
      } else {
        ASSERT_GT(versions_b.count(s.version), 0u)
            << "response reports unknown version " << s.version;
        ++served_new;
        EXPECT_EQ(s.items, ref_b[s.user]) << "user " << s.user;
      }
    }
  }
  EXPECT_GE(recorded, 1000u);
  // The load genuinely spanned the swap.
  EXPECT_GT(served_old, 0u);
  EXPECT_GT(served_new, 0u);
  EXPECT_EQ(router.swap_counters().published, 3u);
  EXPECT_EQ(router.swap_counters().rejected, 0u);
}

TEST(SwapParityTest, MismatchedArtifactIsRejectedAndOldSnapshotKeepsServing) {
  const RatingDataset train = MakeTrain();
  const std::string path_a = SaveModel(train, "swap_keep_a.gam", 8);
  const auto ref_a = Reference(path_a, train);

  // An artifact trained on a different dataset: same format, wrong
  // fingerprint.
  SyntheticSpec other_spec = TinySpec();
  other_spec.num_users = 40;
  other_spec.num_items = 80;
  auto other = GenerateSynthetic(other_spec);
  ASSERT_TRUE(other.ok());
  const std::string path_bad =
      SaveModel(*other, "swap_keep_mismatch.gam", 8);

  auto router_or = ShardRouter::Load(SnapshotKind::kModel, path_a, train,
                                     3, {});
  ASSERT_TRUE(router_or.ok());
  ShardRouter& router = **router_or;
  const std::vector<uint64_t> before = router.versions();

  EXPECT_FALSE(router.Publish(path_bad).ok());
  EXPECT_FALSE(router.Publish(testing::TempDir() + "/no_such.gam").ok());

  // Old snapshot untouched: same versions, same bits.
  EXPECT_EQ(router.versions(), before);
  EXPECT_GE(router.swap_counters().rejected, 2u);
  EXPECT_EQ(router.swap_counters().published, 0u);
  std::vector<ItemId> out;
  for (UserId u = 0; u < train.num_users(); ++u) {
    ASSERT_TRUE(router.TopNInto(u, kN, {}, &out, nullptr).ok());
    EXPECT_EQ(out, ref_a[u]) << "user " << u;
  }
}

}  // namespace
}  // namespace ganc
