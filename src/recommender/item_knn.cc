#include "recommender/item_knn.h"

#include <algorithm>
#include <cmath>

namespace ganc {

ItemKnnRecommender::ItemKnnRecommender(ItemKnnConfig config)
    : config_(config) {}

Status ItemKnnRecommender::Fit(const RatingDataset& train) {
  if (config_.num_neighbors <= 0) {
    return Status::InvalidArgument("num_neighbors must be positive");
  }
  num_items_ = train.num_items();
  train_ = &train;
  index_ = ItemSimilarityIndex(train, config_.num_neighbors,
                               config_.max_profile, config_.seed);
  return Status::OK();
}

void ItemKnnRecommender::ScoreInto(UserId u, std::span<double> out) const {
  std::fill(out.begin(), out.end(), 0.0);
  // Accumulate from the user's rated items outward: each rated item j
  // pushes sim(i, j) * r_uj onto its neighbours i. Equivalent to scoring
  // every i over its rated neighbours, but touches only |I_u| * k entries.
  for (const ItemRating& ir : train_->ItemsOf(u)) {
    for (const ItemNeighbor& nb : index_.NeighborsOf(ir.item)) {
      out[static_cast<size_t>(nb.item)] +=
          static_cast<double>(nb.sim) * static_cast<double>(ir.value);
    }
  }
}

}  // namespace ganc
