// Extension E1 (paper's future work, Section VII): temporal dynamics of
// long-tail novelty preference. Windows each user's interaction sequence,
// estimates theta per window, and reports cross-window stability — the
// empirical premise behind learning theta from historical data.

#include <cstdio>

#include "bench/common.h"
#include "core/preference_dynamics.h"
#include "util/csv.h"
#include "util/stats.h"
#include "util/table.h"

using namespace ganc;
using namespace ganc::bench;

int main() {
  Banner("Extension E1",
         "temporal stability of long-tail preference estimates");

  for (Corpus corpus : AllCorpora()) {
    const BenchData data = MakeData(corpus);
    std::printf("--- %s ---\n", data.name.c_str());
    for (int32_t windows : {2, 4}) {
      auto traj = EstimateThetaWindows(data.full, {.num_windows = windows});
      if (!traj.ok()) {
        std::fprintf(stderr, "dynamics: %s\n",
                     traj.status().ToString().c_str());
        return 1;
      }
      const DriftReport drift = SummarizeDrift(*traj);
      TablePrinter table({"transition", "corr(theta_w, theta_w+1)",
                          "mean |drift|"});
      for (size_t t = 0; t < drift.adjacent_correlation.size(); ++t) {
        table.AddRow({std::to_string(t) + "->" + std::to_string(t + 1),
                      FormatDouble(drift.adjacent_correlation[t], 3),
                      FormatDouble(drift.mean_abs_drift[t], 4)});
      }
      std::printf("windows = %d (users in all windows: %d)\n", windows,
                  drift.users_in_all_windows);
      table.Print();
    }
    std::printf("\n");
  }
  std::printf(
      "expected: positive adjacent-window correlations on every corpus —\n"
      "the long-tail preference signal is stable enough to learn from\n"
      "history, supporting the paper's theta-based personalization.\n");
  return 0;
}
