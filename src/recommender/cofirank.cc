#include "recommender/cofirank.h"

#include <algorithm>
#include <utility>

#include "recommender/model_io.h"
#include "recommender/train_sweep.h"
#include "util/rng.h"
#include "util/serialize.h"

namespace ganc {

CofiRecommender::CofiRecommender(CofiConfig config) : config_(config) {}

Status CofiRecommender::Fit(const RatingDataset& train) {
  return Fit(train, nullptr);
}

// Deterministic blocked SGD over fixed user blocks (see train_sweep.h and
// the RSVD trainer, which shares the pattern): user factors update in
// place, item factors update block-local copies that merge as deltas in
// ascending block order, and each (epoch, block) draws an independent
// shuffle stream — so the fit is bit-identical across thread counts and
// residency budgets.
Status CofiRecommender::Fit(const RatingDataset& train, ThreadPool* pool) {
  if (config_.num_factors <= 0) {
    return Status::InvalidArgument("num_factors must be positive");
  }
  num_users_ = train.num_users();
  train_fingerprint_ = train.Fingerprint();
  num_items_ = train.num_items();
  const size_t g = static_cast<size_t>(config_.num_factors);
  const int32_t ublock =
      config_.user_block > 0 ? config_.user_block : kTrainUserBlock;

  // Per-user min-max normalization: the regression target is the user's
  // relative preference, not the absolute rating value. Each block writes
  // only its own users' slots, so the sweep needs no merge step.
  std::vector<float> lo(static_cast<size_t>(num_users_), 0.0f);
  std::vector<float> range(static_cast<size_t>(num_users_), 1.0f);
  GANC_RETURN_NOT_OK(SweepUserBlocks(
      train, ublock, pool,
      [&](const UserBlock& b) -> Status {
        for (UserId u = b.begin; u < b.end; ++u) {
          const auto& row = train.ItemsOf(u);
          if (row.empty()) continue;
          float mn = row[0].value, mx = row[0].value;
          for (const ItemRating& ir : row) {
            mn = std::min(mn, ir.value);
            mx = std::max(mx, ir.value);
          }
          lo[static_cast<size_t>(u)] = mn;
          range[static_cast<size_t>(u)] = std::max(mx - mn, 1e-6f);
        }
        return Status::OK();
      },
      nullptr));

  Rng rng(config_.seed);
  std::vector<double> user_factors(static_cast<size_t>(num_users_) * g);
  std::vector<double> item_factors(static_cast<size_t>(num_items_) * g);
  for (double& v : user_factors) v = rng.Uniform() * 0.1;
  for (double& v : item_factors) v = rng.Uniform() * 0.1;

  const int64_t num_blocks =
      num_users_ == 0 ? 0
                      : (static_cast<int64_t>(num_users_) + ublock - 1) /
                            ublock;
  struct BlockScratch {
    std::vector<ItemId> touched;  // distinct items of the block, ascending
    std::vector<double> q_local;  // touched.size() x g item-factor rows
  };
  std::vector<BlockScratch> scratch(static_cast<size_t>(num_blocks));
  std::vector<double> q_next;

  double lr = config_.learning_rate;
  const double lam = config_.regularization;
  for (int32_t epoch = 0; epoch < config_.num_epochs; ++epoch) {
    q_next = item_factors;  // epoch-start snapshot stays in item_factors

    const auto block_fn = [&](const UserBlock& b) -> Status {
      BlockScratch& s = scratch[static_cast<size_t>(b.index)];
      s.touched.clear();
      for (UserId u = b.begin; u < b.end; ++u) {
        for (const ItemRating& ir : train.ItemsOf(u)) {
          s.touched.push_back(ir.item);
        }
      }
      std::sort(s.touched.begin(), s.touched.end());
      s.touched.erase(std::unique(s.touched.begin(), s.touched.end()),
                      s.touched.end());
      s.q_local.resize(s.touched.size() * g);
      for (size_t t = 0; t < s.touched.size(); ++t) {
        const double* src =
            &item_factors[static_cast<size_t>(s.touched[t]) * g];
        std::copy(src, src + g, &s.q_local[t * g]);
      }

      std::vector<std::pair<UserId, int32_t>> order;
      for (UserId u = b.begin; u < b.end; ++u) {
        const int32_t n = static_cast<int32_t>(train.ItemsOf(u).size());
        for (int32_t k = 0; k < n; ++k) order.emplace_back(u, k);
      }
      Rng brng(MixSeed(config_.seed, static_cast<uint64_t>(epoch),
                       static_cast<uint64_t>(b.index)));
      brng.Shuffle(&order);

      for (const auto& [u, k] : order) {
        const ItemRating& ir = train.ItemsOf(u)[static_cast<size_t>(k)];
        const double target =
            (static_cast<double>(ir.value) - lo[static_cast<size_t>(u)]) /
            range[static_cast<size_t>(u)];
        const size_t t = static_cast<size_t>(
            std::lower_bound(s.touched.begin(), s.touched.end(), ir.item) -
            s.touched.begin());
        double* pu = &user_factors[static_cast<size_t>(u) * g];
        double* qi = &s.q_local[t * g];
        double pred = 0.0;
        for (size_t f = 0; f < g; ++f) pred += pu[f] * qi[f];
        const double err = target - pred;
        for (size_t f = 0; f < g; ++f) {
          const double puf = pu[f];
          pu[f] += lr * (err * qi[f] - lam * puf);
          qi[f] += lr * (err * puf - lam * qi[f]);
        }
      }
      return Status::OK();
    };

    const auto merge_fn = [&](const UserBlock& b) -> Status {
      BlockScratch& s = scratch[static_cast<size_t>(b.index)];
      for (size_t t = 0; t < s.touched.size(); ++t) {
        const size_t i = static_cast<size_t>(s.touched[t]);
        double* dst = &q_next[i * g];
        const double* loc = &s.q_local[t * g];
        const double* snap = &item_factors[i * g];
        for (size_t f = 0; f < g; ++f) dst[f] += loc[f] - snap[f];
      }
      s = BlockScratch{};
      return Status::OK();
    };

    GANC_RETURN_NOT_OK(
        SweepUserBlocks(train, ublock, pool, block_fn, merge_fn));
    item_factors.swap(q_next);
    lr *= config_.lr_decay;
    if (epoch_callback_) epoch_callback_(epoch + 1, config_.num_epochs);
  }
  factors_.AdoptFp64(std::move(user_factors), std::move(item_factors),
                     static_cast<size_t>(num_users_),
                     static_cast<size_t>(num_items_), g);
  return Status::OK();
}

FactorView CofiRecommender::View() const {
  FactorView v;
  factors_.BindView(&v);
  v.num_items = num_items_;
  return v;
}

void CofiRecommender::ScoreInto(UserId u, std::span<double> out) const {
  FactorScoringEngine(View()).ScoreInto(u, out);
}

void CofiRecommender::ScoreBatchInto(std::span<const UserId> users,
                                     std::span<double> out) const {
  FactorScoringEngine(View()).ScoreBatchInto(users, out);
}

Status CofiRecommender::Save(std::ostream& os) const {
  if (num_items() == 0) {
    return Status::FailedPrecondition("cannot save unfitted CofiR model");
  }
  ArtifactWriter w(os);
  GANC_RETURN_NOT_OK(w.WriteHeader(ArtifactKind::kModel,
                                   static_cast<uint32_t>(ModelType::kCofi)));
  PayloadWriter config;
  config.WriteI32(config_.num_factors);
  config.WriteF64(config_.learning_rate);
  config.WriteF64(config_.regularization);
  config.WriteI32(config_.num_epochs);
  config.WriteF64(config_.lr_decay);
  config.WriteU64(config_.seed);
  GANC_RETURN_NOT_OK(w.WriteSection(kModelConfigSection, config));
  PayloadWriter state;
  state.WriteI32(num_users_);
  state.WriteI32(num_items_);
  state.WriteU64(train_fingerprint_);
  GANC_RETURN_NOT_OK(w.WriteSection(kModelStateSection, state));
  PayloadWriter factors;
  factors_.Save(&factors);
  GANC_RETURN_NOT_OK(w.WriteSection(kFactorTableSection, factors));
  return w.Finish();
}

Status CofiRecommender::Load(ArtifactReader& r, const RatingDataset* train) {
  GANC_RETURN_NOT_OK(ReadModelHeader(r, ModelType::kCofi));
  Result<ArtifactReader::Section> config = r.ReadSectionExpect(
      kModelConfigSection);
  if (!config.ok()) return config.status();
  PayloadReader cr(config->payload());
  CofiConfig cfg;
  GANC_RETURN_NOT_OK(cr.ReadI32(&cfg.num_factors));
  GANC_RETURN_NOT_OK(cr.ReadF64(&cfg.learning_rate));
  GANC_RETURN_NOT_OK(cr.ReadF64(&cfg.regularization));
  GANC_RETURN_NOT_OK(cr.ReadI32(&cfg.num_epochs));
  GANC_RETURN_NOT_OK(cr.ReadF64(&cfg.lr_decay));
  GANC_RETURN_NOT_OK(cr.ReadU64(&cfg.seed));
  GANC_RETURN_NOT_OK(cr.ExpectEnd());
  if (cfg.num_factors <= 0) {
    return Status::InvalidArgument("invalid CofiR factor count in artifact");
  }
  Result<ArtifactReader::Section> state = r.ReadSectionExpect(
      kModelStateSection);
  if (!state.ok()) return state.status();
  PayloadReader sr(state->payload());
  int32_t num_users = 0;
  int32_t num_items = 0;
  uint64_t fingerprint = 0;
  GANC_RETURN_NOT_OK(sr.ReadI32(&num_users));
  GANC_RETURN_NOT_OK(sr.ReadI32(&num_items));
  GANC_RETURN_NOT_OK(sr.ReadU64(&fingerprint));
  GANC_RETURN_NOT_OK(sr.ExpectEnd());
  Result<ArtifactReader::Section> factors = r.ReadSectionExpect(
      kFactorTableSection);
  if (!factors.ok()) return factors.status();
  FactorStore store;
  GANC_RETURN_NOT_OK(store.LoadFromSection(r, *factors));
  const size_t g = static_cast<size_t>(cfg.num_factors);
  if (num_users < 0 || num_items < 0 || store.num_factors() != g ||
      store.user_rows() != static_cast<size_t>(num_users) ||
      store.item_rows() != static_cast<size_t>(num_items)) {
    return Status::InvalidArgument("inconsistent CofiR factor dimensions");
  }
  if (train != nullptr) {
    if (num_users != train->num_users() || num_items != train->num_items()) {
      return Status::InvalidArgument(
          "CofiR artifact dimensions do not match the provided dataset");
    }
    if (fingerprint != train->Fingerprint()) {
      return Status::InvalidArgument(
          "CofiR artifact was trained on different data than the provided "
          "dataset (fingerprint mismatch)");
    }
  }
  GANC_RETURN_NOT_OK(ExpectEndOfArtifact(r));
  config_ = cfg;
  num_users_ = num_users;
  num_items_ = num_items;
  train_fingerprint_ = fingerprint;
  factors_ = std::move(store);
  return Status::OK();
}

}  // namespace ganc
