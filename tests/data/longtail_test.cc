#include "data/longtail.h"

#include <gtest/gtest.h>

#include "data/synthetic.h"

namespace ganc {
namespace {

// 4 items with popularity 8, 1, 1, 0: total 10 ratings, head mass 0.8
// covered exactly by item 0, so items 1..3 are long-tail.
RatingDataset SkewedDataset() {
  RatingDatasetBuilder b(10, 4);
  for (UserId u = 0; u < 8; ++u) EXPECT_TRUE(b.Add(u, 0, 4.0f).ok());
  EXPECT_TRUE(b.Add(8, 1, 4.0f).ok());
  EXPECT_TRUE(b.Add(9, 2, 4.0f).ok());
  auto ds = std::move(b).Build();
  EXPECT_TRUE(ds.ok());
  return std::move(ds).value();
}

TEST(ComputeLongTailTest, ParetoCutoff) {
  const LongTailInfo info = ComputeLongTail(SkewedDataset());
  EXPECT_FALSE(info.Contains(0));  // head
  EXPECT_TRUE(info.Contains(1));
  EXPECT_TRUE(info.Contains(2));
  EXPECT_TRUE(info.Contains(3));  // unrated items are always tail
}

TEST(ComputeLongTailTest, TailPercentOverRatedItems) {
  const LongTailInfo info = ComputeLongTail(SkewedDataset());
  EXPECT_EQ(info.num_rated_items, 3);
  EXPECT_EQ(info.tail_size, 2);  // items 1 and 2 (3 is unrated)
  EXPECT_NEAR(info.tail_percent, 100.0 * 2.0 / 3.0, 1e-9);
}

TEST(ComputeLongTailTest, HeadMassParameter) {
  // With head_mass = 0.0 every rated item is tail... head loop takes none.
  const LongTailInfo all_tail = ComputeLongTail(SkewedDataset(), 0.0);
  EXPECT_TRUE(all_tail.Contains(0));
  // With head_mass = 1.0 every rated item is head.
  const LongTailInfo none_tail = ComputeLongTail(SkewedDataset(), 1.0);
  EXPECT_FALSE(none_tail.Contains(0));
  EXPECT_FALSE(none_tail.Contains(1));
  EXPECT_FALSE(none_tail.Contains(2));
  EXPECT_TRUE(none_tail.Contains(3));  // still unrated
}

TEST(ComputeLongTailTest, EmptyDataset) {
  RatingDatasetBuilder b(2, 3);
  auto ds = std::move(b).Build();
  ASSERT_TRUE(ds.ok());
  const LongTailInfo info = ComputeLongTail(*ds);
  EXPECT_EQ(info.num_rated_items, 0);
  EXPECT_DOUBLE_EQ(info.tail_percent, 0.0);
  EXPECT_TRUE(info.Contains(0));
}

TEST(ComputeLongTailTest, UniformPopularityMostlyHead) {
  // 10 items, each popularity 2: head takes items until 80% of mass.
  RatingDatasetBuilder b(2, 10);
  for (UserId u = 0; u < 2; ++u) {
    for (ItemId i = 0; i < 10; ++i) EXPECT_TRUE(b.Add(u, i, 3.0f).ok());
  }
  auto ds = std::move(b).Build();
  ASSERT_TRUE(ds.ok());
  const LongTailInfo info = ComputeLongTail(*ds);
  EXPECT_EQ(info.tail_size, 2);  // exactly the last 20% of mass
}

TEST(ComputeLongTailTest, SyntheticTailShareIsLarge) {
  // Popularity-biased synthetic data should put most items in the tail,
  // like the paper's 67-88% range (Table II).
  auto spec = TinySpec();
  spec.num_users = 150;
  spec.num_items = 400;
  spec.mean_activity = 15.0;
  spec.zipf_exponent = 1.0;
  auto ds = GenerateSynthetic(spec);
  ASSERT_TRUE(ds.ok());
  const LongTailInfo info = ComputeLongTail(*ds);
  EXPECT_GT(info.tail_percent, 50.0);
}

TEST(SummarizeTest, TableIIRow) {
  const RatingDataset ds = SkewedDataset();
  const DatasetSummary s = Summarize("skew", ds);
  EXPECT_EQ(s.name, "skew");
  EXPECT_EQ(s.num_ratings, 10);
  EXPECT_EQ(s.num_users, 10);
  EXPECT_EQ(s.num_items, 4);
  EXPECT_NEAR(s.density_percent, 100.0 * 10.0 / 40.0, 1e-9);
  EXPECT_NEAR(s.mean_rating, 4.0, 1e-6);
  EXPECT_NEAR(s.infrequent_user_percent, 100.0, 1e-9);  // all rated < 10
}

TEST(SummarizeTest, UsesTrainForTailWhenGiven) {
  const RatingDataset ds = SkewedDataset();
  RatingDatasetBuilder b(10, 4);
  ASSERT_TRUE(b.Add(0, 3, 4.0f).ok());  // train where only item 3 is rated
  auto train = std::move(b).Build();
  ASSERT_TRUE(train.ok());
  const DatasetSummary s = Summarize("skew", ds, &train.value());
  // In that train, item 3 is the whole head -> 0% tail of rated items.
  EXPECT_DOUBLE_EQ(s.longtail_percent, 0.0);
}

}  // namespace
}  // namespace ganc
