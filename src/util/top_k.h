// Top-k selection over scored items.
//
// Every recommender in this library ultimately reduces to "return the k
// highest-scored candidate items"; this header centralizes that kernel so
// tie-breaking is consistent everywhere (higher score first, then lower
// item id for determinism).

#ifndef GANC_UTIL_TOP_K_H_
#define GANC_UTIL_TOP_K_H_

#include <algorithm>
#include <cstdint>
#include <queue>
#include <span>
#include <vector>

namespace ganc {

/// A scored candidate.
struct ScoredItem {
  int32_t item = 0;
  double score = 0.0;
};

/// Ordering: higher score first; ties broken by smaller item id.
inline bool ScoredBetter(const ScoredItem& a, const ScoredItem& b) {
  if (a.score != b.score) return a.score > b.score;
  return a.item < b.item;
}

/// Returns the k best entries of `candidates` in best-first order.
/// O(n log k) heap selection; stable deterministic tie-breaking.
inline std::vector<ScoredItem> SelectTopK(
    const std::vector<ScoredItem>& candidates, size_t k) {
  if (k == 0) return {};
  auto worse = [](const ScoredItem& a, const ScoredItem& b) {
    return ScoredBetter(a, b);  // min-heap on "better": top() is worst kept
  };
  std::priority_queue<ScoredItem, std::vector<ScoredItem>, decltype(worse)>
      heap(worse);
  for (const ScoredItem& c : candidates) {
    if (heap.size() < k) {
      heap.push(c);
    } else if (ScoredBetter(c, heap.top())) {
      heap.pop();
      heap.push(c);
    }
  }
  std::vector<ScoredItem> out(heap.size());
  for (size_t i = heap.size(); i-- > 0;) {
    out[i] = heap.top();
    heap.pop();
  }
  return out;
}

/// Allocation-free top-k over candidate item ids scored on the fly.
/// `score_of(item)` maps an item id to its score; `*out` receives the k
/// best entries in best-first order, reusing its capacity across calls.
/// Tie-breaking is identical to SelectTopK (the ordering is total, so the
/// result is unique). O(n log k), no heap allocation once warm.
template <typename ScoreFn>
void SelectTopKByInto(std::span<const int32_t> candidates, size_t k,
                      ScoreFn&& score_of, std::vector<ScoredItem>* out) {
  out->clear();
  if (k == 0) return;
  // Max-heap wrt ScoredBetter-as-less: the front is the worst kept entry.
  const auto worse_on_top = [](const ScoredItem& a, const ScoredItem& b) {
    return ScoredBetter(a, b);
  };
  for (int32_t item : candidates) {
    const ScoredItem c{item, score_of(item)};
    if (out->size() < k) {
      out->push_back(c);
      std::push_heap(out->begin(), out->end(), worse_on_top);
    } else if (ScoredBetter(c, out->front())) {
      std::pop_heap(out->begin(), out->end(), worse_on_top);
      out->back() = c;
      std::push_heap(out->begin(), out->end(), worse_on_top);
    }
  }
  std::sort_heap(out->begin(), out->end(), worse_on_top);  // best-first
}

/// Allocation-free top-k over a dense score span restricted to
/// `candidates` item ids.
inline void SelectTopKFromScoresInto(std::span<const double> scores,
                                     std::span<const int32_t> candidates,
                                     size_t k, std::vector<ScoredItem>* out) {
  SelectTopKByInto(
      candidates, k,
      [scores](int32_t item) { return scores[static_cast<size_t>(item)]; },
      out);
}

/// Top-k over a dense score vector restricted to `candidates` item ids.
inline std::vector<ScoredItem> SelectTopKFromScores(
    const std::vector<double>& scores, const std::vector<int32_t>& candidates,
    size_t k) {
  std::vector<ScoredItem> out;
  SelectTopKFromScoresInto(scores, candidates, k, &out);
  return out;
}

}  // namespace ganc

#endif  // GANC_UTIL_TOP_K_H_
