// Lightweight stderr progress reporting for long-running training loops.

#ifndef GANC_UTIL_PROGRESS_H_
#define GANC_UTIL_PROGRESS_H_

#include <cstddef>
#include <string>

#include "util/timer.h"

namespace ganc {

/// Emits "label: k/total (elapsed)" lines at a throttled rate. Disabled
/// entirely when the log level is above kInfo, so tests stay quiet.
class ProgressReporter {
 public:
  ProgressReporter(std::string label, size_t total);

  /// Records completion of `done` units total; may emit a line.
  void Update(size_t done);

  /// Emits the final line (idempotent).
  void Finish();

 private:
  std::string label_;
  size_t total_;
  WallTimer timer_;
  double last_emit_seconds_ = -1.0;
  bool finished_ = false;
};

}  // namespace ganc

#endif  // GANC_UTIL_PROGRESS_H_
