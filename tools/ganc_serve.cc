// ganc_serve: the online serving frontend.
//
// Loads a trained artifact once and answers TOPN requests over the
// newline-delimited protocol (src/serve/protocol.h, grammar in
// docs/SERVING.md) on stdin/stdout and, with --port, on a POSIX TCP
// socket (one thread per connection; all connections share the service,
// its micro-batcher, result cache, and session registry). Dependency
// free: nothing beyond the C++ standard library and POSIX sockets.
//
//   ganc_cli cache-dataset --dataset=tiny --out=tiny.gdc
//   ganc_cli train --dataset-cache=tiny.gdc --arec=psvd10 --seed=7 \
//            --save-model=psvd10.gam
//   ganc_serve --dataset-cache=tiny.gdc --seed=7 --model=psvd10.gam \
//              --default-n=5 [--port=0] [--store=head.gts]
//
// The process serves stdin until EOF or a QUIT line, then dumps the
// request/hit-rate/latency counters to stderr. `--port=0` binds an
// ephemeral port; the assigned port is announced on stdout as
// "LISTENING port=<p>" before request processing starts (the subprocess
// tests key on this). `--daemon` detaches the lifetime from stdin for
// TCP-only deployments (systemd/containers close stdin at launch):
// the listener serves until SIGINT/SIGTERM, which also shut down
// cleanly with the stats dump.

#include <arpa/inet.h>
#include <csignal>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <ctime>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "data/dataset.h"
#include "data/loader.h"
#include "data/split.h"
#include "serve/protocol.h"
#include "serve/recommendation_service.h"
#include "serve/session_overlay.h"
#include "serve/topn_store.h"
#include "util/flags.h"
#include "util/timer.h"

using namespace ganc;

namespace {

void Usage() {
  std::fprintf(
      stderr,
      "usage: ganc_serve --model=PATH|--pipeline=PATH [flags]\n"
      "\n"
      "snapshot (same data flags as ganc_cli, split must match training):\n"
      "    --dataset-cache=PATH | --ratings-file=PATH | --dataset=NAME\n"
      "    [--kappa=0.5] [--seed=42]\n"
      "    --model=PATH | --pipeline=PATH   (artifact to serve)\n"
      "    [--store=PATH]     (precomputed top-N store artifact)\n"
      "    [--factor-precision=fp64|fp32|int8]  (compact the snapshot's\n"
      "                        factor tables after load; fp64 = keep the\n"
      "                        artifact's own precision)\n"
      "    [--mmap=true]      (open v3 dataset-cache/model/store\n"
      "                        artifacts as zero-copy file mappings;\n"
      "                        --mmap=false forces eager stream loads.\n"
      "                        Mapped serving wants --kappa=1, which\n"
      "                        skips the materializing split rebuild)\n"
      "\n"
      "serving:\n"
      "    [--default-n=10]   (list length when a request omits n=)\n"
      "    [--workers=1] [--batch-wait-us=200] [--cache-capacity=4096]\n"
      "    [--unbatched]      (one-request-at-a-time baseline path)\n"
      "    [--port=N]         (also serve TCP; 0 = ephemeral, the chosen\n"
      "                        port is announced as LISTENING port=N)\n"
      "    [--daemon]         (with --port: stdin EOF does not stop the\n"
      "                        server; run until SIGINT/SIGTERM)\n"
      "\n"
      "protocol (one request per line; see docs/SERVING.md):\n"
      "    TOPN user=3 [n=10] [session=abc] [exclude=1,2]\n"
      "    CONSUME session=abc user=3 items=4,5\n"
      "    STATS | PING | QUIT\n");
}

// Shared per-process serving state: one snapshot, one session registry.
struct Server {
  std::unique_ptr<RecommendationService> service;
  SessionRegistry sessions;
};

// SIGINT/SIGTERM request a clean shutdown (stats still dumped) — the
// stop path for TCP-only deployments whose stdin is closed at launch.
volatile std::sig_atomic_t g_stop_requested = 0;

void HandleStopSignal(int /*sig*/) { g_stop_requested = 1; }

// Handles one request line; returns the response line (no newline).
// Sets *quit for QUIT.
std::string HandleLine(Server& server, const std::string& line, bool* quit) {
  Result<ServeRequest> parsed = ParseServeRequest(line);
  if (!parsed.ok()) return FormatError(parsed.status().message());
  ServeRequest& req = *parsed;
  switch (req.command) {
    case ServeCommand::kTopN: {
      std::vector<ItemId> exclusions;
      std::span<const ItemId> excl = req.items;
      if (!req.session.empty()) {
        server.sessions.CollectExclusions(req.session, req.user, req.items,
                                          &exclusions);
        excl = exclusions;
      }
      std::vector<ItemId> items;
      if (Status s = server.service->TopNInto(req.user, req.n, excl, &items);
          !s.ok()) {
        return FormatError(s.message());
      }
      const int n = req.n == 0 ? server.service->default_n() : req.n;
      return FormatTopNResponse(req.user, n, items);
    }
    case ServeCommand::kConsume: {
      for (const ItemId i : req.items) {
        if (i < 0 || i >= server.service->num_items()) {
          return FormatError("consumed item id out of range");
        }
      }
      if (req.user < 0 || req.user >= server.service->num_users()) {
        return FormatError("user id out of range");
      }
      server.sessions.MarkConsumed(req.session, req.user, req.items);
      return FormatOk("consumed=" + std::to_string(req.items.size()));
    }
    case ServeCommand::kStats: {
      const ServeStats s = server.service->stats();
      char buf[256];
      std::snprintf(buf, sizeof(buf),
                    "requests=%llu cache_hits=%llu store_hits=%llu "
                    "live=%llu batches=%llu mean_fill=%.2f",
                    static_cast<unsigned long long>(s.requests),
                    static_cast<unsigned long long>(s.cache_hits),
                    static_cast<unsigned long long>(s.store_hits),
                    static_cast<unsigned long long>(s.live_scored),
                    static_cast<unsigned long long>(s.batches),
                    s.MeanBatchFill());
      return FormatOk(buf);
    }
    case ServeCommand::kPing:
      return FormatOk("pong");
    case ServeCommand::kQuit:
      *quit = true;
      return FormatOk("bye");
  }
  return FormatError("unreachable");
}

// Writes the whole buffer, riding out short writes.
bool WriteAll(int fd, const char* data, size_t size) {
  while (size > 0) {
    const ssize_t n = write(fd, data, size);
    if (n <= 0) return false;
    data += n;
    size -= static_cast<size_t>(n);
  }
  return true;
}

// One live TCP connection. `mu` serializes the socket's close against
// the shutdown path: the serving thread fcloses under it, StopListener
// shutdown()s under it, so a shutdown can never hit a recycled fd and
// an idle client can never block server exit.
struct Connection {
  std::mutex mu;
  int fd = -1;
  bool closed = false;
  std::thread thread;
};

// Serves one TCP connection until EOF/QUIT. Reads are buffered through
// a FILE*, responses go out with raw write() — one stdio stream must
// not interleave reads and writes on a socket.
void ServeConnection(Server& server, Connection& conn) {
  FILE* in = fdopen(conn.fd, "r");
  if (in == nullptr) {
    std::lock_guard<std::mutex> lock(conn.mu);
    close(conn.fd);
    conn.closed = true;
    return;
  }
  char* line = nullptr;
  size_t cap = 0;
  ssize_t len;
  bool quit = false;
  while (!quit && (len = getline(&line, &cap, in)) != -1) {
    while (len > 0 && (line[len - 1] == '\n' || line[len - 1] == '\r')) {
      line[--len] = '\0';
    }
    std::string response =
        HandleLine(server, std::string(line, static_cast<size_t>(len)), &quit);
    response.push_back('\n');
    if (!WriteAll(conn.fd, response.data(), response.size())) break;
  }
  free(line);
  std::lock_guard<std::mutex> lock(conn.mu);
  fclose(in);  // closes conn.fd
  conn.closed = true;
}

// TCP listener state shared with the accept thread.
struct Listener {
  int fd = -1;
  std::thread accept_thread;
  std::mutex mu;
  std::vector<std::unique_ptr<Connection>> connections;
  std::atomic<bool> stopping{false};
};

// Binds 127.0.0.1:port (0 = ephemeral); returns the bound port or an
// error.
Result<int> StartListener(Listener& listener, Server& server, int port) {
  listener.fd = socket(AF_INET, SOCK_STREAM, 0);
  if (listener.fd < 0) return Status::IOError("socket() failed");
  const int one = 1;
  setsockopt(listener.fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (bind(listener.fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    return Status::IOError("bind() failed: " + std::string(strerror(errno)));
  }
  if (listen(listener.fd, 16) < 0) {
    return Status::IOError("listen() failed");
  }
  socklen_t addr_len = sizeof(addr);
  if (getsockname(listener.fd, reinterpret_cast<sockaddr*>(&addr),
                  &addr_len) < 0) {
    return Status::IOError("getsockname() failed");
  }
  const int bound = ntohs(addr.sin_port);
  listener.accept_thread = std::thread([&listener, &server] {
    for (;;) {
      const int fd = accept(listener.fd, nullptr, nullptr);
      if (fd < 0) return;  // listener closed during shutdown
      if (listener.stopping.load()) {
        close(fd);
        return;
      }
      std::lock_guard<std::mutex> lock(listener.mu);
      // Reap finished connections so a long-running server holds
      // resources proportional to *concurrent* clients, not total ones.
      std::erase_if(listener.connections,
                    [](const std::unique_ptr<Connection>& c) {
                      std::lock_guard<std::mutex> conn_lock(c->mu);
                      if (!c->closed) return false;
                      c->thread.join();
                      return true;
                    });
      auto conn = std::make_unique<Connection>();
      conn->fd = fd;
      Connection& ref = *conn;
      ref.thread =
          std::thread([&server, &ref] { ServeConnection(server, ref); });
      listener.connections.push_back(std::move(conn));
    }
  });
  return bound;
}

void StopListener(Listener& listener) {
  if (listener.fd < 0) return;
  listener.stopping.store(true);
  shutdown(listener.fd, SHUT_RDWR);
  close(listener.fd);
  if (listener.accept_thread.joinable()) listener.accept_thread.join();
  std::lock_guard<std::mutex> lock(listener.mu);
  for (const std::unique_ptr<Connection>& conn : listener.connections) {
    // Unblock serving threads stuck in getline() on idle clients; the
    // per-connection mutex guarantees the fd has not been recycled.
    std::lock_guard<std::mutex> conn_lock(conn->mu);
    if (!conn->closed) shutdown(conn->fd, SHUT_RDWR);
  }
  for (const std::unique_ptr<Connection>& conn : listener.connections) {
    if (conn->thread.joinable()) conn->thread.join();
  }
}

void DumpStats(const Server& server, double uptime_ms) {
  const ServeStats s = server.service->stats();
  std::fprintf(stderr,
               "--- ganc_serve shutdown ---\n"
               "source:       %s (snapshot v%llu)\n"
               "precision:    %s factor tables\n"
               "uptime:       %.1f ms\n"
               "requests:     %llu\n"
               "cache hits:   %llu (%.1f%%)\n"
               "store hits:   %llu\n"
               "live scored:  %llu in %llu batches (mean fill %.2f, "
               "%llu full, %llu timer flushes)\n"
               "latency:      mean %.1f us, max %llu us\n"
               "sessions:     %zu\n",
               server.service->source().c_str(),
               static_cast<unsigned long long>(
                   server.service->snapshot_version()),
               FactorPrecisionName(server.service->factor_precision()),
               uptime_ms, static_cast<unsigned long long>(s.requests),
               static_cast<unsigned long long>(s.cache_hits),
               100.0 * s.CacheHitRate(),
               static_cast<unsigned long long>(s.store_hits),
               static_cast<unsigned long long>(s.live_scored),
               static_cast<unsigned long long>(s.batches), s.MeanBatchFill(),
               static_cast<unsigned long long>(s.full_batches),
               static_cast<unsigned long long>(s.waited_flushes),
               s.MeanLatencyUs(),
               static_cast<unsigned long long>(s.latency_us_max),
               server.sessions.num_sessions());
}

int Run(const Flags& flags) {
  const std::string model_path = flags.GetString("model", "");
  const std::string pipeline_path = flags.GetString("pipeline", "");
  if ((model_path.empty() == pipeline_path.empty())) {
    std::fprintf(stderr,
                 "exactly one of --model / --pipeline is required\n");
    Usage();
    return 2;
  }
  auto kappa = flags.GetDouble("kappa", 0.5);
  auto seed = flags.GetInt("seed", 42);
  auto port_flag = flags.GetInt("port", -1);
  auto workers = flags.GetInt("workers", 1);
  auto batch_wait = flags.GetInt("batch-wait-us", 200);
  auto cache_capacity = flags.GetInt("cache-capacity", 4096);
  auto default_n = flags.GetInt("default-n", 10);
  if (!kappa.ok() || !seed.ok() || !port_flag.ok() || !workers.ok() ||
      !batch_wait.ok() || !cache_capacity.ok() || !default_n.ok() ||
      *cache_capacity < 0 || *port_flag > 65535) {
    std::fprintf(stderr, "bad numeric flag\n");
    return 2;
  }

  // The shared resolver guarantees the serving process binds the same
  // data the training run did for the same flags.
  Result<RatingDataset> dataset = LoadDatasetFromFlags(flags);
  if (!dataset.ok()) {
    std::fprintf(stderr, "load: %s\n", dataset.status().ToString().c_str());
    return 1;
  }
  // kappa = 1 means "train on everything": serve the loaded dataset
  // directly instead of rebuilding it through the splitter. Besides
  // skipping an O(nnz) copy, this is the path that keeps a mapped
  // --dataset-cache zero-copy — a split rebuild would materialize the
  // whole thing eagerly.
  RatingDataset train;
  if (*kappa == 1.0) {
    train = std::move(*dataset);
  } else {
    Result<TrainTestSplit> split = PerUserRatioSplit(
        *dataset,
        {.train_ratio = *kappa, .seed = static_cast<uint64_t>(*seed)});
    if (!split.ok()) {
      std::fprintf(stderr, "split: %s\n", split.status().ToString().c_str());
      return 1;
    }
    train = std::move(split->train);
  }

  ServiceConfig config;
  config.num_workers = static_cast<int>(*workers);
  config.max_batch_wait_us = static_cast<int>(*batch_wait);
  config.cache_capacity = static_cast<size_t>(*cache_capacity);
  config.micro_batching = !flags.GetBool("unbatched", false);
  config.default_n = static_cast<int>(*default_n);
  Result<FactorPrecision> precision = ParseFactorPrecision(
      flags.GetString("factor-precision", "fp64"));
  if (!precision.ok()) {
    std::fprintf(stderr, "%s\n", precision.status().ToString().c_str());
    return 2;
  }
  config.factor_precision = *precision;
  config.mmap_artifacts = flags.GetBool("mmap", true);

  WallTimer up_timer;
  Result<std::unique_ptr<RecommendationService>> service =
      model_path.empty()
          ? RecommendationService::LoadPipelineService(pipeline_path, train,
                                                       config)
          : RecommendationService::LoadModelService(model_path, train, config);
  if (!service.ok()) {
    std::fprintf(stderr, "snapshot: %s\n",
                 service.status().ToString().c_str());
    return 1;
  }
  Server server;
  server.service = std::move(service).value();

  const std::string store_path = flags.GetString("store", "");
  if (!store_path.empty()) {
    Result<TopNStore> store =
        TopNStore::LoadFileAuto(store_path, config.mmap_artifacts);
    if (!store.ok()) {
      std::fprintf(stderr, "store: %s\n", store.status().ToString().c_str());
      return 1;
    }
    if (Status s = server.service->AttachStore(
            std::make_shared<const TopNStore>(std::move(store).value()));
        !s.ok()) {
      std::fprintf(stderr, "store: %s\n", s.ToString().c_str());
      return 1;
    }
  }
  std::fprintf(stderr,
               "serving %s (%s, %s factors, snapshot v%llu) in %.1f ms; "
               "%d users, %d items\n",
               server.service->source().c_str(),
               server.service->micro_batching() ? "micro-batched"
                                                : "unbatched",
               FactorPrecisionName(server.service->factor_precision()),
               static_cast<unsigned long long>(
                   server.service->snapshot_version()),
               up_timer.ElapsedMillis(), server.service->num_users(),
               server.service->num_items());

  const bool daemon = flags.GetBool("daemon", false);
  if (daemon && *port_flag < 0) {
    std::fprintf(stderr, "--daemon requires --port\n");
    return 2;
  }
  Listener listener;
  if (*port_flag >= 0) {
    Result<int> bound = StartListener(listener, server,
                                      static_cast<int>(*port_flag));
    if (!bound.ok()) {
      std::fprintf(stderr, "listen: %s\n", bound.status().ToString().c_str());
      return 1;
    }
    std::printf("LISTENING port=%d\n", *bound);
    std::fflush(stdout);
  }

  std::signal(SIGINT, HandleStopSignal);
  std::signal(SIGTERM, HandleStopSignal);

  // stdin loop on the main thread.
  char* line = nullptr;
  size_t cap = 0;
  ssize_t len;
  bool quit = false;
  while (!quit && (len = getline(&line, &cap, stdin)) != -1) {
    while (len > 0 && (line[len - 1] == '\n' || line[len - 1] == '\r')) {
      line[--len] = '\0';
    }
    const std::string response =
        HandleLine(server, std::string(line, static_cast<size_t>(len)), &quit);
    std::printf("%s\n", response.c_str());
    std::fflush(stdout);
  }
  free(line);

  // Daemon mode (--daemon): stdin EOF does not stop the TCP listener —
  // the launch environment may close stdin outright (systemd,
  // containers) — serving continues until SIGINT/SIGTERM. A stdin QUIT
  // still shuts down immediately, and without --daemon EOF keeps its
  // pipe-friendly meaning: drain requests, shut down.
  if (!quit && daemon && listener.fd >= 0) {
    timespec tick{0, 100 * 1000 * 1000};  // 100 ms
    while (g_stop_requested == 0) nanosleep(&tick, nullptr);
  }

  StopListener(listener);
  DumpStats(server, up_timer.ElapsedMillis());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<std::string> known = {
      "dataset",        "ratings-file", "delimiter",   "skip-header",
      "dataset-cache",  "kappa",        "seed",        "model",
      "pipeline",       "store",        "port",        "workers",
      "batch-wait-us",  "cache-capacity", "default-n", "unbatched",
      "factor-precision", "daemon",     "mmap",        "help"};
  Result<Flags> flags = Flags::Parse(argc, argv, known);
  if (!flags.ok()) {
    std::fprintf(stderr, "%s\n", flags.status().ToString().c_str());
    Usage();
    return 2;
  }
  if (flags->GetBool("help", false)) {
    Usage();
    return 0;
  }
  if (!flags->positional().empty()) {
    std::fprintf(stderr, "ganc_serve takes no positional arguments\n");
    Usage();
    return 2;
  }
  return Run(*flags);
}
