#include "data/longtail.h"

#include <algorithm>
#include <numeric>

namespace ganc {

LongTailInfo ComputeLongTail(const RatingDataset& train, double head_mass) {
  // One row-sweep popularity pass instead of per-item CSC lookups, so
  // the computation works on mapped datasets without residency. The
  // counts are exact integers either way.
  return ComputeLongTailFromCounts(train.PopularityVector(),
                                   train.num_ratings(), head_mass);
}

LongTailInfo ComputeLongTailFromCounts(std::span<const double> pop,
                                       int64_t total_ratings,
                                       double head_mass) {
  const int32_t n_items = static_cast<int32_t>(pop.size());
  LongTailInfo info;
  info.is_long_tail.assign(static_cast<size_t>(n_items), true);
  const auto pop_of = [&](ItemId i) { return pop[static_cast<size_t>(i)]; };

  std::vector<ItemId> order(static_cast<size_t>(n_items));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](ItemId a, ItemId b) {
    const double pa = pop_of(a);
    const double pb = pop_of(b);
    if (pa != pb) return pa > pb;  // decreasing popularity
    return a < b;
  });

  const double total = static_cast<double>(total_ratings);
  double cum = 0.0;
  int64_t head_count = 0;
  for (ItemId i : order) {
    if (total > 0.0 && cum >= head_mass * total) break;
    if (pop_of(i) == 0.0) break;  // unrated items are always tail
    info.is_long_tail[static_cast<size_t>(i)] = false;
    cum += pop_of(i);
    ++head_count;
  }

  int32_t rated = 0;
  int32_t tail_rated = 0;
  for (ItemId i = 0; i < n_items; ++i) {
    if (pop_of(i) > 0) {
      ++rated;
      if (info.is_long_tail[static_cast<size_t>(i)]) ++tail_rated;
    }
  }
  info.num_rated_items = rated;
  // |L| counts long-tail items within the rated catalog I^R, matching the
  // paper's L% = |L| / |I^R|.
  info.tail_size = tail_rated;
  info.tail_percent =
      rated > 0 ? 100.0 * static_cast<double>(tail_rated) /
                      static_cast<double>(rated)
                : 0.0;
  (void)head_count;
  return info;
}

DatasetSummary Summarize(const std::string& name, const RatingDataset& dataset,
                         const RatingDataset* train) {
  DatasetSummary s;
  s.name = name;
  s.num_ratings = dataset.num_ratings();
  s.num_users = dataset.num_users();
  s.num_items = dataset.num_items();
  s.density_percent = dataset.Density() * 100.0;
  const RatingDataset& tail_source = train != nullptr ? *train : dataset;
  s.longtail_percent = ComputeLongTail(tail_source).tail_percent;
  int32_t infrequent = 0;
  for (UserId u = 0; u < dataset.num_users(); ++u) {
    if (dataset.Activity(u) < 10) ++infrequent;
  }
  s.infrequent_user_percent =
      dataset.num_users() > 0
          ? 100.0 * static_cast<double>(infrequent) /
                static_cast<double>(dataset.num_users())
          : 0.0;
  s.mean_rating = dataset.GlobalMeanRating();
  return s;
}

}  // namespace ganc
