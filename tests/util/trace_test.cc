// TraceRing unit suite: deterministic sampling under a fixed seed,
// ring wraparound ordering, first-write-wins stage stamping, and the
// TRACE verb's line format.

#include "util/trace.h"

#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace ganc {
namespace {

TEST(TraceRingTest, SamplingIsDeterministicUnderAFixedSeed) {
  const TraceRing a(8, 16, 0x6a4c431d2f10ull);
  const TraceRing b(8, 16, 0x6a4c431d2f10ull);
  std::set<uint64_t> sampled_a, sampled_b;
  for (uint64_t seq = 0; seq < 4096; ++seq) {
    if (a.ShouldSample(seq)) sampled_a.insert(seq);
    if (b.ShouldSample(seq)) sampled_b.insert(seq);
    // Same ring, same answer on every ask.
    EXPECT_EQ(a.ShouldSample(seq), a.ShouldSample(seq));
  }
  EXPECT_EQ(sampled_a, sampled_b);
  // Period 16 over a splitmix-mixed hash: roughly 1/16 of requests,
  // and definitely neither none nor all.
  EXPECT_GT(sampled_a.size(), 4096u / 32);
  EXPECT_LT(sampled_a.size(), 4096u / 8);
  // A different seed samples a different set.
  const TraceRing c(8, 16, 0x1234ull);
  std::set<uint64_t> sampled_c;
  for (uint64_t seq = 0; seq < 4096; ++seq) {
    if (c.ShouldSample(seq)) sampled_c.insert(seq);
  }
  EXPECT_NE(sampled_a, sampled_c);
}

TEST(TraceRingTest, PeriodZeroNeverSamplesPeriodOneAlways) {
  const TraceRing never(4, 0, 1);
  const TraceRing always(4, 1, 1);
  for (uint64_t seq = 0; seq < 100; ++seq) {
    EXPECT_FALSE(never.ShouldSample(seq));
    EXPECT_TRUE(always.ShouldSample(seq));
  }
}

TEST(TraceRingTest, BeginReturnsNullForUnsampledRequests) {
  TraceRing ring(4, 0, 1);
  EXPECT_EQ(ring.Begin(0), nullptr);
  TraceRing all(4, 1, 1);
  std::unique_ptr<RequestTrace> trace = all.Begin(7);
  ASSERT_NE(trace, nullptr);
  EXPECT_EQ(trace->seq, 7u);
  EXPECT_GT(trace->start_ns, 0u);
}

TEST(TraceRingTest, WraparoundKeepsTheNewestCapacityTraces) {
  TraceRing ring(4, 1, 1);
  for (uint64_t seq = 0; seq < 10; ++seq) {
    std::unique_ptr<RequestTrace> trace = ring.Begin(seq);
    ASSERT_NE(trace, nullptr);
    ring.Commit(std::move(trace));
  }
  // 10 commits through a 4-slot ring: only 6..9 survive, newest first.
  const std::vector<RequestTrace> recent = ring.MostRecent(100);
  ASSERT_EQ(recent.size(), 4u);
  EXPECT_EQ(recent[0].seq, 9u);
  EXPECT_EQ(recent[1].seq, 8u);
  EXPECT_EQ(recent[2].seq, 7u);
  EXPECT_EQ(recent[3].seq, 6u);
  // A smaller ask truncates from the newest end.
  const std::vector<RequestTrace> two = ring.MostRecent(2);
  ASSERT_EQ(two.size(), 2u);
  EXPECT_EQ(two[0].seq, 9u);
  EXPECT_EQ(two[1].seq, 8u);
}

TEST(TraceRingTest, MostRecentBeforeWraparoundReturnsOnlyCommitted) {
  TraceRing ring(8, 1, 1);
  EXPECT_TRUE(ring.MostRecent(5).empty());
  ring.Commit(ring.Begin(42));
  const std::vector<RequestTrace> one = ring.MostRecent(5);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0].seq, 42u);
}

TEST(RequestTraceTest, StampIsFirstWriteWinsRelativeToStart) {
  RequestTrace trace;
  trace.start_ns = 1000;
  trace.Stamp(TraceStage::kParse, 1250);
  trace.Stamp(TraceStage::kParse, 9999);  // ignored: already stamped
  trace.Stamp(TraceStage::kScore, 2000);
  EXPECT_EQ(trace.stage_ns[static_cast<int>(TraceStage::kParse)], 250);
  EXPECT_EQ(trace.stage_ns[static_cast<int>(TraceStage::kScore)], 1000);
  EXPECT_EQ(trace.stage_ns[static_cast<int>(TraceStage::kRoute)], -1);
}

TEST(RequestTraceTest, FormatTraceLineGolden) {
  RequestTrace trace;
  trace.seq = 7;
  trace.user = 3;
  trace.shard = 1;
  trace.version = 2;
  trace.outcome = 'c';
  trace.start_ns = 0;
  trace.Stamp(TraceStage::kParse, 100);
  trace.Stamp(TraceStage::kCacheProbe, 250);
  trace.Stamp(TraceStage::kRespond, 400);
  EXPECT_EQ(FormatTraceLine(trace),
            "seq=7 user=3 shard=1 version=2 outcome=c total_ns=400 "
            "parse=100 cache_probe=250 respond=400");
  // Unset optional fields and stages are omitted entirely.
  RequestTrace bare;
  bare.seq = 11;
  EXPECT_EQ(FormatTraceLine(bare), "seq=11 outcome=?");
}

TEST(TraceRingTest, GlobalRingHasDocumentedDefaults) {
  EXPECT_EQ(TraceRing::Global().capacity(), 256u);
  EXPECT_EQ(TraceRing::Global().sample_period(), 16u);
}

}  // namespace
}  // namespace ganc
