#include "recommender/random_walk.h"

#include <gtest/gtest.h>

#include "data/split.h"
#include "data/synthetic.h"
#include "eval/metrics.h"
#include "eval/novelty_metrics.h"
#include "recommender/random_rec.h"
#include "recommender/recommender.h"

namespace ganc {
namespace {

TEST(RandomWalkTest, ThreeHopMassReachesCoRatedItems) {
  // u0 rated item 0; u1 rated items 0 and 1 -> the walk from u0 reaches
  // item 1 through u1. Item 2 is unreachable.
  RatingDatasetBuilder b(3, 3);
  ASSERT_TRUE(b.Add(0, 0, 4.0f).ok());
  ASSERT_TRUE(b.Add(1, 0, 4.0f).ok());
  ASSERT_TRUE(b.Add(1, 1, 4.0f).ok());
  ASSERT_TRUE(b.Add(2, 2, 4.0f).ok());
  auto ds = std::move(b).Build();
  ASSERT_TRUE(ds.ok());
  RandomWalkRecommender walk({.beta = 0.0});
  ASSERT_TRUE(walk.Fit(*ds).ok());
  const auto s = walk.ScoreAll(0);
  EXPECT_GT(s[1], 0.0);
  EXPECT_DOUBLE_EQ(s[2], 0.0);
}

TEST(RandomWalkTest, WalkProbabilitiesExact) {
  // From u0 (items {0}): item 0 -> raters {u0, u1} each 1/2; exclude u0.
  // u1 (items {0, 1}) forwards 1/2 * 1/2 = 1/4 to each of items 0 and 1.
  RatingDatasetBuilder b(2, 2);
  ASSERT_TRUE(b.Add(0, 0, 4.0f).ok());
  ASSERT_TRUE(b.Add(1, 0, 4.0f).ok());
  ASSERT_TRUE(b.Add(1, 1, 4.0f).ok());
  auto ds = std::move(b).Build();
  ASSERT_TRUE(ds.ok());
  RandomWalkRecommender walk({.beta = 0.0});
  ASSERT_TRUE(walk.Fit(*ds).ok());
  const auto s = walk.ScoreAll(0);
  EXPECT_NEAR(s[0], 0.25, 1e-12);
  EXPECT_NEAR(s[1], 0.25, 1e-12);
}

TEST(RandomWalkTest, BetaPromotesLongTail) {
  // Higher beta must lower the mean popularity of the recommendations.
  auto spec = TinySpec();
  spec.num_users = 200;
  spec.num_items = 250;
  spec.mean_activity = 25.0;
  auto ds = GenerateSynthetic(spec);
  ASSERT_TRUE(ds.ok());
  RandomWalkRecommender mild({.beta = 0.0});
  RandomWalkRecommender strong({.beta = 0.9});
  ASSERT_TRUE(mild.Fit(*ds).ok());
  ASSERT_TRUE(strong.Fit(*ds).ok());
  const auto mild_topn = RecommendAllUsers(mild, *ds, 5);
  const auto strong_topn = RecommendAllUsers(strong, *ds, 5);
  EXPECT_LT(MeanRecommendedPopularity(*ds, strong_topn, 5),
            MeanRecommendedPopularity(*ds, mild_topn, 5));
}

TEST(RandomWalkTest, BeatsRandomOnHeldOut) {
  auto spec = TinySpec();
  spec.num_users = 250;
  spec.num_items = 250;
  spec.mean_activity = 35.0;
  auto ds = GenerateSynthetic(spec);
  ASSERT_TRUE(ds.ok());
  auto split = PerUserRatioSplit(*ds, {.train_ratio = 0.5, .seed = 7});
  ASSERT_TRUE(split.ok());
  RandomWalkRecommender walk({.beta = 0.3});
  ASSERT_TRUE(walk.Fit(split->train).ok());
  RandomRecommender rnd(17);
  ASSERT_TRUE(rnd.Fit(split->train).ok());
  const MetricsConfig cfg{.top_n = 5};
  const auto walk_m = EvaluateTopN(
      split->train, split->test, RecommendAllUsers(walk, split->train, 5), cfg);
  const auto rnd_m = EvaluateTopN(
      split->train, split->test, RecommendAllUsers(rnd, split->train, 5), cfg);
  EXPECT_GT(walk_m.recall, 2.0 * rnd_m.recall);
}

TEST(RandomWalkTest, EmptyProfileGivesZeroScores) {
  RatingDatasetBuilder b(2, 3);
  ASSERT_TRUE(b.Add(1, 0, 4.0f).ok());
  auto ds = std::move(b).Build();
  ASSERT_TRUE(ds.ok());
  RandomWalkRecommender walk(RandomWalkConfig{});
  ASSERT_TRUE(walk.Fit(*ds).ok());
  for (double v : walk.ScoreAll(0)) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(RandomWalkTest, InvalidConfigRejected) {
  auto ds = GenerateSynthetic(TinySpec());
  ASSERT_TRUE(ds.ok());
  EXPECT_FALSE(RandomWalkRecommender({.beta = -0.1}).Fit(*ds).ok());
  EXPECT_FALSE(RandomWalkRecommender({.beta = 1.5}).Fit(*ds).ok());
  EXPECT_FALSE(
      RandomWalkRecommender({.beta = 0.5, .max_coraters = 0}).Fit(*ds).ok());
}

}  // namespace
}  // namespace ganc
