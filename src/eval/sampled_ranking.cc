#include "eval/sampled_ranking.h"

#include <algorithm>
#include <cmath>
#include <span>

#include "recommender/scoring_context.h"
#include "util/rng.h"

namespace ganc {

Result<SampledRankingReport> EvaluateSampledRanking(
    const Recommender& model, const RatingDataset& train,
    const RatingDataset& test, const SampledRankingOptions& options) {
  if (options.top_n <= 0 || options.num_negatives <= 0) {
    return Status::InvalidArgument(
        "top_n and num_negatives must be positive");
  }
  if (train.num_items() != test.num_items() ||
      train.num_users() != test.num_users()) {
    return Status::InvalidArgument("train/test universes differ");
  }
  Rng rng(options.seed);
  SampledRankingReport report;
  double hits = 0.0, ndcg = 0.0;
  ScoringContext ctx;

  // Walk test observations user-major so each user's scores are computed
  // once per contiguous block of their positives, into a reused buffer.
  for (UserId u = 0; u < test.num_users(); ++u) {
    const auto& row = test.ItemsOf(u);
    if (row.empty()) continue;
    // A user whose train+test profile spans the catalog has no negatives.
    if (train.Activity(u) + static_cast<int32_t>(row.size()) >=
        train.num_items()) {
      continue;
    }
    const std::span<double> scores =
        ctx.Scores(static_cast<size_t>(train.num_items()));
    model.ScoreInto(u, scores);
    for (const ItemRating& pos : row) {
      if (options.max_positives > 0 &&
          report.evaluated_positives >= options.max_positives) {
        break;
      }
      // Rank = number of sampled negatives scoring strictly above the
      // positive (ties resolved in the positive's favour, consistent with
      // SelectTopK's deterministic ordering by construction below).
      int rank = 0;
      for (int k = 0; k < options.num_negatives; ++k) {
        ItemId j;
        do {
          j = static_cast<ItemId>(
              rng.UniformInt(static_cast<uint64_t>(train.num_items())));
        } while (train.HasRating(u, j) || test.HasRating(u, j));
        if (scores[static_cast<size_t>(j)] >
            scores[static_cast<size_t>(pos.item)]) {
          ++rank;
        }
      }
      ++report.evaluated_positives;
      if (rank < options.top_n) {
        hits += 1.0;
        ndcg += 1.0 / std::log2(static_cast<double>(rank) + 2.0);
      }
    }
  }
  if (report.evaluated_positives > 0) {
    report.hit_rate = hits / static_cast<double>(report.evaluated_positives);
    report.ndcg = ndcg / static_cast<double>(report.evaluated_positives);
  }
  return report;
}

}  // namespace ganc
