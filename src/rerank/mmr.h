// Topic-diversification / MMR re-ranking of individual top-N lists,
// after Ziegler et al., "Improving recommendation lists through topic
// diversification", WWW 2005 (the paper's reference [9]).
//
// Greedy maximal-marginal-relevance over the head of the base ranking:
//   pick argmax  lambda * rel(i) - (1 - lambda) * max_{j in list} sim(i, j)
// where rel is the (per-user min-max normalized) base score and sim is
// item-item cosine from co-rating structure.
//
// The paper's Section VI point — "diversifying individual top-N sets
// does not necessarily increase coverage" — is reproduced by
// bench_ablation_diversity, which contrasts this re-ranker with GANC.

#ifndef GANC_RERANK_MMR_H_
#define GANC_RERANK_MMR_H_

#include <string>
#include <vector>

#include "recommender/item_similarity.h"
#include "recommender/recommender.h"
#include "rerank/reranker.h"

namespace ganc {

/// Configuration for MmrReranker.
struct MmrConfig {
  /// Relevance weight; 1.0 reproduces the base ranking, smaller values
  /// diversify harder.
  double lambda = 0.7;
  /// Candidate pool: the top (pool_multiple * N) base-ranked items.
  int32_t pool_multiple = 10;
  /// Similarity index parameters.
  int32_t num_neighbors = 50;
  int32_t max_profile = 512;
  uint64_t seed = 47;
};

/// MMR(ARec, lambda) diversification re-ranker.
class MmrReranker : public Reranker {
 public:
  /// `base` must be fitted on `train`; both must outlive this object.
  MmrReranker(const Recommender* base, const RatingDataset* train,
              MmrConfig config);

  Result<RerankedCollection> RecommendAll(const RatingDataset& train,
                                          int top_n) const override;
  std::string name() const override;

  /// Mean pairwise intra-list similarity of a collection (Ziegler's ILS,
  /// lower = more diverse). Exposed for tests and the diversity bench.
  double IntraListSimilarity(const RerankedCollection& topn) const;

 private:
  const Recommender* base_;
  MmrConfig config_;
  ItemSimilarityIndex index_;
};

}  // namespace ganc

#endif  // GANC_RERANK_MMR_H_
