// Regularized SVD (RSVD): matrix factorization for rating prediction,
// trained by stochastic gradient descent with L2 loss and L2
// regularization — a from-scratch equivalent of the LIBMF configuration
// the paper uses (Section IV-A, Appendix A / Table V).
//
// Model:  r_hat(u, i) = mu + b_u + b_i + <p_u, q_i>   (biases optional;
// the paper's LIBMF setup is bias-free, so use_biases defaults to false).
// The optional non-negativity projection reproduces RSVDN.

#ifndef GANC_RECOMMENDER_RSVD_H_
#define GANC_RECOMMENDER_RSVD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "recommender/factor_scoring_engine.h"
#include "recommender/factor_store.h"
#include "recommender/recommender.h"

namespace ganc {

/// Hyper-parameters for RsvdRecommender (defaults: ML-1M row of Table V).
struct RsvdConfig {
  int32_t num_factors = 100;      ///< g
  double learning_rate = 0.03;    ///< eta
  double regularization = 0.05;   ///< lambda (L2)
  int32_t num_epochs = 30;
  double lr_decay = 0.95;         ///< per-epoch multiplicative decay
  bool use_biases = false;        ///< LIBMF-style plain MF when false
  bool non_negative = false;      ///< RSVDN: project factors onto >= 0
  double init_scale = 0.1;        ///< factor init: U(0, init_scale)
  uint64_t seed = 17;
  /// User-block granularity of the deterministic blocked SGD epoch
  /// (0 = kTrainUserBlock). Part of the algorithm definition — changing
  /// it changes the fitted factors — so tests pin tiny values to force
  /// multi-block merges on small fixtures. Not serialized.
  int32_t user_block = 0;
};

/// SGD-trained matrix factorization rating predictor.
class RsvdRecommender : public Recommender {
 public:
  explicit RsvdRecommender(RsvdConfig config = {});

  Status Fit(const RatingDataset& train) override;
  Status Fit(const RatingDataset& train, ThreadPool* pool) override;
  void SetEpochCallback(EpochCallback callback) override {
    epoch_callback_ = std::move(callback);
  }
  int32_t num_items() const override { return num_items_; }
  void ScoreInto(UserId u, std::span<double> out) const override;
  void ScoreBatchInto(std::span<const UserId> users,
                      std::span<double> out) const override;
  std::string name() const override {
    return config_.non_negative ? "RSVDN" : "RSVD";
  }
  Status Save(std::ostream& os) const override;
  using Recommender::Load;
  Status Load(ArtifactReader& r, const RatingDataset* train) override;
  Status SetFactorPrecision(FactorPrecision p) override {
    return factors_.SetPrecision(p);
  }
  FactorPrecision factor_precision() const override {
    return factors_.precision();
  }

  /// Predicted rating for a single (u, i) pair, at the active factor
  /// precision.
  double Predict(UserId u, ItemId i) const;

  /// Root-mean-square error over a held-out set (Table V reporting).
  double Rmse(const RatingDataset& test) const;

  const RsvdConfig& config() const { return config_; }

 private:
  FactorView View() const;

  RsvdConfig config_;
  EpochCallback epoch_callback_;    // observability only; never saved
  int32_t num_users_ = 0;
  int32_t num_items_ = 0;
  uint64_t train_fingerprint_ = 0;  // content hash of the fitted train set
  double global_mean_ = 0.0;
  FactorStore factors_;  // P (|U| x g), Q (|I| x g)
  std::vector<double> user_bias_;
  std::vector<double> item_bias_;
  std::vector<double> user_base_;  // mu + b_u per user (biased mode only)
};

}  // namespace ganc

#endif  // GANC_RECOMMENDER_RSVD_H_
