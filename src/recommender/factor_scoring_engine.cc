#include "recommender/factor_scoring_engine.h"

#include <algorithm>

namespace ganc {

namespace {

// The batch micro-kernel, specialized at compile time on which optional
// terms exist: with the flags folded, the no-bias instantiation keeps a
// branch- and load-free inner loop (measured ~20% faster than one
// generic kernel testing the pointers per item).
template <bool kHasItemBias, bool kHasUserBase>
void BatchKernel(const FactorView& v, std::span<const UserId> users,
                 std::span<double> out) {
  constexpr size_t kU = FactorScoringEngine::kUserBlock;
  const size_t g = v.num_factors;
  const size_t ni = static_cast<size_t>(v.num_items);
  const size_t batch = users.size();

  for (size_t b0 = 0; b0 < batch; b0 += kU) {
    const size_t bn = std::min(kU, batch - b0);
    // A ragged final block keeps the inner loops fixed-width by pointing
    // the dead lanes at the block's first user; only live lanes store.
    const double* pu[kU];
    double* o[kU];
    double base[kU];
    for (size_t b = 0; b < kU; ++b) {
      const size_t lane = b < bn ? b : 0;
      const size_t ub = static_cast<size_t>(users[b0 + lane]);
      pu[b] = v.user_factors + ub * g;
      o[b] = out.data() + (b0 + lane) * ni;
      base[b] = kHasUserBase ? v.user_base[ub] : 0.0;
    }
    for (size_t i = 0; i < ni; ++i) {
      const double* qi = v.item_factors + i * g;
      // Bias terms enter each accumulator before the factor sum and every
      // (u, i) pair keeps one accumulator walked in factor order — the
      // same evaluation order as the scalar path, so batch scores are
      // bit-identical to ScoreInto. The kU independent chains are what
      // buys the speedup: they hide FMA latency and let the compiler
      // vectorize across users, while q_i is loaded once per block
      // instead of once per user.
      double acc[kU];
      if constexpr (kHasItemBias && kHasUserBase) {
        const double bi = v.item_bias[i];
        for (size_t b = 0; b < kU; ++b) acc[b] = base[b] + bi;
      } else if constexpr (kHasItemBias) {
        const double bi = v.item_bias[i];
        for (size_t b = 0; b < kU; ++b) acc[b] = bi;
      } else if constexpr (kHasUserBase) {
        for (size_t b = 0; b < kU; ++b) acc[b] = base[b];
      } else {
        for (size_t b = 0; b < kU; ++b) acc[b] = 0.0;
      }
      for (size_t f = 0; f < g; ++f) {
        const double qf = qi[f];
        for (size_t b = 0; b < kU; ++b) acc[b] += pu[b][f] * qf;
      }
      for (size_t b = 0; b < bn; ++b) o[b][i] = acc[b];
    }
  }
}

}  // namespace

void FactorScoringEngine::ScoreInto(UserId u, std::span<double> out) const {
  const size_t g = v_.num_factors;
  const size_t ni = static_cast<size_t>(v_.num_items);
  const double* pu = v_.user_factors + static_cast<size_t>(u) * g;
  const double base = v_.user_base ? v_.user_base[static_cast<size_t>(u)] : 0.0;
  for (size_t i = 0; i < ni; ++i) {
    const double* qi = v_.item_factors + i * g;
    double acc = base;
    if (v_.item_bias) acc += v_.item_bias[i];
    for (size_t f = 0; f < g; ++f) acc += pu[f] * qi[f];
    out[i] = acc;
  }
}

void FactorScoringEngine::ScoreBatchInto(std::span<const UserId> users,
                                         std::span<double> out) const {
  if (v_.item_bias) {
    if (v_.user_base) {
      BatchKernel<true, true>(v_, users, out);
    } else {
      BatchKernel<true, false>(v_, users, out);
    }
  } else if (v_.user_base) {
    BatchKernel<false, true>(v_, users, out);
  } else {
    BatchKernel<false, false>(v_, users, out);
  }
}

}  // namespace ganc
