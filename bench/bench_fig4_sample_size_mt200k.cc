// Figure 4: the same OSLG sample-size sweep as Figure 3, on the sparse
// MT-200K corpus.

#include <cstdio>

#include "bench/common.h"
#include "eval/metrics.h"
#include "util/csv.h"
#include "util/table.h"

using namespace ganc;
using namespace ganc::bench;

int main() {
  Banner("Figure 4", "OSLG sample size sweep on MT-200K");

  const BenchData data = MakeData(Corpus::kMt200k);
  const RatingDataset& train = data.train;
  const auto theta = ThetaG(train);

  const PsvdRecommender psvd100 = FitPsvd(train, FullScale() ? 100 : 60);
  const PsvdRecommender psvd10 = FitPsvd(train, 10);
  PopRecommender pop;
  (void)pop.Fit(train);
  const RsvdRecommender rsvd = FitRsvd(Corpus::kMt200k, train);

  const NormalizedAccuracyScorer s_psvd100(&psvd100);
  const NormalizedAccuracyScorer s_psvd10(&psvd10);
  const TopNIndicatorScorer s_pop(&pop, &train, 5);
  const NormalizedAccuracyScorer s_rsvd(&rsvd);

  const std::vector<std::pair<std::string, const AccuracyScorer*>> arecs = {
      {psvd100.name(), &s_psvd100},
      {psvd10.name(), &s_psvd10},
      {"Pop", &s_pop},
      {"RSVD", &s_rsvd},
  };
  const std::vector<int> sample_sizes = {100, 300, 500, 700, 900};
  const MetricsConfig mcfg{.top_n = 5};

  for (const auto& [name, scorer] : arecs) {
    std::printf("--- ARec = %s ---\n", name.c_str());
    TablePrinter table({"S", "F-measure@5", "Coverage@5", "Gini@5"});
    for (int s : sample_sizes) {
      GancConfig cfg;
      cfg.top_n = 5;
      cfg.sample_size = s;
      const auto topn = RunGanc(*scorer, theta, CoverageKind::kDyn, train, cfg);
      const auto m = EvaluateTopN(train, data.test, topn, mcfg);
      table.AddRow({std::to_string(s), FormatDouble(m.f_measure, 4),
                    FormatDouble(m.coverage, 4), FormatDouble(m.gini, 4)});
    }
    table.Print();
    std::printf("\n");
  }
  std::printf(
      "paper shape (Fig. 4): same trend as Figure 3 in the sparse regime —\n"
      "coverage grows with S; accuracy is roughly flat-to-decreasing (Pop's\n"
      "F at this scale is small in absolute terms).\n");
  return 0;
}
