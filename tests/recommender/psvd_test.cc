#include "recommender/psvd.h"

#include <gtest/gtest.h>

#include "data/split.h"
#include "data/synthetic.h"
#include "eval/metrics.h"
#include "recommender/random_rec.h"
#include "recommender/recommender.h"

namespace ganc {
namespace {

TEST(PsvdTest, FitsAndScores) {
  auto ds = GenerateSynthetic(TinySpec());
  ASSERT_TRUE(ds.ok());
  PsvdRecommender psvd({.num_factors = 10});
  ASSERT_TRUE(psvd.Fit(*ds).ok());
  const auto s = psvd.ScoreAll(0);
  EXPECT_EQ(s.size(), static_cast<size_t>(ds->num_items()));
}

TEST(PsvdTest, NameIncludesFactorCount) {
  EXPECT_EQ(PsvdRecommender({.num_factors = 10}).name(), "PSVD10");
  EXPECT_EQ(PsvdRecommender({.num_factors = 100}).name(), "PSVD100");
}

TEST(PsvdTest, SingularValuesDecreasing) {
  auto ds = GenerateSynthetic(TinySpec());
  ASSERT_TRUE(ds.ok());
  PsvdRecommender psvd({.num_factors = 8});
  ASSERT_TRUE(psvd.Fit(*ds).ok());
  const auto& sv = psvd.singular_values();
  ASSERT_EQ(sv.size(), 8u);
  for (size_t k = 1; k < sv.size(); ++k) EXPECT_GE(sv[k - 1], sv[k] - 1e-9);
}

TEST(PsvdTest, ScoresReflectAssociations) {
  // A user's own highly-rated items should score above average even though
  // they are excluded at recommendation time: PSVD reconstructs the matrix.
  auto ds = GenerateSynthetic(TinySpec());
  ASSERT_TRUE(ds.ok());
  PsvdRecommender psvd({.num_factors = 10});
  ASSERT_TRUE(psvd.Fit(*ds).ok());
  int better = 0, total = 0;
  for (UserId u = 0; u < 20; ++u) {
    const auto s = psvd.ScoreAll(u);
    double mean = 0.0;
    for (double v : s) mean += v;
    mean /= static_cast<double>(s.size());
    for (const ItemRating& ir : ds->ItemsOf(u)) {
      if (ir.value >= 4.0f) {
        ++total;
        if (s[static_cast<size_t>(ir.item)] > mean) ++better;
      }
    }
  }
  ASSERT_GT(total, 0);
  EXPECT_GT(static_cast<double>(better) / total, 0.8);
}

TEST(PsvdTest, BeatsRandomOnRankingAccuracy) {
  auto spec = TinySpec();
  spec.num_users = 250;
  spec.num_items = 300;
  spec.mean_activity = 40.0;
  auto ds = GenerateSynthetic(spec);
  ASSERT_TRUE(ds.ok());
  auto split = PerUserRatioSplit(*ds, {.train_ratio = 0.5, .seed = 2});
  ASSERT_TRUE(split.ok());

  PsvdRecommender psvd({.num_factors = 10});
  ASSERT_TRUE(psvd.Fit(split->train).ok());
  RandomRecommender rnd(7);
  ASSERT_TRUE(rnd.Fit(split->train).ok());

  const MetricsConfig cfg{.top_n = 5};
  const auto psvd_m = EvaluateTopN(
      split->train, split->test, RecommendAllUsers(psvd, split->train, 5), cfg);
  const auto rnd_m = EvaluateTopN(
      split->train, split->test, RecommendAllUsers(rnd, split->train, 5), cfg);
  EXPECT_GT(psvd_m.recall, 2.0 * rnd_m.recall);
}

TEST(PsvdTest, DeterministicPerSeed) {
  auto ds = GenerateSynthetic(TinySpec());
  ASSERT_TRUE(ds.ok());
  PsvdRecommender a({.num_factors = 6, .seed = 3});
  PsvdRecommender b({.num_factors = 6, .seed = 3});
  ASSERT_TRUE(a.Fit(*ds).ok());
  ASSERT_TRUE(b.Fit(*ds).ok());
  EXPECT_EQ(a.ScoreAll(4), b.ScoreAll(4));
}

TEST(PsvdTest, RankCappedByCatalog) {
  RatingDatasetBuilder bld(4, 3);
  ASSERT_TRUE(bld.Add(0, 0, 5.0f).ok());
  ASSERT_TRUE(bld.Add(1, 1, 4.0f).ok());
  ASSERT_TRUE(bld.Add(2, 2, 3.0f).ok());
  ASSERT_TRUE(bld.Add(3, 0, 2.0f).ok());
  auto ds = std::move(bld).Build();
  ASSERT_TRUE(ds.ok());
  PsvdRecommender psvd({.num_factors = 10});  // rank > |I|
  ASSERT_TRUE(psvd.Fit(*ds).ok());
  EXPECT_LE(psvd.singular_values().size(), 3u);
}

TEST(PsvdTest, InvalidConfigRejected) {
  auto ds = GenerateSynthetic(TinySpec());
  ASSERT_TRUE(ds.ok());
  EXPECT_FALSE(PsvdRecommender({.num_factors = 0}).Fit(*ds).ok());
}

}  // namespace
}  // namespace ganc
