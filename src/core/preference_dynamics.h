// Temporal dynamics of long-tail novelty preference — the extension the
// paper's conclusion names as future work ("we intend to explore the
// temporal and topical dynamics of long-tail novelty preference").
//
// Each user's interaction sequence is partitioned into consecutive
// windows (interaction order stands in for time when no timestamps are
// available); a preference estimate is computed per window from only
// that window's interactions, yielding a per-user theta trajectory.
// Drift statistics over the trajectories quantify how stable the
// long-tail preference signal is — the stability result that justifies
// learning theta from historical data at all.

#ifndef GANC_CORE_PREFERENCE_DYNAMICS_H_
#define GANC_CORE_PREFERENCE_DYNAMICS_H_

#include <cstdint>
#include <vector>

#include "core/preference.h"
#include "data/dataset.h"
#include "util/status.h"

namespace ganc {

/// Per-user preference trajectories over interaction windows.
struct ThetaTrajectory {
  /// theta[w][u] = user u's estimate from window w only. Users with no
  /// interactions in a window get NaN there.
  std::vector<std::vector<double>> theta_per_window;
  int32_t num_windows = 0;
};

/// Options for EstimateThetaWindows.
struct DynamicsOptions {
  int32_t num_windows = 2;
  /// Which estimator runs per window. thetaG needs enough data per
  /// window; thetaT (the default) degrades more gracefully.
  PreferenceModel model = PreferenceModel::kTfidf;
  uint64_t seed = 51;
};

/// Splits every user's interaction sequence into `num_windows` equal
/// consecutive chunks and computes the preference model inside each.
/// Item popularity statistics are always taken from the full dataset so
/// windows remain comparable.
Result<ThetaTrajectory> EstimateThetaWindows(const RatingDataset& dataset,
                                             const DynamicsOptions& options);

/// Stability summary of a trajectory.
struct DriftReport {
  /// Pearson correlation between consecutive windows' theta vectors
  /// (users present in both windows), one entry per window transition.
  std::vector<double> adjacent_correlation;
  /// Mean |theta_w+1 - theta_w| per transition.
  std::vector<double> mean_abs_drift;
  /// Number of users present in every window.
  int32_t users_in_all_windows = 0;
};

/// Computes drift statistics; NaN window entries are skipped pairwise.
DriftReport SummarizeDrift(const ThetaTrajectory& trajectory);

}  // namespace ganc

#endif  // GANC_CORE_PREFERENCE_DYNAMICS_H_
