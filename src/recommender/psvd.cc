#include "recommender/psvd.h"

#include <utility>

#include "recommender/linalg.h"
#include "recommender/model_io.h"
#include "util/serialize.h"

namespace ganc {

PsvdRecommender::PsvdRecommender(PsvdConfig config) : config_(config) {}

Status PsvdRecommender::Fit(const RatingDataset& train) {
  return Fit(train, nullptr);
}

Status PsvdRecommender::Fit(const RatingDataset& train, ThreadPool* pool) {
  if (config_.num_factors <= 0) {
    return Status::InvalidArgument("num_factors must be positive");
  }
  num_users_ = train.num_users();
  num_items_ = train.num_items();
  train_fingerprint_ = train.Fingerprint();
  // Validate the (possibly mapped) rows once up front so corruption is
  // reported here; the sweeps inside the sparse products then reuse the
  // validation watermark.
  GANC_RETURN_NOT_OK(train.SweepRowWindows(
      train.train_budget_bytes(), 1,
      [](const RowWindow&) { return Status::OK(); }));
  TruncatedSvd svd =
      RandomizedSvd(train, config_.num_factors, config_.oversample,
                    config_.power_iterations, config_.seed, pool,
                    config_.user_block);
  const size_t g = svd.singular_values.size();
  singular_values_ = svd.singular_values;
  std::vector<double> p(static_cast<size_t>(num_users_) * g, 0.0);
  std::vector<double> q(static_cast<size_t>(num_items_) * g, 0.0);
  for (size_t u = 0; u < static_cast<size_t>(num_users_); ++u) {
    for (size_t f = 0; f < g; ++f) {
      p[u * g + f] = svd.u.At(u, f) * svd.singular_values[f];
    }
  }
  for (size_t i = 0; i < static_cast<size_t>(num_items_); ++i) {
    for (size_t f = 0; f < g; ++f) {
      q[i * g + f] = svd.v.At(i, f);
    }
  }
  factors_.AdoptFp64(std::move(p), std::move(q),
                     static_cast<size_t>(num_users_),
                     static_cast<size_t>(num_items_), g);
  return Status::OK();
}

FactorView PsvdRecommender::View() const {
  FactorView v;
  factors_.BindView(&v);
  v.num_items = num_items_;
  return v;
}

void PsvdRecommender::ScoreInto(UserId u, std::span<double> out) const {
  FactorScoringEngine(View()).ScoreInto(u, out);
}

void PsvdRecommender::ScoreBatchInto(std::span<const UserId> users,
                                     std::span<double> out) const {
  FactorScoringEngine(View()).ScoreBatchInto(users, out);
}

Status PsvdRecommender::Save(std::ostream& os) const {
  if (num_items() == 0) {
    return Status::FailedPrecondition("cannot save unfitted PSVD model");
  }
  ArtifactWriter w(os);
  GANC_RETURN_NOT_OK(w.WriteHeader(ArtifactKind::kModel,
                                   static_cast<uint32_t>(ModelType::kPsvd)));
  PayloadWriter config;
  config.WriteI32(config_.num_factors);
  config.WriteI32(config_.oversample);
  config.WriteI32(config_.power_iterations);
  config.WriteU64(config_.seed);
  GANC_RETURN_NOT_OK(w.WriteSection(kModelConfigSection, config));
  PayloadWriter state;
  state.WriteI32(num_users_);
  state.WriteI32(num_items_);
  state.WriteU64(train_fingerprint_);
  state.WriteVecF64(singular_values_);
  GANC_RETURN_NOT_OK(w.WriteSection(kModelStateSection, state));
  PayloadWriter factors;
  factors_.Save(&factors);
  GANC_RETURN_NOT_OK(w.WriteSection(kFactorTableSection, factors));
  return w.Finish();
}

Status PsvdRecommender::Load(ArtifactReader& r, const RatingDataset* train) {
  GANC_RETURN_NOT_OK(ReadModelHeader(r, ModelType::kPsvd));
  Result<ArtifactReader::Section> config = r.ReadSectionExpect(
      kModelConfigSection);
  if (!config.ok()) return config.status();
  PayloadReader cr(config->payload());
  PsvdConfig cfg;
  GANC_RETURN_NOT_OK(cr.ReadI32(&cfg.num_factors));
  GANC_RETURN_NOT_OK(cr.ReadI32(&cfg.oversample));
  GANC_RETURN_NOT_OK(cr.ReadI32(&cfg.power_iterations));
  GANC_RETURN_NOT_OK(cr.ReadU64(&cfg.seed));
  GANC_RETURN_NOT_OK(cr.ExpectEnd());
  Result<ArtifactReader::Section> state = r.ReadSectionExpect(
      kModelStateSection);
  if (!state.ok()) return state.status();
  PayloadReader sr(state->payload());
  int32_t num_users = 0;
  int32_t num_items = 0;
  uint64_t fingerprint = 0;
  std::vector<double> sigma;
  GANC_RETURN_NOT_OK(sr.ReadI32(&num_users));
  GANC_RETURN_NOT_OK(sr.ReadI32(&num_items));
  GANC_RETURN_NOT_OK(sr.ReadU64(&fingerprint));
  GANC_RETURN_NOT_OK(sr.ReadVecF64(&sigma));
  GANC_RETURN_NOT_OK(sr.ExpectEnd());
  Result<ArtifactReader::Section> factors = r.ReadSectionExpect(
      kFactorTableSection);
  if (!factors.ok()) return factors.status();
  FactorStore store;
  GANC_RETURN_NOT_OK(store.LoadFromSection(r, *factors));
  // Scoring rank is |sigma| (may be below num_factors on tiny matrices).
  const size_t g = sigma.size();
  if (num_users < 0 || num_items < 0 || store.num_factors() != g ||
      store.user_rows() != static_cast<size_t>(num_users) ||
      store.item_rows() != static_cast<size_t>(num_items)) {
    return Status::InvalidArgument("inconsistent PSVD factor dimensions");
  }
  if (train != nullptr) {
    if (num_users != train->num_users() || num_items != train->num_items()) {
      return Status::InvalidArgument(
          "PSVD artifact dimensions do not match the provided dataset");
    }
    if (fingerprint != train->Fingerprint()) {
      return Status::InvalidArgument(
          "PSVD artifact was trained on different data than the provided "
          "dataset (fingerprint mismatch)");
    }
  }
  GANC_RETURN_NOT_OK(ExpectEndOfArtifact(r));
  config_ = cfg;
  num_users_ = num_users;
  num_items_ = num_items;
  train_fingerprint_ = fingerprint;
  singular_values_ = std::move(sigma);
  factors_ = std::move(store);
  return Status::OK();
}

}  // namespace ganc
