#include "recommender/sparse_similarity.h"

#include "util/rng.h"

namespace ganc {

SparseMatrix SampleUserProfiles(const RatingDataset& train,
                                int32_t max_profile, uint64_t seed) {
  const int32_t num_users = train.num_users();
  SparseMatrix m;
  m.offsets.reserve(static_cast<size_t>(num_users) + 1);
  m.offsets.push_back(0);
  const size_t cap = std::min<size_t>(
      static_cast<size_t>(train.num_ratings()),
      static_cast<size_t>(num_users) *
          static_cast<size_t>(std::max(max_profile, 0)));
  m.ids.reserve(cap);
  m.values.reserve(cap);
  // One sequential Rng, draws consumed only for oversized rows in user
  // order: the exact sequence the legacy in-loop sampling produced.
  // Rows within the cap stream straight from the dataset (Shuffle
  // mutates, so only oversized rows pay the copy). Rows arrive through
  // the budgeted window sweep, so a mapped dataset never needs full
  // residency; windows run front-to-back, which preserves the draw
  // sequence for any budget.
  Rng rng(seed);
  std::vector<ItemRating> sampled;
  const Status swept = train.SweepRowWindows(
      train.train_budget_bytes(), 1, [&](const RowWindow& w) {
        for (UserId u = w.begin; u < w.end; ++u) {
          std::span<const ItemRating> row = train.ItemsOf(u);
          if (static_cast<int32_t>(row.size()) > max_profile) {
            sampled.assign(row.begin(), row.end());
            rng.Shuffle(&sampled);
            sampled.resize(static_cast<size_t>(max_profile));
            row = sampled;
          }
          for (const ItemRating& ir : row) {
            m.ids.push_back(ir.item);
            m.values.push_back(static_cast<double>(ir.value));
          }
          m.offsets.push_back(m.ids.size());
        }
        return Status::OK();
      });
  (void)swept;  // row-validation errors surface from the caller's sweep
  return m;
}

SparseMatrix SampleItemAudiences(const RatingDataset& train,
                                 int32_t max_audience, uint64_t seed,
                                 std::span<const double> user_mean) {
  const int32_t num_items = train.num_items();
  // Item-major audiences come from a counting-sort transpose of the CSR
  // rows, built in two budgeted window sweeps so a mapped dataset never
  // needs the CSC index (or full residency). Users fill each audience in
  // ascending order — the same order the CSC view lists them — and the
  // sampling Rng is consumed in ascending item order afterwards, so the
  // result is budget-invariant and matches the legacy CSC-based builder
  // on user-major datasets.
  std::vector<size_t> col_off(static_cast<size_t>(num_items) + 1, 0);
  Status swept = train.SweepRowWindows(
      train.train_budget_bytes(), 1, [&](const RowWindow& w) {
        for (UserId u = w.begin; u < w.end; ++u) {
          for (const ItemRating& ir : train.ItemsOf(u)) {
            ++col_off[static_cast<size_t>(ir.item) + 1];
          }
        }
        return Status::OK();
      });
  (void)swept;  // row-validation errors surface from the caller's sweep
  for (size_t i = 0; i < static_cast<size_t>(num_items); ++i) {
    col_off[i + 1] += col_off[i];
  }
  const size_t nnz = col_off[static_cast<size_t>(num_items)];
  std::vector<UserRating> audiences(nnz);
  std::vector<size_t> cursor(col_off.begin(), col_off.end() - 1);
  swept = train.SweepRowWindows(
      train.train_budget_bytes(), 1, [&](const RowWindow& w) {
        for (UserId u = w.begin; u < w.end; ++u) {
          for (const ItemRating& ir : train.ItemsOf(u)) {
            audiences[cursor[static_cast<size_t>(ir.item)]++] =
                UserRating{u, ir.value};
          }
        }
        return Status::OK();
      });
  (void)swept;

  SparseMatrix m;
  m.offsets.reserve(static_cast<size_t>(num_items) + 1);
  m.offsets.push_back(0);
  const size_t cap = std::min<size_t>(
      nnz, static_cast<size_t>(num_items) *
               static_cast<size_t>(std::max(max_audience, 0)));
  m.ids.reserve(cap);
  m.values.reserve(cap);
  Rng rng(seed);
  std::vector<UserRating> sampled;
  for (ItemId i = 0; i < num_items; ++i) {
    std::span<const UserRating> col{
        audiences.data() + col_off[static_cast<size_t>(i)],
        col_off[static_cast<size_t>(i) + 1] -
            col_off[static_cast<size_t>(i)]};
    if (static_cast<int32_t>(col.size()) > max_audience) {
      sampled.assign(col.begin(), col.end());
      rng.Shuffle(&sampled);
      sampled.resize(static_cast<size_t>(max_audience));
      col = sampled;
    }
    for (const UserRating& ur : col) {
      m.ids.push_back(ur.user);
      m.values.push_back(static_cast<double>(ur.value) -
                         user_mean[static_cast<size_t>(ur.user)]);
    }
    m.offsets.push_back(m.ids.size());
  }
  return m;
}

SparseMatrix Transpose(const SparseMatrix& m, int32_t num_cols) {
  SparseMatrix t;
  t.offsets.assign(static_cast<size_t>(num_cols) + 1, 0);
  for (const int32_t id : m.ids) {
    ++t.offsets[static_cast<size_t>(id) + 1];
  }
  for (size_t c = 0; c < static_cast<size_t>(num_cols); ++c) {
    t.offsets[c + 1] += t.offsets[c];
  }
  t.ids.resize(m.ids.size());
  t.values.resize(m.values.size());
  std::vector<size_t> cursor(t.offsets.begin(), t.offsets.end() - 1);
  // Rows visited in ascending order, so each transposed row collects its
  // ids ascending — the sweep's per-pair accumulation-order contract.
  const size_t rows = m.rows();
  for (size_t r = 0; r < rows; ++r) {
    for (size_t e = m.offsets[r]; e < m.offsets[r + 1]; ++e) {
      const size_t dst = cursor[static_cast<size_t>(m.ids[e])]++;
      t.ids[dst] = static_cast<int32_t>(r);
      t.values[dst] = m.values[e];
    }
  }
  return t;
}

}  // namespace ganc
