#include "recommender/recommender.h"

namespace ganc {

Status Recommender::Fit(const RatingDataset& train, ThreadPool* /*pool*/) {
  return Fit(train);
}

void Recommender::ScoreBatchInto(std::span<const UserId> users,
                                 std::span<double> out) const {
  const size_t ni = static_cast<size_t>(num_items());
  for (size_t b = 0; b < users.size(); ++b) {
    ScoreInto(users[b], out.subspan(b * ni, ni));
  }
}

Status Recommender::SetFactorPrecision(FactorPrecision p) {
  if (p == FactorPrecision::kFp64) return Status::OK();
  return Status::InvalidArgument(
      "model '" + name() + "' has no latent factor tables to compact to " +
      FactorPrecisionName(p));
}

Status Recommender::Save(std::ostream& /*os*/) const {
  return Status::NotImplemented("model '" + name() +
                                "' has no persistence support");
}

Status Recommender::Load(std::istream& is, const RatingDataset* train) {
  ArtifactReader r(is);
  return Load(r, train);
}

Status Recommender::Load(ArtifactReader& /*r*/,
                         const RatingDataset* /*train*/) {
  return Status::NotImplemented("model '" + name() +
                                "' has no persistence support");
}

std::vector<double> Recommender::ScoreAll(UserId u) const {
  std::vector<double> scores(static_cast<size_t>(num_items()));
  ScoreInto(u, scores);
  return scores;
}

std::vector<ItemId> Recommender::RecommendTopN(
    UserId u, const std::vector<ItemId>& candidates, int n) const {
  ScoringContext ctx;
  std::vector<ItemId> out;
  RecommendTopNInto(u, candidates, n, ctx, out);
  return out;
}

void Recommender::RecommendTopNInto(UserId u,
                                    std::span<const ItemId> candidates, int n,
                                    ScoringContext& ctx,
                                    std::vector<ItemId>& out) const {
  const std::span<double> scores =
      ctx.Scores(static_cast<size_t>(num_items()));
  ScoreInto(u, scores);
  std::vector<ScoredItem>& top = ctx.TopK();
  SelectTopKFromScoresInto(scores, candidates, static_cast<size_t>(n), &top);
  out.clear();
  out.reserve(top.size());
  for (const ScoredItem& s : top) out.push_back(s.item);
}

std::vector<ScoredItem>& SelectTopKUnrated(std::span<const double> scores,
                                           const RatingDataset& train,
                                           UserId u, size_t k,
                                           ScoringContext& ctx,
                                           std::span<const ItemId> exclusions) {
  // "All unrated items" candidate generation is the whole catalog minus
  // the user's short history (and any request-time exclusions), so
  // instead of materializing a candidate list the dense top-k kernel
  // scans the score row and skips masked items through a flag mask,
  // marked and unmarked around the call so the mask stays zeroed
  // between users.
  std::vector<uint8_t>& masked = ctx.Flags();
  if (masked.size() != scores.size()) masked.assign(scores.size(), 0);
  for (const ItemRating& ir : train.ItemsOf(u)) {
    masked[static_cast<size_t>(ir.item)] = 1;
  }
  for (const ItemId i : exclusions) masked[static_cast<size_t>(i)] = 1;
  std::vector<ScoredItem>& top = ctx.TopK();
  SelectTopKDenseInto(
      scores, k,
      [&](int32_t item) { return masked[static_cast<size_t>(item)] != 0; },
      &top);
  for (const ItemRating& ir : train.ItemsOf(u)) {
    masked[static_cast<size_t>(ir.item)] = 0;
  }
  for (const ItemId i : exclusions) masked[static_cast<size_t>(i)] = 0;
  return top;
}

std::vector<std::vector<ItemId>> RecommendAllUsers(const Recommender& model,
                                                   const RatingDataset& train,
                                                   int n, ThreadPool* pool) {
  std::vector<std::vector<ItemId>> result(
      static_cast<size_t>(train.num_users()));
  ParallelForChunks(
      pool, 0, static_cast<size_t>(train.num_users()),
      [&](size_t lo, size_t hi) {
        ScoringContext ctx;
        ForEachScoredUser(
            model, lo, hi, ctx,
            [&](UserId u, std::span<const double> scores) {
              const std::vector<ScoredItem>& top = SelectTopKUnrated(
                  scores, train, u, static_cast<size_t>(n), ctx);
              std::vector<ItemId>& out = result[static_cast<size_t>(u)];
              out.clear();
              out.reserve(top.size());
              for (const ScoredItem& s : top) out.push_back(s.item);
            });
      });
  return result;
}

}  // namespace ganc
