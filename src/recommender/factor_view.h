// Typed borrowed view of a fitted latent-factor model's parameters.
//
// PR 2 froze the view at `double`: serving scored straight off the fp64
// training tables. The view is now precision-tagged so models can hand
// the scoring engine a compact table instead:
//
//   fp64  the training-time tables, exact reference scores.
//   fp32  narrowed copies, half the resident bytes; scores drift by
//         float rounding only (each dot product accumulates in float).
//   int8  per-row affine quantization, ~8x smaller tables; scores
//         reconstruct through the closed-form expansion below and are
//         checked against the exact path by top-N overlap, not equality.
//
// The int8 scheme stores, per factor row v (length g):
//
//   center = (min + max) / 2,  scale = (max - min) / 254
//   q[f]   = clamp(round((v[f] - center) / scale), -127, 127)
//
// so v[f] ~= center + scale * q[f]. With per-row q sums precomputed at
// quantization time, a user/item dot product expands to four exact
// terms (the q-by-q dot is integer arithmetic, overflow-free for any
// realistic g):
//
//   <p, q> ~= g*cu*ci + cu*si*Sq + ci*su*Sp + su*si*sum_f(pq[f]*qq[f])
//
// DequantDot() below is that combine; every kernel variant calls the
// same inline double-precision expression, which is what makes int8
// scores bit-identical across scalar/SSE2/AVX2/AVX-512 dispatch.

#ifndef GANC_RECOMMENDER_FACTOR_VIEW_H_
#define GANC_RECOMMENDER_FACTOR_VIEW_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "util/status.h"

namespace ganc {

/// Storage type of the factor tables behind a FactorView. Values are
/// persisted in model artifacts (FORMATS.md, factor-table section) and
/// must never be renumbered.
enum class FactorPrecision : uint8_t {
  kFp64 = 1,  ///< training-time doubles (exact reference)
  kFp32 = 2,  ///< narrowed floats, 2x smaller
  kInt8 = 3,  ///< per-row affine-quantized int8, ~8x smaller
};

/// Lowercase name used by --factor-precision, GANC artifacts' error
/// messages, and the serve snapshot ("fp64" / "fp32" / "int8").
inline const char* FactorPrecisionName(FactorPrecision p) {
  switch (p) {
    case FactorPrecision::kFp64: return "fp64";
    case FactorPrecision::kFp32: return "fp32";
    case FactorPrecision::kInt8: return "int8";
  }
  return "unknown";
}

inline Result<FactorPrecision> ParseFactorPrecision(const std::string& s) {
  if (s == "fp64") return FactorPrecision::kFp64;
  if (s == "fp32") return FactorPrecision::kFp32;
  if (s == "int8") return FactorPrecision::kInt8;
  return Status::InvalidArgument("unknown factor precision '" + s +
                                 "' (expected fp64, fp32, or int8)");
}

/// Borrowed view of a fitted latent-factor model's parameters. Exactly
/// one of the per-precision pointer groups below is populated, selected
/// by `precision`; the bias terms stay fp64 at every precision (they
/// are O(|U| + |I|), the factor tables are the O((|U| + |I|) * g) cost).
struct FactorView {
  FactorPrecision precision = FactorPrecision::kFp64;

  // kFp64: |U| x g and |I| x g row-major doubles.
  const double* user_factors = nullptr;
  const double* item_factors = nullptr;

  // kFp32: same shapes, narrowed.
  const float* user_factors_f32 = nullptr;
  const float* item_factors_f32 = nullptr;

  // kInt8: quantized rows plus per-row affine parameters and q sums.
  const int8_t* user_q8 = nullptr;       ///< |U| x g
  const int8_t* item_q8 = nullptr;       ///< |I| x g
  const float* user_scale = nullptr;     ///< |U|
  const float* user_center = nullptr;    ///< |U|
  const int32_t* user_qsum = nullptr;    ///< |U|, sum_f user_q8[u][f]
  const float* item_scale = nullptr;     ///< |I|
  const float* item_center = nullptr;    ///< |I|
  const int32_t* item_qsum = nullptr;    ///< |I|

  const double* item_bias = nullptr;  ///< optional |I| (may be null)
  const double* user_base = nullptr;  ///< optional |U| offsets (may be null)
  int32_t num_items = 0;
  size_t num_factors = 0;  ///< g
};

/// The shared int8 dequantized dot-product combine: every kernel variant
/// (and the scalar single-user path) evaluates this exact expression, in
/// this operand order, in double — the integer dot `dot` is exact, so
/// int8 scores are bit-identical across all dispatch variants.
inline double DequantDot(size_t g, float user_scale, float user_center,
                         int32_t user_qsum, float item_scale,
                         float item_center, int32_t item_qsum, int32_t dot) {
  return static_cast<double>(g) * user_center * item_center +
         static_cast<double>(user_center) * item_scale * item_qsum +
         static_cast<double>(item_center) * user_scale * user_qsum +
         static_cast<double>(user_scale) * item_scale * dot;
}

}  // namespace ganc

#endif  // GANC_RECOMMENDER_FACTOR_VIEW_H_
