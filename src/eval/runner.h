// Experiment runner: evaluates a set of named top-N collections against a
// train/test split and renders paper-style comparison tables (Table IV's
// metric columns plus the average-rank "Score").

#ifndef GANC_EVAL_RUNNER_H_
#define GANC_EVAL_RUNNER_H_

#include <functional>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "eval/metrics.h"
#include "util/table.h"

namespace ganc {

/// A named algorithm entry: the callback produces the top-N collection
/// (so expensive models are only invoked when the runner needs them).
struct AlgorithmEntry {
  std::string name;
  std::function<std::vector<std::vector<ItemId>>()> run;
};

/// Result row for one algorithm.
struct AlgorithmResult {
  std::string name;
  MetricsReport metrics;
  double avg_rank = 0.0;
  double seconds = 0.0;
};

/// Runs every entry, evaluates it, computes Table IV-style average ranks.
std::vector<AlgorithmResult> RunComparison(
    const std::vector<AlgorithmEntry>& entries, const RatingDataset& train,
    const RatingDataset& test, const MetricsConfig& config);

/// Renders the comparison as a Table IV-shaped ASCII table
/// (Alg | F@N | S@N | L@N | C@N | G@N | Score).
TablePrinter ComparisonTable(const std::vector<AlgorithmResult>& results,
                             int top_n);

/// Averages metric reports element-wise (for the paper's 10-run averages
/// of sampling-based GANC variants).
MetricsReport MeanReport(const std::vector<MetricsReport>& reports);

}  // namespace ganc

#endif  // GANC_EVAL_RUNNER_H_
