// Quickstart: assemble GANC(PSVD, thetaG, Dyn) on a synthetic MovieLens-
// style dataset and print the accuracy/novelty/coverage trade-off against
// the raw accuracy recommender.
//
//   build/examples/quickstart
//
// Walks through the whole public API: generate -> split -> fit -> learn
// preferences -> re-rank -> evaluate.

#include <cstdio>

#include "core/ganc.h"
#include "core/preference.h"
#include "data/split.h"
#include "data/synthetic.h"
#include "eval/runner.h"
#include "recommender/psvd.h"
#include "recommender/recommender.h"

using namespace ganc;

int main() {
  // 1. Data: a popularity-biased synthetic corpus (swap in LoadRatingsFile
  //    to read a real "user,item,rating" file instead).
  SyntheticSpec spec = MovieLens100KSpec();
  auto dataset = GenerateSynthetic(spec);
  if (!dataset.ok()) {
    std::fprintf(stderr, "generate: %s\n", dataset.status().ToString().c_str());
    return 1;
  }
  auto split = PerUserRatioSplit(*dataset, {.train_ratio = spec.kappa,
                                            .seed = 42});
  if (!split.ok()) {
    std::fprintf(stderr, "split: %s\n", split.status().ToString().c_str());
    return 1;
  }
  const RatingDataset& train = split->train;
  const RatingDataset& test = split->test;
  std::printf("dataset: %lld ratings, %d users, %d items (density %.2f%%)\n",
              static_cast<long long>(dataset->num_ratings()),
              dataset->num_users(), dataset->num_items(),
              dataset->Density() * 100.0);

  // 2. Accuracy recommender: PureSVD with 100 factors.
  PsvdRecommender psvd({.num_factors = 100});
  if (auto s = psvd.Fit(train); !s.ok()) {
    std::fprintf(stderr, "fit: %s\n", s.ToString().c_str());
    return 1;
  }
  NormalizedAccuracyScorer accuracy(&psvd);

  // 3. Long-tail novelty preferences theta^G, learned from interactions.
  auto theta = ComputePreference(PreferenceModel::kGeneralized, train);
  if (!theta.ok()) {
    std::fprintf(stderr, "theta: %s\n", theta.status().ToString().c_str());
    return 1;
  }

  // 4. GANC(PSVD100, thetaG, Dyn) with OSLG optimization. A worker pool
  //    parallelizes the batched scoring path; the output is byte-identical
  //    to the serial path, so this only changes wall time.
  ThreadPool pool;
  Ganc ganc(&accuracy, *theta, CoverageKind::kDyn);
  GancConfig config;
  config.top_n = 5;
  config.sample_size = 500;
  config.pool = &pool;

  // 5. Evaluate both against the paper's Table III metrics.
  const std::vector<AlgorithmEntry> entries = {
      {"PSVD100", [&] { return RecommendAllUsers(psvd, train, 5, &pool); }},
      {"GANC(PSVD100, thetaG, Dyn)",
       [&] { return ganc.RecommendAll(train, config).value(); }},
  };
  const auto results =
      RunComparison(entries, train, test, MetricsConfig{.top_n = 5});
  ComparisonTable(results, 5).Print();

  std::printf(
      "\nGANC trades a little F-measure for a large coverage/novelty gain;\n"
      "tune the balance per user via theta and globally via sample_size.\n");
  return 0;
}
