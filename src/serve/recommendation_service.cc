#include "serve/recommendation_service.h"

#include <algorithm>
#include <chrono>
#include <iterator>
#include <utility>

#include "core/coverage.h"
#include "core/ganc.h"
#include "recommender/model_io.h"

namespace ganc {

namespace {

// Process-global snapshot version source: every service instance (= one
// immutable snapshot) gets a distinct version, so cache keys can never
// collide across snapshot swaps within a process.
std::atomic<uint64_t> g_next_snapshot_version{1};

void UpdateMax(std::atomic<uint64_t>& target, uint64_t value) {
  uint64_t seen = target.load(std::memory_order_relaxed);
  while (value > seen &&
         !target.compare_exchange_weak(seen, value,
                                       std::memory_order_relaxed)) {
  }
}

}  // namespace

RecommendationService::RecommendationService(const RatingDataset& train,
                                             ServiceConfig config)
    : train_(&train),
      config_(config),
      version_(g_next_snapshot_version.fetch_add(1,
                                                 std::memory_order_relaxed)) {}

RecommendationService::~RecommendationService() = default;

Status RecommendationService::Init(const Recommender* model,
                                   const GancPipeline* pipeline) {
  if (config_.default_n <= 0) {
    return Status::InvalidArgument("default_n must be positive");
  }
  if (config_.num_workers <= 0) {
    return Status::InvalidArgument("num_workers must be positive");
  }
  if (model != nullptr) {
    if (model->num_items() != train_->num_items()) {
      return Status::InvalidArgument(
          "model is unfitted or its catalog does not match the train set");
    }
    model_ = model;
    source_ = model->name();
    factor_precision_ = model->factor_precision();
  } else {
    // Pipeline mode scores against user profiles and builds a coverage
    // model over the rows up front — a mapped dataset must materialize.
    GANC_RETURN_NOT_OK(train_->EnsureResident());
    scorer_ = &pipeline->scorer();
    theta_ = &pipeline->theta();
    if (theta_->size() != static_cast<size_t>(train_->num_users())) {
      return Status::InvalidArgument(
          "pipeline theta does not match the train set");
    }
    // The empty-history coverage snapshot RecommendForUser scores
    // against, built once and shared: no request ever Observes, so the
    // model is immutable and safe for concurrent Score calls.
    coverage_ = MakeCoverage(pipeline->coverage_kind(), *train_,
                             pipeline->seed());
    source_ = pipeline->name();
    factor_precision_ = pipeline->factor_precision();
  }
  num_items_ = train_->num_items();
  MetricsRegistry& registry = *metrics_registry();
  instruments_ = ServeInstruments::Resolve(registry);
  if (config_.domain_metrics) {
    Result<std::unique_ptr<DomainAccountant>> acct = DomainAccountant::Create(
        *train_, registry, config_.metrics_generation,
        config_.domain_sweep_budget_bytes);
    if (!acct.ok()) return acct.status();
    domain_ = std::move(acct).value();
  }
  if (config_.cache_capacity > 0) {
    cache_ = std::make_unique<ServeResultCache>(config_.cache_capacity,
                                                config_.cache_shards);
  }
  if (config_.micro_batching) {
    MicroBatcherConfig mb;
    mb.num_workers = static_cast<size_t>(config_.num_workers);
    mb.batch_size = std::max<size_t>(config_.batch_size, 1);
    mb.max_batch_wait =
        std::chrono::microseconds(std::max(config_.max_batch_wait_us, 0));
    mb.metrics = &instruments_;
    batcher_ = std::make_unique<MicroBatcher>(
        [this](std::span<BatchRequest* const> batch, ScoringContext& ctx) {
          ScoreAndSelect(batch, ctx);
        },
        mb);
  }
  return Status::OK();
}

Result<std::unique_ptr<RecommendationService>> RecommendationService::Create(
    const Recommender& model, const RatingDataset& train,
    ServiceConfig config) {
  std::unique_ptr<RecommendationService> service(
      new RecommendationService(train, config));
  GANC_RETURN_NOT_OK(service->Init(&model, nullptr));
  return service;
}

Result<std::unique_ptr<RecommendationService>> RecommendationService::Create(
    const GancPipeline& pipeline, const RatingDataset& train,
    ServiceConfig config) {
  std::unique_ptr<RecommendationService> service(
      new RecommendationService(train, config));
  GANC_RETURN_NOT_OK(service->Init(nullptr, &pipeline));
  return service;
}

Result<std::unique_ptr<RecommendationService>>
RecommendationService::LoadModelService(const std::string& path,
                                        const RatingDataset& train,
                                        ServiceConfig config) {
  Result<std::unique_ptr<Recommender>> model =
      LoadModelFileAuto(path, config.mmap_artifacts, &train);
  if (!model.ok()) return model.status();
  std::unique_ptr<RecommendationService> service(
      new RecommendationService(train, config));
  service->owned_model_ = std::move(model).value();
  if (config.factor_precision != FactorPrecision::kFp64) {
    GANC_RETURN_NOT_OK(
        service->owned_model_->SetFactorPrecision(config.factor_precision));
  }
  GANC_RETURN_NOT_OK(service->Init(service->owned_model_.get(), nullptr));
  return service;
}

Result<std::unique_ptr<RecommendationService>>
RecommendationService::LoadPipelineService(const std::string& path,
                                           const RatingDataset& train,
                                           ServiceConfig config) {
  Result<std::unique_ptr<GancPipeline>> pipeline =
      GancPipeline::LoadFile(path, train, /*num_threads=*/1);
  if (!pipeline.ok()) return pipeline.status();
  std::unique_ptr<RecommendationService> service(
      new RecommendationService(train, config));
  service->owned_pipeline_ = std::move(pipeline).value();
  if (config.factor_precision != FactorPrecision::kFp64) {
    GANC_RETURN_NOT_OK(
        service->owned_pipeline_->SetFactorPrecision(config.factor_precision));
  }
  GANC_RETURN_NOT_OK(service->Init(nullptr, service->owned_pipeline_.get()));
  return service;
}

Status RecommendationService::ValidateRequest(
    UserId user, int n, std::span<const ItemId> exclusions) const {
  if (user < 0 || user >= train_->num_users()) {
    return Status::InvalidArgument("user id " + std::to_string(user) +
                                   " out of range");
  }
  if (n <= 0) {
    return Status::InvalidArgument("n must be positive");
  }
  for (const ItemId i : exclusions) {
    if (i < 0 || i >= num_items_) {
      return Status::InvalidArgument("excluded item id " + std::to_string(i) +
                                     " out of range");
    }
  }
  return Status::OK();
}

Status RecommendationService::TopNInto(UserId user, int n,
                                       std::span<const ItemId> exclusions,
                                       std::vector<ItemId>* out,
                                       RequestTrace* trace) {
  const uint64_t start_ns = MonotonicNowNs();
  if (n == 0) n = config_.default_n;
  if (const Status valid = ValidateRequest(user, n, exclusions);
      !valid.ok()) {
    instruments_.errors->Increment();
    if (trace != nullptr) trace->outcome = 'e';
    return valid;
  }
  // The acceptance identity the metrics tests pin: every request
  // counted here resolves through exactly one of the cache / store /
  // live exits below, so requests == cache_hits + store_hits +
  // live_scored in every topology (errors are counted separately and
  // never reach this line).
  requests_.fetch_add(1, std::memory_order_relaxed);
  instruments_.requests->Increment();
  if (trace != nullptr) trace->user = user;
  const auto record_latency = [&](char outcome) {
    const uint64_t elapsed_ns = MonotonicNowNs() - start_ns;
    instruments_.request_ns->Observe(elapsed_ns);
    const uint64_t elapsed_us = elapsed_ns / 1000;
    latency_us_sum_.fetch_add(elapsed_us, std::memory_order_relaxed);
    UpdateMax(latency_us_max_, elapsed_us);
    if (domain_ != nullptr) domain_->Record(*out);
    if (trace != nullptr) trace->outcome = outcome;
  };

  // Canonicalize the exclusion set so equal sets share one cache entry
  // and downstream selection can binary-search / set-subtract.
  std::vector<ItemId> canonical(exclusions.begin(), exclusions.end());
  std::sort(canonical.begin(), canonical.end());
  canonical.erase(std::unique(canonical.begin(), canonical.end()),
                  canonical.end());

  const ServeResultCache::Key key{user, n, ExclusionFingerprint(canonical),
                                  version_};
  if (cache_ != nullptr) {
    const uint64_t probe_ns = MonotonicNowNs();
    const bool hit = cache_->Lookup(key, out);
    const uint64_t probed_ns = MonotonicNowNs();
    instruments_.cache_probe_ns->Observe(probed_ns - probe_ns);
    if (trace != nullptr) trace->Stamp(TraceStage::kCacheProbe, probed_ns);
    if (hit) {
      cache_hits_.fetch_add(1, std::memory_order_relaxed);
      instruments_.cache_hits->Increment();
      record_latency('c');
      return Status::OK();
    }
    instruments_.cache_misses->Increment();
  }

  // The store holds default-request lists: no exclusion deltas, length
  // up to its build-time n. A stored list is best-first, so its prefix
  // answers any shorter request exactly; a list shorter than requested
  // means the user's unrated candidates ran out, so the whole list is
  // already the full answer.
  if (store_ != nullptr && canonical.empty() && n <= store_->top_n()) {
    const uint64_t probe_ns = MonotonicNowNs();
    const std::span<const ItemId> list = store_->ListFor(user);
    const uint64_t probed_ns = MonotonicNowNs();
    instruments_.store_probe_ns->Observe(probed_ns - probe_ns);
    if (trace != nullptr) trace->Stamp(TraceStage::kStoreProbe, probed_ns);
    if (!list.empty()) {
      out->assign(list.begin(),
                  list.begin() + static_cast<ptrdiff_t>(std::min(
                                     list.size(), static_cast<size_t>(n))));
      store_hits_.fetch_add(1, std::memory_order_relaxed);
      instruments_.store_hits->Increment();
      record_latency('s');
      return Status::OK();
    }
  }

  // First live-scored request against a mapped snapshot pays the
  // one-time O(nnz) row validation + materialization; cache and store
  // hits above never do, which is what keeps a store-backed cold start
  // O(users) no matter the dataset size.
  GANC_RETURN_NOT_OK(train_->EnsureResident());

  BatchRequest req;
  req.user = user;
  req.n = n;
  req.exclusions = canonical;
  req.out = out;
  req.trace = trace;
  const uint64_t enqueue_ns = MonotonicNowNs();
  if (trace != nullptr) trace->Stamp(TraceStage::kEnqueue, enqueue_ns);
  if (batcher_ != nullptr) {
    if (const Status scored = batcher_->Submit(req); !scored.ok()) {
      instruments_.errors->Increment();
      if (trace != nullptr) trace->outcome = 'e';
      return scored;
    }
  } else {
    ScoreOneUnbatched(req);
    if (!req.status.ok()) {
      instruments_.errors->Increment();
      if (trace != nullptr) trace->outcome = 'e';
      return req.status;
    }
  }
  instruments_.score_ns->Observe(MonotonicNowNs() - enqueue_ns);
  live_scored_.fetch_add(1, std::memory_order_relaxed);
  instruments_.live_scored->Increment();
  if (cache_ != nullptr) cache_->Insert(key, *out);
  record_latency('l');
  return Status::OK();
}

Result<std::vector<ItemId>> RecommendationService::TopN(
    UserId user, int n, std::span<const ItemId> exclusions) {
  std::vector<ItemId> out;
  GANC_RETURN_NOT_OK(TopNInto(user, n, exclusions, &out));
  return out;
}

void RecommendationService::ScoreAndSelect(
    std::span<BatchRequest* const> batch, ScoringContext& ctx) {
  const size_t ni = static_cast<size_t>(num_items_);
  std::vector<UserId>& users = ctx.BatchUsers();
  users.clear();
  for (const BatchRequest* r : batch) users.push_back(r->user);
  const std::span<double> scores = ctx.BatchScores(users.size() * ni);
  const uint64_t kernel_ns = MonotonicNowNs();
  if (model_ != nullptr) {
    model_->ScoreBatchInto(users, scores);
  } else {
    scorer_->ScoreBatchInto(users, scores);
  }
  instruments_.kernel_ns->Observe(MonotonicNowNs() - kernel_ns);
  for (size_t b = 0; b < batch.size(); ++b) {
    const uint64_t select_ns = MonotonicNowNs();
    SelectForRequest(*batch[b],
                     std::span<const double>(scores.subspan(b * ni, ni)), ctx);
    const uint64_t selected_ns = MonotonicNowNs();
    instruments_.select_ns->Observe(selected_ns - select_ns);
    if (batch[b]->trace != nullptr) {
      batch[b]->trace->Stamp(TraceStage::kScore, selected_ns);
    }
  }
}

void RecommendationService::SelectForRequest(const BatchRequest& req,
                                             std::span<const double> scores,
                                             ScoringContext& ctx) {
  std::vector<ItemId>& out = *req.out;
  if (model_ != nullptr) {
    // Model mode: the offline paths' own selection kernel, with the
    // request's exclusions folded into its mask — served lists are
    // bit-identical to BuildTopN's because this *is* BuildTopN's code.
    const std::vector<ScoredItem>& top =
        SelectTopKUnrated(scores, *train_, req.user,
                          static_cast<size_t>(req.n), ctx, req.exclusions);
    out.clear();
    out.reserve(top.size());
    for (const ScoredItem& s : top) out.push_back(s.item);
    return;
  }
  // Pipeline mode: GANC-mixed greedy over the accuracy row — the exact
  // RecommendForUser computation, with exclusions subtracted from the
  // (sorted) unrated candidate list first.
  train_->UnratedItemsInto(req.user, &ctx.Candidates());
  std::span<const ItemId> candidates = ctx.Candidates();
  if (!req.exclusions.empty()) {
    std::vector<ItemId>& filtered = ctx.Items(1);
    filtered.clear();
    std::set_difference(candidates.begin(), candidates.end(),
                        req.exclusions.begin(), req.exclusions.end(),
                        std::back_inserter(filtered));
    candidates = filtered;
  }
  GreedyTopNForUserInto(scores, (*theta_)[static_cast<size_t>(req.user)],
                        *coverage_, req.user, candidates, req.n, ctx, out);
}

void RecommendationService::ScoreOneUnbatched(BatchRequest& req) {
  // One-request-at-a-time baseline: same scoring and selection code as
  // the scheduler, batch width 1, on the calling thread. thread_local
  // keeps the one-context-per-thread ownership contract.
  static thread_local ScoringContext ctx;
  BatchRequest* one[1] = {&req};
  ScoreAndSelect(std::span<BatchRequest* const>(one), ctx);
}

Status RecommendationService::AttachStore(
    std::shared_ptr<const TopNStore> store) {
  if (store == nullptr) {
    return Status::InvalidArgument("store must be non-null");
  }
  if (store->train_fingerprint() != train_->Fingerprint()) {
    return Status::InvalidArgument(
        "top-N store was built against different train data (fingerprint "
        "mismatch)");
  }
  if (store->num_users() != train_->num_users() ||
      store->num_items() != num_items_) {
    return Status::InvalidArgument(
        "top-N store dimensions do not match the serving snapshot");
  }
  if (store->source() != source_) {
    return Status::InvalidArgument("top-N store was built from '" +
                                   store->source() + "', serving '" + source_ +
                                   "'");
  }
  store_ = std::move(store);
  return Status::OK();
}

Result<TopNStore> RecommendationService::BuildStore(
    std::span<const UserId> users, int n) {
  if (n <= 0) {
    return Status::InvalidArgument("store list length must be positive");
  }
  GANC_RETURN_NOT_OK(train_->EnsureResident());  // live path below
  std::vector<std::pair<UserId, std::vector<ItemId>>> lists;
  lists.reserve(users.size());
  for (const UserId u : users) {
    GANC_RETURN_NOT_OK(ValidateRequest(u, n, {}));
    BatchRequest req;
    req.user = u;
    req.n = n;
    std::vector<ItemId> list;
    req.out = &list;
    ScoreOneUnbatched(req);
    GANC_RETURN_NOT_OK(req.status);
    lists.emplace_back(u, std::move(list));
  }
  return TopNStore::FromLists(train_->num_users(), num_items_, n,
                              train_->Fingerprint(), source_, lists);
}

ServeStats RecommendationService::stats() const {
  ServeStats s;
  s.requests = requests_.load(std::memory_order_relaxed);
  s.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  s.store_hits = store_hits_.load(std::memory_order_relaxed);
  s.live_scored = live_scored_.load(std::memory_order_relaxed);
  if (batcher_ != nullptr) {
    const MicroBatcher::Counters c = batcher_->counters();
    s.batches = c.batches;
    s.batched_requests = c.requests;
    s.full_batches = c.full_batches;
    s.waited_flushes = c.waited_flushes;
  }
  s.latency_us_sum = latency_us_sum_.load(std::memory_order_relaxed);
  s.latency_us_max = latency_us_max_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace ganc
