// Synthetic rating-dataset generation calibrated to the paper's corpora.
//
// The paper evaluates on MovieLens 100K/1M/10M, MovieTweetings-200K, and
// Netflix. Those files are not available in this offline environment, so
// this module synthesizes datasets that reproduce the *distributional*
// properties the paper's phenomena depend on:
//
//   * Zipf-like item popularity (popularity bias; long-tail share L%),
//   * heavy-tailed per-user activity (sparsity; infrequent users),
//   * popularity-proportional item selection whose bias *decreases* with
//     user activity (the Figure 1 anti-correlation),
//   * missing-not-at-random selection correlated with user-item affinity
//     (so latent-factor models have structure to learn),
//   * realistic rating-value distributions on each corpus's scale.
//
// Each paper dataset has a preset spec carrying |U|, |I|, target |D|,
// kappa, tau, and rating scale; the two largest corpora are scaled down
// (documented in DESIGN.md section 4 and EXPERIMENTS.md).

#ifndef GANC_DATA_SYNTHETIC_H_
#define GANC_DATA_SYNTHETIC_H_

#include <cstdint>
#include <string>

#include "data/dataset.h"
#include "util/status.h"

namespace ganc {

class ThreadPool;

/// Full parameterization of the generator. Defaults give a medium-density
/// MovieLens-like corpus.
struct SyntheticSpec {
  std::string name = "synthetic";

  int32_t num_users = 1000;
  int32_t num_items = 1500;

  /// Target mean ratings per user (including min_activity).
  double mean_activity = 100.0;
  /// Minimum ratings per user (the paper's tau).
  int32_t min_activity = 20;
  /// Log-normal sigma of the activity distribution; larger = heavier tail.
  double activity_sigma = 1.0;
  /// Hard cap on a single user's profile as a fraction of the catalog.
  double max_activity_frac = 0.6;

  /// Zipf exponent of intrinsic item popularity (selection weight
  /// (rank+1)^-zipf_exponent). Larger = stronger popularity concentration,
  /// larger long-tail share L%.
  double zipf_exponent = 0.8;

  /// Per-user popularity-bias exponent gamma_u in [gamma_min, gamma_max]:
  /// an item's selection weight is zipf_weight^gamma_u. gamma_u decreases
  /// with user activity rank, producing the Figure 1 shape (active users
  /// explore deeper into the tail).
  double gamma_min = 0.6;
  double gamma_max = 1.3;

  /// Latent preference structure (the CF signal).
  int32_t latent_dim = 24;
  /// Selection tilt toward items the user would rate highly (MNAR).
  double affinity_select_weight = 1.5;

  /// Rating-value model: value = mean_rating + b_u + b_i +
  /// latent_scale * <p_u, q_i> + noise, quantized to the rating scale.
  double mean_rating = 3.7;
  double user_bias_sd = 0.35;
  double item_bias_sd = 0.35;
  double latent_scale = 1.0;
  double noise_sd = 0.45;

  /// Rating scale (inclusive bounds, uniform step).
  double rating_min = 1.0;
  double rating_max = 5.0;
  double rating_step = 1.0;

  uint64_t seed = 1;

  /// Paper protocol parameters carried alongside for convenience.
  double kappa = 0.5;  ///< per-user train ratio for the split
  int32_t tau = 20;    ///< minimum-ratings filter
};

/// Generates a dataset according to `spec`. Deterministic per seed.
Result<RatingDataset> GenerateSynthetic(const SyntheticSpec& spec);

/// Preset calibrated to MovieLens-100K (943 x 1682, ~100K ratings, d 6.3%).
SyntheticSpec MovieLens100KSpec();

/// Preset calibrated to MovieLens-1M (6040 x 3706, ~1M ratings, d 4.47%).
SyntheticSpec MovieLens1MSpec();

/// Preset calibrated to MovieLens-10M *scaled down ~8.7x in users and 2x in
/// items* (8000 x 5339) with the original density 1.34% and half-star scale.
SyntheticSpec MovieLens10MScaledSpec();

/// Preset calibrated to MovieTweetings-200K (7969 x 13864, d 0.16%,
/// tau = 5, ~47% of users with fewer than 10 ratings, 0-10 scale mapped
/// to [1, 5] as in the paper).
SyntheticSpec MovieTweetings200KSpec();

/// Preset calibrated to Netflix *scaled down 40x in users and 4x in items*
/// (11487 x 4442) with the original density 1.21%.
SyntheticSpec NetflixScaledSpec();

/// Tiny corpus for unit tests (fast, but still popularity-biased).
SyntheticSpec TinySpec();

/// Parameterization of the streaming scale generator — a lighter model
/// than SyntheticSpec (no MNAR latent-affinity selection, whose O(|I|)
/// per-user weight sweep would make million-user corpora quadratic):
/// Zipf item popularity, log-normal user activity, biased rating
/// values. What the scale harness needs — a power-law corpus too big to
/// hold as triples — at O(nnz) generation cost and O(users) memory.
struct ScaleSyntheticSpec {
  std::string name = "scale";

  int64_t num_users = 100000;
  int32_t num_items = 20000;

  /// Target mean ratings per user (including min_activity).
  double mean_activity = 24.0;
  int32_t min_activity = 5;
  /// Log-normal sigma of the activity tail.
  double activity_sigma = 0.9;
  /// Cap on one user's profile as a fraction of the catalog (keeps the
  /// distinct-item rejection sampling cheap; must stay well below 1).
  double max_activity_frac = 0.1;

  /// Zipf exponent of item popularity: item i drawn with weight
  /// (i+1)^-zipf_exponent (item 0 most popular).
  double zipf_exponent = 0.9;

  /// Rating-value model: mean + user bias + item bias + noise,
  /// quantized to the scale.
  double mean_rating = 3.6;
  double user_bias_sd = 0.4;
  double item_bias_sd = 0.4;
  double noise_sd = 0.5;
  double rating_min = 1.0;
  double rating_max = 5.0;
  double rating_step = 0.5;

  uint64_t seed = 1;
};

/// Streams a ScaleSyntheticSpec corpus straight into a v3 dataset-cache
/// file (DatasetCacheStreamWriter): O(users) resident memory regardless
/// of nnz. Every user's row is derived from an independent
/// splitmix-derived generator seeded by (spec.seed, u), so the output
/// file is byte-identical for any `pool` (including none) — threads
/// change wall time only. Returns the generated nnz.
Result<int64_t> GenerateSyntheticStream(const ScaleSyntheticSpec& spec,
                                        const std::string& out_path,
                                        ThreadPool* pool = nullptr);

/// Power-law preset for the out-of-core scale harness, parameterized by
/// user count (catalog and activity stay fixed so corpora at different
/// scales are directly comparable; ~24 ratings/user, d ~ 0.12%).
ScaleSyntheticSpec PowerLawScaleSpec(int64_t num_users);

/// The 1M-user point of the scale harness (~24M ratings, ~190 MB rows).
ScaleSyntheticSpec PowerLaw1MSpec();

}  // namespace ganc

#endif  // GANC_DATA_SYNTHETIC_H_
